//! Generation tokens for cancellable scheduled events.
//!
//! A discrete-event simulation frequently needs to "cancel" an event that is
//! already in the queue (e.g. a thread's segment-completion event when the
//! thread is preempted). Removing from a binary heap is O(n); the standard
//! trick is *lazy invalidation*: the owner keeps a [`GenToken`], every
//! scheduled event captures the token's current generation, and bumping the
//! token invalidates all outstanding events at once. Handlers check
//! [`GenToken::is_current`] and drop stale events.

/// A monotonically increasing generation counter.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GenToken(u64);

impl GenToken {
    /// A fresh token at generation zero.
    pub const fn new() -> Self {
        GenToken(0)
    }

    /// The current generation, to be captured into a scheduled event.
    #[inline]
    pub fn current(&self) -> u64 {
        self.0
    }

    /// Invalidate all events that captured earlier generations and return
    /// the new generation.
    #[inline]
    pub fn bump(&mut self) -> u64 {
        self.0 += 1;
        self.0
    }

    /// True if `gen` was captured from the token's present generation.
    #[inline]
    pub fn is_current(&self, gen: u64) -> bool {
        self.0 == gen
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_token_validates_its_own_generation() {
        let t = GenToken::new();
        assert!(t.is_current(t.current()));
    }

    #[test]
    fn bump_invalidates_prior_generations() {
        let mut t = GenToken::new();
        let g0 = t.current();
        let g1 = t.bump();
        assert!(!t.is_current(g0));
        assert!(t.is_current(g1));
        assert_eq!(g1, g0 + 1);
    }

    #[test]
    fn repeated_bumps_stay_monotone() {
        let mut t = GenToken::new();
        let mut prev = t.current();
        for _ in 0..100 {
            let g = t.bump();
            assert!(g > prev);
            prev = g;
        }
    }
}
