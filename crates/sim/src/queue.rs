//! The timed event queue.
//!
//! A hierarchical timer wheel: events within a configurable near-future
//! *horizon* land in a dense ring of buckets (constant-time push, cheap
//! bucket-local ordering on drain), while far-future timers (RTOs,
//! delayed-ACK flushes) overflow into a small binary heap and migrate into
//! the ring as the cursor reaches their bucket. The contract is identical
//! to the original `BinaryHeap` implementation: events pop ordered by
//! [`SimTime`], ties break in insertion order (a monotone sequence
//! number), and debug builds refuse to schedule into the past.
//!
//! Why a wheel: the simulation's hottest structure sees millions of
//! push/pop pairs per run, almost all within a few microseconds of "now".
//! A binary heap pays `O(log n)` comparisons on both ends; the wheel pays
//! `O(1)` on push and an amortized small sort over one bucket's worth of
//! events (events per ~1 µs of simulated time) on pop. Steady state is
//! allocation-free: bucket `Vec`s and the drain list recycle their
//! capacity.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// Default log2 of the bucket width in nanoseconds (2^10 ≈ 1.02 µs).
const DEFAULT_BUCKET_SHIFT: u32 = 10;
/// Default number of ring buckets (must be a power of two). With the
/// default shift this gives a ~4.2 ms horizon: scheduler ticks and guest
/// timers stay in the ring; only RTO-scale timers overflow.
const DEFAULT_BUCKETS: usize = 4096;

struct Entry<E> {
    at: SimTime,
    seq: u64,
    ev: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops
        // first from the overflow heap.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// A deterministic priority queue of `(SimTime, E)` events.
///
/// Events scheduled for the same instant pop in the order they were pushed.
pub struct EventQueue<E> {
    /// Entries of the bucket currently being drained — a min-heap on
    /// `(at, seq)` (via the inverted `Entry` ordering), so a push that
    /// lands in the draining bucket costs O(log k) instead of an O(k)
    /// sorted-Vec insert (k = events in one bucket, which can spike when
    /// a burst schedules many sub-microsecond follow-ups).
    current: BinaryHeap<Entry<E>>,
    /// The near-future bucket ring; entries are unsorted within a bucket.
    ring: Vec<Vec<Entry<E>>>,
    /// Occupancy bitmap over ring slots (one bit per bucket) for fast
    /// next-occupied-bucket scans.
    occ: Vec<u64>,
    /// Total entries across all ring buckets (excludes `current`).
    ring_len: usize,
    /// Absolute index (time >> shift) of the bucket `current` drains.
    cursor: u64,
    /// log2 of bucket width in nanoseconds.
    shift: u32,
    /// `ring.len() - 1` (ring length is a power of two).
    mask: u64,
    /// Far-future events, beyond the ring horizon at push time.
    overflow: BinaryHeap<Entry<E>>,
    len: usize,
    seq: u64,
    last_popped: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue positioned at `SimTime::ZERO` with the default
    /// horizon (~4.2 ms: 4096 buckets of ~1 µs).
    pub fn new() -> Self {
        Self::with_horizon(DEFAULT_BUCKET_SHIFT, DEFAULT_BUCKETS)
    }

    /// An empty queue with an explicit horizon: `2^bucket_shift` ns per
    /// bucket, `buckets` buckets (rounded up to a power of two). The
    /// horizon — the span the dense ring covers — is
    /// `buckets << bucket_shift` nanoseconds; events further out sit in
    /// the overflow heap until the cursor approaches them.
    pub fn with_horizon(bucket_shift: u32, buckets: usize) -> Self {
        let buckets = buckets.next_power_of_two().max(64);
        EventQueue {
            current: BinaryHeap::new(),
            ring: (0..buckets).map(|_| Vec::new()).collect(),
            occ: vec![0u64; buckets / 64],
            ring_len: 0,
            cursor: 0,
            shift: bucket_shift,
            mask: (buckets - 1) as u64,
            overflow: BinaryHeap::new(),
            len: 0,
            seq: 0,
            last_popped: SimTime::ZERO,
        }
    }

    /// An empty queue pre-sized for roughly `cap` concurrently pending
    /// events (reserves the drain list and overflow heap so a busy run
    /// does not regrow them).
    pub fn with_capacity(cap: usize) -> Self {
        let mut q = Self::new();
        q.current.reserve(cap.min(1 << 16));
        q.overflow.reserve((cap / 8).min(1 << 14));
        q
    }

    #[inline]
    fn bucket_of(&self, at: SimTime) -> u64 {
        at.as_nanos() >> self.shift
    }

    #[inline]
    fn slot(&self, bucket: u64) -> usize {
        (bucket & self.mask) as usize
    }

    #[inline]
    fn occ_set(&mut self, slot: usize) {
        self.occ[slot >> 6] |= 1u64 << (slot & 63);
    }

    #[inline]
    fn occ_clear(&mut self, slot: usize) {
        self.occ[slot >> 6] &= !(1u64 << (slot & 63));
    }

    /// Schedule `ev` at absolute instant `at`.
    ///
    /// Debug builds panic if `at` is before the last popped instant — a
    /// causality violation that would silently corrupt a release run.
    #[inline]
    pub fn push(&mut self, at: SimTime, ev: E) {
        debug_assert!(
            at >= self.last_popped,
            "scheduling into the past: {at:?} < {:?}",
            self.last_popped
        );
        let seq = self.seq;
        self.seq += 1;
        self.len += 1;
        let entry = Entry { at, seq, ev };
        let b = self.bucket_of(at);
        if b <= self.cursor {
            // The event lands in the bucket being drained (common for
            // sub-microsecond follow-ups).
            self.current.push(entry);
        } else if b - self.cursor <= self.mask {
            let slot = self.slot(b);
            self.ring[slot].push(entry);
            self.occ_set(slot);
            self.ring_len += 1;
        } else {
            self.overflow.push(entry);
        }
    }

    /// Next occupied ring slot strictly after `cursor`, as an absolute
    /// bucket index. Scans the occupancy bitmap word-at-a-time.
    fn next_ring_bucket(&self) -> Option<u64> {
        if self.ring_len == 0 {
            return None;
        }
        // All ring entries live in absolute buckets (cursor, cursor+N],
        // so scanning N slots starting after the cursor's slot visits
        // each candidate exactly once.
        let n = self.ring.len() as u64;
        let start = self.cursor + 1;
        let mut b = start;
        while b < start + n {
            let slot = self.slot(b);
            let word = self.occ[slot >> 6] >> (slot & 63);
            if word != 0 {
                let hop = word.trailing_zeros() as u64;
                // The bitmap word may wrap past the ring end relative to
                // this absolute index; re-check bounds.
                if slot as u64 + hop < 64 * ((slot as u64 >> 6) + 1) && b + hop < start + n {
                    return Some(b + hop);
                }
                b += hop.max(1);
            } else {
                // Skip the rest of this 64-slot word.
                b += 64 - (slot as u64 & 63);
            }
        }
        unreachable!("ring_len > 0 but no occupied slot found");
    }

    /// Advance the cursor to absolute bucket `b`, collecting that bucket's
    /// ring entries and any overflow entries that belong to it into the
    /// drain heap.
    fn refill_from(&mut self, b: u64) {
        debug_assert!(self.current.is_empty(), "refill only on an empty drain heap");
        self.cursor = b;
        // Rebuild the heap from its own (empty) buffer so its capacity is
        // retained across refills: move entries into the Vec, then
        // heapify once — O(k), allocation-free at steady state.
        let mut v = std::mem::take(&mut self.current).into_vec();
        while let Some(top) = self.overflow.peek() {
            if self.bucket_of(top.at) > b {
                break;
            }
            v.push(self.overflow.pop().expect("peeked"));
        }
        let slot = self.slot(b);
        if !self.ring[slot].is_empty() {
            self.ring_len -= self.ring[slot].len();
            // Take the bucket Vec's elements while keeping its capacity
            // for reuse.
            let mut bucket = std::mem::take(&mut self.ring[slot]);
            v.append(&mut bucket);
            self.ring[slot] = bucket;
            self.occ_clear(slot);
        }
        self.current = BinaryHeap::from(v);
    }

    /// Remove and return the earliest event.
    #[inline]
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        loop {
            if let Some(e) = self.current.pop() {
                self.last_popped = e.at;
                self.len -= 1;
                return Some((e.at, e.ev));
            }
            if self.len == 0 {
                return None;
            }
            let next_ring = self.next_ring_bucket();
            let next_over = self.overflow.peek().map(|e| self.bucket_of(e.at));
            let b = match (next_ring, next_over) {
                (Some(r), Some(o)) => r.min(o),
                (Some(r), None) => r,
                (None, Some(o)) => o,
                (None, None) => unreachable!("len > 0 but no entries anywhere"),
            };
            self.refill_from(b);
        }
    }

    /// The instant of the earliest pending event, if any.
    ///
    /// O(1) while the current bucket has entries; otherwise a bitmap scan
    /// plus a linear pass over one bucket (diagnostic paths only — the
    /// simulation loop drives on `pop`).
    pub fn peek_time(&self) -> Option<SimTime> {
        if let Some(e) = self.current.peek() {
            return Some(e.at);
        }
        if self.len == 0 {
            return None;
        }
        let ring_min = self.next_ring_bucket().map(|b| {
            self.ring[self.slot(b)]
                .iter()
                .map(|e| e.at)
                .min()
                .expect("occupied bucket")
        });
        let over_min = self.overflow.peek().map(|e| e.at);
        match (ring_min, over_min) {
            (Some(r), Some(o)) => Some(r.min(o)),
            (Some(r), None) => Some(r),
            (None, Some(o)) => Some(o),
            (None, None) => unreachable!("len > 0 but no entries anywhere"),
        }
    }

    /// Number of pending events.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no events are pending.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The instant of the most recently popped event (the queue's notion of
    /// "now").
    #[inline]
    pub fn now(&self) -> SimTime {
        self.last_popped
    }

    /// Total number of events ever pushed (diagnostics).
    #[inline]
    pub fn pushed_total(&self) -> u64 {
        self.seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;
    use proptest::prelude::*;

    fn t(us: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_micros(us)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(t(30), "c");
        q.push(t(10), "a");
        q.push(t(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_break_in_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(t(5), i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn now_tracks_last_pop() {
        let mut q = EventQueue::new();
        assert_eq!(q.now(), SimTime::ZERO);
        q.push(t(7), ());
        q.pop();
        assert_eq!(q.now(), t(7));
    }

    #[test]
    fn peek_does_not_consume() {
        let mut q = EventQueue::new();
        q.push(t(3), ());
        assert_eq!(q.peek_time(), Some(t(3)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn peek_sees_overflow_and_ring() {
        let mut q = EventQueue::new();
        // Far beyond the default ~4.2 ms horizon: overflow.
        q.push(t(100_000), "far");
        assert_eq!(q.peek_time(), Some(t(100_000)));
        // Near event lands in the ring and becomes the new minimum.
        q.push(t(50), "near");
        assert_eq!(q.peek_time(), Some(t(50)));
        assert_eq!(q.pop().map(|(_, e)| e), Some("near"));
        assert_eq!(q.pop().map(|(_, e)| e), Some("far"));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn far_future_events_cross_the_horizon_in_order() {
        // Events spread across many horizons interleaved with near ones.
        let mut q = EventQueue::new();
        let times = [1u64, 5_000, 3, 80_000, 79_999, 2, 400_000, 5_001];
        for (i, &us) in times.iter().enumerate() {
            q.push(t(us), i);
        }
        let mut sorted: Vec<(u64, usize)> = times.iter().cloned().zip(0..).collect();
        sorted.sort_by_key(|&(us, i)| (us, i));
        let got: Vec<(u64, usize)> = std::iter::from_fn(|| q.pop())
            .map(|(at, i)| ((at - SimTime::ZERO).as_nanos() / 1000, i))
            .collect();
        assert_eq!(got, sorted);
    }

    #[test]
    fn push_into_current_bucket_mid_drain_stays_ordered() {
        let mut q = EventQueue::new();
        // Two events in the same ~1 µs bucket.
        q.push(SimTime::from_nanos(100), "a");
        q.push(SimTime::from_nanos(900), "d");
        assert_eq!(q.pop().map(|(_, e)| e), Some("a"));
        // Mid-drain pushes into the same bucket, between pending entries.
        q.push(SimTime::from_nanos(500), "b");
        q.push(SimTime::from_nanos(700), "c");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["b", "c", "d"]);
    }

    #[test]
    #[should_panic(expected = "scheduling into the past")]
    #[cfg(debug_assertions)]
    fn rejects_past_scheduling_in_debug() {
        let mut q = EventQueue::new();
        q.push(t(10), ());
        q.pop();
        q.push(t(5), ());
    }

    /// Reference model: the original `BinaryHeap` implementation.
    struct RefHeap<E> {
        heap: BinaryHeap<Entry<E>>,
        seq: u64,
    }

    impl<E> RefHeap<E> {
        fn new() -> Self {
            RefHeap {
                heap: BinaryHeap::new(),
                seq: 0,
            }
        }
        fn push(&mut self, at: SimTime, ev: E) {
            let seq = self.seq;
            self.seq += 1;
            self.heap.push(Entry { at, seq, ev });
        }
        fn pop(&mut self) -> Option<(SimTime, E)> {
            self.heap.pop().map(|e| (e.at, e.ev))
        }
    }

    proptest! {
        /// Whatever the push order, pops are sorted by time and ties keep
        /// push order.
        #[test]
        fn prop_pop_order_is_stable_sort(times in proptest::collection::vec(0u64..1000, 1..200)) {
            let mut q = EventQueue::new();
            for (i, &us) in times.iter().enumerate() {
                q.push(t(us), i);
            }
            let mut expected: Vec<(u64, usize)> =
                times.iter().cloned().zip(0..).collect();
            expected.sort_by_key(|&(us, i)| (us, i));
            let got: Vec<(u64, usize)> = std::iter::from_fn(|| q.pop())
                .map(|(at, i)| ((at - SimTime::ZERO).as_nanos() / 1000, i))
                .collect();
            prop_assert_eq!(got, expected);
        }

        /// The wheel pops in exactly the order of the reference
        /// `BinaryHeap` model under arbitrary push/pop interleavings,
        /// including pushes relative to the advancing "now" that land in
        /// the current bucket, elsewhere in the ring, and in the overflow
        /// heap (deltas up to 16 ms span the ~4.2 ms default horizon).
        #[test]
        fn prop_wheel_matches_heap_model(
            ops in proptest::collection::vec((any::<bool>(), 0u64..16_000_000), 2..400)
        ) {
            let mut wheel = EventQueue::new();
            let mut model = RefHeap::new();
            let mut now = SimTime::ZERO;
            let mut id = 0u64;
            for (is_pop, delta_ns) in ops {
                if is_pop {
                    let got = wheel.pop();
                    let want = model.pop();
                    match (got, want) {
                        (Some((gt, gv)), Some((wt, wv))) => {
                            prop_assert_eq!(gt, wt);
                            prop_assert_eq!(gv, wv);
                            now = gt;
                        }
                        (None, None) => {}
                        (g, w) => prop_assert!(false, "mismatch: {g:?} vs {w:?}"),
                    }
                } else {
                    let at = now + SimDuration::from_nanos(delta_ns);
                    wheel.push(at, id);
                    model.push(at, id);
                    id += 1;
                }
            }
            // Drain the rest; orders must agree to the end.
            loop {
                let got = wheel.pop();
                let want = model.pop();
                prop_assert_eq!(got.is_some(), want.is_some());
                match (got, want) {
                    (Some(g), Some(w)) => prop_assert_eq!(g, w),
                    _ => break,
                }
            }
            prop_assert!(wheel.is_empty());
        }

        /// A tiny ring (64 buckets) forces constant overflow migration and
        /// cursor wraps; ordering must still match the model.
        #[test]
        fn prop_small_ring_matches_heap_model(
            times in proptest::collection::vec(0u64..2_000_000, 1..200)
        ) {
            let mut wheel = EventQueue::with_horizon(8, 64); // 256 ns * 64 = 16 us horizon
            let mut model = RefHeap::new();
            for (i, &ns) in times.iter().enumerate() {
                wheel.push(SimTime::from_nanos(ns), i);
                model.push(SimTime::from_nanos(ns), i);
            }
            loop {
                let got = wheel.pop();
                let want = model.pop();
                prop_assert_eq!(&got, &want);
                if got.is_none() {
                    break;
                }
            }
        }
    }
}
