//! The timed event queue.
//!
//! A thin wrapper over `BinaryHeap` that (a) orders by [`SimTime`], (b)
//! breaks ties by insertion order so simulations are deterministic, and (c)
//! refuses (in debug builds) to schedule into the past.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

struct Entry<E> {
    at: SimTime,
    seq: u64,
    ev: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops
        // first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// A deterministic priority queue of `(SimTime, E)` events.
///
/// Events scheduled for the same instant pop in the order they were pushed.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
    last_popped: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue positioned at `SimTime::ZERO`.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            last_popped: SimTime::ZERO,
        }
    }

    /// An empty queue with pre-reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(cap),
            seq: 0,
            last_popped: SimTime::ZERO,
        }
    }

    /// Schedule `ev` at absolute instant `at`.
    ///
    /// Debug builds panic if `at` is before the last popped instant — a
    /// causality violation that would silently corrupt a release run.
    #[inline]
    pub fn push(&mut self, at: SimTime, ev: E) {
        debug_assert!(
            at >= self.last_popped,
            "scheduling into the past: {at:?} < {:?}",
            self.last_popped
        );
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry { at, seq, ev });
    }

    /// Remove and return the earliest event.
    #[inline]
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let e = self.heap.pop()?;
        self.last_popped = e.at;
        Some((e.at, e.ev))
    }

    /// The instant of the earliest pending event, if any.
    #[inline]
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    #[inline]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// The instant of the most recently popped event (the queue's notion of
    /// "now").
    #[inline]
    pub fn now(&self) -> SimTime {
        self.last_popped
    }

    /// Total number of events ever pushed (diagnostics).
    #[inline]
    pub fn pushed_total(&self) -> u64 {
        self.seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;
    use proptest::prelude::*;

    fn t(us: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_micros(us)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(t(30), "c");
        q.push(t(10), "a");
        q.push(t(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_break_in_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(t(5), i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn now_tracks_last_pop() {
        let mut q = EventQueue::new();
        assert_eq!(q.now(), SimTime::ZERO);
        q.push(t(7), ());
        q.pop();
        assert_eq!(q.now(), t(7));
    }

    #[test]
    fn peek_does_not_consume() {
        let mut q = EventQueue::new();
        q.push(t(3), ());
        assert_eq!(q.peek_time(), Some(t(3)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    #[should_panic(expected = "scheduling into the past")]
    #[cfg(debug_assertions)]
    fn rejects_past_scheduling_in_debug() {
        let mut q = EventQueue::new();
        q.push(t(10), ());
        q.pop();
        q.push(t(5), ());
    }

    proptest! {
        /// Whatever the push order, pops are sorted by time and ties keep
        /// push order.
        #[test]
        fn prop_pop_order_is_stable_sort(times in proptest::collection::vec(0u64..1000, 1..200)) {
            let mut q = EventQueue::new();
            for (i, &us) in times.iter().enumerate() {
                q.push(t(us), i);
            }
            let mut expected: Vec<(u64, usize)> =
                times.iter().cloned().zip(0..).collect();
            expected.sort_by_key(|&(us, i)| (us, i));
            let got: Vec<(u64, usize)> = std::iter::from_fn(|| q.pop())
                .map(|(at, i)| ((at - SimTime::ZERO).as_nanos() / 1000, i))
                .collect();
            prop_assert_eq!(got, expected);
        }
    }
}
