//! Seedable simulation PRNG.
//!
//! A self-contained xoshiro256++ implementation (public-domain algorithm by
//! Blackman & Vigna), seeded through SplitMix64. We carry our own rather than
//! pulling `rand` into every simulation crate so that (a) the stream is
//! stable across dependency upgrades — experiment outputs are supposed to be
//! reproducible bit-for-bit from a seed — and (b) the hot path stays four
//! xor/rotate instructions.

/// A deterministic pseudo-random number generator (xoshiro256++).
#[derive(Clone, Debug)]
pub struct SimRng {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Create a generator from a 64-bit seed. Any seed (including 0) is valid.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SimRng { s }
    }

    /// Derive an independent child generator (for per-component streams).
    pub fn fork(&mut self) -> SimRng {
        SimRng::new(self.next_u64())
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform in `[0, bound)`. `bound` must be nonzero.
    ///
    /// Uses Lemire's multiply-shift rejection method (unbiased).
    #[inline]
    pub fn gen_range(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "gen_range bound must be nonzero");
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut lo = m as u64;
        if lo < bound {
            let threshold = bound.wrapping_neg() % bound;
            while lo < threshold {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform in `[lo, hi)`.
    #[inline]
    pub fn gen_range_in(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range");
        lo + self.gen_range(hi - lo)
    }

    /// Uniform float in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw.
    #[inline]
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// Exponentially distributed value with the given mean.
    ///
    /// Used for open-loop arrival processes (e.g. httperf request
    /// interarrivals).
    #[inline]
    pub fn gen_exp(&mut self, mean: f64) -> f64 {
        // 1 - U in (0, 1] so ln() is finite.
        let u = 1.0 - self.gen_f64();
        -mean * u.ln()
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.gen_range(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }

    /// Pick a uniformly random element index, or `None` if empty.
    #[inline]
    pub fn choose_index(&mut self, len: usize) -> Option<usize> {
        if len == 0 {
            None
        } else {
            Some(self.gen_range(len as u64) as usize)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn fork_is_independent() {
        let mut parent = SimRng::new(7);
        let mut child = parent.fork();
        // Child stream differs from the parent's continuation.
        let same = (0..100)
            .filter(|_| parent.next_u64() == child.next_u64())
            .count();
        assert!(same < 2);
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut r = SimRng::new(0);
        let vals: Vec<u64> = (0..10).map(|_| r.next_u64()).collect();
        assert!(vals.iter().any(|&v| v != 0));
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut r = SimRng::new(3);
        for _ in 0..10_000 {
            let x = r.gen_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_bool_probability_is_roughly_right() {
        let mut r = SimRng::new(11);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.25)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.25).abs() < 0.01, "frac={frac}");
    }

    #[test]
    fn gen_exp_mean_is_roughly_right() {
        let mut r = SimRng::new(13);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| r.gen_exp(5.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 5.0).abs() < 0.1, "mean={mean}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = SimRng::new(17);
        let mut xs: Vec<u32> = (0..50).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(xs, (0..50).collect::<Vec<_>>(), "astronomically unlikely");
    }

    #[test]
    fn choose_index_handles_empty() {
        let mut r = SimRng::new(19);
        assert_eq!(r.choose_index(0), None);
        assert_eq!(r.choose_index(1), Some(0));
    }

    proptest! {
        /// gen_range never exceeds its bound and covers the range.
        #[test]
        fn prop_gen_range_in_bounds(seed in any::<u64>(), bound in 1u64..1_000_000) {
            let mut r = SimRng::new(seed);
            for _ in 0..100 {
                prop_assert!(r.gen_range(bound) < bound);
            }
        }

        /// gen_range_in stays within [lo, hi).
        #[test]
        fn prop_gen_range_in_interval(seed in any::<u64>(), lo in 0u64..1000, span in 1u64..1000) {
            let mut r = SimRng::new(seed);
            let hi = lo + span;
            for _ in 0..50 {
                let v = r.gen_range_in(lo, hi);
                prop_assert!(v >= lo && v < hi);
            }
        }

        /// Small bounds are hit uniformly enough that every value appears.
        #[test]
        fn prop_gen_range_covers_small_bounds(seed in any::<u64>()) {
            let mut r = SimRng::new(seed);
            let mut seen = [false; 8];
            for _ in 0..1000 {
                seen[r.gen_range(8) as usize] = true;
            }
            prop_assert!(seen.iter().all(|&s| s));
        }
    }
}
