//! A cheap ring-buffer event tracer.
//!
//! Tracing is a debugging aid for simulation logic: components record
//! `(time, tag, a, b)` tuples into a fixed-size ring; when an invariant trips
//! you dump the last N records. Recording is two stores and an index bump —
//! cheap enough to leave enabled in tests — and the whole tracer can be
//! disabled (the default), making `record` a no-op branch.

use crate::time::SimTime;

/// One trace record: an instant, a static tag, and two free-form operands.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceRecord {
    /// When the record was made.
    pub at: SimTime,
    /// A static label, e.g. `"vmexit"`, `"sched_in"`.
    pub tag: &'static str,
    /// First operand (component-defined meaning).
    pub a: u64,
    /// Second operand (component-defined meaning).
    pub b: u64,
}

/// A fixed-capacity ring buffer of [`TraceRecord`]s.
pub struct Tracer {
    buf: Vec<TraceRecord>,
    head: usize,
    len: usize,
    enabled: bool,
    recorded_total: u64,
}

impl Tracer {
    /// A disabled tracer with the given capacity (rounded up to at least 1).
    pub fn new(capacity: usize) -> Self {
        Tracer {
            buf: Vec::with_capacity(capacity.max(1)),
            head: 0,
            len: 0,
            enabled: false,
            recorded_total: 0,
        }
    }

    /// Turn recording on or off.
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// Whether recording is on.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Record one event (no-op while disabled).
    #[inline]
    pub fn record(&mut self, at: SimTime, tag: &'static str, a: u64, b: u64) {
        if !self.enabled {
            return;
        }
        self.recorded_total += 1;
        let rec = TraceRecord { at, tag, a, b };
        let cap = self.buf.capacity();
        if self.buf.len() < cap {
            self.buf.push(rec);
            self.len = self.buf.len();
        } else {
            self.buf[self.head] = rec;
            self.head = (self.head + 1) % cap;
        }
    }

    /// Records in chronological order (oldest retained first).
    pub fn iter(&self) -> impl Iterator<Item = &TraceRecord> {
        let cap = self.buf.len();
        let start = if self.len == cap { self.head } else { 0 };
        (0..self.len).map(move |i| &self.buf[(start + i) % cap.max(1)])
    }

    /// Number of retained records.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total records ever made while enabled (including overwritten ones).
    pub fn recorded_total(&self) -> u64 {
        self.recorded_total
    }

    /// Render the retained records, one per line.
    pub fn dump(&self) -> String {
        let mut s = String::new();
        for r in self.iter() {
            s.push_str(&format!("{:?} {} a={} b={}\n", r.at, r.tag, r.a, r.b));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn t(us: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_micros(us)
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let mut tr = Tracer::new(4);
        tr.record(t(1), "x", 0, 0);
        assert!(tr.is_empty());
        assert_eq!(tr.recorded_total(), 0);
    }

    #[test]
    fn records_in_order_until_full() {
        let mut tr = Tracer::new(4);
        tr.set_enabled(true);
        for i in 0..3 {
            tr.record(t(i), "e", i, 0);
        }
        let tags: Vec<u64> = tr.iter().map(|r| r.a).collect();
        assert_eq!(tags, vec![0, 1, 2]);
        assert_eq!(tr.len(), 3);
    }

    #[test]
    fn wraps_and_keeps_most_recent() {
        let mut tr = Tracer::new(4);
        tr.set_enabled(true);
        for i in 0..10 {
            tr.record(t(i), "e", i, 0);
        }
        let got: Vec<u64> = tr.iter().map(|r| r.a).collect();
        assert_eq!(got, vec![6, 7, 8, 9]);
        assert_eq!(tr.recorded_total(), 10);
    }

    #[test]
    fn fills_to_exact_capacity_without_wrapping() {
        let mut tr = Tracer::new(4);
        tr.set_enabled(true);
        for i in 0..4 {
            tr.record(t(i), "e", i, 0);
        }
        // Exactly at capacity: nothing overwritten yet.
        let got: Vec<u64> = tr.iter().map(|r| r.a).collect();
        assert_eq!(got, vec![0, 1, 2, 3]);
        assert_eq!(tr.len(), 4);
        assert_eq!(tr.recorded_total(), 4);

        // One more record evicts exactly the oldest.
        tr.record(t(4), "e", 4, 0);
        let got: Vec<u64> = tr.iter().map(|r| r.a).collect();
        assert_eq!(got, vec![1, 2, 3, 4]);
        assert_eq!(tr.len(), 4);
        assert_eq!(tr.recorded_total(), 5);
    }

    #[test]
    fn recorded_total_keeps_counting_across_many_wraps() {
        let mut tr = Tracer::new(3);
        tr.set_enabled(true);
        for i in 0..1000 {
            tr.record(t(i), "e", i, 0);
        }
        assert_eq!(tr.recorded_total(), 1000);
        assert_eq!(tr.len(), 3);
        let got: Vec<u64> = tr.iter().map(|r| r.a).collect();
        assert_eq!(got, vec![997, 998, 999]);
    }

    #[test]
    fn disable_midstream_freezes_ring_and_total() {
        let mut tr = Tracer::new(2);
        tr.set_enabled(true);
        tr.record(t(0), "e", 0, 0);
        tr.set_enabled(false);
        tr.record(t(1), "e", 1, 0);
        assert_eq!(tr.recorded_total(), 1);
        assert_eq!(tr.len(), 1);
        // Re-enabling resumes where the ring left off.
        tr.set_enabled(true);
        tr.record(t(2), "e", 2, 0);
        let got: Vec<u64> = tr.iter().map(|r| r.a).collect();
        assert_eq!(got, vec![0, 2]);
        assert_eq!(tr.recorded_total(), 2);
    }

    #[test]
    fn capacity_one_ring_keeps_only_the_newest() {
        let mut tr = Tracer::new(1);
        tr.set_enabled(true);
        for i in 0..5 {
            tr.record(t(i), "e", i, 0);
        }
        let got: Vec<u64> = tr.iter().map(|r| r.a).collect();
        assert_eq!(got, vec![4]);
        assert_eq!(tr.recorded_total(), 5);
    }

    #[test]
    fn dump_contains_tags() {
        let mut tr = Tracer::new(2);
        tr.set_enabled(true);
        tr.record(t(5), "vmexit", 1, 2);
        let s = tr.dump();
        assert!(s.contains("vmexit"), "{s}");
        assert!(s.contains("a=1"), "{s}");
    }
}
