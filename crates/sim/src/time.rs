//! Simulated time.
//!
//! [`SimTime`] is an absolute instant, [`SimDuration`] a span; both are
//! nanosecond-resolution `u64`s. One simulated year fits comfortably, which
//! is far beyond any experiment in this repository (seconds-scale runs).

use core::fmt;
use core::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An absolute simulated instant, in nanoseconds since the start of the run.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant (used as an "infinitely far" sentinel).
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Raw nanoseconds since the start of the run.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds as a float (for reporting only; never for simulation logic).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The span from `earlier` to `self`, saturating to zero if `earlier`
    /// is in the future.
    #[inline]
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// The span from `earlier` to `self`. Panics (in debug) on negative spans.
    #[inline]
    pub fn since(self, earlier: SimTime) -> SimDuration {
        debug_assert!(self.0 >= earlier.0, "time went backwards");
        SimDuration(self.0 - earlier.0)
    }
}

impl SimDuration {
    /// The empty span.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable span.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Construct from raw nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Construct from microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Construct from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Construct from fractional seconds; negative values clamp to zero.
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        SimDuration((s.max(0.0) * 1e9).round() as u64)
    }

    /// Raw nanoseconds.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Microseconds as a float (reporting only).
    #[inline]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Milliseconds as a float (reporting only).
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Seconds as a float (reporting only).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// True if the span is zero.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }

    /// Checked subtraction.
    #[inline]
    pub fn checked_sub(self, rhs: SimDuration) -> Option<SimDuration> {
        self.0.checked_sub(rhs.0).map(SimDuration)
    }

    /// Smaller of two spans.
    #[inline]
    pub fn min(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.min(rhs.0))
    }

    /// Larger of two spans.
    #[inline]
    pub fn max(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.max(rhs.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        debug_assert!(self.0 >= rhs.0, "negative duration");
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    #[inline]
    fn sub_assign(&mut self, rhs: SimDuration) {
        debug_assert!(self.0 >= rhs.0, "negative duration");
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Div<SimDuration> for SimDuration {
    type Output = u64;
    #[inline]
    fn div(self, rhs: SimDuration) -> u64 {
        self.0 / rhs.0
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}", fmt_ns(self.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&fmt_ns(self.0))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// Human-scale rendering of a nanosecond count ("1.500ms", "2.000s", "750ns").
fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_round_trips() {
        assert_eq!(SimDuration::from_micros(3).as_nanos(), 3_000);
        assert_eq!(SimDuration::from_millis(3).as_nanos(), 3_000_000);
        assert_eq!(SimDuration::from_secs(3).as_nanos(), 3_000_000_000);
        assert_eq!(SimDuration::from_secs_f64(0.5).as_nanos(), 500_000_000);
    }

    #[test]
    fn negative_float_durations_clamp() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
    }

    #[test]
    fn time_arithmetic() {
        let t = SimTime::ZERO + SimDuration::from_micros(10);
        assert_eq!(t.as_nanos(), 10_000);
        let u = t + SimDuration::from_nanos(5);
        assert_eq!((u - t).as_nanos(), 5);
        assert_eq!(u.since(t).as_nanos(), 5);
        assert_eq!(t.saturating_since(u), SimDuration::ZERO);
    }

    #[test]
    fn duration_scaling() {
        let d = SimDuration::from_micros(4);
        assert_eq!((d * 3).as_nanos(), 12_000);
        assert_eq!((d / 2).as_nanos(), 2_000);
        assert_eq!(d / SimDuration::from_micros(1), 4);
    }

    #[test]
    fn saturating_and_checked_sub() {
        let a = SimDuration::from_nanos(5);
        let b = SimDuration::from_nanos(7);
        assert_eq!(a.saturating_sub(b), SimDuration::ZERO);
        assert_eq!(b.saturating_sub(a).as_nanos(), 2);
        assert_eq!(a.checked_sub(b), None);
        assert_eq!(b.checked_sub(a), Some(SimDuration::from_nanos(2)));
    }

    #[test]
    fn display_is_human_scale() {
        assert_eq!(format!("{}", SimDuration::from_nanos(750)), "750ns");
        assert_eq!(format!("{}", SimDuration::from_micros(1500)), "1.500ms");
        assert_eq!(format!("{}", SimDuration::from_secs(2)), "2.000s");
        assert_eq!(format!("{}", SimTime::from_nanos(1_500)), "t+1.500us");
    }

    #[test]
    fn float_accessors() {
        let d = SimDuration::from_millis(2);
        assert!((d.as_millis_f64() - 2.0).abs() < 1e-12);
        assert!((d.as_micros_f64() - 2000.0).abs() < 1e-9);
        assert!((d.as_secs_f64() - 0.002).abs() < 1e-12);
    }
}
