//! Seeded, deterministic fault injection.
//!
//! A [`FaultPlan`] is a plain-data description of *what can go wrong* in a
//! simulation run: per-injection-point probabilities and magnitudes for
//! dropped/delayed guest kicks, vhost-worker stalls, lost/late MSIs,
//! packet loss/duplication/reordering, forced vCPU preemption storms, and
//! mid-run loss of posted-interrupt hardware for a subset of VMs. The plan
//! is `Copy` so an experiment spec that embeds one stays a pure value —
//! a faulted run is still a pure function of `(config, workload, params,
//! seed, plan)` and therefore bitwise-reproducible under the parallel
//! sweep executor at any `ES2_THREADS`.
//!
//! A [`FaultInjector`] is the runtime half: it owns one forked [`SimRng`]
//! stream **per injection point**, so the draw sequence at each point
//! depends only on how many decisions that point has made — not on how
//! decisions at different points interleave, and never on the simulation's
//! own RNG. Two guarantees follow:
//!
//! 1. **Clean-path identity** — an inactive injector performs *zero* RNG
//!    draws, so a run with no plan is bit-identical to a build without the
//!    hooks at all.
//! 2. **Stream isolation** — enabling one fault class does not shift the
//!    random stream seen by another, which keeps A/B comparisons between
//!    plans meaningful.
//!
//! The injector only *decides*; the world being simulated applies the
//! decision (e.g. by not queueing the vhost handler, or by re-scheduling a
//! packet arrival) and owns the corresponding recovery machinery.

use crate::rng::SimRng;
use crate::time::SimDuration;

/// What to do with a single point-to-point delivery (guest kick or MSI).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DeliveryFault {
    /// Deliver normally.
    Deliver,
    /// Silently lose the notification (the payload state remains; only the
    /// signal is lost — exactly the failure the re-arm double-check and
    /// watchdog re-kick recover from).
    Drop,
    /// Deliver after an extra delay.
    Delay(SimDuration),
}

/// What to do with a single packet crossing a link.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PacketFault {
    /// Deliver normally.
    Deliver,
    /// Lose the packet (TCP retransmit is the recovery path).
    Drop,
    /// Deliver twice (the receiver must tolerate duplicates).
    Duplicate,
    /// Deliver late — after packets transmitted behind it, i.e. reordered.
    Delay(SimDuration),
}

/// A complete, declarative fault schedule for one simulation run.
///
/// All-zero probabilities (the [`FaultPlan::none`] default) mean "no
/// faults"; such a plan never activates the injector. Probabilities are
/// per-decision Bernoulli draws; drop is evaluated before delay at points
/// that support both.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultPlan {
    /// Extra salt mixed into the run seed so distinct plans with the same
    /// run seed draw from unrelated streams.
    pub salt: u64,
    /// P(guest kick is lost) per kick I/O exit.
    pub kick_drop_p: f64,
    /// P(guest kick is delayed) per kick, evaluated after the drop draw.
    pub kick_delay_p: f64,
    /// Delay applied to a delayed kick.
    pub kick_delay: SimDuration,
    /// P(vhost worker stalls) per handler dispatch.
    pub worker_stall_p: f64,
    /// Stall duration added to a stalled dispatch.
    pub worker_stall: SimDuration,
    /// P(device MSI is lost) per interrupt raise.
    pub msi_drop_p: f64,
    /// P(device MSI is delayed) per raise, evaluated after the drop draw.
    pub msi_delay_p: f64,
    /// Delay applied to a delayed MSI.
    pub msi_delay: SimDuration,
    /// P(packet dropped) per link transmit.
    pub pkt_drop_p: f64,
    /// P(packet duplicated), evaluated after the drop draw.
    pub pkt_dup_p: f64,
    /// P(packet delayed past later traffic), evaluated after drop and dup.
    pub pkt_reorder_p: f64,
    /// Extra latency for a reordered packet.
    pub pkt_reorder_delay: SimDuration,
    /// Period of forced-preemption storms; `ZERO` disables them.
    pub preempt_storm_period: SimDuration,
    /// P(a given core is forcibly rescheduled) per storm tick.
    pub preempt_storm_p: f64,
    /// Bitmask of VM indices whose posted-interrupt hardware fails mid-run
    /// (bit *n* = VM *n*). Zero disables the degradation.
    pub pi_unavailable_mask: u64,
    /// When, relative to run start, the masked VMs lose PI.
    pub pi_fail_after: SimDuration,
}

impl FaultPlan {
    /// The empty plan: no faults, injector stays inert.
    pub const fn none() -> Self {
        FaultPlan {
            salt: 0,
            kick_drop_p: 0.0,
            kick_delay_p: 0.0,
            kick_delay: SimDuration::ZERO,
            worker_stall_p: 0.0,
            worker_stall: SimDuration::ZERO,
            msi_drop_p: 0.0,
            msi_delay_p: 0.0,
            msi_delay: SimDuration::ZERO,
            pkt_drop_p: 0.0,
            pkt_dup_p: 0.0,
            pkt_reorder_p: 0.0,
            pkt_reorder_delay: SimDuration::ZERO,
            preempt_storm_period: SimDuration::ZERO,
            preempt_storm_p: 0.0,
            pi_unavailable_mask: 0,
            pi_fail_after: SimDuration::ZERO,
        }
    }

    /// Whether any fault class is enabled.
    pub fn is_active(&self) -> bool {
        self.kick_drop_p > 0.0
            || self.kick_delay_p > 0.0
            || self.worker_stall_p > 0.0
            || self.msi_drop_p > 0.0
            || self.msi_delay_p > 0.0
            || self.pkt_drop_p > 0.0
            || self.pkt_dup_p > 0.0
            || self.pkt_reorder_p > 0.0
            || (!self.preempt_storm_period.is_zero() && self.preempt_storm_p > 0.0)
            || self.pi_unavailable_mask != 0
    }

    /// Whether VM `vm` is scheduled to lose posted-interrupt hardware.
    pub fn pi_fails_for_vm(&self, vm: usize) -> bool {
        vm < 64 && self.pi_unavailable_mask & (1u64 << vm) != 0
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

/// Injection counters, reported alongside run results so degradation can
/// be attributed to specific injected faults.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultStats {
    pub kicks_dropped: u64,
    pub kicks_delayed: u64,
    pub worker_stalls: u64,
    pub msis_dropped: u64,
    pub msis_delayed: u64,
    pub pkts_dropped: u64,
    pub pkts_duplicated: u64,
    pub pkts_reordered: u64,
    pub storm_preemptions: u64,
    pub pi_degradations: u64,
}

impl FaultStats {
    /// Total faults injected across all classes.
    pub fn total(&self) -> u64 {
        self.kicks_dropped
            + self.kicks_delayed
            + self.worker_stalls
            + self.msis_dropped
            + self.msis_delayed
            + self.pkts_dropped
            + self.pkts_duplicated
            + self.pkts_reordered
            + self.storm_preemptions
            + self.pi_degradations
    }
}

/// Runtime fault decision engine: one independent RNG stream per
/// injection point, plus counters.
#[derive(Clone, Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    active: bool,
    kick_rng: SimRng,
    stall_rng: SimRng,
    msi_rng: SimRng,
    pkt_rng: SimRng,
    storm_rng: SimRng,
    stats: FaultStats,
}

impl FaultInjector {
    /// Build an injector for `plan`, deriving per-point streams from
    /// `seed ^ plan.salt`. An inactive plan produces an inert injector
    /// (every decision is `Deliver`/`None` with zero RNG draws).
    pub fn new(plan: FaultPlan, seed: u64) -> Self {
        let mut root = SimRng::new(seed ^ plan.salt ^ 0xFA17_FA17_FA17_FA17);
        let active = plan.is_active();
        FaultInjector {
            plan,
            active,
            kick_rng: root.fork(),
            stall_rng: root.fork(),
            msi_rng: root.fork(),
            pkt_rng: root.fork(),
            storm_rng: root.fork(),
            stats: FaultStats::default(),
        }
    }

    /// An injector that never injects anything.
    pub fn inert() -> Self {
        FaultInjector::new(FaultPlan::none(), 0)
    }

    /// The plan this injector executes.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Whether any fault class is enabled.
    pub fn is_active(&self) -> bool {
        self.active
    }

    /// Injection counters so far.
    pub fn stats(&self) -> FaultStats {
        self.stats
    }

    /// Decide the fate of one guest kick (virtqueue notification exit).
    pub fn on_guest_kick(&mut self) -> DeliveryFault {
        if !self.active {
            return DeliveryFault::Deliver;
        }
        if self.plan.kick_drop_p > 0.0 && self.kick_rng.gen_bool(self.plan.kick_drop_p) {
            self.stats.kicks_dropped += 1;
            return DeliveryFault::Drop;
        }
        if self.plan.kick_delay_p > 0.0 && self.kick_rng.gen_bool(self.plan.kick_delay_p) {
            self.stats.kicks_delayed += 1;
            return DeliveryFault::Delay(self.plan.kick_delay);
        }
        DeliveryFault::Deliver
    }

    /// Extra stall to add to one vhost handler dispatch, if any.
    pub fn on_worker_dispatch(&mut self) -> Option<SimDuration> {
        if !self.active || self.plan.worker_stall_p <= 0.0 {
            return None;
        }
        if self.stall_rng.gen_bool(self.plan.worker_stall_p) {
            self.stats.worker_stalls += 1;
            Some(self.plan.worker_stall)
        } else {
            None
        }
    }

    /// Decide the fate of one device MSI.
    pub fn on_msi(&mut self) -> DeliveryFault {
        if !self.active {
            return DeliveryFault::Deliver;
        }
        if self.plan.msi_drop_p > 0.0 && self.msi_rng.gen_bool(self.plan.msi_drop_p) {
            self.stats.msis_dropped += 1;
            return DeliveryFault::Drop;
        }
        if self.plan.msi_delay_p > 0.0 && self.msi_rng.gen_bool(self.plan.msi_delay_p) {
            self.stats.msis_delayed += 1;
            return DeliveryFault::Delay(self.plan.msi_delay);
        }
        DeliveryFault::Deliver
    }

    /// Decide the fate of one packet crossing a link.
    pub fn on_packet(&mut self) -> PacketFault {
        if !self.active {
            return PacketFault::Deliver;
        }
        if self.plan.pkt_drop_p > 0.0 && self.pkt_rng.gen_bool(self.plan.pkt_drop_p) {
            self.stats.pkts_dropped += 1;
            return PacketFault::Drop;
        }
        if self.plan.pkt_dup_p > 0.0 && self.pkt_rng.gen_bool(self.plan.pkt_dup_p) {
            self.stats.pkts_duplicated += 1;
            return PacketFault::Duplicate;
        }
        if self.plan.pkt_reorder_p > 0.0 && self.pkt_rng.gen_bool(self.plan.pkt_reorder_p) {
            self.stats.pkts_reordered += 1;
            return PacketFault::Delay(self.plan.pkt_reorder_delay);
        }
        PacketFault::Deliver
    }

    /// Storm tick: decide, per core, whether to force a reschedule.
    /// Returns the indices (within `cores`) to preempt.
    pub fn on_storm_tick(&mut self, cores: usize) -> Vec<usize> {
        let mut hit = Vec::new();
        if !self.active || self.plan.preempt_storm_p <= 0.0 {
            return hit;
        }
        for c in 0..cores {
            if self.storm_rng.gen_bool(self.plan.preempt_storm_p) {
                hit.push(c);
            }
        }
        self.stats.storm_preemptions += hit.len() as u64;
        hit
    }

    /// Record that one vCPU degraded from posted to emulated interrupts.
    pub fn note_pi_degradation(&mut self) {
        self.stats.pi_degradations += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chaos_plan() -> FaultPlan {
        FaultPlan {
            kick_drop_p: 0.05,
            kick_delay_p: 0.05,
            kick_delay: SimDuration::from_micros(50),
            worker_stall_p: 0.02,
            worker_stall: SimDuration::from_micros(200),
            msi_drop_p: 0.01,
            msi_delay_p: 0.02,
            msi_delay: SimDuration::from_micros(30),
            pkt_drop_p: 0.01,
            pkt_dup_p: 0.01,
            pkt_reorder_p: 0.02,
            pkt_reorder_delay: SimDuration::from_micros(40),
            preempt_storm_period: SimDuration::from_millis(5),
            preempt_storm_p: 0.5,
            pi_unavailable_mask: 0b1,
            pi_fail_after: SimDuration::from_millis(100),
            ..FaultPlan::none()
        }
    }

    #[test]
    fn empty_plan_is_inactive() {
        assert!(!FaultPlan::none().is_active());
        assert!(!FaultPlan::default().is_active());
        assert!(chaos_plan().is_active());
    }

    #[test]
    fn inert_injector_never_injects_and_never_draws() {
        let mut inj = FaultInjector::inert();
        let before = format!("{:?}", inj.kick_rng);
        for _ in 0..1000 {
            assert_eq!(inj.on_guest_kick(), DeliveryFault::Deliver);
            assert_eq!(inj.on_msi(), DeliveryFault::Deliver);
            assert_eq!(inj.on_packet(), PacketFault::Deliver);
            assert_eq!(inj.on_worker_dispatch(), None);
            assert!(inj.on_storm_tick(8).is_empty());
        }
        // No RNG state advanced: the clean path is draw-free.
        assert_eq!(before, format!("{:?}", inj.kick_rng));
        assert_eq!(inj.stats().total(), 0);
    }

    #[test]
    fn same_seed_same_decisions() {
        let mut a = FaultInjector::new(chaos_plan(), 42);
        let mut b = FaultInjector::new(chaos_plan(), 42);
        for _ in 0..5000 {
            assert_eq!(a.on_guest_kick(), b.on_guest_kick());
            assert_eq!(a.on_packet(), b.on_packet());
            assert_eq!(a.on_msi(), b.on_msi());
            assert_eq!(a.on_worker_dispatch(), b.on_worker_dispatch());
            assert_eq!(a.on_storm_tick(4), b.on_storm_tick(4));
        }
        assert_eq!(a.stats(), b.stats());
        assert!(a.stats().total() > 0, "chaos plan injected nothing");
    }

    #[test]
    fn streams_are_isolated_per_injection_point() {
        // Interleaving decisions at other points must not change the
        // decision sequence at a given point.
        let mut lone = FaultInjector::new(chaos_plan(), 7);
        let mut mixed = FaultInjector::new(chaos_plan(), 7);
        let solo: Vec<DeliveryFault> = (0..500).map(|_| lone.on_guest_kick()).collect();
        let interleaved: Vec<DeliveryFault> = (0..500)
            .map(|_| {
                mixed.on_packet();
                mixed.on_msi();
                mixed.on_worker_dispatch();
                mixed.on_guest_kick()
            })
            .collect();
        assert_eq!(solo, interleaved);
    }

    #[test]
    fn rates_are_roughly_honoured() {
        let plan = FaultPlan {
            pkt_drop_p: 0.1,
            ..FaultPlan::none()
        };
        let mut inj = FaultInjector::new(plan, 99);
        let drops = (0..100_000)
            .filter(|_| inj.on_packet() == PacketFault::Drop)
            .count();
        let frac = drops as f64 / 100_000.0;
        assert!((frac - 0.1).abs() < 0.01, "drop frac {frac}");
    }

    #[test]
    fn pi_mask_addresses_vms() {
        let plan = FaultPlan {
            pi_unavailable_mask: 0b101,
            ..FaultPlan::none()
        };
        assert!(plan.pi_fails_for_vm(0));
        assert!(!plan.pi_fails_for_vm(1));
        assert!(plan.pi_fails_for_vm(2));
        assert!(!plan.pi_fails_for_vm(64));
        assert!(plan.is_active());
    }

    #[test]
    fn drop_takes_priority_over_delay() {
        let plan = FaultPlan {
            kick_drop_p: 1.0,
            kick_delay_p: 1.0,
            kick_delay: SimDuration::from_micros(1),
            ..FaultPlan::none()
        };
        let mut inj = FaultInjector::new(plan, 1);
        for _ in 0..100 {
            assert_eq!(inj.on_guest_kick(), DeliveryFault::Drop);
        }
    }

    #[test]
    fn salt_changes_the_stream() {
        let base = chaos_plan();
        let salted = FaultPlan { salt: 1, ..base };
        let mut a = FaultInjector::new(base, 42);
        let mut b = FaultInjector::new(salted, 42);
        let same = (0..1000)
            .filter(|_| a.on_packet() == b.on_packet())
            .count();
        assert!(same < 1000, "salt had no effect");
    }
}
