//! Seeded, deterministic fault injection.
//!
//! A [`FaultPlan`] is a plain-data description of *what can go wrong* in a
//! simulation run: per-injection-point probabilities and magnitudes for
//! dropped/delayed guest kicks, vhost-worker stalls, lost/late MSIs,
//! packet loss/duplication/reordering, forced vCPU preemption storms, and
//! mid-run loss of posted-interrupt hardware for a subset of VMs. The plan
//! is `Copy` so an experiment spec that embeds one stays a pure value —
//! a faulted run is still a pure function of `(config, workload, params,
//! seed, plan)` and therefore bitwise-reproducible under the parallel
//! sweep executor at any `ES2_THREADS`.
//!
//! A [`FaultInjector`] is the runtime half: it owns one forked [`SimRng`]
//! stream **per injection point**, so the draw sequence at each point
//! depends only on how many decisions that point has made — not on how
//! decisions at different points interleave, and never on the simulation's
//! own RNG. Two guarantees follow:
//!
//! 1. **Clean-path identity** — an inactive injector performs *zero* RNG
//!    draws, so a run with no plan is bit-identical to a build without the
//!    hooks at all.
//! 2. **Stream isolation** — enabling one fault class does not shift the
//!    random stream seen by another, which keeps A/B comparisons between
//!    plans meaningful.
//!
//! The injector only *decides*; the world being simulated applies the
//! decision (e.g. by not queueing the vhost handler, or by re-scheduling a
//! packet arrival) and owns the corresponding recovery machinery.

use crate::rng::SimRng;
use crate::time::SimDuration;

/// What to do with a single point-to-point delivery (guest kick or MSI).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DeliveryFault {
    /// Deliver normally.
    Deliver,
    /// Silently lose the notification (the payload state remains; only the
    /// signal is lost — exactly the failure the re-arm double-check and
    /// watchdog re-kick recover from).
    Drop,
    /// Deliver after an extra delay.
    Delay(SimDuration),
}

/// The kind of virtio ring corruption a hostile guest publishes.
///
/// The injector only *selects* a kind; the virtqueue model translates it
/// into concrete corrupted ring state (an out-of-range descriptor index, a
/// bogus avail idx, an over-length or self-referencing chain, a used-ring
/// overflow claim) and the vhost backend's validation layer is what must
/// catch it and quarantine the queue.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RingCorruptionKind {
    /// Publish a descriptor index `>= queue size`.
    DescOutOfRange,
    /// Jump the avail idx far ahead of the entries actually added.
    AvailIdxJump,
    /// Move the avail idx *backwards* past entries the device consumed.
    AvailIdxRegress,
    /// Publish a self-referencing descriptor chain (`next == head`).
    DescLoop,
    /// Publish a chain one past the queue-size limit.
    ChainOverLength,
    /// Claim more used entries outstanding than the ring can hold.
    UsedOverflow,
}

/// Decision for one guest kick exit on the hostile VM: how many *extra*
/// spurious doorbell kicks to fire after the real one, and whether to
/// corrupt the ring before the backend next looks at it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HostileKick {
    /// Spurious kick exits the guest performs after the real kick (each
    /// costs the hostile guest a full I/O-instruction exit).
    pub extra_kicks: u32,
    /// Ring corruption to publish, if any.
    pub corruption: Option<RingCorruptionKind>,
}

impl HostileKick {
    /// The well-behaved decision: no storm, no corruption.
    pub const NONE: HostileKick = HostileKick {
        extra_kicks: 0,
        corruption: None,
    };
}

/// What to do with a single packet crossing a link.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PacketFault {
    /// Deliver normally.
    Deliver,
    /// Lose the packet (TCP retransmit is the recovery path).
    Drop,
    /// Deliver twice (the receiver must tolerate duplicates).
    Duplicate,
    /// Deliver late — after packets transmitted behind it, i.e. reordered.
    Delay(SimDuration),
}

/// A complete, declarative fault schedule for one simulation run.
///
/// All-zero probabilities (the [`FaultPlan::none`] default) mean "no
/// faults"; such a plan never activates the injector. Probabilities are
/// per-decision Bernoulli draws; drop is evaluated before delay at points
/// that support both.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultPlan {
    /// Extra salt mixed into the run seed so distinct plans with the same
    /// run seed draw from unrelated streams.
    pub salt: u64,
    /// P(guest kick is lost) per kick I/O exit.
    pub kick_drop_p: f64,
    /// P(guest kick is delayed) per kick, evaluated after the drop draw.
    pub kick_delay_p: f64,
    /// Delay applied to a delayed kick.
    pub kick_delay: SimDuration,
    /// P(vhost worker stalls) per handler dispatch.
    pub worker_stall_p: f64,
    /// Stall duration added to a stalled dispatch.
    pub worker_stall: SimDuration,
    /// P(device MSI is lost) per interrupt raise.
    pub msi_drop_p: f64,
    /// P(device MSI is delayed) per raise, evaluated after the drop draw.
    pub msi_delay_p: f64,
    /// Delay applied to a delayed MSI.
    pub msi_delay: SimDuration,
    /// P(packet dropped) per link transmit.
    pub pkt_drop_p: f64,
    /// P(packet duplicated), evaluated after the drop draw.
    pub pkt_dup_p: f64,
    /// P(packet delayed past later traffic), evaluated after drop and dup.
    pub pkt_reorder_p: f64,
    /// Extra latency for a reordered packet.
    pub pkt_reorder_delay: SimDuration,
    /// Period of forced-preemption storms; `ZERO` disables them.
    pub preempt_storm_period: SimDuration,
    /// P(a given core is forcibly rescheduled) per storm tick.
    pub preempt_storm_p: f64,
    /// Bitmask of VM indices whose posted-interrupt hardware fails mid-run
    /// (bit *n* = VM *n*). Zero disables the degradation.
    pub pi_unavailable_mask: u64,
    /// When, relative to run start, the masked VMs lose PI.
    pub pi_fail_after: SimDuration,

    // ---- hostile-guest family ----
    /// The VM index that misbehaves. Every hostile fault class below
    /// applies to this VM only — the isolation suite asserts that the
    /// blast radius stays confined to it.
    pub hostile_vm: u32,
    /// Corrupt the ring on the N-th kick exit of the hostile VM
    /// (1-based; 0 disables). Deterministic — no RNG draw — so a test can
    /// pin the corruption to an exact guest operation.
    pub ring_corrupt_at_kick: u64,
    /// Which corruption [`ring_corrupt_at_kick`](Self::ring_corrupt_at_kick)
    /// publishes.
    pub ring_corruption: RingCorruptionKind,
    /// P(a kick exit is followed by a spurious doorbell storm) per hostile
    /// kick.
    pub kick_storm_p: f64,
    /// Spurious kicks per storm burst.
    pub kick_storm_burst: u32,
    /// P(an EOI is followed by spurious EOI writes) per hostile EOI.
    pub eoi_storm_p: f64,
    /// Spurious EOI writes per storm burst (each is an APIC-access exit on
    /// the emulated path).
    pub eoi_storm_burst: u32,
    /// P(the hostile guest publishes a self-referencing descriptor) per
    /// kick, evaluated after the storm draw.
    pub desc_loop_p: f64,

    // ---- host-fault family ----
    // These classes address *hosts*, not VMs, so they are decided once at
    // cluster construction by the cluster-level injector; the per-host
    // machine plans always carry them zeroed (see
    // [`FaultPlan::for_single_host`]). A single-host `Machine` handed a
    // plan with only host faults set therefore still runs the clean path.
    /// Bitmask of host indices that crash outright (bit *h* = host *h*).
    /// Deterministic — no RNG draw — so a test can pin the failing host.
    pub host_crash_mask: u64,
    /// When, relative to run start, the masked (or drawn) hosts crash.
    /// `ZERO` disables the deterministic mask.
    pub host_crash_at: SimDuration,
    /// P(a given host crashes) drawn once per host at admission time from
    /// the host stream. Crashed hosts fail at `host_crash_at` plus a
    /// uniform draw in `[0, host_crash_jitter]`.
    pub host_crash_p: f64,
    /// Uniform jitter window added to a *drawn* crash time so drawn
    /// crashes spread out instead of failing in lockstep.
    pub host_crash_jitter: SimDuration,
    /// Bitmask of hosts that run degraded (bit *h* = host *h*): their
    /// cores suffer forced-preemption storms for the whole run, modeling a
    /// sick-but-alive hypervisor. Projection maps this onto the existing
    /// per-machine preempt-storm machinery of the affected host only.
    pub host_degraded_storm_mask: u64,
    /// Storm probability per core per tick on degraded hosts.
    pub host_degraded_storm_p: f64,
    /// Storm tick period on degraded hosts; `ZERO` disables degradation.
    pub host_degraded_storm_period: SimDuration,
    /// P(a planned live migration aborts mid-copy and rolls back to the
    /// source host), drawn once per planned move from the migration
    /// stream.
    pub migration_abort_p: f64,
    /// Deterministically abort the N-th planned migration (1-based; 0
    /// disables) — outranks the probabilistic draw for that move so tests
    /// can pin the rollback to an exact move.
    pub migration_abort_nth: u64,

    // ---- churn control-plane family ----
    // These classes address control-plane *operations* (placements and
    // boots of churn arrivals), not VMs or hosts, so like the host family
    // they are decided once at cluster construction by the cluster-level
    // injector and always reach per-host machine plans zeroed (see
    // [`FaultPlan::for_single_host`]).
    /// P(a placement attempt fails transiently at the control plane even
    /// though capacity exists), drawn once per attempt from the churn
    /// fault stream. The arrival re-enters the retry queue.
    pub churn_place_fail_p: f64,
    /// Deterministically fail the N-th placement attempt (1-based; 0
    /// disables) — outranks the probabilistic draw for that attempt so
    /// tests can pin a transient rejection to an exact arrival.
    pub churn_place_fail_nth: u64,
    /// P(a boot sticks mid-handshake: vCPUs come up but the virtio
    /// feature negotiation never completes), drawn once per boot from the
    /// churn fault stream. The control plane times the boot out, tears
    /// the slot down, and re-enters the arrival into the retry queue.
    pub churn_boot_stall_p: f64,
    /// Deterministically stall the N-th boot (1-based; 0 disables) —
    /// outranks the probabilistic draw for that boot.
    pub churn_boot_stall_nth: u64,
}

impl FaultPlan {
    /// The empty plan: no faults, injector stays inert.
    pub const fn none() -> Self {
        FaultPlan {
            salt: 0,
            kick_drop_p: 0.0,
            kick_delay_p: 0.0,
            kick_delay: SimDuration::ZERO,
            worker_stall_p: 0.0,
            worker_stall: SimDuration::ZERO,
            msi_drop_p: 0.0,
            msi_delay_p: 0.0,
            msi_delay: SimDuration::ZERO,
            pkt_drop_p: 0.0,
            pkt_dup_p: 0.0,
            pkt_reorder_p: 0.0,
            pkt_reorder_delay: SimDuration::ZERO,
            preempt_storm_period: SimDuration::ZERO,
            preempt_storm_p: 0.0,
            pi_unavailable_mask: 0,
            pi_fail_after: SimDuration::ZERO,
            hostile_vm: 0,
            ring_corrupt_at_kick: 0,
            ring_corruption: RingCorruptionKind::DescOutOfRange,
            kick_storm_p: 0.0,
            kick_storm_burst: 0,
            eoi_storm_p: 0.0,
            eoi_storm_burst: 0,
            desc_loop_p: 0.0,
            host_crash_mask: 0,
            host_crash_at: SimDuration::ZERO,
            host_crash_p: 0.0,
            host_crash_jitter: SimDuration::ZERO,
            host_degraded_storm_mask: 0,
            host_degraded_storm_p: 0.0,
            host_degraded_storm_period: SimDuration::ZERO,
            migration_abort_p: 0.0,
            migration_abort_nth: 0,
            churn_place_fail_p: 0.0,
            churn_place_fail_nth: 0,
            churn_boot_stall_p: 0.0,
            churn_boot_stall_nth: 0,
        }
    }

    /// Whether any fault class is enabled.
    pub fn is_active(&self) -> bool {
        self.kick_drop_p > 0.0
            || self.kick_delay_p > 0.0
            || self.worker_stall_p > 0.0
            || self.msi_drop_p > 0.0
            || self.msi_delay_p > 0.0
            || self.pkt_drop_p > 0.0
            || self.pkt_dup_p > 0.0
            || self.pkt_reorder_p > 0.0
            || (!self.preempt_storm_period.is_zero() && self.preempt_storm_p > 0.0)
            || self.pi_unavailable_mask != 0
            || self.hostile_active()
            || self.host_fault_active()
            || self.churn_fault_active()
    }

    /// Whether any churn control-plane fault class is enabled. Existing
    /// chaos/hostile/host plans leave the whole family zero, so their
    /// runs and reports are untouched by the churn machinery.
    pub fn churn_fault_active(&self) -> bool {
        self.churn_place_fail_p > 0.0
            || self.churn_place_fail_nth > 0
            || self.churn_boot_stall_p > 0.0
            || self.churn_boot_stall_nth > 0
    }

    /// Whether any host-fault class is enabled. Single-host plans (all
    /// existing chaos/hostile plans) leave the whole family zero, so their
    /// runs and reports are untouched by the cluster machinery.
    pub fn host_fault_active(&self) -> bool {
        (self.host_crash_mask != 0 && !self.host_crash_at.is_zero())
            || self.host_crash_p > 0.0
            || (self.host_degraded_storm_mask != 0
                && self.host_degraded_storm_p > 0.0
                && !self.host_degraded_storm_period.is_zero())
            || self.migration_abort_p > 0.0
            || self.migration_abort_nth > 0
    }

    /// Whether host `h` is deterministically scheduled to crash.
    pub fn crashes_host(&self, h: usize) -> bool {
        h < 64 && !self.host_crash_at.is_zero() && self.host_crash_mask & (1u64 << h) != 0
    }

    /// Whether host `h` runs degraded (forced-preemption storms).
    pub fn degrades_host(&self, h: usize) -> bool {
        h < 64
            && self.host_degraded_storm_p > 0.0
            && !self.host_degraded_storm_period.is_zero()
            && self.host_degraded_storm_mask & (1u64 << h) != 0
    }

    /// Project this plan onto one host of a cluster: the host family is
    /// zeroed (those decisions live at the cluster level), and a degraded
    /// host has the degradation translated onto its own preempt-storm
    /// machinery. VM-addressed classes are **not** remapped here — the
    /// cluster layer composes this with [`for_vm_range`](Self::for_vm_range)
    /// over the host's global VM block.
    pub fn for_single_host(&self, host: usize) -> FaultPlan {
        let mut p = *self;
        if self.degrades_host(host) {
            p.preempt_storm_period = self.host_degraded_storm_period;
            p.preempt_storm_p = self.host_degraded_storm_p;
        }
        p.host_crash_mask = 0;
        p.host_crash_at = SimDuration::ZERO;
        p.host_crash_p = 0.0;
        p.host_crash_jitter = SimDuration::ZERO;
        p.host_degraded_storm_mask = 0;
        p.host_degraded_storm_p = 0.0;
        p.host_degraded_storm_period = SimDuration::ZERO;
        p.migration_abort_p = 0.0;
        p.migration_abort_nth = 0;
        p.churn_place_fail_p = 0.0;
        p.churn_place_fail_nth = 0;
        p.churn_boot_stall_p = 0.0;
        p.churn_boot_stall_nth = 0;
        p
    }

    /// Whether any hostile-guest fault class is enabled. Existing chaos
    /// plans leave all of these zero, so their runs (and reports) are
    /// untouched by the hostile machinery.
    pub fn hostile_active(&self) -> bool {
        self.ring_corrupt_at_kick > 0
            || (self.kick_storm_p > 0.0 && self.kick_storm_burst > 0)
            || (self.eoi_storm_p > 0.0 && self.eoi_storm_burst > 0)
            || self.desc_loop_p > 0.0
    }

    /// Whether VM `vm` is scheduled to lose posted-interrupt hardware.
    pub fn pi_fails_for_vm(&self, vm: usize) -> bool {
        vm < 64 && self.pi_unavailable_mask & (1u64 << vm) != 0
    }

    /// Translate this plan to a VM block `[base, base + count)` — the
    /// lane-sharding projection. Probabilistic fault classes are global
    /// (every lane keeps them; each lane's injector draws from its own
    /// seed-derived streams), while VM-addressed classes are remapped to
    /// lane-local indices: the PI-failure mask is shifted and truncated
    /// to the block, and the hostile-guest family survives only in the
    /// lane that owns `hostile_vm` (other lanes get the family zeroed,
    /// matching "other VMs draw nothing from the hostile streams").
    pub fn for_vm_range(&self, base: u32, count: u32) -> FaultPlan {
        let mut p = *self;
        p.pi_unavailable_mask = if (base as u64) < 64 {
            let shifted = self.pi_unavailable_mask >> base;
            if count as u64 >= 64 {
                shifted
            } else {
                shifted & ((1u64 << count) - 1)
            }
        } else {
            0
        };
        if self.hostile_active() {
            if self.hostile_vm >= base && self.hostile_vm < base + count {
                p.hostile_vm -= base;
            } else {
                p.hostile_vm = 0;
                p.ring_corrupt_at_kick = 0;
                p.kick_storm_p = 0.0;
                p.kick_storm_burst = 0;
                p.eoi_storm_p = 0.0;
                p.eoi_storm_burst = 0;
                p.desc_loop_p = 0.0;
            }
        }
        p
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

/// Injection counters, reported alongside run results so degradation can
/// be attributed to specific injected faults.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultStats {
    pub kicks_dropped: u64,
    pub kicks_delayed: u64,
    pub worker_stalls: u64,
    pub msis_dropped: u64,
    pub msis_delayed: u64,
    pub pkts_dropped: u64,
    pub pkts_duplicated: u64,
    pub pkts_reordered: u64,
    pub storm_preemptions: u64,
    pub pi_degradations: u64,
    /// Ring corruptions published by the hostile guest (deterministic
    /// triggers and descriptor-loop draws combined).
    pub ring_corruptions: u64,
    /// Spurious doorbell kicks fired by kick storms.
    pub storm_kicks: u64,
    /// Spurious EOI writes fired by EOI storms.
    pub storm_eois: u64,
    /// Hosts crashed (deterministic mask plus probabilistic draws).
    pub host_crashes: u64,
    /// Planned live migrations aborted mid-copy.
    pub migration_aborts: u64,
    /// Churn placement attempts failed transiently at the control plane.
    pub churn_place_fails: u64,
    /// Churn boots stuck mid-handshake (timed out and rolled back).
    pub churn_boot_stalls: u64,
}

impl FaultStats {
    /// Total faults injected across all classes.
    pub fn total(&self) -> u64 {
        self.kicks_dropped
            + self.kicks_delayed
            + self.worker_stalls
            + self.msis_dropped
            + self.msis_delayed
            + self.pkts_dropped
            + self.pkts_duplicated
            + self.pkts_reordered
            + self.storm_preemptions
            + self.pi_degradations
            + self.ring_corruptions
            + self.storm_kicks
            + self.storm_eois
            + self.host_crashes
            + self.migration_aborts
            + self.churn_place_fails
            + self.churn_boot_stalls
    }

    /// Accumulate another counter set (used when merging per-lane shards
    /// of one sharded run into a single result).
    pub fn merge(&mut self, o: &FaultStats) {
        self.kicks_dropped += o.kicks_dropped;
        self.kicks_delayed += o.kicks_delayed;
        self.worker_stalls += o.worker_stalls;
        self.msis_dropped += o.msis_dropped;
        self.msis_delayed += o.msis_delayed;
        self.pkts_dropped += o.pkts_dropped;
        self.pkts_duplicated += o.pkts_duplicated;
        self.pkts_reordered += o.pkts_reordered;
        self.storm_preemptions += o.storm_preemptions;
        self.pi_degradations += o.pi_degradations;
        self.ring_corruptions += o.ring_corruptions;
        self.storm_kicks += o.storm_kicks;
        self.storm_eois += o.storm_eois;
        self.host_crashes += o.host_crashes;
        self.migration_aborts += o.migration_aborts;
        self.churn_place_fails += o.churn_place_fails;
        self.churn_boot_stalls += o.churn_boot_stalls;
    }
}

/// Runtime fault decision engine: one independent RNG stream per
/// injection point, plus counters.
#[derive(Clone, Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    active: bool,
    kick_rng: SimRng,
    stall_rng: SimRng,
    msi_rng: SimRng,
    pkt_rng: SimRng,
    storm_rng: SimRng,
    hostile_kick_rng: SimRng,
    hostile_eoi_rng: SimRng,
    host_rng: SimRng,
    mig_rng: SimRng,
    churn_arrival_rng: SimRng,
    churn_retry_rng: SimRng,
    churn_fault_rng: SimRng,
    /// Kick exits seen from the hostile VM (drives the deterministic
    /// corrupt-at-Nth-kick trigger).
    hostile_kicks_seen: u64,
    /// Planned migrations seen (drives the deterministic abort-the-Nth
    /// trigger).
    moves_planned: u64,
    /// Churn placement attempts seen (drives fail-the-Nth).
    placements_tried: u64,
    /// Churn boots started (drives stall-the-Nth).
    boots_started: u64,
    stats: FaultStats,
}

impl FaultInjector {
    /// Build an injector for `plan`, deriving per-point streams from
    /// `seed ^ plan.salt`. An inactive plan produces an inert injector
    /// (every decision is `Deliver`/`None` with zero RNG draws).
    pub fn new(plan: FaultPlan, seed: u64) -> Self {
        let mut root = SimRng::new(seed ^ plan.salt ^ 0xFA17_FA17_FA17_FA17);
        let active = plan.is_active();
        // Fork order is part of the determinism contract: the hostile
        // streams fork *after* every pre-existing stream so adding them
        // left the seeds of the older injection points unchanged, the
        // host-fault streams fork after the hostile pair for the same
        // reason, and the three churn streams fork after the host pair.
        FaultInjector {
            plan,
            active,
            kick_rng: root.fork(),
            stall_rng: root.fork(),
            msi_rng: root.fork(),
            pkt_rng: root.fork(),
            storm_rng: root.fork(),
            hostile_kick_rng: root.fork(),
            hostile_eoi_rng: root.fork(),
            host_rng: root.fork(),
            mig_rng: root.fork(),
            churn_arrival_rng: root.fork(),
            churn_retry_rng: root.fork(),
            churn_fault_rng: root.fork(),
            hostile_kicks_seen: 0,
            moves_planned: 0,
            placements_tried: 0,
            boots_started: 0,
            stats: FaultStats::default(),
        }
    }

    /// An injector that never injects anything.
    pub fn inert() -> Self {
        FaultInjector::new(FaultPlan::none(), 0)
    }

    /// The plan this injector executes.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Whether any fault class is enabled.
    pub fn is_active(&self) -> bool {
        self.active
    }

    /// Injection counters so far.
    pub fn stats(&self) -> FaultStats {
        self.stats
    }

    /// Decide the fate of one guest kick (virtqueue notification exit).
    pub fn on_guest_kick(&mut self) -> DeliveryFault {
        if !self.active {
            return DeliveryFault::Deliver;
        }
        if self.plan.kick_drop_p > 0.0 && self.kick_rng.gen_bool(self.plan.kick_drop_p) {
            self.stats.kicks_dropped += 1;
            return DeliveryFault::Drop;
        }
        if self.plan.kick_delay_p > 0.0 && self.kick_rng.gen_bool(self.plan.kick_delay_p) {
            self.stats.kicks_delayed += 1;
            return DeliveryFault::Delay(self.plan.kick_delay);
        }
        DeliveryFault::Deliver
    }

    /// Extra stall to add to one vhost handler dispatch, if any.
    pub fn on_worker_dispatch(&mut self) -> Option<SimDuration> {
        if !self.active || self.plan.worker_stall_p <= 0.0 {
            return None;
        }
        if self.stall_rng.gen_bool(self.plan.worker_stall_p) {
            self.stats.worker_stalls += 1;
            Some(self.plan.worker_stall)
        } else {
            None
        }
    }

    /// Decide the fate of one device MSI.
    pub fn on_msi(&mut self) -> DeliveryFault {
        if !self.active {
            return DeliveryFault::Deliver;
        }
        if self.plan.msi_drop_p > 0.0 && self.msi_rng.gen_bool(self.plan.msi_drop_p) {
            self.stats.msis_dropped += 1;
            return DeliveryFault::Drop;
        }
        if self.plan.msi_delay_p > 0.0 && self.msi_rng.gen_bool(self.plan.msi_delay_p) {
            self.stats.msis_delayed += 1;
            return DeliveryFault::Delay(self.plan.msi_delay);
        }
        DeliveryFault::Deliver
    }

    /// Decide the fate of one packet crossing a link.
    pub fn on_packet(&mut self) -> PacketFault {
        if !self.active {
            return PacketFault::Deliver;
        }
        if self.plan.pkt_drop_p > 0.0 && self.pkt_rng.gen_bool(self.plan.pkt_drop_p) {
            self.stats.pkts_dropped += 1;
            return PacketFault::Drop;
        }
        if self.plan.pkt_dup_p > 0.0 && self.pkt_rng.gen_bool(self.plan.pkt_dup_p) {
            self.stats.pkts_duplicated += 1;
            return PacketFault::Duplicate;
        }
        if self.plan.pkt_reorder_p > 0.0 && self.pkt_rng.gen_bool(self.plan.pkt_reorder_p) {
            self.stats.pkts_reordered += 1;
            return PacketFault::Delay(self.plan.pkt_reorder_delay);
        }
        PacketFault::Deliver
    }

    /// Storm tick: decide, per core, whether to force a reschedule.
    /// Returns the indices (within `cores`) to preempt.
    pub fn on_storm_tick(&mut self, cores: usize) -> Vec<usize> {
        let mut hit = Vec::new();
        if !self.active || self.plan.preempt_storm_p <= 0.0 {
            return hit;
        }
        for c in 0..cores {
            if self.storm_rng.gen_bool(self.plan.preempt_storm_p) {
                hit.push(c);
            }
        }
        self.stats.storm_preemptions += hit.len() as u64;
        hit
    }

    /// Record that one vCPU degraded from posted to emulated interrupts.
    pub fn note_pi_degradation(&mut self) {
        self.stats.pi_degradations += 1;
    }

    /// Decide what the hostile guest does around one kick exit of VM
    /// `vm`: zero extra work for well-behaved VMs (and zero RNG draws —
    /// the per-VM gate sits before every draw, so enabling hostility on
    /// one VM cannot shift any other VM's behaviour).
    pub fn on_hostile_kick(&mut self, vm: u32) -> HostileKick {
        if !self.active || vm != self.plan.hostile_vm || !self.plan.hostile_active() {
            return HostileKick::NONE;
        }
        self.hostile_kicks_seen += 1;
        let mut decision = HostileKick::NONE;
        if self.plan.kick_storm_p > 0.0
            && self.plan.kick_storm_burst > 0
            && self.hostile_kick_rng.gen_bool(self.plan.kick_storm_p)
        {
            decision.extra_kicks = self.plan.kick_storm_burst;
            self.stats.storm_kicks += decision.extra_kicks as u64;
        }
        // The deterministic trigger outranks the probabilistic one so a
        // test can pin the corruption kind to an exact operation.
        if self.plan.ring_corrupt_at_kick > 0
            && self.hostile_kicks_seen == self.plan.ring_corrupt_at_kick
        {
            decision.corruption = Some(self.plan.ring_corruption);
            self.stats.ring_corruptions += 1;
        } else if self.plan.desc_loop_p > 0.0
            && self.hostile_kick_rng.gen_bool(self.plan.desc_loop_p)
        {
            decision.corruption = Some(RingCorruptionKind::DescLoop);
            self.stats.ring_corruptions += 1;
        }
        decision
    }

    /// Extra spurious EOI writes the hostile guest performs after one real
    /// EOI of VM `vm` (0 for well-behaved VMs, with zero RNG draws).
    pub fn on_hostile_eoi(&mut self, vm: u32) -> u32 {
        if !self.active
            || vm != self.plan.hostile_vm
            || self.plan.eoi_storm_p <= 0.0
            || self.plan.eoi_storm_burst == 0
        {
            return 0;
        }
        if self.hostile_eoi_rng.gen_bool(self.plan.eoi_storm_p) {
            self.stats.storm_eois += self.plan.eoi_storm_burst as u64;
            self.plan.eoi_storm_burst
        } else {
            0
        }
    }

    /// Decide, at cluster construction, whether (and when) host `host`
    /// crashes. The deterministic mask outranks the probabilistic draw
    /// and performs no draw at all; the probabilistic class draws exactly
    /// one Bernoulli per host (plus one jitter draw per *crashing* host)
    /// from the host stream, so host admission order — not event
    /// interleaving — is the only thing that shapes the sequence.
    pub fn on_host_admission(&mut self, host: usize) -> Option<SimDuration> {
        if !self.active {
            return None;
        }
        if self.plan.crashes_host(host) {
            self.stats.host_crashes += 1;
            return Some(self.plan.host_crash_at);
        }
        if self.plan.host_crash_p > 0.0 && self.host_rng.gen_bool(self.plan.host_crash_p) {
            let jitter = self.host_rng.gen_range(self.plan.host_crash_jitter.as_nanos() + 1);
            self.stats.host_crashes += 1;
            return Some(self.plan.host_crash_at + SimDuration::from_nanos(jitter));
        }
        None
    }

    /// Decide, at cluster construction, whether the next planned live
    /// migration aborts mid-copy. Deterministic abort-the-Nth outranks
    /// (and suppresses the draw for) that move.
    pub fn on_migration_planned(&mut self) -> bool {
        if !self.active {
            return false;
        }
        self.moves_planned += 1;
        if self.plan.migration_abort_nth > 0 {
            if self.moves_planned == self.plan.migration_abort_nth {
                self.stats.migration_aborts += 1;
                return true;
            }
            if self.plan.migration_abort_p <= 0.0 {
                return false;
            }
        }
        if self.plan.migration_abort_p > 0.0 && self.mig_rng.gen_bool(self.plan.migration_abort_p)
        {
            self.stats.migration_aborts += 1;
            return true;
        }
        false
    }

    /// Shape of the bounded-Pareto churn draws: `α = 2` gives the
    /// heavy tail (finite mean, infinite variance before truncation)
    /// that tenant inter-arrival and lifetime traces show.
    const CHURN_PARETO_ALPHA: f64 = 2.0;
    /// Upper truncation of the churn tail, as a multiple of `scale` —
    /// keeps a single draw from swallowing the whole run.
    const CHURN_PARETO_CAP: u64 = 32;

    /// One bounded-Pareto draw with minimum `scale / 2` (so the
    /// untruncated mean is `scale`) capped at `32 × scale`. Inverse
    /// transform on one uniform: exactly one RNG draw per call.
    fn pareto_ns(rng: &mut SimRng, scale_ns: u64) -> u64 {
        let xm = (scale_ns / 2).max(1) as f64;
        let cap = (scale_ns * Self::CHURN_PARETO_CAP).max(1) as f64;
        let alpha = Self::CHURN_PARETO_ALPHA;
        let u = rng.gen_f64();
        // Bounded Pareto inverse CDF: x = xm / (1 − u·(1 − (xm/cap)^α))^(1/α).
        let tail = 1.0 - u * (1.0 - (xm / cap).powf(alpha));
        (xm / tail.powf(1.0 / alpha)).min(cap) as u64
    }

    /// Draw the heavy-tailed gap to the next churn arrival. Called only
    /// when churn is enabled (the churn compiler draws the whole arrival
    /// schedule upfront, in arrival order), so a churn-disabled run
    /// performs zero draws from the churn streams by never calling this.
    pub fn churn_interarrival(&mut self, mean: SimDuration) -> SimDuration {
        SimDuration::from_nanos(Self::pareto_ns(&mut self.churn_arrival_rng, mean.as_nanos()))
    }

    /// Draw the heavy-tailed resident lifetime of one churn arrival,
    /// from the same stream as the inter-arrival gaps (the compiler
    /// alternates gap/lifetime draws in a fixed order).
    pub fn churn_lifetime(&mut self, mean: SimDuration) -> SimDuration {
        SimDuration::from_nanos(Self::pareto_ns(&mut self.churn_arrival_rng, mean.as_nanos()))
    }

    /// Deterministic jitter added to one retry backoff: uniform in
    /// `[0, window]`, one draw from the dedicated retry stream per
    /// scheduled retry (retries are scheduled in chronological order, so
    /// the sequence depends only on the retry schedule).
    pub fn churn_retry_jitter(&mut self, window: SimDuration) -> SimDuration {
        SimDuration::from_nanos(self.churn_retry_rng.gen_range(window.as_nanos() + 1))
    }

    /// Decide whether the next churn placement attempt fails transiently
    /// at the control plane. Deterministic fail-the-Nth outranks (and
    /// suppresses the draw for) that attempt, mirroring
    /// [`on_migration_planned`](Self::on_migration_planned).
    pub fn on_churn_placement(&mut self) -> bool {
        if !self.active {
            return false;
        }
        self.placements_tried += 1;
        if self.plan.churn_place_fail_nth > 0 {
            if self.placements_tried == self.plan.churn_place_fail_nth {
                self.stats.churn_place_fails += 1;
                return true;
            }
            if self.plan.churn_place_fail_p <= 0.0 {
                return false;
            }
        }
        if self.plan.churn_place_fail_p > 0.0
            && self.churn_fault_rng.gen_bool(self.plan.churn_place_fail_p)
        {
            self.stats.churn_place_fails += 1;
            return true;
        }
        false
    }

    /// Decide whether the next churn boot sticks mid-handshake (partial
    /// boot → timeout + rollback). Deterministic stall-the-Nth outranks
    /// and suppresses the draw for that boot.
    pub fn on_churn_boot(&mut self) -> bool {
        if !self.active {
            return false;
        }
        self.boots_started += 1;
        if self.plan.churn_boot_stall_nth > 0 {
            if self.boots_started == self.plan.churn_boot_stall_nth {
                self.stats.churn_boot_stalls += 1;
                return true;
            }
            if self.plan.churn_boot_stall_p <= 0.0 {
                return false;
            }
        }
        if self.plan.churn_boot_stall_p > 0.0
            && self.churn_fault_rng.gen_bool(self.plan.churn_boot_stall_p)
        {
            self.stats.churn_boot_stalls += 1;
            return true;
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chaos_plan() -> FaultPlan {
        FaultPlan {
            kick_drop_p: 0.05,
            kick_delay_p: 0.05,
            kick_delay: SimDuration::from_micros(50),
            worker_stall_p: 0.02,
            worker_stall: SimDuration::from_micros(200),
            msi_drop_p: 0.01,
            msi_delay_p: 0.02,
            msi_delay: SimDuration::from_micros(30),
            pkt_drop_p: 0.01,
            pkt_dup_p: 0.01,
            pkt_reorder_p: 0.02,
            pkt_reorder_delay: SimDuration::from_micros(40),
            preempt_storm_period: SimDuration::from_millis(5),
            preempt_storm_p: 0.5,
            pi_unavailable_mask: 0b1,
            pi_fail_after: SimDuration::from_millis(100),
            ..FaultPlan::none()
        }
    }

    #[test]
    fn empty_plan_is_inactive() {
        assert!(!FaultPlan::none().is_active());
        assert!(!FaultPlan::default().is_active());
        assert!(chaos_plan().is_active());
    }

    #[test]
    fn for_vm_range_shifts_and_truncates_the_pi_mask() {
        let plan = FaultPlan {
            pi_unavailable_mask: 0b1010_0110,
            pi_fail_after: SimDuration::from_millis(100),
            ..FaultPlan::none()
        };
        assert_eq!(plan.for_vm_range(0, 4).pi_unavailable_mask, 0b0110);
        assert_eq!(plan.for_vm_range(4, 4).pi_unavailable_mask, 0b1010);
        assert_eq!(plan.for_vm_range(2, 2).pi_unavailable_mask, 0b01);
        assert_eq!(plan.for_vm_range(8, 4).pi_unavailable_mask, 0);
        assert_eq!(plan.for_vm_range(64, 4).pi_unavailable_mask, 0);
        // A full-width block keeps the whole (shifted) mask.
        assert_eq!(plan.for_vm_range(0, 64).pi_unavailable_mask, 0b1010_0110);
        // Probabilistic classes pass through unchanged.
        let sliced = chaos_plan().for_vm_range(2, 2);
        assert_eq!(sliced.kick_drop_p, chaos_plan().kick_drop_p);
        assert_eq!(sliced.pkt_reorder_delay, chaos_plan().pkt_reorder_delay);
    }

    #[test]
    fn for_vm_range_keeps_hostility_only_in_the_owning_lane() {
        let plan = FaultPlan {
            hostile_vm: 5,
            ring_corrupt_at_kick: 20,
            kick_storm_p: 0.3,
            kick_storm_burst: 8,
            eoi_storm_p: 0.2,
            eoi_storm_burst: 4,
            desc_loop_p: 0.002,
            ..FaultPlan::none()
        };
        let owner = plan.for_vm_range(4, 4);
        assert!(owner.hostile_active());
        assert_eq!(owner.hostile_vm, 1, "hostile index remapped lane-local");
        assert_eq!(owner.ring_corrupt_at_kick, 20);
        let other = plan.for_vm_range(0, 4);
        assert!(!other.hostile_active());
        assert_eq!(other.hostile_vm, 0);
        assert_eq!(other.kick_storm_burst, 0);
        assert_eq!(other.desc_loop_p, 0.0);
    }

    #[test]
    fn fault_stats_merge_sums_every_counter() {
        let mut a = FaultStats {
            kicks_dropped: 1,
            msis_delayed: 2,
            storm_eois: 3,
            ..FaultStats::default()
        };
        let b = FaultStats {
            kicks_dropped: 10,
            pkts_reordered: 5,
            storm_eois: 7,
            ..FaultStats::default()
        };
        let total = a.total() + b.total();
        a.merge(&b);
        assert_eq!(a.kicks_dropped, 11);
        assert_eq!(a.msis_delayed, 2);
        assert_eq!(a.pkts_reordered, 5);
        assert_eq!(a.storm_eois, 10);
        assert_eq!(a.total(), total, "merge must not lose any counter");
    }

    #[test]
    fn inert_injector_never_injects_and_never_draws() {
        let mut inj = FaultInjector::inert();
        let before = format!("{:?}", inj.kick_rng);
        for _ in 0..1000 {
            assert_eq!(inj.on_guest_kick(), DeliveryFault::Deliver);
            assert_eq!(inj.on_msi(), DeliveryFault::Deliver);
            assert_eq!(inj.on_packet(), PacketFault::Deliver);
            assert_eq!(inj.on_worker_dispatch(), None);
            assert!(inj.on_storm_tick(8).is_empty());
            assert_eq!(inj.on_hostile_kick(0), HostileKick::NONE);
            assert_eq!(inj.on_hostile_eoi(0), 0);
            assert_eq!(inj.on_host_admission(0), None);
            assert!(!inj.on_migration_planned());
            assert!(!inj.on_churn_placement());
            assert!(!inj.on_churn_boot());
        }
        // No RNG state advanced: the clean path is draw-free.
        assert_eq!(before, format!("{:?}", inj.kick_rng));
        assert_eq!(inj.stats().total(), 0);
    }

    #[test]
    fn same_seed_same_decisions() {
        let mut a = FaultInjector::new(chaos_plan(), 42);
        let mut b = FaultInjector::new(chaos_plan(), 42);
        for _ in 0..5000 {
            assert_eq!(a.on_guest_kick(), b.on_guest_kick());
            assert_eq!(a.on_packet(), b.on_packet());
            assert_eq!(a.on_msi(), b.on_msi());
            assert_eq!(a.on_worker_dispatch(), b.on_worker_dispatch());
            assert_eq!(a.on_storm_tick(4), b.on_storm_tick(4));
        }
        assert_eq!(a.stats(), b.stats());
        assert!(a.stats().total() > 0, "chaos plan injected nothing");
    }

    #[test]
    fn streams_are_isolated_per_injection_point() {
        // Interleaving decisions at other points must not change the
        // decision sequence at a given point.
        let mut lone = FaultInjector::new(chaos_plan(), 7);
        let mut mixed = FaultInjector::new(chaos_plan(), 7);
        let solo: Vec<DeliveryFault> = (0..500).map(|_| lone.on_guest_kick()).collect();
        let interleaved: Vec<DeliveryFault> = (0..500)
            .map(|_| {
                mixed.on_packet();
                mixed.on_msi();
                mixed.on_worker_dispatch();
                mixed.on_guest_kick()
            })
            .collect();
        assert_eq!(solo, interleaved);
    }

    #[test]
    fn rates_are_roughly_honoured() {
        let plan = FaultPlan {
            pkt_drop_p: 0.1,
            ..FaultPlan::none()
        };
        let mut inj = FaultInjector::new(plan, 99);
        let drops = (0..100_000)
            .filter(|_| inj.on_packet() == PacketFault::Drop)
            .count();
        let frac = drops as f64 / 100_000.0;
        assert!((frac - 0.1).abs() < 0.01, "drop frac {frac}");
    }

    #[test]
    fn pi_mask_addresses_vms() {
        let plan = FaultPlan {
            pi_unavailable_mask: 0b101,
            ..FaultPlan::none()
        };
        assert!(plan.pi_fails_for_vm(0));
        assert!(!plan.pi_fails_for_vm(1));
        assert!(plan.pi_fails_for_vm(2));
        assert!(!plan.pi_fails_for_vm(64));
        assert!(plan.is_active());
    }

    #[test]
    fn drop_takes_priority_over_delay() {
        let plan = FaultPlan {
            kick_drop_p: 1.0,
            kick_delay_p: 1.0,
            kick_delay: SimDuration::from_micros(1),
            ..FaultPlan::none()
        };
        let mut inj = FaultInjector::new(plan, 1);
        for _ in 0..100 {
            assert_eq!(inj.on_guest_kick(), DeliveryFault::Drop);
        }
    }

    fn hostile_plan() -> FaultPlan {
        FaultPlan {
            hostile_vm: 2,
            ring_corrupt_at_kick: 5,
            ring_corruption: RingCorruptionKind::AvailIdxJump,
            kick_storm_p: 0.2,
            kick_storm_burst: 8,
            eoi_storm_p: 0.2,
            eoi_storm_burst: 4,
            desc_loop_p: 0.01,
            ..FaultPlan::none()
        }
    }

    #[test]
    fn hostile_fields_activate_the_plan() {
        assert!(hostile_plan().is_active());
        assert!(hostile_plan().hostile_active());
        assert!(!chaos_plan().hostile_active(), "chaos plan must stay hostile-free");
        assert!(
            FaultPlan {
                ring_corrupt_at_kick: 1,
                ..FaultPlan::none()
            }
            .is_active()
        );
    }

    #[test]
    fn hostile_decisions_target_only_the_hostile_vm() {
        let mut inj = FaultInjector::new(hostile_plan(), 42);
        let before = format!("{:?}", inj.hostile_kick_rng);
        for vm in [0u32, 1, 3, 7] {
            for _ in 0..200 {
                assert_eq!(inj.on_hostile_kick(vm), HostileKick::NONE);
                assert_eq!(inj.on_hostile_eoi(vm), 0);
            }
        }
        // Non-target VMs drew nothing: the hostile stream is untouched.
        assert_eq!(before, format!("{:?}", inj.hostile_kick_rng));
        assert_eq!(inj.stats().total(), 0);
    }

    #[test]
    fn corruption_fires_exactly_once_at_the_chosen_kick() {
        let plan = FaultPlan {
            hostile_vm: 1,
            ring_corrupt_at_kick: 3,
            ring_corruption: RingCorruptionKind::DescOutOfRange,
            ..FaultPlan::none()
        };
        let mut inj = FaultInjector::new(plan, 9);
        let decisions: Vec<HostileKick> = (0..10).map(|_| inj.on_hostile_kick(1)).collect();
        for (i, d) in decisions.iter().enumerate() {
            if i == 2 {
                assert_eq!(d.corruption, Some(RingCorruptionKind::DescOutOfRange));
            } else {
                assert_eq!(d.corruption, None, "kick {i}");
            }
            assert_eq!(d.extra_kicks, 0, "no storm enabled");
        }
        assert_eq!(inj.stats().ring_corruptions, 1);
    }

    #[test]
    fn hostile_streams_are_isolated_from_existing_points() {
        // Hostile draws must not shift the pre-existing streams (their
        // forks happen after every old stream) and vice versa.
        let plan = FaultPlan {
            kick_drop_p: 0.1,
            ..hostile_plan()
        };
        let mut lone = FaultInjector::new(plan, 7);
        let mut mixed = FaultInjector::new(plan, 7);
        let solo: Vec<DeliveryFault> = (0..500).map(|_| lone.on_guest_kick()).collect();
        let interleaved: Vec<DeliveryFault> = (0..500)
            .map(|_| {
                mixed.on_hostile_kick(2);
                mixed.on_hostile_eoi(2);
                mixed.on_guest_kick()
            })
            .collect();
        assert_eq!(solo, interleaved);

        // And the old streams seed identically whether or not the hostile
        // family is enabled at all.
        let mut plain = FaultInjector::new(chaos_plan(), 3);
        let mut with_hostile = FaultInjector::new(
            FaultPlan {
                kick_storm_p: 0.5,
                kick_storm_burst: 4,
                hostile_vm: 9,
                ..chaos_plan()
            },
            3,
        );
        for _ in 0..500 {
            assert_eq!(plain.on_guest_kick(), with_hostile.on_guest_kick());
            assert_eq!(plain.on_packet(), with_hostile.on_packet());
        }
    }

    #[test]
    fn storm_bursts_are_sized_and_counted() {
        let plan = FaultPlan {
            hostile_vm: 0,
            kick_storm_p: 1.0,
            kick_storm_burst: 6,
            eoi_storm_p: 1.0,
            eoi_storm_burst: 3,
            ..FaultPlan::none()
        };
        let mut inj = FaultInjector::new(plan, 5);
        for _ in 0..10 {
            assert_eq!(inj.on_hostile_kick(0).extra_kicks, 6);
            assert_eq!(inj.on_hostile_eoi(0), 3);
        }
        assert_eq!(inj.stats().storm_kicks, 60);
        assert_eq!(inj.stats().storm_eois, 30);
    }

    #[test]
    fn host_fault_fields_activate_the_plan() {
        assert!(!chaos_plan().host_fault_active(), "chaos plan must stay host-fault-free");
        assert!(!hostile_plan().host_fault_active());
        let crash = FaultPlan {
            host_crash_mask: 0b10,
            host_crash_at: SimDuration::from_millis(50),
            ..FaultPlan::none()
        };
        assert!(crash.host_fault_active());
        assert!(crash.is_active());
        assert!(crash.crashes_host(1));
        assert!(!crash.crashes_host(0));
        assert!(!crash.crashes_host(64));
        let abort = FaultPlan {
            migration_abort_nth: 1,
            ..FaultPlan::none()
        };
        assert!(abort.host_fault_active() && abort.is_active());
    }

    #[test]
    fn for_single_host_projects_degradation_and_zeroes_the_family() {
        let plan = FaultPlan {
            host_crash_mask: 0b1,
            host_crash_at: SimDuration::from_millis(10),
            host_degraded_storm_mask: 0b100,
            host_degraded_storm_p: 0.25,
            host_degraded_storm_period: SimDuration::from_millis(2),
            migration_abort_p: 0.5,
            kick_drop_p: 0.05,
            ..FaultPlan::none()
        };
        assert!(plan.degrades_host(2) && !plan.degrades_host(0));
        let healthy = plan.for_single_host(0);
        assert!(!healthy.host_fault_active());
        assert_eq!(healthy.preempt_storm_p, 0.0);
        assert_eq!(healthy.kick_drop_p, 0.05, "VM-level classes pass through");
        let sick = plan.for_single_host(2);
        assert!(!sick.host_fault_active(), "host family never reaches a machine");
        assert_eq!(sick.preempt_storm_p, 0.25);
        assert_eq!(sick.preempt_storm_period, SimDuration::from_millis(2));
    }

    #[test]
    fn deterministic_crash_and_abort_triggers() {
        let plan = FaultPlan {
            host_crash_mask: 0b101,
            host_crash_at: SimDuration::from_millis(30),
            migration_abort_nth: 2,
            ..FaultPlan::none()
        };
        let mut inj = FaultInjector::new(plan, 11);
        let before = format!("{:?}", inj.host_rng);
        assert_eq!(inj.on_host_admission(0), Some(SimDuration::from_millis(30)));
        assert_eq!(inj.on_host_admission(1), None);
        assert_eq!(inj.on_host_admission(2), Some(SimDuration::from_millis(30)));
        assert!(!inj.on_migration_planned());
        assert!(inj.on_migration_planned(), "second planned move aborts");
        assert!(!inj.on_migration_planned());
        // Deterministic triggers draw nothing from either host stream.
        assert_eq!(before, format!("{:?}", inj.host_rng));
        assert_eq!(inj.stats().host_crashes, 2);
        assert_eq!(inj.stats().migration_aborts, 1);
    }

    #[test]
    fn host_streams_are_isolated_from_existing_points() {
        // Enabling the host family must not shift any pre-existing stream:
        // the two new forks happen after every older stream.
        let mut plain = FaultInjector::new(chaos_plan(), 13);
        let mut with_hosts = FaultInjector::new(
            FaultPlan {
                host_crash_p: 0.5,
                host_crash_jitter: SimDuration::from_millis(5),
                migration_abort_p: 0.25,
                ..chaos_plan()
            },
            13,
        );
        for h in 0..16 {
            with_hosts.on_host_admission(h);
            with_hosts.on_migration_planned();
        }
        for _ in 0..500 {
            assert_eq!(plain.on_guest_kick(), with_hosts.on_guest_kick());
            assert_eq!(plain.on_packet(), with_hosts.on_packet());
            assert_eq!(plain.on_msi(), with_hosts.on_msi());
            assert_eq!(plain.on_storm_tick(4), with_hosts.on_storm_tick(4));
        }
    }

    #[test]
    fn drawn_crashes_land_inside_the_jitter_window() {
        let plan = FaultPlan {
            host_crash_p: 1.0,
            host_crash_at: SimDuration::from_millis(100),
            host_crash_jitter: SimDuration::from_millis(10),
            ..FaultPlan::none()
        };
        let mut inj = FaultInjector::new(plan, 21);
        for h in 0..32 {
            let at = inj.on_host_admission(h).expect("p=1 must crash");
            assert!(at >= SimDuration::from_millis(100) && at <= SimDuration::from_millis(110));
        }
        assert_eq!(inj.stats().host_crashes, 32);
    }

    #[test]
    fn churn_fields_activate_the_plan() {
        assert!(!chaos_plan().churn_fault_active(), "chaos plan must stay churn-free");
        assert!(!hostile_plan().churn_fault_active());
        for plan in [
            FaultPlan {
                churn_place_fail_p: 0.1,
                ..FaultPlan::none()
            },
            FaultPlan {
                churn_place_fail_nth: 2,
                ..FaultPlan::none()
            },
            FaultPlan {
                churn_boot_stall_p: 0.1,
                ..FaultPlan::none()
            },
            FaultPlan {
                churn_boot_stall_nth: 1,
                ..FaultPlan::none()
            },
        ] {
            assert!(plan.churn_fault_active());
            assert!(plan.is_active());
        }
    }

    #[test]
    fn for_single_host_zeroes_the_churn_family() {
        let plan = FaultPlan {
            churn_place_fail_p: 0.2,
            churn_place_fail_nth: 3,
            churn_boot_stall_p: 0.1,
            churn_boot_stall_nth: 1,
            kick_drop_p: 0.05,
            ..FaultPlan::none()
        };
        let host = plan.for_single_host(0);
        assert!(!host.churn_fault_active(), "churn family never reaches a machine");
        assert_eq!(host.kick_drop_p, 0.05, "VM-level classes pass through");
    }

    #[test]
    fn deterministic_churn_triggers_draw_nothing() {
        let plan = FaultPlan {
            churn_place_fail_nth: 2,
            churn_boot_stall_nth: 3,
            ..FaultPlan::none()
        };
        let mut inj = FaultInjector::new(plan, 11);
        let before = format!("{:?}", inj.churn_fault_rng);
        assert!(!inj.on_churn_placement());
        assert!(inj.on_churn_placement(), "second placement attempt fails");
        assert!(!inj.on_churn_placement());
        assert!(!inj.on_churn_boot());
        assert!(!inj.on_churn_boot());
        assert!(inj.on_churn_boot(), "third boot stalls");
        assert!(!inj.on_churn_boot());
        assert_eq!(before, format!("{:?}", inj.churn_fault_rng));
        assert_eq!(inj.stats().churn_place_fails, 1);
        assert_eq!(inj.stats().churn_boot_stalls, 1);
    }

    #[test]
    fn churn_streams_are_isolated_from_existing_points() {
        // Enabling the churn family must not shift any pre-existing
        // stream: the three new forks happen after every older stream.
        let mut plain = FaultInjector::new(chaos_plan(), 13);
        let mut with_churn = FaultInjector::new(
            FaultPlan {
                churn_place_fail_p: 0.5,
                churn_boot_stall_p: 0.25,
                ..chaos_plan()
            },
            13,
        );
        for _ in 0..64 {
            with_churn.churn_interarrival(SimDuration::from_millis(5));
            with_churn.churn_lifetime(SimDuration::from_millis(20));
            with_churn.churn_retry_jitter(SimDuration::from_micros(100));
            with_churn.on_churn_placement();
            with_churn.on_churn_boot();
        }
        for h in 0..8 {
            assert_eq!(plain.on_host_admission(h), with_churn.on_host_admission(h));
        }
        for _ in 0..500 {
            assert_eq!(plain.on_guest_kick(), with_churn.on_guest_kick());
            assert_eq!(plain.on_packet(), with_churn.on_packet());
            assert_eq!(plain.on_msi(), with_churn.on_msi());
            assert_eq!(plain.on_storm_tick(4), with_churn.on_storm_tick(4));
        }
    }

    #[test]
    fn churn_draws_are_heavy_tailed_and_bounded() {
        let mut inj = FaultInjector::new(
            FaultPlan {
                churn_place_fail_p: 0.01,
                ..FaultPlan::none()
            },
            21,
        );
        let mean = SimDuration::from_millis(2);
        let draws: Vec<SimDuration> = (0..20_000).map(|_| inj.churn_interarrival(mean)).collect();
        let lo = mean.as_nanos() / 2;
        let hi = mean.as_nanos() * 32;
        for d in &draws {
            assert!(d.as_nanos() >= lo && d.as_nanos() <= hi, "draw {d:?} out of bounds");
        }
        let avg = draws.iter().map(|d| d.as_nanos()).sum::<u64>() / draws.len() as u64;
        assert!(
            (avg as f64) > 0.6 * mean.as_nanos() as f64
                && (avg as f64) < 1.4 * mean.as_nanos() as f64,
            "empirical mean {avg} too far from scale {}",
            mean.as_nanos()
        );
        // Heavy tail: some draws land well past 4× the mean.
        assert!(draws.iter().any(|d| d.as_nanos() > mean.as_nanos() * 4));
        // Retry jitter stays inside its window.
        for _ in 0..1000 {
            let j = inj.churn_retry_jitter(SimDuration::from_micros(50));
            assert!(j <= SimDuration::from_micros(50));
        }
    }

    #[test]
    fn salt_changes_the_stream() {
        let base = chaos_plan();
        let salted = FaultPlan { salt: 1, ..base };
        let mut a = FaultInjector::new(base, 42);
        let mut b = FaultInjector::new(salted, 42);
        let same = (0..1000)
            .filter(|_| a.on_packet() == b.on_packet())
            .count();
        assert!(same < 1000, "salt had no effect");
    }
}
