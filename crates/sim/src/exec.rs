//! Parallel sweep executor.
//!
//! Experiment sweeps are embarrassingly parallel: each run is a pure
//! function of its `(config, params, seed)` spec, so independent runs can
//! execute on different OS threads with **bitwise identical** output to
//! the serial order — results are written into a slot per input index and
//! reassembled in order, never in completion order.
//!
//! Built on `std::thread::scope` with an atomic self-scheduling work
//! index (no external crates): each worker repeatedly claims the next
//! unclaimed spec until the list is exhausted, which balances load when
//! run times differ (e.g. a high-rate fig9 point vs. a low-rate one).
//!
//! Thread-count resolution, highest priority first:
//!
//! 1. a programmatic override via [`set_threads`],
//! 2. the `ES2_THREADS` environment variable,
//! 3. [`std::thread::available_parallelism`].
//!
//! `ES2_THREADS=1` (or `set_threads(Some(1))`) forces the fully serial
//! path — no threads are spawned at all, which is also the fallback when
//! there is only one input.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Programmatic thread-count override; 0 means "unset".
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Programmatic lane-count override; 0 means "unset".
static LANE_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Override the number of event lanes a single run is sharded into
/// (see [`crate::lane`]). `None` restores the default resolution (the
/// `ES2_LANES` environment variable, then 1). Unlike the thread count,
/// the lane count is a *model* parameter: it changes how simulation
/// state is partitioned, so results are comparable only at equal lane
/// counts — which is why the default is 1 (the legacy unsharded
/// machine), not the core count.
pub fn set_lanes(n: Option<usize>) {
    LANE_OVERRIDE.store(n.unwrap_or(0), Ordering::SeqCst);
}

/// The number of event lanes a run over `vms` VMs is sharded into:
/// the [`set_lanes`] override, else `ES2_LANES`, else 1 — clamped to
/// the VM count (a lane must own at least one VM).
pub fn effective_lanes(vms: usize) -> usize {
    let configured = match LANE_OVERRIDE.load(Ordering::SeqCst) {
        0 => env_lanes(),
        n => n,
    };
    configured.clamp(1, vms.max(1))
}

/// `ES2_LANES` resolution, parsed once per process (same rationale as
/// [`env_threads`]).
fn env_lanes() -> usize {
    static CACHED: OnceLock<usize> = OnceLock::new();
    *CACHED.get_or_init(|| match std::env::var("ES2_LANES") {
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => 1,
        },
        Err(_) => 1,
    })
}

/// Programmatic vhost-worker-count override; 0 means "unset".
static VHOST_WORKER_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Override the number of vhost workers each device's backend is
/// sharded into. `None` restores the default resolution (the
/// `ES2_VHOST_WORKERS` environment variable, then 1). Like the lane
/// count — and unlike the thread count — this is a *model* parameter:
/// it changes how queue handlers are partitioned across backend
/// threads, so results are comparable only at equal worker counts. The
/// default of 1 is the legacy single-worker mux.
pub fn set_vhost_workers(n: Option<usize>) {
    VHOST_WORKER_OVERRIDE.store(n.unwrap_or(0), Ordering::SeqCst);
}

/// The number of vhost workers a device with `pairs` queue pairs runs:
/// the [`set_vhost_workers`] override, else `ES2_VHOST_WORKERS`, else 1
/// — clamped to the pair count (a worker must own at least one pair to
/// ever run).
pub fn effective_vhost_workers(pairs: usize) -> usize {
    let configured = match VHOST_WORKER_OVERRIDE.load(Ordering::SeqCst) {
        0 => env_vhost_workers(),
        n => n,
    };
    configured.clamp(1, pairs.max(1))
}

/// `ES2_VHOST_WORKERS` resolution, parsed once per process (same
/// rationale as [`env_threads`]).
fn env_vhost_workers() -> usize {
    static CACHED: OnceLock<usize> = OnceLock::new();
    *CACHED.get_or_init(|| match std::env::var("ES2_VHOST_WORKERS") {
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => 1,
        },
        Err(_) => 1,
    })
}

/// Override the number of worker threads [`sweep`] uses. `Some(1)` forces
/// serial execution; `None` restores the default resolution
/// (`ES2_THREADS` env var, then available parallelism).
pub fn set_threads(n: Option<usize>) {
    THREAD_OVERRIDE.store(n.unwrap_or(0), Ordering::SeqCst);
}

/// The number of worker threads [`sweep`] would use for `jobs` inputs.
pub fn effective_threads(jobs: usize) -> usize {
    let configured = match THREAD_OVERRIDE.load(Ordering::SeqCst) {
        0 => env_threads(),
        n => n,
    };
    configured.clamp(1, jobs.max(1))
}

/// `ES2_THREADS` / available-parallelism resolution, parsed once per
/// process: the flattened global sweeps resolve the thread count per
/// `sweep` call, and an env lookup + parse on each of those adds up.
/// The env var cannot change under a running process's feet anyway.
fn env_threads() -> usize {
    static CACHED: OnceLock<usize> = OnceLock::new();
    *CACHED.get_or_init(|| match std::env::var("ES2_THREADS") {
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => default_threads(),
        },
        Err(_) => default_threads(),
    })
}

fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// A pre-allocated, write-once result slot array.
///
/// Each index is written by exactly one worker (the one that claimed it
/// from the atomic work index) and read only after `thread::scope` joins
/// every worker, so no per-slot lock is needed: claim disjointness makes
/// the writes race-free and the scope join is the happens-before edge
/// that publishes them to the collecting thread.
struct Slots<R>(Vec<UnsafeCell<Option<R>>>);

// SAFETY: see the invariants above — disjoint writes (unique fetch_add
// claims), reads only after the writers have been joined.
unsafe impl<R: Send> Sync for Slots<R> {}

impl<R> Slots<R> {
    fn new(n: usize) -> Self {
        Slots((0..n).map(|_| UnsafeCell::new(None)).collect())
    }

    /// Store the result for slot `i`.
    ///
    /// SAFETY (caller): `i` must be claimed by exactly one worker, once.
    unsafe fn put(&self, i: usize, r: R) {
        *self.0[i].get() = Some(r);
    }

    fn into_results(self) -> impl Iterator<Item = R> {
        self.0.into_iter().map(|c| {
            c.into_inner()
                .expect("worker exited without storing a result")
        })
    }
}

/// Run `f` over every spec in `specs`, in parallel, returning results in
/// input order.
///
/// The output is guaranteed identical to `specs.iter().map(f).collect()`
/// — parallelism only changes wall-clock time, never results or their
/// order. `f` must therefore be pure with respect to its spec (true for
/// simulation runs, which are functions of `(config, params, seed)`).
pub fn sweep<T, R, F>(specs: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let threads = effective_threads(specs.len());
    if threads <= 1 || specs.len() <= 1 {
        return specs.iter().map(f).collect();
    }

    let next = AtomicUsize::new(0);
    let slots = Slots::new(specs.len());

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= specs.len() {
                    break;
                }
                let r = f(&specs[i]);
                // SAFETY: `i` came from a unique fetch_add claim, so no
                // other worker writes this slot; the scope join below
                // orders the write before any read.
                unsafe { slots.put(i, r) };
            });
        }
    });

    slots.into_results().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// Serializes tests that mutate the global thread override.
    static OVERRIDE_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn results_come_back_in_input_order() {
        let specs: Vec<u64> = (0..64).collect();
        let out = sweep(&specs, |&x| x * x);
        assert_eq!(out, specs.iter().map(|x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_matches_serial_exactly() {
        let specs: Vec<u64> = (0..40).rev().collect();
        // Uneven per-item work so completion order differs from input order.
        let _g = OVERRIDE_LOCK.lock().unwrap();
        let work = |&x: &u64| -> (u64, u64) {
            let mut acc = x;
            for i in 0..(x * 1000) {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
            }
            (x, acc)
        };
        set_threads(Some(1));
        let serial = sweep(&specs, work);
        set_threads(Some(8));
        let parallel = sweep(&specs, work);
        set_threads(None);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn empty_and_single_inputs() {
        let empty: Vec<u32> = vec![];
        assert!(sweep(&empty, |&x| x).is_empty());
        assert_eq!(sweep(&[7u32], |&x| x + 1), vec![8]);
    }

    #[test]
    fn lane_override_caps_at_vm_count() {
        let _g = OVERRIDE_LOCK.lock().unwrap();
        set_lanes(Some(8));
        assert_eq!(effective_lanes(128), 8);
        assert_eq!(effective_lanes(4), 4);
        assert_eq!(effective_lanes(0), 1);
        set_lanes(None);
        // Default (no env override in the test environment): legacy
        // single-lane machine.
        if std::env::var("ES2_LANES").is_err() {
            assert_eq!(effective_lanes(128), 1);
        }
    }

    #[test]
    fn vhost_worker_override_caps_at_pair_count() {
        let _g = OVERRIDE_LOCK.lock().unwrap();
        set_vhost_workers(Some(4));
        assert_eq!(effective_vhost_workers(8), 4);
        assert_eq!(effective_vhost_workers(2), 2);
        assert_eq!(effective_vhost_workers(0), 1);
        set_vhost_workers(None);
        if std::env::var("ES2_VHOST_WORKERS").is_err() {
            // Default: the legacy single-worker mux.
            assert_eq!(effective_vhost_workers(8), 1);
        }
    }

    #[test]
    fn override_caps_at_job_count() {
        let _g = OVERRIDE_LOCK.lock().unwrap();
        set_threads(Some(64));
        assert_eq!(effective_threads(3), 3);
        assert_eq!(effective_threads(0), 1);
        set_threads(Some(1));
        assert_eq!(effective_threads(100), 1);
        set_threads(None);
    }
}
