//! Deterministic discrete-event simulation engine.
//!
//! This crate is the substrate every other `es2-*` crate builds on. It
//! provides:
//!
//! * [`SimTime`] / [`SimDuration`] — a nanosecond-resolution simulated clock,
//! * [`EventQueue`] — a stable (FIFO-among-equals) priority queue of timed
//!   events,
//! * [`rng::SimRng`] — a small, fast, seedable PRNG (xoshiro256++) so every
//!   simulation run is a pure function of its seed,
//! * [`trace`] — a cheap ring-buffer tracer for debugging event flows.
//!
//! The engine is intentionally *not* a framework: the experiment owns a world
//! struct and drains the queue itself:
//!
//! ```
//! use es2_sim::{EventQueue, SimTime, SimDuration};
//!
//! #[derive(Debug, PartialEq)]
//! enum Ev { Ping, Pong }
//!
//! let mut q = EventQueue::new();
//! q.push(SimTime::ZERO + SimDuration::from_micros(5), Ev::Pong);
//! q.push(SimTime::ZERO + SimDuration::from_micros(1), Ev::Ping);
//!
//! let (t1, e1) = q.pop().unwrap();
//! assert_eq!((t1.as_nanos(), e1), (1_000, Ev::Ping));
//! let (t2, e2) = q.pop().unwrap();
//! assert_eq!((t2.as_nanos(), e2), (5_000, Ev::Pong));
//! ```
//!
//! Determinism rules observed throughout the workspace:
//!
//! 1. ties in the queue break in insertion order (a monotone sequence number),
//! 2. no wall-clock time, no global RNG — state is threaded explicitly,
//! 3. iteration over collections with nondeterministic order is forbidden in
//!    simulation logic (we use index-based arenas everywhere).

pub mod exec;
pub mod faults;
pub mod lane;
pub mod queue;
pub mod rng;
pub mod time;
pub mod token;
pub mod trace;

pub use faults::{
    DeliveryFault, FaultInjector, FaultPlan, FaultStats, HostileKick, PacketFault,
    RingCorruptionKind,
};
pub use queue::EventQueue;
pub use rng::SimRng;
pub use time::{SimDuration, SimTime};
pub use token::GenToken;
