//! Conservative parallel lane executor.
//!
//! [`exec::sweep`](crate::exec::sweep) parallelizes *across* independent
//! runs; this module parallelizes *within* one run. The simulation is
//! partitioned into **lanes** — shards that each own their own event
//! queue and RNG streams — and the executor advances them concurrently
//! under a conservative synchronization protocol with the serial
//! execution as the bitwise-identity oracle.
//!
//! # Protocol
//!
//! Lanes interact only through timestamped **cross-lane messages**. Each
//! lane declares a **lookahead** `L`: a lower bound on the delta between
//! its current clock and the timestamp of any message it emits (derived
//! from modeled wire/NIC latency by the testbed — a packet leaving lane
//! *i* at time `t` cannot arrive at lane *j* before `t + L`). The
//! parallel strategy is the classic conservative **bounded time window**
//! (Lubachevsky's bounded lag with uniform lookahead):
//!
//! 1. **Rendezvous.** All workers quiesce. Buffered messages from the
//!    previous window are delivered into per-lane staging queues, then
//!    the global minimum next-event time `t_min` over every lane (local
//!    events and staged arrivals alike) fixes the window horizon
//!    `H = t_min + min_lanes(L)`.
//! 2. **Advance.** Each lane independently processes every event with
//!    time `< H`, buffering any messages it emits.
//!
//! Soundness: every event processed inside a window has time
//! `>= t_min`, so every message it emits has timestamp
//! `>= t_min + L >= H` — no message generated in a window can land
//! inside that same window, and the rendezvous delivers it before any
//! later window reaches its timestamp. Progress: `L > 0` implies
//! `H > t_min`, so each window retires at least the globally minimum
//! event. Lanes that never emit (`lookahead() == None`) relax the
//! horizon; when *no* lane can emit the horizon is infinite and the
//! lanes run embarrassingly parallel with a single rendezvous.
//!
//! # Determinism
//!
//! Bitwise identity with the serial oracle holds by construction:
//!
//! * Within a lane, the next step is always the composite minimum of
//!   (local events, staged arrivals), with local events winning time
//!   ties and staged arrivals ordered by `(time, sender, sender_seq)` —
//!   the same `(time, seq)` FIFO contract [`EventQueue`] uses.
//! * Sender sequence numbers are assigned in emission order by the
//!   sending lane, which steps deterministically, so the staging order
//!   is a pure function of the simulation — never of thread timing.
//! * The window schedule itself depends only on event timestamps.
//!
//! Strategy selection follows the sweep executor: `ES2_THREADS=1` (or
//! [`exec::set_threads`](crate::exec::set_threads)`(Some(1))`) forces
//! the serial oracle, anything else runs the windowed parallel path,
//! and the two are byte-identical for any seed and fault plan.
//!
//! [`EventQueue`]: crate::EventQueue

use std::cell::UnsafeCell;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Barrier, Mutex};

use crate::time::{SimDuration, SimTime};

/// One shard of a partitioned simulation, driven by the lane executor.
///
/// Implementations own their shard's full state (event queue, RNG
/// streams, world state). The executor never inspects that state; it
/// only asks for the next event time, tells the lane to take one step,
/// and routes cross-lane messages.
pub trait LaneSim: Send {
    /// A timestamped event crossing from this lane to another.
    type Msg: Send;

    /// Time of the lane's next *local* event (`None` once drained).
    /// Staged cross-lane arrivals are tracked by the executor and do not
    /// count; a drained lane revives when a message is delivered to it.
    fn next_time(&self) -> Option<SimTime>;

    /// Minimum delta between the lane's clock and the timestamp of any
    /// message it emits. `None` means the lane never emits cross-lane
    /// messages (no egress routes), which exempts it from the horizon
    /// computation entirely. When `Some`, the value must be positive —
    /// zero lookahead admits no parallel progress.
    fn lookahead(&self) -> Option<SimDuration>;

    /// Process exactly one local event — the one whose time
    /// [`next_time`](Self::next_time) last reported. Cross-lane messages
    /// are emitted through `outbox`; their timestamps must be at least
    /// the event time plus [`lookahead`](Self::lookahead).
    fn step(&mut self, outbox: &mut Outbox<Self::Msg>);

    /// Accept one cross-lane message with timestamp `at`. Typically the
    /// lane schedules a local event at `at`; the executor guarantees
    /// `at` is not in the lane's past and that every message with a
    /// given timestamp is delivered before the lane reaches it.
    fn receive(&mut self, at: SimTime, msg: Self::Msg);
}

/// Collects the cross-lane messages one step emits.
pub struct Outbox<M> {
    from: usize,
    now: SimTime,
    lookahead: Option<SimDuration>,
    msgs: Vec<(usize, SimTime, M)>,
}

impl<M> Outbox<M> {
    /// Emit a message to lane `dest` arriving at `at`.
    ///
    /// Panics if the lane declared no lookahead, if `at` violates the
    /// declared lookahead, or on a self-send (local events don't need
    /// the mailbox).
    pub fn send(&mut self, dest: usize, at: SimTime, msg: M) {
        let la = self
            .lookahead
            .expect("lane with lookahead() == None emitted a cross-lane message");
        assert!(
            at >= self.now + la,
            "cross-lane message violates lookahead: event at {:?}, message at {:?}, lookahead {:?}",
            self.now,
            at,
            la
        );
        assert_ne!(dest, self.from, "self-send through the cross-lane mailbox");
        self.msgs.push((dest, at, msg));
    }
}

/// A staged cross-lane arrival, ordered by `(at, src, seq)` — the
/// deterministic tie-break that makes delivery order a pure function of
/// the simulation.
struct Inbound<M> {
    at: SimTime,
    src: u32,
    seq: u64,
    msg: M,
}

impl<M> Inbound<M> {
    fn key(&self) -> (SimTime, u32, u64) {
        (self.at, self.src, self.seq)
    }
}

impl<M> PartialEq for Inbound<M> {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}
impl<M> Eq for Inbound<M> {}
impl<M> PartialOrd for Inbound<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Inbound<M> {
    /// Inverted: `BinaryHeap` is a max-heap, we want the earliest first.
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other.key().cmp(&self.key())
    }
}

/// Local events win time ties against staged arrivals (class 0 vs 1):
/// an arrival at `t` is only processed once the lane has no local work
/// left at `t`, mirroring how a same-instant push would sort behind
/// already-queued events under the `(time, seq)` contract.
const CLASS_LOCAL: u8 = 0;
const CLASS_INBOUND: u8 = 1;

/// Executor-side state for one lane: the shard itself plus its staging
/// queue and send counter.
struct Slot<'a, L: LaneSim> {
    sim: &'a mut L,
    staging: BinaryHeap<Inbound<L::Msg>>,
    /// Messages this lane has emitted (assigns `seq` in emission order).
    sent: u64,
}

impl<'a, L: LaneSim> Slot<'a, L> {
    /// The lane's next composite step: earliest of local events and
    /// staged arrivals, with the class tie-break above.
    fn next_key(&self) -> Option<(SimTime, u8)> {
        let local = self.sim.next_time().map(|t| (t, CLASS_LOCAL));
        let inbound = self.staging.peek().map(|i| (i.at, CLASS_INBOUND));
        match (local, inbound) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Execute the composite step `next_key` reported, collecting any
    /// emitted messages into `out` as `(dest, inbound)` pairs.
    fn step_once(&mut self, idx: usize, key: (SimTime, u8), out: &mut Vec<(usize, Inbound<L::Msg>)>) {
        if key.1 == CLASS_INBOUND {
            let i = self.staging.pop().expect("inbound key implies staged msg");
            self.sim.receive(i.at, i.msg);
            return;
        }
        let mut outbox = Outbox {
            from: idx,
            now: key.0,
            lookahead: self.sim.lookahead(),
            msgs: Vec::new(),
        };
        self.sim.step(&mut outbox);
        for (dest, at, msg) in outbox.msgs {
            let seq = self.sent;
            self.sent += 1;
            out.push((
                dest,
                Inbound {
                    at,
                    src: idx as u32,
                    seq,
                    msg,
                },
            ));
        }
    }
}

/// Run every lane to completion with the strategy the executor config
/// selects: the serial oracle under `ES2_THREADS=1` /
/// `set_threads(Some(1))`, the windowed parallel path otherwise. Output
/// is bitwise identical either way.
pub fn run_lanes<L: LaneSim>(lanes: &mut [L]) {
    let threads = crate::exec::effective_threads(lanes.len());
    if threads <= 1 {
        run_lanes_serial(lanes);
    } else {
        run_lanes_parallel(lanes, threads);
    }
}

/// The serial oracle: one global merge loop picking the minimum
/// `(time, class, lane)` composite step across all lanes, delivering
/// messages immediately. This is the reference semantics the parallel
/// strategy must reproduce byte-for-byte.
pub fn run_lanes_serial<L: LaneSim>(lanes: &mut [L]) {
    let mut slots: Vec<Slot<L>> = lanes
        .iter_mut()
        .map(|sim| Slot {
            sim,
            staging: BinaryHeap::new(),
            sent: 0,
        })
        .collect();
    let mut routed: Vec<(usize, Inbound<L::Msg>)> = Vec::new();
    loop {
        // Minimum composite step across lanes; lane index breaks ties
        // (any fixed rule works — it only orders causally independent
        // steps — but it must match nothing, as the parallel path never
        // interleaves lanes within a window at all).
        let mut best: Option<(SimTime, u8, usize)> = None;
        for (i, s) in slots.iter().enumerate() {
            if let Some((t, c)) = s.next_key() {
                let key = (t, c, i);
                if best.is_none_or(|b| key < b) {
                    best = Some(key);
                }
            }
        }
        let Some((t, c, i)) = best else { break };
        slots[i].step_once(i, (t, c), &mut routed);
        for (dest, inbound) in routed.drain(..) {
            slots[dest].staging.push(inbound);
        }
    }
}

/// Interior-mutability wrapper for the lane slots. Safety discipline
/// (the same write-once/barrier idiom as the sweep executor's `Slots`):
/// during a window's advance phase each slot is touched only by its
/// owning worker (static `lane % threads` ownership); during the
/// rendezvous phase only the leader touches any slot; the two phases
/// are separated by `Barrier` waits, which provide the happens-before
/// edges that publish each phase's writes to the next.
struct SlotCell<'a, L: LaneSim>(UnsafeCell<Slot<'a, L>>);

// SAFETY: see the phase discipline above — accesses are disjoint in
// every phase and ordered across phases by the barrier.
unsafe impl<'a, L: LaneSim> Sync for SlotCell<'a, L> {}

/// Horizon sentinel: every lane drained and no message in flight.
const DONE: u64 = u64::MAX;

/// The conservative windowed parallel strategy (see module docs).
///
/// `threads` is clamped to the lane count; workers own lanes by index
/// stripe (`lane % threads`) so the assignment is static and the
/// advance phase needs no coordination at all.
pub fn run_lanes_parallel<L: LaneSim>(lanes: &mut [L], threads: usize) {
    let n = lanes.len();
    if n == 0 {
        return;
    }
    let threads = threads.clamp(1, n);

    // Window size bound: the tightest lookahead among lanes that can
    // emit at all. All-`None` means no cross-lane traffic can ever
    // exist — a single unbounded window.
    let min_la: Option<SimDuration> = lanes.iter().filter_map(|l| l.lookahead()).min();
    if let Some(la) = min_la {
        assert!(!la.is_zero(), "zero lookahead admits no parallel progress");
    }

    let slots: Vec<SlotCell<L>> = lanes
        .iter_mut()
        .map(|sim| {
            SlotCell(UnsafeCell::new(Slot {
                sim,
                staging: BinaryHeap::new(),
                sent: 0,
            }))
        })
        .collect();
    // Messages buffered during the advance phase, delivered by the
    // leader at the next rendezvous. One lock per worker per window.
    let pending: Mutex<Vec<(usize, Inbound<L::Msg>)>> = Mutex::new(Vec::new());
    // Exclusive upper bound (nanoseconds) on event times this window.
    let horizon = AtomicU64::new(0);
    let barrier = Barrier::new(threads);

    std::thread::scope(|scope| {
        for w in 0..threads {
            let slots = &slots;
            let pending = &pending;
            let horizon = &horizon;
            let barrier = &barrier;
            scope.spawn(move || {
                let mut emitted: Vec<(usize, Inbound<L::Msg>)> = Vec::new();
                loop {
                    // --- rendezvous: leader delivers and sets horizon ---
                    if w == 0 {
                        let mut t_min: Option<SimTime> = None;
                        // SAFETY: rendezvous phase — only the leader
                        // touches slots; the barriers below/above order
                        // these accesses against the advance phases.
                        unsafe {
                            for (dest, inbound) in pending.lock().unwrap().drain(..) {
                                (*slots[dest].0.get()).staging.push(inbound);
                            }
                            for s in slots.iter() {
                                if let Some((t, _)) = (*s.0.get()).next_key() {
                                    t_min = Some(t_min.map_or(t, |m: SimTime| m.min(t)));
                                }
                            }
                        }
                        let h = match (t_min, min_la) {
                            (None, _) => DONE,
                            // No lane can emit: one unbounded window.
                            (Some(_), None) => DONE - 1,
                            (Some(t), Some(la)) => t.as_nanos().saturating_add(la.as_nanos()).min(DONE - 1),
                        };
                        horizon.store(h, Ordering::SeqCst);
                    }
                    barrier.wait();
                    let h = horizon.load(Ordering::SeqCst);
                    if h == DONE {
                        break;
                    }
                    // --- advance: each worker drives its own lanes ---
                    for i in (w..n).step_by(threads) {
                        // SAFETY: advance phase — lane i is owned by
                        // worker `i % threads == w` alone; the barrier
                        // above published the leader's delivery writes.
                        let slot = unsafe { &mut *slots[i].0.get() };
                        while let Some((t, c)) = slot.next_key() {
                            if t.as_nanos() >= h {
                                break;
                            }
                            slot.step_once(i, (t, c), &mut emitted);
                        }
                    }
                    if !emitted.is_empty() {
                        pending.lock().unwrap().append(&mut emitted);
                    }
                    barrier.wait();
                }
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SimRng;

    /// A synthetic lane: a queue of local events; each event may emit a
    /// message to another lane (arriving after the lookahead), and
    /// every executed step (local or received) is appended to a log.
    /// The log, compared across strategies, is the identity oracle.
    struct PingLane {
        idx: usize,
        n_lanes: usize,
        q: crate::EventQueue<u64>,
        done_at: SimTime,
        finished: bool,
        la: Option<SimDuration>,
        rng: SimRng,
        /// P(an event emits a cross-lane message), in percent.
        cross_percent: u64,
        log: Vec<(u64, u64)>,
    }

    impl PingLane {
        fn new(idx: usize, n_lanes: usize, seed: u64, cross_percent: u64) -> Self {
            let mut q = crate::EventQueue::new();
            let mut rng = SimRng::new(seed ^ (idx as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
            let mut t = SimTime::ZERO;
            for i in 0..200u64 {
                t += SimDuration::from_nanos(1 + rng.gen_range(5_000));
                q.push(t, i);
            }
            PingLane {
                idx,
                n_lanes,
                q,
                done_at: SimTime::from_nanos(2_000_000),
                finished: false,
                la: (n_lanes > 1).then(|| SimDuration::from_micros(2)),
                rng,
                cross_percent,
                log: Vec::new(),
            }
        }
    }

    impl LaneSim for PingLane {
        type Msg = u64;

        fn next_time(&self) -> Option<SimTime> {
            if self.finished {
                return None;
            }
            self.q.peek_time()
        }

        fn lookahead(&self) -> Option<SimDuration> {
            self.la
        }

        fn step(&mut self, outbox: &mut Outbox<u64>) {
            let (t, v) = self.q.pop().expect("step after Some(next_time)");
            if t > self.done_at {
                self.finished = true;
                return;
            }
            self.log.push((t.as_nanos(), v));
            if self.n_lanes > 1 && self.rng.gen_range(100) < self.cross_percent {
                let dest = (self.idx + 1) % self.n_lanes;
                let at = t + self.la.unwrap() + SimDuration::from_nanos(self.rng.gen_range(3_000));
                outbox.send(dest, at, v ^ 0xffff);
            }
        }

        fn receive(&mut self, at: SimTime, msg: u64) {
            // Schedule the arrival as a local event; a same-time local
            // push lands behind existing events, matching the
            // executor's local-first tie-break.
            self.q.push(at, msg);
        }
    }

    fn logs_for(
        n_lanes: usize,
        seed: u64,
        cross: u64,
        run: impl FnOnce(&mut Vec<PingLane>),
    ) -> Vec<Vec<(u64, u64)>> {
        let mut lanes: Vec<PingLane> = (0..n_lanes)
            .map(|i| PingLane::new(i, n_lanes, seed, cross))
            .collect();
        run(&mut lanes);
        lanes.into_iter().map(|l| l.log).collect()
    }

    #[test]
    fn parallel_matches_serial_with_cross_traffic() {
        for &n in &[2usize, 3, 8] {
            for seed in 0..5u64 {
                let serial = logs_for(n, seed, 30, |l| run_lanes_serial(l));
                for &threads in &[2usize, 4, 8] {
                    let parallel = logs_for(n, seed, 30, |l| run_lanes_parallel(l, threads));
                    assert_eq!(serial, parallel, "n={n} seed={seed} threads={threads}");
                }
            }
        }
    }

    #[test]
    fn parallel_matches_serial_without_cross_traffic() {
        let serial = logs_for(4, 11, 0, |l| run_lanes_serial(l));
        let parallel = logs_for(4, 11, 0, |l| run_lanes_parallel(l, 4));
        assert_eq!(serial, parallel);
    }

    #[test]
    fn heavy_cross_traffic_still_identical() {
        let serial = logs_for(4, 3, 100, |l| run_lanes_serial(l));
        let parallel = logs_for(4, 3, 100, |l| run_lanes_parallel(l, 2));
        assert_eq!(serial, parallel);
    }

    #[test]
    fn single_lane_and_empty() {
        let serial = logs_for(1, 9, 0, |l| run_lanes_serial(l));
        let parallel = logs_for(1, 9, 0, |l| run_lanes_parallel(l, 4));
        assert_eq!(serial, parallel);
        let mut empty: Vec<PingLane> = Vec::new();
        run_lanes_parallel(&mut empty, 4);
    }

    #[test]
    fn run_lanes_honors_thread_override() {
        // Smoke: the strategy dispatcher completes and matches the
        // oracle at whatever the ambient thread config is.
        let serial = logs_for(3, 21, 25, |l| run_lanes_serial(l));
        let auto = logs_for(3, 21, 25, |l| run_lanes(l));
        assert_eq!(serial, auto);
    }

    /// A lane that revives after draining: lane 1 has no local events at
    /// all and only acts when lane 0's messages arrive.
    struct EchoLane {
        idx: usize,
        q: crate::EventQueue<u64>,
        remaining: u32,
        log: Vec<(u64, u64)>,
    }

    impl LaneSim for EchoLane {
        type Msg = u64;
        fn next_time(&self) -> Option<SimTime> {
            self.q.peek_time()
        }
        fn lookahead(&self) -> Option<SimDuration> {
            Some(SimDuration::from_micros(1))
        }
        fn step(&mut self, outbox: &mut Outbox<u64>) {
            let (t, v) = self.q.pop().unwrap();
            self.log.push((t.as_nanos(), v));
            if self.remaining > 0 {
                self.remaining -= 1;
                outbox.send(1 - self.idx, t + SimDuration::from_micros(1), v + 1);
            }
        }
        fn receive(&mut self, at: SimTime, msg: u64) {
            self.q.push(at, msg);
        }
    }

    #[test]
    fn drained_lane_revives_on_message() {
        let make = || {
            let mut a = crate::EventQueue::new();
            a.push(SimTime::from_nanos(100), 0);
            vec![
                EchoLane {
                    idx: 0,
                    q: a,
                    remaining: 10,
                    log: Vec::new(),
                },
                EchoLane {
                    idx: 1,
                    q: crate::EventQueue::new(),
                    remaining: 10,
                    log: Vec::new(),
                },
            ]
        };
        let mut s = make();
        run_lanes_serial(&mut s);
        let mut p = make();
        run_lanes_parallel(&mut p, 2);
        // The ping-pong ran to ball exhaustion on both strategies.
        assert_eq!(s[0].log.len() + s[1].log.len(), 21);
        assert_eq!(s[0].log, p[0].log);
        assert_eq!(s[1].log, p[1].log);
    }
}
