//! Scheduler entities and identifiers.

use es2_sim::{SimDuration, SimTime};

/// Index of a host thread in the scheduler's arena.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ThreadId(pub u32);

/// Index of a physical core.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CoreId(pub u32);

impl ThreadId {
    /// Arena index.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl CoreId {
    /// Arena index.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

/// Lifecycle state of a scheduled thread.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ThreadState {
    /// Waiting on its core's run queue.
    Runnable,
    /// Currently executing on its core.
    Running,
    /// Blocked; not on any run queue.
    Sleeping,
}

/// Per-thread scheduling state (a CFS `sched_entity`).
#[derive(Clone, Debug)]
pub struct SchedEntity {
    /// Load weight derived from the nice value.
    pub weight: u32,
    /// Virtual runtime in nanoseconds (weight-normalized execution time).
    pub vruntime: u64,
    /// Current lifecycle state.
    pub state: ThreadState,
    /// The core this thread is pinned to.
    pub core: CoreId,
    /// When the thread last started running (valid while `Running`).
    pub ran_since: SimTime,
    /// When the thread last left a core (preempted or blocked); `None`
    /// while `Running`. The flight recorder reads this to attribute how
    /// long an interrupt's target had already been descheduled.
    pub off_core_since: Option<SimTime>,
    /// Total CPU time consumed.
    pub sum_exec: SimDuration,
    /// Number of times the thread was switched in.
    pub switches_in: u64,
}

impl SchedEntity {
    /// A new sleeping entity pinned to `core` with the given weight.
    pub fn new(weight: u32, core: CoreId) -> Self {
        SchedEntity {
            weight,
            vruntime: 0,
            state: ThreadState::Sleeping,
            core,
            ran_since: SimTime::ZERO,
            off_core_since: Some(SimTime::ZERO),
            sum_exec: SimDuration::ZERO,
            switches_in: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_entity_starts_sleeping() {
        let e = SchedEntity::new(1024, CoreId(2));
        assert_eq!(e.state, ThreadState::Sleeping);
        assert_eq!(e.core, CoreId(2));
        assert_eq!(e.vruntime, 0);
        assert_eq!(e.sum_exec, SimDuration::ZERO);
    }

    #[test]
    fn ids_index_arenas() {
        assert_eq!(ThreadId(7).idx(), 7);
        assert_eq!(CoreId(3).idx(), 3);
    }
}
