//! A CFS-like thread scheduler for the simulated host.
//!
//! §V-B of the paper: *"In KVM, a vCPU is implemented as a normal thread and
//! scheduled by the Complete Fair Scheduler (CFS). [...] we turn to the two
//! preemption notifiers provided by KVM, called `kvm_sched_in` and
//! `kvm_sched_out`."*
//!
//! The scheduler here reproduces the CFS behaviours the paper's mechanisms
//! interact with:
//!
//! * weighted fair sharing via **vruntime** (nice levels use Linux's
//!   `sched_prio_to_weight` table, so the "lowest-priority CPU-burn scripts"
//!   of §VI consume only leftover time),
//! * a periodic **tick** that enforces each entity's timeslice
//!   (`sched_latency` split by weight, floored at `min_granularity`),
//! * **wakeup preemption** with `wakeup_granularity` hysteresis and sleeper
//!   vruntime placement, so I/O threads (vhost workers) preempt CPU hogs
//!   promptly — the property the hybrid handler's notification mode relies
//!   on,
//! * **context-switch notifications** equivalent to the `kvm_sched_in` /
//!   `kvm_sched_out` preemption notifiers — every state change is reported
//!   to the caller as [`Switch`] values, from which ES2 maintains its
//!   online/offline vCPU lists.
//!
//! The scheduler is a passive data structure: the discrete-event testbed
//! calls it at ticks, wakeups and blocks, and applies the returned
//! transitions. It never advances time itself.

pub mod cfs;
pub mod entity;
pub mod weights;

pub use cfs::{CfsScheduler, SchedParams, Switch};
pub use entity::{CoreId, ThreadId, ThreadState};
pub use weights::{nice_to_weight, NICE_0_WEIGHT};
