//! The weighted-fair scheduler (CFS model).
//!
//! Implements the subset of CFS that the paper's mechanisms observe:
//! vruntime-ordered run queues, tick-driven timeslice enforcement
//! (`check_preempt_tick`), wakeup preemption (`check_preempt_wakeup` with
//! gentle sleeper placement), and context-switch notifications equivalent to
//! KVM's `kvm_sched_in`/`kvm_sched_out` preemption notifiers.
//!
//! The caller (the discrete-event testbed) invokes [`CfsScheduler::tick`] on
//! every timer tick, [`CfsScheduler::wake`] / [`CfsScheduler::block`] on
//! thread state changes, and applies the returned [`Switch`] transitions —
//! e.g. feeding them to ES2's online/offline vCPU lists.

use std::collections::BTreeSet;

use es2_sim::{SimDuration, SimTime};

use crate::entity::{CoreId, SchedEntity, ThreadId, ThreadState};
use crate::weights::{nice_to_weight, scale_delta};

/// Tunable scheduler parameters (defaults follow Linux 4.x on small SMP).
#[derive(Clone, Copy, Debug)]
pub struct SchedParams {
    /// Targeted preemption latency for CPU-bound tasks.
    pub sched_latency: SimDuration,
    /// Minimal preemption granularity.
    pub min_granularity: SimDuration,
    /// Wakeup preemption hysteresis.
    pub wakeup_granularity: SimDuration,
    /// Periodic tick (CONFIG_HZ).
    pub tick_period: SimDuration,
}

impl Default for SchedParams {
    fn default() -> Self {
        // Linux defaults for a ~8-CPU machine (values already include the
        // log2(ncpus) scaling factor the kernel applies at boot).
        SchedParams {
            sched_latency: SimDuration::from_millis(24),
            min_granularity: SimDuration::from_millis(3),
            wakeup_granularity: SimDuration::from_millis(4),
            tick_period: SimDuration::from_millis(1),
        }
    }
}

/// A context-switch notification: `prev` was switched out of `core` (the
/// `kvm_sched_out` notifier) and `next` switched in (`kvm_sched_in`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Switch {
    /// The core on which the switch happened.
    pub core: CoreId,
    /// The descheduled thread, if the core was not idle.
    pub prev: Option<ThreadId>,
    /// The newly running thread, if the core does not go idle.
    pub next: Option<ThreadId>,
}

#[derive(Clone, Debug, Default)]
struct CoreRq {
    /// Runnable (not running) entities ordered by (vruntime, id).
    queue: BTreeSet<(u64, ThreadId)>,
    /// Sum of weights of runnable + running entities.
    total_weight: u64,
    /// Monotone floor of vruntime on this queue.
    min_vruntime: u64,
    /// Currently running entity.
    current: Option<ThreadId>,
    /// When the current entity was switched in.
    slice_start: SimTime,
    /// Runnable + running count.
    nr_running: u32,
    /// Context switches performed on this core.
    switch_count: u64,
}

/// The scheduler: an arena of entities plus per-core run queues.
#[derive(Clone, Debug)]
pub struct CfsScheduler {
    params: SchedParams,
    threads: Vec<SchedEntity>,
    cores: Vec<CoreRq>,
}

impl CfsScheduler {
    /// A scheduler managing `num_cores` idle cores.
    pub fn new(num_cores: usize, params: SchedParams) -> Self {
        CfsScheduler {
            params,
            threads: Vec::new(),
            cores: vec![CoreRq::default(); num_cores],
        }
    }

    /// The configured parameters.
    pub fn params(&self) -> &SchedParams {
        &self.params
    }

    /// Number of managed cores.
    pub fn num_cores(&self) -> usize {
        self.cores.len()
    }

    /// Register a new (sleeping) thread pinned to `core`.
    pub fn add_thread(&mut self, nice: i8, core: CoreId) -> ThreadId {
        assert!(core.idx() < self.cores.len(), "core out of range");
        let id = ThreadId(self.threads.len() as u32);
        let mut e = SchedEntity::new(nice_to_weight(nice), core);
        // New tasks start at the queue's current minimum so they neither
        // starve nor monopolize.
        e.vruntime = self.cores[core.idx()].min_vruntime;
        self.threads.push(e);
        id
    }

    /// Entity accessor (tests, metrics).
    pub fn entity(&self, t: ThreadId) -> &SchedEntity {
        &self.threads[t.idx()]
    }

    /// Advance a sleeping thread's vruntime by `delta_ns` — used to
    /// desynchronize initially identical threads (real run queues never
    /// start in phase; without this, equal-weight threads on different
    /// cores rotate in lockstep and co-scheduling artifacts appear).
    ///
    /// Panics if the thread is runnable or running.
    pub fn nudge_vruntime(&mut self, t: ThreadId, delta_ns: u64) {
        let e = &mut self.threads[t.idx()];
        assert_eq!(
            e.state,
            ThreadState::Sleeping,
            "nudge_vruntime on an active thread"
        );
        e.vruntime += delta_ns;
    }

    /// Currently running thread on `core`.
    pub fn current(&self, core: CoreId) -> Option<ThreadId> {
        self.cores[core.idx()].current
    }

    /// True if `t` is executing right now.
    pub fn is_running(&self, t: ThreadId) -> bool {
        self.threads[t.idx()].state == ThreadState::Running
    }

    /// Since when `t` has been off-core (preempted or blocked); `None`
    /// while it is running. The flight recorder uses this to annotate how
    /// stale an interrupt's target already was at raise time.
    pub fn descheduled_since(&self, t: ThreadId) -> Option<SimTime> {
        self.threads[t.idx()].off_core_since
    }

    /// Runnable + running count on `core`.
    pub fn nr_running(&self, core: CoreId) -> u32 {
        self.cores[core.idx()].nr_running
    }

    /// Total context switches on `core`.
    pub fn switch_count(&self, core: CoreId) -> u64 {
        self.cores[core.idx()].switch_count
    }

    /// Charge the current entity's execution up to `now`.
    fn update_curr(&mut self, core: CoreId, now: SimTime) {
        let rq = &mut self.cores[core.idx()];
        let Some(cur) = rq.current else { return };
        let e = &mut self.threads[cur.idx()];
        let delta = now.saturating_since(e.ran_since);
        if delta.is_zero() {
            return;
        }
        e.ran_since = now;
        e.sum_exec += delta;
        e.vruntime += scale_delta(delta.as_nanos(), e.weight);
        // Advance min_vruntime monotonically towards min(current, leftmost).
        let leftmost = rq.queue.iter().next().map(|&(v, _)| v);
        let floor = match leftmost {
            Some(l) => l.min(self.threads[cur.idx()].vruntime),
            None => self.threads[cur.idx()].vruntime,
        };
        rq.min_vruntime = rq.min_vruntime.max(floor);
    }

    /// The fair timeslice for the current entity on `core`
    /// (`sched_slice`): latency period split by weight, with the period
    /// stretched when over-committed.
    fn slice_for(&self, core: CoreId, t: ThreadId) -> SimDuration {
        let rq = &self.cores[core.idx()];
        let nr = rq.nr_running.max(1) as u64;
        let latency = self.params.sched_latency.as_nanos();
        let min_gran = self.params.min_granularity.as_nanos();
        let period = latency.max(min_gran * nr);
        let w = self.threads[t.idx()].weight as u64;
        let total = rq.total_weight.max(w);
        SimDuration::from_nanos((period * w / total).max(min_gran))
    }

    /// Switch `core` to the leftmost runnable entity (or idle). The caller
    /// must already have dealt with the previous current.
    fn pick_next(&mut self, core: CoreId, now: SimTime, prev: Option<ThreadId>) -> Switch {
        let rq = &mut self.cores[core.idx()];
        let next = rq.queue.iter().next().copied();
        if let Some((v, tid)) = next {
            rq.queue.remove(&(v, tid));
            rq.current = Some(tid);
            rq.slice_start = now;
            rq.switch_count += 1;
            let e = &mut self.threads[tid.idx()];
            e.state = ThreadState::Running;
            e.ran_since = now;
            e.off_core_since = None;
            e.switches_in += 1;
            Switch {
                core,
                prev,
                next: Some(tid),
            }
        } else {
            rq.current = None;
            Switch {
                core,
                prev,
                next: None,
            }
        }
    }

    /// Requeue the running entity as runnable (used on preemption).
    fn put_prev(&mut self, core: CoreId, cur: ThreadId, now: SimTime) {
        let e = &mut self.threads[cur.idx()];
        e.state = ThreadState::Runnable;
        e.off_core_since = Some(now);
        let v = e.vruntime;
        self.cores[core.idx()].queue.insert((v, cur));
    }

    /// Wake a sleeping thread. Returns a [`Switch`] if wakeup preemption
    /// (or an idle core) causes an immediate context switch.
    ///
    /// Waking an already-runnable/running thread is a no-op, matching
    /// `try_to_wake_up` semantics.
    pub fn wake(&mut self, t: ThreadId, now: SimTime) -> Option<Switch> {
        if self.threads[t.idx()].state != ThreadState::Sleeping {
            return None;
        }
        let core = self.threads[t.idx()].core;
        self.update_curr(core, now);
        // Gentle sleeper placement: credit at most half a latency period.
        let rq = &mut self.cores[core.idx()];
        let credit = self.params.sched_latency.as_nanos() / 2;
        let floor = rq.min_vruntime.saturating_sub(credit);
        let e = &mut self.threads[t.idx()];
        e.vruntime = e.vruntime.max(floor);
        e.state = ThreadState::Runnable;
        let (v, w) = (e.vruntime, e.weight);
        rq.queue.insert((v, t));
        rq.total_weight += w as u64;
        rq.nr_running += 1;

        match rq.current {
            None => Some(self.pick_next(core, now, None)),
            Some(cur) => {
                // check_preempt_wakeup: preempt if the woken entity is
                // behind the current one by more than the (weight-scaled)
                // wakeup granularity.
                let gran = scale_delta(
                    self.params.wakeup_granularity.as_nanos(),
                    self.threads[t.idx()].weight,
                );
                let cur_v = self.threads[cur.idx()].vruntime;
                let new_v = self.threads[t.idx()].vruntime;
                if cur_v > new_v.saturating_add(gran) {
                    self.put_prev(core, cur, now);
                    Some(self.pick_next(core, now, Some(cur)))
                } else {
                    None
                }
            }
        }
    }

    /// The current thread on its core voluntarily blocks. Returns the
    /// resulting switch.
    ///
    /// Panics if `t` is not currently running (a simulation logic error).
    pub fn block(&mut self, t: ThreadId, now: SimTime) -> Switch {
        let core = self.threads[t.idx()].core;
        assert_eq!(
            self.cores[core.idx()].current,
            Some(t),
            "block() caller must be the running thread"
        );
        self.update_curr(core, now);
        let e = &mut self.threads[t.idx()];
        e.state = ThreadState::Sleeping;
        e.off_core_since = Some(now);
        let w = e.weight;
        let rq = &mut self.cores[core.idx()];
        rq.total_weight -= w as u64;
        rq.nr_running -= 1;
        self.pick_next(core, now, Some(t))
    }

    /// Forcibly deschedule `t` whatever state it is in — the pause half of
    /// a live-migration (or hot-unplug) of a vCPU thread. [`Self::block`]
    /// only handles the voluntary case (the *running* thread blocks
    /// itself); a migration pause must also take threads that are merely
    /// queued runnable, which `block` rejects by design.
    ///
    /// - Running: behaves like `block` and returns the resulting switch.
    /// - Runnable: silently dequeued from its core's run queue (the
    ///   off-core ledger keeps the instant it originally left the core).
    /// - Sleeping: no-op.
    pub fn deactivate(&mut self, t: ThreadId, now: SimTime) -> Option<Switch> {
        match self.threads[t.idx()].state {
            ThreadState::Running => Some(self.block(t, now)),
            ThreadState::Sleeping => None,
            ThreadState::Runnable => {
                let core = self.threads[t.idx()].core;
                self.update_curr(core, now);
                let e = &mut self.threads[t.idx()];
                let (v, w) = (e.vruntime, e.weight);
                e.state = ThreadState::Sleeping;
                let rq = &mut self.cores[core.idx()];
                assert!(
                    rq.queue.remove(&(v, t)),
                    "runnable thread must sit on its core's run queue"
                );
                rq.total_weight -= w as u64;
                rq.nr_running -= 1;
                None
            }
        }
    }

    /// Periodic tick on `core`: charge runtime and enforce the timeslice
    /// (`check_preempt_tick`). Returns a switch if the current entity is
    /// preempted.
    pub fn tick(&mut self, core: CoreId, now: SimTime) -> Option<Switch> {
        self.tick_with_noise(core, now, 0)
    }

    /// Like [`CfsScheduler::tick`], but additionally charges `noise_ns` of
    /// unaccounted host work (interrupts, kworkers) to the current
    /// entity's vruntime. On real hosts this noise is what makes
    /// initially synchronized run-queue rotations drift apart; without it
    /// a simulation of identical CPU hogs stays phase-locked forever.
    pub fn tick_with_noise(&mut self, core: CoreId, now: SimTime, noise_ns: u64) -> Option<Switch> {
        self.update_curr(core, now);
        if noise_ns > 0 {
            if let Some(cur) = self.cores[core.idx()].current {
                self.threads[cur.idx()].vruntime += noise_ns;
            }
        }
        let rq = &self.cores[core.idx()];
        let cur = rq.current?;
        if rq.queue.is_empty() {
            return None;
        }
        let ran = now.saturating_since(rq.slice_start);
        let slice = self.slice_for(core, cur);
        let leftmost_v = rq.queue.iter().next().map(|&(v, _)| v).unwrap_or(u64::MAX);
        let cur_v = self.threads[cur.idx()].vruntime;

        let over_slice = ran >= slice;
        let under_min_gran = ran < self.params.min_granularity;
        let far_ahead = cur_v > leftmost_v.saturating_add(slice.as_nanos());

        if over_slice || (!under_min_gran && far_ahead) {
            // Only preempt if someone else would actually run next.
            if leftmost_v <= cur_v || over_slice {
                self.put_prev(core, cur, now);
                return Some(self.pick_next(core, now, Some(cur)));
            }
        }
        None
    }

    /// Force a reschedule on `core` regardless of granularity (used by the
    /// testbed when a vCPU thread must yield, e.g. emulating `resched_curr`).
    pub fn resched(&mut self, core: CoreId, now: SimTime) -> Option<Switch> {
        self.update_curr(core, now);
        let rq = &self.cores[core.idx()];
        let cur = rq.current?;
        if rq.queue.is_empty() {
            return None;
        }
        self.put_prev(core, cur, now);
        Some(self.pick_next(core, now, Some(cur)))
    }

    /// All threads pinned to `core` that are currently runnable or running
    /// (diagnostics / stacking statistics).
    pub fn active_on_core(&self, core: CoreId) -> Vec<ThreadId> {
        let rq = &self.cores[core.idx()];
        let mut out: Vec<ThreadId> = rq.queue.iter().map(|&(_, t)| t).collect();
        if let Some(c) = rq.current {
            out.push(c);
        }
        out.sort_unstable();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const NICE0: i8 = 0;

    fn t(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    /// Drive `sched` with 1ms ticks for `ms` milliseconds starting at
    /// `start`, returning per-thread observed runtime.
    fn drive_ticks(sched: &mut CfsScheduler, core: CoreId, start_ms: u64, ms: u64) {
        for i in 1..=ms {
            sched.tick(core, t(start_ms + i));
        }
    }

    #[test]
    fn wake_on_idle_core_switches_in() {
        let mut s = CfsScheduler::new(1, SchedParams::default());
        let a = s.add_thread(NICE0, CoreId(0));
        let sw = s.wake(a, t(0)).expect("idle core switches immediately");
        assert_eq!(
            sw,
            Switch {
                core: CoreId(0),
                prev: None,
                next: Some(a)
            }
        );
        assert!(s.is_running(a));
        assert_eq!(s.current(CoreId(0)), Some(a));
    }

    #[test]
    fn double_wake_is_noop() {
        let mut s = CfsScheduler::new(1, SchedParams::default());
        let a = s.add_thread(NICE0, CoreId(0));
        s.wake(a, t(0));
        assert!(s.wake(a, t(1)).is_none());
        assert_eq!(s.nr_running(CoreId(0)), 1);
    }

    #[test]
    fn block_switches_to_next_or_idle() {
        let mut s = CfsScheduler::new(1, SchedParams::default());
        let a = s.add_thread(NICE0, CoreId(0));
        let b = s.add_thread(NICE0, CoreId(0));
        s.wake(a, t(0));
        s.wake(b, t(0));
        let sw = s.block(a, t(5));
        assert_eq!(sw.prev, Some(a));
        assert_eq!(sw.next, Some(b));
        let sw = s.block(b, t(6));
        assert_eq!(sw.next, None, "core goes idle");
        assert_eq!(s.current(CoreId(0)), None);
    }

    #[test]
    fn deactivate_takes_running_runnable_and_sleeping_threads() {
        let mut s = CfsScheduler::new(1, SchedParams::default());
        let a = s.add_thread(NICE0, CoreId(0));
        let b = s.add_thread(NICE0, CoreId(0));
        let c = s.add_thread(NICE0, CoreId(0));
        s.wake(a, t(0));
        s.wake(b, t(1));
        s.wake(c, t(1));
        assert_eq!(s.nr_running(CoreId(0)), 3);
        // b is queued runnable: block() would panic, deactivate dequeues it.
        assert!(!s.is_running(b));
        assert!(s.deactivate(b, t(2)).is_none());
        assert_eq!(s.nr_running(CoreId(0)), 2);
        // a is running: deactivate behaves like block and switches to c.
        let sw = s.deactivate(a, t(3)).expect("running thread yields a switch");
        assert_eq!(sw.prev, Some(a));
        assert_eq!(sw.next, Some(c));
        // b already sleeps: deactivate is a no-op.
        assert!(s.deactivate(b, t(4)).is_none());
        assert_eq!(s.nr_running(CoreId(0)), 1);
        // Deactivated threads wake cleanly afterwards (migration resume).
        s.block(c, t(5));
        let sw = s.wake(b, t(6)).expect("idle core switches b in");
        assert_eq!(sw.next, Some(b));
        assert!(s.is_running(b));
    }

    #[test]
    fn off_core_ledger_tracks_transitions() {
        let mut s = CfsScheduler::new(1, SchedParams::default());
        let a = s.add_thread(NICE0, CoreId(0));
        let b = s.add_thread(NICE0, CoreId(0));
        assert_eq!(s.descheduled_since(a), Some(SimTime::ZERO), "born off-core");
        s.wake(a, t(0));
        assert_eq!(s.descheduled_since(a), None, "running");
        s.wake(b, t(1));
        s.block(a, t(5));
        assert_eq!(s.descheduled_since(a), Some(t(5)), "blocked at t+5ms");
        assert_eq!(s.descheduled_since(b), None, "b switched in");
        // Waking makes a runnable but not running: the ledger keeps the
        // original off-core instant (an interrupt targeting a has been
        // waiting since the block, not since the wake).
        s.wake(a, t(6));
        assert_eq!(s.descheduled_since(a), Some(t(5)), "runnable, still off-core");
        // b leaving the core switches a in and stamps b.
        let sw = s.block(b, t(9));
        assert_eq!(sw.next, Some(a));
        assert_eq!(s.descheduled_since(a), None, "a switched in");
        assert_eq!(s.descheduled_since(b), Some(t(9)), "b blocked at t+9ms");
    }

    #[test]
    fn equal_weight_threads_share_fairly() {
        let mut s = CfsScheduler::new(1, SchedParams::default());
        let a = s.add_thread(NICE0, CoreId(0));
        let b = s.add_thread(NICE0, CoreId(0));
        s.wake(a, t(0));
        s.wake(b, t(0));
        drive_ticks(&mut s, CoreId(0), 0, 1000);
        let ra = s.entity(a).sum_exec.as_millis_f64();
        let rb = s.entity(b).sum_exec.as_millis_f64();
        let share = ra / (ra + rb);
        assert!((share - 0.5).abs() < 0.05, "share={share} ra={ra} rb={rb}");
    }

    #[test]
    fn nice19_gets_tiny_share_against_nice0() {
        let mut s = CfsScheduler::new(1, SchedParams::default());
        let hog = s.add_thread(19, CoreId(0)); // burn script
        let io = s.add_thread(NICE0, CoreId(0));
        s.wake(hog, t(0));
        s.wake(io, t(0));
        drive_ticks(&mut s, CoreId(0), 0, 2000);
        let rh = s.entity(hog).sum_exec.as_millis_f64();
        let ri = s.entity(io).sum_exec.as_millis_f64();
        // weight 15 vs 1024 => ~1.4% share, but min_granularity guarantees
        // the hog some slices; accept < 12%.
        let share = rh / (rh + ri);
        assert!(share < 0.12, "hog share={share}");
    }

    #[test]
    fn tick_rotates_among_equal_threads() {
        let mut s = CfsScheduler::new(1, SchedParams::default());
        let ids: Vec<_> = (0..4).map(|_| s.add_thread(NICE0, CoreId(0))).collect();
        for &id in &ids {
            s.wake(id, t(0));
        }
        let mut seen = std::collections::BTreeSet::new();
        for i in 1..=200 {
            s.tick(CoreId(0), t(i));
            seen.insert(s.current(CoreId(0)).unwrap());
        }
        assert_eq!(seen.len(), 4, "all threads get the CPU within 200ms");
    }

    #[test]
    fn scheduling_delay_is_bounded_by_period() {
        // 4 equal CPU-bound threads: once descheduled, a thread regains the
        // CPU within roughly nr_running * slice.
        let mut s = CfsScheduler::new(1, SchedParams::default());
        let ids: Vec<_> = (0..4).map(|_| s.add_thread(NICE0, CoreId(0))).collect();
        for &id in &ids {
            s.wake(id, t(0));
        }
        let mut last_ran = [0u64; 4];
        let mut max_gap = 0u64;
        for i in 1..=2000 {
            s.tick(CoreId(0), t(i));
            let cur = s.current(CoreId(0)).unwrap();
            for (k, &id) in ids.iter().enumerate() {
                if id == cur {
                    max_gap = max_gap.max(i - last_ran[k]);
                    last_ran[k] = i;
                }
            }
        }
        // Period for 4 threads = max(24ms, 4*3ms) = 24ms; gaps should stay
        // within ~2 periods.
        assert!(max_gap <= 48, "max scheduling gap {max_gap}ms");
    }

    #[test]
    fn wakeup_preempts_long_running_hog() {
        let mut s = CfsScheduler::new(1, SchedParams::default());
        let hog = s.add_thread(NICE0, CoreId(0));
        let io = s.add_thread(NICE0, CoreId(0));
        s.wake(hog, t(0));
        drive_ticks(&mut s, CoreId(0), 0, 100); // hog accrues 100ms vruntime
        let sw = s.wake(io, t(100)).expect("sleeper preempts");
        assert_eq!(sw.prev, Some(hog));
        assert_eq!(sw.next, Some(io));
    }

    #[test]
    fn sleeper_credit_is_bounded() {
        // A thread that slept a long time gets at most ~latency/2 of credit,
        // not unbounded vruntime advantage.
        let mut s = CfsScheduler::new(1, SchedParams::default());
        let hog = s.add_thread(NICE0, CoreId(0));
        let sleeper = s.add_thread(NICE0, CoreId(0));
        s.wake(hog, t(0));
        drive_ticks(&mut s, CoreId(0), 0, 10_000); // 10s
        s.wake(sleeper, t(10_000));
        let v_hog = s.entity(hog).vruntime;
        let v_sleeper = s.entity(sleeper).vruntime;
        let credit = v_hog.saturating_sub(v_sleeper);
        assert!(
            credit
                <= SimDuration::from_millis(12).as_nanos() + SimDuration::from_millis(1).as_nanos(),
            "sleeper credit {credit}ns too large"
        );
    }

    #[test]
    fn min_gran_prevents_thrashing() {
        // Immediately after a switch, a tick within min_granularity must not
        // switch again even if vruntimes are close.
        let mut s = CfsScheduler::new(1, SchedParams::default());
        let a = s.add_thread(NICE0, CoreId(0));
        let b = s.add_thread(NICE0, CoreId(0));
        s.wake(a, t(0));
        s.wake(b, t(0));
        let before = s.switch_count(CoreId(0));
        s.tick(CoreId(0), t(0) + SimDuration::from_micros(100));
        assert_eq!(
            s.switch_count(CoreId(0)),
            before,
            "no thrash within min_gran"
        );
    }

    #[test]
    fn resched_forces_rotation() {
        let mut s = CfsScheduler::new(1, SchedParams::default());
        let a = s.add_thread(NICE0, CoreId(0));
        let b = s.add_thread(NICE0, CoreId(0));
        s.wake(a, t(0));
        s.wake(b, t(0));
        let cur = s.current(CoreId(0)).unwrap();
        let sw = s.resched(CoreId(0), t(1)).expect("forced switch");
        assert_eq!(sw.prev, Some(cur));
        assert_ne!(sw.next, Some(cur));
    }

    #[test]
    fn per_core_isolation() {
        let mut s = CfsScheduler::new(2, SchedParams::default());
        let a = s.add_thread(NICE0, CoreId(0));
        let b = s.add_thread(NICE0, CoreId(1));
        s.wake(a, t(0));
        s.wake(b, t(0));
        assert_eq!(s.current(CoreId(0)), Some(a));
        assert_eq!(s.current(CoreId(1)), Some(b));
        assert_eq!(s.nr_running(CoreId(0)), 1);
        assert_eq!(s.active_on_core(CoreId(1)), vec![b]);
    }

    #[test]
    fn vruntime_is_weight_scaled() {
        let mut s = CfsScheduler::new(1, SchedParams::default());
        let heavy = s.add_thread(-5, CoreId(0));
        s.wake(heavy, t(0));
        drive_ticks(&mut s, CoreId(0), 0, 100);
        let e = s.entity(heavy);
        // weight(−5) = 3121 ⇒ vruntime ≈ 100ms * 1024/3121 ≈ 32.8ms.
        let v_ms = e.vruntime as f64 / 1e6;
        assert!((v_ms - 32.8).abs() < 1.0, "v_ms={v_ms}");
        assert_eq!(e.sum_exec, SimDuration::from_millis(100));
    }

    #[test]
    fn switch_count_and_switches_in_agree() {
        let mut s = CfsScheduler::new(1, SchedParams::default());
        let a = s.add_thread(NICE0, CoreId(0));
        let b = s.add_thread(NICE0, CoreId(0));
        s.wake(a, t(0));
        s.wake(b, t(0));
        drive_ticks(&mut s, CoreId(0), 0, 500);
        let total = s.entity(a).switches_in + s.entity(b).switches_in;
        assert_eq!(total, s.switch_count(CoreId(0)));
        assert!(total >= 2);
    }

    #[test]
    fn nudged_thread_starts_behind() {
        let mut s = CfsScheduler::new(1, SchedParams::default());
        let a = s.add_thread(NICE0, CoreId(0));
        let b = s.add_thread(NICE0, CoreId(0));
        s.nudge_vruntime(b, SimDuration::from_millis(10).as_nanos());
        s.wake(a, t(0));
        s.wake(b, t(0));
        assert_eq!(s.current(CoreId(0)), Some(a), "a has the lower vruntime");
        assert!(s.entity(b).vruntime > s.entity(a).vruntime);
    }

    #[test]
    #[should_panic(expected = "nudge_vruntime on an active thread")]
    fn nudging_running_thread_panics() {
        let mut s = CfsScheduler::new(1, SchedParams::default());
        let a = s.add_thread(NICE0, CoreId(0));
        s.wake(a, t(0));
        s.nudge_vruntime(a, 1);
    }

    #[test]
    #[should_panic(expected = "block() caller")]
    fn blocking_a_non_running_thread_panics() {
        let mut s = CfsScheduler::new(1, SchedParams::default());
        let a = s.add_thread(NICE0, CoreId(0));
        s.block(a, t(0));
    }
}
