//! Nice-to-weight mapping (Linux `sched_prio_to_weight`).
//!
//! Each nice step changes CPU share by ~25%; nice 0 is 1024. The paper's
//! experiments run "lowest-priority CPU burn scripts" (nice 19, weight 15)
//! inside every VM so vCPU threads are always runnable without distorting
//! the I/O threads' share.

/// The weight of a nice-0 task.
pub const NICE_0_WEIGHT: u32 = 1024;

/// Linux's `sched_prio_to_weight[40]`, indexed by `nice + 20`.
const PRIO_TO_WEIGHT: [u32; 40] = [
    88761, 71755, 56483, 46273, 36291, // -20 .. -16
    29154, 23254, 18705, 14949, 11916, // -15 .. -11
    9548, 7620, 6100, 4904, 3906, // -10 .. -6
    3121, 2501, 1991, 1586, 1277, // -5 .. -1
    1024, 820, 655, 526, 423, // 0 .. 4
    335, 272, 215, 172, 137, // 5 .. 9
    110, 87, 70, 56, 45, // 10 .. 14
    36, 29, 23, 18, 15, // 15 .. 19
];

/// Map a nice value (clamped to `[-20, 19]`) to its CFS load weight.
pub fn nice_to_weight(nice: i8) -> u32 {
    let n = nice.clamp(-20, 19) as i32 + 20;
    PRIO_TO_WEIGHT[n as usize]
}

/// Scale a wall-clock execution delta (ns) into vruntime ns for a weight.
///
/// `delta_vruntime = delta_exec * NICE_0_WEIGHT / weight`, the CFS
/// `calc_delta_fair` rule (nice-0 tasks age 1:1).
#[inline]
pub fn scale_delta(delta_ns: u64, weight: u32) -> u64 {
    // u128 to avoid overflow for long deltas with tiny weights.
    ((delta_ns as u128 * NICE_0_WEIGHT as u128) / weight as u128) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn nice_zero_is_1024() {
        assert_eq!(nice_to_weight(0), 1024);
    }

    #[test]
    fn extremes_match_linux_table() {
        assert_eq!(nice_to_weight(-20), 88761);
        assert_eq!(nice_to_weight(19), 15);
    }

    #[test]
    fn clamps_out_of_range() {
        assert_eq!(nice_to_weight(-100), 88761);
        assert_eq!(nice_to_weight(100), 15);
    }

    #[test]
    fn each_step_changes_share_about_25_percent() {
        for nice in -20..19i8 {
            let a = nice_to_weight(nice) as f64;
            let b = nice_to_weight(nice + 1) as f64;
            let ratio = a / b;
            assert!((1.17..1.35).contains(&ratio), "nice {nice}: ratio {ratio}");
        }
    }

    #[test]
    fn nice0_vruntime_is_wall_clock() {
        assert_eq!(scale_delta(1_000_000, NICE_0_WEIGHT), 1_000_000);
    }

    #[test]
    fn heavy_thread_ages_slower() {
        // nice -5 (weight 3121) accrues vruntime ~3x slower than nice 0.
        let d = scale_delta(3_121_000, nice_to_weight(-5));
        assert_eq!(d, 1_024_000);
    }

    proptest! {
        /// Scaling is monotone in delta and anti-monotone in weight.
        #[test]
        fn prop_scale_monotone(d1 in 0u64..1u64 << 40, d2 in 0u64..1u64 << 40, n in -20i8..=19) {
            let w = nice_to_weight(n);
            let (lo, hi) = if d1 <= d2 { (d1, d2) } else { (d2, d1) };
            prop_assert!(scale_delta(lo, w) <= scale_delta(hi, w));
            // Heavier weight => less vruntime for the same delta.
            prop_assert!(scale_delta(lo, 88761) <= scale_delta(lo, 15));
        }
    }
}
