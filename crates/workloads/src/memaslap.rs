//! Memaslap — the Memcached load generator (§VI-E1).
//!
//! *"We configured Memaslap [...] making 256 concurrent requests from 16
//! threads with a get/set ratio of 9:1."* A closed loop: 256 requests are
//! outstanding at all times; each response immediately triggers the next
//! request. Default memaslap sizing: 64-byte keys, 1024-byte values.

use es2_sim::SimRng;

/// A Memcached operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum McOp {
    /// `get`: small request, value-sized response.
    Get,
    /// `set`: value-sized request, small response.
    Set,
}

/// Default key size (bytes).
pub const KEY_BYTES: u32 = 64;
/// Default value size (bytes).
pub const VALUE_BYTES: u32 = 1024;

impl McOp {
    /// Request payload bytes on the wire.
    pub fn request_bytes(self) -> u32 {
        match self {
            // "get <key>\r\n"
            McOp::Get => KEY_BYTES + 8,
            // "set <key> <flags> <exp> <len>\r\n<value>\r\n"
            McOp::Set => KEY_BYTES + VALUE_BYTES + 24,
        }
    }

    /// Response payload bytes on the wire.
    pub fn response_bytes(self) -> u32 {
        match self {
            // "VALUE <key> <flags> <len>\r\n<value>\r\nEND\r\n"
            McOp::Get => KEY_BYTES + VALUE_BYTES + 32,
            // "STORED\r\n"
            McOp::Set => 8,
        }
    }
}

/// The closed-loop memaslap client.
#[derive(Clone, Debug)]
pub struct MemaslapClient {
    concurrency: u32,
    get_ratio: f64,
    outstanding: u32,
    completed: u64,
    completed_gets: u64,
    completed_sets: u64,
    rng: SimRng,
}

impl MemaslapClient {
    /// The paper's configuration: 256 concurrent requests, 9:1 get/set.
    pub fn paper_config(seed: u64) -> Self {
        Self::new(256, 0.9, seed)
    }

    /// A custom configuration.
    pub fn new(concurrency: u32, get_ratio: f64, seed: u64) -> Self {
        assert!(concurrency > 0);
        assert!((0.0..=1.0).contains(&get_ratio));
        MemaslapClient {
            concurrency,
            get_ratio,
            outstanding: 0,
            completed: 0,
            completed_gets: 0,
            completed_sets: 0,
            rng: SimRng::new(seed),
        }
    }

    /// Configured concurrency.
    pub fn concurrency(&self) -> u32 {
        self.concurrency
    }

    /// Draw the next operation type per the get/set ratio.
    fn draw_op(&mut self) -> McOp {
        if self.rng.gen_bool(self.get_ratio) {
            McOp::Get
        } else {
            McOp::Set
        }
    }

    /// Issue as many requests as the concurrency window allows (all 256 at
    /// start-up; one per completion afterwards). Returns the ops to send.
    pub fn issue(&mut self) -> Vec<McOp> {
        let n = self.concurrency - self.outstanding;
        self.outstanding = self.concurrency;
        (0..n).map(|_| self.draw_op()).collect()
    }

    /// A response for `op` arrived; the closed loop immediately wants the
    /// next request, which this returns.
    pub fn on_response(&mut self, op: McOp) -> McOp {
        debug_assert!(self.outstanding > 0);
        self.completed += 1;
        match op {
            McOp::Get => self.completed_gets += 1,
            McOp::Set => self.completed_sets += 1,
        }
        // Window slot freed and instantly reused.
        self.draw_op()
    }

    /// Completed operations.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Completed gets.
    pub fn completed_gets(&self) -> u64 {
        self.completed_gets
    }

    /// Completed sets.
    pub fn completed_sets(&self) -> u64 {
        self.completed_sets
    }

    /// Operations per second over `secs`.
    pub fn ops_per_sec(&self, secs: f64) -> f64 {
        if secs <= 0.0 {
            0.0
        } else {
            self.completed as f64 / secs
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_issue_fills_concurrency() {
        let mut c = MemaslapClient::paper_config(1);
        let burst = c.issue();
        assert_eq!(burst.len(), 256);
        assert!(c.issue().is_empty(), "window full");
    }

    #[test]
    fn closed_loop_keeps_window_full() {
        let mut c = MemaslapClient::new(4, 0.9, 2);
        let burst = c.issue();
        assert_eq!(burst.len(), 4);
        let next = c.on_response(burst[0]);
        // One slot freed, instantly refilled by `next`.
        let _ = next;
        assert!(c.issue().is_empty());
        assert_eq!(c.completed(), 1);
    }

    #[test]
    fn get_set_ratio_is_roughly_nine_to_one() {
        let mut c = MemaslapClient::paper_config(3);
        let mut gets = 0u32;
        let mut total = 0u32;
        for op in c.issue() {
            if op == McOp::Get {
                gets += 1;
            }
            total += 1;
        }
        for _ in 0..10_000 {
            let op = c.on_response(McOp::Get);
            if op == McOp::Get {
                gets += 1;
            }
            total += 1;
        }
        let ratio = gets as f64 / total as f64;
        assert!((ratio - 0.9).abs() < 0.02, "ratio={ratio}");
    }

    #[test]
    fn op_sizes_are_asymmetric() {
        assert!(McOp::Get.request_bytes() < McOp::Get.response_bytes());
        assert!(McOp::Set.request_bytes() > McOp::Set.response_bytes());
    }

    #[test]
    fn ops_per_sec() {
        let mut c = MemaslapClient::new(1, 1.0, 4);
        let b = c.issue();
        let mut op = b[0];
        for _ in 0..500 {
            op = c.on_response(op);
        }
        assert!((c.ops_per_sec(0.5) - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = MemaslapClient::paper_config(9);
        let mut b = MemaslapClient::paper_config(9);
        assert_eq!(a.issue(), b.issue());
    }
}
