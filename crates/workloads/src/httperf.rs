//! Httperf — open-loop connection-rate generator (§VI-E2, Fig. 9).
//!
//! *"we measured the average time spent establishing TCP connections, which
//! is a primary metric of I/O processing delay."* Unlike `ab`, httperf is
//! **open loop**: it initiates connections at a fixed rate regardless of
//! completions, so once the server saturates, the connection backlog — and
//! with it the measured connection time — grows sharply. The knee of that
//! curve is the figure's result.

use es2_sim::{SimDuration, SimRng, SimTime};

/// The httperf client for one rate point.
#[derive(Clone, Debug)]
pub struct HttperfClient {
    rate_per_sec: f64,
    rng: SimRng,
    next_conn_id: u64,
    started: Vec<(u64, SimTime)>,
    conn_times: Vec<SimDuration>,
    completed: u64,
}

impl HttperfClient {
    /// A client initiating `rate_per_sec` connections per second.
    pub fn new(rate_per_sec: f64, seed: u64) -> Self {
        assert!(rate_per_sec > 0.0);
        HttperfClient {
            rate_per_sec,
            rng: SimRng::new(seed),
            next_conn_id: 0,
            started: Vec::new(),
            conn_times: Vec::new(),
            completed: 0,
        }
    }

    /// The configured rate.
    pub fn rate(&self) -> f64 {
        self.rate_per_sec
    }

    /// Delay until the next connection attempt (exponential interarrival —
    /// httperf's `--rate` with small jitter; deterministic per seed).
    pub fn next_interarrival(&mut self) -> SimDuration {
        SimDuration::from_secs_f64(self.rng.gen_exp(1.0 / self.rate_per_sec))
    }

    /// Start a connection (SYN sent) at `now`; returns its id.
    pub fn start_connection(&mut self, now: SimTime) -> u64 {
        let id = self.next_conn_id;
        self.next_conn_id += 1;
        self.started.push((id, now));
        id
    }

    /// The SYN/ACK for `id` arrived at `now` — the connection is
    /// established; records the connection time.
    pub fn on_established(&mut self, id: u64, now: SimTime) -> Option<SimDuration> {
        let pos = self.started.iter().position(|&(c, _)| c == id)?;
        let (_, at) = self.started.swap_remove(pos);
        let d = now.since(at);
        self.conn_times.push(d);
        self.completed += 1;
        Some(d)
    }

    /// Connections initiated.
    pub fn initiated(&self) -> u64 {
        self.next_conn_id
    }

    /// Connections established.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Connections still waiting for SYN/ACK.
    pub fn pending(&self) -> usize {
        self.started.len()
    }

    /// Mean connection-establishment time in milliseconds (the Fig. 9
    /// metric).
    pub fn mean_conn_time_ms(&self) -> f64 {
        if self.conn_times.is_empty() {
            return 0.0;
        }
        self.conn_times
            .iter()
            .map(|d| d.as_millis_f64())
            .sum::<f64>()
            / self.conn_times.len() as f64
    }

    /// Maximum observed connection time.
    pub fn max_conn_time(&self) -> Option<SimDuration> {
        self.conn_times.iter().max().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(us: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_micros(us)
    }

    #[test]
    fn interarrival_mean_matches_rate() {
        let mut c = HttperfClient::new(2000.0, 5);
        let n = 20_000;
        let total: f64 = (0..n).map(|_| c.next_interarrival().as_secs_f64()).sum();
        let mean = total / n as f64;
        assert!((mean - 0.0005).abs() < 0.00003, "mean={mean}");
    }

    #[test]
    fn connection_time_measured() {
        let mut c = HttperfClient::new(100.0, 1);
        let id = c.start_connection(t(0));
        let d = c.on_established(id, t(750)).unwrap();
        assert_eq!(d, SimDuration::from_micros(750));
        assert!((c.mean_conn_time_ms() - 0.75).abs() < 1e-9);
        assert_eq!(c.pending(), 0);
        assert_eq!(c.completed(), 1);
    }

    #[test]
    fn open_loop_tracks_backlog() {
        let mut c = HttperfClient::new(100.0, 2);
        for i in 0..10 {
            c.start_connection(t(i * 10));
        }
        assert_eq!(c.pending(), 10);
        assert_eq!(c.initiated(), 10);
        c.on_established(3, t(500));
        assert_eq!(c.pending(), 9);
    }

    #[test]
    fn unknown_connection_ignored() {
        let mut c = HttperfClient::new(100.0, 3);
        assert_eq!(c.on_established(7, t(1)), None);
    }

    #[test]
    fn max_conn_time() {
        let mut c = HttperfClient::new(100.0, 4);
        let a = c.start_connection(t(0));
        let b = c.start_connection(t(0));
        c.on_established(a, t(100));
        c.on_established(b, t(900));
        assert_eq!(c.max_conn_time(), Some(SimDuration::from_micros(900)));
    }
}
