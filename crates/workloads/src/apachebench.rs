//! ApacheBench — the Apache web-server load generator (§VI-E2).
//!
//! *"We configured ApacheBench [...] repeatedly requesting 8KB static pages
//! from 16 concurrent threads."* Classic `ab` (no `-k`) opens a fresh TCP
//! connection per request, so each transaction is:
//!
//! ```text
//! SYN → SYN/ACK → ACK+GET → response (6 MSS segments for 8 KB) → FIN
//! ```
//!
//! A closed loop with 16 outstanding transactions.

/// Default static page size.
pub const PAGE_BYTES: u32 = 8192;
/// HTTP GET request size on the wire.
pub const REQUEST_BYTES: u32 = 120;

/// The closed-loop ApacheBench client.
#[derive(Clone, Debug)]
pub struct AbClient {
    concurrency: u32,
    page_bytes: u32,
    outstanding: u32,
    completed: u64,
}

impl AbClient {
    /// The paper's configuration: 16 concurrent, 8 KB pages.
    pub fn paper_config() -> Self {
        Self::new(16, PAGE_BYTES)
    }

    /// A custom configuration.
    pub fn new(concurrency: u32, page_bytes: u32) -> Self {
        assert!(concurrency > 0 && page_bytes > 0);
        AbClient {
            concurrency,
            page_bytes,
            outstanding: 0,
            completed: 0,
        }
    }

    /// Configured concurrency.
    pub fn concurrency(&self) -> u32 {
        self.concurrency
    }

    /// Page size of each transaction.
    pub fn page_bytes(&self) -> u32 {
        self.page_bytes
    }

    /// Number of new transactions to start right now (fills the window).
    pub fn issue(&mut self) -> u32 {
        let n = self.concurrency - self.outstanding;
        self.outstanding = self.concurrency;
        n
    }

    /// A transaction completed (full page received). The closed loop
    /// starts the next one immediately; returns `true` (always, for
    /// symmetry with rate-limited clients).
    pub fn on_complete(&mut self) -> bool {
        debug_assert!(self.outstanding > 0);
        self.completed += 1;
        true
    }

    /// Completed transactions.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Requests per second over `secs`.
    pub fn requests_per_sec(&self, secs: f64) -> f64 {
        if secs <= 0.0 {
            0.0
        } else {
            self.completed as f64 / secs
        }
    }

    /// Transferred payload throughput in Gb/s over `secs` (page bodies
    /// only, as `ab` reports "Transfer rate").
    pub fn transfer_gbps(&self, secs: f64) -> f64 {
        if secs <= 0.0 {
            0.0
        } else {
            self.completed as f64 * self.page_bytes as f64 * 8.0 / secs / 1e9
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use es2_net::packet::segments_for;

    #[test]
    fn paper_page_is_six_segments() {
        assert_eq!(segments_for(PAGE_BYTES), 6);
    }

    #[test]
    fn window_fills_once() {
        let mut c = AbClient::paper_config();
        assert_eq!(c.issue(), 16);
        assert_eq!(c.issue(), 0);
    }

    #[test]
    fn closed_loop_counts() {
        let mut c = AbClient::new(2, 8192);
        c.issue();
        assert!(c.on_complete());
        assert!(c.on_complete());
        assert_eq!(c.completed(), 2);
        assert!((c.requests_per_sec(2.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn transfer_rate() {
        let mut c = AbClient::new(1, 1_250_000); // 10 Mbit page
        c.issue();
        for _ in 0..100 {
            c.on_complete();
        }
        assert!((c.transfer_gbps(1.0) - 1.0).abs() < 1e-9);
    }
}
