//! Workload generators matching the paper's benchmark tools (§VI).
//!
//! Each module models the *traffic-generating side* of a benchmark as a
//! pure state machine the testbed drives with simulated time:
//!
//! * [`netperf`] — `netperf` TCP_STREAM / UDP_STREAM send and receive
//!   (§VI-B, §VI-C, §VI-D1): saturating closed-loop bulk streams,
//! * [`ping`] — `ping` with a one-second interval (§VI-D2),
//! * [`memaslap`] — the Memcached load generator: "256 concurrent requests
//!   from 16 threads with a get/set ratio of 9:1" (§VI-E1),
//! * [`apachebench`] — ApacheBench: "repeatedly requesting 8KB static pages
//!   from 16 concurrent threads" (§VI-E2),
//! * [`httperf`] — Httperf: an open-loop connection-rate sweep measuring
//!   "the average time spent establishing TCP connections" (§VI-E2).
//!
//! All generators are deterministic given a [`es2_sim::SimRng`] seed.

pub mod apachebench;
pub mod httperf;
pub mod memaslap;
pub mod netperf;
pub mod ping;

pub use apachebench::AbClient;
pub use httperf::HttperfClient;
pub use memaslap::{McOp, MemaslapClient};
pub use netperf::{NetperfDirection, NetperfProto, NetperfSpec};
pub use ping::PingProbe;
