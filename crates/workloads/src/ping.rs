//! Ping RTT probe (§VI-D2).
//!
//! *"we used Ping with one second interval to measure the round trip time
//! (RTT) from an external server to the tested VM."* The probe emits one
//! echo request per interval and records the RTT of each reply — the
//! series plotted in Fig. 7.

use es2_sim::{SimDuration, SimTime};

/// The external ping client.
#[derive(Clone, Debug)]
pub struct PingProbe {
    interval: SimDuration,
    next_seq: u64,
    outstanding: Vec<(u64, SimTime)>,
    rtts: Vec<(SimTime, SimDuration)>,
}

impl PingProbe {
    /// A probe sending every `interval` (the paper uses 1 s).
    pub fn new(interval: SimDuration) -> Self {
        PingProbe {
            interval,
            next_seq: 0,
            outstanding: Vec::new(),
            rtts: Vec::new(),
        }
    }

    /// The probe interval.
    pub fn interval(&self) -> SimDuration {
        self.interval
    }

    /// Emit the next echo request at `now`; returns its sequence number.
    pub fn send(&mut self, now: SimTime) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.outstanding.push((seq, now));
        seq
    }

    /// An echo reply for `seq` arrived at `now`; records and returns the
    /// RTT, or `None` for an unknown/duplicate sequence.
    pub fn on_reply(&mut self, seq: u64, now: SimTime) -> Option<SimDuration> {
        let pos = self.outstanding.iter().position(|&(s, _)| s == seq)?;
        let (_, sent) = self.outstanding.swap_remove(pos);
        let rtt = now.since(sent);
        self.rtts.push((now, rtt));
        Some(rtt)
    }

    /// All recorded `(reply time, RTT)` samples.
    pub fn rtts(&self) -> &[(SimTime, SimDuration)] {
        &self.rtts
    }

    /// Requests with no reply yet.
    pub fn outstanding(&self) -> usize {
        self.outstanding.len()
    }

    /// Largest recorded RTT.
    pub fn max_rtt(&self) -> Option<SimDuration> {
        self.rtts.iter().map(|&(_, r)| r).max()
    }

    /// Mean RTT in milliseconds.
    pub fn mean_rtt_ms(&self) -> f64 {
        if self.rtts.is_empty() {
            return 0.0;
        }
        self.rtts
            .iter()
            .map(|&(_, r)| r.as_millis_f64())
            .sum::<f64>()
            / self.rtts.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    #[test]
    fn rtt_round_trip() {
        let mut p = PingProbe::new(SimDuration::from_secs(1));
        let s = p.send(t(0));
        assert_eq!(p.outstanding(), 1);
        let rtt = p.on_reply(s, t(3)).unwrap();
        assert_eq!(rtt, SimDuration::from_millis(3));
        assert_eq!(p.outstanding(), 0);
        assert_eq!(p.rtts().len(), 1);
    }

    #[test]
    fn unknown_seq_ignored() {
        let mut p = PingProbe::new(SimDuration::from_secs(1));
        assert_eq!(p.on_reply(42, t(1)), None);
        let s = p.send(t(0));
        p.on_reply(s, t(1));
        assert_eq!(p.on_reply(s, t(2)), None, "duplicate reply");
    }

    #[test]
    fn stats() {
        let mut p = PingProbe::new(SimDuration::from_secs(1));
        for (send_ms, rtt_ms) in [(0u64, 1u64), (1000, 18), (2000, 2)] {
            let s = p.send(t(send_ms));
            p.on_reply(s, t(send_ms + rtt_ms));
        }
        assert_eq!(p.max_rtt(), Some(SimDuration::from_millis(18)));
        assert!((p.mean_rtt_ms() - 7.0).abs() < 1e-9);
    }

    #[test]
    fn sequences_are_unique_and_monotone() {
        let mut p = PingProbe::new(SimDuration::from_secs(1));
        let a = p.send(t(0));
        let b = p.send(t(1000));
        assert!(b > a);
    }
}
