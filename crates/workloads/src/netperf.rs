//! netperf TCP_STREAM / UDP_STREAM specifications.
//!
//! netperf bulk streams are *saturating closed loops*: the sending side
//! always has the next message ready, limited only by CPU and (for TCP)
//! the flow-control window. The spec here captures the benchmark's
//! parameters; the byte/segment arithmetic is shared by the testbed and
//! the throughput reports.

use es2_net::packet::{segments_for, MSS};

/// Transport protocol under test.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NetperfProto {
    /// TCP_STREAM: ACK-clocked, bidirectional wire traffic.
    Tcp,
    /// UDP_STREAM: unidirectional, connectionless.
    Udp,
}

/// Direction relative to the tested VM.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NetperfDirection {
    /// The VM sends to the external server.
    Send,
    /// The VM receives from the external server.
    Receive,
}

/// One netperf stream configuration.
#[derive(Clone, Copy, Debug)]
pub struct NetperfSpec {
    /// Protocol.
    pub proto: NetperfProto,
    /// Direction.
    pub direction: NetperfDirection,
    /// Application message size in bytes (the paper sweeps 64–2048).
    pub msg_bytes: u32,
    /// Concurrent netperf processes ("four concurrent netperf threads were
    /// used to fully load the four vCPUs", §VI-D1).
    pub threads: u32,
}

impl NetperfSpec {
    /// A single-threaded TCP send stream (the §VI-B/§VI-C micro setup).
    pub fn tcp_send(msg_bytes: u32) -> Self {
        NetperfSpec {
            proto: NetperfProto::Tcp,
            direction: NetperfDirection::Send,
            msg_bytes,
            threads: 1,
        }
    }

    /// A single-threaded UDP send stream.
    pub fn udp_send(msg_bytes: u32) -> Self {
        NetperfSpec {
            proto: NetperfProto::Udp,
            direction: NetperfDirection::Send,
            msg_bytes,
            threads: 1,
        }
    }

    /// A TCP receive stream.
    pub fn tcp_receive(msg_bytes: u32) -> Self {
        NetperfSpec {
            proto: NetperfProto::Tcp,
            direction: NetperfDirection::Receive,
            msg_bytes,
            threads: 1,
        }
    }

    /// A UDP receive stream.
    pub fn udp_receive(msg_bytes: u32) -> Self {
        NetperfSpec {
            proto: NetperfProto::Udp,
            direction: NetperfDirection::Receive,
            msg_bytes,
            threads: 1,
        }
    }

    /// Same spec with a different thread count.
    pub fn with_threads(mut self, threads: u32) -> Self {
        assert!(threads > 0);
        self.threads = threads;
        self
    }

    /// Wire segments per application message.
    pub fn segments_per_msg(&self) -> u32 {
        match self.proto {
            NetperfProto::Tcp => segments_for(self.msg_bytes),
            // A UDP datagram under MTU is one frame; above, IP fragments.
            NetperfProto::Udp => self.msg_bytes.div_ceil(MSS).max(1),
        }
    }

    /// Bytes carried per segment (last segment may be short; we use the
    /// average for throughput accounting).
    pub fn payload_per_segment(&self) -> u32 {
        self.msg_bytes / self.segments_per_msg()
    }

    /// Goodput in Gb/s for `messages` delivered over `secs` seconds.
    pub fn goodput_gbps(&self, messages: u64, secs: f64) -> f64 {
        if secs <= 0.0 {
            0.0
        } else {
            messages as f64 * self.msg_bytes as f64 * 8.0 / secs / 1e9
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_messages_are_single_segment() {
        assert_eq!(NetperfSpec::tcp_send(1024).segments_per_msg(), 1);
        assert_eq!(NetperfSpec::udp_send(256).segments_per_msg(), 1);
    }

    #[test]
    fn large_messages_segment() {
        let s = NetperfSpec::tcp_send(4096);
        assert_eq!(s.segments_per_msg(), 3); // 4096 / 1460 -> 3
        assert_eq!(s.payload_per_segment(), 1365);
    }

    #[test]
    fn goodput_arithmetic() {
        let s = NetperfSpec::tcp_send(1250);
        // 100k messages x 1250B x 8 = 1 Gbit in 1 s.
        assert!((s.goodput_gbps(100_000, 1.0) - 1.0).abs() < 1e-12);
        assert_eq!(s.goodput_gbps(1, 0.0), 0.0);
    }

    #[test]
    fn thread_builder() {
        let s = NetperfSpec::tcp_send(1024).with_threads(4);
        assert_eq!(s.threads, 4);
    }

    #[test]
    #[should_panic]
    fn zero_threads_rejected() {
        NetperfSpec::tcp_send(64).with_threads(0);
    }
}
