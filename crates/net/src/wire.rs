//! A serializing point-to-point link.
//!
//! Models the back-to-back 40 GbE cable: each transmitted frame occupies the
//! link for its serialization time (`bytes * 8 / bandwidth`), frames queue
//! FIFO behind one another, and arrival at the far end adds a fixed
//! propagation delay. At 40 Gb/s a 1500-byte frame serializes in 300 ns, so
//! the link is never the bottleneck in these experiments — exactly as in the
//! paper, where the event path is.

use es2_sim::{PacketFault, SimDuration, SimTime};

/// Where a faulted transmit leaves the frame: zero, one, or two arrival
/// times at the far end. The link's serialization/FIFO state advances
/// identically in every case — a dropped frame still occupied the wire.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultedArrival {
    /// Frame lost in flight; nothing arrives.
    Dropped,
    /// Normal (or delayed/reordered) single arrival.
    One(SimTime),
    /// Duplicated in flight: two arrivals of the same frame.
    Two(SimTime, SimTime),
}

/// One direction of a point-to-point link.
#[derive(Clone, Debug)]
pub struct Link {
    bits_per_sec: u64,
    propagation: SimDuration,
    /// When the transmitter becomes free.
    next_free: SimTime,
    tx_packets: u64,
    tx_bytes: u64,
    dropped: u64,
    duplicated: u64,
    reordered: u64,
}

impl Link {
    /// A link with the given bandwidth and propagation delay.
    pub fn new(bits_per_sec: u64, propagation: SimDuration) -> Self {
        assert!(bits_per_sec > 0);
        Link {
            bits_per_sec,
            propagation,
            next_free: SimTime::ZERO,
            tx_packets: 0,
            tx_bytes: 0,
            dropped: 0,
            duplicated: 0,
            reordered: 0,
        }
    }

    /// A 40 GbE link with 1 µs propagation (back-to-back DAC cable + PHY).
    pub fn forty_gbe() -> Self {
        Link::new(40_000_000_000, SimDuration::from_micros(1))
    }

    /// Serialization time for a frame of `bytes`.
    pub fn serialization(&self, bytes: u32) -> SimDuration {
        SimDuration::from_nanos(
            (bytes as u64 * 8).saturating_mul(1_000_000_000) / self.bits_per_sec,
        )
    }

    /// Transmit a frame at `now`; returns its arrival time at the far end.
    ///
    /// If the transmitter is busy the frame queues behind earlier ones.
    pub fn transmit(&mut self, now: SimTime, bytes: u32) -> SimTime {
        let start = if self.next_free > now {
            self.next_free
        } else {
            now
        };
        let done = start + self.serialization(bytes);
        self.next_free = done;
        self.tx_packets += 1;
        self.tx_bytes += bytes as u64;
        done + self.propagation
    }

    /// Transmit a frame subject to an injected fault decision.
    ///
    /// With [`PacketFault::Deliver`] this is exactly [`Link::transmit`].
    /// Faults act on the *flight*, not the transmitter: serialization and
    /// FIFO occupancy are charged identically in all cases, so enabling
    /// fault hooks does not perturb the timing of unaffected frames.
    pub fn transmit_faulted(
        &mut self,
        now: SimTime,
        bytes: u32,
        fault: PacketFault,
    ) -> FaultedArrival {
        let arrival = self.transmit(now, bytes);
        match fault {
            PacketFault::Deliver => FaultedArrival::One(arrival),
            PacketFault::Drop => {
                self.dropped += 1;
                FaultedArrival::Dropped
            }
            PacketFault::Duplicate => {
                self.duplicated += 1;
                // The copy trails the original by one serialization slot.
                FaultedArrival::Two(arrival, arrival + self.serialization(bytes))
            }
            PacketFault::Delay(extra) => {
                self.reordered += 1;
                FaultedArrival::One(arrival + extra)
            }
        }
    }

    /// Current queueing delay a new frame would see.
    pub fn backlog(&self, now: SimTime) -> SimDuration {
        self.next_free.saturating_since(now)
    }

    /// Frames transmitted.
    pub fn tx_packets(&self) -> u64 {
        self.tx_packets
    }

    /// Bytes transmitted.
    pub fn tx_bytes(&self) -> u64 {
        self.tx_bytes
    }

    /// Frames lost to injected faults.
    pub fn dropped_frames(&self) -> u64 {
        self.dropped
    }

    /// Frames duplicated by injected faults.
    pub fn duplicated_frames(&self) -> u64 {
        self.duplicated
    }

    /// Frames delayed past later traffic by injected faults.
    pub fn reordered_frames(&self) -> u64 {
        self.reordered
    }

    /// Achieved throughput over an elapsed span, in Gb/s.
    pub fn throughput_gbps(&self, elapsed: SimDuration) -> f64 {
        if elapsed.is_zero() {
            0.0
        } else {
            self.tx_bytes as f64 * 8.0 / elapsed.as_secs_f64() / 1e9
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    #[test]
    fn serialization_time_40gbe() {
        let l = Link::forty_gbe();
        // 1500 B = 12000 bits at 40Gbps = 300 ns.
        assert_eq!(l.serialization(1500), SimDuration::from_nanos(300));
    }

    #[test]
    fn idle_link_delivers_after_serialization_plus_propagation() {
        let mut l = Link::forty_gbe();
        let arrive = l.transmit(t(0), 1500);
        assert_eq!(arrive, t(300 + 1000));
    }

    #[test]
    fn busy_link_queues_fifo() {
        let mut l = Link::forty_gbe();
        let a = l.transmit(t(0), 1500);
        let b = l.transmit(t(0), 1500);
        assert_eq!(
            b.since(a),
            SimDuration::from_nanos(300),
            "b serializes after a"
        );
        assert_eq!(l.backlog(t(0)), SimDuration::from_nanos(600));
    }

    #[test]
    fn link_goes_idle_between_sparse_frames() {
        let mut l = Link::forty_gbe();
        l.transmit(t(0), 1500);
        let late = l.transmit(t(10_000), 1500);
        assert_eq!(late, t(10_000 + 300 + 1000));
    }

    #[test]
    fn counters_and_throughput() {
        let mut l = Link::forty_gbe();
        for _ in 0..1000 {
            l.transmit(t(0), 1250);
        }
        assert_eq!(l.tx_packets(), 1000);
        assert_eq!(l.tx_bytes(), 1_250_000);
        // 1.25MB in 1ms = 10 Gb/s.
        let g = l.throughput_gbps(SimDuration::from_millis(1));
        assert!((g - 10.0).abs() < 1e-9, "{g}");
    }

    #[test]
    fn faulted_transmit_clean_path_matches_transmit() {
        let mut a = Link::forty_gbe();
        let mut b = Link::forty_gbe();
        for i in 0..20 {
            let plain = a.transmit(t(i * 100), 1500);
            let faulted = b.transmit_faulted(t(i * 100), 1500, PacketFault::Deliver);
            assert_eq!(faulted, FaultedArrival::One(plain));
        }
        assert_eq!(b.dropped_frames(), 0);
    }

    #[test]
    fn faults_charge_the_wire_but_change_arrivals() {
        let mut l = Link::forty_gbe();
        assert_eq!(
            l.transmit_faulted(t(0), 1500, PacketFault::Drop),
            FaultedArrival::Dropped
        );
        // The dropped frame still serialized: the next frame queues.
        let next = l.transmit(t(0), 1500);
        assert_eq!(next, t(600 + 1000));
        match l.transmit_faulted(t(10_000), 1500, PacketFault::Duplicate) {
            FaultedArrival::Two(first, second) => {
                assert_eq!(second.since(first), SimDuration::from_nanos(300));
            }
            other => panic!("expected duplicate, got {other:?}"),
        }
        let delayed =
            l.transmit_faulted(t(20_000), 1500, PacketFault::Delay(SimDuration::from_micros(5)));
        assert_eq!(delayed, FaultedArrival::One(t(20_000 + 300 + 1000 + 5_000)));
        assert_eq!(
            (l.dropped_frames(), l.duplicated_frames(), l.reordered_frames()),
            (1, 1, 1)
        );
    }

    #[test]
    fn arrival_order_matches_send_order() {
        let mut l = Link::forty_gbe();
        let mut prev = SimTime::ZERO;
        for i in 0..50 {
            let a = l.transmit(t(i * 10), 64 + i as u32);
            assert!(a > prev, "FIFO arrival order");
            prev = a;
        }
    }
}
