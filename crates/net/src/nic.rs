//! Bounded NIC / device queues with tail-drop.
//!
//! Between the wire and the vhost backend sits a bounded queue (the real
//! system's NIC ring + host network stack backlog). When the guest cannot
//! drain its receive path fast enough — the receive-side experiments of
//! Fig. 6b — this queue fills and tail-drops, which is precisely where lost
//! UDP throughput and TCP window stalls come from.

use std::collections::VecDeque;

use crate::packet::Packet;

/// RSS-style receive spreading: pick the RX queue for an arriving packet
/// on a multi-queue device, from a hash of the flow identity and the
/// packet's monotone id. Each simulated flow stands in for a whole
/// aggregate of real 5-tuples, so the packet id participates in the hash
/// the way distinct connection tuples would under real Toeplitz RSS —
/// packets of one simulated flow spread across the device's queues
/// deterministically. With `queues == 1` every packet lands on queue 0
/// (the legacy single-queue device, byte-identical behavior).
pub fn rss_queue(flow: u32, pkt_id: u64, queues: u32) -> u32 {
    if queues <= 1 {
        return 0;
    }
    let x = (((flow as u64) << 32) ^ pkt_id).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    ((x >> 33) % queues as u64) as u32
}

/// A bounded FIFO packet queue with drop accounting.
#[derive(Clone, Debug)]
pub struct NicQueue {
    q: VecDeque<Packet>,
    capacity: usize,
    enqueued: u64,
    dropped: u64,
}

impl NicQueue {
    /// A queue holding at most `capacity` packets.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0);
        NicQueue {
            q: VecDeque::with_capacity(capacity),
            capacity,
            enqueued: 0,
            dropped: 0,
        }
    }

    /// Enqueue; returns `false` (and counts a drop) if full.
    pub fn push(&mut self, p: Packet) -> bool {
        if self.q.len() >= self.capacity {
            self.dropped += 1;
            false
        } else {
            self.q.push_back(p);
            self.enqueued += 1;
            true
        }
    }

    /// Dequeue the oldest packet.
    pub fn pop(&mut self) -> Option<Packet> {
        self.q.pop_front()
    }

    /// Peek at the oldest packet.
    pub fn peek(&self) -> Option<&Packet> {
        self.q.front()
    }

    /// Packets currently queued.
    pub fn len(&self) -> usize {
        self.q.len()
    }

    /// True if nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.q.is_empty()
    }

    /// True if at capacity.
    pub fn is_full(&self) -> bool {
        self.q.len() >= self.capacity
    }

    /// Lifetime accepted packets.
    pub fn enqueued_total(&self) -> u64 {
        self.enqueued
    }

    /// Lifetime tail-drops.
    pub fn dropped_total(&self) -> u64 {
        self.dropped
    }

    /// Drop rate over everything offered.
    pub fn drop_fraction(&self) -> f64 {
        let offered = self.enqueued + self.dropped;
        if offered == 0 {
            0.0
        } else {
            self.dropped as f64 / offered as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{FlowId, PacketFactory, PacketKind};
    use es2_sim::SimTime;

    fn pkt(f: &mut PacketFactory) -> Packet {
        f.make(FlowId(0), PacketKind::Data, 100, SimTime::ZERO)
    }

    #[test]
    fn fifo_order() {
        let mut f = PacketFactory::new();
        let mut q = NicQueue::new(4);
        let a = pkt(&mut f);
        let b = pkt(&mut f);
        q.push(a);
        q.push(b);
        assert_eq!(q.pop().unwrap().id, a.id);
        assert_eq!(q.pop().unwrap().id, b.id);
        assert!(q.pop().is_none());
    }

    #[test]
    fn tail_drop_when_full() {
        let mut f = PacketFactory::new();
        let mut q = NicQueue::new(2);
        assert!(q.push(pkt(&mut f)));
        assert!(q.push(pkt(&mut f)));
        assert!(q.is_full());
        assert!(!q.push(pkt(&mut f)));
        assert_eq!(q.dropped_total(), 1);
        assert_eq!(q.enqueued_total(), 2);
        assert!((q.drop_fraction() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn drain_reopens_capacity() {
        let mut f = PacketFactory::new();
        let mut q = NicQueue::new(1);
        q.push(pkt(&mut f));
        assert!(!q.push(pkt(&mut f)));
        q.pop();
        assert!(q.push(pkt(&mut f)));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn peek_does_not_consume() {
        let mut f = PacketFactory::new();
        let mut q = NicQueue::new(2);
        let a = pkt(&mut f);
        q.push(a);
        assert_eq!(q.peek().unwrap().id, a.id);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn empty_drop_fraction_is_zero() {
        let q = NicQueue::new(1);
        assert_eq!(q.drop_fraction(), 0.0);
        assert!(q.is_empty());
    }

    #[test]
    fn rss_single_queue_is_always_zero() {
        for id in 0..64 {
            assert_eq!(rss_queue(3, id, 1), 0);
        }
    }

    #[test]
    fn rss_spreads_and_is_deterministic() {
        let queues = 4;
        let mut hit = vec![0u32; queues as usize];
        for id in 0..256u64 {
            let q = rss_queue(7, id, queues);
            assert!(q < queues);
            assert_eq!(q, rss_queue(7, id, queues), "stable per packet");
            hit[q as usize] += 1;
        }
        for (q, &n) in hit.iter().enumerate() {
            assert!(n > 0, "queue {q} never chosen over 256 packets");
        }
    }
}
