//! UDP stream accounting.
//!
//! UDP has no flow control: the sender pushes datagrams as fast as its CPU
//! allows ("consecutive high I/O load", §VI-B) and the receiver counts what
//! survives the bounded queues. Goodput = received / elapsed.

/// Sender/receiver counters for a unidirectional UDP stream.
#[derive(Clone, Copy, Debug, Default)]
pub struct UdpStream {
    sent: u64,
    received: u64,
    payload_bytes: u32,
}

impl UdpStream {
    /// A stream of datagrams carrying `payload_bytes` each.
    pub fn new(payload_bytes: u32) -> Self {
        UdpStream {
            sent: 0,
            received: 0,
            payload_bytes,
        }
    }

    /// Datagram payload size.
    pub fn payload_bytes(&self) -> u32 {
        self.payload_bytes
    }

    /// Record a transmitted datagram.
    pub fn on_sent(&mut self) {
        self.sent += 1;
    }

    /// Record a delivered datagram.
    pub fn on_received(&mut self) {
        self.received += 1;
    }

    /// Datagrams sent.
    pub fn sent(&self) -> u64 {
        self.sent
    }

    /// Datagrams delivered end-to-end.
    pub fn received(&self) -> u64 {
        self.received
    }

    /// Datagrams lost in bounded queues.
    pub fn lost(&self) -> u64 {
        self.sent.saturating_sub(self.received)
    }

    /// Delivered payload throughput in Gb/s over `secs` seconds.
    pub fn goodput_gbps(&self, secs: f64) -> f64 {
        if secs <= 0.0 {
            0.0
        } else {
            self.received as f64 * self.payload_bytes as f64 * 8.0 / secs / 1e9
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_loss() {
        let mut s = UdpStream::new(1024);
        for _ in 0..10 {
            s.on_sent();
        }
        for _ in 0..7 {
            s.on_received();
        }
        assert_eq!(s.sent(), 10);
        assert_eq!(s.received(), 7);
        assert_eq!(s.lost(), 3);
    }

    #[test]
    fn goodput() {
        let mut s = UdpStream::new(1250); // 10 kbit per datagram
        for _ in 0..1000 {
            s.on_sent();
            s.on_received();
        }
        // 10 Mbit in 1 s = 0.01 Gb/s.
        assert!((s.goodput_gbps(1.0) - 0.01).abs() < 1e-12);
        assert_eq!(s.goodput_gbps(0.0), 0.0);
    }
}
