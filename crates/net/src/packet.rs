//! Packets and flows.

use es2_sim::SimTime;

/// Identifier of a transport flow (one netperf/application stream).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FlowId(pub u32);

/// The role a packet plays in its flow.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PacketKind {
    /// Bulk payload segment (netperf stream data, HTTP response body).
    Data,
    /// TCP acknowledgment.
    Ack,
    /// TCP connection setup.
    Syn,
    /// TCP connection setup reply.
    SynAck,
    /// ICMP echo request (ping).
    EchoRequest,
    /// ICMP echo reply.
    EchoReply,
    /// Application request (memcached get/set, HTTP GET).
    Request,
    /// Application response.
    Response,
}

/// A simulated frame.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Packet {
    /// Monotone id for tracing.
    pub id: u64,
    /// Owning flow.
    pub flow: FlowId,
    /// Packet role.
    pub kind: PacketKind,
    /// On-wire size in bytes (payload + headers).
    pub bytes: u32,
    /// When the packet was created (latency measurement origin).
    pub created_at: SimTime,
    /// Opaque per-protocol tag: ACK coverage (segments), ping sequence,
    /// request kind, connection id — interpreted by the endpoints.
    pub meta: u32,
}

/// Ethernet + IP + TCP header overhead used when segmenting payloads.
pub const HEADER_BYTES: u32 = 66;
/// Default MTU (the paper: "The Maximum Transmission Unit (MTU) is set to
/// its default size of 1500 bytes").
pub const MTU: u32 = 1500;
/// Maximum TCP segment payload under the default MTU.
pub const MSS: u32 = MTU - 40;

/// Number of MSS-sized segments needed to carry `payload` bytes.
pub fn segments_for(payload: u32) -> u32 {
    payload.div_ceil(MSS).max(1)
}

/// Factory stamping monotone packet ids.
#[derive(Clone, Debug, Default)]
pub struct PacketFactory {
    next_id: u64,
}

impl PacketFactory {
    /// A factory starting at id 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create a packet with `meta` 0.
    pub fn make(
        &mut self,
        flow: FlowId,
        kind: PacketKind,
        payload_bytes: u32,
        now: SimTime,
    ) -> Packet {
        self.make_meta(flow, kind, payload_bytes, now, 0)
    }

    /// Create a packet carrying an explicit `meta` tag.
    pub fn make_meta(
        &mut self,
        flow: FlowId,
        kind: PacketKind,
        payload_bytes: u32,
        now: SimTime,
        meta: u32,
    ) -> Packet {
        let id = self.next_id;
        self.next_id += 1;
        Packet {
            id,
            flow,
            kind,
            bytes: payload_bytes + HEADER_BYTES,
            created_at: now,
            meta,
        }
    }

    /// Total packets created.
    pub fn created(&self) -> u64 {
        self.next_id
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_monotone() {
        let mut f = PacketFactory::new();
        let a = f.make(FlowId(0), PacketKind::Data, 100, SimTime::ZERO);
        let b = f.make(FlowId(0), PacketKind::Ack, 0, SimTime::ZERO);
        assert!(b.id > a.id);
        assert_eq!(f.created(), 2);
    }

    #[test]
    fn meta_tag_carried() {
        let mut f = PacketFactory::new();
        let p = f.make_meta(FlowId(2), PacketKind::Ack, 0, SimTime::ZERO, 7);
        assert_eq!(p.meta, 7);
        assert_eq!(f.make(FlowId(2), PacketKind::Ack, 0, SimTime::ZERO).meta, 0);
    }

    #[test]
    fn wire_size_includes_headers() {
        let mut f = PacketFactory::new();
        let p = f.make(FlowId(1), PacketKind::Data, 1024, SimTime::ZERO);
        assert_eq!(p.bytes, 1024 + HEADER_BYTES);
    }

    #[test]
    fn segmentation() {
        assert_eq!(segments_for(0), 1);
        assert_eq!(segments_for(100), 1);
        assert_eq!(segments_for(MSS), 1);
        assert_eq!(segments_for(MSS + 1), 2);
        assert_eq!(segments_for(8192), 6); // 8KB Apache page => 6 segments
    }
}
