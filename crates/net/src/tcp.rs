//! Window-based TCP flow model with delayed ACKs.
//!
//! The experiments run on a back-to-back 40 GbE LAN with microsecond RTTs
//! and effectively no loss, so TCP behaves as pure *ACK-clocked window flow
//! control*: the sender keeps at most `window` segments in flight, and the
//! receiver acknowledges every second segment (Linux delayed ACK). Two
//! consequences matter for the event path and are the reason this model
//! exists:
//!
//! * a *sender* receives a continuous stream of ingress ACKs — the virtual
//!   interrupts whose delivery path Baseline/PI/ES2 differ on;
//! * when interrupts are delayed (a descheduled vCPU), in-flight ACKs go
//!   unprocessed, the window drains, and the sender *stalls* — the
//!   mechanism behind intelligent interrupt redirection's throughput gain
//!   (§VI-D).

/// Sender-side window state (segment granularity).
#[derive(Clone, Debug)]
pub struct TcpFlow {
    window: u32,
    inflight: u32,
    sent_total: u64,
    acked_total: u64,
    stalls: u64,
    // Receiver-side delayed-ACK state.
    ack_every: u32,
    unacked_rx: u32,
    received_total: u64,
    acks_generated: u64,
}

impl TcpFlow {
    /// A flow with the given send window (in segments).
    ///
    /// Linux's default delayed-ACK policy acknowledges every 2nd segment.
    pub fn new(window: u32) -> Self {
        assert!(window > 0);
        TcpFlow {
            window,
            inflight: 0,
            sent_total: 0,
            acked_total: 0,
            stalls: 0,
            ack_every: 2,
            unacked_rx: 0,
            received_total: 0,
            acks_generated: 0,
        }
    }

    /// The configured window.
    pub fn window(&self) -> u32 {
        self.window
    }

    /// Segments currently unacknowledged.
    pub fn inflight(&self) -> u32 {
        self.inflight
    }

    /// True if the window permits sending another segment.
    pub fn can_send(&self) -> bool {
        self.inflight < self.window
    }

    /// Record a segment handed to the device. Returns `false` (and counts a
    /// stall) if the window is exhausted — the caller must wait for ACKs.
    pub fn on_segment_sent(&mut self) -> bool {
        if !self.can_send() {
            self.stalls += 1;
            return false;
        }
        self.inflight += 1;
        self.sent_total += 1;
        true
    }

    /// Process an ACK covering `segments` segments.
    pub fn on_ack_received(&mut self, segments: u32) {
        let covered = segments.min(self.inflight);
        self.inflight -= covered;
        self.acked_total += covered as u64;
    }

    // ---------------- receiver side ----------------

    /// Record an arriving data segment; returns `Some(covered)` when a
    /// (delayed) ACK must be emitted, covering `covered` segments.
    pub fn on_data_received(&mut self) -> Option<u32> {
        self.received_total += 1;
        self.unacked_rx += 1;
        if self.unacked_rx >= self.ack_every {
            let covered = self.unacked_rx;
            self.unacked_rx = 0;
            self.acks_generated += 1;
            Some(covered)
        } else {
            None
        }
    }

    /// Delayed-ACK timer fired: flush any half-batch.
    pub fn flush_delayed_ack(&mut self) -> Option<u32> {
        if self.unacked_rx > 0 {
            let covered = self.unacked_rx;
            self.unacked_rx = 0;
            self.acks_generated += 1;
            Some(covered)
        } else {
            None
        }
    }

    /// Segments sent over the flow's lifetime.
    pub fn sent_total(&self) -> u64 {
        self.sent_total
    }

    /// Segments acknowledged.
    pub fn acked_total(&self) -> u64 {
        self.acked_total
    }

    /// Segments received (receiver side).
    pub fn received_total(&self) -> u64 {
        self.received_total
    }

    /// ACK packets generated (receiver side).
    pub fn acks_generated(&self) -> u64 {
        self.acks_generated
    }

    /// Times the sender found the window exhausted.
    pub fn stall_count(&self) -> u64 {
        self.stalls
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn window_limits_inflight() {
        let mut f = TcpFlow::new(4);
        for _ in 0..4 {
            assert!(f.on_segment_sent());
        }
        assert!(!f.can_send());
        assert!(!f.on_segment_sent());
        assert_eq!(f.inflight(), 4);
        assert_eq!(f.stall_count(), 1);
    }

    #[test]
    fn acks_reopen_window() {
        let mut f = TcpFlow::new(2);
        f.on_segment_sent();
        f.on_segment_sent();
        f.on_ack_received(2);
        assert_eq!(f.inflight(), 0);
        assert!(f.can_send());
        assert_eq!(f.acked_total(), 2);
    }

    #[test]
    fn ack_never_underflows_inflight() {
        let mut f = TcpFlow::new(2);
        f.on_segment_sent();
        f.on_ack_received(10); // spurious extra coverage
        assert_eq!(f.inflight(), 0);
        assert_eq!(f.acked_total(), 1);
    }

    #[test]
    fn delayed_ack_every_second_segment() {
        let mut f = TcpFlow::new(4);
        assert_eq!(f.on_data_received(), None);
        assert_eq!(f.on_data_received(), Some(2));
        assert_eq!(f.on_data_received(), None);
        assert_eq!(f.on_data_received(), Some(2));
        assert_eq!(f.acks_generated(), 2);
        assert_eq!(f.received_total(), 4);
    }

    #[test]
    fn delayed_ack_timer_flushes_half_batch() {
        let mut f = TcpFlow::new(4);
        f.on_data_received();
        assert_eq!(f.flush_delayed_ack(), Some(1));
        assert_eq!(f.flush_delayed_ack(), None);
    }

    proptest! {
        /// Inflight never exceeds the window, and sent == acked + inflight.
        #[test]
        fn prop_window_invariant(
            window in 1u32..64,
            ops in proptest::collection::vec(any::<bool>(), 1..500)
        ) {
            let mut f = TcpFlow::new(window);
            for send in ops {
                if send {
                    f.on_segment_sent();
                } else {
                    f.on_ack_received(1);
                }
                prop_assert!(f.inflight() <= f.window());
                prop_assert_eq!(
                    f.sent_total(),
                    f.acked_total() + f.inflight() as u64
                );
            }
        }

        /// Receiver conservation: every received segment is covered by
        /// exactly one emitted ACK after a final flush.
        #[test]
        fn prop_ack_coverage(n in 1u64..500) {
            let mut f = TcpFlow::new(1);
            let mut covered = 0u64;
            for _ in 0..n {
                if let Some(c) = f.on_data_received() {
                    covered += c as u64;
                }
            }
            if let Some(c) = f.flush_delayed_ack() {
                covered += c as u64;
            }
            prop_assert_eq!(covered, n);
        }
    }
}
