//! Network substrate: packets, links, NIC queues and transport-flow models.
//!
//! The paper's testbed is two Xeon servers connected back-to-back with
//! Mellanox ConnectX-3 40 GbE NICs (§VI-A). This crate provides the
//! simulated equivalent:
//!
//! * [`packet::Packet`] — a sized, typed frame with timestamps for latency
//!   measurement,
//! * [`wire::Link`] — a serializing link with bandwidth, propagation delay
//!   and FIFO queueing (the 40 GbE cable),
//! * [`nic::NicQueue`] — a bounded device queue with tail-drop accounting
//!   (where UDP receive overload shows up),
//! * [`tcp::TcpFlow`] — window-based flow control with delayed ACKs. TCP's
//!   *bidirectional* traffic is load-bearing for the evaluation: ingress
//!   ACKs are what make the interrupt path matter for a sender (§VI-C:
//!   "the external interrupt exit is triggered due to the virtual interrupt
//!   injection, notifying the tested VM of ingress ACK packets"), and the
//!   fluctuating I/O load of ACK-clocked sending is why TCP needs a smaller
//!   quota than UDP (§VI-B),
//! * [`udp`] — unidirectional, connectionless stream helpers ("UDP traffic
//!   is unidirectional and connectionless, bringing a consecutive high I/O
//!   load").

pub mod nic;
pub mod packet;
pub mod tcp;
pub mod udp;
pub mod wire;

pub use nic::{rss_queue, NicQueue};
pub use packet::{FlowId, Packet, PacketFactory, PacketKind};
pub use tcp::TcpFlow;
pub use wire::{FaultedArrival, Link};
