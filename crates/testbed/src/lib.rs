//! The full simulated ES2 testbed (§VI-A) and experiment runners.
//!
//! This crate wires every substrate into the paper's experimental setup:
//!
//! * two "servers" connected back-to-back by a 40 GbE link — one runs the
//!   VMs under the CFS model with the configured event path
//!   (Baseline / PI / PI+H / PI+H+R), the other generates traffic,
//! * VMs with paravirtual network devices (virtio split rings + vhost
//!   worker threads), CPU-burn scripts, and the guest network stack model,
//! * the `perf-kvm`-style measurement infrastructure (exit breakdowns,
//!   TIG, latency series).
//!
//! [`machine::Machine`] is the discrete-event world; [`experiments`]
//! contains one runner per table/figure of the paper; [`params::Params`]
//! documents the calibration.
//!
//! ```no_run
//! use es2_core::EventPathConfig;
//! use es2_testbed::{Machine, Params, Topology, WorkloadSpec};
//! use es2_workloads::NetperfSpec;
//!
//! let m = Machine::new(
//!     EventPathConfig::pi_h_r(4),
//!     Topology::micro(),
//!     WorkloadSpec::Netperf(NetperfSpec::tcp_send(1024)),
//!     Params::default(),
//!     42,
//! );
//! let result = m.run();
//! println!("TIG = {:.1}%  exits/s = {:.0}", result.tig_percent, result.total_exit_rate());
//! ```

pub mod backpressure;
pub mod churn;
pub mod cluster;
pub mod experiments;
mod external;
mod guest;
mod host;
pub mod lanes;
pub mod liveness;
pub mod machine;
pub mod migrate;
pub mod params;
pub mod results;
mod spans;
mod telemetry;
pub mod workload;

pub use churn::ChurnLedger;
pub use cluster::{Cluster, ClusterResult, ClusterSpec, PlannedMove};
pub use lanes::ShardedMachine;
pub use liveness::LivenessReport;
pub use machine::{Machine, Topology, EV_KIND_NAMES};
pub use migrate::{MigCosts, MigLedger};
pub use es2_virtio::ShardPolicy;
pub use params::{BackpressureParams, ChurnSpec, Params};
pub use results::RunResult;
pub use workload::WorkloadSpec;
