//! The external traffic-generator server (the second Xeon of §VI-A).
//!
//! Bare-metal and unvirtualized, it is never the bottleneck: packets are
//! processed with a small fixed delay (`Params::ext_pkt`), and the load
//! generators from `es2-workloads` drive the protocol state machines.

use es2_net::{FlowId, Packet, PacketKind};
use es2_sim::SimDuration;

use crate::guest::{META_HTTP_GET, META_HTTP_GET_SMALL, META_MC_GET, META_MC_SET};
use crate::machine::{Ev, Machine};
use crate::workload::{encode_mc_op, ExtWl};
use es2_workloads::McOp;

impl Machine {
    /// Schedule the initial external traffic for every VM.
    pub(crate) fn bootstrap_external(&mut self) {
        for vm in 0..self.ext.len() as u32 {
            self.bootstrap_external_vm(vm);
        }
    }

    /// Schedule the initial external traffic for one VM. Factored out of
    /// the whole-machine bootstrap so a crash-evacuated VM cold-restarting
    /// on another host can rebuild its (lost) peer there mid-run.
    pub(crate) fn bootstrap_external_vm(&mut self, vm: u32) {
        {
            match &mut self.ext[vm as usize] {
                ExtWl::TcpSource { send_armed, .. } => {
                    *send_armed = true;
                    self.q
                        .push(self.now + SimDuration::from_micros(10), Ev::ExtSend { vm });
                    self.q.push(
                        self.now + SimDuration::from_millis(5),
                        Ev::ExtTcpTimeout { vm },
                    );
                }
                ExtWl::UdpSource { .. } => {
                    self.q
                        .push(self.now + SimDuration::from_micros(10), Ev::ExtSend { vm });
                }
                ExtWl::Ping(_) => {
                    self.q
                        .push(self.now + SimDuration::from_millis(1), Ev::ExtSend { vm });
                }
                ExtWl::Httperf { .. } => {
                    self.q
                        .push(self.now + SimDuration::from_micros(50), Ev::ExtSend { vm });
                }
                ExtWl::Memaslap { client, .. } => {
                    // Initial closed-loop burst: one request per window slot.
                    let ops = client.issue();
                    let reqs: Vec<Packet> = ops
                        .iter()
                        .enumerate()
                        .map(|(slot, &op)| {
                            let bytes = op.request_bytes();
                            self.pf.make_meta(
                                FlowId(slot as u32),
                                PacketKind::Request,
                                bytes,
                                self.now,
                                encode_mc_op(op),
                            )
                        })
                        .collect();
                    for (i, pkt) in reqs.into_iter().enumerate() {
                        // Spread the burst slightly (client thread ramp-up).
                        let at = self.now + SimDuration::from_micros(5 * (i as u64 + 1));
                        self.transmit_to_host_at(vm, pkt, at);
                    }
                }
                ExtWl::Ab { client, .. } => {
                    let n = client.issue();
                    for slot in 0..n {
                        let syn =
                            self.pf
                                .make_meta(FlowId(slot), PacketKind::Syn, 0, self.now, slot);
                        let at = self.now + SimDuration::from_micros(10 * (slot as u64 + 1));
                        self.transmit_to_host_at(vm, syn, at);
                    }
                }
                ExtWl::TcpSink { .. } | ExtWl::UdpSink { .. } | ExtWl::Idle => {}
            }
        }
    }

    /// Put a packet on the generator→host wire with the generator's
    /// processing delay.
    fn transmit_to_host(&mut self, vm: u32, pkt: Packet) {
        let at = self.now + self.p.ext_pkt;
        self.transmit_to_host_at(vm, pkt, at);
    }

    fn transmit_to_host_at(&mut self, vm: u32, pkt: Packet, at: es2_sim::SimTime) {
        let fault = self.faults.on_packet();
        match self.link_to_host.transmit_faulted(at, pkt.bytes, fault) {
            es2_net::FaultedArrival::Dropped => {}
            es2_net::FaultedArrival::One(arrival) => {
                self.q.push(arrival, Ev::ArriveAtHost { vm, pkt });
            }
            es2_net::FaultedArrival::Two(first, second) => {
                self.q.push(first, Ev::ArriveAtHost { vm, pkt });
                self.q.push(second, Ev::ArriveAtHost { vm, pkt });
            }
        }
    }

    /// A paced generator event fired (stream sources, ping, httperf).
    pub(crate) fn on_ext_send(&mut self, vm: u32) {
        enum Action {
            Send {
                kind: PacketKind,
                flow: u32,
                bytes: u32,
                meta: u32,
                rearm: Option<SimDuration>,
            },
            Nothing,
        }
        let vmi = vm as usize;
        let now = self.now;
        let ext_pkt = self.p.ext_pkt;
        let action = match &mut self.ext[vmi] {
            ExtWl::TcpSource {
                flow,
                cwnd,
                seg_bytes,
                send_armed,
                ..
            } => {
                let window_ok = |f: &es2_net::TcpFlow, cw: u32| f.can_send() && f.inflight() < cw;
                if window_ok(flow, *cwnd) {
                    flow.on_segment_sent();
                    let rearm = if window_ok(flow, *cwnd) {
                        *send_armed = true;
                        Some(ext_pkt)
                    } else {
                        *send_armed = false;
                        None
                    };
                    Action::Send {
                        kind: PacketKind::Data,
                        flow: 0,
                        bytes: *seg_bytes,
                        meta: 0,
                        rearm,
                    }
                } else {
                    *send_armed = false;
                    Action::Nothing
                }
            }
            ExtWl::UdpSource { msg_bytes, gap_ns } => Action::Send {
                kind: PacketKind::Data,
                flow: 0,
                bytes: *msg_bytes,
                meta: 0,
                rearm: Some(SimDuration::from_nanos(*gap_ns)),
            },
            ExtWl::Ping(probe) => {
                let seq = probe.send(now) as u32;
                Action::Send {
                    kind: PacketKind::EchoRequest,
                    flow: 0,
                    bytes: 56,
                    meta: seq,
                    rearm: Some(probe.interval()),
                }
            }
            ExtWl::Httperf { client, .. } => {
                let conn = client.start_connection(now);
                let gap = client.next_interarrival();
                Action::Send {
                    kind: PacketKind::Syn,
                    flow: conn as u32,
                    bytes: 0,
                    meta: conn as u32,
                    rearm: Some(gap),
                }
            }
            _ => Action::Nothing,
        };
        if let Action::Send {
            kind,
            flow,
            bytes,
            meta,
            rearm,
        } = action
        {
            let pkt = self.pf.make_meta(FlowId(flow), kind, bytes, now, meta);
            self.transmit_to_host(vm, pkt);
            if let Some(gap) = rearm {
                self.q.push(now + gap, Ev::ExtSend { vm });
            }
        }
    }

    /// Periodic RTO check for a TCP source: a stalled ACK clock means
    /// segments were tail-dropped at the host. Halve the congestion
    /// window (multiplicative decrease) and clear the in-flight
    /// accounting — the retransmission burst re-enters through the
    /// normal send path.
    pub(crate) fn on_ext_tcp_timeout(&mut self, vm: u32) {
        let vmi = vm as usize;
        let mut rearm_send = false;
        if let ExtWl::TcpSource {
            flow,
            cwnd,
            last_ack_at,
            send_armed,
            ..
        } = &mut self.ext[vmi]
        {
            let rto = SimDuration::from_millis(8);
            if flow.inflight() > 0 && self.now.saturating_since(*last_ack_at) > rto {
                let stuck = flow.inflight();
                flow.on_ack_received(stuck);
                *cwnd = (*cwnd / 2).max(8);
                *last_ack_at = self.now;
                if !*send_armed {
                    *send_armed = true;
                    rearm_send = true;
                }
            }
            self.q.push(
                self.now + SimDuration::from_millis(5),
                Ev::ExtTcpTimeout { vm },
            );
        }
        if rearm_send {
            self.q.push(self.now + self.p.ext_pkt, Ev::ExtSend { vm });
        }
    }

    /// A packet from the tested host arrived at the generator.
    pub(crate) fn on_arrive_ext(&mut self, vm: u32, pkt: Packet) {
        let vmi = vm as usize;
        let window_open = self.window_open;
        match &mut self.ext[vmi] {
            ExtWl::TcpSink {
                flow,
                received_segs,
            } => {
                if pkt.kind == PacketKind::Data {
                    if window_open {
                        *received_segs += 1;
                    }
                    if let Some(covered) = flow.on_data_received() {
                        let ack =
                            self.pf
                                .make_meta(pkt.flow, PacketKind::Ack, 0, self.now, covered);
                        self.transmit_to_host(vm, ack);
                    }
                }
            }
            ExtWl::UdpSink { received } => {
                if pkt.kind == PacketKind::Data && window_open {
                    *received += 1;
                }
            }
            ExtWl::TcpSource {
                flow,
                cwnd,
                last_ack_at,
                send_armed,
                ..
            } => {
                if pkt.kind == PacketKind::Ack {
                    flow.on_ack_received(pkt.meta);
                    *last_ack_at = self.now;
                    // Additive increase per ACK, up to the socket buffer.
                    *cwnd = (*cwnd + 1).min(flow.window());
                    if !*send_armed && flow.can_send() && flow.inflight() < *cwnd {
                        *send_armed = true;
                        self.q.push(self.now + self.p.ext_pkt, Ev::ExtSend { vm });
                    }
                }
            }
            ExtWl::Ping(probe) => {
                if pkt.kind == PacketKind::EchoReply {
                    probe.on_reply(pkt.meta as u64, self.now);
                }
            }
            ExtWl::Memaslap {
                client,
                ops_windowed,
            } => {
                if pkt.kind == PacketKind::Response {
                    let op = if pkt.meta == META_MC_GET {
                        McOp::Get
                    } else {
                        McOp::Set
                    };
                    let next = client.on_response(op);
                    if window_open {
                        *ops_windowed += 1;
                    }
                    let bytes = next.request_bytes();
                    let meta = if next == McOp::Get {
                        META_MC_GET
                    } else {
                        META_MC_SET
                    };
                    let req =
                        self.pf
                            .make_meta(pkt.flow, PacketKind::Request, bytes, self.now, meta);
                    self.transmit_to_host(vm, req);
                }
            }
            ExtWl::Ab {
                client,
                remaining,
                completed_windowed,
            } => match pkt.kind {
                PacketKind::SynAck => {
                    let slot = pkt.flow.0 as usize % remaining.len();
                    remaining[slot] = 6;
                    let get = self.pf.make_meta(
                        pkt.flow,
                        PacketKind::Request,
                        es2_workloads::apachebench::REQUEST_BYTES,
                        self.now,
                        META_HTTP_GET,
                    );
                    self.transmit_to_host(vm, get);
                }
                PacketKind::Response => {
                    let slot = pkt.flow.0 as usize % remaining.len();
                    if remaining[slot] > 0 {
                        remaining[slot] -= 1;
                        if remaining[slot] == 0 {
                            client.on_complete();
                            if window_open {
                                *completed_windowed += 1;
                            }
                            // Next transaction on this slot: fresh SYN.
                            let syn = self.pf.make_meta(
                                pkt.flow,
                                PacketKind::Syn,
                                0,
                                self.now,
                                pkt.flow.0,
                            );
                            self.transmit_to_host(vm, syn);
                        }
                    }
                }
                _ => {}
            },
            ExtWl::Httperf {
                client,
                conn_times_ms,
            } => {
                if pkt.kind == PacketKind::SynAck {
                    if let Some(d) = client.on_established(pkt.meta as u64, self.now) {
                        if window_open {
                            conn_times_ms.push(d.as_millis_f64());
                        }
                        // Fetch the page over the established connection.
                        let get = self.pf.make_meta(
                            pkt.flow,
                            PacketKind::Request,
                            es2_workloads::apachebench::REQUEST_BYTES,
                            self.now,
                            META_HTTP_GET_SMALL,
                        );
                        self.transmit_to_host(vm, get);
                    }
                }
            }
            ExtWl::UdpSource { .. } | ExtWl::Idle => {}
        }
    }
}
