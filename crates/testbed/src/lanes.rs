//! Lane-sharded machine: one simulated run partitioned across per-VM
//! event lanes (see [`es2_sim::lane`] for the executor and protocol).
//!
//! # Partitioning
//!
//! A [`ShardedMachine`] splits a topology's VMs into `lanes` contiguous
//! blocks; each lane is a full [`Machine`] over its block with its own
//! event-queue shard, RNG streams, scheduler core group, links, packet
//! factory, and fault-injector streams. Lane 0 keeps the run seed (and
//! VM 0, the tested VM); lanes `k > 0` derive their seeds from
//! `(seed, k)` with a SplitMix64 mix. Cross-lane-addressed fault
//! classes are projected onto each block by
//! [`FaultPlan::for_vm_range`].
//!
//! The **lane count is a model parameter**: sharding gives each block
//! its own vCPU core group and noise streams, so an `ES2_LANES=4` run
//! simulates a differently-partitioned host than an `ES2_LANES=1` run
//! and their results are comparable only at equal lane counts. What is
//! *guaranteed* invariant — and gated in `verify.sh` at every lane
//! count — is serial-vs-parallel lane execution: for any seed, fault
//! plan, and lane count, the windowed parallel executor is byte-
//! identical to the serial oracle. At `lanes == 1` the sharded machine
//! constructs exactly the legacy unsharded [`Machine`], so default runs
//! are bitwise identical to every release before sharding existed.
//!
//! # Lookahead and cross-lane traffic
//!
//! Lanes exchange events through the executor's mailboxes as
//! [`CrossLaneMsg`] packets, which enter the receiving lane like a wire
//! arrival. The lookahead a lane would declare is the external link's
//! propagation delay ([`CROSS_LANE_LOOKAHEAD`] — no packet can cross
//! between VMs faster than the wire). The workloads this testbed
//! currently models are all guest↔external-host flows — no VM ever
//! addresses a packet at another VM — so no lane has an egress route
//! and [`LaneSim::lookahead`] truthfully returns `None`: the executor
//! then runs the lanes embarrassingly parallel in one unbounded window.
//! The mailbox path stays live (and is exercised by the executor's own
//! cross-traffic suites) so inter-VM flows can ride it without touching
//! the protocol.

use es2_core::EventPathConfig;
use es2_net::Packet;
use es2_sim::lane::{run_lanes, run_lanes_parallel, run_lanes_serial, LaneSim, Outbox};
use es2_sim::{FaultPlan, SimDuration, SimTime};

use crate::liveness::{self, LivenessReport};
use crate::machine::{Machine, Topology};
use crate::params::Params;
use crate::results::RunResult;
use crate::workload::WorkloadSpec;

/// Minimum cross-lane latency: the external link's propagation delay
/// (`Link::forty_gbe()` — 1 µs). A packet leaving a VM at `t` cannot
/// reach a VM in another lane before `t + 1 µs`, which is the lookahead
/// a lane declares once it has inter-VM egress routes.
pub const CROSS_LANE_LOOKAHEAD: SimDuration = SimDuration::from_micros(1);

/// A packet crossing between lanes, addressed to a lane-local VM index.
pub struct CrossLaneMsg {
    /// Destination VM, in the *receiving* lane's local indexing.
    pub vm: u32,
    pub pkt: Packet,
}

/// One lane: a full [`Machine`] over a contiguous VM block.
struct LaneCell {
    m: Machine,
    /// First global VM index of this lane's block.
    base_vm: u32,
    /// Set once the lane's run loop reported completion (queue drained
    /// or `end_time` crossed); a machine past its end stays done even
    /// if stray events remain queued.
    done: bool,
}

impl LaneSim for LaneCell {
    type Msg = CrossLaneMsg;

    fn next_time(&self) -> Option<SimTime> {
        if self.done {
            return None;
        }
        self.m.next_event_time()
    }

    fn lookahead(&self) -> Option<SimDuration> {
        // No workload in this testbed generates inter-VM traffic, so no
        // lane has an egress route; see module docs. With egress this
        // becomes `Some(CROSS_LANE_LOOKAHEAD)`.
        None
    }

    fn step(&mut self, _outbox: &mut Outbox<CrossLaneMsg>) {
        if !self.m.step_one() {
            self.done = true;
        }
    }

    fn receive(&mut self, at: SimTime, msg: CrossLaneMsg) {
        self.m.receive_cross(at, msg.vm, msg.pkt);
    }
}

/// SplitMix64 — derives lane seeds from `(seed, lane)` so shards draw
/// from unrelated streams while lane 0 keeps the run seed.
fn lane_seed(seed: u64, lane: usize) -> u64 {
    if lane == 0 {
        return seed;
    }
    let mut z = seed ^ (lane as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A simulation run sharded into per-VM event lanes.
pub struct ShardedMachine {
    cells: Vec<LaneCell>,
}

impl ShardedMachine {
    /// Build a sharded testbed over `lanes` contiguous VM blocks.
    ///
    /// `lanes` is clamped to `[1, num_vms]`. With `lanes == 1` this is
    /// exactly [`Machine::with_specs_faulted`] — same arguments, same
    /// bytes out. With more lanes, each block gets its own core group
    /// (`vcpus_per_vm` shared vCPU cores + one vhost core per VM, plus
    /// any spare cores the original parameters carried), seed-derived
    /// RNG streams, and the fault plan projected onto its block.
    pub fn with_specs_faulted(
        cfg: EventPathConfig,
        topo: Topology,
        specs: Vec<WorkloadSpec>,
        params: Params,
        seed: u64,
        plan: FaultPlan,
        lanes: usize,
    ) -> Self {
        assert_eq!(specs.len(), topo.num_vms as usize);
        let n = topo.num_vms as usize;
        let lanes = lanes.clamp(1, n.max(1));
        if lanes == 1 {
            // The legacy unsharded machine, untransformed: pre-sharding
            // byte identity for every default run.
            let m = Machine::with_specs_faulted(cfg, topo, specs, params, seed, plan);
            return ShardedMachine {
                cells: vec![LaneCell {
                    m,
                    base_vm: 0,
                    done: false,
                }],
            };
        }

        // Cores beyond the topology's requirement are carried into every
        // lane (idle tick chains park after one event, so spares are
        // almost free and keep per-lane parameters valid).
        assert!(
            params.num_cores >= topo.vcpus_per_vm + topo.num_vms,
            "not enough cores for vCPUs + vhost workers"
        );
        let spare = params.num_cores - (topo.vcpus_per_vm + topo.num_vms);
        let base_size = n / lanes;
        let remainder = n % lanes;
        let mut cells = Vec::with_capacity(lanes);
        let mut base = 0usize;
        for k in 0..lanes {
            let cnt = base_size + usize::from(k < remainder);
            let lane_topo = Topology {
                num_vms: cnt as u32,
                vcpus_per_vm: topo.vcpus_per_vm,
            };
            let mut p = params;
            p.num_cores = topo.vcpus_per_vm + cnt as u32 + spare;
            if p.trace_events > 0 {
                // Deterministic event-log budget split; lane 0 keeps the
                // remainder (it owns the tested VM).
                let share = p.trace_events / lanes as u32;
                p.trace_events = if k == 0 {
                    share + p.trace_events % lanes as u32
                } else {
                    share
                };
            }
            let lane_specs = specs[base..base + cnt].to_vec();
            let lane_plan = plan.for_vm_range(base as u32, cnt as u32);
            let m = Machine::with_specs_faulted(
                cfg,
                lane_topo,
                lane_specs,
                p,
                lane_seed(seed, k),
                lane_plan,
            );
            cells.push(LaneCell {
                m,
                base_vm: base as u32,
                done: false,
            });
            base += cnt;
        }
        debug_assert_eq!(base, n);
        ShardedMachine { cells }
    }

    /// Build with the lane count resolved from the executor config
    /// ([`es2_sim::exec::set_lanes`], else `ES2_LANES`, else 1).
    pub fn auto(
        cfg: EventPathConfig,
        topo: Topology,
        specs: Vec<WorkloadSpec>,
        params: Params,
        seed: u64,
        plan: FaultPlan,
    ) -> Self {
        let lanes = es2_sim::exec::effective_lanes(topo.num_vms as usize);
        Self::with_specs_faulted(cfg, topo, specs, params, seed, plan, lanes)
    }

    /// Number of lanes the run is sharded into.
    pub fn num_lanes(&self) -> usize {
        self.cells.len()
    }

    /// Run to completion (strategy per executor config: serial oracle
    /// under `ES2_THREADS=1`, windowed parallel otherwise — identical
    /// bytes either way) and collect merged results.
    pub fn run(mut self) -> RunResult {
        run_lanes(&mut self.cells);
        self.collect()
    }

    /// Run to completion with the serial oracle, regardless of the
    /// executor config (identity-test hook).
    pub fn run_serial(mut self) -> RunResult {
        run_lanes_serial(&mut self.cells);
        self.collect()
    }

    /// Run to completion with the windowed parallel executor at an
    /// explicit worker count (identity-test hook).
    pub fn run_parallel(mut self, threads: usize) -> RunResult {
        run_lanes_parallel(&mut self.cells, threads);
        self.collect()
    }

    /// Run to completion, check liveness invariants on every lane's
    /// final state, then collect merged results. Lane `k`'s violations
    /// are prefixed `lane{k}:` (VM indices inside stay lane-local);
    /// with one lane the report is identical to
    /// [`Machine::run_checked`]'s.
    pub fn run_checked(mut self) -> (RunResult, LivenessReport) {
        run_lanes(&mut self.cells);
        let mut merged = LivenessReport::default();
        let single = self.cells.len() == 1;
        for (k, cell) in self.cells.iter().enumerate() {
            let rep = liveness::check(&cell.m);
            if single {
                merged = rep;
                break;
            }
            merged.violations.extend(
                rep.violations
                    .into_iter()
                    .map(|v| format!("lane{k} (vms {}..): {v}", cell.base_vm)),
            );
            if !rep.diagnostics.is_empty() {
                merged
                    .diagnostics
                    .push_str(&format!("=== lane{k} ===\n{}", rep.diagnostics));
            }
        }
        (self.collect(), merged)
    }

    /// Run to completion, returning merged results plus a final state
    /// snapshot (lane-prefixed for sharded runs, the plain machine
    /// snapshot for one lane).
    pub fn run_with_snapshot(mut self) -> (RunResult, String) {
        run_lanes(&mut self.cells);
        let snap = if self.cells.len() == 1 {
            self.cells[0].m.debug_snapshot()
        } else {
            let mut s = String::new();
            for (k, cell) in self.cells.iter().enumerate() {
                s.push_str(&format!(
                    "=== lane {k} (vms {}..{}) ===\n",
                    cell.base_vm,
                    cell.base_vm + cell.m.topo.num_vms
                ));
                s.push_str(&cell.m.debug_snapshot());
            }
            s
        };
        (self.collect(), snap)
    }

    /// Run every lane to completion *individually*, timing each — the
    /// per-lane serial wall-clock attribution behind the scale bench's
    /// `in_run_speedup` (critical-path speedup = Σ lane wall / max lane
    /// wall). Valid exactly because no lane currently has cross-lane
    /// egress (lookahead `None`): running the lanes sequentially to
    /// completion *is* the serial oracle's schedule, so the merged
    /// result is byte-identical to [`run`](Self::run).
    pub fn run_lanes_timed(mut self) -> (RunResult, Vec<f64>) {
        debug_assert!(self.cells.iter().all(|c| c.lookahead().is_none()));
        let mut secs = Vec::with_capacity(self.cells.len());
        for cell in &mut self.cells {
            let t0 = std::time::Instant::now();
            while !cell.done {
                if !cell.m.step_one() {
                    cell.done = true;
                }
            }
            secs.push(t0.elapsed().as_secs_f64());
        }
        (self.collect(), secs)
    }

    /// Merge per-lane results into one run-level [`RunResult`].
    ///
    /// Lane 0 owns VM 0 — the tested VM — so every VM-0-scoped metric
    /// (exits, goodput, RTTs, kick/interrupt counts, …) comes from lane
    /// 0 verbatim. Global aggregates sum across lanes; per-VM vectors
    /// concatenate in lane order, which reconstructs global VM indexing
    /// because blocks are contiguous.
    fn collect(self) -> RunResult {
        let mut parts = self.cells.into_iter().map(|c| RunResult::collect(c.m));
        let mut base = parts.next().expect("at least one lane");
        for p in parts {
            base.events_simulated += p.events_simulated;
            base.host_ctx_switches += p.host_ctx_switches;
            base.redirections += p.redirections;
            base.offline_predictions += p.offline_predictions;
            base.quarantines_total += p.quarantines_total;
            base.queue_resets_total += p.queue_resets_total;
            base.fault_stats.merge(&p.fault_stats);
            base.modes.append(&p.modes);
            base.backpressure.merge(&p.backpressure);
            base.backpressure_per_vm.extend(p.backpressure_per_vm);
            base.rx_p99_us_per_vm.extend(p.rx_p99_us_per_vm);
            let offset = base.modes.num_vms() as u32 - p.modes.num_vms() as u32;
            match (&mut base.spans, p.spans) {
                (Some(a), Some(b)) => a.absorb(b, offset),
                (None, Some(b)) => base.spans = Some(b),
                _ => {}
            }
            match (&mut base.telemetry, p.telemetry) {
                (Some(a), Some(b)) => a.absorb(b, offset),
                (None, Some(b)) => base.telemetry = Some(b),
                _ => {}
            }
        }
        base
    }
}
