//! Per-VM kick throttling: a deterministic token bucket (GCRA form).
//!
//! The throttle decides, in integer nanoseconds of sim time, whether a
//! guest kick is admitted to the vhost worker immediately or deferred to
//! a later (exactly computed) instant. The GCRA formulation keeps the
//! whole decision in two `u64`s — a theoretical-arrival-time cursor plus
//! constants — so it is trivially deterministic and allocation-free:
//!
//! * `increment` `T = 1e9 / rate` — nanoseconds earned per kick,
//! * `tolerance` `τ = burst · T` — how far ahead of schedule a burst may
//!   run before deferral starts.
//!
//! A kick arriving at `t` conforms iff the cursor (TAT) is at most
//! `t + τ`; it then advances the cursor by `T`. A non-conforming kick is
//! deferred to `TAT − τ` — the first instant it would conform — and
//! charged there. Deferred kicks coalesce: the virtqueue's kick is
//! level-triggered, so delivering one late wake at the conforming instant
//! serves every kick the storm produced in between.

use crate::params::BackpressureParams;

/// Outcome of one admission test.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Admission {
    /// The kick conforms: deliver it now.
    Pass,
    /// The kick is over-rate: deliver one coalesced wake at this sim-time
    /// (nanoseconds) instead.
    DeferUntil(u64),
}

/// GCRA state for one VM's kick stream.
#[derive(Clone, Copy, Debug)]
pub struct KickBucket {
    /// Theoretical arrival time of the next conforming kick (ns).
    tat: u64,
    /// Nanoseconds per kick at the sustained rate.
    increment: u64,
    /// Burst allowance in nanoseconds.
    tolerance: u64,
}

impl KickBucket {
    /// A bucket from the run parameters; starts full (a burst passes
    /// immediately).
    pub fn new(p: &BackpressureParams) -> Self {
        let increment = (1e9 / p.kick_rate).max(1.0) as u64;
        KickBucket {
            tat: 0,
            increment,
            tolerance: increment.saturating_mul(p.kick_burst as u64),
        }
    }

    /// Admission-test a kick arriving at sim-time `now_ns`.
    pub fn admit(&mut self, now_ns: u64) -> Admission {
        let conforming_at = self.tat.saturating_sub(self.tolerance);
        if now_ns >= conforming_at {
            self.tat = self.tat.max(now_ns) + self.increment;
            Admission::Pass
        } else {
            // Do not advance the cursor: the deferred wake re-enters
            // `admit` when it fires and is charged then. Intermediate
            // kicks coalesce onto the same instant.
            Admission::DeferUntil(conforming_at)
        }
    }

    /// The earliest instant a kick would currently conform (for tests and
    /// introspection).
    pub fn conforming_at(&self) -> u64 {
        self.tat.saturating_sub(self.tolerance)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use es2_sim::SimDuration;

    fn bucket(rate: f64, burst: u32) -> KickBucket {
        KickBucket::new(&BackpressureParams {
            kick_rate: rate,
            kick_burst: burst,
            service_budget: 4096,
            budget_window: SimDuration::from_millis(1),
        })
    }

    #[test]
    fn burst_passes_then_defers() {
        // 1 kHz, burst 4: T = 1 ms, τ = 4 ms.
        let mut b = bucket(1000.0, 4);
        for i in 0..5 {
            assert_eq!(b.admit(0), Admission::Pass, "kick {i} within burst");
        }
        // Sixth same-instant kick: TAT = 5 ms, conforming at 1 ms.
        assert_eq!(b.admit(0), Admission::DeferUntil(1_000_000));
    }

    #[test]
    fn deferred_instant_conforms() {
        let mut b = bucket(1000.0, 4);
        for _ in 0..5 {
            b.admit(0);
        }
        let Admission::DeferUntil(at) = b.admit(0) else {
            panic!("expected deferral");
        };
        assert_eq!(b.admit(at), Admission::Pass, "deferred wake must pass");
    }

    #[test]
    fn paced_stream_never_defers() {
        // Kicks exactly at the sustained rate conform forever.
        let mut b = bucket(1_000_000.0, 1); // T = 1 µs
        for i in 0..10_000u64 {
            assert_eq!(b.admit(i * 1_000), Admission::Pass, "kick {i}");
        }
    }

    #[test]
    fn idle_time_refills_the_burst_allowance() {
        let mut b = bucket(1000.0, 4);
        for _ in 0..5 {
            assert_eq!(b.admit(0), Admission::Pass);
        }
        assert!(matches!(b.admit(0), Admission::DeferUntil(_)));
        // 5 ms of silence pays the debt back in full.
        let later = 5_000_000;
        for i in 0..5 {
            assert_eq!(b.admit(later), Admission::Pass, "post-idle kick {i}");
        }
    }

    #[test]
    fn storm_coalesces_onto_one_instant() {
        let mut b = bucket(1000.0, 1);
        assert_eq!(b.admit(0), Admission::Pass);
        assert_eq!(b.admit(0), Admission::Pass, "burst of one more");
        let first = match b.admit(0) {
            Admission::DeferUntil(at) => at,
            other => panic!("expected deferral, got {other:?}"),
        };
        // Every further same-instant kick lands on the same wake.
        for _ in 0..100 {
            assert_eq!(b.admit(0), Admission::DeferUntil(first));
        }
    }

    #[test]
    fn decisions_are_pure_functions_of_time() {
        // Two buckets fed the same arrival times make the same decisions
        // (the determinism contract).
        let arrivals = [0u64, 10, 10, 500_000, 500_000, 500_000, 2_000_000];
        let mut a = bucket(1000.0, 2);
        let mut b = bucket(1000.0, 2);
        for &t in &arrivals {
            assert_eq!(a.admit(t), b.admit(t));
        }
    }
}
