//! Workload specifications and per-VM runtime workload state.

use std::collections::VecDeque;

use es2_net::TcpFlow;
use es2_workloads::{AbClient, HttperfClient, McOp, MemaslapClient, NetperfSpec, PingProbe};

impl WorkloadSpec {
    /// Whether the guest's vCPUs HLT when idle. Server workloads
    /// (memcached/apache) idle between requests and wake on interrupts —
    /// this is what keeps connection times low below saturation in Fig. 9.
    /// The netperf/ping micro setups instead run the §VI-D CPU-burn
    /// scripts, so their vCPUs never halt.
    pub fn guest_idles(&self) -> bool {
        // Only the httperf experiment runs the server VM without a
        // CPU-burn companion: its below-saturation connection times are
        // sub-millisecond in the paper, which requires HLT + wake-on-
        // interrupt. The throughput-saturation experiments (memcached,
        // apache) follow the §VI-D "burn script in each VM" setup.
        // `IdleQuiet` tenants are HLT-idle by definition.
        matches!(
            self,
            WorkloadSpec::Httperf { .. } | WorkloadSpec::IdleQuiet
        )
    }
}

/// What the tested VM (and its external peer) runs.
#[derive(Clone, Copy, Debug)]
pub enum WorkloadSpec {
    /// netperf bulk stream (direction and protocol inside the spec).
    Netperf(NetperfSpec),
    /// External ping, 1 s interval (Fig. 7).
    Ping,
    /// Memcached server in the VM, memaslap outside (Fig. 8a).
    Memcached,
    /// Apache server in the VM, ApacheBench outside (Fig. 8b).
    Apache,
    /// Apache server in the VM, httperf outside at a fixed connection rate
    /// (Fig. 9).
    Httperf {
        /// Connections initiated per second.
        rate: f64,
    },
    /// No I/O — the VM only runs its CPU-burn script (the background VMs
    /// of the multiplexed experiments).
    Idle,
    /// No I/O and no CPU-burn script either: a consolidated tenant at
    /// rest, whose guest HLTs whenever it has nothing to do. The
    /// background fleet of the `repro --scale` consolidation sweep, where
    /// most tenants are idle while a few serve traffic.
    IdleQuiet,
}

/// A server-side application request decoded by the guest's receive path.
#[derive(Clone, Copy, Debug)]
pub struct AppRequest {
    /// Which kind of work it is (memcached op / HTTP GET).
    pub op: ServerOp,
    /// Connection/flow identifier to respond on.
    pub flow: u32,
    /// Opaque client-side tag echoed back in the response.
    pub meta: u32,
}

/// Server-side work types.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ServerOp {
    /// memcached get (small request, value-sized response).
    McGet,
    /// memcached set (value-sized request, small response).
    McSet,
    /// HTTP GET for the 8 KB static page (6-segment response).
    HttpGet,
    /// HTTP GET for httperf's small page (1-segment response).
    HttpGetSmall,
}

/// Guest-side runtime state of the workload.
#[derive(Clone, Debug)]
pub enum GuestWl {
    /// netperf sender: one flow per netperf thread, thread `i` pinned to
    /// vCPU `i`.
    NetperfSend {
        /// The stream spec.
        spec: NetperfSpec,
        /// Per-thread TCP window state (unused entries for UDP).
        flows: Vec<TcpFlow>,
        /// Messages fully handed to the device (windowed count).
        sent_msgs: u64,
        /// Per-flow time of the last ACK (guest-side RTO detection under
        /// injected packet loss; parallel to `flows`).
        last_ack_at: Vec<es2_sim::SimTime>,
    },
    /// netperf receiver: the guest consumes and ACKs.
    NetperfRecv {
        /// The stream spec.
        spec: NetperfSpec,
        /// Receiver-side delayed-ACK state (TCP).
        flow: TcpFlow,
        /// Segments consumed by NAPI inside the window.
        received_segs: u64,
        /// Whether a delayed-ACK flush is scheduled.
        ack_flush_pending: bool,
    },
    /// A server application (memcached / apache): requests decoded by NAPI
    /// queue here and are served by app steps on any vCPU.
    Server {
        /// Pending decoded requests.
        pending: VecDeque<AppRequest>,
        /// Completed requests (windowed).
        served: u64,
    },
    /// Ping / idle: no guest-side application work.
    Passive,
}

impl GuestWl {
    /// Construct the guest-side state for a spec.
    pub fn for_spec(spec: &WorkloadSpec, tcp_window: u32) -> GuestWl {
        match spec {
            WorkloadSpec::Netperf(np) => match np.direction {
                es2_workloads::NetperfDirection::Send => GuestWl::NetperfSend {
                    spec: *np,
                    flows: (0..np.threads).map(|_| TcpFlow::new(tcp_window)).collect(),
                    sent_msgs: 0,
                    last_ack_at: vec![es2_sim::SimTime::ZERO; np.threads as usize],
                },
                es2_workloads::NetperfDirection::Receive => GuestWl::NetperfRecv {
                    spec: *np,
                    flow: TcpFlow::new(tcp_window),
                    received_segs: 0,
                    ack_flush_pending: false,
                },
            },
            WorkloadSpec::Memcached | WorkloadSpec::Apache | WorkloadSpec::Httperf { .. } => {
                GuestWl::Server {
                    pending: VecDeque::new(),
                    served: 0,
                }
            }
            WorkloadSpec::Ping | WorkloadSpec::Idle | WorkloadSpec::IdleQuiet => GuestWl::Passive,
        }
    }
}

/// External-host (traffic generator) runtime state per VM.
#[derive(Clone, Debug)]
pub enum ExtWl {
    /// Receives the guest's TCP stream; emits delayed ACKs.
    TcpSink {
        /// Receiver-side delayed-ACK state.
        flow: TcpFlow,
        /// Data segments received inside the measurement window.
        received_segs: u64,
    },
    /// Receives the guest's UDP stream.
    UdpSink {
        /// Datagrams received inside the window.
        received: u64,
    },
    /// Sends a TCP stream to the guest (window-limited, with a minimal
    /// AIMD congestion response: tail-drops at the host backlog stall the
    /// ACK clock; an RTO halves the congestion window and clears the
    /// in-flight accounting, modeling retransmission).
    TcpSource {
        /// Sender-side window state (socket-buffer bound).
        flow: TcpFlow,
        /// Dynamic congestion window, in segments.
        cwnd: u32,
        /// Last time an ACK arrived (RTO detection).
        last_ack_at: es2_sim::SimTime,
        /// Segment payload bytes.
        seg_bytes: u32,
        /// Whether a send event is scheduled.
        send_armed: bool,
    },
    /// Sends a UDP stream to the guest at a fixed rate.
    UdpSource {
        /// Datagram payload bytes.
        msg_bytes: u32,
        /// Inter-datagram gap in nanoseconds.
        gap_ns: u64,
    },
    /// Ping client.
    Ping(PingProbe),
    /// memaslap closed-loop client.
    Memaslap {
        /// The load generator.
        client: MemaslapClient,
        /// Operations completed inside the window.
        ops_windowed: u64,
    },
    /// ApacheBench closed-loop client. Each live transaction tracks the
    /// response segments still expected.
    Ab {
        /// Client window state.
        client: AbClient,
        /// Remaining response segments per concurrency slot (flow id).
        remaining: Vec<u32>,
        /// Transactions completed inside the window.
        completed_windowed: u64,
    },
    /// httperf open-loop client.
    Httperf {
        /// The open-loop generator.
        client: HttperfClient,
        /// Connection times (ms) established inside the window.
        conn_times_ms: Vec<f64>,
    },
    /// No external traffic.
    Idle,
}

impl ExtWl {
    /// Build the external-side state for a workload spec.
    pub fn for_spec(spec: &WorkloadSpec, tcp_window: u32, seed: u64) -> ExtWl {
        use es2_sim::SimDuration;
        use es2_workloads::{NetperfDirection, NetperfProto};
        match spec {
            WorkloadSpec::Netperf(np) => match (np.direction, np.proto) {
                (NetperfDirection::Send, NetperfProto::Tcp) => ExtWl::TcpSink {
                    flow: TcpFlow::new(tcp_window),
                    received_segs: 0,
                },
                (NetperfDirection::Send, NetperfProto::Udp) => ExtWl::UdpSink { received: 0 },
                (NetperfDirection::Receive, NetperfProto::Tcp) => ExtWl::TcpSource {
                    flow: TcpFlow::new(tcp_window),
                    cwnd: 64,
                    last_ack_at: es2_sim::SimTime::ZERO,
                    seg_bytes: np.payload_per_segment(),
                    send_armed: false,
                },
                (NetperfDirection::Receive, NetperfProto::Udp) => ExtWl::UdpSource {
                    msg_bytes: np.msg_bytes.min(es2_net::packet::MSS),
                    gap_ns: 1100,
                },
            },
            WorkloadSpec::Ping => ExtWl::Ping(PingProbe::new(SimDuration::from_secs(1))),
            WorkloadSpec::Memcached => ExtWl::Memaslap {
                client: MemaslapClient::paper_config(seed),
                ops_windowed: 0,
            },
            WorkloadSpec::Apache => {
                let client = AbClient::paper_config();
                let slots = client.concurrency() as usize;
                ExtWl::Ab {
                    client,
                    remaining: vec![0; slots],
                    completed_windowed: 0,
                }
            }
            WorkloadSpec::Httperf { rate } => ExtWl::Httperf {
                client: HttperfClient::new(*rate, seed),
                conn_times_ms: Vec::new(),
            },
            WorkloadSpec::Idle | WorkloadSpec::IdleQuiet => ExtWl::Idle,
        }
    }
}

/// Encode a memcached op into a packet `meta` tag.
pub fn encode_mc_op(op: McOp) -> u32 {
    match op {
        McOp::Get => 0,
        McOp::Set => 1,
    }
}

/// Decode a memcached op from a packet `meta` tag.
pub fn decode_mc_op(meta: u32) -> McOp {
    if meta == 0 {
        McOp::Get
    } else {
        McOp::Set
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use es2_workloads::NetperfSpec;

    #[test]
    fn guest_state_matches_spec() {
        let send = GuestWl::for_spec(
            &WorkloadSpec::Netperf(NetperfSpec::tcp_send(1024).with_threads(4)),
            64,
        );
        match send {
            GuestWl::NetperfSend { flows, .. } => assert_eq!(flows.len(), 4),
            other => panic!("{other:?}"),
        }
        assert!(matches!(
            GuestWl::for_spec(&WorkloadSpec::Memcached, 64),
            GuestWl::Server { .. }
        ));
        assert!(matches!(
            GuestWl::for_spec(&WorkloadSpec::Ping, 64),
            GuestWl::Passive
        ));
    }

    #[test]
    fn mc_op_encoding_round_trips() {
        assert_eq!(decode_mc_op(encode_mc_op(McOp::Get)), McOp::Get);
        assert_eq!(decode_mc_op(encode_mc_op(McOp::Set)), McOp::Set);
    }
}
