//! The event-path flight recorder.
//!
//! [`SpanTracker`] follows every traced request and interrupt through the
//! full virtual I/O event path by correlation ID: guest kick →
//! (exit-notify | polled pickup) → vhost service on the request side, and
//! MSI raise → redirection → delivery → injection → guest handler → EOI on
//! the interrupt side. Each transition records a *sim-time* stage duration
//! into the per-VM histograms of [`es2_metrics::SpanRecorder`], so traced
//! output is deterministic and bitwise-reproducible under any
//! `ES2_THREADS`.
//!
//! The tracker is strictly observational: it is only constructed when
//! `Params::trace` is set, all of its state lives outside the simulation
//! (the correlation-ID sidecars it uses — `Vcpu::corr`,
//! `VhostWorker::kick_corr` — stay zero when tracing is off), and it never
//! touches the RNG. Open spans live in small linear-scan vectors; the
//! population at any instant is bounded by in-flight interrupts, not by
//! run length.

use es2_metrics::span::{SpanEvent, SpanRecorder, SpanReport, Stage};
use es2_virtio::{HandlerId, VhostPool};

/// Synthetic Chrome-trace `tid` for vhost-worker turn slices, placed well
/// above any vCPU index.
const VHOST_TRACK: u32 = 1000;

/// Synthetic Chrome-trace `tid` for live-migration phase slices.
const MIG_TRACK: u32 = 2000;

/// How a handler kick was signalled — decides which pickup stage closes
/// the request span and which annotations it carries.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum KickOrigin {
    /// A plain guest kick (I/O-instruction exit or PI doorbell).
    Kick,
    /// A kick deferred by fault injection (`FaultPlan::kick_delay`).
    Delayed,
    /// A watchdog re-kick covering a dropped notification.
    Watchdog,
    /// An ES2 polling self-requeue: the next pickup is a polled one.
    Requeue,
}

/// Where an interrupt span is along the host→guest path.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Phase {
    /// Raised, not yet injected (may be parked on a descheduled vCPU).
    Pending,
    /// Guest handler running since `start`.
    Handler { start: u64 },
    /// Handler done; EOI sequence running since `start`.
    Eoi { start: u64 },
}

/// An open host→guest interrupt span.
#[derive(Clone, Copy, Debug)]
struct IrqSpan {
    corr: u64,
    vm: u32,
    /// Current target vCPU index (retargeted on parked-IRQ migration).
    vcpu: u32,
    vector: u8,
    raised_ns: u64,
    /// Set while the target vCPU is off-core with this span pending.
    parked_since: Option<u64>,
    /// Accumulated time the span spent waiting on a descheduled target.
    sched_delay_ns: u64,
    phase: Phase,
}

/// An open guest→host request span (a signalled kick awaiting pickup).
#[derive(Clone, Copy, Debug)]
struct ReqSpan {
    corr: u64,
    signal_ns: u64,
    /// True if pickup will be an ES2 polled one (self-requeue), not a
    /// wake-up from a notification.
    polled: bool,
}

/// Flight-recorder state machine; owned by `Machine` when tracing is on.
#[derive(Clone, Debug)]
pub(crate) struct SpanTracker {
    rec: SpanRecorder,
    irqs: Vec<IrqSpan>,
    reqs: Vec<ReqSpan>,
    /// Per-(VM, vhost worker) start of the handler turn currently
    /// executing on that worker, indexed by `vm * workers + w`.
    turn_start: Vec<Option<u64>>,
    /// Running guest handlers as `(vm, vcpu, corr)` — per-vCPU LIFO
    /// (handlers nest: an exit can inject a second vector while the
    /// first handler's segment sits on the resume stack). Untraced
    /// handlers (timer interrupts) push `corr = 0` so the pop at
    /// handler end always matches the handler that actually finished.
    handlers: Vec<(u32, u32, u64)>,
}

impl SpanTracker {
    pub(crate) fn new(num_vms: usize, workers: usize, event_capacity: usize) -> Self {
        SpanTracker {
            rec: SpanRecorder::new(num_vms, event_capacity),
            irqs: Vec::new(),
            reqs: Vec::new(),
            turn_start: vec![None; num_vms * workers.max(1)],
            handlers: Vec::new(),
        }
    }

    // ---------------- guest → host ----------------

    /// A kick signal for handler `h` on `worker`. Opens a request span
    /// (attaching a fresh correlation ID to the pending kick) unless one
    /// already rides there, in which case the signals coalesced and the
    /// first span is kept.
    pub(crate) fn on_kick_signal(
        &mut self,
        vm: u32,
        worker: &mut VhostPool,
        h: HandlerId,
        origin: KickOrigin,
        now_ns: u64,
    ) {
        if worker.kick_corr(h) != 0 {
            let notes = self.rec.notes_mut();
            notes.coalesced_kicks += 1;
            if origin == KickOrigin::Watchdog {
                notes.watchdog_rekicks += 1;
            }
            return;
        }
        let corr = self.rec.alloc_corr();
        worker.note_kick_corr(h, corr);
        self.reqs.push(ReqSpan {
            corr,
            signal_ns: now_ns,
            polled: origin == KickOrigin::Requeue,
        });
        let notes = self.rec.notes_mut();
        notes.reqs_opened += 1;
        match origin {
            KickOrigin::Delayed => notes.delayed_kicks += 1,
            KickOrigin::Watchdog => {
                notes.watchdog_rekicks += 1;
                self.rec.event(SpanEvent {
                    at_ns: now_ns,
                    vm,
                    track: VHOST_TRACK,
                    corr,
                    name: "wd-rekick",
                    dur_ns: 0,
                    arg: h.0 as u64,
                });
            }
            _ => {}
        }
    }

    /// The I/O-instruction exit that carried a kick finished; `cost_ns`
    /// is the root-mode time the notification cost the vCPU.
    pub(crate) fn on_kick_exit(&mut self, vm: u32, cost_ns: u64, windowed: bool) {
        if windowed {
            self.rec.record(vm, Stage::KickExit, cost_ns);
        }
    }

    /// A vhost handler turn begins on the worker whose turn slot is
    /// `slot` (`vm * workers + w`). `corr` is the ID taken off the
    /// pending kick (0 = turn not owed to a traced signal). Closes the
    /// signal→pickup stage and opens the service-time slot.
    pub(crate) fn on_turn_begin(&mut self, vm: u32, slot: usize, corr: u64, now_ns: u64, windowed: bool) {
        if corr != 0 {
            if let Some(i) = self.reqs.iter().position(|r| r.corr == corr) {
                let r = self.reqs.swap_remove(i);
                let stage = if r.polled {
                    Stage::PolledPickup
                } else {
                    Stage::ExitNotify
                };
                if windowed {
                    self.rec.record(vm, stage, now_ns.saturating_sub(r.signal_ns));
                }
                self.rec.notes_mut().reqs_closed += 1;
            }
        }
        self.turn_start[slot] = Some(now_ns);
    }

    /// The vhost handler turn in `slot` ended (handler went back to the
    /// work list or the worker went idle).
    pub(crate) fn on_turn_end(&mut self, vm: u32, slot: usize, now_ns: u64, windowed: bool) {
        if let Some(start) = self.turn_start[slot].take() {
            if windowed {
                self.rec.record(vm, Stage::VhostService, now_ns - start);
            }
            self.rec.event(SpanEvent {
                at_ns: start,
                vm,
                track: VHOST_TRACK,
                corr: 0,
                name: "vhost-turn",
                dur_ns: now_ns - start,
                arg: 0,
            });
        }
    }

    // ---------------- host → guest ----------------

    /// An MSI was raised towards `(vm, vcpu)` and a fresh correlation ID
    /// is needed (the caller checked `Vcpu::corr` found no pending span
    /// for the vector). Returns the ID to stash in the vector sidecar.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn on_msi_raised(
        &mut self,
        vm: u32,
        vcpu: u32,
        vector: u8,
        redirected: bool,
        target_running: bool,
        watchdog: bool,
        off_core_ns: u64,
        now_ns: u64,
    ) -> u64 {
        let corr = self.rec.alloc_corr();
        self.irqs.push(IrqSpan {
            corr,
            vm,
            vcpu,
            vector,
            raised_ns: now_ns,
            parked_since: if target_running { None } else { Some(now_ns) },
            sched_delay_ns: 0,
            phase: Phase::Pending,
        });
        {
            let notes = self.rec.notes_mut();
            notes.irqs_opened += 1;
            if redirected {
                notes.redirected += 1;
            }
            if watchdog {
                notes.watchdog_reraises += 1;
            }
            if !target_running {
                notes.parked += 1;
            }
        }
        if watchdog {
            self.rec.event(SpanEvent {
                at_ns: now_ns,
                vm,
                track: vcpu,
                corr,
                name: "wd-reraise",
                dur_ns: 0,
                arg: vector as u64,
            });
        }
        if !target_running {
            self.rec.event(SpanEvent {
                at_ns: now_ns,
                vm,
                track: vcpu,
                corr,
                name: "msi-parked",
                dur_ns: 0,
                arg: off_core_ns,
            });
        }
        corr
    }

    /// An MSI raise found a span already pending on the same vector
    /// (IRR coalescing): the first raise keeps the span.
    pub(crate) fn on_msi_coalesced(&mut self, watchdog: bool) {
        let notes = self.rec.notes_mut();
        notes.coalesced_irqs += 1;
        if watchdog {
            notes.watchdog_reraises += 1;
        }
    }

    /// vCPU `(vm, vcpu)` left its core: park every pending span aimed at
    /// it so the time until it runs again is attributed to scheduling.
    pub(crate) fn on_vcpu_sched_out(&mut self, vm: u32, vcpu: u32, now_ns: u64) {
        for s in self.irqs.iter_mut() {
            if s.vm == vm && s.vcpu == vcpu && s.phase == Phase::Pending && s.parked_since.is_none()
            {
                s.parked_since = Some(now_ns);
            }
        }
    }

    /// vCPU `(vm, vcpu)` got a core back: fold the parked interval of
    /// every pending span into its scheduling-delay ledger.
    pub(crate) fn on_vcpu_sched_in(&mut self, vm: u32, vcpu: u32, now_ns: u64) {
        for s in self.irqs.iter_mut() {
            if s.vm == vm && s.vcpu == vcpu && s.phase == Phase::Pending {
                if let Some(t0) = s.parked_since.take() {
                    s.sched_delay_ns += now_ns - t0;
                }
            }
        }
    }

    /// A parked interrupt was migrated (ES2 parked-IRQ pull) to
    /// `to_vcpu`, which is being scheduled in right now — close the
    /// parked interval and retarget the span.
    pub(crate) fn on_migrated(&mut self, corr: u64, to_vcpu: u32, now_ns: u64) {
        if let Some(s) = self.irqs.iter_mut().find(|s| s.corr == corr) {
            if let Some(t0) = s.parked_since.take() {
                s.sched_delay_ns += now_ns - t0;
            }
            s.vcpu = to_vcpu;
            self.rec.notes_mut().migrated += 1;
        }
    }

    /// A guest interrupt handler begins on `(vm, vcpu)`. `corr` is the ID
    /// taken off the vector sidecar (0 for untraced vectors — the local
    /// timer). A traced span records its delivery stages and flips to the
    /// handler phase; every handler, traced or not, enters the nesting
    /// ledger so handler ends pair up correctly.
    pub(crate) fn on_irq_begin(&mut self, vm: u32, vcpu: u32, corr: u64, now_ns: u64, windowed: bool) {
        self.handlers.push((vm, vcpu, corr));
        if corr == 0 {
            return;
        }
        let Some(s) = self.irqs.iter_mut().find(|s| s.corr == corr) else {
            return;
        };
        if let Some(t0) = s.parked_since.take() {
            s.sched_delay_ns += now_ns - t0;
        }
        s.vcpu = vcpu;
        let delivery = now_ns.saturating_sub(s.raised_ns);
        let sched = s.sched_delay_ns.min(delivery);
        if windowed {
            self.rec.record(vm, Stage::Delivery, delivery);
            self.rec.record(vm, Stage::SchedDelay, sched);
            self.rec.record(vm, Stage::Injection, delivery - sched);
        }
        s.phase = Phase::Handler { start: now_ns };
    }

    /// The innermost guest handler on `(vm, vcpu)` finished; the EOI
    /// sequence starts now. Pops the vCPU's newest ledger entry — which
    /// is the handler that actually ended, even when a traced handler has
    /// an untraced timer handler nested on top of it.
    pub(crate) fn on_handler_end(&mut self, vm: u32, vcpu: u32, now_ns: u64, windowed: bool) {
        let Some(i) = self
            .handlers
            .iter()
            .rposition(|&(v, c, _)| v == vm && c == vcpu)
        else {
            return;
        };
        let (_, _, corr) = self.handlers.remove(i);
        if corr == 0 {
            return;
        }
        if let Some(s) = self.irqs.iter_mut().find(|s| s.corr == corr) {
            if let Phase::Handler { start } = s.phase {
                if windowed {
                    self.rec.record(vm, Stage::Handler, now_ns - start);
                }
                s.phase = Phase::Eoi { start: now_ns };
            }
        }
    }

    /// EOI completed on `(vm, vcpu)` (immediately for virtual-APIC EOI,
    /// after the ApicAccess exit for emulated EOI). Closes the span.
    pub(crate) fn on_eoi_done(&mut self, vm: u32, vcpu: u32, now_ns: u64, windowed: bool) {
        if let Some(i) = self
            .irqs
            .iter()
            .position(|s| s.vm == vm && s.vcpu == vcpu && matches!(s.phase, Phase::Eoi { .. }))
        {
            let s = self.irqs.swap_remove(i);
            let Phase::Eoi { start } = s.phase else {
                unreachable!()
            };
            if windowed {
                self.rec.record(vm, Stage::Eoi, now_ns - start);
            }
            self.rec.notes_mut().irqs_closed += 1;
            self.rec.event(SpanEvent {
                at_ns: s.raised_ns,
                vm,
                track: s.vcpu,
                corr: s.corr,
                name: "irq",
                dur_ns: now_ns - s.raised_ns,
                arg: s.vector as u64,
            });
        }
    }

    /// Posted delivery degraded to the emulated path (fault injection).
    pub(crate) fn on_degraded(&mut self, vm: u32, vcpu: u32, now_ns: u64) {
        self.rec.notes_mut().degradations += 1;
        self.rec.event(SpanEvent {
            at_ns: now_ns,
            vm,
            track: vcpu,
            corr: 0,
            name: "pi-degrade",
            dur_ns: 0,
            arg: 0,
        });
    }

    /// A live-migration phase slice for `vm` ("mig-pause", "mig-copy",
    /// "mig-resume", "mig-retarget", "mig-abort"). Rendered on its own
    /// track so `repro --trace` attributes the blackout window per phase;
    /// `arg` carries the phase's context (dirty units, blackout ns,
    /// vector). Purely observational — callers gate on `spans.is_some()`
    /// so traced and untraced runs stay byte-identical.
    pub(crate) fn migration_phase(
        &mut self,
        vm: u32,
        name: &'static str,
        at_ns: u64,
        dur_ns: u64,
        arg: u64,
    ) {
        self.rec.event(SpanEvent {
            at_ns,
            vm,
            track: MIG_TRACK,
            corr: 0,
            name,
            dur_ns,
            arg,
        });
    }

    /// Seal the recorder: spans still open at end-of-run are counted
    /// (they are expected — the run stops mid-traffic) and the report is
    /// extracted.
    pub(crate) fn finish(mut self) -> SpanReport {
        let notes = self.rec.notes_mut();
        notes.unclosed_irqs = self.irqs.len() as u64;
        notes.unclosed_reqs = self.reqs.len() as u64;
        self.rec.into_report()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use es2_metrics::span::Stage;
    use es2_virtio::ShardPolicy;

    #[test]
    fn request_span_closes_on_pickup_with_the_right_stage() {
        let mut tr = SpanTracker::new(1, 1, 0);
        let mut w = VhostPool::new(1, ShardPolicy::Mux);
        let (h, _rx) = w.register_pair(0, 0, 0);

        tr.on_kick_signal(0, &mut w, h, KickOrigin::Kick, 100);
        // Coalesced second signal keeps the first span.
        tr.on_kick_signal(0, &mut w, h, KickOrigin::Kick, 150);
        let corr = w.take_kick_corr(h);
        assert_eq!(corr, 1);
        tr.on_turn_begin(0, 0, corr, 400, true);
        tr.on_turn_end(0, 0, 900, true);

        let rep = tr.finish();
        assert_eq!(rep.stage(0, Stage::ExitNotify).count(), 1);
        assert_eq!(rep.stage(0, Stage::ExitNotify).max(), 300);
        assert_eq!(rep.stage(0, Stage::PolledPickup).count(), 0);
        assert_eq!(rep.stage(0, Stage::VhostService).count(), 1);
        assert_eq!(rep.notes.coalesced_kicks, 1);
        assert_eq!(rep.notes.reqs_opened, 1);
        assert_eq!(rep.notes.reqs_closed, 1);
        assert_eq!(rep.notes.unclosed_reqs, 0);
    }

    #[test]
    fn polled_requeue_records_polled_pickup() {
        let mut tr = SpanTracker::new(1, 1, 0);
        let mut w = VhostPool::new(1, ShardPolicy::Mux);
        let (h, _rx) = w.register_pair(0, 0, 0);
        tr.on_kick_signal(0, &mut w, h, KickOrigin::Requeue, 0);
        let corr = w.take_kick_corr(h);
        tr.on_turn_begin(0, 0, corr, 50, true);
        let rep = tr.finish();
        assert_eq!(rep.stage(0, Stage::PolledPickup).count(), 1);
        assert_eq!(rep.stage(0, Stage::ExitNotify).count(), 0);
    }

    #[test]
    fn irq_span_attributes_parked_time_to_sched_delay() {
        let mut tr = SpanTracker::new(1, 1, 0);
        // Raise at t=1000 towards a descheduled vCPU 0.
        let corr = tr.on_msi_raised(0, 0, 0x41, false, false, false, 0, 1000);
        // vCPU runs again at t=5000; injection at t=5200.
        tr.on_vcpu_sched_in(0, 0, 5000);
        tr.on_irq_begin(0, 0, corr, 5200, true);
        tr.on_handler_end(0, 0, 7200, true);
        tr.on_eoi_done(0, 0, 7300, true);

        let rep = tr.finish();
        assert_eq!(rep.stage(0, Stage::Delivery).max(), 4200);
        assert_eq!(rep.stage(0, Stage::SchedDelay).max(), 4000);
        assert_eq!(rep.stage(0, Stage::Injection).max(), 200);
        assert_eq!(rep.stage(0, Stage::Handler).max(), 2000);
        assert_eq!(rep.stage(0, Stage::Eoi).max(), 100);
        assert_eq!(rep.notes.parked, 1);
        assert_eq!(rep.notes.irqs_closed, 1);
        assert_eq!(rep.notes.unclosed_irqs, 0);
    }

    #[test]
    fn sched_out_then_in_accumulates_delay_for_running_target() {
        let mut tr = SpanTracker::new(1, 1, 0);
        // Target is running at raise time...
        let corr = tr.on_msi_raised(0, 2, 0x42, true, true, false, 0, 0);
        // ...but gets preempted before injection.
        tr.on_vcpu_sched_out(0, 2, 100);
        tr.on_vcpu_sched_in(0, 2, 600);
        tr.on_irq_begin(0, 2, corr, 700, true);
        tr.on_eoi_done(0, 2, 800, true); // no handler-phase close: ignored
        let rep = tr.finish();
        assert_eq!(rep.stage(0, Stage::SchedDelay).max(), 500);
        assert_eq!(rep.notes.redirected, 1);
        // Span still open in handler phase (EOI close had no Eoi-phase span).
        assert_eq!(rep.notes.unclosed_irqs, 1);
    }

    #[test]
    fn migration_retargets_and_closes_parked_interval() {
        let mut tr = SpanTracker::new(1, 1, 0);
        let corr = tr.on_msi_raised(0, 0, 0x41, false, false, false, 0, 0);
        tr.on_migrated(corr, 3, 2500);
        tr.on_irq_begin(0, 3, corr, 2600, true);
        tr.on_handler_end(0, 3, 2700, true);
        tr.on_eoi_done(0, 3, 2750, true);
        let rep = tr.finish();
        assert_eq!(rep.notes.migrated, 1);
        assert_eq!(rep.stage(0, Stage::SchedDelay).max(), 2500);
        assert_eq!(rep.stage(0, Stage::Injection).max(), 100);
    }

    #[test]
    fn coalesced_raise_and_watchdog_notes() {
        let mut tr = SpanTracker::new(1, 1, 0);
        let _ = tr.on_msi_raised(0, 0, 0x41, false, true, true, 0, 0);
        tr.on_msi_coalesced(true);
        let rep = tr.finish();
        assert_eq!(rep.notes.watchdog_reraises, 2);
        assert_eq!(rep.notes.coalesced_irqs, 1);
        assert_eq!(rep.notes.irqs_opened, 1);
    }

    #[test]
    fn nested_timer_handler_does_not_close_the_device_span() {
        let mut tr = SpanTracker::new(1, 1, 0);
        let corr = tr.on_msi_raised(0, 0, 0x42, false, true, false, 0, 0);
        tr.on_irq_begin(0, 0, corr, 100, true); // device handler starts
        tr.on_irq_begin(0, 0, 0, 200, true); // timer nests on top
        tr.on_handler_end(0, 0, 300, true); // timer ends: device span untouched
        tr.on_eoi_done(0, 0, 310, true); // timer EOI: no Eoi-phase span
        tr.on_handler_end(0, 0, 500, true); // device handler ends
        tr.on_eoi_done(0, 0, 520, true);
        let rep = tr.finish();
        assert_eq!(rep.stage(0, Stage::Handler).count(), 1);
        assert_eq!(rep.stage(0, Stage::Handler).max(), 400);
        assert_eq!(rep.stage(0, Stage::Eoi).max(), 20);
        assert_eq!(rep.notes.irqs_closed, 1);
        assert_eq!(rep.notes.unclosed_irqs, 0);
    }

    #[test]
    fn out_of_window_samples_are_not_recorded() {
        let mut tr = SpanTracker::new(1, 1, 0);
        let corr = tr.on_msi_raised(0, 0, 0x41, false, true, false, 0, 0);
        tr.on_irq_begin(0, 0, corr, 100, false);
        tr.on_handler_end(0, 0, 200, false);
        tr.on_eoi_done(0, 0, 250, false);
        let rep = tr.finish();
        assert_eq!(rep.stage(0, Stage::Delivery).count(), 0);
        assert_eq!(rep.stage(0, Stage::Handler).count(), 0);
        // Lifecycle accounting is unwindowed.
        assert_eq!(rep.notes.irqs_opened, 1);
        assert_eq!(rep.notes.irqs_closed, 1);
    }
}
