//! Guest-side execution: application steps, interrupt handlers, the
//! NAPI receive path, and the TX kick sequence.
//!
//! The guest model reflects the §VI experimental setup: the benchmark
//! application (netperf / memcached / apache) shares the guest with a
//! lowest-priority CPU-burn script, so a vCPU always has *something* to run
//! — I/O work preempts the burner instantly, and the burner guarantees the
//! vCPU thread never HLTs (exactly why the paper runs those scripts).

use es2_hypervisor::{ExitReason, InterruptPath};
use es2_net::{FaultedArrival, FlowId, Packet, PacketKind};
use es2_sim::SimDuration;
use es2_virtio::KickDecision;
use es2_workloads::{NetperfDirection, NetperfProto};

use crate::machine::{AfterExit, AppStep, IrqKind, Machine, SegKind};
use crate::workload::{AppRequest, GuestWl, ServerOp};

/// Packet `meta` tags for request kinds.
pub(crate) const META_MC_GET: u32 = 0;
pub(crate) const META_MC_SET: u32 = 1;
pub(crate) const META_HTTP_GET: u32 = 2;
pub(crate) const META_HTTP_GET_SMALL: u32 = 3;

impl Machine {
    /// Emit one TX packet on pair `qi` of the configured device.
    /// Paravirtual: expose on that TX virtqueue and report whether a kick
    /// is due. Assigned VF: the guest writes the VF ring and rings its
    /// doorbell — untrapped MMIO, the frame goes straight to the wire,
    /// never a kick (the §VII property: SR-IOV already avoids I/O-request
    /// exits).
    fn guest_tx_emit(&mut self, vm: u32, qi: usize, pkt: Packet) -> Result<bool, ()> {
        let vmi = vm as usize;
        if self.p.device == crate::params::DeviceKind::AssignedVf {
            let at = self.now + self.p.sriov_dma;
            let fault = self.faults.on_packet();
            match self.link_to_ext.transmit_faulted(at, pkt.bytes, fault) {
                FaultedArrival::Dropped => {}
                FaultedArrival::One(arrival) => {
                    self.q
                        .push(arrival, crate::machine::Ev::ArriveAtExt { vm, pkt });
                }
                FaultedArrival::Two(first, second) => {
                    self.q
                        .push(first, crate::machine::Ev::ArriveAtExt { vm, pkt });
                    self.q
                        .push(second, crate::machine::Ev::ArriveAtExt { vm, pkt });
                }
            }
            return Ok(false);
        }
        match self.vms[vmi].pairs[qi].tx.driver_add(pkt) {
            Ok(KickDecision::Kick) => Ok(true),
            Ok(KickDecision::NoKick) => Ok(false),
            Err(_) => Err(()),
        }
    }

    // -----------------------------------------------------------------
    // Work selection
    // -----------------------------------------------------------------

    /// Pick the next guest-mode segment for a vCPU: application work if
    /// any is runnable, otherwise the burn script.
    pub(crate) fn start_vcpu_work(&mut self, vm: u32, idx: u32) {
        let tid = self.vms[vm as usize].vcpu_tids[idx as usize];
        debug_assert!(self.vms[vm as usize].vcpus[idx as usize].in_guest);
        if let Some((step, dur)) = self.select_app_step(vm, idx) {
            self.start_segment(tid, SegKind::App(step), dur);
        } else if self.vms[vm as usize].guest_idles
            && !self.vms[vm as usize].vcpus[idx as usize].has_deliverable()
        {
            // Guest idle loop: HLT. The exit hands the core back to the
            // host scheduler; delivery of the next interrupt (or queued
            // application work) wakes the thread.
            self.do_vm_exit(vm, idx, ExitReason::Hlt);
            let sw = self.sched.block(tid, self.now);
            self.apply_switch(sw);
        } else {
            self.start_segment(tid, SegKind::Burn, self.p.burn_slice);
        }
    }

    /// Try to find runnable application work for this vCPU.
    fn select_app_step(&mut self, vm: u32, idx: u32) -> Option<(AppStep, SimDuration)> {
        let vmi = vm as usize;
        // The vCPU's transmit path uses its own pair of the multi-queue
        // device (pair 0 on a single-queue device).
        let qi = self.vms[vmi].tx_pair_for_vcpu(idx);
        // Free TX descriptors including reclaimable used entries (the
        // driver frees completions in its xmit path).
        let tx_room = if self.p.device == crate::params::DeviceKind::AssignedVf {
            u32::MAX
        } else {
            self.vms[vmi].pairs[qi].tx.num_free() as u32
                + self.vms[vmi].pairs[qi].tx.used_pending() as u32
        };
        match &mut self.vms[vmi].wl {
            GuestWl::NetperfSend { spec, flows, .. } => {
                // netperf thread i is pinned to vCPU i.
                if idx >= spec.threads {
                    return None;
                }
                let f = idx as usize;
                let segs = spec.segments_per_msg();
                let payload = spec.payload_per_segment();
                let msg_bytes = spec.msg_bytes;
                let tcp = spec.proto == NetperfProto::Tcp;
                let window = flows[f].window();
                let inflight = flows[f].inflight();
                if tcp && inflight + segs > window {
                    return None; // stalled on ACKs; burn until NAPI opens it
                }
                // Softirq/socket batching: occasionally a step produces a
                // burst of messages exposed as one batch.
                let mut count = if self.p.burst_denom > 1
                    && self.rng.gen_range(self.p.burst_denom as u64) == 0
                {
                    self.p.burst_min + self.rng.gen_range(self.p.burst_span as u64 + 1) as u32
                } else {
                    1
                };
                if tcp {
                    let room = (window - inflight) / segs;
                    count = count.min(room.max(1));
                }
                if tx_room < segs * count {
                    count = tx_room / segs;
                    if count == 0 {
                        self.block_on_tx_full(vm, qi);
                        return None;
                    }
                }
                let step = if tcp {
                    AppStep::TcpMsg {
                        flow: idx,
                        segs,
                        payload,
                        count,
                    }
                } else {
                    AppStep::UdpMsg {
                        segs,
                        payload,
                        count,
                    }
                };
                let mut dur = self.p.guest_tx_cost(tcp, msg_bytes, segs) * count as u64;
                dur += self.take_cache_penalty(vm, idx);
                Some((step, self.jitter(dur)))
            }
            GuestWl::Server { pending, .. } => {
                let req = pending.pop_front()?;
                let (segs, dur) = match req.op {
                    ServerOp::McGet => (1, self.p.serve_mc),
                    ServerOp::McSet => (1, self.p.serve_mc),
                    ServerOp::HttpGet => (6, self.p.serve_http_page),
                    ServerOp::HttpGetSmall => (1, self.p.serve_http_small),
                };
                if tx_room < segs {
                    // Put it back and wait for TX completions.
                    if let GuestWl::Server { pending, .. } = &mut self.vms[vmi].wl {
                        pending.push_front(req);
                    }
                    self.block_on_tx_full(vm, qi);
                    return None;
                }
                let dur = dur + self.take_cache_penalty(vm, idx);
                Some((AppStep::Serve { req }, self.jitter(dur)))
            }
            GuestWl::NetperfRecv { .. } | GuestWl::Passive => None,
        }
    }

    /// Consume the cache-cold flag left by the last VM exit: the first
    /// application step after re-entry pays the refill penalty.
    fn take_cache_penalty(&mut self, vm: u32, idx: u32) -> SimDuration {
        let ctx = &mut self.vms[vm as usize].vctx[idx as usize];
        if ctx.cache_cold {
            ctx.cache_cold = false;
            self.p.exit_cache_penalty
        } else {
            SimDuration::ZERO
        }
    }

    /// Per-packet NAPI cost, size-scaled by the oldest pending frame on
    /// pair `qi`.
    fn guest_rx_pkt_cost(&self, vm: u32, qi: usize) -> SimDuration {
        let bytes = self.vms[vm as usize].pairs[qi]
            .rx
            .peek_used()
            .map(|p| p.bytes)
            .unwrap_or(0);
        self.p.guest_rx_cost(bytes)
    }

    /// ±15 % uniform jitter on guest path lengths — real guest code paths
    /// vary with cache state, softirq interference and syscall batching,
    /// and this variability is what lets a draining vhost handler
    /// occasionally catch the queue empty (the Fig. 4 quota sensitivity).
    fn jitter(&mut self, dur: SimDuration) -> SimDuration {
        let ns = dur.as_nanos();
        let scaled = ns * (85 + self.rng.gen_range(31)) / 100;
        SimDuration::from_nanos(scaled)
    }

    /// Pair `qi`'s TX ring is full: arm TX-completion interrupts so the
    /// driver is woken when vhost returns descriptors (virtio-net's
    /// stop-queue path). Only this queue stops; siblings keep sending.
    fn block_on_tx_full(&mut self, vm: u32, qi: usize) {
        let vmi = vm as usize;
        if self.vms[vmi].pairs[qi].blocked_tx_full {
            return;
        }
        self.vms[vmi].pairs[qi].blocked_tx_full = true;
        if self.vms[vmi].pairs[qi].tx.driver_enable_interrupts() {
            // Completions already arrived: reclaim immediately, no
            // interrupt needed.
            while self.vms[vmi].pairs[qi].tx.driver_take_used().is_some() {}
            self.vms[vmi].pairs[qi].tx.driver_disable_interrupts();
            self.vms[vmi].pairs[qi].blocked_tx_full = false;
        }
    }

    /// Application work became runnable (ACKs arrived, requests queued):
    /// preempt any vCPU of this VM that is burning so it picks the work up
    /// immediately (the benchmark process outranks the nice-19 burner).
    pub(crate) fn guest_app_wakeup(&mut self, vm: u32) {
        for idx in 0..self.vms[vm as usize].vcpu_tids.len() {
            let tid = self.vms[vm as usize].vcpu_tids[idx];
            let burning = matches!(
                self.threads[tid.idx()].seg,
                Some(crate::machine::Segment {
                    kind: SegKind::Burn,
                    ..
                })
            );
            if burning && self.sched.is_running(tid) && self.vms[vm as usize].vcpus[idx].in_guest {
                self.save_active(tid);
                self.clear_seg(tid);
                self.start_vcpu_work(vm, idx as u32);
            } else if self.vms[vm as usize].guest_idles {
                // Wake a halted sibling for the queued work (guest
                // reschedule IPI); no-op if it is merely preempted.
                self.wake_thread(tid);
            }
        }
    }

    // -----------------------------------------------------------------
    // Application-step completion
    // -----------------------------------------------------------------

    pub(crate) fn complete_app(&mut self, vm: u32, idx: u32, step: AppStep) {
        let vmi = vm as usize;
        let qi = self.vms[vmi].tx_pair_for_vcpu(idx);
        // Free completed TX descriptors first (free-at-xmit).
        while self.vms[vmi].pairs[qi].tx.driver_take_used().is_some() {}
        let mut need_kick = false;
        match step {
            AppStep::TcpMsg {
                flow,
                segs,
                payload,
                count,
            } => {
                'outer: for _ in 0..count {
                    for _ in 0..segs {
                        if let GuestWl::NetperfSend { flows, .. } = &mut self.vms[vmi].wl {
                            flows[flow as usize].on_segment_sent();
                        }
                        let pkt = self
                            .pf
                            .make(FlowId(flow), PacketKind::Data, payload, self.now);
                        match self.guest_tx_emit(vm, qi, pkt) {
                            Ok(kick) => need_kick |= kick,
                            Err(()) => {
                                self.block_on_tx_full(vm, qi);
                                break 'outer;
                            }
                        }
                    }
                    if self.window_open {
                        if let GuestWl::NetperfSend { sent_msgs, .. } = &mut self.vms[vmi].wl {
                            *sent_msgs += 1;
                        }
                    }
                }
            }
            AppStep::UdpMsg {
                segs,
                payload,
                count,
            } => {
                'outer: for _ in 0..count {
                    for _ in 0..segs {
                        let pkt = self.pf.make(FlowId(0), PacketKind::Data, payload, self.now);
                        match self.guest_tx_emit(vm, qi, pkt) {
                            Ok(kick) => need_kick |= kick,
                            Err(()) => {
                                self.block_on_tx_full(vm, qi);
                                break 'outer;
                            }
                        }
                    }
                    if self.window_open {
                        if let GuestWl::NetperfSend { sent_msgs, .. } = &mut self.vms[vmi].wl {
                            *sent_msgs += 1;
                        }
                    }
                }
            }
            AppStep::Serve { req } => {
                need_kick = self.enqueue_response(vm, qi, req);
                if self.window_open {
                    if let GuestWl::Server { served, .. } = &mut self.vms[vmi].wl {
                        *served += 1;
                    }
                }
            }
        }
        if need_kick {
            let h = self.vms[vmi].pairs[qi].tx_h;
            self.begin_kick_exit(vm, idx, h);
        } else {
            self.start_vcpu_work(vm, idx);
        }
    }

    /// Build and enqueue the response packets for a served request on
    /// pair `qi`. Returns whether a kick is needed.
    fn enqueue_response(&mut self, vm: u32, qi: usize, req: AppRequest) -> bool {
        let (count, bytes) = match req.op {
            ServerOp::McGet => (
                1,
                es2_workloads::memaslap::KEY_BYTES + es2_workloads::memaslap::VALUE_BYTES + 32,
            ),
            ServerOp::McSet => (1, 8),
            ServerOp::HttpGet => (6, 1365),
            ServerOp::HttpGetSmall => (1, 1024),
        };
        let mut kick = false;
        for _ in 0..count {
            let pkt = self.pf.make_meta(
                FlowId(req.flow),
                PacketKind::Response,
                bytes,
                self.now,
                req.meta,
            );
            match self.guest_tx_emit(vm, qi, pkt) {
                Ok(k) => kick |= k,
                Err(()) => {
                    self.block_on_tx_full(vm, qi);
                    break;
                }
            }
        }
        kick
    }

    // -----------------------------------------------------------------
    // Interrupt handlers
    // -----------------------------------------------------------------

    /// Start the guest handler for `vector` on a vCPU in guest mode.
    pub(crate) fn begin_irq(&mut self, vm: u32, idx: u32, vector: u8) {
        let vmi = vm as usize;
        if self.spans.is_some() {
            // Injection point: a traced span (timer vectors never carry
            // one) closes its delivery stages here; every handler enters
            // the tracker's nesting ledger either way.
            let corr = self.vms[vmi].vcpus[idx as usize].corr.take(vector);
            let w = self.window_open;
            if let Some(tr) = self.spans.as_deref_mut() {
                tr.on_irq_begin(vm, idx, corr, self.now.as_nanos(), w);
            }
        }
        let tid = self.vms[vmi].vcpu_tids[idx as usize];
        if self.vms[vmi].vector_pair(vector).is_some() {
            // Steering ledger: which vCPU ended up handling each device
            // interrupt (observational; timer vectors excluded).
            self.vms[vmi].device_irqs_per_vcpu[idx as usize] += 1;
        }
        let (kind, dur) = match self.vms[vmi].vector_pair(vector) {
            Some((qi, false)) => {
                // NAPI: mask further RX interrupts on this pair, poll a
                // batch.
                self.vms[vmi].pairs[qi].rx.driver_disable_interrupts();
                let batch =
                    (self.vms[vmi].pairs[qi].rx.used_pending() as u32).min(self.p.napi_weight);
                let per_pkt = self.guest_rx_pkt_cost(vm, qi);
                (
                    IrqKind::Rx { vector, batch },
                    self.p.guest_irq_entry + per_pkt * batch as u64,
                )
            }
            Some((_, true)) => (
                IrqKind::TxClean { vector },
                self.p.guest_irq_entry + self.p.guest_txclean,
            ),
            None => (
                IrqKind::Timer,
                self.p.guest_irq_entry + self.p.guest_timer_work,
            ),
        };
        self.start_segment(tid, SegKind::Irq(kind), dur);
    }

    pub(crate) fn complete_irq(&mut self, vm: u32, idx: u32, kind: IrqKind) {
        let vmi = vm as usize;
        match kind {
            IrqKind::Rx { vector, batch } => {
                let qi = match self.vms[vmi].vector_pair(vector) {
                    Some((qi, _)) => qi,
                    None => 0,
                };
                // Consume the polled batch: reclaim buffers, refill the
                // ring, apply per-packet protocol effects.
                for _ in 0..batch {
                    let Some(pkt) = self.vms[vmi].pairs[qi].rx.driver_take_used() else {
                        break;
                    };
                    // Refill with a fresh buffer.
                    let placeholder = self.pf.make(FlowId(vm), PacketKind::Data, 0, self.now);
                    if let Ok(KickDecision::Kick) =
                        self.vms[vmi].pairs[qi].rx.driver_add(placeholder)
                    {
                        // RX refill kick (only armed when vhost starved).
                        let h = self.vms[vmi].pairs[qi].rx_h;
                        let pk = &mut self.vms[vmi].vctx[idx as usize].pending_kicks;
                        if !pk.contains(&h) {
                            pk.push(h);
                        }
                    }
                    self.guest_rx_effect(vm, idx, pkt);
                }
                // More packets arrived during the poll: another batch
                // before re-enabling interrupts (the NAPI loop).
                let remaining = self.vms[vmi].pairs[qi].rx.used_pending() as u32;
                if remaining > 0 {
                    let tid = self.vms[vmi].vcpu_tids[idx as usize];
                    let batch = remaining.min(self.p.napi_weight);
                    let per_pkt = self.guest_rx_pkt_cost(vm, qi);
                    self.start_segment(
                        tid,
                        SegKind::Irq(IrqKind::Rx { vector, batch }),
                        per_pkt * batch as u64,
                    );
                    return;
                }
                // NAPI complete: re-arm RX interrupts. A completion that
                // raced in during this final pass means the interrupt edge
                // was suppressed: re-poll instead of sleeping on it.
                if self.vms[vmi].pairs[qi].rx.driver_enable_interrupts() {
                    self.vms[vmi].pairs[qi].rx.driver_disable_interrupts();
                    let tid = self.vms[vmi].vcpu_tids[idx as usize];
                    let batch =
                        (self.vms[vmi].pairs[qi].rx.used_pending() as u32).min(self.p.napi_weight);
                    let per_pkt = self.guest_rx_pkt_cost(vm, qi);
                    self.start_segment(
                        tid,
                        SegKind::Irq(IrqKind::Rx { vector, batch }),
                        per_pkt * batch as u64,
                    );
                    return;
                }
                self.eoi_sequence(vm, idx);
            }
            IrqKind::TxClean { vector } => {
                let qi = match self.vms[vmi].vector_pair(vector) {
                    Some((qi, _)) => qi,
                    None => 0,
                };
                while self.vms[vmi].pairs[qi].tx.driver_take_used().is_some() {}
                self.vms[vmi].pairs[qi].tx.driver_disable_interrupts();
                self.vms[vmi].pairs[qi].blocked_tx_full = false;
                self.guest_app_wakeup(vm);
                self.eoi_sequence(vm, idx);
            }
            IrqKind::Timer => {
                self.eoi_sequence(vm, idx);
            }
        }
    }

    /// The guest handler writes EOI: an `APIC Access` exit on the emulated
    /// path, exit-less on the vAPIC. Keyed off the vCPU's *current* path —
    /// after a mid-run posted→emulated degradation the very same handler
    /// completes through the emulated EOI machinery.
    fn eoi_sequence(&mut self, vm: u32, idx: u32) {
        if let Some(tr) = self.spans.as_deref_mut() {
            tr.on_handler_end(vm, idx, self.now.as_nanos(), self.window_open);
        }
        // Hostile-guest hook: the plan's target VM may follow the real EOI
        // with a burst of spurious EOI writes. The vAPIC absorbs them
        // exit-free; on the emulated path each write is one more
        // APIC-access exit, drained after the real EOI exit completes.
        // Well-behaved VMs take the zero fast path with zero RNG draws.
        let storm = self.faults.on_hostile_eoi(vm);
        if storm > 0 {
            self.vms[vm as usize].bp.spurious_eois += storm as u64;
            if self.vms[vm as usize].vcpus[idx as usize].path != InterruptPath::Posted {
                self.vms[vm as usize].vctx[idx as usize].pending_spurious_eois += storm;
            }
        }
        if self.vms[vm as usize].vcpus[idx as usize].path == InterruptPath::Posted {
            let next = {
                let vcpu = &mut self.vms[vm as usize].vcpus[idx as usize];
                vcpu.eoi();
                vcpu.take_posted_interrupt()
            };
            // Virtual-APIC EOI is exit-less and instantaneous in the
            // model: the span closes with a zero-length EOI stage.
            if let Some(tr) = self.spans.as_deref_mut() {
                tr.on_eoi_done(vm, idx, self.now.as_nanos(), self.window_open);
            }
            match next {
                Some(v) => self.begin_irq(vm, idx, v),
                None => self.resume_or_fresh(vm, idx),
            }
        } else {
            self.begin_exit(vm, idx, ExitReason::ApicAccess, AfterExit::Eoi);
        }
    }

    // -----------------------------------------------------------------
    // Receive-path protocol effects
    // -----------------------------------------------------------------

    /// Apply the protocol effect of one received packet (inside NAPI).
    fn guest_rx_effect(&mut self, vm: u32, idx: u32, pkt: Packet) {
        let vmi = vm as usize;
        let us = self.now.saturating_since(pkt.created_at).as_micros_f64();
        self.vms[vmi].rx_latency.add(us);
        self.vms[vmi].rx_hist.record(us as u64);
        if let Some(t) = self.tel.as_deref_mut() {
            let lat_ns = self.now.saturating_since(pkt.created_at).as_nanos();
            t.on_rx_latency(vm, self.now.as_nanos(), lat_ns);
        }
        match pkt.kind {
            PacketKind::Data => {
                let win = self.window_open;
                let mut ack_to_send: Option<u32> = None;
                let mut arm_flush = false;
                if let GuestWl::NetperfRecv {
                    spec,
                    flow,
                    received_segs,
                    ack_flush_pending,
                    ..
                } = &mut self.vms[vmi].wl
                {
                    if win {
                        *received_segs += 1;
                    }
                    if spec.proto == NetperfProto::Tcp {
                        debug_assert_eq!(spec.direction, NetperfDirection::Receive);
                        if let Some(covered) = flow.on_data_received() {
                            ack_to_send = Some(covered);
                        } else if !*ack_flush_pending {
                            *ack_flush_pending = true;
                            arm_flush = true;
                        }
                    }
                }
                if arm_flush {
                    let at = self.now + self.p.delayed_ack_timeout;
                    self.q.push(at, crate::machine::Ev::AckFlush { vm });
                }
                if let Some(covered) = ack_to_send {
                    let ack = self
                        .pf
                        .make_meta(pkt.flow, PacketKind::Ack, 0, self.now, covered);
                    self.enqueue_tx_in_irq(vm, idx, ack);
                }
            }
            PacketKind::Ack => {
                let now = self.now;
                if let GuestWl::NetperfSend {
                    flows, last_ack_at, ..
                } = &mut self.vms[vmi].wl
                {
                    let f = (pkt.flow.0 as usize).min(flows.len() - 1);
                    flows[f].on_ack_received(pkt.meta);
                    last_ack_at[f] = now;
                }
                self.guest_app_wakeup(vm);
            }
            PacketKind::Request => {
                let op = match pkt.meta {
                    META_MC_GET => ServerOp::McGet,
                    META_MC_SET => ServerOp::McSet,
                    META_HTTP_GET => ServerOp::HttpGet,
                    _ => ServerOp::HttpGetSmall,
                };
                if let GuestWl::Server { pending, .. } = &mut self.vms[vmi].wl {
                    pending.push_back(AppRequest {
                        op,
                        flow: pkt.flow.0,
                        meta: pkt.meta,
                    });
                }
                self.guest_app_wakeup(vm);
            }
            PacketKind::Syn => {
                // Kernel-level SYN/ACK, sent straight from softirq context.
                let synack = self
                    .pf
                    .make_meta(pkt.flow, PacketKind::SynAck, 0, self.now, pkt.meta);
                self.enqueue_tx_in_irq(vm, idx, synack);
            }
            PacketKind::EchoRequest => {
                let reply = self.pf.make_meta(
                    pkt.flow,
                    PacketKind::EchoReply,
                    pkt.bytes.saturating_sub(es2_net::packet::HEADER_BYTES),
                    self.now,
                    pkt.meta,
                );
                self.enqueue_tx_in_irq(vm, idx, reply);
            }
            PacketKind::SynAck | PacketKind::EchoReply | PacketKind::Response => {
                // Server-bound guests never receive these in our workloads.
            }
        }
    }

    /// Enqueue a TX packet from IRQ context on the vCPU's own pair; a
    /// required kick is deferred until after EOI.
    fn enqueue_tx_in_irq(&mut self, vm: u32, idx: u32, pkt: Packet) {
        let vmi = vm as usize;
        let qi = self.vms[vmi].tx_pair_for_vcpu(idx);
        while self.vms[vmi].pairs[qi].tx.driver_take_used().is_some() {}
        match self.guest_tx_emit(vm, qi, pkt) {
            Ok(true) => {
                let h = self.vms[vmi].pairs[qi].tx_h;
                let pk = &mut self.vms[vmi].vctx[idx as usize].pending_kicks;
                if !pk.contains(&h) {
                    pk.push(h);
                }
            }
            Ok(false) => {}
            Err(()) => {
                // Ring full: drop (cumulative ACKs tolerate this; data
                // responses are protected by the room checks in
                // select_app_step).
                self.vms[vmi].dropped_tx += 1;
            }
        }
    }

    /// Delayed-ACK timer fired for the receive-test guest.
    pub(crate) fn on_ack_flush(&mut self, vm: u32) {
        let vmi = vm as usize;
        let mut ack: Option<u32> = None;
        if let GuestWl::NetperfRecv {
            flow,
            ack_flush_pending,
            ..
        } = &mut self.vms[vmi].wl
        {
            *ack_flush_pending = false;
            if let Some(c) = flow.flush_delayed_ack() {
                ack = Some(c);
            }
        }
        if let Some(covered) = ack {
            // Timer-context send: enqueue directly; the kick (if needed)
            // wakes vhost without charging a guest exit — at ≤25/s this is
            // noise, and modeling the timer IRQ exit would double-count
            // with the guest-timer model.
            let pkt = self
                .pf
                .make_meta(FlowId(0), PacketKind::Ack, 0, self.now, covered);
            let vmi = vm as usize;
            // Timer context has no owning vCPU: the delayed-ACK path uses
            // pair 0 (the legacy queue).
            if let Ok(true) = self.guest_tx_emit(vm, 0, pkt) {
                let h = self.vms[vmi].pairs[0].tx_h;
                self.kick_vhost(vm, h);
            }
        }
    }

    /// Periodic guest-side TCP retransmission-timeout check (armed only
    /// under an active fault plan). A flow whose ACK clock stalled for a
    /// full RTO had segments (or their ACKs) lost on the faulty wire:
    /// clear the in-flight accounting — the retransmission burst re-enters
    /// through the normal send path — and wake the sender.
    pub(crate) fn on_guest_tcp_timeout(&mut self, vm: u32) {
        let vmi = vm as usize;
        let now = self.now;
        let rto = self.p.guest_rto;
        let mut fired = false;
        if let GuestWl::NetperfSend {
            flows, last_ack_at, ..
        } = &mut self.vms[vmi].wl
        {
            for (f, flow) in flows.iter_mut().enumerate() {
                if flow.inflight() > 0 && now.saturating_since(last_ack_at[f]) > rto {
                    let stuck = flow.inflight();
                    flow.on_ack_received(stuck);
                    last_ack_at[f] = now;
                    fired = true;
                }
            }
        }
        if fired {
            self.vms[vmi].guest_rtos += 1;
            self.guest_app_wakeup(vm);
        }
        self.q.push(
            self.now + self.p.guest_rto_check,
            crate::machine::Ev::GuestTcpTimeout { vm },
        );
    }
}
