//! Run results: the measurements the paper reports.

use es2_hypervisor::{ExitReason, ExitStats};
use es2_sim::SimDuration;
use es2_workloads::NetperfProto;

use crate::machine::Machine;
use crate::workload::{ExtWl, GuestWl, WorkloadSpec};

/// Everything a single testbed run measured (for VM 0, the tested VM).
#[derive(Clone, Debug)]
pub struct RunResult {
    /// Configuration label ("Baseline", "PI", ...).
    pub config: &'static str,
    /// Merged exit statistics across the tested VM's vCPUs (windowed).
    pub exits: ExitStats,
    /// Mean time-in-guest percentage across the tested VM's vCPUs.
    pub tig_percent: f64,
    /// Measurement window length.
    pub window: SimDuration,
    /// Delivered goodput in Gb/s (netperf workloads).
    pub goodput_gbps: f64,
    /// Application operations per second (memcached ops / apache
    /// transactions).
    pub ops_per_sec: f64,
    /// Mean connection-establishment time in ms (httperf).
    pub mean_conn_time_ms: f64,
    /// Connections established in the window (httperf).
    pub conns_established: u64,
    /// Ping RTT samples: (reply time in seconds, RTT in ms).
    pub rtt_series: Vec<(f64, f64)>,
    /// Guest kicks performed (TX queue, lifetime).
    pub kicks_total: u64,
    /// Virtual interrupts the device raised (RX queue, lifetime).
    pub rx_interrupts_total: u64,
    /// Interrupts redirected by ES2 (lifetime; 0 without redirection).
    pub redirections: u64,
    /// Offline-list predictions used (no online vCPU available).
    pub offline_predictions: u64,
    /// Ingress packets tail-dropped at the host backlog.
    pub backlog_drops: u64,
    /// Host context switches across all cores.
    pub host_ctx_switches: u64,
    /// Mode switches of the TX hybrid handler into polling.
    pub polling_entries: u64,
    /// Interrupts parked on offline vCPUs (offline-list prediction).
    pub parked_irqs: u64,
    /// Parked interrupts migrated to a sibling that came online sooner.
    pub migrated_irqs: u64,
    /// Mean one-way latency from packet creation (external host or guest)
    /// to guest NAPI consumption, in microseconds.
    pub mean_rx_latency_us: f64,
    /// Maximum observed one-way receive latency, in microseconds.
    pub max_rx_latency_us: f64,
    /// Total events the run pushed through the simulation queue
    /// (lifetime; the denominator for events/sec perf reporting).
    pub events_simulated: u64,
    /// Faults the plan actually injected over this run (all zeros for the
    /// empty plan).
    pub fault_stats: es2_sim::FaultStats,
    /// Per-VM interrupt delivery-mode ledger (posted vs emulated counts
    /// and degradation events — the graceful-degradation audit trail).
    pub modes: es2_metrics::ModeAccounting,
    /// Lost kicks re-issued by the liveness watchdog (tested VM).
    pub watchdog_rekicks: u64,
    /// Lost device interrupts re-raised by the watchdog (tested VM).
    pub watchdog_reraises: u64,
    /// Guest-side TCP retransmission timeouts fired (tested VM).
    pub guest_rtos: u64,
    /// Flight-recorder report (`Some` iff `Params::trace` was set):
    /// per-VM per-stage latency histograms, lifecycle notes, and the
    /// bounded Chrome-trace event log.
    pub spans: Option<es2_metrics::SpanReport>,
    /// Backpressure/containment ledger summed across every VM: throttled
    /// kicks, budget deferrals, storm absorption, quarantines and resets.
    pub backpressure: es2_metrics::BackpressureStats,
    /// The same ledger broken out per VM (index = VM id) — the
    /// blast-radius evidence that only the hostile VM paid.
    pub backpressure_per_vm: Vec<es2_metrics::BackpressureStats>,
    /// Per-VM p99 one-way receive latency in microseconds (0 for VMs
    /// that received nothing).
    pub rx_p99_us_per_vm: Vec<u64>,
    /// Queue quarantine episodes across all VMs (tx + rx, lifetime).
    pub quarantines_total: u64,
    /// Guest-initiated queue resets across all VMs (tx + rx, lifetime).
    pub queue_resets_total: u64,
    /// Slots torn down and reclaimed on this host (departures and
    /// boot-timeout rollbacks; 0 on single-host or churn-off runs).
    pub reclaimed_slots: u32,
    /// Device interrupts (TX-clean + RX, no timers) handled per vCPU of
    /// the tested VM — evidence of per-queue MSI steering.
    pub device_irqs_per_vcpu: Vec<u64>,
    /// Deepest backlog each of the tested VM's vhost workers ever
    /// carried (lifetime high-water mark, index = worker).
    pub vhost_pending_hwm_per_worker: Vec<u64>,
    /// Windowed telemetry report (`Some` iff `Params::telemetry` was
    /// set): per-window gauges, causal annotations, and the SLO surface.
    pub telemetry: Option<es2_metrics::TelemetryReport>,
}

impl RunResult {
    /// Exits per second for one cause.
    pub fn rate(&self, reason: ExitReason) -> f64 {
        self.exits.rate(reason)
    }

    /// Total exits per second.
    pub fn total_exit_rate(&self) -> f64 {
        self.exits.total_rate()
    }

    /// I/O-instruction exits per second (the Fig. 4 metric).
    pub fn io_exit_rate(&self) -> f64 {
        self.exits.rate(ExitReason::IoInstruction)
    }

    /// Maximum ping RTT in ms.
    pub fn max_rtt_ms(&self) -> f64 {
        self.rtt_series.iter().map(|&(_, r)| r).fold(0.0, f64::max)
    }

    /// Mean ping RTT in ms.
    pub fn mean_rtt_ms(&self) -> f64 {
        if self.rtt_series.is_empty() {
            return 0.0;
        }
        self.rtt_series.iter().map(|&(_, r)| r).sum::<f64>() / self.rtt_series.len() as f64
    }

    pub(crate) fn collect(mut m: Machine) -> RunResult {
        let spans = m.spans.take().map(|tr| tr.finish());
        let telemetry = m.tel.take().map(|t| t.finish(m.now.as_nanos()));
        let vm0 = &m.vms[0];
        let mut exits = ExitStats::new();
        let mut tig_sum = 0.0;
        for v in &vm0.vcpus {
            exits.merge(&v.exits);
            tig_sum += v.tig.tig_percent();
        }
        let tig_percent = tig_sum / vm0.vcpus.len() as f64;
        let window = m.p.measure;
        let secs = window.as_secs_f64();

        let mut goodput_gbps = 0.0;
        let mut ops_per_sec = 0.0;
        let mut mean_conn_time_ms = 0.0;
        let mut conns_established = 0;
        let mut rtt_series = Vec::new();

        match (&m.specs[0], &m.ext[0], &vm0.wl) {
            (WorkloadSpec::Netperf(np), ExtWl::TcpSink { received_segs, .. }, _) => {
                goodput_gbps =
                    *received_segs as f64 * np.payload_per_segment() as f64 * 8.0 / secs / 1e9;
            }
            (WorkloadSpec::Netperf(np), ExtWl::UdpSink { received }, _) => {
                goodput_gbps = *received as f64 * np.msg_bytes as f64 * 8.0 / secs / 1e9;
            }
            (WorkloadSpec::Netperf(np), _, GuestWl::NetperfRecv { received_segs, .. }) => {
                let per_seg = match np.proto {
                    NetperfProto::Tcp => np.payload_per_segment(),
                    NetperfProto::Udp => np.msg_bytes.min(es2_net::packet::MSS),
                };
                goodput_gbps = *received_segs as f64 * per_seg as f64 * 8.0 / secs / 1e9;
            }
            (WorkloadSpec::Memcached, ExtWl::Memaslap { ops_windowed, .. }, _) => {
                ops_per_sec = *ops_windowed as f64 / secs;
            }
            (
                WorkloadSpec::Apache,
                ExtWl::Ab {
                    completed_windowed, ..
                },
                _,
            ) => {
                ops_per_sec = *completed_windowed as f64 / secs;
                goodput_gbps = *completed_windowed as f64
                    * es2_workloads::apachebench::PAGE_BYTES as f64
                    * 8.0
                    / secs
                    / 1e9;
            }
            (WorkloadSpec::Httperf { .. }, ExtWl::Httperf { conn_times_ms, .. }, _) => {
                conns_established = conn_times_ms.len() as u64;
                if !conn_times_ms.is_empty() {
                    mean_conn_time_ms =
                        conn_times_ms.iter().sum::<f64>() / conn_times_ms.len() as f64;
                }
            }
            (WorkloadSpec::Ping, ExtWl::Ping(probe), _) => {
                rtt_series = probe
                    .rtts()
                    .iter()
                    .map(|&(at, rtt)| (at.as_secs_f64(), rtt.as_millis_f64()))
                    .collect();
            }
            _ => {}
        }

        let host_ctx_switches = (0..m.sched.num_cores())
            .map(|c| m.sched.switch_count(es2_sched::CoreId(c as u32)))
            .sum();

        let mut backpressure = es2_metrics::BackpressureStats::default();
        let mut backpressure_per_vm = Vec::with_capacity(m.vms.len());
        let mut rx_p99_us_per_vm = Vec::with_capacity(m.vms.len());
        let mut quarantines_total = 0;
        let mut queue_resets_total = 0;
        let reclaimed_slots = m
            .mig
            .as_ref()
            .map_or(0, |mg| mg.reclaimed.iter().filter(|r| **r).count() as u32);
        for vm in &m.vms {
            backpressure.merge(&vm.bp);
            backpressure_per_vm.push(vm.bp);
            rx_p99_us_per_vm.push(vm.rx_hist.p99());
            for pair in &vm.pairs {
                quarantines_total += pair.tx.quarantine_count() + pair.rx.quarantine_count();
                queue_resets_total += pair.tx.reset_count() + pair.rx.reset_count();
            }
        }

        let (redirections, offline_predictions) = match &m.router {
            Some(r) => (
                r.engine().redirection_count(),
                r.engine().offline_prediction_count(),
            ),
            None => (0, 0),
        };

        RunResult {
            config: m.cfg.label(),
            exits,
            tig_percent,
            window,
            goodput_gbps,
            ops_per_sec,
            mean_conn_time_ms,
            conns_established,
            rtt_series,
            kicks_total: vm0
                .pairs
                .iter()
                .map(|p| p.tx.kick_count() + p.rx.kick_count())
                .sum(),
            rx_interrupts_total: vm0.pairs.iter().map(|p| p.rx.interrupt_count()).sum(),
            redirections,
            offline_predictions,
            backlog_drops: vm0.pairs.iter().map(|p| p.backlog.dropped_total()).sum(),
            host_ctx_switches,
            polling_entries: vm0.pairs.iter().map(|p| p.tx_handler.polling_entries()).sum(),
            parked_irqs: vm0.parked_count,
            migrated_irqs: vm0.migrated_count,
            mean_rx_latency_us: vm0.rx_latency.mean(),
            max_rx_latency_us: vm0.rx_latency.max(),
            events_simulated: m.q.pushed_total(),
            fault_stats: m.faults.stats(),
            modes: m.modes.clone(),
            watchdog_rekicks: vm0.watchdog_rekicks,
            watchdog_reraises: vm0.watchdog_reraises,
            guest_rtos: vm0.guest_rtos,
            spans,
            backpressure,
            backpressure_per_vm,
            rx_p99_us_per_vm,
            quarantines_total,
            queue_resets_total,
            reclaimed_slots,
            device_irqs_per_vcpu: vm0.device_irqs_per_vcpu.clone(),
            vhost_pending_hwm_per_worker: (0..vm0.worker.num_workers())
                .map(|w| vm0.worker.pending_hwm_on(w) as u64)
                .collect(),
            telemetry,
        }
    }
}
