//! Tenant-churn control plane: a deterministic VM lifecycle engine
//! driving arrival/departure streams into the cluster's best-fit
//! admission path mid-run.
//!
//! # Model
//!
//! A [`ChurnSpec`] pre-allocates one global slot per arrival after the
//! static fleet (every host builds every slot; a slot is a HLT-parked
//! dormant VM until a boot installs real state). Arrival inter-gaps and
//! tenant lifetimes are heavy-tailed (bounded Pareto) draws from the
//! churn RNG streams — forked after the nine existing fault streams, so
//! enabling churn never shifts a draw any other consumer sees, and a
//! disabled churn spec draws nothing at all.
//!
//! # Admission
//!
//! Each placement attempt is overload-aware: a host's free capacity is
//! its admission cap minus booted tenants minus boots still in flight,
//! and a host at its pending-depth limit (or dead) reports zero. The
//! winner is chosen by the same [`best_fit`] rule as static admission.
//! Rejected arrivals re-enter a bounded exponential-backoff retry queue
//! (`retry_backoff · 2^(attempt-1)` plus deterministic jitter from the
//! churn retry stream), exhausting into a permanently-rejected ledger.
//! A brownout defers the boot by `brownout_hold` when the admission
//! would push the host to `brownout_util` utilization — and lifts
//! deterministically when the deferred boot lands.
//!
//! # Lifecycle state machine
//!
//! ```text
//! Waiting ──place──▶ Booting ──boot_delay──▶ Resident ──lifetime──▶ Departed
//!    ▲                  │  │
//!    │   stall timeout  │  └─host crash──▶ re-placed via evacuation
//!    └──────────────────┘      (fresh boot on the spread target)
//!    │
//!    └─retries exhausted──▶ Rejected (final)
//! ```
//!
//! Every transition compiles to per-host machine calls (boot, depart,
//! timeout rollback, observational note) with times strictly inside the
//! run window, so the runtime side is an ordinary deterministic event
//! diet and serial vs lane-parallel execution stays byte-identical.
//!
//! # Compilation order
//!
//! The control schedule is a single min-heap over `(time, priority,
//! push-seq)`: at equal times a crash outranks a move (the legacy merge
//! loop's `m.at < tc` rule), moves keep their sorted order, and churn
//! events settle state (boot completions, departures, timeouts) before
//! new placement attempts observe it. With churn disabled the heap
//! degenerates to exactly the old crash/move merge — same asserts, same
//! calls, same timeline, byte-identical cells.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use es2_sim::{FaultInjector, SimDuration, SimTime};

use crate::cluster::{best_fit, evacuation_target, percentile_ns, ClusterSpec, PlannedMove, Timeline};
use crate::lanes::CROSS_LANE_LOOKAHEAD;
use crate::params::ChurnSpec;
use crate::workload::WorkloadSpec;

/// Everything the churn control plane accounts for over one compile.
/// Entirely construction-time state: identical for serial and parallel
/// runs by construction, surfaced on `ClusterResult` and in the digest.
#[derive(Clone, Debug, Default)]
pub struct ChurnLedger {
    /// Arrivals whose first attempt landed inside the run window.
    pub arrivals: u32,
    /// Arrivals that completed a clean boot (now-or-once resident).
    pub admitted: u32,
    /// Transient rejections: placement faults, capacity/pending-depth
    /// misses, and stall-timeout rollbacks (each re-enters retry).
    pub rejected_transient: u32,
    /// Arrivals that exhausted their retry budget (permanent ledger).
    pub rejected_final: u32,
    /// Retry attempts scheduled.
    pub retries: u32,
    /// Distinct arrivals that entered the retry queue at least once.
    pub retried: u32,
    /// Retried arrivals that eventually admitted.
    pub retry_successes: u32,
    /// Boots deferred by the brownout threshold.
    pub brownout_deferrals: u32,
    /// Injected control-plane placement failures.
    pub place_fail_faults: u32,
    /// Injected mid-handshake boot stalls.
    pub boot_stall_faults: u32,
    /// Mid-boot arrivals re-placed off a crashing host.
    pub replaced_on_crash: u32,
    /// Departures that raced an in-flight migration (teardown deferred
    /// until the copy settled, then cleaned up on the holding host).
    pub destroy_races: u32,
    /// Tenants torn down at end of lifetime.
    pub departures: u32,
    /// Lifecycle steps clipped by the end of the run (late arrivals,
    /// retries or boots past the window; the tenant never lands).
    pub abandoned: u32,
    /// Caller-planned moves of churn slots skipped because the slot was
    /// not cleanly resident at the move instant (lenient, not a panic:
    /// churn residency is a function of the run, not the plan).
    pub moves_skipped: u32,
    /// Admission-to-boot wait per admitted tenant (nanoseconds).
    pub boot_wait_ns: Vec<u64>,
}

impl ChurnLedger {
    /// Share of retried arrivals that eventually admitted (1.0 when
    /// nothing ever needed a retry).
    pub fn retry_success_ratio(&self) -> f64 {
        if self.retried == 0 {
            1.0
        } else {
            self.retry_successes as f64 / self.retried as f64
        }
    }

    /// Share of in-window arrivals that ended permanently rejected.
    pub fn rejection_ratio(&self) -> f64 {
        if self.arrivals == 0 {
            0.0
        } else {
            self.rejected_final as f64 / self.arrivals as f64
        }
    }

    /// Boot-wait percentile in µs across admitted tenants.
    pub fn boot_wait_percentile_us(&self, q: f64) -> f64 {
        percentile_ns(&self.boot_wait_ns, q) / 1_000.0
    }

    /// One digest line; appended to the cluster digest only when churn
    /// is enabled, so churn-off cells keep their legacy bytes.
    pub(crate) fn digest_line(&self) -> String {
        format!(
            "churn arrivals={} admitted={} transient={} final={} retries={} retried={} \
             retry_ok={} brownout={} place_faults={} stall_faults={} replaced={} races={} \
             departures={} abandoned={} skipped_moves={} boot_wait_ns={:?}",
            self.arrivals,
            self.admitted,
            self.rejected_transient,
            self.rejected_final,
            self.retries,
            self.retried,
            self.retry_successes,
            self.brownout_deferrals,
            self.place_fail_faults,
            self.boot_stall_faults,
            self.replaced_on_crash,
            self.destroy_races,
            self.departures,
            self.abandoned,
            self.moves_skipped,
            self.boot_wait_ns,
        )
    }
}

/// Per-host machine calls compiled from the control schedule, applied
/// to each machine after build (in push order, which is chronological).
pub(crate) enum Call {
    Out { at: SimTime, vm: u32, abort: bool },
    In { at: SimTime, vm: u32 },
    Restart { at: SimTime, vm: u32 },
    ExtRetire { at: SimTime, vm: u32 },
    Boot { at: SimTime, vm: u32, spec: WorkloadSpec, stuck: bool },
    Depart { at: SimTime, vm: u32 },
    BootTimeout { at: SimTime, vm: u32 },
    Note { at: SimTime, vm: u32, kind: &'static str, arg: u64 },
}

/// The compiled control schedule: location timelines, per-host call
/// lists, the full slot-spec table, and the churn ledger (when on).
pub(crate) struct Compiled {
    pub(crate) guest_tl: Vec<Vec<(SimTime, u32)>>,
    pub(crate) ext_tl: Vec<Vec<(SimTime, u32)>>,
    pub(crate) calls: Vec<Vec<Call>>,
    pub(crate) slot_specs: Vec<WorkloadSpec>,
    pub(crate) churn: Option<ChurnLedger>,
}

/// Control events on the compile-time schedule heap.
#[derive(Clone, Copy)]
enum Ctrl {
    Crash { host: usize },
    Move { idx: usize },
    /// Arrival or retry placement attempt for churn slot `fleet_n+ci`.
    Attempt { ci: usize },
    /// A clean boot lands (epoch-checked: crashes invalidate).
    BootDone { ci: usize, epoch: u32 },
    /// A stuck boot's handshake timeout (epoch-checked).
    StallTimeout { ci: usize, epoch: u32 },
    /// End of tenant lifetime.
    Depart { ci: usize },
}

// At equal times: crashes before moves (the legacy merge loop's
// `m.at < tc` rule), then state-settling churn events (capacity frees
// become visible), then fresh placement attempts.
const PRIO_CRASH: u8 = 0;
const PRIO_MOVE: u8 = 1;
const PRIO_BOOT_DONE: u8 = 2;
const PRIO_DEPART: u8 = 3;
const PRIO_TIMEOUT: u8 = 4;
const PRIO_ATTEMPT: u8 = 5;

/// Min-heap over `(time, priority, push-seq)`; seq keeps equal-key
/// events in push order (moves arrive pre-sorted, so sorted order).
struct Sched {
    heap: BinaryHeap<Reverse<(SimTime, u8, u64, usize)>>,
    ctrls: Vec<Ctrl>,
    seq: u64,
}

impl Sched {
    fn new() -> Self {
        Sched {
            heap: BinaryHeap::new(),
            ctrls: Vec::new(),
            seq: 0,
        }
    }

    fn push(&mut self, at: SimTime, prio: u8, c: Ctrl) {
        self.ctrls.push(c);
        self.heap.push(Reverse((at, prio, self.seq, self.ctrls.len() - 1)));
        self.seq += 1;
    }

    fn pop(&mut self) -> Option<(SimTime, Ctrl)> {
        self.heap.pop().map(|Reverse((at, _, _, i))| (at, self.ctrls[i]))
    }
}

/// A churn slot's lifecycle state (compile-time mirror of the run).
#[derive(Clone, Copy, Debug)]
enum St {
    Waiting,
    Booting { host: usize, boot_at: SimTime },
    Resident { host: usize, since: SimTime },
    Departed,
    Rejected,
}

struct SlotCtl {
    st: St,
    /// Placement attempts so far (first attempt counts).
    attempts: u32,
    /// Bumped on every (re-)placement and crash invalidation; stale
    /// BootDone/StallTimeout controls compare and drop.
    epoch: u32,
    /// Original arrival instant (boot-wait base, survives retries).
    arrival: SimTime,
    lifetime: SimDuration,
}

struct Compiler<'a> {
    hosts: usize,
    fleet_n: usize,
    cap: u32,
    end: SimTime,
    restart_delay: SimDuration,
    max_blackout: SimDuration,
    churn: Option<ChurnSpec>,
    injector: &'a mut FaultInjector,
    /// Planned moves with original index and predrawn abort, sorted by
    /// `(at, index)` exactly like the legacy compiler.
    moves: Vec<(usize, PlannedMove, bool)>,
    guest_tl: Vec<Vec<(SimTime, u32)>>,
    ext_tl: Vec<Vec<(SimTime, u32)>>,
    alive: Vec<bool>,
    last_move_at: Vec<Option<SimTime>>,
    /// Per-slot blackout window of the latest move (destroy-race gate).
    move_until: Vec<Option<SimTime>>,
    calls: Vec<Vec<Call>>,
    /// Incremental per-host occupancy in VM units, for churn admission
    /// and brownout only. Legacy evacuation spreading recomputes
    /// occupancy from the timeline instead — byte-identity with the
    /// pre-churn compiler when churn is off.
    occ: Vec<u32>,
    /// Boots in flight per host (admission pending-depth gate).
    pending: Vec<u32>,
    ctl: Vec<SlotCtl>,
    ledger: ChurnLedger,
    sched: Sched,
}

/// Compile the full control schedule — crashes, moves, churn lifecycle
/// — into location timelines and per-host machine calls. `aborts` are
/// the predrawn per-move abort decisions (cluster migration stream);
/// churn draws happen here, on the churn streams only.
pub(crate) fn compile(
    spec: &ClusterSpec,
    placement: &[Option<u32>],
    crash_at: &[Option<SimTime>],
    aborts: Vec<bool>,
    injector: &mut FaultInjector,
    max_blackout: SimDuration,
    end: SimTime,
) -> Compiled {
    let hosts = spec.hosts as usize;
    let fleet_n = placement.len();
    let n_total = fleet_n + spec.churn.map_or(0, |c| c.arrivals as usize);

    let mut slot_specs = spec.fleet.clone();
    if let Some(c) = spec.churn {
        slot_specs.extend((0..c.arrivals).map(|_| c.spec));
    }

    let mut guest_tl: Vec<Vec<(SimTime, u32)>> = placement
        .iter()
        .map(|p| p.map(|h| vec![(SimTime::ZERO, h)]).unwrap_or_default())
        .collect();
    guest_tl.resize(n_total, Vec::new());
    let ext_tl = guest_tl.clone();

    let mut occ = vec![0u32; hosts];
    for p in placement.iter().flatten() {
        occ[*p as usize] += 1;
    }

    let mut moves: Vec<(usize, PlannedMove, bool)> = spec
        .moves
        .iter()
        .copied()
        .zip(aborts)
        .enumerate()
        .map(|(i, (m, a))| (i, m, a))
        .collect();
    moves.sort_by_key(|(i, m, _)| (m.at, *i));
    let mut crashes: Vec<(SimTime, usize)> = crash_at
        .iter()
        .enumerate()
        .filter_map(|(h, c)| c.map(|t| (t, h)))
        .collect();
    crashes.sort();

    let mut cc = Compiler {
        hosts,
        fleet_n,
        cap: spec.cap_vms_per_host,
        end,
        restart_delay: spec.restart_delay,
        max_blackout,
        churn: spec.churn,
        injector,
        moves,
        guest_tl,
        ext_tl,
        alive: vec![true; hosts],
        last_move_at: vec![None; n_total],
        move_until: vec![None; n_total],
        calls: (0..hosts).map(|_| Vec::new()).collect(),
        occ,
        pending: vec![0u32; hosts],
        ctl: Vec::new(),
        ledger: ChurnLedger::default(),
        sched: Sched::new(),
    };

    for &(tc, h) in &crashes {
        cc.sched.push(tc, PRIO_CRASH, Ctrl::Crash { host: h });
    }
    for idx in 0..cc.moves.len() {
        let at = cc.moves[idx].1.at;
        cc.sched.push(at, PRIO_MOVE, Ctrl::Move { idx });
    }

    // Heavy-tailed arrival schedule, drawn upfront on the churn arrival
    // stream: the draw count depends only on `arrivals`, never on what
    // the run does with them.
    if let Some(c) = spec.churn {
        let mut t = SimTime::ZERO + c.first_arrival;
        for ci in 0..c.arrivals as usize {
            if ci > 0 {
                t += cc.injector.churn_interarrival(c.mean_interarrival);
            }
            let lifetime = cc.injector.churn_lifetime(c.mean_lifetime);
            cc.ctl.push(SlotCtl {
                st: St::Waiting,
                attempts: 0,
                epoch: 0,
                arrival: t,
                lifetime,
            });
            if t < end {
                cc.ledger.arrivals += 1;
                cc.sched.push(t, PRIO_ATTEMPT, Ctrl::Attempt { ci });
            } else {
                cc.ledger.abandoned += 1;
            }
        }
    }

    while let Some((at, c)) = cc.sched.pop() {
        match c {
            Ctrl::Crash { host } => cc.on_crash(at, host),
            Ctrl::Move { idx } => cc.on_move(idx),
            Ctrl::Attempt { ci } => cc.on_attempt(at, ci),
            Ctrl::BootDone { ci, epoch } => cc.on_boot_done(at, ci, epoch),
            Ctrl::StallTimeout { ci, epoch } => cc.on_stall_timeout(at, ci, epoch),
            Ctrl::Depart { ci } => cc.on_depart(at, ci),
        }
    }

    Compiled {
        guest_tl: cc.guest_tl,
        ext_tl: cc.ext_tl,
        calls: cc.calls,
        slot_specs,
        churn: spec.churn.map(|_| cc.ledger),
    }
}

impl Compiler<'_> {
    fn churn(&self) -> ChurnSpec {
        self.churn.expect("churn control event without a churn spec")
    }

    fn on_move(&mut self, idx: usize) {
        let (_, m, abort) = self.moves[idx];
        let vmi = m.vm as usize;
        assert!(vmi < self.guest_tl.len(), "move of unknown VM {}", m.vm);
        assert!((m.to as usize) < self.hosts, "move to unknown host {}", m.to);
        if vmi < self.fleet_n {
            // Static-fleet move: the legacy validation, verbatim. These
            // are plan bugs, not simulated faults.
            assert!(
                !self.guest_tl[vmi].is_empty(),
                "move of VM {} that admission rejected",
                m.vm
            );
            let from = Timeline::host_at(&self.guest_tl[vmi], m.at);
            assert_ne!(from, m.to, "move of VM {} to its current host", m.vm);
            assert!(
                self.alive[from as usize] && self.alive[m.to as usize],
                "move of VM {} touches a host that is already down",
                m.vm
            );
            if let Some(prev) = self.last_move_at[vmi] {
                assert!(
                    m.at >= prev + self.max_blackout + CROSS_LANE_LOOKAHEAD,
                    "moves of VM {} are closer than the worst-case blackout",
                    m.vm
                );
            }
            self.last_move_at[vmi] = Some(m.at);
            self.move_until[vmi] = Some(m.at + self.max_blackout + CROSS_LANE_LOOKAHEAD);
            self.calls[from as usize].push(Call::Out {
                at: m.at,
                vm: m.vm,
                abort,
            });
            if !abort {
                self.calls[m.to as usize].push(Call::In { at: m.at, vm: m.vm });
                self.guest_tl[vmi].push((m.at, m.to));
                self.occ[from as usize] = self.occ[from as usize].saturating_sub(1);
                self.occ[m.to as usize] += 1;
            }
            return;
        }
        // Churn-slot move: residency is a function of the run, not the
        // plan, so preconditions a static plan would assert are skipped
        // leniently (and counted) instead.
        let ci = vmi - self.fleet_n;
        let from = match self.ctl[ci].st {
            St::Resident { host, since }
                if host != m.to as usize
                    && self.alive[host]
                    && self.alive[m.to as usize]
                    && m.at >= since + CROSS_LANE_LOOKAHEAD
                    && self.last_move_at[vmi]
                        .is_none_or(|prev| m.at >= prev + self.max_blackout + CROSS_LANE_LOOKAHEAD)
                    && self.move_until[vmi].is_none_or(|w| m.at >= w) =>
            {
                host
            }
            _ => {
                self.ledger.moves_skipped += 1;
                return;
            }
        };
        self.last_move_at[vmi] = Some(m.at);
        self.move_until[vmi] = Some(m.at + self.max_blackout + CROSS_LANE_LOOKAHEAD);
        self.calls[from].push(Call::Out {
            at: m.at,
            vm: m.vm,
            abort,
        });
        if !abort {
            self.calls[m.to as usize].push(Call::In { at: m.at, vm: m.vm });
            self.guest_tl[vmi].push((m.at, m.to));
            self.occ[from] = self.occ[from].saturating_sub(1);
            self.occ[m.to as usize] += 1;
            self.ctl[ci].st = St::Resident {
                host: m.to as usize,
                since: m.at,
            };
        }
    }

    fn on_crash(&mut self, tc: SimTime, h: usize) {
        self.alive[h] = false;
        let restart_at = tc + self.restart_delay;
        // Occupancy right now, for evacuation spreading: static slots
        // from the timeline (legacy byte-identity), churn slots from
        // the state machine — the timeline's pre-first-segment
        // convention would misread a not-yet-booted or departed slot
        // as resident.
        let mut occ_free = vec![0u32; self.hosts];
        for segs in self.guest_tl.iter().take(self.fleet_n) {
            if !segs.is_empty() {
                occ_free[Timeline::host_at(segs, tc) as usize] += 1;
            }
        }
        for c in &self.ctl {
            if let St::Resident { host, .. } = c.st {
                occ_free[host] += 1;
            }
        }
        let cap = self.cap;
        for f in &mut occ_free {
            *f = cap.saturating_sub(*f);
        }
        // Victims: every VM whose guest lives on `h` at the crash —
        // including one mid-copy *into* h (its snapshot will be dropped
        // on arrival) and one mid-abort-rollback on h. A VM mid-copy
        // *out of* h already reads as moved (its snapshot left at pause
        // time) and survives.
        for g in 0..self.guest_tl.len() {
            let is_victim = if g < self.fleet_n {
                !self.guest_tl[g].is_empty()
                    && Timeline::host_at(&self.guest_tl[g], tc) as usize == h
            } else {
                matches!(self.ctl[g - self.fleet_n].st, St::Resident { host, .. } if host == h)
            };
            if !is_victim {
                continue;
            }
            let target = evacuation_target(&occ_free, &self.alive)
                .expect("no surviving host to evacuate to");
            occ_free[target] = occ_free[target].saturating_sub(1);
            self.guest_tl[g].push((restart_at, target as u32));
            let old_ext = Timeline::host_at(&self.ext_tl[g], tc) as usize;
            self.ext_tl[g].push((restart_at, target as u32));
            self.calls[target].push(Call::Restart {
                at: restart_at,
                vm: g as u32,
            });
            // The restart rebuilds the external peer next to the
            // guest; a surviving old peer host retires its copy.
            if old_ext != h && old_ext != target && self.alive[old_ext] {
                self.calls[old_ext].push(Call::ExtRetire {
                    at: restart_at,
                    vm: g as u32,
                });
            }
            self.occ[target] += 1;
            if g >= self.fleet_n {
                self.ctl[g - self.fleet_n].st = St::Resident {
                    host: target,
                    since: restart_at,
                };
            }
        }
        // Arrivals mid-boot on the crashing host re-place through the
        // same evacuation spreading. The fresh placement also cures a
        // stuck handshake: the new host starts the boot from scratch.
        for ci in 0..self.ctl.len() {
            let St::Booting { host, boot_at } = self.ctl[ci].st else {
                continue;
            };
            if host != h {
                continue;
            }
            let g = self.fleet_n + ci;
            self.ctl[ci].epoch += 1;
            if boot_at > tc {
                // The staged boot's future segments die with the host.
                debug_assert_eq!(self.guest_tl[g].last(), Some(&(boot_at, h as u32)));
                self.guest_tl[g].pop();
                self.ext_tl[g].pop();
            }
            self.pending[h] = self.pending[h].saturating_sub(1);
            if restart_at >= self.end {
                self.ctl[ci].st = St::Waiting;
                self.ledger.abandoned += 1;
                continue;
            }
            let target = evacuation_target(&occ_free, &self.alive)
                .expect("no surviving host to evacuate to");
            occ_free[target] = occ_free[target].saturating_sub(1);
            self.pending[target] += 1;
            self.guest_tl[g].push((restart_at, target as u32));
            self.ext_tl[g].push((restart_at, target as u32));
            let spec = self.churn().spec;
            self.calls[target].push(Call::Boot {
                at: restart_at,
                vm: g as u32,
                spec,
                stuck: false,
            });
            self.ctl[ci].st = St::Booting {
                host: target,
                boot_at: restart_at,
            };
            self.ledger.replaced_on_crash += 1;
            let epoch = self.ctl[ci].epoch;
            self.sched
                .push(restart_at, PRIO_BOOT_DONE, Ctrl::BootDone { ci, epoch });
        }
        self.occ[h] = 0;
        self.pending[h] = 0;
    }

    fn on_attempt(&mut self, at: SimTime, ci: usize) {
        let c = self.churn();
        let g = (self.fleet_n + ci) as u32;
        debug_assert!(matches!(self.ctl[ci].st, St::Waiting));
        if self.injector.on_churn_placement() {
            self.ledger.place_fail_faults += 1;
            self.ledger.rejected_transient += 1;
            self.retry_or_reject(at, ci);
            return;
        }
        // Overload-aware headroom: admission cap minus booted tenants
        // minus boots in flight; a dead host or one at its pending
        // depth reports zero.
        let free: Vec<u32> = (0..self.hosts)
            .map(|h| {
                if self.alive[h] && self.pending[h] < c.pending_depth {
                    self.cap.saturating_sub(self.occ[h] + self.pending[h])
                } else {
                    0
                }
            })
            .collect();
        let Some(h) = best_fit(1, &free) else {
            self.ledger.rejected_transient += 1;
            self.retry_or_reject(at, ci);
            return;
        };
        let mut boot_at = at + c.boot_delay;
        // Brownout: if this admission pushes the host to the
        // utilization threshold, the boot defers by a fixed hold and
        // lifts deterministically when the deferred boot lands.
        let util = (self.occ[h] + self.pending[h] + 1) as f64 / self.cap.max(1) as f64;
        if util >= c.brownout_util {
            boot_at += c.brownout_hold;
            self.ledger.brownout_deferrals += 1;
        }
        let stuck = self.injector.on_churn_boot();
        if stuck {
            self.ledger.boot_stall_faults += 1;
        }
        self.calls[h].push(Call::Note {
            at,
            vm: g,
            kind: "vm-admit",
            arg: h as u64,
        });
        if boot_at >= self.end {
            self.ledger.abandoned += 1;
            return;
        }
        self.pending[h] += 1;
        self.ctl[ci].epoch += 1;
        self.ctl[ci].st = St::Booting { host: h, boot_at };
        self.guest_tl[g as usize].push((boot_at, h as u32));
        self.ext_tl[g as usize].push((boot_at, h as u32));
        self.calls[h].push(Call::Boot {
            at: boot_at,
            vm: g,
            spec: c.spec,
            stuck,
        });
        let epoch = self.ctl[ci].epoch;
        if stuck {
            let to = boot_at + c.boot_timeout;
            if to < self.end {
                self.calls[h].push(Call::BootTimeout { at: to, vm: g });
                self.sched
                    .push(to, PRIO_TIMEOUT, Ctrl::StallTimeout { ci, epoch });
            }
            // else: still stuck when the window closes; the run ends
            // around the half-booted slot (not reclaimed, so the
            // conservation invariant deliberately skips it).
        } else {
            self.sched
                .push(boot_at, PRIO_BOOT_DONE, Ctrl::BootDone { ci, epoch });
        }
    }

    fn on_boot_done(&mut self, at: SimTime, ci: usize, epoch: u32) {
        if epoch != self.ctl[ci].epoch {
            return; // invalidated by a crash re-placement
        }
        let St::Booting { host, boot_at } = self.ctl[ci].st else {
            return;
        };
        debug_assert_eq!(boot_at, at);
        self.pending[host] = self.pending[host].saturating_sub(1);
        self.occ[host] += 1;
        self.ctl[ci].st = St::Resident {
            host,
            since: boot_at,
        };
        self.ledger.admitted += 1;
        self.ledger
            .boot_wait_ns
            .push((boot_at - self.ctl[ci].arrival).as_nanos());
        if self.ctl[ci].attempts > 0 {
            self.ledger.retry_successes += 1;
        }
        let depart_at = boot_at + self.ctl[ci].lifetime;
        if depart_at < self.end {
            self.sched.push(depart_at, PRIO_DEPART, Ctrl::Depart { ci });
        }
    }

    fn on_stall_timeout(&mut self, at: SimTime, ci: usize, epoch: u32) {
        if epoch != self.ctl[ci].epoch {
            return; // invalidated by a crash re-placement
        }
        let St::Booting { host, .. } = self.ctl[ci].st else {
            return;
        };
        // The machine-side rollback (Call::BootTimeout) was emitted at
        // placement; here the control plane frees the pending slot and
        // re-enters admission like any transient rejection.
        self.pending[host] = self.pending[host].saturating_sub(1);
        self.ctl[ci].st = St::Waiting;
        self.ledger.rejected_transient += 1;
        self.retry_or_reject(at, ci);
    }

    fn on_depart(&mut self, at: SimTime, ci: usize) {
        if at >= self.end {
            return; // tenant outlives the run
        }
        let g = self.fleet_n + ci;
        let St::Resident { host, since } = self.ctl[ci].st else {
            return;
        };
        if at < since + CROSS_LANE_LOOKAHEAD {
            // Evacuated mid-lifetime: the teardown must land strictly
            // after the restart does.
            self.sched
                .push(since + CROSS_LANE_LOOKAHEAD, PRIO_DEPART, Ctrl::Depart { ci });
            return;
        }
        if let Some(w) = self.move_until[g] {
            if at < w {
                // Destroy racing an in-flight migration: the copy
                // settles first (abort rollback or resume), then the
                // teardown cleans up on whichever host holds the
                // tenant. Deterministic either way; never a leak.
                self.ledger.destroy_races += 1;
                self.sched.push(w, PRIO_DEPART, Ctrl::Depart { ci });
                return;
            }
        }
        debug_assert!(self.alive[host], "depart on a dead host");
        self.calls[host].push(Call::Depart { at, vm: g as u32 });
        // A live-migrated tenant's peer stayed home; retire it there.
        let ext_host = Timeline::host_at(&self.ext_tl[g], at) as usize;
        if ext_host != host && self.alive[ext_host] {
            self.calls[ext_host].push(Call::ExtRetire { at, vm: g as u32 });
        }
        self.occ[host] = self.occ[host].saturating_sub(1);
        self.ctl[ci].st = St::Departed;
        self.ledger.departures += 1;
    }

    /// A transient rejection at `now`: back off exponentially with
    /// deterministic jitter and retry, or exhaust into the permanent
    /// ledger.
    fn retry_or_reject(&mut self, now: SimTime, ci: usize) {
        let c = self.churn();
        let g = (self.fleet_n + ci) as u32;
        self.ctl[ci].attempts += 1;
        let attempts = self.ctl[ci].attempts;
        if attempts > c.max_retries {
            self.ctl[ci].st = St::Rejected;
            self.ledger.rejected_final += 1;
            if now < self.end {
                if let Some(h) = self.alive.iter().position(|a| *a) {
                    self.calls[h].push(Call::Note {
                        at: now,
                        vm: g,
                        kind: "vm-reject",
                        arg: attempts as u64,
                    });
                }
            }
            return;
        }
        let shift = (attempts - 1).min(16);
        let backoff =
            SimDuration::from_nanos(c.retry_backoff.as_nanos().saturating_mul(1u64 << shift));
        let jitter = self.injector.churn_retry_jitter(c.retry_jitter);
        let retry_at = now + backoff + jitter;
        if retry_at >= self.end {
            self.ledger.abandoned += 1;
            return; // stays Waiting, terminally
        }
        if attempts == 1 {
            self.ledger.retried += 1;
        }
        self.ledger.retries += 1;
        self.ctl[ci].st = St::Waiting;
        self.sched.push(retry_at, PRIO_ATTEMPT, Ctrl::Attempt { ci });
    }
}
