//! The windowed telemetry collector.
//!
//! [`TelemetryHooks`] is the testbed-side wrapper around
//! [`es2_metrics::TelemetryRecorder`]: it owns the per-vCPU and
//! per-worker interval state (guest-mode residency, worker on-core
//! residency) and translates machine events into window records. It is
//! only constructed when `Params::telemetry` is set, consumes *sim-time*
//! nanoseconds only, never touches the RNG, and schedules no events —
//! windows are assigned at record time — so telemetered runs are
//! bitwise identical to plain ones (`verify.sh` cmp-checks that).

use es2_metrics::telemetry::{TelemetryGeometry, TelemetryRecorder, TelemetryReport};

/// Annotation capacity per collector. Annotations are discrete events
/// (faults, migrations, quarantines, watchdog actions) whose population
/// is bounded by the fault plan, far below this; the cap is a backstop,
/// with drops counted in the report.
const ANN_CAPACITY: usize = 65_536;

/// Per-machine (or per-lane) telemetry collector; owned by `Machine`
/// when telemetry is on.
#[derive(Clone, Debug)]
pub(crate) struct TelemetryHooks {
    rec: TelemetryRecorder,
    /// Per-vCPU guest-mode entry instant, indexed by the machine-wide
    /// vCPU slot (`vm_vcpu_base[vm] + idx`).
    guest_since: Vec<Option<u64>>,
    /// First vCPU slot of each VM.
    vcpu_base: Vec<usize>,
    /// Per-(VM, worker) on-core start instant, `vm * workers + w`.
    on_core_since: Vec<Option<u64>>,
    workers_per_vm: usize,
}

impl TelemetryHooks {
    /// A collector for `vcpu_counts.len()` VMs with the given per-VM
    /// vCPU counts and geometry.
    pub(crate) fn new(
        vcpu_counts: &[u32],
        workers_per_vm: usize,
        queues_per_vm: usize,
        exit_kinds: usize,
        width_ns: u64,
    ) -> Self {
        let mut vcpu_base = Vec::with_capacity(vcpu_counts.len());
        let mut total = 0usize;
        for &c in vcpu_counts {
            vcpu_base.push(total);
            total += c as usize;
        }
        let workers = workers_per_vm.max(1);
        let geom = TelemetryGeometry {
            width_ns,
            num_vms: vcpu_counts.len(),
            workers_per_vm: workers,
            queues_per_vm: queues_per_vm.max(1),
            exit_kinds,
        };
        TelemetryHooks {
            rec: TelemetryRecorder::new(geom, ANN_CAPACITY),
            guest_since: vec![None; total],
            vcpu_base,
            on_core_since: vec![None; vcpu_counts.len() * workers],
            workers_per_vm: workers,
        }
    }

    #[inline]
    fn vcpu_slot(&self, vm: u32, idx: u32) -> usize {
        self.vcpu_base[vm as usize] + idx as usize
    }

    #[inline]
    fn worker_slot(&self, vm: u32, w: usize) -> usize {
        vm as usize * self.workers_per_vm + w.min(self.workers_per_vm - 1)
    }

    // ---------------- vCPU residency and exits ----------------

    /// One VM exit of `kind` (an `ExitReason` index) at `now`.
    pub(crate) fn on_exit(&mut self, vm: u32, kind: usize, now: u64) {
        self.rec.record_exit(vm, kind, now);
    }

    /// A vCPU entered guest mode. Idempotent like `TigAccount`: a
    /// second enter with the interval already open is ignored.
    pub(crate) fn on_enter_guest(&mut self, vm: u32, idx: u32, now: u64) {
        let slot = self.vcpu_slot(vm, idx);
        if self.guest_since[slot].is_none() {
            self.guest_since[slot] = Some(now);
        }
    }

    /// A vCPU left guest mode; the residency interval is sliced across
    /// the windows it overlaps. Idempotent when no interval is open.
    pub(crate) fn on_leave_guest(&mut self, vm: u32, idx: u32, now: u64) {
        let slot = self.vcpu_slot(vm, idx);
        if let Some(since) = self.guest_since[slot].take() {
            self.rec.record_guest_slice(vm, since, now);
        }
    }

    // ---------------- interrupt path ----------------

    /// One MSI injected: `posted` = exit-less posted path.
    pub(crate) fn on_msi(&mut self, vm: u32, now: u64, posted: bool) {
        self.rec.record_msi(vm, now, posted);
    }

    /// One MSI whose target was picked by ES2 redirection.
    pub(crate) fn on_msi_redirected(&mut self, vm: u32, now: u64) {
        self.rec.record_msi_redirected(vm, now);
    }

    // ---------------- goodput and latency ----------------

    /// Rx completion into the guest ring on ingress `queue`.
    pub(crate) fn on_rx(&mut self, vm: u32, now: u64, queue: usize, bytes: u64) {
        self.rec.record_rx(vm, now, queue, bytes);
    }

    /// Tx completion onto the wire.
    pub(crate) fn on_tx(&mut self, vm: u32, now: u64, bytes: u64) {
        self.rec.record_tx(vm, now, bytes);
    }

    /// One end-to-end rx latency sample.
    pub(crate) fn on_rx_latency(&mut self, vm: u32, now: u64, lat_ns: u64) {
        self.rec.record_rx_latency(vm, now, lat_ns);
    }

    // ---------------- backpressure / containment ----------------

    /// A kick deferred by GCRA backpressure.
    pub(crate) fn on_throttled_kick(&mut self, vm: u32, now: u64) {
        self.rec.record_throttled_kick(vm, now);
    }

    /// A vhost turn cut short by the service budget.
    pub(crate) fn on_budget_deferral(&mut self, vm: u32, now: u64) {
        self.rec.record_budget_deferral(vm, now);
    }

    /// A queue quarantined (`vq` in the annotation payload).
    pub(crate) fn on_quarantine(&mut self, vm: u32, now: u64, vq: u64) {
        self.rec.record_quarantine(vm, now);
        self.rec.annotate(now, vm, "quarantine", vq);
    }

    /// A guest queue reset completed.
    pub(crate) fn on_reset(&mut self, vm: u32, now: u64, vq: u64) {
        self.rec.record_reset(vm, now);
        self.rec.annotate(now, vm, "queue-reset", vq);
    }

    // ---------------- vhost workers ----------------

    /// Worker `w` of `vm` went on-core.
    pub(crate) fn on_worker_on_core(&mut self, vm: u32, w: usize, now: u64) {
        let slot = self.worker_slot(vm, w);
        if self.on_core_since[slot].is_none() {
            self.on_core_since[slot] = Some(now);
        }
    }

    /// Worker `w` of `vm` went off-core; residency sliced into windows.
    pub(crate) fn on_worker_off_core(&mut self, vm: u32, w: usize, now: u64) {
        let slot = self.worker_slot(vm, w);
        if let Some(since) = self.on_core_since[slot].take() {
            self.rec.record_worker_slice(vm, w, since, now);
        }
    }

    /// A handler turn began on worker `w`; `pending` is the backlog
    /// depth behind it (per-window high-water mark).
    pub(crate) fn on_worker_turn(&mut self, vm: u32, w: usize, now: u64, pending: u64) {
        self.rec.record_worker_turn(vm, w, now);
        self.rec.record_worker_pending(vm, w, now, pending);
    }

    /// Sample worker `w`'s backlog depth outside a turn boundary (a
    /// kick landing on a busy worker).
    pub(crate) fn on_worker_pending(&mut self, vm: u32, w: usize, now: u64, pending: u64) {
        self.rec.record_worker_pending(vm, w, now, pending);
    }

    // ---------------- causal annotations ----------------

    /// Join a discrete event onto the stream ("pi-degrade",
    /// "migrate-start", "host-crash", "wd-rekick", …).
    pub(crate) fn annotate(&mut self, now: u64, vm: u32, kind: &'static str, arg: u64) {
        self.rec.annotate(now, vm, kind, arg);
    }

    // ---------------- lifecycle ----------------

    /// Close every open interval at `end_ns` and produce the report.
    pub(crate) fn finish(mut self, end_ns: u64) -> TelemetryReport {
        for slot in 0..self.guest_since.len() {
            if let Some(since) = self.guest_since[slot].take() {
                // Recover (vm) from the slot via the base table.
                let vm = match self.vcpu_base.binary_search(&slot) {
                    Ok(i) => i,
                    Err(i) => i - 1,
                } as u32;
                self.rec.record_guest_slice(vm, since, end_ns);
            }
        }
        for slot in 0..self.on_core_since.len() {
            if let Some(since) = self.on_core_since[slot].take() {
                let vm = (slot / self.workers_per_vm) as u32;
                let w = slot % self.workers_per_vm;
                self.rec.record_worker_slice(vm, w, since, end_ns);
            }
        }
        self.rec.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finish_closes_open_intervals() {
        let mut t = TelemetryHooks::new(&[2, 1], 2, 1, 4, 1_000_000);
        t.on_enter_guest(1, 0, 500_000);
        t.on_worker_on_core(0, 1, 800_000);
        let rep = t.finish(1_200_000);
        assert_eq!(rep.windows.len(), 2);
        // VM 1's vCPU 0 is slot 2; its guest time sliced 0.5ms + 0.2ms.
        assert_eq!(rep.windows[0].vms[1].guest_ns, 500_000);
        assert_eq!(rep.windows[1].vms[1].guest_ns, 200_000);
        // Worker (0,1) on-core 0.2ms + 0.2ms.
        assert_eq!(rep.windows[0].workers[1].on_core_ns, 200_000);
        assert_eq!(rep.windows[1].workers[1].on_core_ns, 200_000);
    }

    #[test]
    fn enter_leave_guest_is_idempotent() {
        let mut t = TelemetryHooks::new(&[1], 1, 1, 4, 1_000_000);
        t.on_enter_guest(0, 0, 100);
        t.on_enter_guest(0, 0, 200); // ignored: interval already open
        t.on_leave_guest(0, 0, 300);
        t.on_leave_guest(0, 0, 400); // ignored: no interval open
        let rep = t.finish(1_000);
        assert_eq!(rep.windows[0].vms[0].guest_ns, 200);
    }
}
