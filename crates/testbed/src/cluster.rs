//! Multi-host cells: N [`Machine`] hosts as conservative event lanes,
//! a best-fit placement scheduler, live migration between hosts, and
//! host-fault injection (crash, degraded host, migration abort).
//!
//! # Topology
//!
//! Every host runs the **same global slot table**: a fleet of `F` VMs
//! means every machine is built with `num_vms = F`, and global VM `g`
//! is slot `g` on whichever host it currently inhabits. Non-resident
//! slots run [`WorkloadSpec::IdleQuiet`] — a HLT-parked guest with an
//! idle peer that generates no events — so a slot costs nothing until
//! a migration installs real state into it. This keeps `FlowId`,
//! `VcpuId` and every per-VM index globally consistent across moves:
//! migration never renumbers anything. Packing capacity
//! ([`ClusterSpec::cap_vms_per_host`]) is an *admission* parameter,
//! deliberately decoupled from the simulated core count.
//!
//! # Placement
//!
//! Admission is best-fit by CPU demand ([`best_fit`]): each arriving
//! VM lands on the host with the least remaining capacity that still
//! fits (ties to the lowest id), which packs hosts tightly and leaves
//! whole hosts empty for consolidation. VMs that fit nowhere are
//! rejected. Crash evacuation uses the opposite rule — least-loaded
//! alive host — because post-crash the goal is spreading, not packing.
//!
//! # Cross-host traffic and determinism
//!
//! Hosts exchange traffic through the [`es2_sim::lane`] mailboxes with
//! the finite [`CROSS_LANE_LOOKAHEAD`] (ROADMAP item 1's windowed
//! protocol, now exercised by real workloads: a migrated VM's external
//! peer stays on its home host, so post-move guest↔peer traffic crosses
//! lanes continuously in both directions). Every cluster decision —
//! placement, crash times, abort draws, blackout lengths, message
//! timestamps — is a pure function of `(spec, seed)`, so serial and
//! windowed-parallel execution are byte-identical at any host count.
//!
//! A crashed host freezes at its crash instant: events at or after the
//! crash time never dispatch, and arrivals at or after it are dropped.
//! The accept/drop decision depends only on timestamps (never on
//! executor scheduling), which is what keeps crash runs deterministic
//! under parallel execution. In-flight events die with the host — a
//! crash *loses* work (and any external peers it hosted for evacuated
//! VMs); live migration by contrast loses nothing.

use std::sync::Arc;

use es2_core::EventPathConfig;
use es2_sim::lane::{run_lanes, run_lanes_parallel, run_lanes_serial, LaneSim, Outbox};
use es2_sim::{FaultInjector, FaultPlan, SimDuration, SimTime};

use crate::churn::{self, Call, ChurnLedger};
use crate::lanes::CROSS_LANE_LOOKAHEAD;
use crate::liveness::{self, LivenessReport};
use crate::machine::{Machine, Topology};
use crate::migrate::{CrossOut, MigCosts, MigLedger, VmSnapshot};
use crate::params::{ChurnSpec, Params};
use crate::results::RunResult;
use crate::workload::WorkloadSpec;

/// A requested live migration: pause `vm` at `at` and move it to host
/// `to`. The source is wherever the VM lives at `at`.
#[derive(Clone, Copy, Debug)]
pub struct PlannedMove {
    pub vm: u32,
    pub to: u32,
    pub at: SimTime,
}

/// Full specification of a multi-host cell run.
#[derive(Clone, Debug)]
pub struct ClusterSpec {
    pub cfg: EventPathConfig,
    pub vcpus_per_vm: u32,
    /// Global VM fleet in arrival order (admission processes this
    /// in order against `cap_vms_per_host`).
    pub fleet: Vec<WorkloadSpec>,
    pub hosts: u32,
    /// Admission capacity per host, in VMs.
    pub cap_vms_per_host: u32,
    pub params: Params,
    pub seed: u64,
    /// Fault plan. The host family (crash/degraded/abort) is drawn at
    /// the cluster level; everything else is applied per host via
    /// [`FaultPlan::for_single_host`].
    pub plan: FaultPlan,
    pub moves: Vec<PlannedMove>,
    pub costs: MigCosts,
    /// Delay between a host crash and its victims' cold restarts.
    pub restart_delay: SimDuration,
    /// Tenant-churn control plane (`None`: static fleet only, and the
    /// run is byte-identical to a spec without the field).
    pub churn: Option<ChurnSpec>,
}

impl ClusterSpec {
    /// A minimal spec: `fleet` over `hosts` hosts, no moves, no faults.
    pub fn new(
        cfg: EventPathConfig,
        vcpus_per_vm: u32,
        fleet: Vec<WorkloadSpec>,
        hosts: u32,
        cap_vms_per_host: u32,
        params: Params,
        seed: u64,
    ) -> Self {
        ClusterSpec {
            cfg,
            vcpus_per_vm,
            fleet,
            hosts,
            cap_vms_per_host,
            params,
            seed,
            plan: FaultPlan::none(),
            moves: Vec::new(),
            costs: MigCosts::default(),
            restart_delay: SimDuration::from_millis(1),
            churn: None,
        }
    }
}

/// Best-fit admission: the host with the least free capacity that still
/// fits `demand` (ties to the lowest id). `None` if nothing fits.
pub fn best_fit(demand: u32, free: &[u32]) -> Option<usize> {
    let mut best: Option<usize> = None;
    for (h, &f) in free.iter().enumerate() {
        if f >= demand && best.is_none_or(|b| f < free[b]) {
            best = Some(h);
        }
    }
    best
}

/// Evacuation placement: the least-loaded alive host (most free; ties
/// to the lowest id), ignoring capacity if the cell is overcommitted —
/// a crash must never strand a victim for lack of headroom.
pub(crate) fn evacuation_target(free: &[u32], alive: &[bool]) -> Option<usize> {
    let mut best: Option<usize> = None;
    for (h, &f) in free.iter().enumerate() {
        if alive[h] && best.is_none_or(|b| f > free[b]) {
            best = Some(h);
        }
    }
    best
}

/// Piecewise-constant VM location maps, shared by every lane for
/// routing cross-host messages. Built entirely at construction time
/// (locations are a deterministic function of the spec), so routing a
/// message is a read-only lookup — no cross-lane state races.
pub(crate) struct Timeline {
    /// Per-VM `(since, host)` guest-location segments, time-ascending.
    guest: Vec<Vec<(SimTime, u32)>>,
    /// Per-VM external-peer location segments (peers move only on
    /// crash evacuation, never on live migration).
    ext: Vec<Vec<(SimTime, u32)>>,
}

impl Timeline {
    pub(crate) fn host_at(segs: &[(SimTime, u32)], at: SimTime) -> u32 {
        debug_assert!(!segs.is_empty(), "location query for an unplaced VM");
        let mut h = segs[0].1;
        for &(t, hh) in segs {
            if t <= at {
                h = hh;
            } else {
                break;
            }
        }
        h
    }

    fn guest_host(&self, vm: u32, at: SimTime) -> u32 {
        Self::host_at(&self.guest[vm as usize], at)
    }

    fn ext_host(&self, vm: u32, at: SimTime) -> u32 {
        Self::host_at(&self.ext[vm as usize], at)
    }
}

/// A message crossing between hosts.
enum HostMsg {
    /// Guest-bound wire packet for slot `vm`.
    Pkt { vm: u32, pkt: es2_net::Packet },
    /// Peer-bound packet for slot `vm`'s external generator.
    ExtPkt { vm: u32, pkt: es2_net::Packet },
    /// A stale MSI chasing its migrated VM.
    StaleMsi { vm: u32, vector: es2_apic::Vector },
    /// A migrating VM's snapshot (arrives when the copy phase ends).
    Snapshot { vm: u32, snap: Box<VmSnapshot> },
}

/// One host of the cell as a conservative event lane.
struct HostLane {
    m: Machine,
    host: u32,
    /// The instant this host dies, if the fault plan crashes it. Events
    /// and arrivals at or after this time never execute.
    crash_at: Option<SimTime>,
    done: bool,
    tl: Arc<Timeline>,
}

impl HostLane {
    fn alive_at(&self, at: SimTime) -> bool {
        self.crash_at.is_none_or(|ca| at < ca)
    }

    fn deliver_local(&mut self, at: SimTime, msg: HostMsg) {
        match msg {
            HostMsg::Pkt { vm, pkt } => self.m.receive_cross(at, vm, pkt),
            HostMsg::ExtPkt { vm, pkt } => self.m.receive_cross_ext(at, vm, pkt),
            HostMsg::StaleMsi { vm, vector } => self.m.receive_cross_msi(at, vm, vector),
            HostMsg::Snapshot { vm, snap } => self.m.receive_snapshot(at, vm, snap),
        }
    }
}

impl LaneSim for HostLane {
    type Msg = HostMsg;

    fn next_time(&self) -> Option<SimTime> {
        if self.done {
            return None;
        }
        let t = self.m.next_event_time()?;
        // A crashed host's clock never reaches its crash instant: the
        // filter (rather than a sticky flag) keeps the lane's behavior a
        // pure function of timestamps under any execution order.
        if self.alive_at(t) {
            Some(t)
        } else {
            None
        }
    }

    fn lookahead(&self) -> Option<SimDuration> {
        // Cluster lanes always have egress routes (migration, forwarded
        // traffic), so they run the windowed protocol.
        Some(CROSS_LANE_LOOKAHEAD)
    }

    fn step(&mut self, outbox: &mut Outbox<HostMsg>) {
        if !self.m.step_one() {
            self.done = true;
        }
        for out in self.m.take_cross_out() {
            let (vm, at, msg) = match out {
                CrossOut::GuestPkt { vm, at, pkt } => (vm, at, HostMsg::Pkt { vm, pkt }),
                CrossOut::ExtPkt { vm, at, pkt } => (vm, at, HostMsg::ExtPkt { vm, pkt }),
                CrossOut::StaleMsi { vm, at, vector } => (vm, at, HostMsg::StaleMsi { vm, vector }),
                CrossOut::Snapshot { vm, at, snap } => (vm, at, HostMsg::Snapshot { vm, snap }),
            };
            let dest = match &msg {
                HostMsg::ExtPkt { .. } => self.tl.ext_host(vm, at),
                _ => self.tl.guest_host(vm, at),
            };
            if dest == self.host {
                // The location flipped back to this host within the
                // forwarding latency (e.g. a move back home): deliver
                // locally instead of a self-send.
                self.deliver_local(at, msg);
            } else {
                outbox.send(dest as usize, at, msg);
            }
        }
    }

    fn receive(&mut self, at: SimTime, msg: HostMsg) {
        if !self.alive_at(at) {
            // Arrivals at or after the crash instant are lost with the
            // host. Timestamp-only, so serial and parallel agree.
            return;
        }
        self.deliver_local(at, msg);
    }
}

/// SplitMix64 host-seed derivation; host 0 keeps the run seed (the same
/// discipline as lane sharding, so a 1-host cell with no moves is the
/// plain machine's RNG universe).
fn host_seed(seed: u64, host: usize) -> u64 {
    if host == 0 {
        return seed;
    }
    let mut z = seed ^ (host as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// One host's final outcome.
pub struct HostOutcome {
    pub host: u32,
    /// `Some(t)`: this host crashed at `t` (its results are partial).
    pub crashed: Option<SimTime>,
    pub result: RunResult,
}

/// Merged outcome of a cell run.
pub struct ClusterResult {
    pub per_host: Vec<HostOutcome>,
    /// Cluster-wide migration/recovery ledger (per-host ledgers merged).
    pub ledger: MigLedger,
    pub admitted: u32,
    pub rejected: u32,
    pub hosts: u32,
    pub cap_vms_per_host: u32,
    /// Final guest location per global slot — fleet VMs first, then
    /// churn slots (`None`: rejected at admission, mid-blackout at end
    /// of run, lost to a crash window, or a churn tenant that departed
    /// or never booted).
    pub final_host: Vec<Option<u32>>,
    /// Liveness over every surviving host, violations prefixed `host{h}`.
    pub liveness: LivenessReport,
    /// Churn control-plane ledger (`None` when churn is disabled).
    pub churn: Option<ChurnLedger>,
}

impl ClusterResult {
    /// Packing density: admitted VMs over total cell capacity.
    pub fn packing_density(&self) -> f64 {
        let cap = (self.hosts * self.cap_vms_per_host) as f64;
        if cap == 0.0 {
            0.0
        } else {
            self.admitted as f64 / cap
        }
    }

    /// Blackout percentile across every completed migration, in µs.
    pub fn blackout_percentile_us(&self, q: f64) -> f64 {
        percentile_ns(&self.ledger.blackout_ns, q) / 1_000.0
    }

    /// Worst per-VM RX p99 across all surviving hosts, in µs (the
    /// consolidation sweep's event-path latency figure). Dormant slots
    /// report 0 and never dominate.
    pub fn worst_rx_p99_us(&self) -> u64 {
        self.per_host
            .iter()
            .filter(|h| h.crashed.is_none())
            .flat_map(|h| h.result.rx_p99_us_per_vm.iter().copied())
            .max()
            .unwrap_or(0)
    }

    /// A stable, complete text digest of the run — the byte-identity
    /// surface for serial-vs-parallel and traced-vs-untraced gates.
    pub fn digest(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "cell hosts={} cap={} admitted={} rejected={} density={:.3}",
            self.hosts,
            self.cap_vms_per_host,
            self.admitted,
            self.rejected,
            self.packing_density()
        );
        for h in &self.per_host {
            let r = &h.result;
            let t = r.modes.totals();
            let _ = writeln!(
                s,
                "host{} crashed={} events={} ctx={} redir={} offline={} \
                 posted={} emul={} deg={} quar={} resets={} rx_p99=[{}]",
                h.host,
                h.crashed.map_or("-".to_string(), |t| t.as_nanos().to_string()),
                r.events_simulated,
                r.host_ctx_switches,
                r.redirections,
                r.offline_predictions,
                t.posted,
                t.emulated,
                t.degradations,
                r.quarantines_total,
                r.queue_resets_total,
                r.rx_p99_us_per_vm
                    .iter()
                    .map(|v| v.to_string())
                    .collect::<Vec<_>>()
                    .join(","),
            );
        }
        let l = &self.ledger;
        let _ = writeln!(
            s,
            "ledger out={} resumed={} aborts={} retargets={} restarts={} blackout_ns={:?}",
            l.out, l.resumed, l.aborts, l.retargets, l.restarts, l.blackout_ns
        );
        let _ = writeln!(
            s,
            "final_host=[{}]",
            self.final_host
                .iter()
                .map(|h| h.map_or("-".to_string(), |v| v.to_string()))
                .collect::<Vec<_>>()
                .join(","),
        );
        // Churn lines exist only when churn is enabled, so churn-off
        // digests keep their legacy bytes (the golden-prefix gates).
        if let Some(c) = &self.churn {
            let _ = writeln!(s, "{}", c.digest_line());
            let l = &self.ledger;
            let _ = writeln!(
                s,
                "churn_rt boots={} departs={} boot_timeouts={} ctl_errors={}",
                l.boots,
                l.departs,
                l.boot_timeouts,
                l.ctl_errors.len()
            );
        }
        s
    }

    /// Orphaned-resource count: conservation-invariant violations (a
    /// reclaimed slot retaining threads, ring entries, vectors, vhost
    /// work, or staged control state). Zero is the leak-proof gate.
    pub fn orphans(&self) -> usize {
        self.liveness
            .violations
            .iter()
            .filter(|v| v.contains("orphan"))
            .count()
    }
}

pub(crate) fn percentile_ns(ns: &[u64], q: f64) -> f64 {
    if ns.is_empty() {
        return 0.0;
    }
    let mut v = ns.to_vec();
    v.sort_unstable();
    let idx = ((v.len() as f64 - 1.0) * q).round() as usize;
    v[idx.min(v.len() - 1)] as f64
}

/// A constructed multi-host cell, ready to run.
pub struct Cluster {
    lanes: Vec<HostLane>,
    placement: Vec<Option<u32>>,
    admitted: u32,
    hosts: u32,
    cap_vms_per_host: u32,
    /// Fleet slots plus pre-allocated churn slots.
    n_total: usize,
    churn: Option<ChurnLedger>,
}

impl Cluster {
    /// Build the cell: admit the fleet, draw host faults and abort
    /// decisions, validate and compile the move/evacuation schedule
    /// into per-host machines and the shared location timeline.
    ///
    /// Panics on schedules the model cannot honor (moves touching a
    /// host that is already dead, moves of one VM spaced closer than
    /// the worst-case blackout, blackouts shorter than the lookahead):
    /// these are plan bugs, not simulated faults.
    pub fn new(spec: ClusterSpec) -> Self {
        let hosts = spec.hosts as usize;
        let n = spec.fleet.len();
        assert!(hosts >= 1, "a cell needs at least one host");
        assert!(
            spec.costs.pause + spec.costs.copy_base + spec.costs.resume >= CROSS_LANE_LOOKAHEAD,
            "blackout floor must cover the cross-lane lookahead"
        );
        assert!(
            spec.restart_delay >= CROSS_LANE_LOOKAHEAD,
            "restart delay must cover the cross-lane lookahead"
        );

        // --- Admission: best-fit by vCPU demand, in arrival order. ---
        let demand = spec.vcpus_per_vm;
        let mut free = vec![spec.cap_vms_per_host * demand; hosts];
        let mut placement: Vec<Option<u32>> = Vec::with_capacity(n);
        for _ in 0..n {
            match best_fit(demand, &free) {
                Some(h) => {
                    free[h] -= demand;
                    placement.push(Some(h as u32));
                }
                None => placement.push(None),
            }
        }
        let admitted = placement.iter().flatten().count() as u32;

        // --- Cluster-level fault draws (host + migration streams). ---
        // Same (plan, seed) as the per-host injectors, but this instance
        // only ever draws the host/migration streams — forked after the
        // seven per-host families, so clean plans draw nothing and
        // host-fault plans leave every per-host stream untouched.
        let mut injector = FaultInjector::new(spec.plan, spec.seed);
        let crash_at: Vec<Option<SimTime>> = (0..hosts)
            .map(|h| injector.on_host_admission(h).map(|d| SimTime::ZERO + d))
            .collect();
        let aborts: Vec<bool> = spec
            .moves
            .iter()
            .map(|_| injector.on_migration_planned())
            .collect();

        // --- Compile the control schedule: moves, crash evacuations,
        //     and (when enabled) the churn lifecycle — chronologically,
        //     into the location timeline and per-host call lists. ---
        // The worst blackout any move can produce bounds how close two
        // moves of the same VM may be scheduled.
        let dirty_cap = 4 * spec.params.ring_size as u64 + spec.params.host_backlog as u64;
        let max_blackout = spec.costs.pause
            + spec.costs.copy_base
            + SimDuration::from_nanos(spec.costs.copy_per_unit.as_nanos().saturating_mul(dirty_cap))
            + spec.costs.resume;
        let end = SimTime::ZERO + spec.params.warmup + spec.params.measure;

        let compiled = churn::compile(
            &spec,
            &placement,
            &crash_at,
            aborts,
            &mut injector,
            max_blackout,
            end,
        );
        let n_total = compiled.slot_specs.len();

        let tl = Arc::new(Timeline {
            guest: compiled.guest_tl,
            ext: compiled.ext_tl,
        });

        // --- Build the host machines over the global slot table (the
        //     static fleet plus one pre-allocated slot per arrival). ---
        let topo = Topology {
            num_vms: n_total as u32,
            vcpus_per_vm: spec.vcpus_per_vm,
        };
        let mut p = spec.params;
        p.num_cores = p.num_cores.max(spec.vcpus_per_vm + n_total as u32);
        let mut lanes = Vec::with_capacity(hosts);
        for (h, &host_crash_at) in crash_at.iter().enumerate().take(hosts) {
            // Churn slots start dormant everywhere; a boot call installs
            // the real workload on the admitting host mid-run.
            let mut specs_h: Vec<WorkloadSpec> = placement
                .iter()
                .zip(&spec.fleet)
                .map(|(p, w)| {
                    if *p == Some(h as u32) {
                        *w
                    } else {
                        WorkloadSpec::IdleQuiet
                    }
                })
                .collect();
            specs_h.resize(n_total, WorkloadSpec::IdleQuiet);
            let mut m = Machine::with_specs_faulted(
                spec.cfg,
                topo,
                specs_h,
                p,
                host_seed(spec.seed, h),
                spec.plan.for_single_host(h),
            );
            m.enable_cluster(h as u32, spec.costs);
            for (g, p) in placement.iter().enumerate() {
                match p {
                    Some(home) if *home != h as u32 => m.mark_remote(g as u32),
                    _ => {}
                }
            }
            // Churn slots are non-resident on every host until booted
            // (unlike a placement-None fleet slot, which stays a local
            // dormant VM): residency is established only by VmBoot.
            for g in n..n_total {
                m.mark_remote(g as u32);
            }
            for call in &compiled.calls[h] {
                match *call {
                    Call::Out { at, vm, abort } => m.schedule_migration_out(at, vm, abort),
                    Call::In { at, vm } => m.schedule_migration_in(at, vm),
                    Call::Restart { at, vm } => {
                        m.schedule_cold_restart(at, vm, compiled.slot_specs[vm as usize])
                    }
                    Call::ExtRetire { at, vm } => m.schedule_ext_retire(at, vm),
                    Call::Boot { at, vm, spec, stuck } => m.schedule_vm_boot(at, vm, spec, stuck),
                    Call::Depart { at, vm } => m.schedule_vm_depart(at, vm),
                    Call::BootTimeout { at, vm } => m.schedule_boot_timeout(at, vm),
                    Call::Note { at, vm, kind, arg } => m.schedule_churn_note(at, vm, kind, arg),
                }
            }
            lanes.push(HostLane {
                m,
                host: h as u32,
                crash_at: host_crash_at,
                done: false,
                tl: Arc::clone(&tl),
            });
        }

        Cluster {
            lanes,
            placement,
            admitted,
            hosts: spec.hosts,
            cap_vms_per_host: spec.cap_vms_per_host,
            n_total,
            churn: compiled.churn,
        }
    }

    /// Initial placement per fleet VM (`None`: rejected at admission).
    pub fn placement(&self) -> &[Option<u32>] {
        &self.placement
    }

    /// Run under the executor config (serial oracle iff `ES2_THREADS=1`,
    /// windowed parallel otherwise — identical bytes either way).
    pub fn run(mut self) -> ClusterResult {
        run_lanes(&mut self.lanes);
        self.collect()
    }

    /// Run with the serial oracle, regardless of config.
    pub fn run_serial(mut self) -> ClusterResult {
        run_lanes_serial(&mut self.lanes);
        self.collect()
    }

    /// Run with the windowed parallel executor at an explicit worker
    /// count (identity-test hook).
    pub fn run_parallel(mut self, threads: usize) -> ClusterResult {
        run_lanes_parallel(&mut self.lanes, threads);
        self.collect()
    }

    fn collect(self) -> ClusterResult {
        let n = self.placement.len();
        // Final locations read off the surviving hosts' residency flags
        // before the machines are consumed. A fleet slot needs its
        // placement guard (a rejected slot is a local dormant VM on
        // every host); a churn slot was marked remote everywhere at
        // build, so its residency flag alone is authoritative.
        let mut final_host: Vec<Option<u32>> = vec![None; self.n_total];
        let mut residency_errors: Vec<String> = Vec::new();
        for lane in &self.lanes {
            if lane.crash_at.is_some() {
                continue;
            }
            let Some(mig) = lane.m.mig.as_ref() else {
                continue;
            };
            for (g, fh) in final_host.iter_mut().enumerate() {
                let resident = if g < n {
                    self.placement[g].is_some() && mig.guest_local[g]
                } else {
                    mig.guest_local[g]
                };
                if resident {
                    if let Some(other) = *fh {
                        residency_errors.push(format!(
                            "VM {g} resident on two hosts ({other} and {})",
                            lane.host
                        ));
                    }
                    *fh = Some(lane.host);
                }
            }
        }

        let mut liveness_merged = LivenessReport::default();
        liveness_merged.violations.extend(residency_errors);
        for lane in &self.lanes {
            if lane.crash_at.is_some() {
                // A crashed host froze mid-flight; its invariants are
                // deliberately not checked (that is the lost work).
                continue;
            }
            let rep = liveness::check(&lane.m);
            liveness_merged.violations.extend(
                rep.violations
                    .into_iter()
                    .map(|v| format!("host{}: {v}", lane.host)),
            );
            if !rep.diagnostics.is_empty() {
                liveness_merged
                    .diagnostics
                    .push_str(&format!("=== host{} ===\n{}", lane.host, rep.diagnostics));
            }
        }

        let mut ledger = MigLedger::default();
        let mut per_host = Vec::with_capacity(self.lanes.len());
        for lane in self.lanes {
            if let Some(l) = lane.m.mig_ledger() {
                ledger.merge(l);
            }
            per_host.push(HostOutcome {
                host: lane.host,
                crashed: lane.crash_at,
                result: RunResult::collect(lane.m),
            });
        }
        // Typed control-plane errors are still failures: promote every
        // one to a liveness violation so nothing fails silently.
        liveness_merged
            .violations
            .extend(ledger.ctl_errors.iter().map(|e| format!("ctl-error: {e}")));

        let rejected = n as u32 - self.admitted;
        ClusterResult {
            per_host,
            ledger,
            admitted: self.admitted,
            rejected,
            hosts: self.hosts,
            cap_vms_per_host: self.cap_vms_per_host,
            final_host,
            liveness: liveness_merged,
            churn: self.churn,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn best_fit_packs_tightest_host_first() {
        // Free capacities: host1 fits snugly (2), host0 loosely (4).
        assert_eq!(best_fit(2, &[4, 2, 8]), Some(1));
        // Ties go to the lowest id.
        assert_eq!(best_fit(2, &[4, 4, 8]), Some(0));
        // Exact fill allowed; nothing fits → None.
        assert_eq!(best_fit(8, &[4, 2, 8]), Some(2));
        assert_eq!(best_fit(9, &[4, 2, 8]), None);
    }

    #[test]
    fn best_fit_admission_fills_then_rejects() {
        // 2 hosts × cap 2 VMs × 1 vCPU: 4 admitted, 5th rejected.
        let mut free = vec![2u32, 2];
        let mut placed = Vec::new();
        for _ in 0..5 {
            match best_fit(1, &free) {
                Some(h) => {
                    free[h] -= 1;
                    placed.push(Some(h));
                }
                None => placed.push(None),
            }
        }
        assert_eq!(
            placed,
            vec![Some(0), Some(0), Some(1), Some(1), None],
            "best-fit packs host 0 full before touching host 1"
        );
    }

    #[test]
    fn evacuation_prefers_least_loaded_alive_host() {
        // Host 0 dead, host 2 has the most headroom.
        assert_eq!(evacuation_target(&[9, 1, 4], &[false, true, true]), Some(2));
        // Overcommit allowed: zero free everywhere still places.
        assert_eq!(evacuation_target(&[0, 0], &[true, true]), Some(0));
        assert_eq!(evacuation_target(&[0, 0], &[false, false]), None);
    }

    #[test]
    fn timeline_lookup_is_piecewise_constant() {
        let t = |us| SimTime::ZERO + SimDuration::from_micros(us);
        let segs = vec![(t(0), 0u32), (t(100), 2), (t(300), 1)];
        assert_eq!(Timeline::host_at(&segs, t(0)), 0);
        assert_eq!(Timeline::host_at(&segs, t(99)), 0);
        assert_eq!(Timeline::host_at(&segs, t(100)), 2);
        assert_eq!(Timeline::host_at(&segs, t(299)), 2);
        assert_eq!(Timeline::host_at(&segs, t(10_000)), 1);
    }
}
