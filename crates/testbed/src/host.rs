//! Host-side execution: the vhost worker threads.
//!
//! Each worker alternates between handler turns over the queue pairs
//! sharded onto it. The TX handler runs the hybrid (or stock) Algorithm-1
//! machine over the guest's TX queue; the RX handler moves ingress packets
//! from the host backlog into the guest's RX ring. Each per-packet step is
//! a timed segment, and the per-turn dispatch overhead is what makes
//! small-quota polling self-sustaining (the guest refills during the
//! dispatch gap). In passthrough mode a queue owns its worker outright and
//! the shared dispatch hop is elided entirely: the turn begins the moment
//! the worker picks the handler up.

use es2_core::PollDecision;
use es2_net::{FaultedArrival, Packet};
use es2_sched::ThreadId;
use es2_virtio::HandlerId;

use crate::machine::{Body, Ev, Machine, SegKind};

impl Machine {
    /// A vhost worker thread finished a segment (or was just scheduled)
    /// and has no active work: pop the next handler or sleep.
    pub(crate) fn vhost_continue(&mut self, tid: ThreadId) {
        let Body::Vhost { vm, w } = self.threads[tid.idx()].body else {
            unreachable!("vhost_continue on a vCPU thread");
        };
        let vmi = vm as usize;
        let wi = w as usize;
        if self.spans.is_some() && self.vms[vmi].cur_handler[wi].is_some() {
            let slot = self.turn_slot(vm, w);
            let win = self.window_open;
            if let Some(tr) = self.spans.as_deref_mut() {
                tr.on_turn_end(vm, slot, self.now.as_nanos(), win);
            }
        }
        self.vms[vmi].cur_handler[wi] = None;
        match self.vms[vmi].worker.next_work(wi) {
            Some(h) => {
                if self.vms[vmi].worker.is_passthrough() {
                    // Queue passthrough: this worker serves exactly one
                    // pair, so there is no handler mux to pay for — skip
                    // the dispatch segment and begin the turn at once.
                    self.vhost_begin_turn(vm, w, h);
                    return;
                }
                // An injected worker stall lengthens the dispatch segment:
                // the thread holds the handler but makes no progress (a
                // host-side hiccup — reclaim, IRQ storm, cgroup throttle).
                let mut dur = self.p.vhost_dispatch;
                if let Some(stall) = self.faults.on_worker_dispatch() {
                    dur += stall;
                }
                self.start_segment(tid, SegKind::VhostDispatch { h }, dur);
            }
            None => {
                let sw = self.sched.block(tid, self.now);
                self.apply_switch(sw);
            }
        }
    }

    /// Dispatch overhead done: begin the handler's turn on worker `w`.
    pub(crate) fn vhost_begin_turn(&mut self, vm: u32, w: u32, h: HandlerId) {
        let vmi = vm as usize;
        if self.spans.is_some() {
            // Consume the correlation ID riding with the pending kick (if
            // any): the signal→pickup stage of the request span ends here.
            let corr = self.vms[vmi].worker.take_kick_corr(h);
            let slot = self.turn_slot(vm, w);
            let win = self.window_open;
            if let Some(tr) = self.spans.as_deref_mut() {
                tr.on_turn_begin(vm, slot, corr, self.now.as_nanos(), win);
            }
        }
        self.vms[vmi].cur_handler[w as usize] = Some(h);
        if self.tel.is_some() {
            let pending = self.vms[vmi].worker.pending_on(w as usize) as u64;
            if let Some(t) = self.tel.as_deref_mut() {
                t.on_worker_turn(vm, w as usize, self.now.as_nanos(), pending);
            }
        }
        let qi = self.vms[vmi].pair_of(h);
        let is_tx = h.idx() % 2 == 0;
        // Guest trust boundary: validate any ring state the guest claims
        // before the backend touches this queue. A violation quarantines
        // the queue (the `DEVICE_NEEDS_RESET` analog) instead of
        // panicking; every other queue — this VM's included — keeps full
        // service.
        let verdict = {
            let pair = &mut self.vms[vmi].pairs[qi];
            let q = if is_tx { &mut pair.tx } else { &mut pair.rx };
            q.device_validate()
        };
        if let Err(err) = verdict {
            self.quarantine_queue(vm, h, err);
            let tid = self.vms[vmi].vhost_tids[w as usize];
            self.vhost_continue(tid);
            return;
        }
        if is_tx {
            // Lazy per-window service-budget replenish: no periodic event
            // is scheduled (the clean event stream stays identical) — the
            // window index is recomputed at each turn start.
            if let Some(bp) = self.p.backpressure {
                let win = self.now.as_nanos() / bp.budget_window.as_nanos().max(1);
                if win != self.vms[vmi].pairs[qi].budget_window_idx {
                    self.vms[vmi].pairs[qi].budget_window_idx = win;
                    self.vms[vmi].pairs[qi].tx_handler.replenish_budget();
                }
            }
            let pair = &mut self.vms[vmi].pairs[qi];
            let (hdl, txq) = (&mut pair.tx_handler, &mut pair.tx);
            hdl.begin_turn(txq);
            self.vhost_tx_step(vm, w, qi);
        } else {
            self.vms[vmi].pairs[qi].rx_turn = 0;
            self.vhost_rx_step(vm, w, qi);
        }
    }

    /// Quarantine one queue of `vm` after a ring-validation violation:
    /// drain and break the queue, drop the handler's pending work, and
    /// schedule the guest-side reset handshake. Service for every other
    /// queue (the same VM's siblings and every other VM) continues
    /// untouched.
    fn quarantine_queue(&mut self, vm: u32, h: HandlerId, err: es2_virtio::RingError) {
        let vmi = vm as usize;
        let qi = self.vms[vmi].pair_of(h);
        let is_tx = h.idx() % 2 == 0;
        let dropped = {
            let pair = &mut self.vms[vmi].pairs[qi];
            let q = if is_tx { &mut pair.tx } else { &mut pair.rx };
            q.quarantine()
        };
        self.vms[vmi].bp.quarantines += 1;
        self.vms[vmi].bp.quarantine_dropped += dropped as u64;
        self.vms[vmi].worker.quarantine(h);
        let label = match err {
            es2_virtio::RingError::DescOutOfRange { .. } => "quarantine:desc-oob",
            es2_virtio::RingError::AvailIdxJump { .. } => "quarantine:avail-jump",
            es2_virtio::RingError::AvailIdxRegress { .. } => "quarantine:avail-regress",
            es2_virtio::RingError::DescChainLoop { .. } => "quarantine:desc-loop",
            es2_virtio::RingError::ChainTooLong { .. } => "quarantine:chain-long",
            es2_virtio::RingError::UsedOverflow { .. } => "quarantine:used-overflow",
        };
        self.tracer.record(self.now, label, vm as u64, h.0 as u64);
        if let Some(t) = self.tel.as_deref_mut() {
            t.on_quarantine(vm, self.now.as_nanos(), h.0 as u64);
        }
        self.q.push(
            self.now + self.p.quarantine_reset_delay,
            Ev::GuestQueueReset { vm, h },
        );
    }

    /// One step of a TX handler's polling loop (Algorithm 1 lines
    /// 12–19, with time charged per request).
    fn vhost_tx_step(&mut self, vm: u32, w: u32, qi: usize) {
        let vmi = vm as usize;
        let tid = self.vms[vmi].vhost_tids[w as usize];
        let pair = &mut self.vms[vmi].pairs[qi];
        match pair.tx_handler.poll_next(&mut pair.tx) {
            PollDecision::Process(pkt) => {
                let cost = self.p.vhost_tx_cost(pkt.bytes);
                self.start_segment(tid, SegKind::VhostTxPkt { pkt }, cost);
            }
            PollDecision::QuotaExhausted => {
                // Stay in polling mode: the handler waits out its
                // switching cooldown (Algorithm 1 line 16 "waiting to be
                // scheduled") and re-enters the work list; the worker
                // meanwhile serves other handlers or sleeps.
                let h = pair.tx_h;
                let at = self.now + self.p.vhost_requeue_gap;
                self.q
                    .push(at, crate::machine::Ev::HandlerRequeue { vm, h });
                self.vhost_continue(tid);
            }
            PollDecision::BudgetExhausted => {
                // The queue's per-window service budget is spent: its
                // remaining work waits for the next window. Only this
                // queue is deferred — the worker immediately serves
                // other handlers or sleeps.
                let h = pair.tx_h;
                self.vms[vmi].bp.budget_deferrals += 1;
                if let Some(t) = self.tel.as_deref_mut() {
                    t.on_budget_deferral(vm, self.now.as_nanos());
                }
                let wns = self
                    .p
                    .backpressure
                    .map(|b| b.budget_window.as_nanos())
                    .unwrap_or(self.p.vhost_requeue_gap.as_nanos())
                    .max(1);
                let next_window = (self.now.as_nanos() / wns + 1) * wns;
                self.q.push(
                    es2_sim::SimTime::ZERO + es2_sim::SimDuration::from_nanos(next_window),
                    crate::machine::Ev::HandlerRequeue { vm, h },
                );
                self.vhost_continue(tid);
            }
            PollDecision::Drained => {
                // Notification re-enabled (back to notification mode for
                // the hybrid handler; stock vhost does this every turn).
                self.vhost_continue(tid);
            }
        }
    }

    /// A TX packet finished host processing on worker `w`: hand it to the
    /// wire and return its descriptor.
    pub(crate) fn complete_vhost_tx(&mut self, vm: u32, w: u32, pkt: Packet) {
        let vmi = vm as usize;
        let h = self.vms[vmi].cur_handler[w as usize].expect("TX completion without a turn");
        let qi = self.vms[vmi].pair_of(h);
        // Return the descriptor; raise a TX-completion interrupt only if
        // the guest armed it (ring-full backpressure).
        let interrupt = self.vms[vmi].pairs[qi].tx.device_push_used(pkt);
        if interrupt {
            let vector = self.vms[vmi].pairs[qi].tx_vector;
            self.deliver_device_msi(vm, vector);
        }
        if let Some(t) = self.tel.as_deref_mut() {
            t.on_tx(vm, self.now.as_nanos(), pkt.bytes as u64);
        }
        let fault = self.faults.on_packet();
        match self.link_to_ext.transmit_faulted(self.now, pkt.bytes, fault) {
            FaultedArrival::Dropped => {}
            FaultedArrival::One(at) => self.q.push(at, Ev::ArriveAtExt { vm, pkt }),
            FaultedArrival::Two(first, second) => {
                self.q.push(first, Ev::ArriveAtExt { vm, pkt });
                self.q.push(second, Ev::ArriveAtExt { vm, pkt });
            }
        }
        self.vhost_tx_step(vm, w, qi);
    }

    /// One step of an RX handler: move a backlog packet into the guest
    /// RX ring.
    fn vhost_rx_step(&mut self, vm: u32, w: u32, qi: usize) {
        let vmi = vm as usize;
        let tid = self.vms[vmi].vhost_tids[w as usize];
        if self.vms[vmi].pairs[qi].rx_turn >= self.p.vhost_rx_burst {
            // Batch quota: requeue immediately (stock vhost behaviour —
            // no ES2 cooldown on the rx batching path). The handler goes
            // back to its own (assigned) worker.
            let h = self.vms[vmi].pairs[qi].rx_h;
            self.vms[vmi].worker.queue_work(h);
            self.vhost_continue(tid);
            return;
        }
        if self.vms[vmi].pairs[qi].backlog.is_empty() {
            self.vhost_continue(tid);
            return;
        }
        if self.vms[vmi].pairs[qi].rx.avail_pending() == 0 {
            // Out of guest buffers: arm the refill notification and park.
            // The guest's next refill kick requeues this handler.
            if self.vms[vmi].pairs[qi].rx.device_enable_notify() {
                // Race: buffers appeared; keep going.
                self.vms[vmi].pairs[qi].rx.device_disable_notify();
            } else {
                self.vhost_continue(tid);
                return;
            }
        }
        // Graceful refusal instead of panicking on "impossible" states: a
        // quarantined queue returns no buffers even when `avail_pending`
        // said otherwise a moment ago, and the turn simply ends.
        let Some(_buffer) = self.vms[vmi].pairs[qi].rx.device_pop() else {
            self.vhost_continue(tid);
            return;
        };
        let Some(pkt) = self.vms[vmi].pairs[qi].backlog.pop() else {
            self.vhost_continue(tid);
            return;
        };
        let cost = self.p.vhost_rx_cost(pkt.bytes);
        self.start_segment(tid, SegKind::VhostRxPkt { pkt }, cost);
    }

    /// An RX packet was copied into the guest by worker `w`: publish it
    /// and maybe interrupt.
    pub(crate) fn complete_vhost_rx(&mut self, vm: u32, w: u32, pkt: Packet) {
        let vmi = vm as usize;
        let h = self.vms[vmi].cur_handler[w as usize].expect("RX completion without a turn");
        let qi = self.vms[vmi].pair_of(h);
        self.vms[vmi].pairs[qi].rx_turn += 1;
        if let Some(t) = self.tel.as_deref_mut() {
            t.on_rx(vm, self.now.as_nanos(), qi, pkt.bytes as u64);
        }
        let interrupt = self.vms[vmi].pairs[qi].rx.device_push_used(pkt);
        if interrupt {
            let vector = self.vms[vmi].pairs[qi].rx_vector;
            self.deliver_device_msi(vm, vector);
        }
        self.vhost_rx_step(vm, w, qi);
    }

    /// A packet arrived at the host NIC for `vm`.
    ///
    /// Paravirtual: RSS-spread it across the device's RX queues, backlog
    /// it and kick that queue's vhost RX handler. Assigned VF: the device
    /// DMAs straight into the guest's RX ring and raises its interrupt —
    /// through the host ISR (legacy) or posted directly (VT-d PI), per
    /// §VII.
    pub(crate) fn on_arrive_host(&mut self, vm: u32, pkt: Packet) {
        let vmi = vm as usize;
        if self.p.device == crate::params::DeviceKind::AssignedVf {
            // The VF model stays single-queue: pair 0 is the VF ring.
            if self.vms[vmi].pairs[0].rx.device_pop().is_none() {
                // VF RX ring out of buffers: hardware drop.
                self.vms[vmi].vf_drops += 1;
                return;
            }
            let interrupt = self.vms[vmi].pairs[0].rx.device_push_used(pkt);
            if interrupt {
                if self.cfg.use_pi && !self.vms[vmi].pi_failed {
                    // VT-d PI: posted without hypervisor involvement.
                    let vector = self.vms[vmi].pairs[0].rx_vector;
                    self.deliver_device_msi(vm, vector);
                } else {
                    // Legacy assignment: the host fields the physical IRQ
                    // first, then injects.
                    self.q
                        .push(self.now + self.p.sriov_host_isr, Ev::VfIrq { vm });
                }
            }
            return;
        }
        let nq = self.vms[vmi].pairs.len() as u32;
        let qi = es2_net::rss_queue(pkt.flow.0, pkt.id, nq) as usize;
        if self.vms[vmi].pairs[qi].backlog.push(pkt) {
            let h = self.vms[vmi].pairs[qi].rx_h;
            let (w, _) = self.vms[vmi].worker.queue_work(h);
            if self.tel.is_some() {
                let pending = self.vms[vmi].worker.pending_on(w) as u64;
                if let Some(t) = self.tel.as_deref_mut() {
                    t.on_worker_pending(vm, w, self.now.as_nanos(), pending);
                }
            }
            let tid = self.vms[vmi].vhost_tids[w];
            self.wake_thread(tid);
        }
        // else: tail-dropped (counted by the NicQueue) — where UDP receive
        // overload loses datagrams.
    }
}
