//! Calibrated simulation parameters.
//!
//! All path lengths are end-to-end software costs on the simulated 2.3 GHz
//! Xeon (E5-4610 v2). They were calibrated so the **Baseline**
//! configuration reproduces the paper's absolute operating point for the
//! 1-vCPU micro tests (Table I / Fig. 4a / Fig. 5), and the behaviour of
//! the other configurations then *emerges* from the mechanisms rather than
//! being dialed in. Three relationships are load-bearing:
//!
//! 1. **vhost TX is marginally faster than the exit-free guest TX path**
//!    (`Δ = c_guest − c_vhost ≈ 0.25 µs`). A handler turn of quota `q`
//!    plus the per-turn dispatch gap `g` sees `(q·c_vhost + g)/c_guest`
//!    new requests; polling self-sustains iff that is ≥ `q`, i.e.
//!    `q ≲ g/Δ ≈ 8` — which is exactly the knee the paper's Fig. 4a
//!    selects (`quota = 8` for UDP, smaller for bursty TCP).
//! 2. **The exit-laden guest path is much slower than vhost** (the kick
//!    exit adds ~2.5 µs), so in notification mode vhost always catches up,
//!    re-arms notifications, sleeps — and every fresh burst pays a kick.
//!    This is the bistability that makes the hybrid scheme effective.
//! 3. **Interrupt-path costs** (kick IPI, injection, EOI exit) appear only
//!    on the emulated path; PI replaces them with a ~250 ns microcode
//!    sync. Scheduling latencies come from the CFS model, not from
//!    constants here.

use es2_hypervisor::ExitCosts;
use es2_sched::SchedParams;
use es2_sim::SimDuration;

use crate::workload::WorkloadSpec;

/// The device model serving the VMs.
///
/// The paper's design is paravirtual (virtio/vhost); §VII argues the same
/// two optimizations apply to direct device assignment (SR-IOV), where the
/// data path already bypasses the hypervisor and only the interrupt path
/// remains: legacy assignment still takes hypervisor interventions per
/// interrupt, VT-d posted interrupts remove them, and intelligent
/// redirection then removes the vCPU-scheduling latency.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DeviceKind {
    /// virtio + vhost-net (the paper's main model).
    Paravirtual,
    /// An SR-IOV virtual function assigned to the VM (§VII).
    AssignedVf,
}

/// Per-VM vhost backpressure / overload control. All mechanisms charge
/// the misbehaving VM itself: throttled kicks are delivered late to *its*
/// queue, an exhausted service budget defers *its* poll work.
#[derive(Clone, Copy, Debug)]
pub struct BackpressureParams {
    /// Sustained guest-kick admission rate (kicks/sec) of the per-VM
    /// token bucket. Legitimate workloads kick at the worker's sleep/wake
    /// frequency (≈ thousands/sec), far below this; only a storm hits it.
    pub kick_rate: f64,
    /// Burst tolerance: kicks admitted back-to-back before the bucket
    /// starts deferring.
    pub kick_burst: u32,
    /// Requests the vhost worker will serve for one VM per service
    /// window before deferring the rest of its work.
    pub service_budget: u32,
    /// Length of one service-budget window.
    pub budget_window: SimDuration,
}

impl Default for BackpressureParams {
    fn default() -> Self {
        BackpressureParams {
            kick_rate: 50_000.0,
            kick_burst: 32,
            service_budget: 4096,
            budget_window: SimDuration::from_millis(1),
        }
    }
}

/// Tenant-churn control plane for a cluster run: a deterministic VM
/// lifecycle engine that drives arrival/departure streams into the
/// best-fit admission path mid-run.
///
/// Embedded in `ClusterSpec` as `Option<ChurnSpec>` with the same
/// contract as every other optional subsystem: `None` (the default)
/// means churn is off, the churn RNG streams are never drawn from, and
/// the run is byte-identical to a pre-churn cluster. Inter-arrival gaps
/// and resident lifetimes are heavy-tailed (bounded Pareto, drawn
/// upfront from dedicated fault-injector streams forked after the nine
/// pre-existing ones).
#[derive(Clone, Copy, Debug)]
pub struct ChurnSpec {
    /// Churn arrivals to generate (each gets its own global VM slot
    /// appended after the static fleet).
    pub arrivals: u32,
    /// Workload each churn tenant runs once booted.
    pub spec: WorkloadSpec,
    /// When the first arrival lands, relative to run start.
    pub first_arrival: SimDuration,
    /// Scale of the heavy-tailed gap between consecutive arrivals.
    pub mean_interarrival: SimDuration,
    /// Scale of the heavy-tailed resident lifetime (boot → departure).
    pub mean_lifetime: SimDuration,
    /// Control-plane latency from a successful placement to the boot
    /// landing on the host.
    pub boot_delay: SimDuration,
    /// How long a partial boot (stuck mid-handshake) may sit before the
    /// control plane rolls it back and retries the arrival.
    pub boot_timeout: SimDuration,
    /// Placement attempts per arrival before it lands in the
    /// permanently-rejected ledger (first attempt + `max_retries`
    /// retries).
    pub max_retries: u32,
    /// Base retry backoff; attempt `k` waits `retry_backoff · 2^k` plus
    /// jitter.
    pub retry_backoff: SimDuration,
    /// Uniform jitter window added to each backoff (deterministic: drawn
    /// from the dedicated retry stream).
    pub retry_jitter: SimDuration,
    /// Maximum boots in flight per host; a host at this depth is skipped
    /// by placement even if it has slot capacity.
    pub pending_depth: u32,
    /// Host-utilization threshold (resident + pending over capacity) at
    /// or above which new boots on that host are deferred (brownout).
    pub brownout_util: f64,
    /// How long a brownout defers each affected boot; lifts
    /// deterministically after this hold.
    pub brownout_hold: SimDuration,
}

impl Default for ChurnSpec {
    fn default() -> Self {
        ChurnSpec {
            arrivals: 8,
            spec: WorkloadSpec::Ping,
            first_arrival: SimDuration::from_millis(5),
            mean_interarrival: SimDuration::from_millis(4),
            mean_lifetime: SimDuration::from_millis(40),
            boot_delay: SimDuration::from_millis(1),
            boot_timeout: SimDuration::from_millis(4),
            max_retries: 4,
            retry_backoff: SimDuration::from_millis(1),
            retry_jitter: SimDuration::from_micros(200),
            pending_depth: 2,
            brownout_util: 0.9,
            brownout_hold: SimDuration::from_millis(2),
        }
    }
}

/// Full parameter set for a testbed run.
#[derive(Clone, Copy, Debug)]
pub struct Params {
    /// Physical cores on the host (the paper's servers have 8).
    pub num_cores: u32,
    /// CFS parameters.
    pub sched: SchedParams,
    /// Upper bound of per-tick unaccounted host work charged to the
    /// running thread's vruntime (host interrupts, kworkers). Provides the
    /// natural drift that desynchronizes per-core scheduler rotations.
    pub sched_tick_noise: SimDuration,
    /// VM-exit cost model.
    pub costs: ExitCosts,
    /// Cost of a host context switch (added to the incoming thread).
    pub ctx_switch: SimDuration,
    /// Indirect cost of a VM exit on the guest: the cache/TLB pollution
    /// (§II-B "may cause serious cache pollution") charged to the first
    /// guest work item after re-entry. This is what makes the
    /// notification-mode guest path visibly slower than the polling-mode
    /// path *beyond* the direct exit cost.
    pub exit_cache_penalty: SimDuration,

    // ---- guest path lengths ----
    /// Guest per-message base cost for TCP send (syscall + TCP/IP stack).
    pub guest_tcp_msg: SimDuration,
    /// Guest per-datagram base cost for UDP send (syscall + UDP/IP stack).
    pub guest_udp_msg: SimDuration,
    /// Guest per-segment virtio TX enqueue cost.
    pub guest_tx_seg: SimDuration,
    /// Guest TX copy/checksum cost per KiB of payload.
    pub guest_tx_ns_per_kb: u64,
    /// Guest NAPI per-packet receive base cost.
    pub guest_rx_pkt: SimDuration,
    /// Guest RX processing cost per KiB of payload.
    pub guest_rx_ns_per_kb: u64,
    /// Guest interrupt handler entry/exit overhead.
    pub guest_irq_entry: SimDuration,
    /// Guest TX-completion cleanup handler body.
    pub guest_txclean: SimDuration,
    /// Guest memcached per-op service cost.
    pub serve_mc: SimDuration,
    /// Guest Apache cost to serve the 8 KB page (headers + 6 segments).
    pub serve_http_page: SimDuration,
    /// Guest Apache cost for httperf's small page.
    pub serve_http_small: SimDuration,
    /// Guest local-timer handler cost.
    pub guest_timer_work: SimDuration,
    /// Guest local-timer period (250 Hz).
    pub guest_timer_period: SimDuration,
    /// NAPI poll weight (packets per poll).
    pub napi_weight: u32,
    /// One in `burst_denom` sender app steps is a burst (softirq/socket
    /// batching): several messages produced back-to-back and exposed to
    /// the ring as one batch. Bursts are what first push a queue past the
    /// hybrid handler's quota and flip it into polling mode.
    pub burst_denom: u32,
    /// Minimum burst length (messages).
    pub burst_min: u32,
    /// Burst length spread: length is `burst_min + uniform(0..burst_span)`.
    pub burst_span: u32,
    /// Burn-script segment length (decision granularity of the lowest-prio
    /// guest CPU hog).
    pub burn_slice: SimDuration,

    // ---- vhost path lengths ----
    /// Worker overhead per handler turn (work-list pop, state load).
    pub vhost_dispatch: SimDuration,
    /// Extra overhead when a handler re-enters the work list after quota
    /// exhaustion — the "higher frequency of switching among the handlers
    /// in the back-end I/O thread" cost the paper weighs against the
    /// polling benefit when selecting the quota (§VI-B). Together with
    /// `vhost_dispatch` this is the `g` of the polling-persistence
    /// inequality `q* = g / (c_guest − c_vhost)`.
    pub vhost_requeue_gap: SimDuration,
    /// vhost TX per-packet base cost (tap sendmsg, host stack, doorbell).
    pub vhost_tx_base: SimDuration,
    /// vhost TX copy cost per KiB on the wire.
    pub vhost_tx_ns_per_kb: u64,
    /// vhost RX per-packet base cost (copy into guest buffers, used ring).
    pub vhost_rx_base: SimDuration,
    /// vhost RX copy cost per KiB.
    pub vhost_rx_ns_per_kb: u64,
    /// RX packets the rx handler moves per turn (vhost's own batching).
    pub vhost_rx_burst: u32,

    // ---- rings and queues ----
    /// Virtqueue size (vhost-net default 256).
    pub ring_size: u16,
    /// Host-side per-VM ingress backlog (NIC ring + socket backlog).
    /// Multi-queue devices get one backlog of this capacity per pair
    /// (each RX queue owns a NIC ring slice).
    pub host_backlog: usize,

    // ---- multi-queue virtio ----
    /// TX/RX virtqueue pairs per VM (virtio-net multiqueue; one pair
    /// per vCPU is the canonical setting). 1 = the legacy
    /// single-queue device, byte-identical to pre-multi-queue runs.
    pub queues_per_vm: u32,
    /// vhost workers per VM's backend. 0 = resolve from
    /// `ES2_VHOST_WORKERS` via [`es2_sim::exec::effective_vhost_workers`]
    /// (default 1, the legacy single-worker mux).
    pub vhost_workers: u32,
    /// How queue pairs are assigned to workers.
    pub shard_policy: es2_virtio::ShardPolicy,

    // ---- transport ----
    /// Guest-side TCP send window in segments (socket buffer over MSS).
    pub tcp_window: u32,
    /// External generator's TCP send window in segments (the bare-metal
    /// sender's auto-tuned socket buffer is large).
    pub ext_tcp_window: u32,
    /// Delayed-ACK flush timeout.
    pub delayed_ack_timeout: SimDuration,

    // ---- external server ----
    /// Per-packet processing on the (bare-metal) traffic generator.
    pub ext_pkt: SimDuration,

    // ---- device model ----
    /// Which virtual device serves the VMs (paravirtual vhost-net, or an
    /// SR-IOV virtual function for the §VII applicability experiments).
    pub device: DeviceKind,
    /// Host-side ISR cost for a legacy (non-VT-d-PI) assigned-device
    /// interrupt: the hypervisor fields the physical IRQ and converts it
    /// into a virtual-interrupt injection.
    pub sriov_host_isr: SimDuration,
    /// VF DMA + doorbell cost per packet on the assigned-device data path.
    pub sriov_dma: SimDuration,

    // ---- ablations ----
    /// Override the redirection engine's policies (None = the paper's
    /// least-loaded-sticky / offline-head). Used by the ablation benches.
    pub redirect_policies: Option<(es2_core::TargetPolicy, es2_core::OfflinePolicy)>,

    // ---- overload control (hostile-guest hardening) ----
    /// Per-VM kick throttle and vhost service budget (`None` = off, the
    /// default — existing runs stay byte-identical).
    pub backpressure: Option<BackpressureParams>,
    /// Delay between a queue quarantine (ring-validation violation) and
    /// the guest driver noticing the `DEVICE_NEEDS_RESET` analog and
    /// resetting the queue.
    pub quarantine_reset_delay: SimDuration,

    // ---- fault recovery (used only under an active fault plan) ----
    /// Liveness-watchdog scan period: how often stuck rings are re-kicked
    /// and lost device interrupts re-raised.
    pub watchdog_period: SimDuration,
    /// Guest-side TCP retransmission timeout.
    pub guest_rto: SimDuration,
    /// How often the guest RTO check runs.
    pub guest_rto_check: SimDuration,

    // ---- measurement ----
    /// Warm-up before counters open.
    pub warmup: SimDuration,
    /// Measurement window length.
    pub measure: SimDuration,

    // ---- observability ----
    /// Enable the event-path flight recorder (`es2_metrics::span`):
    /// correlation-ID spans with per-stage latency histograms, returned
    /// in `RunResult::spans`. Observational and sim-time only — a traced
    /// run's figures are bitwise identical to an untraced run's
    /// (`verify.sh` cmp-checks exactly that).
    pub trace: bool,
    /// Capacity of the flight recorder's bounded Chrome-trace event log
    /// (0 = stage histograms only, no event log).
    pub trace_events: u32,
    /// Enable the windowed telemetry pipeline
    /// (`es2_metrics::telemetry`): fixed-width sim-time windows of
    /// per-VM/per-queue/per-worker gauges plus the causal annotation
    /// stream, returned in `RunResult::telemetry`. Observational and
    /// sim-time only — a telemetered run's figures are bitwise
    /// identical to an untelemetered run's (`verify.sh` cmp-checks
    /// exactly that).
    pub telemetry: bool,
    /// Telemetry window width (sim time). Windows are assigned at
    /// record time (`window = now / width`); no boundary events are
    /// scheduled.
    pub telemetry_window: SimDuration,
}

impl Default for Params {
    fn default() -> Self {
        Params {
            num_cores: 8,
            sched: SchedParams::default(),
            sched_tick_noise: SimDuration::from_micros(100),
            costs: ExitCosts::default(),
            ctx_switch: SimDuration::from_nanos(800),
            exit_cache_penalty: SimDuration::from_nanos(2500),

            guest_tcp_msg: SimDuration::from_nanos(6800),
            guest_udp_msg: SimDuration::from_nanos(6000),
            guest_tx_seg: SimDuration::from_nanos(300),
            guest_tx_ns_per_kb: 1000,
            guest_rx_pkt: SimDuration::from_nanos(1500),
            guest_rx_ns_per_kb: 300,
            guest_irq_entry: SimDuration::from_nanos(900),
            guest_txclean: SimDuration::from_nanos(1000),
            serve_mc: SimDuration::from_nanos(2500),
            serve_http_page: SimDuration::from_micros(12),
            serve_http_small: SimDuration::from_micros(450),
            guest_timer_work: SimDuration::from_nanos(1500),
            guest_timer_period: SimDuration::from_millis(4),
            napi_weight: 64,
            burst_denom: 24,
            burst_min: 4,
            burst_span: 8,
            burn_slice: SimDuration::from_micros(200),

            vhost_dispatch: SimDuration::from_nanos(1200),
            vhost_requeue_gap: SimDuration::from_nanos(9000),
            vhost_tx_base: SimDuration::from_nanos(4650),
            vhost_tx_ns_per_kb: 1100,
            vhost_rx_base: SimDuration::from_nanos(1800),
            vhost_rx_ns_per_kb: 800,
            vhost_rx_burst: 64,

            ring_size: 256,
            host_backlog: 512,

            queues_per_vm: 1,
            vhost_workers: 0,
            shard_policy: es2_virtio::ShardPolicy::Mux,

            tcp_window: 85,
            ext_tcp_window: 1000,
            delayed_ack_timeout: SimDuration::from_millis(40),

            ext_pkt: SimDuration::from_nanos(500),

            device: DeviceKind::Paravirtual,
            sriov_host_isr: SimDuration::from_nanos(1800),
            sriov_dma: SimDuration::from_nanos(900),

            redirect_policies: None,

            backpressure: None,
            quarantine_reset_delay: SimDuration::from_micros(100),

            watchdog_period: SimDuration::from_micros(500),
            guest_rto: SimDuration::from_millis(8),
            guest_rto_check: SimDuration::from_millis(5),

            warmup: SimDuration::from_millis(200),
            measure: SimDuration::from_secs(1),

            trace: false,
            trace_events: 0,
            telemetry: false,
            telemetry_window: SimDuration::from_millis(1),
        }
    }
}

impl Params {
    /// Shorter warm-up/measurement for fast unit tests.
    pub fn fast_test() -> Self {
        Params {
            warmup: SimDuration::from_millis(50),
            measure: SimDuration::from_millis(300),
            ..Params::default()
        }
    }

    /// Pending-event capacity hint for a machine's event queue, derived
    /// from the sources of concurrently scheduled events: per-core tick
    /// chains, per-vCPU guest timers, and in-flight ring/backlog entries
    /// (each can carry a wire or completion event). Sizing the queue from
    /// the topology instead of a fixed constant keeps micro runs lean and
    /// avoids regrowth in wide multiplexed runs.
    pub fn event_capacity_hint(&self, num_vms: u32, vcpus_per_vm: u32) -> usize {
        let timers = (self.num_cores + num_vms * vcpus_per_vm) as usize;
        let pairs = self.queues_per_vm.max(1) as usize;
        let inflight =
            2 * self.ring_size as usize * pairs * num_vms as usize + self.host_backlog;
        (timers + inflight + 64).next_power_of_two()
    }

    /// The resolved vhost worker count for this parameter set: the
    /// explicit `vhost_workers` if non-zero, else the `ES2_VHOST_WORKERS`
    /// environment default — always clamped to the pair count so every
    /// worker owns at least one potential pair.
    pub fn effective_vhost_workers(&self) -> usize {
        let pairs = self.queues_per_vm.max(1) as usize;
        if self.vhost_workers > 0 {
            (self.vhost_workers as usize).min(pairs.max(1))
        } else {
            es2_sim::exec::effective_vhost_workers(pairs)
        }
    }

    /// Size-dependent cost helper: `base + ns_per_kb · bytes / 1024`.
    pub fn size_cost(base: SimDuration, ns_per_kb: u64, bytes: u32) -> SimDuration {
        base + SimDuration::from_nanos(ns_per_kb * bytes as u64 / 1024)
    }

    /// vhost TX cost for a frame of `bytes`.
    pub fn vhost_tx_cost(&self, bytes: u32) -> SimDuration {
        Self::size_cost(self.vhost_tx_base, self.vhost_tx_ns_per_kb, bytes)
    }

    /// vhost RX cost for a frame of `bytes`.
    pub fn vhost_rx_cost(&self, bytes: u32) -> SimDuration {
        Self::size_cost(self.vhost_rx_base, self.vhost_rx_ns_per_kb, bytes)
    }

    /// Guest TX path cost for one message of `payload` bytes in `segs`
    /// segments (excluding kick exits).
    pub fn guest_tx_cost(&self, tcp: bool, payload: u32, segs: u32) -> SimDuration {
        let base = if tcp {
            self.guest_tcp_msg
        } else {
            self.guest_udp_msg
        };
        Self::size_cost(
            base + self.guest_tx_seg * segs as u64,
            self.guest_tx_ns_per_kb,
            payload,
        )
    }

    /// Guest NAPI cost for one received frame.
    pub fn guest_rx_cost(&self, bytes: u32) -> SimDuration {
        Self::size_cost(self.guest_rx_pkt, self.guest_rx_ns_per_kb, bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use es2_hypervisor::ExitReason;

    #[test]
    fn defaults_are_sane() {
        let p = Params::default();
        assert_eq!(p.num_cores, 8);
        assert!(p.ring_size.is_power_of_two());
        assert!(p.tcp_window > 0 && (p.tcp_window as u16) < p.ring_size);
        assert!(p.warmup < p.measure);
        // Multi-queue defaults are the legacy single-queue mux device.
        assert_eq!(p.queues_per_vm, 1);
        assert_eq!(p.vhost_workers, 0, "0 = env-resolved, default 1");
        assert_eq!(p.shard_policy, es2_virtio::ShardPolicy::Mux);
    }

    #[test]
    fn worker_resolution_clamps_to_pair_count() {
        let mut p = Params::default();
        p.queues_per_vm = 2;
        p.vhost_workers = 4;
        assert_eq!(p.effective_vhost_workers(), 2, "worker per pair at most");
        p.vhost_workers = 1;
        assert_eq!(p.effective_vhost_workers(), 1);
        p.queues_per_vm = 8;
        p.vhost_workers = 3;
        assert_eq!(p.effective_vhost_workers(), 3);
    }

    #[test]
    fn event_capacity_scales_with_queue_pairs() {
        let mut p = Params::default();
        let single = p.event_capacity_hint(64, 2);
        p.queues_per_vm = 4;
        assert!(p.event_capacity_hint(64, 2) > single);
    }

    #[test]
    fn vhost_is_marginally_faster_than_polling_guest() {
        // Relationship 1: 0 < Δ = c_guest − c_vhost, small enough that the
        // dispatch gap sustains polling at the paper's quotas.
        let p = Params::default();
        for (tcp, payload) in [(false, 256u32), (true, 1024)] {
            let wire = payload + es2_net::packet::HEADER_BYTES;
            let c_g = p.guest_tx_cost(tcp, payload, 1).as_nanos() as f64;
            let c_v = p.vhost_tx_cost(wire).as_nanos() as f64;
            let delta = c_g - c_v;
            assert!(
                delta > 0.0,
                "vhost must out-pace the polling guest ({tcp}, {payload})"
            );
            // Effective per-cycle slack: dispatch overhead + the quota
            // requeue cooldown.
            let g = (p.vhost_dispatch + p.vhost_requeue_gap).as_nanos() as f64;
            let q_star = g / delta;
            assert!(
                (2.0..24.0).contains(&q_star),
                "polling knee q*={q_star} should bracket the paper's quotas"
            );
        }
    }

    #[test]
    fn notification_mode_guest_is_much_slower_than_vhost() {
        // Relationship 2: with kick exits the guest falls behind, vhost
        // drains and sleeps, and kicks sustain themselves.
        let p = Params::default();
        let kick = p.costs.exit_cost(ExitReason::IoInstruction).as_nanos() as f64;
        for (tcp, payload) in [(false, 256u32), (true, 1024)] {
            let wire = payload + es2_net::packet::HEADER_BYTES;
            let c_g = p.guest_tx_cost(tcp, payload, 1).as_nanos() as f64 + kick;
            let c_v = p.vhost_tx_cost(wire).as_nanos() as f64;
            assert!(c_g > c_v * 1.3, "exit-laden path must trail vhost clearly");
        }
    }

    #[test]
    fn baseline_udp_operating_point_is_order_100k_exits() {
        let p = Params::default();
        let kick = p.costs.exit_cost(ExitReason::IoInstruction);
        let per_pkt = p.guest_tx_cost(false, 256, 1) + kick;
        let rate = 1e9 / per_pkt.as_nanos() as f64;
        assert!((80_000.0..250_000.0).contains(&rate), "rate={rate}");
    }

    #[test]
    fn size_cost_arithmetic() {
        let c = Params::size_cost(SimDuration::from_nanos(1000), 1024, 2048);
        assert_eq!(c, SimDuration::from_nanos(1000 + 2048));
    }
}
