//! One runner per table/figure of the paper's evaluation (§VI).
//!
//! Each function is deterministic in its seed and returns the measured
//! series; the `es2-bench` crate renders them next to the paper's numbers.

use es2_core::{EventPathConfig, HybridParams};
use es2_workloads::NetperfSpec;

use crate::machine::{Machine, Topology};
use crate::params::Params;
use crate::results::RunResult;
use crate::workload::WorkloadSpec;

/// Run one configuration of one workload on a topology.
pub fn run_one(
    cfg: EventPathConfig,
    topo: Topology,
    spec: WorkloadSpec,
    params: Params,
    seed: u64,
) -> RunResult {
    Machine::new(cfg, topo, spec, params, seed).run()
}

/// Table I: VM-exit cause breakdown for 1-vCPU TCP send, Baseline vs PI.
pub fn table1(params: Params, seed: u64) -> Vec<RunResult> {
    let spec = WorkloadSpec::Netperf(NetperfSpec::tcp_send(1024));
    [EventPathConfig::baseline(), EventPathConfig::pi()]
        .into_iter()
        .map(|cfg| run_one(cfg, Topology::micro(), spec, params, seed))
        .collect()
}

/// One Fig. 4 point: I/O-instruction exit rate under PI+H with a quota.
pub fn fig4_point(
    proto_udp: bool,
    msg_bytes: u32,
    quota: u32,
    params: Params,
    seed: u64,
) -> RunResult {
    let np = if proto_udp {
        NetperfSpec::udp_send(msg_bytes)
    } else {
        NetperfSpec::tcp_send(msg_bytes)
    };
    run_one(
        EventPathConfig::pi_h(quota),
        Topology::micro(),
        WorkloadSpec::Netperf(np),
        params,
        seed,
    )
}

/// Fig. 4: quota sweep (plus the baseline reference point).
pub fn fig4(
    proto_udp: bool,
    msg_bytes: u32,
    params: Params,
    seed: u64,
) -> Vec<(String, RunResult)> {
    let np = if proto_udp {
        NetperfSpec::udp_send(msg_bytes)
    } else {
        NetperfSpec::tcp_send(msg_bytes)
    };
    let mut out = Vec::new();
    out.push((
        "baseline".to_string(),
        run_one(
            EventPathConfig::baseline(),
            Topology::micro(),
            WorkloadSpec::Netperf(np),
            params,
            seed,
        ),
    ));
    for quota in [64u32, 32, 16, 8, 4, 2] {
        out.push((
            format!("quota={quota}"),
            fig4_point(proto_udp, msg_bytes, quota, params, seed),
        ));
    }
    out
}

/// Fig. 5: exit breakdown + TIG for send/receive TCP/UDP under
/// Baseline / PI / PI+H.
pub fn fig5(send: bool, udp: bool, params: Params, seed: u64) -> Vec<RunResult> {
    let quota = if udp {
        HybridParams::UDP_QUOTA
    } else {
        HybridParams::TCP_QUOTA
    };
    let np = match (send, udp) {
        (true, false) => NetperfSpec::tcp_send(1024),
        (true, true) => NetperfSpec::udp_send(1024),
        (false, false) => NetperfSpec::tcp_receive(1024),
        (false, true) => NetperfSpec::udp_receive(1024),
    };
    [
        EventPathConfig::baseline(),
        EventPathConfig::pi(),
        EventPathConfig::pi_h(quota),
    ]
    .into_iter()
    .map(|cfg| {
        run_one(
            cfg,
            Topology::micro(),
            WorkloadSpec::Netperf(np),
            params,
            seed,
        )
    })
    .collect()
}

/// The four configurations at the paper's TCP quota, multiplexed topology.
fn four_configs() -> [EventPathConfig; 4] {
    EventPathConfig::all_four(HybridParams::TCP_QUOTA)
}

/// Fig. 6: netperf TCP throughput, multiplexed cores, packet-size sweep.
pub fn fig6(send: bool, msg_bytes: u32, params: Params, seed: u64) -> Vec<RunResult> {
    let np = if send {
        NetperfSpec::tcp_send(msg_bytes).with_threads(4)
    } else {
        NetperfSpec::tcp_receive(msg_bytes)
    };
    four_configs()
        .into_iter()
        .map(|cfg| {
            run_one(
                cfg,
                Topology::multiplexed(),
                WorkloadSpec::Netperf(np),
                params,
                seed,
            )
        })
        .collect()
}

/// Fig. 7: ping RTT under core multiplexing (Baseline, PI, PI+H+R — the
/// paper omits PI+H as polling has no effect on low-rate ping).
pub fn fig7(params: Params, seed: u64) -> Vec<RunResult> {
    [
        EventPathConfig::baseline(),
        EventPathConfig::pi(),
        EventPathConfig::pi_h_r(HybridParams::TCP_QUOTA),
    ]
    .into_iter()
    .map(|cfg| {
        run_one(
            cfg,
            Topology::multiplexed(),
            WorkloadSpec::Ping,
            params,
            seed,
        )
    })
    .collect()
}

/// Fig. 8a: Memcached throughput, four configurations.
pub fn fig8_memcached(params: Params, seed: u64) -> Vec<RunResult> {
    four_configs()
        .into_iter()
        .map(|cfg| {
            run_one(
                cfg,
                Topology::multiplexed(),
                WorkloadSpec::Memcached,
                params,
                seed,
            )
        })
        .collect()
}

/// Fig. 8b: Apache throughput, four configurations.
pub fn fig8_apache(params: Params, seed: u64) -> Vec<RunResult> {
    four_configs()
        .into_iter()
        .map(|cfg| {
            run_one(
                cfg,
                Topology::multiplexed(),
                WorkloadSpec::Apache,
                params,
                seed,
            )
        })
        .collect()
}

/// Fig. 9: httperf mean connection time vs request rate, four
/// configurations.
pub fn fig9(rates: &[f64], params: Params, seed: u64) -> Vec<(f64, Vec<RunResult>)> {
    rates
        .iter()
        .map(|&rate| {
            let runs = four_configs()
                .into_iter()
                .map(|cfg| {
                    run_one(
                        cfg,
                        Topology::multiplexed(),
                        WorkloadSpec::Httperf { rate },
                        params,
                        seed,
                    )
                })
                .collect();
            (rate, runs)
        })
        .collect()
}

/// §VII applicability: SR-IOV direct device assignment.
///
/// Three interrupt paths over the assigned-VF device model:
/// * **legacy** — the hypervisor fields the VF's physical IRQ and injects
///   a virtual interrupt through the emulated LAPIC (delivery + EOI exits
///   remain, I/O-request exits are already gone — the inverse of
///   paravirtual);
/// * **VT-d PI** — interrupts posted straight to the guest, exit-less;
/// * **VT-d PI + redirection** — ES2's intelligent redirection on top,
///   removing the vCPU-scheduling latency.
///
/// Returns `(label, result)` for a micro exit-rate check (TCP send) and a
/// multiplexed ping latency check.
pub fn sriov(params: Params, seed: u64) -> Vec<(&'static str, RunResult, RunResult)> {
    let mut p = params;
    p.device = crate::params::DeviceKind::AssignedVf;
    let send = WorkloadSpec::Netperf(NetperfSpec::tcp_send(1024));
    [
        ("SR-IOV legacy", EventPathConfig::baseline()),
        ("SR-IOV + VT-d PI", EventPathConfig::pi()),
        (
            "SR-IOV + VT-d PI + R",
            EventPathConfig::pi_h_r(HybridParams::TCP_QUOTA),
        ),
    ]
    .into_iter()
    .map(|(label, cfg)| {
        let micro = run_one(cfg, Topology::micro(), send, p, seed);
        let mut ping_p = p;
        ping_p.measure = ping_p.measure.max(es2_sim::SimDuration::from_secs(8));
        let ping = run_one(
            cfg,
            Topology::multiplexed(),
            WorkloadSpec::Ping,
            ping_p,
            seed,
        );
        (label, micro, ping)
    })
    .collect()
}

/// Ablation: redirection target-selection policies under the ping
/// latency workload (full ES2 otherwise). Returns `(label, result)` rows.
pub fn ablation_target_policy(params: Params, seed: u64) -> Vec<(&'static str, RunResult)> {
    use es2_core::{OfflinePolicy, TargetPolicy};
    let policies = [
        (
            "least-loaded+sticky (paper)",
            TargetPolicy::LeastLoadedSticky,
        ),
        ("least-loaded, no sticky", TargetPolicy::LeastLoadedNoSticky),
        ("random online", TargetPolicy::Random),
        ("first online", TargetPolicy::FirstOnline),
    ];
    policies
        .into_iter()
        .map(|(label, tp)| {
            let mut p = params;
            p.redirect_policies = Some((tp, OfflinePolicy::Head));
            (
                label,
                run_one(
                    EventPathConfig::pi_h_r(HybridParams::TCP_QUOTA),
                    Topology::multiplexed(),
                    WorkloadSpec::Ping,
                    p,
                    seed,
                ),
            )
        })
        .collect()
}

/// Ablation: offline-list prediction policies (what to do when the whole
/// VM is descheduled).
pub fn ablation_offline_policy(params: Params, seed: u64) -> Vec<(&'static str, RunResult)> {
    use es2_core::{OfflinePolicy, TargetPolicy};
    let policies = [
        ("head: longest offline (paper)", OfflinePolicy::Head),
        ("tail: most recently offline", OfflinePolicy::Tail),
        ("keep affinity", OfflinePolicy::KeepAffinity),
    ];
    policies
        .into_iter()
        .map(|(label, op)| {
            let mut p = params;
            p.redirect_policies = Some((TargetPolicy::LeastLoadedSticky, op));
            (
                label,
                run_one(
                    EventPathConfig::pi_h_r(HybridParams::TCP_QUOTA),
                    Topology::multiplexed(),
                    WorkloadSpec::Ping,
                    p,
                    seed,
                ),
            )
        })
        .collect()
}

/// Ablation: quota sensitivity for the macro Memcached workload (the
/// DESIGN.md "quota beyond Fig. 4" item).
pub fn ablation_mc_quota(params: Params, seed: u64, quotas: &[u32]) -> Vec<(u32, RunResult)> {
    quotas
        .iter()
        .map(|&q| {
            (
                q,
                run_one(
                    EventPathConfig::pi_h_r(q),
                    Topology::multiplexed(),
                    WorkloadSpec::Memcached,
                    params,
                    seed,
                ),
            )
        })
        .collect()
}

/// The vCPU-stacking statistic motivating §IV-C: fraction of ping probes
/// that found no tested-VM vCPU online (the offline-prediction rate).
pub fn stacking_probability(params: Params, seed: u64) -> f64 {
    stacking_probability_on(Topology::multiplexed(), params, seed)
}

/// Same statistic on an arbitrary topology. §IV-C cites [Sukwong & Kim,
/// EuroSys'11]: with **two four-vCPU VMs on a four-core host** the
/// probability of vCPU stacking exceeds 40 % — reproducible here with
/// `Topology { num_vms: 2, vcpus_per_vm: 4 }` (note the statistic measured
/// is the complementary all-offline fraction seen by interrupts, which
/// rises with the number of co-located VMs).
pub fn stacking_probability_on(topo: Topology, params: Params, seed: u64) -> f64 {
    let r = run_one(
        EventPathConfig::pi_h_r(HybridParams::TCP_QUOTA),
        topo,
        WorkloadSpec::Ping,
        params,
        seed,
    );
    let total = r.redirections + r.offline_predictions;
    if total == 0 {
        0.0
    } else {
        r.offline_predictions as f64 / total as f64
    }
}

/// Sweep the all-offline probability over VM counts (1, 2, 3, 4 co-located
/// four-vCPU VMs on four cores) — the denser the stacking, the more often
/// the offline-list prediction is what saves an interrupt's latency.
pub fn stacking_sweep(params: Params, seed: u64) -> Vec<(u32, f64)> {
    (1..=4)
        .map(|n| {
            let topo = Topology {
                num_vms: n,
                vcpus_per_vm: 4,
            };
            (n, stacking_probability_on(topo, params, seed))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast() -> Params {
        Params::fast_test()
    }

    #[test]
    fn smoke_baseline_tcp_send_runs() {
        let r = run_one(
            EventPathConfig::baseline(),
            Topology::micro(),
            WorkloadSpec::Netperf(NetperfSpec::tcp_send(1024)),
            fast(),
            1,
        );
        assert!(r.goodput_gbps > 0.0, "some traffic flowed: {r:?}");
        assert!(r.total_exit_rate() > 1_000.0, "baseline exits: {r:?}");
        assert!(r.tig_percent > 10.0 && r.tig_percent < 100.0);
    }

    #[test]
    fn smoke_full_es2_tcp_send_runs() {
        let r = run_one(
            EventPathConfig::pi_h_r(4),
            Topology::micro(),
            WorkloadSpec::Netperf(NetperfSpec::tcp_send(1024)),
            fast(),
            1,
        );
        assert!(r.goodput_gbps > 0.0);
    }

    #[test]
    fn determinism_same_seed_same_result() {
        let spec = WorkloadSpec::Netperf(NetperfSpec::udp_send(256));
        let a = run_one(EventPathConfig::pi(), Topology::micro(), spec, fast(), 7);
        let b = run_one(EventPathConfig::pi(), Topology::micro(), spec, fast(), 7);
        assert_eq!(a.goodput_gbps, b.goodput_gbps);
        assert_eq!(a.kicks_total, b.kicks_total);
        assert_eq!(a.exits.windowed_total(), b.exits.windowed_total());
    }
}
