//! One runner per table/figure of the paper's evaluation (§VI).
//!
//! Each function is deterministic in its seed and returns the measured
//! series; the `es2-bench` crate renders them next to the paper's numbers.
//!
//! Every multi-run sweep goes through [`run_specs`], which fans the
//! independent runs across worker threads via [`es2_sim::exec::sweep`].
//! A run is a pure function of its [`RunSpec`] and results come back in
//! input order, so the output is bitwise identical to the serial sweep at
//! any thread count (`ES2_THREADS=1` forces serial).

use es2_core::{EventPathConfig, HybridParams};
use es2_sim::FaultPlan;
use es2_workloads::NetperfSpec;

use crate::machine::Topology;
use crate::params::Params;
use crate::results::RunResult;
use crate::workload::WorkloadSpec;

/// A fully specified independent simulation run: the unit of work the
/// parallel sweep executor schedules. The run's outcome is a pure
/// function of this value.
#[derive(Clone, Copy, Debug)]
pub struct RunSpec {
    pub cfg: EventPathConfig,
    pub topo: Topology,
    pub spec: WorkloadSpec,
    pub params: Params,
    pub seed: u64,
    /// Fault schedule for the run ([`FaultPlan::none`] for clean runs —
    /// then the injector stays inert and the run is bit-identical to one
    /// without the fault layer).
    pub faults: FaultPlan,
    /// What the background (non-tested) VMs run. The paper's multiplexed
    /// experiments use the §VI-D CPU-burn scripts
    /// ([`WorkloadSpec::Idle`]); the consolidation sweep fills the host
    /// with HLT-idle tenants ([`WorkloadSpec::IdleQuiet`]).
    pub fill: WorkloadSpec,
}

impl RunSpec {
    /// Execute the run to completion. Lane-sharded when the executor
    /// config asks for more than one lane (`ES2_LANES`); the default is
    /// one lane, i.e. the legacy unsharded machine, byte for byte.
    pub fn run(&self) -> RunResult {
        self.sharded().run()
    }

    /// Execute the run to completion with liveness checking on the
    /// final state of every lane.
    pub fn run_checked(&self) -> (RunResult, crate::liveness::LivenessReport) {
        self.sharded().run_checked()
    }

    /// Build the (possibly lane-sharded) machine for this spec.
    pub fn sharded(&self) -> crate::lanes::ShardedMachine {
        self.sharded_with(es2_sim::exec::effective_lanes(self.topo.num_vms as usize))
    }

    /// Build the machine sharded into an explicit lane count,
    /// independent of the executor config (bench and test hook).
    pub fn sharded_with(&self, lanes: usize) -> crate::lanes::ShardedMachine {
        let mut specs = vec![self.fill; self.topo.num_vms as usize];
        specs[0] = self.spec;
        crate::lanes::ShardedMachine::with_specs_faulted(
            self.cfg,
            self.topo,
            specs,
            self.params,
            self.seed,
            self.faults,
            lanes,
        )
    }

    /// The same spec with a fault plan attached.
    pub fn with_faults(self, faults: FaultPlan) -> Self {
        RunSpec { faults, ..self }
    }
}

/// Run every spec, in parallel across available cores, returning results
/// in input order (bitwise identical to running them serially).
pub fn run_specs(specs: &[RunSpec]) -> Vec<RunResult> {
    es2_sim::exec::sweep(specs, RunSpec::run)
}

/// The canonical chaos plan used by the chaos suite, `repro chaos`, and
/// the fault-overhead bench: moderate kick loss and delay, occasional
/// vhost-worker stalls, 1 % packet loss with light duplication and
/// reordering, and a mid-run posted-interrupt failure on VM 0 (100 ms in,
/// inside the `Params::fast_test` window). Every probability is per-event,
/// so the plan scales with run length without retuning.
pub fn chaos_plan() -> FaultPlan {
    FaultPlan {
        kick_drop_p: 0.05,
        kick_delay_p: 0.05,
        kick_delay: es2_sim::SimDuration::from_micros(50),
        worker_stall_p: 0.02,
        worker_stall: es2_sim::SimDuration::from_micros(200),
        msi_drop_p: 0.01,
        msi_delay_p: 0.02,
        msi_delay: es2_sim::SimDuration::from_micros(30),
        pkt_drop_p: 0.01,
        pkt_dup_p: 0.005,
        pkt_reorder_p: 0.01,
        pkt_reorder_delay: es2_sim::SimDuration::from_micros(40),
        preempt_storm_period: es2_sim::SimDuration::from_millis(5),
        preempt_storm_p: 0.25,
        pi_unavailable_mask: 0b1,
        pi_fail_after: es2_sim::SimDuration::from_millis(100),
        ..FaultPlan::none()
    }
}

/// The canonical hostile-guest plan used by the isolation suite and
/// `repro --hostile`: VM `vm` corrupts its TX ring a few kicks in, then
/// keeps hammering with doorbell storms, spurious EOI writes, and
/// periodic self-referencing descriptors after the reset. Everything is
/// keyed to `vm`; other VMs draw nothing from the hostile streams.
pub fn hostile_plan(vm: u32) -> FaultPlan {
    FaultPlan {
        hostile_vm: vm,
        ring_corrupt_at_kick: 20,
        ring_corruption: es2_sim::RingCorruptionKind::DescOutOfRange,
        kick_storm_p: 0.05,
        kick_storm_burst: 8,
        eoi_storm_p: 0.05,
        eoi_storm_burst: 4,
        desc_loop_p: 0.002,
        ..FaultPlan::none()
    }
}

/// Run one configuration of one workload on a topology.
pub fn run_one(
    cfg: EventPathConfig,
    topo: Topology,
    spec: WorkloadSpec,
    params: Params,
    seed: u64,
) -> RunResult {
    RunSpec {
        cfg,
        topo,
        spec,
        params,
        seed,
        faults: FaultPlan::none(),
        fill: WorkloadSpec::Idle,
    }
    .run()
}

/// Table I: VM-exit cause breakdown for 1-vCPU TCP send, Baseline vs PI.
pub fn table1(params: Params, seed: u64) -> Vec<RunResult> {
    let spec = WorkloadSpec::Netperf(NetperfSpec::tcp_send(1024));
    let specs: Vec<RunSpec> = [EventPathConfig::baseline(), EventPathConfig::pi()]
        .into_iter()
        .map(|cfg| RunSpec {
            cfg,
            topo: Topology::micro(),
            spec,
            params,
            seed,
            faults: FaultPlan::none(),
            fill: WorkloadSpec::Idle,
        })
        .collect();
    run_specs(&specs)
}

/// One Fig. 4 point: I/O-instruction exit rate under PI+H with a quota.
pub fn fig4_point(
    proto_udp: bool,
    msg_bytes: u32,
    quota: u32,
    params: Params,
    seed: u64,
) -> RunResult {
    let np = if proto_udp {
        NetperfSpec::udp_send(msg_bytes)
    } else {
        NetperfSpec::tcp_send(msg_bytes)
    };
    run_one(
        EventPathConfig::pi_h(quota),
        Topology::micro(),
        WorkloadSpec::Netperf(np),
        params,
        seed,
    )
}

/// Fig. 4: quota sweep (plus the baseline reference point).
pub fn fig4(
    proto_udp: bool,
    msg_bytes: u32,
    params: Params,
    seed: u64,
) -> Vec<(String, RunResult)> {
    let np = if proto_udp {
        NetperfSpec::udp_send(msg_bytes)
    } else {
        NetperfSpec::tcp_send(msg_bytes)
    };
    let quotas = [64u32, 32, 16, 8, 4, 2];
    let mut labels = vec!["baseline".to_string()];
    let mut specs = vec![RunSpec {
        cfg: EventPathConfig::baseline(),
        topo: Topology::micro(),
        spec: WorkloadSpec::Netperf(np),
        params,
        seed,
        faults: FaultPlan::none(),
        fill: WorkloadSpec::Idle,
    }];
    for quota in quotas {
        labels.push(format!("quota={quota}"));
        specs.push(RunSpec {
            cfg: EventPathConfig::pi_h(quota),
            topo: Topology::micro(),
            spec: WorkloadSpec::Netperf(np),
            params,
            seed,
            faults: FaultPlan::none(),
            fill: WorkloadSpec::Idle,
        });
    }
    labels.into_iter().zip(run_specs(&specs)).collect()
}

/// Fig. 5: exit breakdown + TIG for send/receive TCP/UDP under
/// Baseline / PI / PI+H.
pub fn fig5(send: bool, udp: bool, params: Params, seed: u64) -> Vec<RunResult> {
    let quota = if udp {
        HybridParams::UDP_QUOTA
    } else {
        HybridParams::TCP_QUOTA
    };
    let np = match (send, udp) {
        (true, false) => NetperfSpec::tcp_send(1024),
        (true, true) => NetperfSpec::udp_send(1024),
        (false, false) => NetperfSpec::tcp_receive(1024),
        (false, true) => NetperfSpec::udp_receive(1024),
    };
    let specs: Vec<RunSpec> = [
        EventPathConfig::baseline(),
        EventPathConfig::pi(),
        EventPathConfig::pi_h(quota),
    ]
    .into_iter()
    .map(|cfg| RunSpec {
        cfg,
        topo: Topology::micro(),
        spec: WorkloadSpec::Netperf(np),
        params,
        seed,
        faults: FaultPlan::none(),
        fill: WorkloadSpec::Idle,
    })
    .collect();
    run_specs(&specs)
}

/// The four configurations at the paper's TCP quota, multiplexed topology.
fn four_configs() -> [EventPathConfig; 4] {
    EventPathConfig::all_four(HybridParams::TCP_QUOTA)
}

/// Fig. 6: netperf TCP throughput, multiplexed cores, packet-size sweep.
pub fn fig6(send: bool, msg_bytes: u32, params: Params, seed: u64) -> Vec<RunResult> {
    let np = if send {
        NetperfSpec::tcp_send(msg_bytes).with_threads(4)
    } else {
        NetperfSpec::tcp_receive(msg_bytes)
    };
    let specs: Vec<RunSpec> = four_configs()
        .into_iter()
        .map(|cfg| RunSpec {
            cfg,
            topo: Topology::multiplexed(),
            spec: WorkloadSpec::Netperf(np),
            params,
            seed,
            faults: FaultPlan::none(),
            fill: WorkloadSpec::Idle,
        })
        .collect();
    run_specs(&specs)
}

/// Fig. 6 over a packet-size sweep: all `sizes.len() × 4` runs are
/// submitted to the executor as one batch so they parallelize across
/// sizes, not just configurations. Returns `(msg_bytes, four results)`
/// per size, identical to calling [`fig6`] per size.
pub fn fig6_sweep(send: bool, sizes: &[u32], params: Params, seed: u64) -> Vec<(u32, Vec<RunResult>)> {
    let mut specs = Vec::with_capacity(sizes.len() * 4);
    for &msg_bytes in sizes {
        let np = if send {
            NetperfSpec::tcp_send(msg_bytes).with_threads(4)
        } else {
            NetperfSpec::tcp_receive(msg_bytes)
        };
        for cfg in four_configs() {
            specs.push(RunSpec {
                cfg,
                topo: Topology::multiplexed(),
                spec: WorkloadSpec::Netperf(np),
                params,
                seed,
                faults: FaultPlan::none(),
                fill: WorkloadSpec::Idle,
            });
        }
    }
    let mut results = run_specs(&specs).into_iter();
    sizes
        .iter()
        .map(|&sz| (sz, results.by_ref().take(4).collect()))
        .collect()
}

/// Fig. 7: ping RTT under core multiplexing (Baseline, PI, PI+H+R — the
/// paper omits PI+H as polling has no effect on low-rate ping).
pub fn fig7(params: Params, seed: u64) -> Vec<RunResult> {
    let specs: Vec<RunSpec> = [
        EventPathConfig::baseline(),
        EventPathConfig::pi(),
        EventPathConfig::pi_h_r(HybridParams::TCP_QUOTA),
    ]
    .into_iter()
    .map(|cfg| RunSpec {
        cfg,
        topo: Topology::multiplexed(),
        spec: WorkloadSpec::Ping,
        params,
        seed,
        faults: FaultPlan::none(),
        fill: WorkloadSpec::Idle,
    })
    .collect();
    run_specs(&specs)
}

/// Fig. 8a: Memcached throughput, four configurations.
pub fn fig8_memcached(params: Params, seed: u64) -> Vec<RunResult> {
    let specs: Vec<RunSpec> = four_configs()
        .into_iter()
        .map(|cfg| RunSpec {
            cfg,
            topo: Topology::multiplexed(),
            spec: WorkloadSpec::Memcached,
            params,
            seed,
            faults: FaultPlan::none(),
            fill: WorkloadSpec::Idle,
        })
        .collect();
    run_specs(&specs)
}

/// Fig. 8b: Apache throughput, four configurations.
pub fn fig8_apache(params: Params, seed: u64) -> Vec<RunResult> {
    let specs: Vec<RunSpec> = four_configs()
        .into_iter()
        .map(|cfg| RunSpec {
            cfg,
            topo: Topology::multiplexed(),
            spec: WorkloadSpec::Apache,
            params,
            seed,
            faults: FaultPlan::none(),
            fill: WorkloadSpec::Idle,
        })
        .collect();
    run_specs(&specs)
}

/// Fig. 9: httperf mean connection time vs request rate, four
/// configurations.
pub fn fig9(rates: &[f64], params: Params, seed: u64) -> Vec<(f64, Vec<RunResult>)> {
    // Flatten rates × configurations into one batch so the executor
    // balances across all of them, then regroup per rate.
    let mut specs = Vec::with_capacity(rates.len() * 4);
    for &rate in rates {
        for cfg in four_configs() {
            specs.push(RunSpec {
                cfg,
                topo: Topology::multiplexed(),
                spec: WorkloadSpec::Httperf { rate },
                params,
                seed,
                faults: FaultPlan::none(),
                fill: WorkloadSpec::Idle,
            });
        }
    }
    let mut results = run_specs(&specs).into_iter();
    rates
        .iter()
        .map(|&rate| (rate, results.by_ref().take(4).collect()))
        .collect()
}

/// §VII applicability: SR-IOV direct device assignment.
///
/// Three interrupt paths over the assigned-VF device model:
/// * **legacy** — the hypervisor fields the VF's physical IRQ and injects
///   a virtual interrupt through the emulated LAPIC (delivery + EOI exits
///   remain, I/O-request exits are already gone — the inverse of
///   paravirtual);
/// * **VT-d PI** — interrupts posted straight to the guest, exit-less;
/// * **VT-d PI + redirection** — ES2's intelligent redirection on top,
///   removing the vCPU-scheduling latency.
///
/// Returns `(label, result)` for a micro exit-rate check (TCP send) and a
/// multiplexed ping latency check.
pub fn sriov(params: Params, seed: u64) -> Vec<(&'static str, RunResult, RunResult)> {
    let mut p = params;
    p.device = crate::params::DeviceKind::AssignedVf;
    let mut ping_p = p;
    ping_p.measure = ping_p.measure.max(es2_sim::SimDuration::from_secs(8));
    let send = WorkloadSpec::Netperf(NetperfSpec::tcp_send(1024));
    let rows = [
        ("SR-IOV legacy", EventPathConfig::baseline()),
        ("SR-IOV + VT-d PI", EventPathConfig::pi()),
        (
            "SR-IOV + VT-d PI + R",
            EventPathConfig::pi_h_r(HybridParams::TCP_QUOTA),
        ),
    ];
    // Two runs per row (micro exit-rate check, multiplexed ping check),
    // flattened into one batch of six.
    let mut specs = Vec::with_capacity(rows.len() * 2);
    for (_, cfg) in rows {
        specs.push(RunSpec {
            cfg,
            topo: Topology::micro(),
            spec: send,
            params: p,
            seed,
            faults: FaultPlan::none(),
            fill: WorkloadSpec::Idle,
        });
        specs.push(RunSpec {
            cfg,
            topo: Topology::multiplexed(),
            spec: WorkloadSpec::Ping,
            params: ping_p,
            seed,
            faults: FaultPlan::none(),
            fill: WorkloadSpec::Idle,
        });
    }
    let mut results = run_specs(&specs).into_iter();
    rows.into_iter()
        .map(|(label, _)| {
            let micro = results.next().expect("one micro run per row");
            let ping = results.next().expect("one ping run per row");
            (label, micro, ping)
        })
        .collect()
}

/// Ablation: redirection target-selection policies under the ping
/// latency workload (full ES2 otherwise). Returns `(label, result)` rows.
pub fn ablation_target_policy(params: Params, seed: u64) -> Vec<(&'static str, RunResult)> {
    use es2_core::{OfflinePolicy, TargetPolicy};
    let policies = [
        (
            "least-loaded+sticky (paper)",
            TargetPolicy::LeastLoadedSticky,
        ),
        ("least-loaded, no sticky", TargetPolicy::LeastLoadedNoSticky),
        ("random online", TargetPolicy::Random),
        ("first online", TargetPolicy::FirstOnline),
    ];
    let specs: Vec<RunSpec> = policies
        .iter()
        .map(|&(_, tp)| {
            let mut p = params;
            p.redirect_policies = Some((tp, OfflinePolicy::Head));
            RunSpec {
                cfg: EventPathConfig::pi_h_r(HybridParams::TCP_QUOTA),
                topo: Topology::multiplexed(),
                spec: WorkloadSpec::Ping,
                params: p,
                seed,
                faults: FaultPlan::none(),
                fill: WorkloadSpec::Idle,
            }
        })
        .collect();
    policies
        .into_iter()
        .map(|(label, _)| label)
        .zip(run_specs(&specs))
        .collect()
}

/// Ablation: offline-list prediction policies (what to do when the whole
/// VM is descheduled).
pub fn ablation_offline_policy(params: Params, seed: u64) -> Vec<(&'static str, RunResult)> {
    use es2_core::{OfflinePolicy, TargetPolicy};
    let policies = [
        ("head: longest offline (paper)", OfflinePolicy::Head),
        ("tail: most recently offline", OfflinePolicy::Tail),
        ("keep affinity", OfflinePolicy::KeepAffinity),
    ];
    let specs: Vec<RunSpec> = policies
        .iter()
        .map(|&(_, op)| {
            let mut p = params;
            p.redirect_policies = Some((TargetPolicy::LeastLoadedSticky, op));
            RunSpec {
                cfg: EventPathConfig::pi_h_r(HybridParams::TCP_QUOTA),
                topo: Topology::multiplexed(),
                spec: WorkloadSpec::Ping,
                params: p,
                seed,
                faults: FaultPlan::none(),
                fill: WorkloadSpec::Idle,
            }
        })
        .collect();
    policies
        .into_iter()
        .map(|(label, _)| label)
        .zip(run_specs(&specs))
        .collect()
}

/// Ablation: quota sensitivity for the macro Memcached workload (the
/// DESIGN.md "quota beyond Fig. 4" item).
pub fn ablation_mc_quota(params: Params, seed: u64, quotas: &[u32]) -> Vec<(u32, RunResult)> {
    let specs: Vec<RunSpec> = quotas
        .iter()
        .map(|&q| RunSpec {
            cfg: EventPathConfig::pi_h_r(q),
            topo: Topology::multiplexed(),
            spec: WorkloadSpec::Memcached,
            params,
            seed,
            faults: FaultPlan::none(),
            fill: WorkloadSpec::Idle,
        })
        .collect();
    quotas.iter().copied().zip(run_specs(&specs)).collect()
}

/// The vCPU-stacking statistic motivating §IV-C: fraction of ping probes
/// that found no tested-VM vCPU online (the offline-prediction rate).
pub fn stacking_probability(params: Params, seed: u64) -> f64 {
    stacking_probability_on(Topology::multiplexed(), params, seed)
}

/// Same statistic on an arbitrary topology. §IV-C cites [Sukwong & Kim,
/// EuroSys'11]: with **two four-vCPU VMs on a four-core host** the
/// probability of vCPU stacking exceeds 40 % — reproducible here with
/// `Topology { num_vms: 2, vcpus_per_vm: 4 }` (note the statistic measured
/// is the complementary all-offline fraction seen by interrupts, which
/// rises with the number of co-located VMs).
pub fn stacking_probability_on(topo: Topology, params: Params, seed: u64) -> f64 {
    let r = run_one(
        EventPathConfig::pi_h_r(HybridParams::TCP_QUOTA),
        topo,
        WorkloadSpec::Ping,
        params,
        seed,
    );
    offline_fraction(&r)
}

/// Fraction of routed interrupts that found every tested-VM vCPU offline.
fn offline_fraction(r: &RunResult) -> f64 {
    let total = r.redirections + r.offline_predictions;
    if total == 0 {
        0.0
    } else {
        r.offline_predictions as f64 / total as f64
    }
}

/// Sweep the all-offline probability over VM counts (1, 2, 3, 4 co-located
/// four-vCPU VMs on four cores) — the denser the stacking, the more often
/// the offline-list prediction is what saves an interrupt's latency.
pub fn stacking_sweep(params: Params, seed: u64) -> Vec<(u32, f64)> {
    let specs: Vec<RunSpec> = (1..=4)
        .map(|n| RunSpec {
            cfg: EventPathConfig::pi_h_r(HybridParams::TCP_QUOTA),
            topo: Topology {
                num_vms: n,
                vcpus_per_vm: 4,
            },
            spec: WorkloadSpec::Ping,
            params,
            seed,
            faults: FaultPlan::none(),
            fill: WorkloadSpec::Idle,
        })
        .collect();
    (1..=4)
        .zip(run_specs(&specs).iter().map(offline_fraction))
        .collect()
}

/// vCPUs per tenant in the `repro --scale` consolidation sweep: every
/// tenant is a two-vCPU VM and all vCPU threads time-share the first two
/// cores (the paper's §VI-D multiplexing pushed to fleet density), while
/// each VM keeps its dedicated vhost core.
pub const SCALE_VCPUS_PER_VM: u32 = 2;

/// Connection rate served by the single active tenant in the
/// consolidation sweep — far below the Fig. 9 saturation knee, so the
/// sweep measures event-path cost under density, not queueing collapse.
pub const SCALE_HTTPERF_RATE: f64 = 1000.0;

/// Names for the three scale configurations, in [`scale_specs`] order.
pub const SCALE_CONFIG_NAMES: [&str; 3] = ["baseline", "pi", "es2"];

/// The many-VM consolidation sweep (`repro --scale`) at one VM count:
/// VM 0 serves httperf while the other `num_vms - 1` tenants sit
/// HLT-idle, across {Baseline, PI, full ES2}. This is the scenario where
/// unconditionally re-armed periodic timers dominate the event count —
/// the host-side analogue of the redundant periodic notifications the
/// paper removes from the I/O event path.
pub fn scale_specs(num_vms: u32, mut params: Params, seed: u64) -> Vec<RunSpec> {
    params.num_cores = SCALE_VCPUS_PER_VM + num_vms;
    let topo = Topology {
        num_vms,
        vcpus_per_vm: SCALE_VCPUS_PER_VM,
    };
    [
        EventPathConfig::baseline(),
        EventPathConfig::pi(),
        EventPathConfig::pi_h_r(HybridParams::TCP_QUOTA),
    ]
    .into_iter()
    .map(|cfg| RunSpec {
        cfg,
        topo,
        spec: WorkloadSpec::Httperf {
            rate: SCALE_HTTPERF_RATE,
        },
        params,
        seed,
        faults: FaultPlan::none(),
        fill: WorkloadSpec::IdleQuiet,
    })
    .collect()
}

/// Per-tenant connection rate in the all-active lane-speedup cell —
/// lower than [`SCALE_HTTPERF_RATE`] because *every* tenant serves it
/// concurrently, keeping total offered load within the modeled host.
pub const SCALE_ACTIVE_RATE: f64 = 200.0;

/// The all-active companion to [`scale_specs`]: every tenant serves
/// httperf at [`SCALE_ACTIVE_RATE`] under full ES2. This is the cell
/// the in-run lane-speedup measurement shards, because event work is
/// spread across all VMs instead of concentrated on VM 0 — the
/// configuration where per-VM event lanes have parallelism to mine.
pub fn scale_active_spec(num_vms: u32, mut params: Params, seed: u64) -> RunSpec {
    params.num_cores = SCALE_VCPUS_PER_VM + num_vms;
    RunSpec {
        cfg: EventPathConfig::pi_h_r(HybridParams::TCP_QUOTA),
        topo: Topology {
            num_vms,
            vcpus_per_vm: SCALE_VCPUS_PER_VM,
        },
        spec: WorkloadSpec::Httperf {
            rate: SCALE_ACTIVE_RATE,
        },
        params,
        seed,
        faults: FaultPlan::none(),
        fill: WorkloadSpec::Httperf {
            rate: SCALE_ACTIVE_RATE,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast() -> Params {
        Params::fast_test()
    }

    #[test]
    fn smoke_baseline_tcp_send_runs() {
        let r = run_one(
            EventPathConfig::baseline(),
            Topology::micro(),
            WorkloadSpec::Netperf(NetperfSpec::tcp_send(1024)),
            fast(),
            1,
        );
        assert!(r.goodput_gbps > 0.0, "some traffic flowed: {r:?}");
        assert!(r.total_exit_rate() > 1_000.0, "baseline exits: {r:?}");
        assert!(r.tig_percent > 10.0 && r.tig_percent < 100.0);
    }

    #[test]
    fn smoke_full_es2_tcp_send_runs() {
        let r = run_one(
            EventPathConfig::pi_h_r(4),
            Topology::micro(),
            WorkloadSpec::Netperf(NetperfSpec::tcp_send(1024)),
            fast(),
            1,
        );
        assert!(r.goodput_gbps > 0.0);
    }

    #[test]
    fn determinism_same_seed_same_result() {
        let spec = WorkloadSpec::Netperf(NetperfSpec::udp_send(256));
        let a = run_one(EventPathConfig::pi(), Topology::micro(), spec, fast(), 7);
        let b = run_one(EventPathConfig::pi(), Topology::micro(), spec, fast(), 7);
        assert_eq!(a.goodput_gbps, b.goodput_gbps);
        assert_eq!(a.kicks_total, b.kicks_total);
        assert_eq!(a.exits.windowed_total(), b.exits.windowed_total());
    }
}
