//! End-of-run liveness and invariant checking.
//!
//! Fault injection makes "the run finished" too weak an assertion: a lost
//! kick that nothing recovered would still let the event loop drain. This
//! checker inspects the final machine state for the invariants that must
//! hold *regardless of what the fault plan did* — descriptor conservation
//! on every virtqueue, scheduler/vCPU consistency, interrupt-delivery
//! accounting, and forward progress. The chaos suite runs every faulted
//! sweep through [`Machine::run_checked`] and asserts the report is clean.

use es2_sched::ThreadState;

use crate::machine::Machine;
use crate::results::RunResult;

/// The outcome of checking one finished machine.
#[derive(Clone, Debug, Default)]
pub struct LivenessReport {
    /// Human-readable invariant violations; empty means the run is sound.
    pub violations: Vec<String>,
    /// Post-mortem dump captured when any invariant tripped (empty for a
    /// sound run): the machine's breadcrumb-tracer ring followed by the
    /// full `debug_snapshot`, so a chaos failure in CI arrives with the
    /// state needed to diagnose it instead of just a one-line complaint.
    pub diagnostics: String,
}

impl LivenessReport {
    /// Whether every invariant held.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }

    /// Panic with the full violation list (and the post-mortem dump, if
    /// one was captured) unless the run is sound.
    pub fn assert_ok(&self) {
        assert!(
            self.ok(),
            "liveness violations:\n  {}\n{}",
            self.violations.join("\n  "),
            self.diagnostics
        );
    }

    fn fail(&mut self, msg: String) {
        self.violations.push(msg);
    }
}

/// Check every liveness/consistency invariant on a finished machine.
pub fn check(m: &Machine) -> LivenessReport {
    let mut rep = LivenessReport::default();

    for (vmi, vm) in m.vms.iter().enumerate() {
        // Descriptor conservation: every buffer the driver added is either
        // still avail, in the device, or went through used and back. An
        // injected fault may delay a buffer but can never mint or leak one.
        for (qi, pair) in vm.pairs.iter().enumerate() {
            let (tx_name, rx_name) = if qi == 0 {
                ("tx".to_string(), "rx".to_string())
            } else {
                (format!("tx{qi}"), format!("rx{qi}"))
            };
            for (name, q) in [(tx_name, &pair.tx), (rx_name, &pair.rx)] {
                // A queue that is (or ever was) quarantined surrenders its
                // conservation ledger by design: quarantine discards exposed
                // buffers, the guest reset zeroes the counters, and a
                // completion in flight across the reset lands unmatched. What
                // must still hold: broken implies the reset request is
                // surfaced to the guest (the DEVICE_NEEDS_RESET analog).
                if q.is_broken() && !q.needs_reset() {
                    rep.fail(format!("vm{vmi} {name}: broken without needs_reset"));
                }
                if q.quarantine_count() > 0 {
                    continue;
                }
                let added = q.added_total();
                let popped = q.popped_total();
                let completed = q.completed_total();
                let reclaimed = q.reclaimed_total();
                if added != popped + q.avail_pending() as u64 {
                    rep.fail(format!(
                        "vm{vmi} {name}: added {added} != popped {popped} + avail {}",
                        q.avail_pending()
                    ));
                }
                if completed != reclaimed + q.used_pending() as u64 {
                    rep.fail(format!(
                        "vm{vmi} {name}: completed {completed} != reclaimed {reclaimed} + used {}",
                        q.used_pending()
                    ));
                }
                if popped < completed {
                    rep.fail(format!(
                        "vm{vmi} {name}: completed {completed} exceeds popped {popped}"
                    ));
                }
                if popped - completed > q.config().size as u64 {
                    rep.fail(format!(
                        "vm{vmi} {name}: {} buffers stuck in-device (ring size {})",
                        popped - completed,
                        q.config().size
                    ));
                }
            }
        }

        // Scheduler/vCPU agreement: the vCPU's own notion of running must
        // match the scheduler's, and guest mode implies a host thread on
        // core — a preemption storm must never strand a vCPU "in guest"
        // while descheduled.
        for (idx, v) in vm.vcpus.iter().enumerate() {
            let tid = vm.vcpu_tids[idx];
            if v.running != m.sched.is_running(tid) {
                rep.fail(format!(
                    "vm{vmi} vcpu{idx}: vcpu.running={} but scheduler says {}",
                    v.running,
                    m.sched.is_running(tid)
                ));
            }
            if v.in_guest && !v.running {
                rep.fail(format!("vm{vmi} vcpu{idx}: in guest while descheduled"));
            }
        }

        // Delivery accounting: a vCPU can only handle interrupts that the
        // mode ledger saw delivered (coalescing makes handled ≤ delivered;
        // the watchdog's spurious re-raises coalesce in the IRR, so they
        // must never manufacture extra handled interrupts).
        let handled: u64 = vm.vcpus.iter().map(|v| v.interrupts_handled()).sum();
        let counts = m.modes.vm(vmi);
        let delivered = counts.posted + counts.emulated;
        if handled > delivered {
            rep.fail(format!(
                "vm{vmi}: handled {handled} interrupts but only {delivered} were delivered"
            ));
        }

        // Forward progress: if the driver ever added TX buffers, the device
        // must have completed at least one — a dropped kick with a working
        // watchdog stalls a queue temporarily, never terminally.
        for (qi, pair) in vm.pairs.iter().enumerate() {
            if pair.tx.quarantine_count() == 0
                && pair.tx.added_total() > 0
                && pair.tx.completed_total() == 0
            {
                rep.fail(format!(
                    "vm{vmi} tx{qi}: {} buffers added, none ever completed",
                    pair.tx.added_total()
                ));
            }
        }
    }

    // Reclaimed-slot conservation: after any mix of departures, failed
    // boots, aborted migrations, and crashes, a slot torn down on this
    // host must hold *nothing* — no thread awake, no handler turn, no
    // queued vhost work, no ring entries or backlog, no parked or
    // deliverable vectors, no staged control state. Anything left is a
    // leak; every message says "orphan" so the bench gate can count
    // leaked resources as a single fatal metric.
    if let Some(mig) = m.mig.as_ref() {
        for (vmi, vm) in m.vms.iter().enumerate() {
            if !mig.reclaimed[vmi] || mig.guest_local[vmi] {
                continue;
            }
            for (idx, &tid) in vm.vcpu_tids.iter().enumerate() {
                if m.sched.entity(tid).state != ThreadState::Sleeping {
                    rep.fail(format!(
                        "vm{vmi} vcpu{idx}: orphan thread awake after reclamation"
                    ));
                }
            }
            for (idx, &tid) in vm.vhost_tids.iter().enumerate() {
                if m.sched.entity(tid).state != ThreadState::Sleeping {
                    rep.fail(format!(
                        "vm{vmi} vhost{idx}: orphan worker thread awake after reclamation"
                    ));
                }
            }
            for (w, h) in vm.cur_handler.iter().enumerate() {
                if h.is_some() {
                    rep.fail(format!(
                        "vm{vmi} worker{w}: orphan handler turn after reclamation"
                    ));
                }
                if vm.worker.has_work_on(w) {
                    rep.fail(format!(
                        "vm{vmi} worker{w}: orphan vhost work queued after reclamation"
                    ));
                }
            }
            for (qi, pair) in vm.pairs.iter().enumerate() {
                let held = pair.tx.avail_pending() as u64
                    + pair.tx.used_pending() as u64
                    + pair.rx.avail_pending() as u64
                    + pair.rx.used_pending() as u64;
                if held != 0 {
                    rep.fail(format!(
                        "vm{vmi} pair{qi}: {held} orphan ring entries after reclamation"
                    ));
                }
                if !pair.backlog.is_empty() {
                    rep.fail(format!(
                        "vm{vmi} pair{qi}: {} orphan backlog packets after reclamation",
                        pair.backlog.len()
                    ));
                }
            }
            if !vm.parked_irqs.is_empty() {
                rep.fail(format!(
                    "vm{vmi}: {} orphan parked vectors after reclamation",
                    vm.parked_irqs.len()
                ));
            }
            for (idx, v) in vm.vcpus.iter().enumerate() {
                if v.has_deliverable() {
                    rep.fail(format!(
                        "vm{vmi} vcpu{idx}: orphan deliverable interrupt after reclamation"
                    ));
                }
            }
            if mig.incoming[vmi].is_some() {
                rep.fail(format!("vm{vmi}: orphan blackout buffer after reclamation"));
            }
            if mig.staged[vmi].is_some() {
                rep.fail(format!("vm{vmi}: orphan staged snapshot after reclamation"));
            }
            if !mig.out_plan[vmi].is_empty() {
                rep.fail(format!("vm{vmi}: orphan migration plan after reclamation"));
            }
            if !mig.boots[vmi].is_empty() {
                rep.fail(format!("vm{vmi}: orphan staged boot after reclamation"));
            }
            if !mig.restarts[vmi].is_empty() {
                rep.fail(format!("vm{vmi}: orphan staged restart after reclamation"));
            }
        }
    }

    // Auto-dump on violation: the last breadcrumbs (kicks, MSIs, watchdog
    // recoveries, degradations) plus the world snapshot. Captured only on
    // failure so the passing path allocates nothing.
    if !rep.ok() {
        use std::fmt::Write as _;
        let mut d = String::new();
        let _ = writeln!(
            d,
            "--- tracer ring (last {} of {} records) ---",
            m.tracer.len(),
            m.tracer.recorded_total()
        );
        d.push_str(&m.tracer.dump());
        let _ = writeln!(d, "--- debug snapshot ---");
        d.push_str(&m.debug_snapshot());
        rep.diagnostics = d;
    }

    rep
}

impl Machine {
    /// Run to completion, check liveness invariants on the final state,
    /// then collect results.
    pub fn run_checked(mut self) -> (RunResult, LivenessReport) {
        while self.step_one() {}
        let report = check(&self);
        (RunResult::collect(self), report)
    }
}
