//! Live migration and cluster plumbing for a [`Machine`] that is one
//! host of a multi-host cell (see [`crate::cluster`]).
//!
//! # State machine
//!
//! A move of VM `v` from host `S` to host `T` at pause time `t_p` runs
//! the classic pause/copy/resume sequence, with every phase a
//! deterministic function of the VM's state at `t_p`:
//!
//! 1. **Pause** (`S`, at `t_p`): every vCPU thread and the vhost worker
//!    thread are descheduled ([`es2_sched::CfsScheduler::deactivate`] —
//!    running vCPUs take a migration-forced VM exit on the way out, so
//!    the source router marks them offline exactly as live Linux would
//!    see `sched_out` notifier fires). The whole `VmState` — virtio
//!    rings, NIC backlog, parked IRQs, PIR/vIRR posted-interrupt state,
//!    hybrid-handler mode, quarantine and backpressure ledgers — plus
//!    every thread's saved segment is packed into a `VmSnapshot`. The
//!    vacated slot becomes a fresh dormant (HLT-idle) VM.
//! 2. **Copy** (wire, `[t_p, t_p + D)`): the snapshot crosses the lane
//!    mailbox with arrival time `t_p + D`, where the blackout
//!    `D = pause + copy_base + copy_per_unit · dirty + resume` scales
//!    with the dirty unit count (ring occupancy + backlog depth) — the
//!    dirty-page analog. `D` always exceeds the cross-lane lookahead.
//! 3. **Resume** (`T`, at `t_p + D`): the snapshot lands in the target
//!    slot (same global index on every host), threads that were active
//!    wake (rebuilding the **target** router's online list through the
//!    ordinary `sched_in` notifier path), saved segments resume, and the
//!    stale-state scan (`Machine::watchdog_scan_vm`) re-kicks stuck
//!    handlers and re-raises lost MSIs over the reliable watchdog path —
//!    so an MSI that was in flight on the source when the VM left is
//!    re-issued against the target's own online/offline lists.
//!
//! During `[t_p, t_p + D)` the target buffers the slot's arrivals
//! (replayed in order at resume); traffic addressed to a slot that lives
//! elsewhere is forwarded across the mailbox with the finite lookahead.
//! The external peer never moves on migration — post-move guest↔peer
//! traffic permanently crosses lanes in both directions, which is what
//! finally exercises the windowed lane protocol on real workloads.
//!
//! **Abort** (mid-copy failure, decided by the fault plan's migration
//! stream): the source keeps the snapshot, buffers its own arrivals for
//! the same blackout, and resumes the VM locally — a rollback, not a
//! loss. **Host crash**: the lane freezes at the crash instant; victims
//! cold-restart on surviving hosts with fresh state (see
//! `Machine::on_cold_restart`).

use std::collections::VecDeque;

use es2_apic::Vector;
use es2_hypervisor::{InterruptPath, Vcpu, VcpuId};
use es2_net::{Packet, PacketFactory};
use es2_sim::{SimDuration, SimTime};
use es2_virtio::{QueueId, VhostPool, Virtqueue, VirtqueueConfig};

use es2_core::HybridHandler;
use es2_metrics::VmModeCounts;
use es2_sched::{ThreadId, ThreadState};

use crate::machine::{Ev, Machine, QueuePair, Segment, VcpuCtx, VmState};
use crate::workload::{GuestWl, WorkloadSpec};

/// Cost model for one migration's blackout window. All sim-time
/// constants, so the blackout is a pure function of the paused state.
#[derive(Clone, Copy, Debug)]
pub struct MigCosts {
    /// Fixed pause-phase cost (deschedule + device quiesce).
    pub pause: SimDuration,
    /// Fixed copy-phase floor (control channel round trips).
    pub copy_base: SimDuration,
    /// Copy cost per dirty unit (one ring entry or backlog packet).
    pub copy_per_unit: SimDuration,
    /// Fixed resume-phase cost (install + re-arm on the target).
    pub resume: SimDuration,
}

impl Default for MigCosts {
    fn default() -> Self {
        MigCosts {
            pause: SimDuration::from_micros(30),
            copy_base: SimDuration::from_micros(80),
            copy_per_unit: SimDuration::from_nanos(150),
            resume: SimDuration::from_micros(40),
        }
    }
}

/// Everything one migration (or crash recovery) run accounts for on one
/// host. Sim-time quantities, recorded unconditionally (traced and
/// untraced runs stay byte-identical because the ledger never feeds back
/// into simulation decisions).
#[derive(Clone, Debug, Default)]
pub struct MigLedger {
    /// Moves that departed this host (snapshot shipped).
    pub out: u64,
    /// Moves that resumed on this host.
    pub resumed: u64,
    /// Planned moves that aborted mid-copy and rolled back here.
    pub aborts: u64,
    /// Stale MSIs re-raised here after arriving from another host.
    pub retargets: u64,
    /// Crash victims cold-restarted on this host.
    pub restarts: u64,
    /// Churn arrivals booted clean on this host.
    pub boots: u64,
    /// Churn tenants torn down here at end of lifetime.
    pub departs: u64,
    /// Stuck boots rolled back here after their handshake timeout.
    pub boot_timeouts: u64,
    /// Control-plane operations that arrived against a slot in the wrong
    /// state (stale plan entry, missing snapshot/spec, teardown of a
    /// non-resident slot). Each is a typed error recorded instead of a
    /// panic; `liveness` promotes any entry to a fatal violation.
    pub ctl_errors: Vec<String>,
    /// Full blackout per resume landing here (nanoseconds).
    pub blackout_ns: Vec<u64>,
    /// Pause-phase cost per departure from this host (nanoseconds).
    pub pause_ns: Vec<u64>,
    /// Copy-phase cost per departure from this host (nanoseconds).
    pub copy_ns: Vec<u64>,
    /// Resume-phase cost per resume landing here (nanoseconds).
    pub resume_ns: Vec<u64>,
}

impl MigLedger {
    /// Fold another host's ledger into this one (cluster-level report).
    pub fn merge(&mut self, o: &MigLedger) {
        self.out += o.out;
        self.resumed += o.resumed;
        self.aborts += o.aborts;
        self.retargets += o.retargets;
        self.restarts += o.restarts;
        self.boots += o.boots;
        self.departs += o.departs;
        self.boot_timeouts += o.boot_timeouts;
        self.ctl_errors.extend_from_slice(&o.ctl_errors);
        self.blackout_ns.extend_from_slice(&o.blackout_ns);
        self.pause_ns.extend_from_slice(&o.pause_ns);
        self.copy_ns.extend_from_slice(&o.copy_ns);
        self.resume_ns.extend_from_slice(&o.resume_ns);
    }
}

/// One planned out-migration, popped in order by [`Ev::MigrateStart`].
#[derive(Clone, Copy, Debug)]
pub(crate) struct PlannedOut {
    /// Predrawn mid-copy abort decision (fault plan migration stream).
    pub(crate) abort: bool,
}

/// Arrivals buffered while a slot is mid-blackout, replayed at resume
/// (MSIs first, then packets, each in arrival order).
#[derive(Debug, Default)]
pub(crate) struct IncomingBuf {
    pub(crate) pkts: Vec<Packet>,
    pub(crate) msis: Vec<Vector>,
}

/// A cross-host emission staged by the event gate; the owning lane
/// drains these after every step and routes them via the shared
/// location timeline.
pub(crate) enum CrossOut {
    /// Guest-bound wire arrival for a slot that lives on another host.
    GuestPkt { vm: u32, at: SimTime, pkt: Packet },
    /// Peer-bound packet from a guest whose external peer stayed home.
    ExtPkt { vm: u32, at: SimTime, pkt: Packet },
    /// An in-flight MSI that outlived its VM's residency here; re-raised
    /// on the current host over the reliable path.
    StaleMsi { vm: u32, at: SimTime, vector: Vector },
    /// A paused VM's full state, arriving when the copy phase ends.
    Snapshot {
        vm: u32,
        at: SimTime,
        snap: Box<VmSnapshot>,
    },
}

/// A paused VM packed for transport (or local abort-rollback).
pub(crate) struct VmSnapshot {
    pub(crate) state: VmState,
    pub(crate) spec: WorkloadSpec,
    /// Saved per-vCPU segments (preempted remainders travel with the VM).
    pub(crate) vcpu_segs: Vec<Option<Segment>>,
    /// Which vCPUs were running/runnable at pause (woken at resume).
    pub(crate) vcpu_active: Vec<bool>,
    /// Saved per-vhost-worker segments (one per sharded worker thread).
    pub(crate) vhost_segs: Vec<Option<Segment>>,
    /// Which vhost workers were running/runnable at pause.
    pub(crate) vhost_active: Vec<bool>,
    /// The VM's delivery-mode ledger row (travels with the VM).
    pub(crate) modes: VmModeCounts,
    /// Full blackout for this move (pause + copy + resume).
    pub(crate) blackout: SimDuration,
    pub(crate) resume_cost: SimDuration,
}

/// Per-machine cluster state. `Machine::mig` is `None` on single-host
/// machines, so the whole layer costs one pointer test per gated event.
pub(crate) struct MigState {
    /// Slot's guest currently executes on this host.
    pub(crate) guest_local: Vec<bool>,
    /// Slot's external peer lives on this host.
    pub(crate) ext_local: Vec<bool>,
    /// Mid-blackout arrival buffers (`Some` between expect and resume).
    pub(crate) incoming: Vec<Option<IncomingBuf>>,
    /// Snapshots staged for an [`Ev::MigrateArrive`] at this host.
    pub(crate) staged: Vec<Option<Box<VmSnapshot>>>,
    /// Planned out-moves per slot, popped by [`Ev::MigrateStart`].
    pub(crate) out_plan: Vec<VecDeque<PlannedOut>>,
    /// Cold-restart specs per slot, popped by [`Ev::ColdRestart`]. A
    /// queue, not an option: one slot can crash-restart here more than
    /// once in a run.
    pub(crate) restarts: Vec<VecDeque<WorkloadSpec>>,
    /// Churn boot specs per slot (`spec`, `stuck`), popped by
    /// [`Ev::VmBoot`] — a retried arrival can boot on the same host
    /// twice, so staging must queue, not overwrite.
    pub(crate) boots: Vec<VecDeque<(WorkloadSpec, bool)>>,
    /// Slot was torn down on this host at least once (departure or
    /// boot-timeout rollback). A reclaimed, non-resident slot drops
    /// tenant-bound traffic at the host edge instead of forwarding it
    /// (the tenant is gone; forwarding would bounce against the stale
    /// timeline forever), and `liveness` holds it to the conservation
    /// invariant: zero retained threads, ring entries, vectors, or
    /// vhost work.
    pub(crate) reclaimed: Vec<bool>,
    /// Cross-host emissions staged by the gate, drained by the lane.
    pub(crate) cross_out: Vec<CrossOut>,
    pub(crate) costs: MigCosts,
    pub(crate) ledger: MigLedger,
}

impl Machine {
    /// Turn this machine into host `host` of a multi-host cell. Called
    /// once right after construction; every slot starts fully local
    /// (bit-identical behavior until `mark_remote`/schedule calls).
    pub(crate) fn enable_cluster(&mut self, host: u32, costs: MigCosts) {
        let n = self.topo.num_vms as usize;
        if let Some(r) = self.router.as_mut() {
            r.set_host(host);
        }
        self.mig = Some(Box::new(MigState {
            guest_local: vec![true; n],
            ext_local: vec![true; n],
            incoming: (0..n).map(|_| None).collect(),
            staged: (0..n).map(|_| None).collect(),
            out_plan: vec![VecDeque::new(); n],
            restarts: vec![VecDeque::new(); n],
            boots: vec![VecDeque::new(); n],
            reclaimed: vec![false; n],
            cross_out: Vec::new(),
            costs,
            ledger: MigLedger::default(),
        }));
    }

    fn mig_mut(&mut self) -> &mut MigState {
        self.mig.as_mut().expect("cluster machinery not enabled")
    }

    /// Mark a slot as resident elsewhere (guest and peer both remote).
    pub(crate) fn mark_remote(&mut self, vm: u32) {
        let m = self.mig_mut();
        m.guest_local[vm as usize] = false;
        m.ext_local[vm as usize] = false;
    }

    /// Schedule an out-migration of `vm` pausing at `at`. `abort` is the
    /// predrawn mid-copy failure decision for this move.
    pub(crate) fn schedule_migration_out(&mut self, at: SimTime, vm: u32, abort: bool) {
        self.mig_mut().out_plan[vm as usize].push_back(PlannedOut { abort });
        self.q.push(at, Ev::MigrateStart { vm });
    }

    /// Schedule the target-side expectation of an inbound move pausing
    /// at `at` (starts the blackout buffer here).
    pub(crate) fn schedule_migration_in(&mut self, at: SimTime, vm: u32) {
        self.q.push(at, Ev::MigrateExpect { vm });
    }

    /// Schedule a crash victim's cold restart here at `at`.
    pub(crate) fn schedule_cold_restart(&mut self, at: SimTime, vm: u32, spec: WorkloadSpec) {
        self.mig_mut().restarts[vm as usize].push_back(spec);
        self.q.push(at, Ev::ColdRestart { vm });
    }

    /// Schedule the retirement of `vm`'s external peer here at `at` (its
    /// guest crash-restarted on another host, which rebuilt the peer).
    pub(crate) fn schedule_ext_retire(&mut self, at: SimTime, vm: u32) {
        self.q.push(at, Ev::ExtRetire { vm });
    }

    /// Schedule a churn arrival's boot in slot `vm` here at `at`. A
    /// `stuck` boot parks mid-handshake and waits for its timeout.
    pub(crate) fn schedule_vm_boot(&mut self, at: SimTime, vm: u32, spec: WorkloadSpec, stuck: bool) {
        self.mig_mut().boots[vm as usize].push_back((spec, stuck));
        self.q.push(at, Ev::VmBoot { vm });
    }

    /// Schedule the end of churn tenant `vm`'s lifetime here at `at`.
    pub(crate) fn schedule_vm_depart(&mut self, at: SimTime, vm: u32) {
        self.q.push(at, Ev::VmDepart { vm });
    }

    /// Schedule the handshake-timeout rollback of a stuck boot at `at`.
    pub(crate) fn schedule_boot_timeout(&mut self, at: SimTime, vm: u32) {
        self.q.push(at, Ev::BootTimeout { vm });
    }

    /// Schedule an observational control-plane note (admit/reject) at
    /// `at`: tracer + telemetry annotation only.
    pub(crate) fn schedule_churn_note(&mut self, at: SimTime, vm: u32, kind: &'static str, arg: u64) {
        self.q.push(at, Ev::ChurnNote { vm, kind, arg });
    }

    /// Drain the cross-host emissions staged since the last step.
    pub(crate) fn take_cross_out(&mut self) -> Vec<CrossOut> {
        match self.mig.as_mut() {
            Some(m) if !m.cross_out.is_empty() => std::mem::take(&mut m.cross_out),
            _ => Vec::new(),
        }
    }

    /// Accept a peer-bound packet forwarded from the VM's current host.
    pub(crate) fn receive_cross_ext(&mut self, at: SimTime, vm: u32, pkt: Packet) {
        self.q.push(at, Ev::ArriveAtExt { vm, pkt });
    }

    /// Accept a stale MSI forwarded from a host the VM left.
    pub(crate) fn receive_cross_msi(&mut self, at: SimTime, vm: u32, vector: Vector) {
        self.q.push(at, Ev::RetargetMsi { vm, vector });
    }

    /// Accept a migrating VM's snapshot, staging its resume at `at`.
    pub(crate) fn receive_snapshot(&mut self, at: SimTime, vm: u32, snap: Box<VmSnapshot>) {
        let m = self.mig_mut();
        debug_assert!(m.staged[vm as usize].is_none(), "double-staged snapshot");
        m.staged[vm as usize] = Some(snap);
        self.q.push(at, Ev::MigrateArrive { vm });
    }

    /// The migration ledger, if this machine is a cluster member.
    pub fn mig_ledger(&self) -> Option<&MigLedger> {
        self.mig.as_ref().map(|m| &m.ledger)
    }

    // -----------------------------------------------------------------
    // Event gate
    // -----------------------------------------------------------------

    /// Filter one event through the cluster gate (only called when
    /// `mig` is `Some`). Returns the event to process locally, or `None`
    /// if it was forwarded across the mailbox, buffered for resume, or
    /// dropped (re-armed at resume by construction).
    pub(crate) fn mig_gate(&mut self, ev: Ev) -> Option<Ev> {
        match ev {
            Ev::ArriveAtHost { vm, pkt } => {
                let now = self.now;
                let m = self.mig.as_mut().unwrap();
                let vmi = vm as usize;
                if let Some(buf) = m.incoming[vmi].as_mut() {
                    buf.pkts.push(pkt);
                    None
                } else if !m.guest_local[vmi] {
                    if m.reclaimed[vmi] {
                        // The tenant was torn down here; its old flows
                        // drop at the host edge rather than bouncing
                        // against the stale location timeline.
                        return None;
                    }
                    let at = now + crate::lanes::CROSS_LANE_LOOKAHEAD;
                    m.cross_out.push(CrossOut::GuestPkt { vm, at, pkt });
                    None
                } else {
                    Some(ev)
                }
            }
            Ev::ArriveAtExt { vm, pkt } => {
                let now = self.now;
                let m = self.mig.as_mut().unwrap();
                if !m.ext_local[vm as usize] {
                    if m.reclaimed[vm as usize] {
                        return None;
                    }
                    let at = now + crate::lanes::CROSS_LANE_LOOKAHEAD;
                    m.cross_out.push(CrossOut::ExtPkt { vm, at, pkt });
                    None
                } else {
                    Some(ev)
                }
            }
            Ev::DelayedMsi { vm, vector } | Ev::RetargetMsi { vm, vector } => {
                let now = self.now;
                let m = self.mig.as_mut().unwrap();
                let vmi = vm as usize;
                if let Some(buf) = m.incoming[vmi].as_mut() {
                    buf.msis.push(vector);
                    None
                } else if !m.guest_local[vmi] {
                    if m.reclaimed[vmi] {
                        return None;
                    }
                    let at = now + crate::lanes::CROSS_LANE_LOOKAHEAD;
                    m.cross_out.push(CrossOut::StaleMsi { vm, at, vector });
                    None
                } else {
                    Some(ev)
                }
            }
            // A legacy assigned-device IRQ is a device MSI in flight: it
            // follows the VM like one (buffered or forwarded as the RX
            // vector over the reliable path).
            Ev::VfIrq { vm } => {
                let vector = self.vms[vm as usize].pairs[0].rx_vector;
                let now = self.now;
                let m = self.mig.as_mut().unwrap();
                let vmi = vm as usize;
                if let Some(buf) = m.incoming[vmi].as_mut() {
                    buf.msis.push(vector);
                    None
                } else if !m.guest_local[vmi] {
                    if m.reclaimed[vmi] {
                        return None;
                    }
                    let at = now + crate::lanes::CROSS_LANE_LOOKAHEAD;
                    m.cross_out.push(CrossOut::StaleMsi { vm, at, vector });
                    None
                } else {
                    Some(ev)
                }
            }
            // Guest-side chains whose state travels inside the snapshot:
            // a stale instance addressed to a slot that is mid-blackout
            // or gone is dropped — resume re-arms each from the carried
            // state (ack_flush_pending, needs_reset, throttle bucket,
            // stuck-handler scan, RTO chain).
            Ev::DelayedKick { vm, .. }
            | Ev::ThrottledKick { vm, .. }
            | Ev::HandlerRequeue { vm, .. }
            | Ev::GuestQueueReset { vm, .. }
            | Ev::AckFlush { vm }
            | Ev::GuestTcpTimeout { vm } => {
                let m = self.mig.as_ref().unwrap();
                let vmi = vm as usize;
                if !m.guest_local[vmi] || m.incoming[vmi].is_some() {
                    None
                } else {
                    Some(ev)
                }
            }
            _ => Some(ev),
        }
    }

    // -----------------------------------------------------------------
    // Pause / resume
    // -----------------------------------------------------------------

    /// Deschedule and pack `vm`, leaving a fresh dormant slot behind.
    /// Running vCPUs take a migration-forced exit (router sees them go
    /// offline); every thread's saved segment, the virtio rings, parked
    /// IRQs, posted-interrupt and ledger state travel in the snapshot.
    pub(crate) fn pause_vm(&mut self, vm: u32) -> Box<VmSnapshot> {
        let vmi = vm as usize;
        let vcpu_tids = self.vms[vmi].vcpu_tids.clone();
        let vhost_tids = self.vms[vmi].vhost_tids.clone();

        let mut vcpu_active = Vec::with_capacity(vcpu_tids.len());
        for &tid in &vcpu_tids {
            vcpu_active.push(self.sched.entity(tid).state != ThreadState::Sleeping);
            if let Some(sw) = self.sched.deactivate(tid, self.now) {
                self.apply_switch(sw);
            }
        }
        let mut vhost_active = Vec::with_capacity(vhost_tids.len());
        for &tid in &vhost_tids {
            vhost_active.push(self.sched.entity(tid).state != ThreadState::Sleeping);
            if let Some(sw) = self.sched.deactivate(tid, self.now) {
                self.apply_switch(sw);
            }
        }

        // Saved segments travel with the VM; any pending SegDone dies
        // via the generation bump.
        let mut vcpu_segs = Vec::with_capacity(vcpu_tids.len());
        for &tid in &vcpu_tids {
            self.threads[tid.idx()].gen.bump();
            vcpu_segs.push(self.threads[tid.idx()].seg.take());
        }
        let mut vhost_segs = Vec::with_capacity(vhost_tids.len());
        for &tid in &vhost_tids {
            self.threads[tid.idx()].gen.bump();
            vhost_segs.push(self.threads[tid.idx()].seg.take());
        }

        // Flight-recorder correlation IDs reference the *source*
        // recorder's ledgers; they cannot complete on another host.
        // Observational state only, zero in untraced runs.
        let vectors: Vec<(Vector, Vector)> = self.vms[vmi]
            .pairs
            .iter()
            .map(|p| (p.tx_vector, p.rx_vector))
            .collect();
        for v in &mut self.vms[vmi].vcpus {
            for &(tx_vec, rx_vec) in &vectors {
                v.corr.take(tx_vec);
                v.corr.take(rx_vec);
            }
            v.corr.take(es2_apic::vectors::LOCAL_TIMER_VECTOR);
        }

        let costs = self.mig.as_ref().unwrap().costs;
        let dirty = {
            let s = &self.vms[vmi];
            s.pairs
                .iter()
                .map(|p| {
                    p.tx.avail_pending() as u64
                        + p.tx.used_pending() as u64
                        + p.rx.avail_pending() as u64
                        + p.rx.used_pending() as u64
                        + p.backlog.len() as u64
                })
                .sum::<u64>()
        };
        let copy_cost = costs.copy_base
            + SimDuration::from_nanos(costs.copy_per_unit.as_nanos().saturating_mul(dirty));
        let blackout = costs.pause + copy_cost + costs.resume;

        let modes = self.modes.take_vm(vmi);
        let spec = std::mem::replace(&mut self.specs[vmi], WorkloadSpec::IdleQuiet);
        let fresh = Self::blank_vm_state(
            &self.p,
            &self.cfg,
            vm,
            &WorkloadSpec::IdleQuiet,
            false,
            vcpu_tids,
            vhost_tids,
        );
        let state = std::mem::replace(&mut self.vms[vmi], fresh);

        self.tracer.record(self.now, "mig-pause", vm as u64, dirty);
        if let Some(sp) = self.spans.as_mut() {
            sp.migration_phase(
                vm,
                "mig-pause",
                self.now.as_nanos(),
                costs.pause.as_nanos(),
                dirty,
            );
            sp.migration_phase(
                vm,
                "mig-copy",
                (self.now + costs.pause).as_nanos(),
                copy_cost.as_nanos(),
                dirty,
            );
        }
        {
            let m = self.mig.as_mut().unwrap();
            m.ledger.pause_ns.push(costs.pause.as_nanos());
            m.ledger.copy_ns.push(copy_cost.as_nanos());
        }

        Box::new(VmSnapshot {
            state,
            spec,
            vcpu_segs,
            vcpu_active,
            vhost_segs,
            vhost_active,
            modes,
            blackout,
            resume_cost: costs.resume,
        })
    }

    /// Install and resume a snapshot in slot `vm` on this host.
    pub(crate) fn resume_vm(&mut self, vm: u32, snap: Box<VmSnapshot>) {
        let vmi = vm as usize;
        let vcpu_tids = self.vms[vmi].vcpu_tids.clone();
        let vhost_tids = self.vms[vmi].vhost_tids.clone();
        let snap = *snap;

        let mut st = snap.state;
        st.vcpu_tids = vcpu_tids.clone();
        st.vhost_tids = vhost_tids.clone();
        // Slot indices are global across the cell, but re-stamp the vCPU
        // identities defensively (they feed router notifications).
        for (i, v) in st.vcpus.iter_mut().enumerate() {
            v.id = VcpuId::new(vm, i as u32);
        }
        // Any coalesced throttle wake died with the source's queue; the
        // next kick re-enters admission from the carried bucket state.
        for pair in st.pairs.iter_mut() {
            pair.throttle_armed = [false; 2];
        }
        self.vms[vmi] = st;
        self.specs[vmi] = snap.spec;
        self.modes.merge_vm(vmi, snap.modes);

        for (i, seg) in snap.vcpu_segs.into_iter().enumerate() {
            let tid = vcpu_tids[i];
            self.threads[tid.idx()].gen.bump();
            self.threads[tid.idx()].seg = seg;
        }
        for (w, seg) in snap.vhost_segs.into_iter().enumerate() {
            let tid = vhost_tids[w];
            self.threads[tid.idx()].gen.bump();
            self.threads[tid.idx()].seg = seg;
        }

        let buf = {
            let m = self.mig.as_mut().unwrap();
            m.guest_local[vmi] = true;
            // A live tenant arrived: the slot is no longer a reclaimed
            // sink (its traffic must forward again if it moves on).
            m.reclaimed[vmi] = false;
            m.ledger.resumed += 1;
            m.ledger.blackout_ns.push(snap.blackout.as_nanos());
            m.ledger.resume_ns.push(snap.resume_cost.as_nanos());
            m.incoming[vmi].take()
        };

        self.tracer.record(self.now, "mig-resume", vm as u64, 0);
        if let Some(sp) = self.spans.as_mut() {
            sp.migration_phase(
                vm,
                "mig-resume",
                self.now.as_nanos(),
                snap.resume_cost.as_nanos(),
                snap.blackout.as_nanos(),
            );
        }

        // Wake what was active at pause. sched_in notifications rebuild
        // this host's online list; parked IRQs flush on the first wake.
        for (i, active) in snap.vcpu_active.iter().enumerate() {
            if *active {
                self.wake_thread(vcpu_tids[i]);
            }
        }
        for (w, active) in snap.vhost_active.iter().enumerate() {
            if *active || self.vms[vmi].worker.has_work_on(w) {
                self.wake_thread(vhost_tids[w]);
            }
        }

        // Stale-state scan: the exact watchdog pass, run synchronously.
        // Re-kicks stuck handlers and re-raises lost MSIs through
        // route_and_deliver_msi_from — resolving against the *target*
        // router's freshly rebuilt lists.
        self.watchdog_scan_vm(vm);

        // Polling-mode handlers whose requeue event died on the source
        // (the watchdog scan only covers notification mode), and
        // quarantined rings whose DEVICE_NEEDS_RESET handshake's pending
        // reset event died with the source queue — per pair.
        for qi in 0..self.vms[vmi].pairs.len() {
            let tx_h = self.vms[vmi].pairs[qi].tx_h;
            let rx_h = self.vms[vmi].pairs[qi].rx_h;
            if !self.vms[vmi].pairs[qi].tx.is_broken()
                && self.vms[vmi].pairs[qi].tx.avail_pending() > 0
                && !self.vms[vmi].worker.is_queued(tx_h)
                && !self.vms[vmi].cur_handler.contains(&Some(tx_h))
            {
                let (w, _) = self.vms[vmi].worker.queue_work(tx_h);
                self.wake_thread(vhost_tids[w]);
            }
            if self.vms[vmi].pairs[qi].tx.needs_reset() {
                self.q.push(
                    self.now + self.p.quarantine_reset_delay,
                    Ev::GuestQueueReset { vm, h: tx_h },
                );
            }
            if self.vms[vmi].pairs[qi].rx.needs_reset() {
                self.q.push(
                    self.now + self.p.quarantine_reset_delay,
                    Ev::GuestQueueReset { vm, h: rx_h },
                );
            }
        }

        // Delayed-ACK flush and TCP RTO chains, re-armed from carried
        // workload state (their timer events died on the source).
        if matches!(
            self.vms[vmi].wl,
            GuestWl::NetperfRecv {
                ack_flush_pending: true,
                ..
            }
        ) {
            self.q
                .push(self.now + self.p.delayed_ack_timeout, Ev::AckFlush { vm });
        }
        if self.faults.is_active() {
            let tcp_sender = matches!(
                &self.vms[vmi].wl,
                GuestWl::NetperfSend { spec, .. }
                    if spec.proto == es2_workloads::NetperfProto::Tcp
            );
            if tcp_sender {
                self.q
                    .push(self.now + self.p.guest_rto_check, Ev::GuestTcpTimeout { vm });
            }
        }

        // Replay the blackout's buffered arrivals: stale MSIs first over
        // the reliable path, then packets in arrival order.
        if let Some(buf) = buf {
            for vector in buf.msis {
                self.note_retarget(vm, vector);
            }
            for pkt in buf.pkts {
                self.on_arrive_host(vm, pkt);
            }
        }
    }

    /// Re-raise a stale MSI on this host over the reliable watchdog
    /// path, resolved against this host's own online/offline lists.
    fn note_retarget(&mut self, vm: u32, vector: Vector) {
        self.mig_mut().ledger.retargets += 1;
        self.tracer
            .record(self.now, "mig-retarget", vm as u64, vector as u64);
        if let Some(sp) = self.spans.as_mut() {
            sp.migration_phase(vm, "mig-retarget", self.now.as_nanos(), 0, vector as u64);
        }
        self.route_and_deliver_msi_from(vm, vector, true);
    }

    // -----------------------------------------------------------------
    // Event handlers
    // -----------------------------------------------------------------

    /// Record a control-plane typed error: an operation arrived against
    /// a slot in the wrong state (stale plan entry, missing snapshot or
    /// spec, teardown of a non-resident slot). Once slots free mid-run
    /// these paths are reachable, so they must not panic — `liveness`
    /// promotes every recorded entry to a fatal violation instead (the
    /// same discipline as the vhost panic audit).
    fn ctl_error(&mut self, vm: u32, msg: String) {
        self.tracer.record(self.now, "ctl-error", vm as u64, 0);
        self.mig_mut().ledger.ctl_errors.push(msg);
    }

    pub(crate) fn on_migrate_start(&mut self, vm: u32) {
        let vmi = vm as usize;
        let planned = match self.mig_mut().out_plan[vmi].pop_front() {
            Some(p) => p,
            None => {
                self.ctl_error(vm, format!("MigrateStart for vm{vm} without a planned move"));
                return;
            }
        };
        let snap = self.pause_vm(vm);
        let blackout = snap.blackout;
        let at = self.now + blackout;
        if let Some(t) = self.tel.as_deref_mut() {
            let kind = if planned.abort {
                "mig-abort"
            } else {
                "migrate-start"
            };
            t.annotate(self.now.as_nanos(), vm, kind, blackout.as_nanos());
        }
        if planned.abort {
            // Mid-copy failure: the move rolls back. The source keeps
            // the snapshot, rides out the same blackout locally (pause +
            // attempted copy + resume), and resumes in place.
            self.tracer.record(self.now, "mig-abort", vm as u64, 0);
            let m = self.mig_mut();
            m.ledger.aborts += 1;
            m.incoming[vmi] = Some(IncomingBuf::default());
            m.staged[vmi] = Some(snap);
            self.q.push(at, Ev::MigrateArrive { vm });
        } else {
            let m = self.mig_mut();
            m.ledger.out += 1;
            m.guest_local[vmi] = false;
            m.cross_out.push(CrossOut::Snapshot { vm, at, snap });
        }
    }

    pub(crate) fn on_migrate_arrive(&mut self, vm: u32) {
        let snap = match self.mig_mut().staged[vm as usize].take() {
            Some(s) => s,
            None => {
                self.ctl_error(vm, format!("MigrateArrive for vm{vm} without a staged snapshot"));
                return;
            }
        };
        if let Some(t) = self.tel.as_deref_mut() {
            t.annotate(self.now.as_nanos(), vm, "migrate-arrive", 0);
        }
        self.resume_vm(vm, snap);
    }

    pub(crate) fn on_migrate_expect(&mut self, vm: u32) {
        let m = self.mig_mut();
        m.incoming[vm as usize].get_or_insert_with(IncomingBuf::default);
    }

    pub(crate) fn on_retarget_msi(&mut self, vm: u32, vector: Vector) {
        // The gate already forwarded/buffered if the slot is not local.
        self.note_retarget(vm, vector);
    }

    pub(crate) fn on_ext_retire(&mut self, vm: u32) {
        // The peer's guest crash-restarted on another host, which
        // rebuilt the peer there; this orphan goes quiet (its pending
        // sends no-op on the Idle workload).
        self.ext[vm as usize] = crate::workload::ExtWl::Idle;
        self.tracer.record(self.now, "ext-retire", vm as u64, 0);
    }

    /// A crash victim cold-restarts here: fresh VM state, fresh rings,
    /// and a fresh external peer rebuilt locally (the old one died with
    /// the crashed host or is retired). In-flight state of the crashed
    /// host is gone — this is disaster recovery, not live migration —
    /// but the restarted VM regains full forward progress.
    pub(crate) fn on_cold_restart(&mut self, vm: u32) {
        let spec = match self.mig_mut().restarts[vm as usize].pop_front() {
            Some(s) => s,
            None => {
                self.ctl_error(vm, format!("ColdRestart for vm{vm} without a spec"));
                return;
            }
        };
        self.mig_mut().ledger.restarts += 1;
        self.boot_fresh_vm(vm, spec, "cold-restart");
    }

    /// A churn arrival's boot lands here: a clean boot is a fresh VM
    /// exactly like a cold restart; a stuck boot parks mid-handshake and
    /// occupies the slot until its timeout rolls it back.
    pub(crate) fn on_vm_boot(&mut self, vm: u32) {
        let (spec, stuck) = match self.mig_mut().boots[vm as usize].pop_front() {
            Some(b) => b,
            None => {
                self.ctl_error(vm, format!("VmBoot for vm{vm} without a staged boot"));
                return;
            }
        };
        if stuck {
            self.partial_boot(vm);
        } else {
            self.mig_mut().ledger.boots += 1;
            self.boot_fresh_vm(vm, spec, "vm-boot");
        }
    }

    /// Churn tenant `vm`'s lifetime ended: tear it down and reclaim.
    pub(crate) fn on_vm_depart(&mut self, vm: u32) {
        if self.teardown_vm(vm, "vm-depart") {
            self.mig_mut().ledger.departs += 1;
        }
    }

    /// A stuck boot's handshake timer fired: roll the partial boot back.
    pub(crate) fn on_boot_timeout(&mut self, vm: u32) {
        if self.teardown_vm(vm, "boot-timeout") {
            self.mig_mut().ledger.boot_timeouts += 1;
        }
    }

    /// Observational control-plane note (admit/reject): tracer and
    /// telemetry annotation only — never touches RNG or VM state.
    pub(crate) fn on_churn_note(&mut self, vm: u32, kind: &'static str, arg: u64) {
        self.tracer.record(self.now, kind, vm as u64, arg);
        if let Some(t) = self.tel.as_deref_mut() {
            t.annotate(self.now.as_nanos(), vm, kind, arg);
        }
    }

    /// Bring slot `vm` fully live with fresh state: fresh rings, fresh
    /// external peer rebuilt locally, guest booted exactly like
    /// bootstrap. Shared by cold restarts and clean churn boots.
    fn boot_fresh_vm(&mut self, vm: u32, spec: WorkloadSpec, label: &'static str) {
        let vmi = vm as usize;
        let vcpu_tids = self.vms[vmi].vcpu_tids.clone();
        let vhost_tids = self.vms[vmi].vhost_tids.clone();

        // The dormant slot's threads may still be awake (a parked vCPU
        // waiting for its first slice on a busy host): park them before
        // rebooting, exactly like a teardown. No-op on sleeping threads,
        // so a cold restart of a long-dormant slot is unchanged.
        for &tid in &vcpu_tids {
            if let Some(sw) = self.sched.deactivate(tid, self.now) {
                self.apply_switch(sw);
            }
        }
        for &tid in &vhost_tids {
            if let Some(sw) = self.sched.deactivate(tid, self.now) {
                self.apply_switch(sw);
            }
        }
        for &tid in &vcpu_tids {
            self.threads[tid.idx()].gen.bump();
            self.threads[tid.idx()].seg = None;
        }
        for &tid in &vhost_tids {
            self.threads[tid.idx()].gen.bump();
            self.threads[tid.idx()].seg = None;
        }

        let fresh = Self::blank_vm_state(
            &self.p,
            &self.cfg,
            vm,
            &spec,
            true,
            vcpu_tids.clone(),
            vhost_tids,
        );
        self.vms[vmi] = fresh;
        let ext_seed = self.rng.next_u64();
        self.ext[vmi] = crate::workload::ExtWl::for_spec(&spec, self.p.ext_tcp_window, ext_seed);
        self.specs[vmi] = spec;
        {
            let m = self.mig_mut();
            m.guest_local[vmi] = true;
            m.ext_local[vmi] = true;
            m.incoming[vmi] = None;
            m.reclaimed[vmi] = false;
        }
        self.tracer.record(self.now, label, vm as u64, 0);
        if let Some(t) = self.tel.as_deref_mut() {
            t.annotate(self.now.as_nanos(), vm, label, 0);
        }

        // Boot the guest exactly like bootstrap does: staggered
        // vruntimes, woken vCPUs, external kick-off, recovery chains.
        let latency = self.p.sched.sched_latency.as_nanos();
        for &tid in &vcpu_tids {
            let nudge = self.rng.gen_range(latency);
            self.sched.nudge_vruntime(tid, nudge);
            self.wake_thread(tid);
        }
        self.bootstrap_external_vm(vm);
        if self.faults.is_active() {
            let tcp_sender = matches!(
                &self.vms[vmi].wl,
                GuestWl::NetperfSend { spec, .. }
                    if spec.proto == es2_workloads::NetperfProto::Tcp
            );
            if tcp_sender {
                self.q
                    .push(self.now + self.p.guest_rto_check, Ev::GuestTcpTimeout { vm });
            }
        }
    }

    /// A stuck boot: the vCPUs come up (firmware spin, then halt) but
    /// the virtio handshake never completes — no device, no external
    /// peer, no traffic. The slot counts against its host's capacity
    /// until the handshake timeout tears it back down.
    fn partial_boot(&mut self, vm: u32) {
        let vmi = vm as usize;
        let vcpu_tids = self.vms[vmi].vcpu_tids.clone();
        let vhost_tids = self.vms[vmi].vhost_tids.clone();
        for &tid in &vcpu_tids {
            if let Some(sw) = self.sched.deactivate(tid, self.now) {
                self.apply_switch(sw);
            }
        }
        for &tid in &vhost_tids {
            if let Some(sw) = self.sched.deactivate(tid, self.now) {
                self.apply_switch(sw);
            }
        }
        for &tid in &vcpu_tids {
            self.threads[tid.idx()].gen.bump();
            self.threads[tid.idx()].seg = None;
        }
        for &tid in &vhost_tids {
            self.threads[tid.idx()].gen.bump();
            self.threads[tid.idx()].seg = None;
        }
        let fresh = Self::blank_vm_state(
            &self.p,
            &self.cfg,
            vm,
            &WorkloadSpec::IdleQuiet,
            false,
            vcpu_tids.clone(),
            vhost_tids,
        );
        self.vms[vmi] = fresh;
        self.specs[vmi] = WorkloadSpec::IdleQuiet;
        self.ext[vmi] = crate::workload::ExtWl::Idle;
        {
            let m = self.mig_mut();
            m.guest_local[vmi] = true;
            m.ext_local[vmi] = false;
            m.incoming[vmi] = None;
            m.reclaimed[vmi] = false;
        }
        self.tracer.record(self.now, "vm-boot-stuck", vm as u64, 1);
        if let Some(t) = self.tel.as_deref_mut() {
            t.annotate(self.now.as_nanos(), vm, "vm-boot", 1);
        }
        let latency = self.p.sched.sched_latency.as_nanos();
        for &tid in &vcpu_tids {
            let nudge = self.rng.gen_range(latency);
            self.sched.nudge_vruntime(tid, nudge);
            self.wake_thread(tid);
        }
    }

    /// Tear slot `vm` down and reclaim everything it held: threads
    /// descheduled (running vCPUs take a forced exit on the way out,
    /// exactly like a migration pause), pending segment completions die
    /// via the generation bump, and the slot becomes a fresh dormant VM
    /// with empty rings — so the conservation invariant holds by
    /// construction, and anything a teardown path misses shows up
    /// against it. Returns `false` (with a typed error recorded) if the
    /// slot is not resident here.
    pub(crate) fn teardown_vm(&mut self, vm: u32, label: &'static str) -> bool {
        let vmi = vm as usize;
        let resident = self.mig.as_ref().is_some_and(|m| m.guest_local[vmi]);
        if !resident {
            self.ctl_error(vm, format!("{label} for vm{vm} that is not resident here"));
            return false;
        }
        let vcpu_tids = self.vms[vmi].vcpu_tids.clone();
        let vhost_tids = self.vms[vmi].vhost_tids.clone();
        for &tid in &vcpu_tids {
            if let Some(sw) = self.sched.deactivate(tid, self.now) {
                self.apply_switch(sw);
            }
        }
        for &tid in &vhost_tids {
            if let Some(sw) = self.sched.deactivate(tid, self.now) {
                self.apply_switch(sw);
            }
        }
        for &tid in &vcpu_tids {
            self.threads[tid.idx()].gen.bump();
            self.threads[tid.idx()].seg = None;
        }
        for &tid in &vhost_tids {
            self.threads[tid.idx()].gen.bump();
            self.threads[tid.idx()].seg = None;
        }
        let fresh = Self::blank_vm_state(
            &self.p,
            &self.cfg,
            vm,
            &WorkloadSpec::IdleQuiet,
            false,
            vcpu_tids,
            vhost_tids,
        );
        self.vms[vmi] = fresh;
        self.specs[vmi] = WorkloadSpec::IdleQuiet;
        self.ext[vmi] = crate::workload::ExtWl::Idle;
        {
            let m = self.mig_mut();
            m.guest_local[vmi] = false;
            m.ext_local[vmi] = false;
            m.incoming[vmi] = None;
            // Deliberately leave `boots[vmi]` alone: a later boot of the
            // same slot on this host may already be staged.
            m.reclaimed[vmi] = true;
        }
        self.tracer.record(self.now, label, vm as u64, 0);
        if let Some(t) = self.tel.as_deref_mut() {
            t.annotate(self.now.as_nanos(), vm, label, 0);
        }
        true
    }

    // -----------------------------------------------------------------
    // State construction
    // -----------------------------------------------------------------

    /// A freshly-initialized [`VmState`] for slot `vm`, mirroring the
    /// constructor's per-VM block but reusing the slot's existing
    /// threads. `prefill_rx` pre-fills the RX ring like a booting guest
    /// driver (cold restart); a dormant vacated slot keeps empty rings
    /// so ring-conservation invariants hold trivially.
    pub(crate) fn blank_vm_state(
        p: &crate::params::Params,
        cfg: &es2_core::EventPathConfig,
        vm: u32,
        spec: &WorkloadSpec,
        prefill_rx: bool,
        vcpu_tids: Vec<ThreadId>,
        vhost_tids: Vec<ThreadId>,
    ) -> VmState {
        let path = if cfg.use_pi {
            InterruptPath::Posted
        } else {
            InterruptPath::Emulated
        };
        let nv = vcpu_tids.len();
        let num_workers = vhost_tids.len();
        let mut vcpus = Vec::with_capacity(nv);
        let mut vctx = Vec::with_capacity(nv);
        for idx in 0..nv {
            vcpus.push(Vcpu::new(VcpuId::new(vm, idx as u32), path));
            vctx.push(VcpuCtx::default());
        }
        let mut worker = VhostPool::new(num_workers, p.shard_policy);
        let vq_cfg = VirtqueueConfig {
            size: p.ring_size,
            event_idx: true,
        };
        let num_pairs = p.queues_per_vm.max(1);
        let mut pf_init = PacketFactory::new();
        let mut pairs = Vec::with_capacity(num_pairs as usize);
        for qi in 0..num_pairs {
            let owner = qi % nv as u32;
            let (tx_h, rx_h) = worker.register_pair(vm, qi, owner);
            let mut tx = Virtqueue::with_id(
                vq_cfg,
                QueueId {
                    vm,
                    vq: (2 * qi) as u16,
                },
            );
            let mut rx = Virtqueue::with_id(
                vq_cfg,
                QueueId {
                    vm,
                    vq: (2 * qi + 1) as u16,
                },
            );
            tx.driver_disable_interrupts();
            if prefill_rx {
                for _ in 0..p.ring_size {
                    let placeholder = pf_init.make(
                        es2_net::FlowId(vm),
                        es2_net::PacketKind::Data,
                        0,
                        SimTime::ZERO,
                    );
                    rx.driver_add(placeholder).expect("ring has room");
                }
            }
            rx.device_disable_notify();
            let mut tx_handler = match cfg.hybrid {
                Some(h) => HybridHandler::new(h),
                None => HybridHandler::stock(),
            };
            if let Some(bp) = p.backpressure {
                tx_handler.set_service_budget(bp.service_budget);
            }
            pairs.push(QueuePair {
                tx_h,
                rx_h,
                tx,
                rx,
                tx_handler,
                rx_turn: 0,
                backlog: es2_net::NicQueue::new(p.host_backlog),
                tx_vector: 0x41 + (2 * qi) as u8,
                rx_vector: 0x42 + (2 * qi) as u8,
                affinity_vcpu: owner,
                blocked_tx_full: false,
                kick_bucket: p.backpressure.as_ref().map(crate::backpressure::KickBucket::new),
                throttle_armed: [false; 2],
                budget_window_idx: 0,
            });
        }
        VmState {
            vcpus,
            vcpu_tids,
            vctx,
            vhost_tids,
            worker,
            cur_handler: vec![None; num_workers],
            pairs,
            guest_idles: spec.guest_idles(),
            wl: GuestWl::for_spec(spec, p.tcp_window),
            dropped_tx: 0,
            vf_drops: 0,
            parked_irqs: Vec::new(),
            parked_count: 0,
            migrated_count: 0,
            rx_latency: es2_metrics::Summary::new(),
            pi_failed: false,
            watchdog_rekicks: 0,
            watchdog_reraises: 0,
            guest_rtos: 0,
            bp: es2_metrics::BackpressureStats::default(),
            rx_hist: es2_metrics::Histogram::new(),
            device_irqs_per_vcpu: vec![0; nv],
        }
    }
}
