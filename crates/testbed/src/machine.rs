//! The simulated testbed machine: event loop, scheduling glue, VM exits.
//!
//! One [`Machine`] is the full §VI-A testbed: an 8-core host running
//! `num_vms` VMs (each with its vCPU threads and a vhost worker thread
//! under the CFS model), a back-to-back 40 GbE link, and the external
//! traffic-generator server. A run is a pure function of
//! `(config, topology, workload, params, seed)`.
//!
//! Execution model: every host thread executes a sequence of **segments**
//! (typed spans of work). Segment completions, timer ticks, IPIs and wire
//! arrivals are the events. Preempted segments save their remaining time
//! and resume later (lazy invalidation via generation tokens). vCPU
//! segments are either *guest mode* (app work, interrupt handlers, burn
//! loops) or *root mode* (VM-exit handling), and the transitions between
//! the two are exactly the paper's event-path operations.

use es2_apic::vectors::LOCAL_TIMER_VECTOR;
use es2_apic::Vector;
use es2_core::{Es2Router, EventPathConfig, HybridHandler, RedirectionEngine};
use es2_hypervisor::{
    AffinityRouter, DeliveryOutcome, ExitReason, InterruptPath, MsiRouter, RouteCtx, Vcpu, VcpuId,
    VmId,
};
use es2_metrics::ModeAccounting;
use es2_net::{Link, NicQueue, Packet, PacketFactory};
use es2_sched::{CfsScheduler, CoreId, Switch, ThreadId, ThreadState};
use es2_sim::{
    DeliveryFault, EventQueue, FaultInjector, FaultPlan, GenToken, RingCorruptionKind, SimDuration,
    SimRng, SimTime,
};
use es2_virtio::{HandlerId, QueueId, VhostPool, Virtqueue, VirtqueueConfig};

use crate::params::Params;
use crate::results::RunResult;
use crate::workload::{AppRequest, GuestWl, WorkloadSpec};

/// Placement of VMs onto the host.
#[derive(Clone, Copy, Debug)]
pub struct Topology {
    /// Number of VMs.
    pub num_vms: u32,
    /// vCPUs per VM. vCPU `j` of every VM is pinned to core `j`, so VMs
    /// *time-share* the first `vcpus_per_vm` cores (the paper's §VI-D
    /// setup); vhost workers run on the remaining cores.
    pub vcpus_per_vm: u32,
}

impl Topology {
    /// The 1-vCPU micro-benchmark setup (§VI-B/C): one VM, one vCPU.
    pub fn micro() -> Self {
        Topology {
            num_vms: 1,
            vcpus_per_vm: 1,
        }
    }

    /// The multiplexed setup (§VI-D/E): "four VMs were created to
    /// time-share four physical cores", 4 vCPUs each.
    pub fn multiplexed() -> Self {
        Topology {
            num_vms: 4,
            vcpus_per_vm: 4,
        }
    }
}

// ---------------------------------------------------------------------
// Internal types
// ---------------------------------------------------------------------

/// Role of a host thread.
#[derive(Clone, Copy, Debug)]
pub(crate) enum Body {
    /// A vCPU thread.
    Vcpu { vm: u32, idx: u32 },
    /// vhost worker `w` of the VM's backend pool.
    Vhost { vm: u32, w: u32 },
}

/// A span of typed work with its remaining duration.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Segment {
    pub(crate) kind: SegKind,
    pub(crate) remaining: SimDuration,
}

#[derive(Clone, Copy, Debug)]
pub(crate) enum SegKind {
    /// Guest CPU-burn script (lowest-priority guest work).
    Burn,
    /// Guest application work.
    App(AppStep),
    /// Guest interrupt handler.
    Irq(IrqKind),
    /// Hardware posted-interrupt notification processing (guest mode).
    PiSync,
    /// Root-mode VM-exit handling.
    Exit {
        /// Retained for tracing/debug dumps.
        #[allow(dead_code)]
        reason: ExitReason,
        then: AfterExit,
    },
    /// vhost worker: handler dispatch overhead.
    VhostDispatch { h: HandlerId },
    /// vhost worker: transmit one packet.
    VhostTxPkt { pkt: Packet },
    /// vhost worker: receive one packet into the guest.
    VhostRxPkt { pkt: Packet },
}

/// Guest application step.
#[derive(Clone, Copy, Debug)]
pub(crate) enum AppStep {
    /// Produce `count` TCP messages on a flow (`segs` segments each).
    /// `count > 1` models softirq/socket batching bursts.
    TcpMsg {
        flow: u32,
        segs: u32,
        payload: u32,
        count: u32,
    },
    /// Produce `count` UDP datagrams.
    UdpMsg { segs: u32, payload: u32, count: u32 },
    /// Serve one application request.
    Serve { req: AppRequest },
}

/// Guest interrupt-handler kinds.
#[derive(Clone, Copy, Debug)]
pub(crate) enum IrqKind {
    /// NAPI receive poll of `batch` packets.
    Rx { vector: Vector, batch: u32 },
    /// TX-completion cleanup for the queue raising `vector`.
    TxClean { vector: Vector },
    /// Guest local-timer handler.
    Timer,
}

/// What to do when a root-mode exit segment finishes.
#[derive(Clone, Copy, Debug)]
pub(crate) enum AfterExit {
    /// Plain re-entry (kick and external-interrupt exits; any injection
    /// happens at entry).
    Resume,
    /// EOI emulation, then re-entry.
    Eoi,
    /// A spurious EOI write from an EOI storm (hostile guest): no
    /// in-service interrupt to complete, possibly more writes to chain.
    SpuriousEoi,
}

pub(crate) struct ThreadInfo {
    pub(crate) body: Body,
    /// Active (if running) or saved (if preempted) segment.
    pub(crate) seg: Option<Segment>,
    pub(crate) seg_started: SimTime,
    pub(crate) gen: GenToken,
}

/// Per-vCPU guest-context bookkeeping.
#[derive(Default)]
pub(crate) struct VcpuCtx {
    /// Segments interrupted by IRQs, to resume after EOI (a stack: higher
    /// priority classes can nest).
    pub(crate) stack: Vec<Segment>,
    /// Virtqueue kicks that became due during IRQ context, performed
    /// (one I/O-instruction exit each) after EOI. Distinct queues can
    /// both require kicks in one NAPI pass (ACK send + RX refill).
    pub(crate) pending_kicks: Vec<HandlerId>,
    /// The last VM exit left caches cold; the next application step pays
    /// the refill penalty.
    pub(crate) cache_cold: bool,
    /// Spurious doorbell kicks (hostile kick storm) still to perform —
    /// each drains as one more I/O-instruction exit charged to this vCPU.
    pub(crate) pending_storm_kicks: u32,
    /// Spurious EOI writes (hostile EOI storm) still to perform on the
    /// emulated path — each is one more APIC-access exit.
    pub(crate) pending_spurious_eois: u32,
}

/// One TX/RX virtqueue pair of a (possibly multi-queue) virtio device,
/// with everything that is per-queue rather than per-VM: its handler
/// identities in the vhost pool, the hybrid TX handler state, the host
/// backlog feeding its RX side, its MSI vectors and owning vCPU, and
/// the per-queue backpressure machinery (kick bucket, TX service-budget
/// window). Pair `q` registers handlers `2q` (TX) and `2q+1` (RX), and
/// raises vectors `0x41 + 2q` / `0x42 + 2q` steered at `affinity_vcpu`.
pub(crate) struct QueuePair {
    pub(crate) tx_h: HandlerId,
    pub(crate) rx_h: HandlerId,
    pub(crate) tx: Virtqueue<Packet>,
    pub(crate) rx: Virtqueue<Packet>,
    pub(crate) tx_handler: HybridHandler,
    pub(crate) rx_turn: u32,
    pub(crate) backlog: NicQueue,
    pub(crate) tx_vector: Vector,
    pub(crate) rx_vector: Vector,
    pub(crate) affinity_vcpu: u32,
    pub(crate) blocked_tx_full: bool,
    /// Per-queue kick admission throttle (`Some` iff `Params::backpressure`).
    pub(crate) kick_bucket: Option<crate::backpressure::KickBucket>,
    /// Per-half flag (0 = TX, 1 = RX): a coalesced [`Ev::ThrottledKick`]
    /// wake is already scheduled.
    pub(crate) throttle_armed: [bool; 2],
    /// Last service-budget window the TX handler was replenished in.
    pub(crate) budget_window_idx: u64,
}

pub(crate) struct VmState {
    pub(crate) vcpus: Vec<Vcpu>,
    pub(crate) vcpu_tids: Vec<ThreadId>,
    pub(crate) vctx: Vec<VcpuCtx>,
    /// One host thread per vhost worker, all time-sharing the VM's vhost
    /// core (worker 0 first — the legacy single-worker thread).
    pub(crate) vhost_tids: Vec<ThreadId>,
    /// The VM's sharded vhost backend (1 worker = the legacy mux).
    pub(crate) worker: VhostPool,
    /// In-progress handler per worker (`None` when that worker is idle).
    pub(crate) cur_handler: Vec<Option<HandlerId>>,
    /// TX/RX virtqueue pairs, one per queue (`Params::queues_per_vm`).
    pub(crate) pairs: Vec<QueuePair>,
    /// Guest HLTs when idle (server workloads) instead of running the
    /// burn script.
    pub(crate) guest_idles: bool,
    pub(crate) wl: GuestWl,
    /// TX enqueues dropped on a full ring from IRQ context.
    pub(crate) dropped_tx: u64,
    /// Frames dropped by an out-of-buffers assigned VF RX ring.
    pub(crate) vf_drops: u64,
    /// Device interrupts delivered to an *offline* vCPU via the
    /// offline-list prediction, still awaiting that vCPU; if a sibling
    /// comes online first, ES2 migrates them ("keep searching ... and
    /// redirecting", §IV-C).
    pub(crate) parked_irqs: Vec<(u32, Vector)>,
    /// Diagnostics: interrupts parked on offline vCPUs / later migrated.
    pub(crate) parked_count: u64,
    pub(crate) migrated_count: u64,
    /// One-way latency from packet creation to guest NAPI consumption.
    pub(crate) rx_latency: es2_metrics::Summary,
    /// Posted-interrupt hardware failed for this VM (graceful-degradation
    /// state: all further deliveries take the emulated path).
    pub(crate) pi_failed: bool,
    /// Lost kicks re-issued by the liveness watchdog.
    pub(crate) watchdog_rekicks: u64,
    /// Lost device interrupts re-raised by the liveness watchdog.
    pub(crate) watchdog_reraises: u64,
    /// Guest-side TCP retransmission timeouts fired (packet-loss recovery).
    pub(crate) guest_rtos: u64,
    /// Per-VM overload-control ledger (throttle/budget/quarantine events).
    pub(crate) bp: es2_metrics::BackpressureStats,
    /// Per-VM RX one-way latency histogram (the blast-radius p99 source;
    /// `rx_latency` keeps the streaming mean for existing reports).
    pub(crate) rx_hist: es2_metrics::Histogram,
    /// Device interrupts (TX-clean + RX, not timers) handled per vCPU —
    /// the per-queue MSI steering ledger. Observational only.
    pub(crate) device_irqs_per_vcpu: Vec<u64>,
}

impl VmState {
    /// The pair owning handler `h` (pair `q` registers `2q` / `2q+1`).
    #[inline]
    pub(crate) fn pair_of(&self, h: HandlerId) -> usize {
        (h.idx() / 2).min(self.pairs.len() - 1)
    }

    /// `(pair index, is_tx)` for a device MSI vector, if it belongs to
    /// one of this VM's queues.
    #[inline]
    pub(crate) fn vector_pair(&self, vector: Vector) -> Option<(usize, bool)> {
        self.pairs
            .iter()
            .position(|p| p.tx_vector == vector)
            .map(|q| (q, true))
            .or_else(|| {
                self.pairs
                    .iter()
                    .position(|p| p.rx_vector == vector)
                    .map(|q| (q, false))
            })
    }

    /// The TX/RX pair a vCPU's transmit path uses: vCPU `idx` owns pair
    /// `idx % queues` (with one queue, everything stays on pair 0).
    #[inline]
    pub(crate) fn tx_pair_for_vcpu(&self, idx: u32) -> usize {
        idx as usize % self.pairs.len()
    }
}

/// Events of the discrete-event loop.
#[derive(Clone, Copy, Debug)]
pub(crate) enum Ev {
    Tick(CoreId),
    SegDone {
        tid: ThreadId,
        gen: u64,
    },
    GuestTimer {
        vm: u32,
        vcpu: u32,
    },
    KickIpi {
        vm: u32,
        vcpu: u32,
    },
    PiNotifyIpi {
        vm: u32,
        vcpu: u32,
    },
    ArriveAtExt {
        vm: u32,
        pkt: Packet,
    },
    ArriveAtHost {
        vm: u32,
        pkt: Packet,
    },
    ExtSend {
        vm: u32,
    },
    AckFlush {
        vm: u32,
    },
    /// A quota-exhausted handler's switching cooldown elapsed: requeue it.
    HandlerRequeue {
        vm: u32,
        h: HandlerId,
    },
    /// Periodic RTO check for an external TCP source.
    ExtTcpTimeout {
        vm: u32,
    },
    /// Legacy assigned-device interrupt: the host ISR finished converting
    /// the physical IRQ and now injects the virtual interrupt.
    VfIrq {
        vm: u32,
    },
    /// A fault-delayed guest kick finally reaches the vhost worker.
    DelayedKick {
        vm: u32,
        h: HandlerId,
    },
    /// A fault-delayed device MSI finally reaches the routing layer.
    DelayedMsi {
        vm: u32,
        vector: Vector,
    },
    /// Periodic liveness watchdog (armed only under an active fault plan):
    /// re-kicks lost notifications and re-raises lost device interrupts.
    Watchdog,
    /// Forced-preemption storm tick (fault injection).
    PreemptStorm,
    /// Periodic guest-side TCP retransmission-timeout check (armed only
    /// under an active fault plan; recovers sender liveness after loss).
    GuestTcpTimeout {
        vm: u32,
    },
    /// Posted-interrupt hardware fails for the plan's masked VMs.
    PiFail,
    /// A kick deferred by the per-VM token-bucket throttle reaches its
    /// conforming instant (one coalesced wake per storm).
    ThrottledKick {
        vm: u32,
        h: HandlerId,
    },
    /// The guest driver notices the `DEVICE_NEEDS_RESET` analog on a
    /// quarantined queue and resets it.
    GuestQueueReset {
        vm: u32,
        h: HandlerId,
    },
    OpenWindow,
    CloseWindow,
    /// Live migration: pause `vm` on this (source) host, snapshot it, and
    /// hand the snapshot to the cluster layer (or stage an abort rollback).
    MigrateStart {
        vm: u32,
    },
    /// Live migration: a staged snapshot for slot `vm` finishes its copy
    /// phase — install and resume it here (target host, or source on an
    /// abort rollback).
    MigrateArrive {
        vm: u32,
    },
    /// Live migration: the target host learns a VM is inbound for slot
    /// `vm`; from now until resume it buffers the slot's arrivals
    /// (blackout window) and forwards guest-egress traffic home.
    MigrateExpect {
        vm: u32,
    },
    /// A stale MSI forwarded from another host is re-raised here through
    /// the reliable watchdog path, resolving against *this* host's
    /// online/offline lists.
    RetargetMsi {
        vm: u32,
        vector: Vector,
    },
    /// The external peer of a VM whose home host lost it (crash-restart
    /// elsewhere rebuilt the peer locally) goes quiet.
    ExtRetire {
        vm: u32,
    },
    /// A crashed host's victim VM cold-restarts on this host after the
    /// evacuation delay (placement re-placed it; state starts fresh).
    ColdRestart {
        vm: u32,
    },
    /// Tenant churn: an admitted arrival's boot lands in slot `vm` on
    /// this host. A clean boot brings the slot fully live (like a cold
    /// restart); a `stuck` boot parks the vCPUs mid-handshake — the
    /// virtio device never comes up — and waits for its timeout.
    VmBoot {
        vm: u32,
    },
    /// Tenant churn: slot `vm`'s lifetime ended — tear the VM down and
    /// reclaim every resource it held (threads, rings, vectors, peer).
    VmDepart {
        vm: u32,
    },
    /// Tenant churn: a stuck boot's handshake timer fired — roll the
    /// partial boot back and reclaim the slot.
    BootTimeout {
        vm: u32,
    },
    /// Tenant churn: a control-plane decision (admit/reject) joins the
    /// observability stream. Strictly observational: tracer + telemetry
    /// annotation only, never touches RNG or VM state.
    ChurnNote {
        vm: u32,
        kind: &'static str,
        arg: u64,
    },
}

/// Display names for `Ev` kinds, indexed by `Ev::kind_idx`. Public
/// so the perf harness can label the `ev-profile` dispatch profile.
pub const EV_KIND_NAMES: &[&str] = &[
    "Tick",
    "SegDone",
    "GuestTimer",
    "KickIpi",
    "PiNotifyIpi",
    "ArriveAtExt",
    "ArriveAtHost",
    "ExtSend",
    "AckFlush",
    "HandlerRequeue",
    "ExtTcpTimeout",
    "VfIrq",
    "DelayedKick",
    "DelayedMsi",
    "Watchdog",
    "PreemptStorm",
    "GuestTcpTimeout",
    "PiFail",
    "ThrottledKick",
    "GuestQueueReset",
    "OpenWindow",
    "CloseWindow",
    "MigrateStart",
    "MigrateArrive",
    "MigrateExpect",
    "RetargetMsi",
    "ExtRetire",
    "ColdRestart",
    "VmBoot",
    "VmDepart",
    "BootTimeout",
    "ChurnNote",
];

impl Ev {
    /// Dense kind index into [`EV_KIND_NAMES`] (profiling).
    #[cfg(feature = "ev-profile")]
    pub(crate) fn kind_idx(&self) -> usize {
        match self {
            Ev::Tick(_) => 0,
            Ev::SegDone { .. } => 1,
            Ev::GuestTimer { .. } => 2,
            Ev::KickIpi { .. } => 3,
            Ev::PiNotifyIpi { .. } => 4,
            Ev::ArriveAtExt { .. } => 5,
            Ev::ArriveAtHost { .. } => 6,
            Ev::ExtSend { .. } => 7,
            Ev::AckFlush { .. } => 8,
            Ev::HandlerRequeue { .. } => 9,
            Ev::ExtTcpTimeout { .. } => 10,
            Ev::VfIrq { .. } => 11,
            Ev::DelayedKick { .. } => 12,
            Ev::DelayedMsi { .. } => 13,
            Ev::Watchdog => 14,
            Ev::PreemptStorm => 15,
            Ev::GuestTcpTimeout { .. } => 16,
            Ev::PiFail => 17,
            Ev::ThrottledKick { .. } => 18,
            Ev::GuestQueueReset { .. } => 19,
            Ev::OpenWindow => 20,
            Ev::CloseWindow => 21,
            Ev::MigrateStart { .. } => 22,
            Ev::MigrateArrive { .. } => 23,
            Ev::MigrateExpect { .. } => 24,
            Ev::RetargetMsi { .. } => 25,
            Ev::ExtRetire { .. } => 26,
            Ev::ColdRestart { .. } => 27,
            Ev::VmBoot { .. } => 28,
            Ev::VmDepart { .. } => 29,
            Ev::BootTimeout { .. } => 30,
            Ev::ChurnNote { .. } => 31,
        }
    }
}

/// The full simulated testbed.
pub struct Machine {
    pub(crate) p: Params,
    pub(crate) cfg: EventPathConfig,
    pub(crate) topo: Topology,
    pub(crate) specs: Vec<WorkloadSpec>,
    pub(crate) now: SimTime,
    pub(crate) q: EventQueue<Ev>,
    pub(crate) rng: SimRng,
    /// Dedicated noise stream for scheduler ticks, forked from the main
    /// stream at construction. Tick parking changes how many noise draws
    /// happen over a run; keeping those draws off the main stream means
    /// parking decisions can never shift the randomness any workload,
    /// jitter or routing consumer sees.
    rng_tick: SimRng,
    pub(crate) sched: CfsScheduler,
    pub(crate) threads: Vec<ThreadInfo>,
    pub(crate) vms: Vec<VmState>,
    pub(crate) ext: Vec<crate::workload::ExtWl>,
    pub(crate) link_to_ext: Link,
    pub(crate) link_to_host: Link,
    pub(crate) pf: PacketFactory,
    pub(crate) router: Option<Es2Router>,
    pub(crate) window_open: bool,
    pub(crate) end_time: SimTime,
    /// Deterministic fault decision engine (inert for the empty plan: the
    /// clean path performs zero extra RNG draws and schedules no events).
    pub(crate) faults: FaultInjector,
    /// Per-VM delivery-mode ledger (posted vs emulated, degradations).
    pub(crate) modes: ModeAccounting,
    /// Event-path flight recorder (`Params::trace`). Strictly
    /// observational: `None` unless tracing is on, and every hook is
    /// gated on that so the untraced hot path pays one pointer test.
    pub(crate) spans: Option<Box<crate::spans::SpanTracker>>,
    /// Windowed telemetry collector (`Params::telemetry`). Same
    /// discipline as the flight recorder: `None` unless telemetry is
    /// on, every hook gated on that, sim-time only, zero events, zero
    /// RNG — telemetered runs are byte-identical to plain ones.
    pub(crate) tel: Option<Box<crate::telemetry::TelemetryHooks>>,
    /// Breadcrumb ring for post-mortem dumps, enabled only under an
    /// active fault plan (the liveness checker dumps it on violation).
    pub(crate) tracer: es2_sim::trace::Tracer,
    /// Reusable routing scratch (vCPU online flags), refilled per MSI so
    /// the delivery hot path never allocates.
    route_online: Vec<bool>,
    /// Reusable routing scratch (per-vCPU interrupt load).
    route_load: Vec<u64>,
    /// Per-core flag: true iff an [`Ev::Tick`] for that core is pending.
    /// The tick chain parks (stops re-arming) while the core has nothing
    /// runnable — the NOHZ idle analog — and re-arms on the next wake.
    tick_armed: Vec<bool>,
    /// Per-vCPU flag (`vm * vcpus_per_vm + idx`): true iff an
    /// [`Ev::GuestTimer`] for that vCPU is pending. Parks while the vCPU
    /// is halted with nothing deliverable; re-arms on wake.
    guest_timer_armed: Vec<bool>,
    /// Cluster plumbing (`None` on single-host machines — the entire
    /// migration layer then costs one pointer test per gated event kind).
    pub(crate) mig: Option<Box<crate::migrate::MigState>>,
}

impl Machine {
    /// Build a testbed where VM 0 runs `spec` and the remaining VMs are
    /// idle CPU hogs (the paper's background VMs).
    pub fn new(
        cfg: EventPathConfig,
        topo: Topology,
        spec: WorkloadSpec,
        params: Params,
        seed: u64,
    ) -> Self {
        Self::new_faulted(cfg, topo, spec, params, seed, FaultPlan::none())
    }

    /// Like [`Machine::new`], with a fault plan scheduled over the run.
    pub fn new_faulted(
        cfg: EventPathConfig,
        topo: Topology,
        spec: WorkloadSpec,
        params: Params,
        seed: u64,
        plan: FaultPlan,
    ) -> Self {
        let mut specs = vec![WorkloadSpec::Idle; topo.num_vms as usize];
        specs[0] = spec;
        Self::with_specs_faulted(cfg, topo, specs, params, seed, plan)
    }

    /// Build a testbed with an explicit per-VM workload list.
    pub fn with_specs(
        cfg: EventPathConfig,
        topo: Topology,
        specs: Vec<WorkloadSpec>,
        params: Params,
        seed: u64,
    ) -> Self {
        Self::with_specs_faulted(cfg, topo, specs, params, seed, FaultPlan::none())
    }

    /// Build a testbed with an explicit per-VM workload list and a fault
    /// plan. The injector's streams are derived from `(seed, plan.salt)`
    /// independently of the machine RNG, so the empty plan is bit-identical
    /// to the unfaulted constructors.
    pub fn with_specs_faulted(
        cfg: EventPathConfig,
        topo: Topology,
        specs: Vec<WorkloadSpec>,
        params: Params,
        seed: u64,
        plan: FaultPlan,
    ) -> Self {
        assert_eq!(specs.len(), topo.num_vms as usize);
        assert!(
            topo.vcpus_per_vm + topo.num_vms <= params.num_cores,
            "not enough cores for vCPUs + vhost workers"
        );
        let num_pairs = params.queues_per_vm.max(1);
        let num_workers = params.effective_vhost_workers();
        assert!(
            0x42 + 2 * (num_pairs as u64 - 1) < LOCAL_TIMER_VECTOR as u64,
            "queues_per_vm exhausts the device vector range"
        );
        let mut rng = SimRng::new(seed);
        // Per-purpose stream discipline (same idiom as the fault
        // injector): fork the tick-noise stream before any per-VM seed
        // draws so its position is fixed by `seed` alone.
        let rng_tick = rng.fork();
        let mut sched = CfsScheduler::new(params.num_cores as usize, params.sched);
        let mut threads = Vec::new();
        let mut vms = Vec::new();
        let path = if cfg.use_pi {
            InterruptPath::Posted
        } else {
            InterruptPath::Emulated
        };

        for vm in 0..topo.num_vms {
            let mut vcpus = Vec::new();
            let mut vcpu_tids = Vec::new();
            let mut vctx = Vec::new();
            for idx in 0..topo.vcpus_per_vm {
                // vCPU j of every VM pinned to core j: VMs time-share.
                let tid = sched.add_thread(0, CoreId(idx));
                threads.push(ThreadInfo {
                    body: Body::Vcpu { vm, idx },
                    seg: None,
                    seg_started: SimTime::ZERO,
                    gen: GenToken::new(),
                });
                debug_assert_eq!(tid.idx() + 1, threads.len());
                vcpu_tids.push(tid);
                vcpus.push(Vcpu::new(VcpuId::new(vm, idx), path));
                vctx.push(VcpuCtx::default());
            }
            // vhost workers on the cores after the vCPU block. All of a
            // VM's workers time-share that VM's vhost core, exactly like
            // the single worker they shard.
            let vhost_core = CoreId(topo.vcpus_per_vm + vm);
            let mut vhost_tids = Vec::with_capacity(num_workers);
            for w in 0..num_workers as u32 {
                let tid = sched.add_thread(0, vhost_core);
                threads.push(ThreadInfo {
                    body: Body::Vhost { vm, w },
                    seg: None,
                    seg_started: SimTime::ZERO,
                    gen: GenToken::new(),
                });
                vhost_tids.push(tid);
            }

            let mut worker = VhostPool::new(num_workers, params.shard_policy);
            let vq_cfg = VirtqueueConfig {
                size: params.ring_size,
                event_idx: true,
            };
            // Guest pre-fills every RX ring with buffers; one factory per
            // VM so buffer ids are contiguous across the device's queues.
            let mut pf_init = PacketFactory::new();
            let mut pairs = Vec::with_capacity(num_pairs as usize);
            for qi in 0..num_pairs {
                // Pair q is owned by (and its MSIs steered at) vCPU q%N.
                let owner = qi % topo.vcpus_per_vm;
                let (tx_h, rx_h) = worker.register_pair(vm, qi, owner);
                let mut tx = Virtqueue::with_id(
                    vq_cfg,
                    QueueId {
                        vm,
                        vq: (2 * qi) as u16,
                    },
                );
                let mut rx = Virtqueue::with_id(
                    vq_cfg,
                    QueueId {
                        vm,
                        vq: (2 * qi + 1) as u16,
                    },
                );
                // Guest TX completions are reclaimed in the xmit path; TX
                // interrupts armed only when the ring fills.
                tx.driver_disable_interrupts();
                // Refill kicks stay unarmed unless vhost runs out of
                // buffers.
                for _ in 0..params.ring_size {
                    let placeholder = pf_init.make(
                        es2_net::FlowId(vm),
                        es2_net::PacketKind::Data,
                        0,
                        SimTime::ZERO,
                    );
                    rx.driver_add(placeholder).expect("ring has room");
                }
                rx.device_disable_notify();

                let mut tx_handler = match cfg.hybrid {
                    Some(h) => HybridHandler::new(h),
                    None => HybridHandler::stock(),
                };
                if let Some(bp) = params.backpressure {
                    tx_handler.set_service_budget(bp.service_budget);
                }

                pairs.push(QueuePair {
                    tx_h,
                    rx_h,
                    tx,
                    rx,
                    tx_handler,
                    rx_turn: 0,
                    backlog: NicQueue::new(params.host_backlog),
                    tx_vector: 0x41 + (2 * qi) as u8,
                    rx_vector: 0x42 + (2 * qi) as u8,
                    affinity_vcpu: owner,
                    blocked_tx_full: false,
                    kick_bucket: params
                        .backpressure
                        .as_ref()
                        .map(crate::backpressure::KickBucket::new),
                    throttle_armed: [false; 2],
                    budget_window_idx: 0,
                });
            }

            vms.push(VmState {
                vcpus,
                vcpu_tids,
                vctx,
                vhost_tids,
                worker,
                cur_handler: vec![None; num_workers],
                pairs,
                guest_idles: specs[vm as usize].guest_idles(),
                wl: GuestWl::for_spec(&specs[vm as usize], params.tcp_window),
                dropped_tx: 0,
                vf_drops: 0,
                parked_irqs: Vec::new(),
                parked_count: 0,
                migrated_count: 0,
                rx_latency: es2_metrics::Summary::new(),
                pi_failed: false,
                watchdog_rekicks: 0,
                watchdog_reraises: 0,
                guest_rtos: 0,
                bp: es2_metrics::BackpressureStats::default(),
                rx_hist: es2_metrics::Histogram::new(),
                device_irqs_per_vcpu: vec![0; topo.vcpus_per_vm as usize],
            });
        }

        let router = if cfg.redirect {
            let engine = match params.redirect_policies {
                Some((target, offline)) => RedirectionEngine::with_policies(
                    topo.num_vms as usize,
                    topo.vcpus_per_vm,
                    target,
                    offline,
                    seed ^ 0x5eed,
                ),
                None => RedirectionEngine::new(topo.num_vms as usize, topo.vcpus_per_vm),
            };
            Some(Es2Router::new(engine))
        } else {
            None
        };

        let ext = specs
            .iter()
            .map(|s| crate::workload::ExtWl::for_spec(s, params.ext_tcp_window, rng.next_u64()))
            .collect();

        let end_time = SimTime::ZERO + params.warmup + params.measure;
        let plan_active = plan.is_active();
        let mut m = Machine {
            p: params,
            cfg,
            topo,
            specs,
            now: SimTime::ZERO,
            q: EventQueue::with_capacity(params.event_capacity_hint(topo.num_vms, topo.vcpus_per_vm)),
            rng,
            rng_tick,
            sched,
            threads,
            vms,
            ext,
            link_to_ext: Link::forty_gbe(),
            link_to_host: Link::forty_gbe(),
            pf: PacketFactory::new(),
            router,
            window_open: false,
            end_time,
            faults: FaultInjector::new(plan, seed),
            modes: ModeAccounting::new(topo.num_vms as usize),
            spans: if params.trace {
                Some(Box::new(crate::spans::SpanTracker::new(
                    topo.num_vms as usize,
                    num_workers,
                    params.trace_events as usize,
                )))
            } else {
                None
            },
            tel: if params.telemetry {
                let vcpu_counts = vec![topo.vcpus_per_vm; topo.num_vms as usize];
                Some(Box::new(crate::telemetry::TelemetryHooks::new(
                    &vcpu_counts,
                    num_workers,
                    num_pairs as usize,
                    ExitReason::COUNT,
                    params.telemetry_window.as_nanos().max(1),
                )))
            } else {
                None
            },
            tracer: {
                let mut t = es2_sim::trace::Tracer::new(256);
                t.set_enabled(plan_active);
                t
            },
            route_online: Vec::with_capacity(topo.vcpus_per_vm as usize),
            route_load: Vec::with_capacity(topo.vcpus_per_vm as usize),
            // bootstrap() pushes every chain, so all start armed.
            tick_armed: vec![true; params.num_cores as usize],
            guest_timer_armed: vec![true; (topo.num_vms * topo.vcpus_per_vm) as usize],
            mig: None,
        };
        m.bootstrap();
        m
    }

    fn bootstrap(&mut self) {
        // Per-core tick chains, staggered like per-CPU jiffies offsets.
        for c in 0..self.p.num_cores {
            let off = SimDuration::from_micros(37 * (c as u64 + 1));
            self.q.push(
                SimTime::ZERO + self.p.sched.tick_period + off,
                Ev::Tick(CoreId(c)),
            );
        }
        // Guest timers, staggered.
        for vm in 0..self.topo.num_vms {
            for v in 0..self.topo.vcpus_per_vm {
                let off = SimDuration::from_micros(
                    101 * (vm as u64 * self.topo.vcpus_per_vm as u64 + v as u64 + 1),
                );
                self.q.push(
                    SimTime::ZERO + self.p.guest_timer_period + off,
                    Ev::GuestTimer { vm, vcpu: v },
                );
            }
        }
        // Wake every vCPU thread (guests boot busy: the burn scripts).
        // Initial vruntimes are staggered randomly so per-core rotations
        // start out of phase, as on any real host; otherwise equal-weight
        // vCPU threads on different cores rotate in lockstep and a VM is
        // always either fully online or fully offline — the degenerate
        // co-scheduling case §IV-C argues is rare.
        let latency = self.p.sched.sched_latency.as_nanos();
        for vm in 0..self.vms.len() {
            for i in 0..self.vms[vm].vcpu_tids.len() {
                let tid = self.vms[vm].vcpu_tids[i];
                let nudge = self.rng.gen_range(latency);
                self.sched.nudge_vruntime(tid, nudge);
                self.wake_thread(tid);
            }
        }
        // External traffic kick-off.
        self.bootstrap_external();
        // Fault-plan machinery. Armed only under an active plan so the
        // clean path pushes an identical event sequence.
        if self.faults.is_active() {
            let plan = *self.faults.plan();
            self.q
                .push(SimTime::ZERO + self.p.watchdog_period, Ev::Watchdog);
            if !plan.preempt_storm_period.is_zero() && plan.preempt_storm_p > 0.0 {
                self.q
                    .push(SimTime::ZERO + plan.preempt_storm_period, Ev::PreemptStorm);
            }
            if plan.pi_unavailable_mask != 0 {
                self.q.push(SimTime::ZERO + plan.pi_fail_after, Ev::PiFail);
            }
            // Guest-side retransmission timers for TCP senders: under
            // injected packet loss the ACK clock can stall outright; the
            // RTO clears the in-flight accounting so sending resumes.
            for vm in 0..self.vms.len() as u32 {
                let tcp_sender = matches!(
                    &self.vms[vm as usize].wl,
                    GuestWl::NetperfSend { spec, .. }
                        if spec.proto == es2_workloads::NetperfProto::Tcp
                );
                if tcp_sender {
                    self.q.push(
                        SimTime::ZERO + self.p.guest_rto_check,
                        Ev::GuestTcpTimeout { vm },
                    );
                }
            }
        }
        // Measurement window.
        self.q.push(SimTime::ZERO + self.p.warmup, Ev::OpenWindow);
        self.q.push(self.end_time, Ev::CloseWindow);
    }

    /// Render a diagnostic snapshot of the world state (probe tooling).
    pub fn debug_snapshot(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(s, "now={:?} events_pending={}", self.now, self.q.len());
        for (i, vm) in self.vms.iter().enumerate() {
            let p0 = &vm.pairs[0];
            let _ = writeln!(
                s,
                "vm{}: tx[avail={} used={} free={} notify_off={}] rx[avail={} used={} notify_off={} irq_off={}] backlog={} blocked_tx_full={} mode={:?} worker_pending={} dropped_tx={}",
                i,
                p0.tx.avail_pending(),
                p0.tx.used_pending(),
                p0.tx.num_free(),
                p0.tx.notify_disabled(),
                p0.rx.avail_pending(),
                p0.rx.used_pending(),
                p0.rx.notify_disabled(),
                p0.rx.interrupts_disabled(),
                p0.backlog.len(),
                p0.blocked_tx_full,
                p0.tx_handler.mode(),
                vm.worker.pending_total(),
                vm.dropped_tx,
            );
            // Extra queue pairs (multi-queue devices only; a single-queue
            // device prints exactly the legacy snapshot).
            for (qi, p) in vm.pairs.iter().enumerate().skip(1) {
                let _ = writeln!(
                    s,
                    "  pair{}: tx[avail={} used={} free={}] rx[avail={} used={}] backlog={} blocked_tx_full={} mode={:?} owner_vcpu={}",
                    qi,
                    p.tx.avail_pending(),
                    p.tx.used_pending(),
                    p.tx.num_free(),
                    p.rx.avail_pending(),
                    p.rx.used_pending(),
                    p.backlog.len(),
                    p.blocked_tx_full,
                    p.tx_handler.mode(),
                    p.affinity_vcpu,
                );
            }
            for (j, v) in vm.vcpus.iter().enumerate() {
                let tid = vm.vcpu_tids[j];
                let _ = writeln!(
                    s,
                    "  vcpu{}: in_guest={} running={} seg={:?} stack_len={} pending_kicks={} deliverable={}",
                    j,
                    v.in_guest,
                    v.running,
                    self.threads[tid.idx()].seg.as_ref().map(|x| x.kind),
                    vm.vctx[j].stack.len(),
                    vm.vctx[j].pending_kicks.len(),
                    v.has_deliverable(),
                );
            }
            for (w, &vt) in vm.vhost_tids.iter().enumerate() {
                if w == 0 {
                    let _ = writeln!(
                        s,
                        "  vhost: running={} seg={:?}",
                        self.sched.is_running(vt),
                        self.threads[vt.idx()].seg.as_ref().map(|x| x.kind)
                    );
                } else {
                    let _ = writeln!(
                        s,
                        "  vhost{}: running={} seg={:?}",
                        w,
                        self.sched.is_running(vt),
                        self.threads[vt.idx()].seg.as_ref().map(|x| x.kind)
                    );
                }
            }
            if let Some(d) = self.wl_debug(i) {
                let _ = writeln!(s, "  wl: {d}");
            }
            if let crate::workload::ExtWl::TcpSource {
                flow,
                cwnd,
                send_armed,
                ..
            } = &self.ext[i]
            {
                let _ = writeln!(
                    s,
                    "  ext: tcp_source inflight={} cwnd={} sent={} acked={} armed={}",
                    flow.inflight(),
                    cwnd,
                    flow.sent_total(),
                    flow.acked_total(),
                    send_armed
                );
            }
        }
        s
    }

    fn wl_debug(&self, vm: usize) -> Option<String> {
        match &self.vms[vm].wl {
            GuestWl::NetperfSend {
                flows, sent_msgs, ..
            } => Some(format!(
                "send: inflight={:?} sent_msgs={}",
                flows.iter().map(|f| f.inflight()).collect::<Vec<_>>(),
                sent_msgs
            )),
            GuestWl::NetperfRecv {
                flow,
                received_segs,
                ack_flush_pending,
                ..
            } => Some(format!(
                "recv: received_total={} received_segs_windowed={} flush_pending={}",
                flow.received_total(),
                received_segs,
                ack_flush_pending
            )),
            GuestWl::Server { pending, served } => Some(format!(
                "server: pending={} served={}",
                pending.len(),
                served
            )),
            GuestWl::Passive => None,
        }
    }

    /// Run to completion, returning results plus a final state snapshot.
    pub fn run_with_snapshot(mut self) -> (RunResult, String) {
        while self.step_one() {}
        let snap = self.debug_snapshot();
        (RunResult::collect(self), snap)
    }

    /// Run to completion and collect results.
    pub fn run(mut self) -> RunResult {
        while self.step_one() {}
        RunResult::collect(self)
    }

    /// Pop and dispatch exactly one event. Returns `false` once the run
    /// is over — queue drained or the first event past `end_time`
    /// reached (the clock still advances to that event, exactly as the
    /// old inline run loop behaved). This is the single-step form the
    /// lane executor drives; the run loops above are its trivial
    /// clients, so serial and lane-sharded execution share one
    /// event-dispatch semantics by construction.
    pub(crate) fn step_one(&mut self) -> bool {
        match self.q.pop() {
            None => false,
            Some((t, ev)) => {
                debug_assert!(t >= self.now);
                self.now = t;
                if t > self.end_time {
                    false
                } else {
                    self.dispatch_ev(ev);
                    true
                }
            }
        }
    }

    /// Time of the next pending event, if any (lane scheduling).
    pub(crate) fn next_event_time(&self) -> Option<SimTime> {
        self.q.peek_time()
    }

    /// Accept a packet arriving from another lane at `at`: it enters
    /// this machine's world exactly like a wire arrival, queued for the
    /// local `vm`'s host backlog. The lane executor guarantees `at` is
    /// not in this machine's past and delivers same-time arrivals in a
    /// deterministic `(time, sender, sender_seq)` order.
    pub(crate) fn receive_cross(&mut self, at: SimTime, vm: u32, pkt: Packet) {
        self.q.push(at, Ev::ArriveAtHost { vm, pkt });
    }

    /// Dispatch one event, timing its handler into the process-global
    /// profile. Observational only — results are unchanged by profiling.
    #[cfg(feature = "ev-profile")]
    #[inline]
    pub(crate) fn dispatch_ev(&mut self, ev: Ev) {
        let idx = ev.kind_idx();
        let t0 = std::time::Instant::now();
        self.dispatch(ev);
        es2_metrics::ev_profile::record(idx, t0.elapsed().as_nanos() as u64);
    }

    /// Dispatch one event (profiling feature off: a plain call).
    #[cfg(not(feature = "ev-profile"))]
    #[inline(always)]
    pub(crate) fn dispatch_ev(&mut self, ev: Ev) {
        self.dispatch(ev);
    }

    pub(crate) fn dispatch(&mut self, ev: Ev) {
        // Cluster gate: on a multi-host member, events addressed to a VM
        // that lives elsewhere (or is mid-blackout) are forwarded across
        // the lane mailbox, buffered, or dropped before the single-host
        // handlers ever see them. Single-host machines skip the call.
        let ev = if self.mig.is_some() {
            match self.mig_gate(ev) {
                Some(ev) => ev,
                None => return,
            }
        } else {
            ev
        };
        match ev {
            Ev::Tick(core) => {
                // NOHZ-style idle tick stop: with nothing runnable on the
                // core there is nothing to preempt or account, so let the
                // chain die here; the next wake onto this core re-arms it.
                if self.sched.nr_running(core) == 0 {
                    self.tick_armed[core.idx()] = false;
                    return;
                }
                let noise = self
                    .rng_tick
                    .gen_range(self.p.sched_tick_noise.as_nanos().max(1));
                if let Some(sw) = self.sched.tick_with_noise(core, self.now, noise) {
                    self.apply_switch(sw);
                }
                self.q
                    .push(self.now + self.p.sched.tick_period, Ev::Tick(core));
            }
            Ev::SegDone { tid, gen } => {
                if self.threads[tid.idx()].gen.is_current(gen) {
                    self.on_seg_done(tid);
                }
            }
            Ev::GuestTimer { vm, vcpu } => {
                // Guest-side NOHZ idle: a halted vCPU with nothing
                // deliverable gains nothing from its local timer except
                // a wake/inject/HLT round trip. Park the chain; the next
                // wake of this vCPU re-arms it.
                let tid = self.vms[vm as usize].vcpu_tids[vcpu as usize];
                if self.sched.entity(tid).state == ThreadState::Sleeping
                    && !self.vms[vm as usize].vcpus[vcpu as usize].has_deliverable()
                {
                    let slot = self.timer_slot(vm, vcpu);
                    self.guest_timer_armed[slot] = false;
                    return;
                }
                self.deliver_to_vcpu(vm, vcpu, LOCAL_TIMER_VECTOR);
                self.q.push(
                    self.now + self.p.guest_timer_period,
                    Ev::GuestTimer { vm, vcpu },
                );
            }
            Ev::KickIpi { vm, vcpu } => self.on_kick_ipi(vm, vcpu),
            Ev::PiNotifyIpi { vm, vcpu } => self.on_pi_notify_ipi(vm, vcpu),
            Ev::ArriveAtExt { vm, pkt } => self.on_arrive_ext(vm, pkt),
            Ev::ArriveAtHost { vm, pkt } => self.on_arrive_host(vm, pkt),
            Ev::ExtSend { vm } => self.on_ext_send(vm),
            Ev::AckFlush { vm } => self.on_ack_flush(vm),
            Ev::ExtTcpTimeout { vm } => self.on_ext_tcp_timeout(vm),
            Ev::VfIrq { vm } => {
                let vector = self.vms[vm as usize].pairs[0].rx_vector;
                self.deliver_device_msi(vm, vector);
            }
            Ev::HandlerRequeue { vm, h } => {
                let vmi = vm as usize;
                self.trace_kick_signal(vm, h, crate::spans::KickOrigin::Requeue);
                let (w, _) = self.vms[vmi].worker.queue_work(h);
                let tid = self.vms[vmi].vhost_tids[w];
                self.wake_thread(tid);
            }
            Ev::DelayedKick { vm, h } => {
                let vmi = vm as usize;
                self.tracer
                    .record(self.now, "delay-kick", vm as u64, h.0 as u64);
                self.trace_kick_signal(vm, h, crate::spans::KickOrigin::Delayed);
                let (w, _) = self.vms[vmi].worker.queue_work(h);
                let tid = self.vms[vmi].vhost_tids[w];
                self.wake_thread(tid);
            }
            Ev::DelayedMsi { vm, vector } => self.route_and_deliver_msi(vm, vector),
            Ev::ThrottledKick { vm, h } => {
                // The coalesced wake for every kick deferred since it was
                // scheduled. Re-enters admission: the bucket charges the
                // kick at this (conforming) instant.
                let vmi = vm as usize;
                let q = self.vms[vmi].pair_of(h);
                self.vms[vmi].pairs[q].throttle_armed[h.idx() % 2] = false;
                self.tracer
                    .record(self.now, "throttled-kick", vm as u64, h.0 as u64);
                self.kick_vhost(vm, h);
            }
            Ev::GuestQueueReset { vm, h } => self.on_guest_queue_reset(vm, h),
            Ev::Watchdog => self.on_watchdog(),
            Ev::PreemptStorm => self.on_preempt_storm(),
            Ev::GuestTcpTimeout { vm } => self.on_guest_tcp_timeout(vm),
            Ev::PiFail => self.on_pi_fail(),
            Ev::OpenWindow => {
                self.window_open = true;
                let now = self.now;
                for vm in &mut self.vms {
                    for v in &mut vm.vcpus {
                        v.exits.open_window(now);
                        v.tig.open_window(now);
                    }
                }
            }
            Ev::CloseWindow => {
                self.window_open = false;
                let now = self.now;
                for vm in &mut self.vms {
                    for v in &mut vm.vcpus {
                        v.exits.close_window(now);
                        v.tig.close_window(now);
                    }
                }
            }
            Ev::MigrateStart { vm } => self.on_migrate_start(vm),
            Ev::MigrateArrive { vm } => self.on_migrate_arrive(vm),
            Ev::MigrateExpect { vm } => self.on_migrate_expect(vm),
            Ev::RetargetMsi { vm, vector } => self.on_retarget_msi(vm, vector),
            Ev::ExtRetire { vm } => self.on_ext_retire(vm),
            Ev::ColdRestart { vm } => self.on_cold_restart(vm),
            Ev::VmBoot { vm } => self.on_vm_boot(vm),
            Ev::VmDepart { vm } => self.on_vm_depart(vm),
            Ev::BootTimeout { vm } => self.on_boot_timeout(vm),
            Ev::ChurnNote { vm, kind, arg } => self.on_churn_note(vm, kind, arg),
        }
    }

    // -----------------------------------------------------------------
    // Segment mechanics
    // -----------------------------------------------------------------

    /// Begin a fresh segment on a running thread.
    pub(crate) fn start_segment(&mut self, tid: ThreadId, kind: SegKind, dur: SimDuration) {
        debug_assert!(self.sched.is_running(tid), "segment on a parked thread");
        debug_assert!(
            self.threads[tid.idx()].seg.is_none(),
            "segment would clobber saved work: {:?}",
            self.threads[tid.idx()].seg
        );
        let t = &mut self.threads[tid.idx()];
        t.seg = Some(Segment {
            kind,
            remaining: dur,
        });
        t.seg_started = self.now;
        let gen = t.gen.bump();
        self.q.push(self.now + dur, Ev::SegDone { tid, gen });
    }

    /// Resume a thread's saved segment. `charge_ctx` adds the host
    /// context-switch cost (scheduler switches only; IRQ returns and VM
    /// entries resume for free — their costs are modeled explicitly).
    fn resume_saved(&mut self, tid: ThreadId, charge_ctx: bool) {
        let ctx_cost = self.p.ctx_switch;
        let t = &mut self.threads[tid.idx()];
        let seg = t.seg.as_mut().expect("resume without saved segment");
        if charge_ctx {
            seg.remaining += ctx_cost;
        }
        t.seg_started = self.now;
        let gen = t.gen.bump();
        let at = self.now + seg.remaining;
        self.q.push(at, Ev::SegDone { tid, gen });
    }

    /// Save the active segment's remaining work (preemption or IRQ
    /// interruption) and invalidate its completion event. Returns the
    /// saved segment (also left in `threads[tid].seg`).
    pub(crate) fn save_active(&mut self, tid: ThreadId) -> Option<Segment> {
        let now = self.now;
        let t = &mut self.threads[tid.idx()];
        t.gen.bump();
        if let Some(seg) = t.seg.as_mut() {
            let elapsed = now.saturating_since(t.seg_started);
            seg.remaining = seg.remaining.saturating_sub(elapsed);
            Some(*seg)
        } else {
            None
        }
    }

    /// Clear the thread's segment slot (it completed or was moved to an
    /// IRQ resume stack).
    pub(crate) fn clear_seg(&mut self, tid: ThreadId) -> Option<Segment> {
        self.threads[tid.idx()].seg.take()
    }

    // -----------------------------------------------------------------
    // Scheduler integration (the kvm_sched_in / kvm_sched_out notifiers)
    // -----------------------------------------------------------------

    pub(crate) fn apply_switch(&mut self, sw: Switch) {
        if let Some(prev) = sw.prev {
            self.on_sched_out(prev);
        }
        if let Some(next) = sw.next {
            self.on_sched_in(next);
        }
    }

    fn on_sched_out(&mut self, tid: ThreadId) {
        self.save_active(tid);
        if let Body::Vhost { vm, w } = self.threads[tid.idx()].body {
            if let Some(t) = self.tel.as_deref_mut() {
                t.on_worker_off_core(vm, w as usize, self.now.as_nanos());
            }
        }
        if let Body::Vcpu { vm, idx } = self.threads[tid.idx()].body {
            let now = self.now;
            let vcpu = &mut self.vms[vm as usize].vcpus[idx as usize];
            let preempted_in_guest = vcpu.in_guest;
            if vcpu.in_guest {
                // Preemption forces a world switch out of guest mode.
                vcpu.vm_exit();
                vcpu.exits.record(ExitReason::Other);
                vcpu.tig.leave_guest(now);
            }
            vcpu.sched_out();
            if preempted_in_guest {
                if let Some(t) = self.tel.as_deref_mut() {
                    t.on_exit(vm, ExitReason::Other.idx(), now.as_nanos());
                    t.on_leave_guest(vm, idx, now.as_nanos());
                }
            }
            if let Some(r) = &mut self.router {
                r.on_sched_change(VcpuId::new(vm, idx), false);
            }
            if let Some(tr) = self.spans.as_deref_mut() {
                tr.on_vcpu_sched_out(vm, idx, now.as_nanos());
            }
        }
    }

    fn on_sched_in(&mut self, tid: ThreadId) {
        match self.threads[tid.idx()].body {
            Body::Vcpu { vm, idx } => {
                self.vms[vm as usize].vcpus[idx as usize].sched_in();
                if let Some(tr) = self.spans.as_deref_mut() {
                    tr.on_vcpu_sched_in(vm, idx, self.now.as_nanos());
                }
                if let Some(r) = &mut self.router {
                    r.on_sched_change(VcpuId::new(vm, idx), true);
                    self.migrate_parked_irqs(vm, idx);
                }
                // If the thread was preempted mid-root-mode work, resume it
                // without a VM entry; the entry happens when that exit
                // handling completes.
                let in_root = matches!(
                    self.threads[tid.idx()].seg,
                    Some(Segment {
                        kind: SegKind::Exit { .. },
                        ..
                    })
                );
                if in_root {
                    self.resume_saved(tid, true);
                } else {
                    self.vm_entry_and_dispatch(vm, idx);
                }
            }
            Body::Vhost { vm, w } => {
                if let Some(t) = self.tel.as_deref_mut() {
                    t.on_worker_on_core(vm, w as usize, self.now.as_nanos());
                }
                if self.threads[tid.idx()].seg.is_some() {
                    self.resume_saved(tid, true);
                } else {
                    self.vhost_continue(tid);
                }
            }
        }
    }

    /// Span-tracker turn slot for vhost worker `w` of `vm`: one slot per
    /// (VM, worker), `vm * workers + w`. With a single worker this is
    /// just `vm`, matching the legacy per-VM indexing.
    #[inline]
    pub(crate) fn turn_slot(&self, vm: u32, w: u32) -> usize {
        vm as usize * self.vms[vm as usize].worker.num_workers() + w as usize
    }

    /// Wake a thread; apply any resulting context switch and re-arm any
    /// periodic timers that parked while everything it feeds was idle.
    pub(crate) fn wake_thread(&mut self, tid: ThreadId) {
        let was_sleeping = self.sched.entity(tid).state == ThreadState::Sleeping;
        if let Some(sw) = self.sched.wake(tid, self.now) {
            self.apply_switch(sw);
        }
        if was_sleeping {
            self.rearm_timers_for(tid);
        }
    }

    /// Re-arm parked periodic chains made relevant by `tid` waking: the
    /// core's scheduler tick, and for vCPU threads the guest's local
    /// APIC timer. Invariants maintained: `tick_armed[c]` ⇔ an
    /// `Ev::Tick(c)` is pending, and a core with runnable threads always
    /// has its tick armed (parking happens only at fire time, when
    /// `nr_running == 0`; the count only rises through a wake, which
    /// lands here).
    fn rearm_timers_for(&mut self, tid: ThreadId) {
        let core = self.sched.entity(tid).core;
        if !self.tick_armed[core.idx()] {
            self.tick_armed[core.idx()] = true;
            self.q
                .push(self.now + self.p.sched.tick_period, Ev::Tick(core));
        }
        if let Body::Vcpu { vm, idx } = self.threads[tid.idx()].body {
            let slot = self.timer_slot(vm, idx);
            if !self.guest_timer_armed[slot] {
                self.guest_timer_armed[slot] = true;
                self.q.push(
                    self.now + self.p.guest_timer_period,
                    Ev::GuestTimer { vm, vcpu: idx },
                );
            }
        }
    }

    #[inline]
    fn timer_slot(&self, vm: u32, vcpu: u32) -> usize {
        (vm * self.topo.vcpus_per_vm + vcpu) as usize
    }

    // -----------------------------------------------------------------
    // VM entries, exits and interrupt plumbing
    // -----------------------------------------------------------------

    /// Record an exit of `reason` and transition the vCPU to root mode.
    pub(crate) fn do_vm_exit(&mut self, vm: u32, idx: u32, reason: ExitReason) {
        let now = self.now;
        let vcpu = &mut self.vms[vm as usize].vcpus[idx as usize];
        debug_assert!(vcpu.in_guest);
        vcpu.vm_exit();
        vcpu.exits.record(reason);
        vcpu.tig.leave_guest(now);
        self.vms[vm as usize].vctx[idx as usize].cache_cold = true;
        if let Some(t) = self.tel.as_deref_mut() {
            t.on_exit(vm, reason.idx(), now.as_nanos());
            t.on_leave_guest(vm, idx, now.as_nanos());
        }
    }

    /// VM entry: transition to guest mode, then dispatch what the guest
    /// does next — an injected/pending interrupt handler, a resumed
    /// interrupted segment, or fresh application work.
    pub(crate) fn vm_entry_and_dispatch(&mut self, vm: u32, idx: u32) {
        let now = self.now;
        let tid = self.vms[vm as usize].vcpu_tids[idx as usize];
        let injected = {
            let vcpu = &mut self.vms[vm as usize].vcpus[idx as usize];
            debug_assert!(!vcpu.in_guest);
            let injected = vcpu.vm_entry();
            vcpu.tig.enter_guest(now);
            injected
        };
        if let Some(t) = self.tel.as_deref_mut() {
            t.on_enter_guest(vm, idx, now.as_nanos());
        }
        // Emulated path: the entry injected at most one vector. Posted
        // path: the entry synchronized PIR→vIRR; take from the vAPIC.
        // Keyed off the vCPU's *current* path, not the static config: a
        // degraded vCPU re-enters through the emulated machinery.
        let vector = if self.vms[vm as usize].vcpus[idx as usize].path == InterruptPath::Posted {
            self.vms[vm as usize].vcpus[idx as usize].take_posted_interrupt()
        } else {
            injected
        };
        if let Some(v) = vector {
            // An interrupt preempts whatever the guest was about to resume:
            // push the saved segment (if any) onto the IRQ resume stack.
            if let Some(seg) = self.clear_seg(tid) {
                self.vms[vm as usize].vctx[idx as usize].stack.push(seg);
            }
            self.begin_irq(vm, idx, v);
        } else {
            self.resume_or_fresh(vm, idx);
        }
    }

    /// Begin a root-mode exit-handling segment.
    pub(crate) fn begin_exit(&mut self, vm: u32, idx: u32, reason: ExitReason, then: AfterExit) {
        self.do_vm_exit(vm, idx, reason);
        let tid = self.vms[vm as usize].vcpu_tids[idx as usize];
        let dur = self.p.costs.exit_cost(reason);
        self.start_segment(tid, SegKind::Exit { reason, then }, dur);
    }

    /// The guest executes the virtqueue kick: the I/O-instruction exit.
    /// KVM's `handle_io` signals the eventfd early in the exit handling,
    /// so the vhost worker wakes (on its own core) concurrently with the
    /// rest of the exit processing.
    pub(crate) fn begin_kick_exit(&mut self, vm: u32, idx: u32, h: HandlerId) {
        // Hostile-guest hook: the plan's target VM may corrupt its ring
        // just before ringing the doorbell, and may follow the real kick
        // with a spurious doorbell storm (drained as extra I/O exits the
        // hostile guest itself pays for). Well-behaved VMs take the NONE
        // fast path with zero RNG draws.
        let hostile = self.faults.on_hostile_kick(vm);
        if let Some(kind) = hostile.corruption {
            self.publish_ring_corruption(vm, h, kind);
        }
        if hostile.extra_kicks > 0 {
            self.vms[vm as usize].vctx[idx as usize].pending_storm_kicks += hostile.extra_kicks;
        }
        self.kick_vhost(vm, h);
        if self.spans.is_some() {
            let cost = self.p.costs.exit_cost(ExitReason::IoInstruction).as_nanos();
            let w = self.window_open;
            if let Some(tr) = self.spans.as_deref_mut() {
                tr.on_kick_exit(vm, cost, w);
            }
        }
        self.begin_exit(vm, idx, ExitReason::IoInstruction, AfterExit::Resume);
    }

    /// Signal the vhost worker's eventfd for handler `h`, subject to the
    /// fault plan. A dropped kick loses only the signal: the ring state
    /// stays exposed (that is what the watchdog re-kick recovers), and a
    /// kick exit the guest already paid for is still charged by the caller.
    pub(crate) fn kick_vhost(&mut self, vm: u32, h: HandlerId) {
        self.tracer
            .record(self.now, "kick", vm as u64, h.0 as u64);
        // Per-queue kick throttle (off by default): an over-rate kick is
        // not lost — one coalesced wake is scheduled for the first
        // conforming instant, and only this queue waits for it.
        let qi = self.vms[vm as usize].pair_of(h);
        if let Some(bucket) = self.vms[vm as usize].pairs[qi].kick_bucket.as_mut() {
            match bucket.admit(self.now.as_nanos()) {
                crate::backpressure::Admission::Pass => {}
                crate::backpressure::Admission::DeferUntil(at_ns) => {
                    let vmi = vm as usize;
                    self.vms[vmi].bp.throttled_kicks += 1;
                    if let Some(t) = self.tel.as_deref_mut() {
                        t.on_throttled_kick(vm, self.now.as_nanos());
                    }
                    if !self.vms[vmi].pairs[qi].throttle_armed[h.idx() % 2] {
                        self.vms[vmi].pairs[qi].throttle_armed[h.idx() % 2] = true;
                        self.q.push(
                            SimTime::ZERO + SimDuration::from_nanos(at_ns),
                            Ev::ThrottledKick { vm, h },
                        );
                    }
                    return;
                }
            }
        }
        match self.faults.on_guest_kick() {
            DeliveryFault::Deliver => {
                let vmi = vm as usize;
                self.trace_kick_signal(vm, h, crate::spans::KickOrigin::Kick);
                let (w, _) = self.vms[vmi].worker.queue_work(h);
                let vhost_tid = self.vms[vmi].vhost_tids[w];
                self.wake_thread(vhost_tid);
            }
            DeliveryFault::Drop => {}
            DeliveryFault::Delay(extra) => {
                self.q.push(self.now + extra, Ev::DelayedKick { vm, h });
            }
        }
    }

    /// Hostile guest publishes corrupted ring state on the queue it is
    /// about to kick. Only the *claim* is recorded here; the vhost
    /// backend's `device_validate` is what must catch it.
    fn publish_ring_corruption(&mut self, vm: u32, h: HandlerId, kind: RingCorruptionKind) {
        let vmi = vm as usize;
        let qi = self.vms[vmi].pair_of(h);
        let is_tx = h.idx() % 2 == 0;
        let pair = &mut self.vms[vmi].pairs[qi];
        let q = if is_tx { &mut pair.tx } else { &mut pair.rx };
        let size = q.config().size;
        match kind {
            RingCorruptionKind::DescOutOfRange => q.guest_publish_desc_index(size),
            RingCorruptionKind::AvailIdxJump => {
                // Just past the legitimate window, well short of the
                // wrap-around regression zone.
                let claimed = q
                    .device_avail_cursor()
                    .wrapping_add(q.avail_pending() as u16)
                    .wrapping_add(0x100);
                q.guest_publish_avail_idx(claimed);
            }
            RingCorruptionKind::AvailIdxRegress => {
                let claimed = q.device_avail_cursor().wrapping_sub(1);
                q.guest_publish_avail_idx(claimed);
            }
            RingCorruptionKind::DescLoop => q.guest_publish_chain(0, 1, true),
            RingCorruptionKind::ChainOverLength => q.guest_publish_chain(0, size + 1, false),
            RingCorruptionKind::UsedOverflow => q.guest_claim_used_outstanding(size + 1),
        }
        self.tracer
            .record(self.now, "ring-corrupt", vm as u64, h.0 as u64);
    }

    /// Flight-recorder hook: a kick signal for `(vm, h)` is being queued.
    #[inline]
    fn trace_kick_signal(&mut self, vm: u32, h: HandlerId, origin: crate::spans::KickOrigin) {
        if let Some(tr) = self.spans.as_deref_mut() {
            tr.on_kick_signal(
                vm,
                &mut self.vms[vm as usize].worker,
                h,
                origin,
                self.now.as_nanos(),
            );
        }
    }

    /// Deliver a virtual interrupt to a specific vCPU (timer, or a routed
    /// device MSI), performing the configured delivery machinery.
    pub(crate) fn deliver_to_vcpu(&mut self, vm: u32, idx: u32, vector: Vector) {
        let outcome = self.vms[vm as usize].vcpus[idx as usize].deliver(vector);
        match outcome {
            DeliveryOutcome::EmulatedKick | DeliveryOutcome::EmulatedPendingEntry => {
                self.modes.note_emulated(vm as usize);
            }
            DeliveryOutcome::PiNotify | DeliveryOutcome::PiPosted => {
                self.modes.note_posted(vm as usize);
            }
        }
        if let Some(t) = self.tel.as_deref_mut() {
            let posted = matches!(
                outcome,
                DeliveryOutcome::PiNotify | DeliveryOutcome::PiPosted
            );
            t.on_msi(vm, self.now.as_nanos(), posted);
        }
        match outcome {
            DeliveryOutcome::EmulatedKick => {
                self.q.push(
                    self.now + self.p.costs.ipi_send,
                    Ev::KickIpi { vm, vcpu: idx },
                );
            }
            DeliveryOutcome::PiNotify => {
                self.q.push(
                    self.now + self.p.costs.ipi_send,
                    Ev::PiNotifyIpi { vm, vcpu: idx },
                );
            }
            DeliveryOutcome::EmulatedPendingEntry | DeliveryOutcome::PiPosted => {
                // Waits for the next VM entry (possibly after scheduling
                // delay — the latency ES2's redirection removes). A halted
                // vCPU is woken now (KVM unblocks it on event delivery);
                // for a merely-preempted one the wake is a no-op.
                let tid = self.vms[vm as usize].vcpu_tids[idx as usize];
                self.wake_thread(tid);
            }
        }
    }

    /// Raise a device MSI, subject to the fault plan: a dropped MSI loses
    /// the message entirely (the used-ring state survives and the watchdog
    /// re-raise recovers it); a delayed one re-enters routing later, so it
    /// is routed against the vCPU online-state of its *arrival* time.
    pub(crate) fn deliver_device_msi(&mut self, vm: u32, vector: Vector) {
        match self.faults.on_msi() {
            DeliveryFault::Deliver => self.route_and_deliver_msi(vm, vector),
            DeliveryFault::Drop => {}
            DeliveryFault::Delay(extra) => {
                self.q.push(self.now + extra, Ev::DelayedMsi { vm, vector });
            }
        }
    }

    /// Route a device MSI through the configured router and deliver it.
    pub(crate) fn route_and_deliver_msi(&mut self, vm: u32, vector: Vector) {
        self.route_and_deliver_msi_from(vm, vector, false);
    }

    /// [`Self::route_and_deliver_msi`] with provenance: `watchdog` marks
    /// a liveness re-raise so the flight recorder can annotate it.
    pub(crate) fn route_and_deliver_msi_from(&mut self, vm: u32, vector: Vector, watchdog: bool) {
        self.tracer
            .record(self.now, "msi", vm as u64, vector as u64);
        // Per-queue steering: the MSI's affinity hint is the vCPU that
        // owns the queue raising this vector (per-VM hint == pair 0 in
        // the single-queue device).
        let affinity = match self.vms[vm as usize].vector_pair(vector) {
            Some((qi, _)) => self.vms[vm as usize].pairs[qi].affinity_vcpu,
            None => self.vms[vm as usize].pairs[0].affinity_vcpu,
        };
        // Refill the reusable scratch buffers instead of allocating fresh
        // snapshot vectors per MSI — this path fires once per device
        // interrupt and dominated the allocator profile.
        let want_load = self.router.is_some();
        self.route_online.clear();
        self.route_load.clear();
        for v in &self.vms[vm as usize].vcpus {
            self.route_online.push(v.running);
            self.route_load
                .push(if want_load { v.interrupts_handled() } else { 0 });
        }
        let msg = es2_apic::MsiMessage::fixed(affinity as u8, vector);
        let ctx = RouteCtx {
            vm: VmId(vm),
            num_vcpus: self.topo.vcpus_per_vm,
            online: &self.route_online,
            irq_load: &self.route_load,
        };
        let (target, redirected) = match &mut self.router {
            // `MsiRouter::route` delegates to `route_explained`, so the
            // traced and untraced paths run the identical computation.
            Some(r) => {
                let routed = r.route_explained(&msg, &ctx);
                (routed.target.idx, routed.redirected)
            }
            None => (AffinityRouter.route(&msg, &ctx).idx, false),
        };
        if self.cfg.redirect && !self.vms[vm as usize].vcpus[target as usize].running {
            // Offline prediction: remember the parked interrupt so it can
            // migrate if another sibling comes online sooner.
            self.vms[vm as usize].parked_irqs.push((target, vector));
            self.vms[vm as usize].parked_count += 1;
        }
        if redirected {
            if let Some(t) = self.tel.as_deref_mut() {
                t.on_msi_redirected(vm, self.now.as_nanos());
            }
        }
        if self.spans.is_some() {
            self.trace_msi_raise(vm, target, vector, redirected, watchdog);
        }
        self.deliver_to_vcpu(vm, target, vector);
    }

    /// Flight-recorder hook: an MSI for `vector` is about to be delivered
    /// to `(vm, target)`. Opens an interrupt span keyed by a correlation
    /// ID stashed in the target's vector sidecar — unless one is already
    /// pending there (IRR coalescing: the first raise owns the span).
    /// Runs *before* [`Self::deliver_to_vcpu`] because delivery can chain
    /// synchronously all the way into `begin_irq`, which closes the
    /// delivery stage by taking the ID back out.
    fn trace_msi_raise(
        &mut self,
        vm: u32,
        target: u32,
        vector: Vector,
        redirected: bool,
        watchdog: bool,
    ) {
        let vmi = vm as usize;
        if self.vms[vmi].vcpus[target as usize].corr.peek(vector) != 0 {
            if let Some(tr) = self.spans.as_deref_mut() {
                tr.on_msi_coalesced(watchdog);
            }
            return;
        }
        let running = self.vms[vmi].vcpus[target as usize].running;
        let tid = self.vms[vmi].vcpu_tids[target as usize];
        let off_core_ns = self
            .sched
            .descheduled_since(tid)
            .map(|t| self.now.saturating_since(t).as_nanos())
            .unwrap_or(0);
        let now_ns = self.now.as_nanos();
        let corr = match self.spans.as_deref_mut() {
            Some(tr) => tr.on_msi_raised(
                vm,
                target,
                vector,
                redirected,
                running,
                watchdog,
                off_core_ns,
                now_ns,
            ),
            None => return,
        };
        self.vms[vmi].vcpus[target as usize].corr.set(vector, corr);
    }

    /// A vCPU of `vm` just came online: migrate any parked device
    /// interrupts still pending on offline siblings to it.
    fn migrate_parked_irqs(&mut self, vm: u32, online_idx: u32) {
        let vmi = vm as usize;
        if self.vms[vmi].parked_irqs.is_empty() {
            return;
        }
        let parked = std::mem::take(&mut self.vms[vmi].parked_irqs);
        for (tgt, vector) in parked {
            if tgt == online_idx {
                continue; // about to be synchronized at this entry
            }
            let still_pending = !self.vms[vmi].vcpus[tgt as usize].running
                && self.vms[vmi].vcpus[tgt as usize].rescind(vector);
            if still_pending {
                self.vms[vmi].migrated_count += 1;
                if let Some(r) = &mut self.router {
                    // Keep the engine's per-vCPU accounting in step.
                    r.engine_mut().select_target(vmi, vector, online_idx);
                }
                if self.spans.is_some() {
                    // Move the span's correlation ID to the new target and
                    // close its parked interval: the vCPU it now waits on
                    // is being scheduled in at this very instant.
                    let corr = self.vms[vmi].vcpus[tgt as usize].corr.take(vector);
                    if corr != 0 {
                        let now_ns = self.now.as_nanos();
                        if let Some(tr) = self.spans.as_deref_mut() {
                            tr.on_migrated(corr, online_idx, now_ns);
                        }
                        self.vms[vmi].vcpus[online_idx as usize].corr.set(vector, corr);
                    }
                }
                self.deliver_to_vcpu(vm, online_idx, vector);
            }
        }
    }

    /// The emulated-path kick IPI arrived at the target core.
    fn on_kick_ipi(&mut self, vm: u32, idx: u32) {
        let vcpu = &self.vms[vm as usize].vcpus[idx as usize];
        if !vcpu.in_guest || !vcpu.running {
            // Target left guest mode in the meantime; the vector waits in
            // the IRR for the next entry.
            return;
        }
        let tid = self.vms[vm as usize].vcpu_tids[idx as usize];
        // The external interrupt forces an exit; the interrupted guest
        // segment is saved and pushed for post-IRQ resumption.
        if self.save_active(tid).is_some() {
            if let Some(seg) = self.clear_seg(tid) {
                self.vms[vm as usize].vctx[idx as usize].stack.push(seg);
            }
        }
        self.begin_exit(vm, idx, ExitReason::ExternalInterrupt, AfterExit::Resume);
    }

    /// The PI notification IPI arrived at the target core (guest mode):
    /// hardware synchronizes and delivers without an exit.
    fn on_pi_notify_ipi(&mut self, vm: u32, idx: u32) {
        let vcpu = &self.vms[vm as usize].vcpus[idx as usize];
        if !vcpu.in_guest || !vcpu.running {
            return; // synced at next VM entry instead
        }
        let tid = self.vms[vm as usize].vcpu_tids[idx as usize];
        if self.save_active(tid).is_some() {
            if let Some(seg) = self.clear_seg(tid) {
                self.vms[vm as usize].vctx[idx as usize].stack.push(seg);
            }
        }
        self.start_segment(tid, SegKind::PiSync, self.p.costs.pi_notification);
    }

    // -----------------------------------------------------------------
    // Segment completion dispatch
    // -----------------------------------------------------------------

    fn on_seg_done(&mut self, tid: ThreadId) {
        let seg = self
            .clear_seg(tid)
            .expect("SegDone with current gen but no segment");
        match (self.threads[tid.idx()].body, seg.kind) {
            (Body::Vcpu { vm, idx }, SegKind::Burn) => {
                self.start_vcpu_work(vm, idx);
            }
            (Body::Vcpu { vm, idx }, SegKind::App(step)) => {
                self.complete_app(vm, idx, step);
            }
            (Body::Vcpu { vm, idx }, SegKind::Irq(kind)) => {
                self.complete_irq(vm, idx, kind);
            }
            (Body::Vcpu { vm, idx }, SegKind::PiSync) => {
                let vector = {
                    let vcpu = &mut self.vms[vm as usize].vcpus[idx as usize];
                    vcpu.pi_notification_sync();
                    vcpu.take_posted_interrupt()
                };
                match vector {
                    Some(v) => self.begin_irq(vm, idx, v),
                    None => self.resume_or_fresh(vm, idx),
                }
            }
            (Body::Vcpu { vm, idx }, SegKind::Exit { then, .. }) => match then {
                AfterExit::Resume => {
                    self.vm_entry_and_dispatch(vm, idx);
                }
                AfterExit::Eoi => {
                    self.vms[vm as usize].vcpus[idx as usize].eoi();
                    if let Some(tr) = self.spans.as_deref_mut() {
                        tr.on_eoi_done(vm, idx, self.now.as_nanos(), self.window_open);
                    }
                    if self.begin_spurious_eoi(vm, idx) {
                        return;
                    }
                    self.vm_entry_and_dispatch(vm, idx);
                }
                AfterExit::SpuriousEoi => {
                    // No in-service interrupt to complete; chain the next
                    // storm write or finally re-enter.
                    if self.begin_spurious_eoi(vm, idx) {
                        return;
                    }
                    self.vm_entry_and_dispatch(vm, idx);
                }
            },
            (Body::Vhost { vm, w }, SegKind::VhostDispatch { h }) => {
                self.vhost_begin_turn(vm, w, h);
            }
            (Body::Vhost { vm, w }, SegKind::VhostTxPkt { pkt }) => {
                self.complete_vhost_tx(vm, w, pkt);
            }
            (Body::Vhost { vm, w }, SegKind::VhostRxPkt { pkt }) => {
                self.complete_vhost_rx(vm, w, pkt);
            }
            (body, kind) => unreachable!("segment {kind:?} on {body:?}"),
        }
    }

    /// Begin one spurious EOI write of a hostile EOI storm, if any are
    /// pending on this vCPU. The write re-enters the guest and traps
    /// straight back out; the entry+trap pair is modeled as one more
    /// APIC-access exit segment with no injection window, so every cycle
    /// of the storm is paid for by the hostile vCPU alone. Returns whether
    /// a storm segment was started.
    fn begin_spurious_eoi(&mut self, vm: u32, idx: u32) -> bool {
        let vmi = vm as usize;
        if self.vms[vmi].vctx[idx as usize].pending_spurious_eois == 0 {
            return false;
        }
        self.vms[vmi].vctx[idx as usize].pending_spurious_eois -= 1;
        self.vms[vmi].vcpus[idx as usize]
            .exits
            .record(ExitReason::ApicAccess);
        self.vms[vmi].vctx[idx as usize].cache_cold = true;
        if let Some(t) = self.tel.as_deref_mut() {
            t.on_exit(vm, ExitReason::ApicAccess.idx(), self.now.as_nanos());
        }
        self.tracer
            .record(self.now, "eoi-storm", vm as u64, idx as u64);
        let tid = self.vms[vmi].vcpu_tids[idx as usize];
        let dur = self.p.costs.exit_cost(ExitReason::ApicAccess);
        self.start_segment(
            tid,
            SegKind::Exit {
                reason: ExitReason::ApicAccess,
                then: AfterExit::SpuriousEoi,
            },
            dur,
        );
        true
    }

    /// Resume the vCPU's interrupted work (in guest mode): first honour a
    /// TX kick that became due in IRQ context, then the thread's saved
    /// segment, then the IRQ resume stack, then fresh application work.
    pub(crate) fn resume_or_fresh(&mut self, vm: u32, idx: u32) {
        let tid = self.vms[vm as usize].vcpu_tids[idx as usize];
        if self.vms[vm as usize].vctx[idx as usize].pending_storm_kicks > 0 {
            // Drain one spurious doorbell write of a hostile kick storm:
            // a full I/O-instruction exit charged to this (hostile) vCPU.
            // The kick signal itself is what the admission throttle and
            // the worker's already-queued dedup absorb.
            self.vms[vm as usize].vctx[idx as usize].pending_storm_kicks -= 1;
            self.vms[vm as usize].bp.spurious_kicks += 1;
            if let Some(seg) = self.clear_seg(tid) {
                self.vms[vm as usize].vctx[idx as usize].stack.push(seg);
            }
            let qi = self.vms[vm as usize].tx_pair_for_vcpu(idx);
            let h = self.vms[vm as usize].pairs[qi].tx_h;
            self.kick_vhost(vm, h);
            self.begin_exit(vm, idx, ExitReason::IoInstruction, AfterExit::Resume);
            return;
        }
        if !self.vms[vm as usize].vctx[idx as usize]
            .pending_kicks
            .is_empty()
        {
            let h = self.vms[vm as usize].vctx[idx as usize]
                .pending_kicks
                .remove(0);
            // The kick exit runs before the interrupted segment resumes:
            // park any saved segment on the IRQ resume stack so the exit's
            // start_segment cannot clobber it. (A preempted NAPI poll left
            // here otherwise vanishes with RX interrupts still masked —
            // a permanent RX stall once vCPUs contend for cores.)
            if let Some(seg) = self.clear_seg(tid) {
                self.vms[vm as usize].vctx[idx as usize].stack.push(seg);
            }
            self.begin_kick_exit(vm, idx, h);
            return;
        }
        if self.threads[tid.idx()].seg.is_some() {
            self.resume_saved(tid, false);
        } else if let Some(seg) = self.vms[vm as usize].vctx[idx as usize].stack.pop() {
            self.threads[tid.idx()].seg = Some(seg);
            self.resume_saved(tid, false);
        } else {
            self.start_vcpu_work(vm, idx);
        }
    }

    // -----------------------------------------------------------------
    // Fault recovery and degradation machinery
    // -----------------------------------------------------------------

    /// Periodic liveness watchdog, armed only under an active fault plan.
    ///
    /// Each pass scans every VM for the stuck states a lost notification
    /// leaves behind and re-issues the signal. The re-issues go through the
    /// reliable host-internal paths (a software watchdog cannot lose its
    /// own wakeup), so every fault class converges in at most a few
    /// watchdog periods.
    fn on_watchdog(&mut self) {
        for vm in 0..self.vms.len() as u32 {
            self.watchdog_scan_vm(vm);
        }
        self.q.push(self.now + self.p.watchdog_period, Ev::Watchdog);
    }

    /// One VM's watchdog pass. Factored out so migration resume can run
    /// the identical stale-state scan on the target host: a re-raise
    /// issued here goes through [`Machine::route_and_deliver_msi_from`]
    /// with watchdog provenance — the reliable path stale MSIs are
    /// retargeted over after a move.
    pub(crate) fn watchdog_scan_vm(&mut self, vm: u32) {
        let vmi = vm as usize;
        for qi in 0..self.vms[vmi].pairs.len() {
            // Lost TX kick: exposed buffers while the handler sits in
            // notification mode, yet nobody queued it and it is not
            // mid-turn on any worker. (Polling mode recovers by itself
            // via requeues.)
            let tx_h = self.vms[vmi].pairs[qi].tx_h;
            let tx_stuck = !self.vms[vmi].pairs[qi].tx.is_broken()
                && self.vms[vmi].pairs[qi]
                    .tx_handler
                    .needs_rekick(&self.vms[vmi].pairs[qi].tx)
                && !self.vms[vmi].worker.is_queued(tx_h)
                && !self.vms[vmi].cur_handler.contains(&Some(tx_h));
            if tx_stuck {
                self.vms[vmi].watchdog_rekicks += 1;
                self.tracer
                    .record(self.now, "wd-rekick", vm as u64, tx_h.0 as u64);
                if let Some(t) = self.tel.as_deref_mut() {
                    t.annotate(self.now.as_nanos(), vm, "wd-rekick", tx_h.0 as u64);
                }
                self.trace_kick_signal(vm, tx_h, crate::spans::KickOrigin::Watchdog);
                let (w, _) = self.vms[vmi].worker.queue_work(tx_h);
                let tid = self.vms[vmi].vhost_tids[w];
                self.wake_thread(tid);
            }
            // Lost RX refill kick: ingress backlog waiting, guest buffers
            // available, but the RX handler was never requeued.
            let rx_h = self.vms[vmi].pairs[qi].rx_h;
            let rx_stuck = !self.vms[vmi].pairs[qi].rx.is_broken()
                && !self.vms[vmi].pairs[qi].backlog.is_empty()
                && self.vms[vmi].pairs[qi].rx.avail_pending() > 0
                && !self.vms[vmi].worker.is_queued(rx_h)
                && !self.vms[vmi].cur_handler.contains(&Some(rx_h));
            if rx_stuck {
                self.vms[vmi].watchdog_rekicks += 1;
                self.tracer
                    .record(self.now, "wd-rekick", vm as u64, rx_h.0 as u64);
                if let Some(t) = self.tel.as_deref_mut() {
                    t.annotate(self.now.as_nanos(), vm, "wd-rekick", rx_h.0 as u64);
                }
                self.trace_kick_signal(vm, rx_h, crate::spans::KickOrigin::Watchdog);
                let (w, _) = self.vms[vmi].worker.queue_work(rx_h);
                let tid = self.vms[vmi].vhost_tids[w];
                self.wake_thread(tid);
            }
            // Lost RX interrupt: published packets with interrupts armed
            // and no handler running. Re-raising merely sets an IRR bit
            // that is already pending in the benign race, so a spurious
            // re-raise coalesces instead of double-delivering.
            if !self.vms[vmi].pairs[qi].rx.is_broken()
                && self.vms[vmi].pairs[qi].rx.used_pending() > 0
                && !self.vms[vmi].pairs[qi].rx.interrupts_disabled()
            {
                self.vms[vmi].watchdog_reraises += 1;
                let vector = self.vms[vmi].pairs[qi].rx_vector;
                self.tracer
                    .record(self.now, "wd-reraise", vm as u64, vector as u64);
                if let Some(t) = self.tel.as_deref_mut() {
                    t.annotate(self.now.as_nanos(), vm, "wd-reraise", vector as u64);
                }
                self.route_and_deliver_msi_from(vm, vector, true);
            }
            // Lost TX-completion interrupt: the guest blocked on a full
            // ring, completions are back, interrupts are armed — but the
            // MSI vanished.
            if !self.vms[vmi].pairs[qi].tx.is_broken()
                && self.vms[vmi].pairs[qi].blocked_tx_full
                && self.vms[vmi].pairs[qi].tx.used_pending() > 0
                && !self.vms[vmi].pairs[qi].tx.interrupts_disabled()
            {
                self.vms[vmi].watchdog_reraises += 1;
                let vector = self.vms[vmi].pairs[qi].tx_vector;
                self.tracer
                    .record(self.now, "wd-reraise", vm as u64, vector as u64);
                if let Some(t) = self.tel.as_deref_mut() {
                    t.annotate(self.now.as_nanos(), vm, "wd-reraise", vector as u64);
                }
                self.route_and_deliver_msi_from(vm, vector, true);
            }
        }
    }

    /// Forced-preemption storm tick: per the plan, force a reschedule on a
    /// random subset of cores (vCPU preemption at the worst moments —
    /// exactly the churn §IV-C's redirection is built to survive).
    fn on_preempt_storm(&mut self) {
        let period = self.faults.plan().preempt_storm_period;
        let cores = self.p.num_cores as usize;
        for c in self.faults.on_storm_tick(cores) {
            if let Some(sw) = self.sched.resched(CoreId(c as u32), self.now) {
                self.apply_switch(sw);
            }
        }
        self.q.push(self.now + period, Ev::PreemptStorm);
    }

    /// The guest driver resets a quarantined queue — the
    /// `DEVICE_NEEDS_RESET` handshake completing after
    /// `Params::quarantine_reset_delay`. Rings return to their
    /// post-construction state, the worker re-admits the handler's kicks,
    /// and any guest work blocked on the broken queue resumes.
    fn on_guest_queue_reset(&mut self, vm: u32, h: HandlerId) {
        let vmi = vm as usize;
        let qi = self.vms[vmi].pair_of(h);
        let is_tx = h.idx() % 2 == 0;
        let reset = if is_tx {
            self.vms[vmi].pairs[qi].tx.guest_reset()
        } else {
            self.vms[vmi].pairs[qi].rx.guest_reset()
        };
        if !reset {
            return; // stale event: no reset outstanding
        }
        self.vms[vmi].bp.resets += 1;
        self.tracer
            .record(self.now, "queue-reset", vm as u64, h.0 as u64);
        if let Some(t) = self.tel.as_deref_mut() {
            t.on_reset(vm, self.now.as_nanos(), h.0 as u64);
        }
        if is_tx {
            // Re-initialization mirrors construction: TX completions are
            // reclaimed in the xmit path, interrupts armed only when the
            // ring fills.
            self.vms[vmi].pairs[qi].tx.driver_disable_interrupts();
            self.vms[vmi].pairs[qi].blocked_tx_full = false;
        } else {
            // The driver pre-fills the fresh RX ring with buffers and
            // leaves refill notifications unarmed.
            for _ in 0..self.p.ring_size {
                let placeholder =
                    self.pf
                        .make(es2_net::FlowId(vm), es2_net::PacketKind::Data, 0, self.now);
                let _ = self.vms[vmi].pairs[qi].rx.driver_add(placeholder);
            }
            self.vms[vmi].pairs[qi].rx.device_disable_notify();
        }
        self.vms[vmi].worker.release(h);
        // Ingress may have piled up behind a quarantined RX queue: put the
        // handler straight back to work on the fresh ring.
        if !is_tx && !self.vms[vmi].pairs[qi].backlog.is_empty() {
            let (w, _) = self.vms[vmi].worker.queue_work(h);
            let tid = self.vms[vmi].vhost_tids[w];
            self.wake_thread(tid);
        }
        self.guest_app_wakeup(vm);
    }

    /// Posted-interrupt hardware fails for the plan's masked VMs: every
    /// affected vCPU migrates its pending posted state into the emulated
    /// LAPIC and flips to the kick-IPI/EOI path, without losing a vector.
    fn on_pi_fail(&mut self) {
        for vmi in 0..self.vms.len() {
            if !self.faults.plan().pi_fails_for_vm(vmi) || self.vms[vmi].pi_failed {
                continue;
            }
            self.vms[vmi].pi_failed = true;
            for idx in 0..self.vms[vmi].vcpus.len() {
                if self.vms[vmi].vcpus[idx].path != InterruptPath::Posted {
                    continue;
                }
                self.vms[vmi].vcpus[idx].degrade_to_emulated();
                self.faults.note_pi_degradation();
                self.modes.note_degradation(vmi);
                self.tracer
                    .record(self.now, "pi-degrade", vmi as u64, idx as u64);
                if let Some(t) = self.tel.as_deref_mut() {
                    t.annotate(self.now.as_nanos(), vmi as u32, "pi-degrade", idx as u64);
                }
                if let Some(tr) = self.spans.as_deref_mut() {
                    tr.on_degraded(vmi as u32, idx as u32, self.now.as_nanos());
                }
                // Vectors that were pending in the posted descriptor now
                // sit in the emulated IRR; arrange their injection the way
                // the emulated path would have.
                let v = &self.vms[vmi].vcpus[idx];
                if v.has_deliverable() {
                    if v.in_guest && v.running {
                        self.q.push(
                            self.now + self.p.costs.ipi_send,
                            Ev::KickIpi {
                                vm: vmi as u32,
                                vcpu: idx as u32,
                            },
                        );
                    } else {
                        let tid = self.vms[vmi].vcpu_tids[idx];
                        self.wake_thread(tid);
                    }
                }
            }
        }
    }
}
