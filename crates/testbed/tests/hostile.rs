//! Hostile-guest isolation suite.
//!
//! A guest owns its virtio rings and can publish anything it likes into
//! them; these tests drive the full machine with a guest that does
//! exactly that — out-of-range descriptors, avail-index jumps, chain
//! loops, doorbell storms, spurious EOI writes — and assert the paper's
//! multiplexing story survives: the hostile VM's queue is quarantined
//! and later reset, the hostile VM pays for its own storms, and the
//! *other* VMs keep full service (liveness-clean, bounded latency shift).

use es2_core::EventPathConfig;
use es2_hypervisor::ExitReason;
use es2_sim::{FaultPlan, RingCorruptionKind};
use es2_testbed::experiments::{self, hostile_plan, RunSpec};
use es2_testbed::{BackpressureParams, Machine, Params, RunResult, Topology, WorkloadSpec};
use es2_workloads::NetperfSpec;

fn fast() -> Params {
    Params::fast_test()
}

/// Fast params with the per-VM backpressure engine switched on.
fn fast_bp() -> Params {
    Params {
        backpressure: Some(BackpressureParams::default()),
        ..Params::fast_test()
    }
}

fn tcp_send() -> WorkloadSpec {
    WorkloadSpec::Netperf(NetperfSpec::tcp_send(1024))
}

/// Run one hostile machine through the liveness checker; panics on any
/// invariant violation (including on the hostile VM itself — quarantine
/// must degrade service, never corrupt machine state).
fn run_checked(
    cfg: EventPathConfig,
    topo: Topology,
    specs: Vec<WorkloadSpec>,
    params: Params,
    seed: u64,
    plan: FaultPlan,
) -> RunResult {
    let (r, report) =
        Machine::with_specs_faulted(cfg, topo, specs, params, seed, plan).run_checked();
    report.assert_ok();
    r
}

fn fingerprint(r: &RunResult) -> (u64, u64, u64, u64, u64, u64, u64) {
    (
        r.events_simulated,
        r.goodput_gbps.to_bits(),
        r.kicks_total,
        r.rx_interrupts_total,
        r.fault_stats.total(),
        r.backpressure.total(),
        r.quarantines_total + r.queue_resets_total,
    )
}

#[test]
fn every_corruption_kind_is_quarantined_and_survived() {
    // Each ring-corruption class in turn, single VM: validation must
    // catch the poisoned ring at the vhost boundary (no panic, no bogus
    // work), quarantine it, and the guest's reset must restore service.
    let kinds = [
        RingCorruptionKind::DescOutOfRange,
        RingCorruptionKind::AvailIdxJump,
        RingCorruptionKind::AvailIdxRegress,
        RingCorruptionKind::DescLoop,
        RingCorruptionKind::ChainOverLength,
        RingCorruptionKind::UsedOverflow,
    ];
    for kind in kinds {
        let plan = FaultPlan {
            hostile_vm: 0,
            ring_corrupt_at_kick: 10,
            ring_corruption: kind,
            ..FaultPlan::none()
        };
        let r = run_checked(
            EventPathConfig::pi(),
            Topology::micro(),
            vec![tcp_send()],
            fast(),
            17,
            plan,
        );
        assert_eq!(
            r.fault_stats.ring_corruptions, 1,
            "{kind:?}: corruption never published"
        );
        assert!(
            r.quarantines_total >= 1,
            "{kind:?}: corrupted ring was never quarantined: {r:?}"
        );
        assert!(
            r.queue_resets_total >= 1,
            "{kind:?}: guest never reset the quarantined queue: {r:?}"
        );
        assert!(
            r.goodput_gbps > 0.0,
            "{kind:?}: service never recovered after quarantine: {r:?}"
        );
    }
}

#[test]
fn quarantine_recovery_restores_most_of_clean_goodput() {
    // One early corruption + reset must cost a blip, not the run: the
    // post-reset queue carries the rest of the window at full rate.
    let clean = run_checked(
        EventPathConfig::pi(),
        Topology::micro(),
        vec![tcp_send()],
        fast(),
        23,
        FaultPlan::none(),
    );
    let plan = FaultPlan {
        hostile_vm: 0,
        ring_corrupt_at_kick: 10,
        ring_corruption: RingCorruptionKind::DescOutOfRange,
        ..FaultPlan::none()
    };
    let hostile = run_checked(
        EventPathConfig::pi(),
        Topology::micro(),
        vec![tcp_send()],
        fast(),
        23,
        plan,
    );
    assert!(clean.goodput_gbps > 0.0);
    assert!(
        hostile.goodput_gbps > 0.5 * clean.goodput_gbps,
        "single quarantine cost more than half the window: clean {} vs hostile {}",
        clean.goodput_gbps,
        hostile.goodput_gbps
    );
    assert_eq!(hostile.backpressure.quarantines, hostile.quarantines_total);
    assert_eq!(hostile.backpressure.resets, hostile.queue_resets_total);
}

#[test]
fn kick_storms_throttle_only_the_hostile_vm() {
    // Every hostile kick exit spawns an 8-deep doorbell storm; the GCRA
    // bucket must shed the excess onto the hostile VM's own timeline
    // while the neighbor VM's ledger stays untouched.
    let topo = Topology {
        num_vms: 2,
        vcpus_per_vm: 1,
    };
    let plan = FaultPlan {
        hostile_vm: 1,
        kick_storm_p: 1.0,
        kick_storm_burst: 8,
        ..FaultPlan::none()
    };
    let r = run_checked(
        EventPathConfig::pi(),
        topo,
        vec![tcp_send(), tcp_send()],
        fast_bp(),
        31,
        plan,
    );
    assert!(r.fault_stats.storm_kicks > 0, "no storm ever drawn: {r:?}");
    let hostile = &r.backpressure_per_vm[1];
    assert!(
        hostile.spurious_kicks > 0,
        "hostile VM never paid its storm exits: {hostile:?}"
    );
    assert!(
        hostile.throttled_kicks > 0,
        "storm never hit the kick throttle: {hostile:?}"
    );
    let victim = &r.backpressure_per_vm[0];
    assert_eq!(
        victim.spurious_kicks, 0,
        "storm leaked onto the neighbor: {victim:?}"
    );
    assert_eq!(victim.quarantines, 0);
    assert!(
        r.goodput_gbps > 0.0,
        "neighbor VM 0 lost service to VM 1's storm: {r:?}"
    );
}

#[test]
fn eoi_storms_cost_exits_only_on_the_emulated_path() {
    // Spurious EOI writes are ApicAccess exits on the emulated path but
    // are absorbed exit-free by the virtualized APIC page: the hostile
    // guest hurts itself under Baseline and achieves nothing under PI.
    let plan = FaultPlan {
        hostile_vm: 0,
        eoi_storm_p: 1.0,
        eoi_storm_burst: 4,
        ..FaultPlan::none()
    };
    let emulated = run_checked(
        EventPathConfig::baseline(),
        Topology::micro(),
        vec![tcp_send()],
        fast(),
        41,
        plan,
    );
    assert!(emulated.fault_stats.storm_eois > 0, "no EOI storm drawn");
    assert!(
        emulated.backpressure.spurious_eois > 0,
        "spurious EOIs not accounted: {:?}",
        emulated.backpressure
    );
    assert!(emulated.goodput_gbps > 0.0);

    let clean = run_checked(
        EventPathConfig::baseline(),
        Topology::micro(),
        vec![tcp_send()],
        fast(),
        41,
        FaultPlan::none(),
    );
    assert!(
        emulated.exits.total(ExitReason::ApicAccess) > clean.exits.total(ExitReason::ApicAccess),
        "EOI storm paid no ApicAccess exits: storm {} vs clean {}",
        emulated.exits.total(ExitReason::ApicAccess),
        clean.exits.total(ExitReason::ApicAccess)
    );

    let vapic = run_checked(
        EventPathConfig::pi(),
        Topology::micro(),
        vec![tcp_send()],
        fast(),
        41,
        plan,
    );
    assert!(vapic.backpressure.spurious_eois > 0);
    assert_eq!(
        vapic.exits.total(ExitReason::ApicAccess),
        0,
        "vAPIC path should absorb spurious EOIs without exits"
    );
}

#[test]
fn full_hostile_plan_has_bounded_blast_radius() {
    // The flagship claim: VM 1 runs the whole hostile family (corruption
    // + both storms + descriptor loops) against a backpressured host;
    // the tested VM 0 keeps its goodput and its tail latency.
    let topo = Topology::multiplexed();
    let specs = || {
        vec![
            tcp_send(),
            tcp_send(),
            WorkloadSpec::Idle,
            WorkloadSpec::Idle,
        ]
    };
    let clean = run_checked(
        EventPathConfig::pi_h(4),
        topo,
        specs(),
        fast_bp(),
        7,
        FaultPlan::none(),
    );
    let hostile = run_checked(
        EventPathConfig::pi_h(4),
        topo,
        specs(),
        fast_bp(),
        7,
        hostile_plan(1),
    );

    assert!(hostile.fault_stats.ring_corruptions >= 1);
    assert!(hostile.quarantines_total >= 1);
    // Containment: every hostile-side counter lands on VM 1 alone.
    for (vm, bp) in hostile.backpressure_per_vm.iter().enumerate() {
        if vm == 1 {
            continue;
        }
        assert_eq!(bp.spurious_kicks, 0, "vm{vm} absorbed storm kicks: {bp:?}");
        assert_eq!(bp.spurious_eois, 0, "vm{vm} absorbed storm EOIs: {bp:?}");
        assert_eq!(bp.quarantines, 0, "vm{vm} queue quarantined: {bp:?}");
        assert_eq!(bp.resets, 0, "vm{vm} queue reset: {bp:?}");
    }
    // Bounded degradation for the victim: most of the clean goodput and
    // a tail-latency shift that stays within a small constant factor.
    assert!(clean.goodput_gbps > 0.0);
    assert!(
        hostile.goodput_gbps > 0.5 * clean.goodput_gbps,
        "hostile neighbor halved VM 0 goodput: clean {} vs hostile {}",
        clean.goodput_gbps,
        hostile.goodput_gbps
    );
    let clean_p99 = clean.rx_p99_us_per_vm[0].max(1);
    let hostile_p99 = hostile.rx_p99_us_per_vm[0].max(1);
    assert!(
        hostile_p99 <= 4 * clean_p99,
        "VM 0 rx p99 blew past the blast-radius bound: clean {clean_p99} µs vs hostile \
         {hostile_p99} µs"
    );
}

#[test]
fn hostile_sweep_is_identical_at_any_thread_count() {
    let specs: Vec<RunSpec> = (0..4)
        .map(|i| RunSpec {
            cfg: EventPathConfig::pi_h(4),
            topo: Topology::multiplexed(),
            spec: tcp_send(),
            params: fast_bp(),
            seed: 900 + i,
            faults: hostile_plan(0),
            fill: WorkloadSpec::Idle,
        })
        .collect();

    es2_sim::exec::set_threads(Some(1));
    let serial = experiments::run_specs(&specs);
    es2_sim::exec::set_threads(None);
    let parallel = experiments::run_specs(&specs);

    for (s, p) in serial.iter().zip(&parallel) {
        assert_eq!(fingerprint(s), fingerprint(p), "parallel diverged");
        assert_eq!(s.fault_stats, p.fault_stats);
        assert_eq!(s.backpressure, p.backpressure);
        assert_eq!(s.backpressure_per_vm, p.backpressure_per_vm);
    }
}

#[test]
fn same_seed_reproduces_the_same_hostile_run() {
    let a = run_checked(
        EventPathConfig::pi(),
        Topology::micro(),
        vec![tcp_send()],
        fast_bp(),
        55,
        hostile_plan(0),
    );
    let b = run_checked(
        EventPathConfig::pi(),
        Topology::micro(),
        vec![tcp_send()],
        fast_bp(),
        55,
        hostile_plan(0),
    );
    assert_eq!(fingerprint(&a), fingerprint(&b));
    assert_eq!(a.backpressure, b.backpressure);
}

#[test]
fn non_hostile_plans_draw_nothing_from_the_hostile_streams() {
    // The pre-existing chaos plan has every hostile field at zero: the
    // hostile machinery must stay inert (zero draws, zero quarantines)
    // and the default backpressure=None leaves the whole ledger empty.
    let r = run_checked(
        EventPathConfig::pi_h(4),
        Topology::micro(),
        vec![tcp_send()],
        fast(),
        11,
        experiments::chaos_plan(),
    );
    assert!(r.fault_stats.total() > 0, "chaos plan injected nothing");
    assert_eq!(r.fault_stats.ring_corruptions, 0);
    assert_eq!(r.fault_stats.storm_kicks, 0);
    assert_eq!(r.fault_stats.storm_eois, 0);
    assert_eq!(r.quarantines_total, 0);
    assert_eq!(r.queue_resets_total, 0);
    assert_eq!(r.backpressure.total(), 0, "{:?}", r.backpressure);
}
