//! Multi-queue virtio suite: per-queue MSI steering, sharded vhost
//! workers, and per-queue quarantine containment.
//!
//! The tentpole contract: with `queues_per_vm > 1` every TX/RX pair has
//! its own MSI vectors steered at its owning vCPU (pair `q` → vCPU
//! `q % N`), its own vhost handler identities, and its own quarantine
//! blast radius — a hostile guest corrupting queue `k` loses `(vm, k)`
//! alone while neighbors *and the same VM's other queues* keep service.

use es2_core::EventPathConfig;
use es2_sim::{FaultPlan, RingCorruptionKind};
use es2_testbed::experiments::{self, RunSpec};
use es2_testbed::{Machine, Params, RunResult, ShardPolicy, Topology, WorkloadSpec};
use es2_workloads::NetperfSpec;

/// Fast params with `queues` TX/RX pairs per VM and `workers` sharded
/// vhost workers (pinned, so `ES2_VHOST_WORKERS` cannot perturb tests).
fn mq_params(queues: u32, workers: u32, policy: ShardPolicy) -> Params {
    Params {
        queues_per_vm: queues,
        vhost_workers: workers,
        shard_policy: policy,
        ..Params::fast_test()
    }
}

fn duo() -> Topology {
    Topology {
        num_vms: 1,
        vcpus_per_vm: 2,
    }
}

fn run_checked(
    cfg: EventPathConfig,
    topo: Topology,
    specs: Vec<WorkloadSpec>,
    params: Params,
    seed: u64,
    plan: FaultPlan,
) -> RunResult {
    let (r, report) =
        Machine::with_specs_faulted(cfg, topo, specs, params, seed, plan).run_checked();
    report.assert_ok();
    r
}

fn fingerprint(r: &RunResult) -> (u64, u64, u64, u64, u64, u64) {
    (
        r.events_simulated,
        r.goodput_gbps.to_bits(),
        r.kicks_total,
        r.rx_interrupts_total,
        r.backpressure.total(),
        r.quarantines_total + r.queue_resets_total,
    )
}

#[test]
fn queue_interrupts_land_on_their_owning_vcpu() {
    // Without redirection the device MSI goes straight to the pair's
    // affinity vCPU. Two queues on two vCPUs: RSS spreads ingress across
    // both pairs, so both vCPUs must handle device interrupts. The same
    // machine with one queue steers every device vector at vCPU 0.
    let recv = WorkloadSpec::Netperf(NetperfSpec::udp_receive(1024));
    let two_q = run_checked(
        EventPathConfig::pi_h(4),
        duo(),
        vec![recv],
        mq_params(2, 2, ShardPolicy::Affine),
        71,
        FaultPlan::none(),
    );
    assert!(two_q.goodput_gbps > 0.0);
    assert!(
        two_q.device_irqs_per_vcpu[0] > 0,
        "queue 0's vCPU never handled a device interrupt: {:?}",
        two_q.device_irqs_per_vcpu
    );
    assert!(
        two_q.device_irqs_per_vcpu[1] > 0,
        "queue 1's MSIs never reached its owning vCPU 1: {:?}",
        two_q.device_irqs_per_vcpu
    );

    let one_q = run_checked(
        EventPathConfig::pi_h(4),
        duo(),
        vec![recv],
        mq_params(1, 1, ShardPolicy::Mux),
        71,
        FaultPlan::none(),
    );
    assert!(one_q.device_irqs_per_vcpu[0] > 0);
    assert_eq!(
        one_q.device_irqs_per_vcpu[1], 0,
        "single-queue MSIs must all steer at vCPU 0: {:?}",
        one_q.device_irqs_per_vcpu
    );
}

#[test]
fn steering_survives_redirection_and_vcpu_migration() {
    // Redirection + multi-queue: per-queue vectors must retarget through
    // the same online/offline machinery as the single-queue path —
    // parked interrupts, sibling migration, watchdog re-raises — and the
    // run must stay liveness-clean with service intact.
    let topo = Topology::multiplexed();
    let specs = vec![
        WorkloadSpec::Netperf(NetperfSpec::tcp_send(1024).with_threads(4)),
        WorkloadSpec::Netperf(NetperfSpec::udp_receive(1024)),
        WorkloadSpec::Netperf(NetperfSpec::tcp_send(512)),
        WorkloadSpec::Idle,
    ];
    let r = run_checked(
        EventPathConfig::pi_h_r(4),
        topo,
        specs,
        mq_params(4, 2, ShardPolicy::Affine),
        83,
        FaultPlan::none(),
    );
    assert!(r.goodput_gbps > 0.0, "no service under redirection: {r:?}");
    assert!(
        r.device_irqs_per_vcpu.iter().sum::<u64>() > 0,
        "no device interrupts delivered at all: {r:?}"
    );
    // The time-shared cores force vCPUs offline; redirection must have
    // engaged (else the config silently degraded to plain PI+H).
    assert!(
        r.redirections + r.offline_predictions > 0,
        "redirection never engaged on a contended multi-queue box: {r:?}"
    );
}

#[test]
fn hostile_queue_quarantines_only_that_queue() {
    // VM 1 corrupts one ring; exactly one (vm, queue) pays. The tested
    // VM 0 keeps goodput, VM 1's *other* queues keep completing work
    // (the reset handshake restores the broken one).
    let topo = Topology {
        num_vms: 2,
        vcpus_per_vm: 2,
    };
    let plan = FaultPlan {
        hostile_vm: 1,
        ring_corrupt_at_kick: 10,
        ring_corruption: RingCorruptionKind::DescOutOfRange,
        ..FaultPlan::none()
    };
    let specs = vec![
        WorkloadSpec::Netperf(NetperfSpec::tcp_send(1024)),
        WorkloadSpec::Netperf(NetperfSpec::tcp_send(1024)),
    ];
    let r = run_checked(
        EventPathConfig::pi_h(4),
        topo,
        specs,
        mq_params(2, 2, ShardPolicy::Affine),
        97,
        plan,
    );
    assert_eq!(r.fault_stats.ring_corruptions, 1);
    assert_eq!(
        r.quarantines_total, 1,
        "exactly one queue must be quarantined, not the whole VM: {r:?}"
    );
    assert!(r.queue_resets_total >= 1, "broken queue never reset: {r:?}");
    let victim = &r.backpressure_per_vm[0];
    assert_eq!(victim.quarantines, 0, "neighbor queue quarantined: {victim:?}");
    assert_eq!(victim.resets, 0, "neighbor queue reset: {victim:?}");
    assert!(
        r.goodput_gbps > 0.0,
        "neighbor VM lost service to a single hostile queue: {r:?}"
    );
    let hostile = &r.backpressure_per_vm[1];
    assert_eq!(hostile.quarantines, 1, "{hostile:?}");
}

#[test]
fn sharded_runs_are_identical_at_any_thread_count() {
    // Every sharding policy must stay byte-deterministic under the
    // parallel runner — the same discipline verify.sh enforces for the
    // single-worker path.
    for policy in [ShardPolicy::Hash, ShardPolicy::Affine, ShardPolicy::Passthrough] {
        let specs: Vec<RunSpec> = (0..3)
            .map(|i| RunSpec {
                cfg: EventPathConfig::pi_h(4),
                topo: duo(),
                spec: WorkloadSpec::Netperf(NetperfSpec::tcp_send(1024)),
                params: mq_params(2, 2, policy),
                seed: 700 + i,
                faults: FaultPlan::none(),
                fill: WorkloadSpec::Idle,
            })
            .collect();
        es2_sim::exec::set_threads(Some(1));
        let serial = experiments::run_specs(&specs);
        es2_sim::exec::set_threads(None);
        let parallel = experiments::run_specs(&specs);
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(
                fingerprint(s),
                fingerprint(p),
                "{policy:?}: parallel diverged"
            );
        }
    }
}

#[test]
fn passthrough_skips_the_dispatch_hop() {
    // Passthrough pins pair q to worker q and skips the shared dispatch
    // segment between turns; the mux pays it on every turn. Same
    // workload, same seed: passthrough must complete the run with
    // service intact and no dispatch-serialization artifacts.
    let spec = WorkloadSpec::Netperf(NetperfSpec::tcp_send(1024));
    let mux = run_checked(
        EventPathConfig::pi_h(4),
        duo(),
        vec![spec],
        mq_params(2, 1, ShardPolicy::Mux),
        113,
        FaultPlan::none(),
    );
    let pt = run_checked(
        EventPathConfig::pi_h(4),
        duo(),
        vec![spec],
        mq_params(2, 2, ShardPolicy::Passthrough),
        113,
        FaultPlan::none(),
    );
    assert!(mux.goodput_gbps > 0.0);
    assert!(
        pt.goodput_gbps > 0.0,
        "passthrough produced no service: {pt:?}"
    );
}
