//! Tenant-churn control-plane tests: lifecycle faults (stuck boots,
//! placement failures, crash-during-admit), the depart/migration race,
//! retry-exhaustion determinism, leak-proof reclamation under the full
//! fault diet, and the serial-vs-parallel / churn-off byte-identity
//! gates.

use es2_core::EventPathConfig;
use es2_sim::{FaultPlan, SimDuration, SimTime};
use es2_testbed::{ChurnSpec, Cluster, ClusterSpec, Params, PlannedMove, WorkloadSpec};
use es2_workloads::NetperfSpec;

fn tiny_params() -> Params {
    Params {
        warmup: SimDuration::from_millis(20),
        measure: SimDuration::from_millis(100),
        ..Params::default()
    }
}

fn cfg() -> EventPathConfig {
    EventPathConfig::pi_h_r(es2_core::HybridParams::TCP_QUOTA)
}

fn tcp() -> WorkloadSpec {
    WorkloadSpec::Netperf(NetperfSpec::tcp_send(1024))
}

fn at_ms(ms: u64) -> SimTime {
    SimTime::ZERO + SimDuration::from_millis(ms)
}

fn churn_spec(arrivals: u32) -> ChurnSpec {
    ChurnSpec {
        arrivals,
        ..ChurnSpec::default()
    }
}

/// A churn cell used by most tests: 2 hosts, a small static fleet, and
/// an arrival stream.
fn churn_cluster(arrivals: u32, seed: u64, plan: FaultPlan) -> ClusterSpec {
    let fleet = vec![tcp(), WorkloadSpec::Ping];
    let mut spec = ClusterSpec::new(cfg(), 1, fleet, 2, 4, tiny_params(), seed);
    spec.plan = plan;
    spec.churn = Some(churn_spec(arrivals));
    spec
}

/// Enabling the churn machinery with zero arrivals must not perturb the
/// run at all: same slot table, same RNG draws, same digest — the
/// churn-off ≡ legacy byte-identity gate, testable without a golden.
#[test]
fn zero_arrival_churn_is_byte_identical_to_disabled() {
    let mut with = churn_cluster(0, 11, FaultPlan::none());
    with.moves = vec![PlannedMove {
        vm: 0,
        to: 1,
        at: at_ms(40),
    }];
    let mut without = with.clone();
    without.churn = None;

    let d_with = Cluster::new(with).run_serial().digest();
    let d_without = Cluster::new(without).run_serial().digest();
    // The enabled run appends churn ledger lines; everything before
    // them must match the disabled run byte for byte.
    let stripped: String = d_with
        .lines()
        .filter(|l| !l.starts_with("churn"))
        .map(|l| format!("{l}\n"))
        .collect();
    assert_eq!(stripped, d_without, "zero-arrival churn perturbed the run");
    assert!(d_with.lines().any(|l| l.starts_with("churn arrivals=0")));
}

/// Clean churn: arrivals admit, boot, run, and (those whose lifetime
/// ends in-window) depart — with zero orphaned resources afterwards.
#[test]
fn arrivals_boot_run_and_depart_cleanly() {
    let r = Cluster::new(churn_cluster(6, 3, FaultPlan::none())).run_serial();
    assert!(r.liveness.ok(), "{:?}\n{}", r.liveness.violations, r.liveness.diagnostics);
    let c = r.churn.as_ref().expect("churn ledger missing");
    assert!(c.arrivals > 0, "no arrivals landed in the window");
    assert_eq!(c.place_fail_faults + c.boot_stall_faults, 0, "clean plan drew faults");
    assert!(c.admitted > 0, "nothing admitted: {c:?}");
    assert_eq!(r.ledger.boots as u32, c.admitted, "boot calls != admissions");
    assert_eq!(r.ledger.departs as u32, c.departures, "depart calls != departures");
    assert_eq!(r.orphans(), 0);
    // Residents at end of run appear in final_host; departed slots
    // don't (clean plan: nothing is lost to crashes).
    let fleet_n = 2;
    let resident = r.final_host[fleet_n..].iter().flatten().count() as u32;
    assert_eq!(resident, c.admitted - c.departures, "slot residency mismatch");
}

/// A deterministically-stalled boot times out, rolls the partial boot
/// back (reclaiming the slot), and the retry queue re-admits the
/// arrival — the boot-timeout rollback path end to end.
#[test]
fn stuck_boot_times_out_rolls_back_and_retries() {
    let plan = FaultPlan {
        churn_boot_stall_nth: 1,
        ..FaultPlan::none()
    };
    let r = Cluster::new(churn_cluster(4, 5, plan)).run_serial();
    assert!(r.liveness.ok(), "{:?}\n{}", r.liveness.violations, r.liveness.diagnostics);
    let c = r.churn.as_ref().unwrap();
    assert_eq!(c.boot_stall_faults, 1, "the pinned stall did not fire: {c:?}");
    assert_eq!(r.ledger.boot_timeouts, 1, "stall did not roll back via timeout");
    assert!(c.retried >= 1 && c.retries >= 1, "stalled arrival never retried: {c:?}");
    assert!(
        c.retry_successes >= 1,
        "retry after the rollback never admitted: {c:?}"
    );
    assert_eq!(r.orphans(), 0, "rollback leaked: {:?}", r.liveness.violations);
}

/// With every placement attempt failing, each arrival marches through
/// its full backoff schedule into the permanently-rejected ledger —
/// deterministically, twice over.
#[test]
fn retry_exhaustion_is_deterministic_and_complete() {
    let plan = FaultPlan {
        churn_place_fail_p: 1.0,
        ..FaultPlan::none()
    };
    let run = || Cluster::new(churn_cluster(5, 17, plan)).run_serial();
    let a = run();
    let b = run();
    assert_eq!(a.digest(), b.digest(), "retry exhaustion not deterministic");
    let c = a.churn.as_ref().unwrap();
    assert_eq!(c.admitted, 0, "admission under place_fail_p=1.0: {c:?}");
    assert_eq!(
        c.rejected_final + c.abandoned,
        c.arrivals,
        "every in-window arrival must exhaust or run out of window: {c:?}"
    );
    assert!(c.rejected_final > 0, "nobody exhausted retries: {c:?}");
    assert_eq!(c.retry_success_ratio(), 0.0);
    assert!(a.liveness.ok(), "{:?}", a.liveness.violations);
    assert_eq!(a.orphans(), 0);
}

/// A host crash while an arrival is mid-boot on it: the half-booted
/// tenant is re-placed through the evacuation path onto a survivor and
/// completes its boot there.
#[test]
fn crash_during_admit_replaces_via_evacuation() {
    // Fleet of 3 packs host 0 (best-fit), so the first arrival lands on
    // host 0 too (least free that fits). Crash host 0 at 5.5 ms — right
    // inside arrival 0's boot window (arrival 5 ms + boot delay 1 ms).
    let fleet = vec![tcp(), WorkloadSpec::Ping, tcp()];
    let mut spec = ClusterSpec::new(cfg(), 1, fleet, 2, 4, tiny_params(), 9);
    spec.plan = FaultPlan {
        host_crash_mask: 0b01,
        host_crash_at: SimDuration::from_micros(5_500),
        ..FaultPlan::none()
    };
    spec.churn = Some(churn_spec(3));
    let r = Cluster::new(spec).run_serial();
    assert!(r.liveness.ok(), "{:?}\n{}", r.liveness.violations, r.liveness.diagnostics);
    let c = r.churn.as_ref().unwrap();
    assert!(
        c.replaced_on_crash >= 1,
        "mid-boot arrival was not re-placed off the crashing host: {c:?}"
    );
    assert!(c.admitted >= 1, "re-placed boot never completed: {c:?}");
    // Everything that stayed resident must be on the surviving host.
    for (g, h) in r.final_host.iter().enumerate() {
        if let Some(h) = h {
            assert_eq!(*h, 1, "slot {g} resident on the crashed host");
        }
    }
    assert_eq!(r.orphans(), 0);
}

/// A departure racing an in-flight migration of the same tenant defers
/// until the copy settles, then tears down on the holding host — no
/// leak, no panic, counted as a destroy race.
///
/// The race is aimed deterministically: the first arrival's boot time
/// is fixed (`first_arrival + boot_delay`, no draw), and its lifetime
/// draw is replayed here on a fresh injector (the churn streams are
/// dedicated, so the first lifetime draw is the first value on that
/// stream) — the move is then planned 2 µs before the known depart
/// instant, squarely inside the migration's blackout window.
#[test]
fn depart_racing_migration_defers_and_reclaims() {
    let churn = ChurnSpec {
        arrivals: 1,
        mean_lifetime: SimDuration::from_millis(20),
        ..ChurnSpec::default()
    };
    let mut hit = false;
    for seed in 0..8u64 {
        let lifetime = es2_sim::FaultInjector::new(FaultPlan::none(), seed)
            .churn_lifetime(churn.mean_lifetime);
        let boot_at = SimTime::ZERO + churn.first_arrival + churn.boot_delay;
        let depart_at = boot_at + lifetime;
        if depart_at >= at_ms(100) {
            continue; // heavy tail outlived the run; try the next seed
        }
        let fleet = vec![WorkloadSpec::Ping];
        let mut spec = ClusterSpec::new(cfg(), 1, fleet, 2, 6, tiny_params(), seed);
        spec.churn = Some(churn);
        spec.moves = vec![PlannedMove {
            vm: 1,
            to: 1,
            at: depart_at - SimDuration::from_micros(2),
        }];
        let r = Cluster::new(spec).run_serial();
        assert!(
            r.liveness.ok(),
            "seed {seed}: {:?}\n{}",
            r.liveness.violations,
            r.liveness.diagnostics
        );
        assert_eq!(r.orphans(), 0, "seed {seed} leaked");
        let c = r.churn.as_ref().unwrap();
        assert_eq!(c.moves_skipped, 0, "seed {seed}: aimed move was skipped");
        assert_eq!(r.ledger.out, 1, "seed {seed}: migration never started");
        assert_eq!(
            c.destroy_races, 1,
            "seed {seed}: depart did not race the in-flight copy: {c:?}"
        );
        assert_eq!(c.departures, 1, "seed {seed}: deferred depart never landed: {c:?}");
        // The tenant migrated, then departed on the target: gone.
        assert_eq!(r.final_host[1], None, "seed {seed}: tenant still resident");
        hit = true;
        break;
    }
    assert!(hit, "every scanned seed drew a lifetime beyond the run window");
}

/// The full fault diet — placement failures, stuck boots, a host crash,
/// migration aborts, destroy races — over serial and parallel executors
/// at 1, 4, and 8 workers: byte-identical digests everywhere, zero
/// orphaned resources.
#[test]
fn serial_and_parallel_churn_digests_are_identical() {
    let fleet = vec![tcp(), WorkloadSpec::Ping, tcp(), WorkloadSpec::Ping];
    let build = || {
        let mut spec = ClusterSpec::new(cfg(), 1, fleet.clone(), 4, 3, tiny_params(), 21);
        spec.plan = FaultPlan {
            churn_place_fail_p: 0.25,
            churn_boot_stall_p: 0.25,
            host_crash_mask: 0b1000,
            host_crash_at: SimDuration::from_millis(60),
            migration_abort_nth: 1,
            ..FaultPlan::none()
        };
        spec.moves = vec![PlannedMove {
            vm: 0,
            to: 1,
            at: at_ms(40),
        }];
        spec.churn = Some(ChurnSpec {
            arrivals: 8,
            mean_lifetime: SimDuration::from_millis(15),
            ..ChurnSpec::default()
        });
        Cluster::new(spec)
    };
    let serial = build().run_serial();
    assert!(
        serial.liveness.ok(),
        "{:?}\n{}",
        serial.liveness.violations,
        serial.liveness.diagnostics
    );
    assert_eq!(serial.orphans(), 0);
    let c = serial.churn.as_ref().unwrap();
    assert!(c.admitted > 0, "fault diet admitted nothing: {c:?}");
    for threads in [1usize, 4, 8] {
        let par = build().run_parallel(threads);
        assert_eq!(
            serial.digest(),
            par.digest(),
            "serial vs {threads}-worker parallel digests diverged"
        );
    }
}
