//! Multi-host cell tests: placement, live migration (state carried,
//! redirection resuming on the target), host-fault injection, and the
//! serial-vs-parallel / traced-vs-untraced byte-identity gates.

use es2_core::EventPathConfig;
use es2_sim::{FaultPlan, SimDuration, SimTime};
use es2_testbed::experiments::{hostile_plan, RunSpec};
use es2_testbed::{Cluster, ClusterSpec, Params, PlannedMove, Topology, WorkloadSpec};
use es2_workloads::NetperfSpec;

fn tiny_params() -> Params {
    Params {
        warmup: SimDuration::from_millis(20),
        measure: SimDuration::from_millis(100),
        ..Params::default()
    }
}

fn cfg() -> EventPathConfig {
    EventPathConfig::pi_h_r(es2_core::HybridParams::TCP_QUOTA)
}

fn tcp() -> WorkloadSpec {
    WorkloadSpec::Netperf(NetperfSpec::tcp_send(1024))
}

fn at_ms(ms: u64) -> SimTime {
    SimTime::ZERO + SimDuration::from_millis(ms)
}

/// A 1-host cell with no moves and no faults is the standalone sharded
/// machine, byte for byte — enrolling a machine into a cluster must not
/// perturb a run that never migrates (the no-neighbor-regression gate).
#[test]
fn one_host_cell_matches_standalone_run() {
    let params = tiny_params();
    let fleet = vec![tcp(), WorkloadSpec::Ping];
    let spec = ClusterSpec::new(cfg(), 1, fleet, 1, 4, params, 42);
    let cell = Cluster::new(spec).run_serial();
    assert!(cell.liveness.ok(), "{}", cell.liveness.diagnostics);

    let standalone = RunSpec {
        cfg: cfg(),
        topo: Topology {
            num_vms: 2,
            vcpus_per_vm: 1,
        },
        spec: tcp(),
        params,
        seed: 42,
        faults: FaultPlan::none(),
        fill: WorkloadSpec::Ping,
    }
    .sharded_with(1)
    .run();
    assert_eq!(
        format!("{:?}", cell.per_host[0].result),
        format!("{standalone:?}"),
        "cluster enrollment changed a never-migrating run"
    );
}

/// Best-fit admission packs tightly, rejects overflow, and the run
/// completes with full liveness over the partial fleet.
#[test]
fn admission_rejects_overflow_and_runs_clean() {
    let fleet = vec![tcp(), WorkloadSpec::Ping, tcp()];
    let spec = ClusterSpec::new(cfg(), 1, fleet, 2, 1, tiny_params(), 7);
    let c = Cluster::new(spec);
    assert_eq!(c.placement(), &[Some(0), Some(1), None]);
    let r = c.run_serial();
    assert_eq!((r.admitted, r.rejected), (2, 1));
    assert!((r.packing_density() - 1.0).abs() < 1e-9);
    assert_eq!(r.final_host, vec![Some(0), Some(1), None]);
    assert!(r.liveness.ok(), "{}", r.liveness.diagnostics);
}

/// Scheduling a move for a VM that admission rejected is a plan bug and
/// must fail loudly at construction, not corrupt the run.
#[test]
#[should_panic(expected = "rejected")]
fn moving_a_rejected_vm_panics_at_construction() {
    let fleet = vec![tcp(), tcp(), tcp()];
    let mut spec = ClusterSpec::new(cfg(), 1, fleet, 2, 1, tiny_params(), 7);
    spec.moves = vec![PlannedMove {
        vm: 2,
        to: 0,
        at: at_ms(50),
    }];
    let _ = Cluster::new(spec);
}

/// The tentpole's core claim: a live migration carries the VM's rings,
/// scheduler state, and interrupt machinery to the target, where the
/// workload keeps running and ES2 redirection resumes against the
/// *target's* online/offline lists. In-flight MSIs that chased the VM
/// are re-raised over the reliable path (the retarget ledger).
#[test]
fn migration_preserves_state_and_redirection_resumes_on_target() {
    let mut spec = ClusterSpec::new(cfg(), 2, vec![tcp(), tcp(), tcp()], 2, 2, tiny_params(), 11);
    // VMs 0 and 1 pack onto host 0; VM 2 keeps host 1 busy so the moved
    // VM faces real scheduling contention (and thus redirection) there.
    spec.moves = vec![PlannedMove {
        vm: 0,
        to: 1,
        at: at_ms(60),
    }];
    // MSI delay keeps device interrupts in flight at the pause instant,
    // exercising the stale-MSI retarget path deterministically.
    spec.plan = FaultPlan {
        msi_delay_p: 0.5,
        msi_delay: SimDuration::from_micros(150),
        ..FaultPlan::none()
    };
    let c = Cluster::new(spec);
    assert_eq!(c.placement(), &[Some(0), Some(0), Some(1)]);
    let r = c.run_serial();

    assert!(r.liveness.ok(), "{}", r.liveness.diagnostics);
    assert_eq!((r.ledger.out, r.ledger.resumed, r.ledger.aborts), (1, 1, 0));
    assert_eq!(r.final_host, vec![Some(1), Some(0), Some(1)]);
    assert_eq!(r.ledger.blackout_ns.len(), 1);
    let blackout = r.ledger.blackout_ns[0];
    assert!(
        blackout >= 150_000,
        "blackout shorter than its cost floor: {blackout}ns"
    );

    // The moved VM made real progress on the target: measured RX latency
    // samples exist there, and the redirection engine worked from the
    // target's own scheduler feed.
    let target = &r.per_host[1].result;
    assert!(
        target.rx_p99_us_per_vm[0] > 0,
        "no measured RX traffic on the target after the move"
    );
    assert!(
        target.redirections + target.offline_predictions > 0,
        "ES2 redirection never engaged on the target"
    );
    assert!(
        r.ledger.retargets > 0,
        "no stale MSI was retargeted across the move"
    );
}

/// An aborted migration (copy fails mid-flight) rolls the VM back onto
/// the source with everything intact — the abort is invisible except
/// for the blackout it cost.
#[test]
fn aborted_migration_rolls_back_to_source() {
    let mut spec = ClusterSpec::new(cfg(), 1, vec![tcp(), WorkloadSpec::Ping], 2, 2, tiny_params(), 5);
    spec.moves = vec![PlannedMove {
        vm: 0,
        to: 1,
        at: at_ms(50),
    }];
    spec.plan = FaultPlan {
        migration_abort_nth: 1,
        ..FaultPlan::none()
    };
    let r = Cluster::new(spec).run_serial();
    assert!(r.liveness.ok(), "{}", r.liveness.diagnostics);
    assert_eq!((r.ledger.out, r.ledger.aborts, r.ledger.resumed), (0, 1, 1));
    assert_eq!(r.final_host[0], Some(0), "abort must leave the VM on the source");
    // The rollback still cost a blackout window.
    assert_eq!(r.ledger.blackout_ns.len(), 1);
}

/// A VM can chain migrations A→B→C once each move is spaced past the
/// worst-case blackout; every hop re-runs the full pause/copy/resume
/// machinery against fresh host state.
#[test]
fn double_migration_chains_across_three_hosts() {
    let mut spec = ClusterSpec::new(cfg(), 1, vec![tcp(), WorkloadSpec::Ping], 3, 2, tiny_params(), 13);
    spec.moves = vec![
        PlannedMove {
            vm: 0,
            to: 1,
            at: at_ms(40),
        },
        PlannedMove {
            vm: 0,
            to: 2,
            at: at_ms(80),
        },
    ];
    let r = Cluster::new(spec).run_serial();
    assert!(r.liveness.ok(), "{}", r.liveness.diagnostics);
    assert_eq!((r.ledger.out, r.ledger.resumed), (2, 2));
    assert_eq!(r.final_host[0], Some(2));
    assert_eq!(r.ledger.blackout_ns.len(), 2);
    // The last hop's host measured real traffic for the twice-moved VM.
    assert!(r.per_host[2].result.rx_p99_us_per_vm[0] > 0);
}

/// Migrating a VM whose TX queue sits in quarantine (hostile-guest ring
/// corruption, reset pending) carries the quarantine ledger and the
/// pending reset across: the DEVICE_NEEDS_RESET analog fires on the
/// *target*, which then resumes service.
#[test]
fn migrate_while_quarantined_carries_reset_to_target() {
    let mut params = tiny_params();
    // Stretch the reset delay so the quarantine (first kicks, µs scale)
    // is still pending when the move lands at 5 ms.
    params.quarantine_reset_delay = SimDuration::from_millis(20);
    let mut spec = ClusterSpec::new(cfg(), 1, vec![WorkloadSpec::Ping, tcp()], 2, 2, params, 3);
    spec.plan = FaultPlan {
        ring_corrupt_at_kick: 5,
        ..hostile_plan(1)
    };
    spec.moves = vec![PlannedMove {
        vm: 1,
        to: 1,
        at: at_ms(5),
    }];
    let r = Cluster::new(spec).run_serial();
    assert!(r.liveness.ok(), "{}", r.liveness.diagnostics);
    assert_eq!(r.final_host[1], Some(1));
    assert_eq!(r.ledger.resumed, 1);
    // The quarantine ledger travels with the VM: the corruption happened
    // on the source, but the carried counters — and the re-armed reset —
    // surface on the target.
    let src = &r.per_host[0].result;
    let dst = &r.per_host[1].result;
    assert_eq!(src.quarantines_total, 0, "quarantine ledger left behind on the source");
    assert!(dst.quarantines_total >= 1, "corruption never quarantined");
    assert!(
        dst.queue_resets_total >= 1,
        "the pending reset did not fire on the target"
    );
}

/// Migrating a vCPU whose posted-interrupt hardware already degraded
/// (PI unavailable mid-run) keeps the emulated delivery path working on
/// the target — mode accounting travels with the VM.
#[test]
fn migrate_pi_degraded_vm_keeps_emulated_path() {
    let mut spec = ClusterSpec::new(cfg(), 2, vec![tcp(), tcp()], 2, 2, tiny_params(), 17);
    spec.plan = FaultPlan {
        pi_unavailable_mask: 0b1,
        pi_fail_after: SimDuration::from_millis(30),
        ..FaultPlan::none()
    };
    spec.moves = vec![PlannedMove {
        vm: 0,
        to: 1,
        at: at_ms(60),
    }];
    let r = Cluster::new(spec).run_serial();
    assert!(r.liveness.ok(), "{}", r.liveness.diagnostics);
    assert_eq!(r.final_host[0], Some(1));
    let t = r.per_host[1].result.modes.totals();
    assert!(
        t.emulated > 0,
        "PI-degraded VM stopped delivering after the move (no emulated injections on target)"
    );
    assert!(t.degradations > 0, "degradation ledger did not travel");
}

/// A host crash evacuates every resident VM to the least-loaded
/// surviving host via cold restart; the cell ends with all victims
/// relocated and alive.
#[test]
fn host_crash_evacuates_victims_to_survivor() {
    let mut spec = ClusterSpec::new(cfg(), 1, vec![tcp(), WorkloadSpec::Ping], 2, 2, tiny_params(), 23);
    spec.plan = FaultPlan {
        host_crash_mask: 0b1,
        host_crash_at: SimDuration::from_millis(40),
        ..FaultPlan::none()
    };
    let c = Cluster::new(spec);
    assert_eq!(c.placement(), &[Some(0), Some(0)]);
    let r = c.run_serial();
    assert!(r.liveness.ok(), "{}", r.liveness.diagnostics);
    assert!(r.per_host[0].crashed.is_some());
    assert!(r.per_host[1].crashed.is_none());
    assert_eq!(r.ledger.restarts, 2);
    assert_eq!(r.final_host, vec![Some(1), Some(1)]);
    // The survivor measured real post-evacuation traffic.
    assert!(r.per_host[1].result.rx_p99_us_per_vm[0] > 0);
}

/// The source host crashing *during* the copy phase does not lose the
/// migrating VM: the snapshot left at pause time, so the VM resumes on
/// the target while the source's other resident is cold-restarted.
#[test]
fn source_crash_during_copy_vm_survives_on_target() {
    let mut spec = ClusterSpec::new(cfg(), 1, vec![tcp(), WorkloadSpec::Ping], 2, 2, tiny_params(), 29);
    spec.moves = vec![PlannedMove {
        vm: 0,
        to: 1,
        at: at_ms(50),
    }];
    // Crash 50 µs after the pause — inside the copy window (blackout
    // floor is pause+copy+resume ≈ 150 µs).
    spec.plan = FaultPlan {
        host_crash_mask: 0b1,
        host_crash_at: SimDuration::from_micros(50_050),
        ..FaultPlan::none()
    };
    let r = Cluster::new(spec).run_serial();
    assert!(r.liveness.ok(), "{}", r.liveness.diagnostics);
    assert_eq!(r.ledger.out, 1);
    assert_eq!(r.ledger.resumed, 1, "snapshot died with the source");
    assert_eq!(r.final_host[0], Some(1), "migrating VM lost to the crash");
    assert_eq!(r.ledger.restarts, 1, "co-resident VM not evacuated");
    assert_eq!(r.final_host[1], Some(1));
}

/// Serial oracle vs windowed-parallel executor: byte-identical digests
/// across seeds, host counts, and worker counts on a clean cell with a
/// live migration in flight.
#[test]
fn serial_vs_parallel_identity_with_migration() {
    for seed in [1u64, 2] {
        for hosts in [2u32, 3] {
            let mk = || {
                let mut spec = ClusterSpec::new(
                    cfg(),
                    1,
                    vec![tcp(), WorkloadSpec::Ping, tcp()],
                    hosts,
                    3,
                    tiny_params(),
                    seed,
                );
                spec.moves = vec![PlannedMove {
                    vm: 0,
                    to: hosts - 1,
                    at: at_ms(55),
                }];
                Cluster::new(spec)
            };
            let oracle = mk().run_serial().digest();
            for threads in [2usize, 4] {
                let par = mk().run_parallel(threads).digest();
                assert_eq!(
                    oracle, par,
                    "divergence at seed={seed} hosts={hosts} threads={threads}"
                );
            }
        }
    }
}

/// Identity holds under the full host-fault family too: a crash (with
/// evacuation) plus an aborted migration must replay byte-identically
/// in parallel — the crash filter is timestamp-pure.
#[test]
fn serial_vs_parallel_identity_under_host_faults() {
    let mk = || {
        let mut spec = ClusterSpec::new(
            cfg(),
            1,
            vec![tcp(), WorkloadSpec::Ping, tcp(), WorkloadSpec::Ping],
            3,
            2,
            tiny_params(),
            31,
        );
        spec.plan = FaultPlan {
            host_crash_mask: 0b10,
            host_crash_at: SimDuration::from_millis(70),
            migration_abort_nth: 2,
            ..FaultPlan::none()
        };
        spec.moves = vec![
            PlannedMove {
                vm: 0,
                to: 2,
                at: at_ms(40),
            },
            PlannedMove {
                vm: 1,
                to: 2,
                at: at_ms(45),
            },
        ];
        Cluster::new(spec)
    };
    let oracle = mk().run_serial();
    assert!(oracle.per_host[1].crashed.is_some());
    assert_eq!(oracle.ledger.aborts, 1);
    let oracle = oracle.digest();
    for threads in [2usize, 3] {
        assert_eq!(
            oracle,
            mk().run_parallel(threads).digest(),
            "fault-plan divergence at threads={threads}"
        );
    }
}

/// The migration span family is observational only: a traced cell run
/// (flight recorder on) produces the identical digest to an untraced
/// one, serial or parallel.
#[test]
fn traced_cell_run_is_byte_identical_to_untraced() {
    let mk = |trace: bool| {
        let mut params = tiny_params();
        params.trace = trace;
        params.trace_events = 256;
        let mut spec =
            ClusterSpec::new(cfg(), 1, vec![tcp(), WorkloadSpec::Ping], 2, 2, params, 19);
        spec.moves = vec![PlannedMove {
            vm: 0,
            to: 1,
            at: at_ms(60),
        }];
        Cluster::new(spec)
    };
    let untraced = mk(false).run_serial().digest();
    let traced = mk(true).run_serial().digest();
    assert_eq!(untraced, traced, "tracing perturbed the simulation");
    assert_eq!(
        untraced,
        mk(true).run_parallel(2).digest(),
        "traced parallel run diverged"
    );
}
