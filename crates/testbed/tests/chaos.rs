//! Chaos suite: seeded fault plans across the paper's workload shapes.
//!
//! Every test drives the full machine under an active [`FaultPlan`] and
//! asserts *bounded degradation*: the run stays live (liveness checker
//! clean), recovery machinery demonstrably fires, results are bitwise
//! reproducible (same seed, any `ES2_THREADS`), and a VM losing
//! posted-interrupt hardware degrades gracefully — alone.

use es2_core::EventPathConfig;
use es2_sim::{FaultPlan, SimDuration};
use es2_testbed::experiments::{self, chaos_plan, RunSpec};
use es2_testbed::{Machine, Params, RunResult, Topology, WorkloadSpec};
use es2_workloads::NetperfSpec;

fn fast() -> Params {
    Params::fast_test()
}

fn tcp_send() -> WorkloadSpec {
    WorkloadSpec::Netperf(NetperfSpec::tcp_send(1024))
}

/// Run one faulted machine with the liveness checker; panics on any
/// invariant violation.
fn run_checked(
    cfg: EventPathConfig,
    topo: Topology,
    spec: WorkloadSpec,
    seed: u64,
    plan: FaultPlan,
) -> RunResult {
    let (r, report) = Machine::new_faulted(cfg, topo, spec, fast(), seed, plan).run_checked();
    report.assert_ok();
    r
}

/// The fields that must be bitwise identical for two runs to count as
/// "the same result".
fn fingerprint(r: &RunResult) -> (u64, u64, u64, u64, u64, u64, u64) {
    (
        r.events_simulated,
        r.goodput_gbps.to_bits(),
        r.kicks_total,
        r.rx_interrupts_total,
        r.fault_stats.total(),
        r.watchdog_rekicks + r.watchdog_reraises + r.guest_rtos,
        r.modes.totals().posted + r.modes.totals().emulated,
    )
}

#[test]
fn acceptance_plan_stays_live_across_workload_shapes() {
    // The acceptance sweep: kick loss + worker stalls + 1 % packet loss +
    // PI-unavailable on VM 0, over the paper's workload shapes.
    let plan = chaos_plan();
    let shapes: Vec<(EventPathConfig, Topology, WorkloadSpec)> = vec![
        (EventPathConfig::pi(), Topology::micro(), tcp_send()),
        (
            EventPathConfig::pi_h(4),
            Topology::micro(),
            WorkloadSpec::Netperf(NetperfSpec::udp_send(256)),
        ),
        (
            EventPathConfig::baseline(),
            Topology::micro(),
            WorkloadSpec::Netperf(NetperfSpec::tcp_receive(1024)),
        ),
        (
            EventPathConfig::pi_h_r(4),
            Topology::multiplexed(),
            WorkloadSpec::Memcached,
        ),
    ];
    for (cfg, topo, spec) in shapes {
        let r = run_checked(cfg, topo, spec, 11, plan);
        assert!(
            r.fault_stats.total() > 0,
            "{} {spec:?}: chaos plan injected nothing",
            cfg.label()
        );
        assert!(
            r.goodput_gbps > 0.0 || r.ops_per_sec > 0.0,
            "{} {spec:?}: no forward progress under faults: {r:?}",
            cfg.label()
        );
    }
}

#[test]
fn faulted_sweep_is_identical_at_any_thread_count() {
    let plan = chaos_plan();
    let specs: Vec<RunSpec> = (0..6)
        .map(|i| {
            RunSpec {
                cfg: EventPathConfig::pi_h(4),
                topo: Topology::micro(),
                spec: tcp_send(),
                params: fast(),
                seed: 100 + i,
                faults: FaultPlan::none(),
                fill: WorkloadSpec::Idle,
            }
            .with_faults(plan)
        })
        .collect();

    es2_sim::exec::set_threads(Some(1));
    let serial = experiments::run_specs(&specs);
    es2_sim::exec::set_threads(None);
    let parallel = experiments::run_specs(&specs);

    for (s, p) in serial.iter().zip(&parallel) {
        assert_eq!(fingerprint(s), fingerprint(p), "parallel diverged");
        assert_eq!(s.fault_stats, p.fault_stats);
        assert_eq!(s.modes, p.modes);
    }
}

#[test]
fn same_seed_reproduces_the_same_faulted_run() {
    let plan = chaos_plan();
    let a = run_checked(EventPathConfig::pi(), Topology::micro(), tcp_send(), 42, plan);
    let b = run_checked(EventPathConfig::pi(), Topology::micro(), tcp_send(), 42, plan);
    assert_eq!(fingerprint(&a), fingerprint(&b));
    assert_eq!(a.fault_stats, b.fault_stats);
    assert_eq!(a.modes, b.modes);

    // A different seed must draw a different fault schedule.
    let c = run_checked(EventPathConfig::pi(), Topology::micro(), tcp_send(), 43, plan);
    assert_ne!(fingerprint(&a), fingerprint(&c), "seed had no effect");
}

#[test]
fn empty_plan_is_bit_identical_to_the_unfaulted_constructor() {
    // Clean-path identity at system level: embedding the fault layer with
    // the empty plan must not move a single event.
    let a = Machine::new(
        EventPathConfig::pi_h_r(4),
        Topology::micro(),
        tcp_send(),
        fast(),
        7,
    )
    .run();
    let b = run_checked(
        EventPathConfig::pi_h_r(4),
        Topology::micro(),
        tcp_send(),
        7,
        FaultPlan::none(),
    );
    assert_eq!(fingerprint(&a), fingerprint(&b));
    assert_eq!(a.fault_stats.total(), 0);
    assert_eq!(b.fault_stats.total(), 0);
    assert_eq!(a.exits.windowed_total(), b.exits.windowed_total());
}

#[test]
fn watchdog_recovers_dropped_kicks() {
    // Pure kick loss, aggressive rate: without the watchdog the TX ring
    // eventually strands (kick lost while the handler is idle and notify
    // is re-enabled) and goodput collapses to zero.
    let plan = FaultPlan {
        kick_drop_p: 0.3,
        ..FaultPlan::none()
    };
    let r = run_checked(EventPathConfig::pi(), Topology::micro(), tcp_send(), 21, plan);
    assert!(r.fault_stats.kicks_dropped > 0, "no kicks dropped: {r:?}");
    assert!(r.watchdog_rekicks > 0, "watchdog never re-kicked: {r:?}");
    assert!(r.goodput_gbps > 0.0, "kick loss killed the run: {r:?}");
}

#[test]
fn guest_tcp_rto_restores_liveness_under_packet_loss() {
    let plan = FaultPlan {
        pkt_drop_p: 0.02,
        ..FaultPlan::none()
    };
    let r = run_checked(EventPathConfig::pi(), Topology::micro(), tcp_send(), 33, plan);
    assert!(r.fault_stats.pkts_dropped > 0, "no packets dropped: {r:?}");
    assert!(r.guest_rtos > 0, "guest RTO never fired: {r:?}");
    assert!(r.goodput_gbps > 0.0, "packet loss killed the run: {r:?}");
}

#[test]
fn pi_degradation_is_isolated_to_the_masked_vm() {
    // Multiplexed PI run; only VM 0 loses posted-interrupt hardware.
    let topo = Topology::multiplexed();
    let plan = FaultPlan {
        pi_unavailable_mask: 0b1,
        pi_fail_after: SimDuration::from_millis(100),
        ..FaultPlan::none()
    };
    let r = run_checked(
        EventPathConfig::pi(),
        topo,
        WorkloadSpec::Netperf(NetperfSpec::tcp_send(1024).with_threads(4)),
        5,
        plan,
    );
    assert_eq!(
        r.fault_stats.pi_degradations,
        topo.vcpus_per_vm as u64,
        "every VM 0 vCPU should degrade exactly once: {:?}",
        r.fault_stats
    );
    assert_eq!(
        r.modes.vms_with_emulated_deliveries(),
        vec![0],
        "emulated-path deliveries leaked beyond VM 0: {:?}",
        r.modes
    );
    let vm0 = r.modes.vm(0);
    assert!(vm0.emulated > 0, "VM 0 never used the emulated path: {vm0:?}");
    assert!(vm0.posted > 0, "VM 0 should have posted before failing: {vm0:?}");
    assert_eq!(vm0.degradations, topo.vcpus_per_vm as u64);
    for vm in 1..topo.num_vms as usize {
        let c = r.modes.vm(vm);
        assert_eq!(c.emulated, 0, "vm{vm} degraded without being masked: {c:?}");
        assert_eq!(c.degradations, 0);
        assert!(c.posted > 0, "vm{vm} saw no deliveries at all: {c:?}");
    }
    assert!(r.goodput_gbps > 0.0, "degradation killed the run: {r:?}");
}

#[test]
fn degradation_is_bounded_under_the_acceptance_plan() {
    // The faulted run must retain a usable fraction of clean goodput:
    // graceful degradation, not collapse.
    let cfg = EventPathConfig::pi_h(4);
    let clean = run_checked(cfg, Topology::micro(), tcp_send(), 9, FaultPlan::none());
    let faulted = run_checked(cfg, Topology::micro(), tcp_send(), 9, chaos_plan());
    assert!(clean.goodput_gbps > 0.0);
    assert!(
        faulted.goodput_gbps > 0.25 * clean.goodput_gbps,
        "degradation unbounded: clean {} Gb/s vs faulted {} Gb/s (faults: {:?})",
        clean.goodput_gbps,
        faulted.goodput_gbps,
        faulted.fault_stats
    );
}
