//! Lane-parallel execution identity: for any seed, fault plan, lane
//! count, and tracing mode, running the sharded machine's lanes with
//! the windowed parallel executor must produce results bitwise
//! identical to the serial oracle — and a one-lane sharded machine must
//! be bitwise identical to the legacy unsharded [`Machine`].
//!
//! Results are compared through their full `Debug` rendering: every
//! field of [`RunResult`] (including f64s, which Debug prints with
//! round-trip precision, per-VM vectors, fault/backpressure ledgers,
//! and the flight-recorder report) participates in the equality.

use es2_sim::{FaultPlan, SimDuration};
use es2_testbed::experiments::{self, RunSpec};
use es2_testbed::{Machine, Params, RunResult, Topology, WorkloadSpec};
use es2_workloads::NetperfSpec;

fn tiny_params() -> Params {
    Params {
        warmup: SimDuration::from_millis(20),
        measure: SimDuration::from_millis(100),
        ..Params::default()
    }
}

fn digest(r: &RunResult) -> String {
    format!("{r:?}")
}

/// The hostile-bench shape: multiplexed topology, victim on VM 0 and a
/// (possibly hostile) netperf sender on VM 1.
fn multiplexed_spec(params: Params, seed: u64, faults: FaultPlan) -> RunSpec {
    RunSpec {
        cfg: es2_core::EventPathConfig::pi_h_r(es2_core::HybridParams::TCP_QUOTA),
        topo: Topology::multiplexed(),
        spec: WorkloadSpec::Netperf(NetperfSpec::tcp_send(1024)),
        params,
        seed,
        faults,
        fill: WorkloadSpec::Netperf(NetperfSpec::tcp_send(1024)),
    }
}

#[test]
fn one_lane_is_the_legacy_machine() {
    let params = tiny_params();
    for seed in [1u64, 7, 42] {
        for plan in [FaultPlan::none(), experiments::chaos_plan()] {
            let spec = multiplexed_spec(params, seed, plan);
            let mut specs = vec![spec.fill; spec.topo.num_vms as usize];
            specs[0] = spec.spec;
            let legacy = Machine::with_specs_faulted(
                spec.cfg, spec.topo, specs, spec.params, spec.seed, spec.faults,
            )
            .run();
            let sharded = spec.sharded_with(1).run();
            assert_eq!(
                digest(&legacy),
                digest(&sharded),
                "1-lane sharded run diverged from legacy machine (seed {seed})"
            );
        }
    }
}

#[test]
fn lane_parallel_matches_serial_oracle_clean_and_chaos() {
    let params = tiny_params();
    for seed in [3u64, 11, 2026] {
        for plan in [FaultPlan::none(), experiments::chaos_plan()] {
            let spec = multiplexed_spec(params, seed, plan);
            for lanes in [2usize, 4] {
                let serial = spec.sharded_with(lanes).run_serial();
                for threads in [2usize, 4, 8] {
                    let par = spec.sharded_with(lanes).run_parallel(threads);
                    assert_eq!(
                        digest(&serial),
                        digest(&par),
                        "lane-parallel diverged (seed {seed}, {lanes} lanes, {threads} threads)"
                    );
                }
            }
        }
    }
}

#[test]
fn lane_parallel_matches_serial_oracle_hostile() {
    let params = tiny_params();
    for seed in [5u64, 99] {
        let spec = multiplexed_spec(params, seed, experiments::hostile_plan(1));
        for lanes in [2usize, 4] {
            let serial = spec.sharded_with(lanes).run_serial();
            let par = spec.sharded_with(lanes).run_parallel(lanes);
            assert_eq!(
                digest(&serial),
                digest(&par),
                "hostile lane-parallel diverged (seed {seed}, {lanes} lanes)"
            );
        }
    }
}

#[test]
fn lane_parallel_matches_serial_oracle_traced() {
    let mut params = tiny_params();
    params.trace = true;
    params.trace_events = 4096;
    for seed in [8u64, 21] {
        let spec = multiplexed_spec(params, seed, experiments::chaos_plan());
        for lanes in [2usize, 4] {
            let serial = spec.sharded_with(lanes).run_serial();
            let par = spec.sharded_with(lanes).run_parallel(lanes);
            assert_eq!(
                digest(&serial),
                digest(&par),
                "traced lane-parallel diverged (seed {seed}, {lanes} lanes)"
            );
        }
    }
}

#[test]
fn tracing_does_not_perturb_lane_parallel_results() {
    // Flight-recorder compatibility: a traced lane-parallel run must
    // agree with the untraced run on every simulation-determined field
    // (the trace only *observes*). Compare digests with the spans
    // report stripped from the traced run.
    let params = tiny_params();
    let mut traced_params = params;
    traced_params.trace = true;
    traced_params.trace_events = 4096;
    let seed = 17;
    for lanes in [2usize, 4] {
        let plain = multiplexed_spec(params, seed, experiments::chaos_plan())
            .sharded_with(lanes)
            .run_parallel(lanes);
        let mut traced = multiplexed_spec(traced_params, seed, experiments::chaos_plan())
            .sharded_with(lanes)
            .run_parallel(lanes);
        assert!(traced.spans.is_some(), "traced run produced no span report");
        traced.spans = None;
        assert!(plain.spans.is_none());
        assert_eq!(
            digest(&plain),
            digest(&traced),
            "tracing perturbed the lane-parallel simulation ({lanes} lanes)"
        );
    }
}

#[test]
fn scale_cell_identity_and_timed_path() {
    // The all-active scale shape at a small VM count: serial oracle,
    // windowed parallel, and the timed per-lane path (the in_run
    // measurement) must all merge to identical results.
    let spec = experiments::scale_active_spec(16, tiny_params(), 4242);
    for lanes in [1usize, 2, 4, 8] {
        let serial = spec.sharded_with(lanes).run_serial();
        let par = spec.sharded_with(lanes).run_parallel(lanes.max(2));
        let (timed, lane_secs) = spec.sharded_with(lanes).run_lanes_timed();
        assert_eq!(lane_secs.len(), lanes);
        assert_eq!(
            digest(&serial),
            digest(&par),
            "scale-cell lane-parallel diverged ({lanes} lanes)"
        );
        assert_eq!(
            digest(&serial),
            digest(&timed),
            "scale-cell timed path diverged ({lanes} lanes)"
        );
    }
}

#[test]
fn telemetry_merge_is_executor_invariant() {
    // The windowed telemetry report merges across lane shards exactly
    // like the rest of RunResult: at every lane count the parallel
    // executor's merged report must be bitwise identical to the serial
    // oracle's (window grids, per-worker maxima, and the annotation
    // stream included). 8 VMs so an 8-lane split is a real partition.
    let mut params = tiny_params();
    params.telemetry = true;
    for seed in [13u64, 404] {
        let mut spec = experiments::scale_active_spec(8, params, seed);
        spec.faults = experiments::chaos_plan();
        for lanes in [1usize, 4, 8] {
            let serial = spec.sharded_with(lanes).run_serial();
            assert!(
                serial.telemetry.is_some(),
                "telemetry-enabled run produced no report ({lanes} lanes)"
            );
            for threads in [2usize, 4, 8] {
                let par = spec.sharded_with(lanes).run_parallel(threads);
                assert_eq!(
                    digest(&serial),
                    digest(&par),
                    "telemetry lane merge diverged (seed {seed}, {lanes} lanes, {threads} threads)"
                );
            }
        }
    }
}

#[test]
fn telemetry_does_not_perturb_lane_parallel_results() {
    // Same contract as the flight recorder: the telemetry hooks only
    // observe. A telemetry-enabled lane-parallel run must agree with
    // the plain run on every simulation-determined field once the
    // report itself is stripped.
    let params = tiny_params();
    let mut instrumented_params = params;
    instrumented_params.telemetry = true;
    let seed = 23;
    for lanes in [2usize, 4] {
        let mut spec = experiments::scale_active_spec(8, params, seed);
        spec.faults = experiments::chaos_plan();
        let plain = spec.sharded_with(lanes).run_parallel(lanes);
        let mut inst_spec = experiments::scale_active_spec(8, instrumented_params, seed);
        inst_spec.faults = experiments::chaos_plan();
        let mut instrumented = inst_spec.sharded_with(lanes).run_parallel(lanes);
        assert!(instrumented.telemetry.is_some());
        instrumented.telemetry = None;
        assert!(plain.telemetry.is_none());
        assert_eq!(
            digest(&plain),
            digest(&instrumented),
            "telemetry hooks perturbed the lane-parallel simulation ({lanes} lanes)"
        );
    }
}

#[test]
fn run_checked_merges_lane_liveness() {
    let spec = experiments::scale_active_spec(8, tiny_params(), 7);
    let (_, live) = spec.sharded_with(4).run_checked();
    assert!(live.ok(), "liveness violations: {:?}", live.violations);
}

#[test]
fn lane_count_caps_at_vm_count() {
    let spec = multiplexed_spec(tiny_params(), 1, FaultPlan::none());
    let m = spec.sharded_with(64);
    assert_eq!(m.num_lanes(), 4, "lanes must clamp to the VM count");
}
