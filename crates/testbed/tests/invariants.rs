//! Conservation laws and accounting invariants of the full machine.
//!
//! These hold for *every* configuration and workload — they check that the
//! simulation's bookkeeping is self-consistent, independent of whether the
//! numbers match the paper.

use es2_core::EventPathConfig;
use es2_hypervisor::ExitReason;
use es2_sim::SimDuration;
use es2_testbed::{experiments, Params, Topology, WorkloadSpec};
use es2_workloads::NetperfSpec;

fn fast() -> Params {
    let mut p = Params::fast_test();
    p.warmup = SimDuration::from_millis(100);
    p.measure = SimDuration::from_millis(400);
    p
}

fn all_cases() -> Vec<(EventPathConfig, Topology, WorkloadSpec)> {
    let mut v = Vec::new();
    for cfg in EventPathConfig::all_four(4) {
        v.push((
            cfg,
            Topology::micro(),
            WorkloadSpec::Netperf(NetperfSpec::tcp_send(1024)),
        ));
        v.push((
            cfg,
            Topology::micro(),
            WorkloadSpec::Netperf(NetperfSpec::udp_send(256)),
        ));
        v.push((
            cfg,
            Topology::micro(),
            WorkloadSpec::Netperf(NetperfSpec::tcp_receive(1024)),
        ));
        v.push((cfg, Topology::multiplexed(), WorkloadSpec::Memcached));
    }
    v
}

#[test]
fn tig_is_a_percentage_everywhere() {
    for (cfg, topo, spec) in all_cases() {
        let r = experiments::run_one(cfg, topo, spec, fast(), 5);
        assert!(
            (0.0..=100.0 + 1e-9).contains(&r.tig_percent),
            "{} {:?}: TIG {}",
            cfg.label(),
            spec,
            r.tig_percent
        );
    }
}

#[test]
fn pi_configurations_never_take_interrupt_exits() {
    for (cfg, topo, spec) in all_cases() {
        if !cfg.use_pi {
            continue;
        }
        let r = experiments::run_one(cfg, topo, spec, fast(), 5);
        assert_eq!(
            r.exits.total(ExitReason::ExternalInterrupt),
            0,
            "{} {:?}",
            cfg.label(),
            spec
        );
        assert_eq!(
            r.exits.total(ExitReason::ApicAccess),
            0,
            "{} {:?}",
            cfg.label(),
            spec
        );
    }
}

#[test]
fn every_kick_decision_becomes_exactly_one_io_exit() {
    // For the sending micro workloads no kick bypasses the exit path
    // (the delayed-ACK flush shortcut only exists on the receive side),
    // so the virtqueue's kick ledger and the vCPU's exit ledger must
    // agree exactly.
    for cfg in EventPathConfig::all_four(4) {
        for spec in [
            WorkloadSpec::Netperf(NetperfSpec::tcp_send(1024)),
            WorkloadSpec::Netperf(NetperfSpec::udp_send(256)),
        ] {
            let r = experiments::run_one(cfg, Topology::micro(), spec, fast(), 5);
            let io_exits = r.exits.total(ExitReason::IoInstruction);
            // A kick decided in the run's final microseconds may not have
            // reached its exit before the simulation stops: allow the
            // boundary straggler.
            assert!(
                r.kicks_total.abs_diff(io_exits) <= 2,
                "{} {:?}: exits {} vs kicks {}",
                cfg.label(),
                spec,
                io_exits,
                r.kicks_total
            );
        }
    }
}

#[test]
fn baseline_never_posts_interrupts() {
    let r = experiments::run_one(
        EventPathConfig::baseline(),
        Topology::micro(),
        WorkloadSpec::Netperf(NetperfSpec::tcp_send(1024)),
        fast(),
        5,
    );
    // Emulated path: every delivered interrupt pays delivery/EOI machinery,
    // so the interrupt exits must be present whenever interrupts flowed.
    if r.rx_interrupts_total > 50 {
        assert!(r.exits.total(ExitReason::ApicAccess) > 0, "{r:?}");
    }
}

#[test]
fn no_redirection_without_the_redirect_feature() {
    for cfg in [
        EventPathConfig::baseline(),
        EventPathConfig::pi(),
        EventPathConfig::pi_h(4),
    ] {
        let r = experiments::run_one(
            cfg,
            Topology::multiplexed(),
            WorkloadSpec::Memcached,
            fast(),
            5,
        );
        assert_eq!(r.redirections, 0, "{}", cfg.label());
        assert_eq!(r.offline_predictions, 0, "{}", cfg.label());
        assert_eq!(r.migrated_irqs, 0, "{}", cfg.label());
    }
}

#[test]
fn sriov_data_path_never_kicks() {
    let mut p = fast();
    p.device = es2_testbed::params::DeviceKind::AssignedVf;
    for cfg in [EventPathConfig::baseline(), EventPathConfig::pi()] {
        let r = experiments::run_one(
            cfg,
            Topology::micro(),
            WorkloadSpec::Netperf(NetperfSpec::tcp_send(1024)),
            p,
            5,
        );
        assert_eq!(
            r.exits.total(ExitReason::IoInstruction),
            0,
            "{}: SR-IOV bypasses the kick",
            cfg.label()
        );
        assert!(r.goodput_gbps > 0.1, "{}: traffic still flows", cfg.label());
    }
}

#[test]
fn sriov_legacy_pays_interrupt_exits_but_vtd_pi_does_not() {
    let mut p = fast();
    p.device = es2_testbed::params::DeviceKind::AssignedVf;
    let spec = WorkloadSpec::Netperf(NetperfSpec::tcp_send(1024));
    let legacy = experiments::run_one(EventPathConfig::baseline(), Topology::micro(), spec, p, 5);
    let vtd = experiments::run_one(EventPathConfig::pi(), Topology::micro(), spec, p, 5);
    assert!(
        legacy.exits.total(ExitReason::ApicAccess) > 0,
        "legacy assignment still injects through the hypervisor"
    );
    assert_eq!(vtd.total_exit_rate(), 0.0, "VT-d PI is fully exit-less");
    assert!(vtd.tig_percent > 99.0);
}

#[test]
fn measurement_window_excludes_warmup() {
    // Doubling the warm-up must not change windowed *rates* materially
    // (steady state), even though lifetime totals grow.
    let spec = WorkloadSpec::Netperf(NetperfSpec::udp_send(256));
    let mut a = fast();
    a.warmup = SimDuration::from_millis(100);
    let mut b = fast();
    b.warmup = SimDuration::from_millis(300);
    let ra = experiments::run_one(EventPathConfig::baseline(), Topology::micro(), spec, a, 5);
    let rb = experiments::run_one(EventPathConfig::baseline(), Topology::micro(), spec, b, 5);
    let rel = (ra.total_exit_rate() - rb.total_exit_rate()).abs() / ra.total_exit_rate();
    assert!(
        rel < 0.25,
        "steady-state rates: {} vs {}",
        ra.total_exit_rate(),
        rb.total_exit_rate()
    );
}
