//! Integration tests asserting the *shapes* of the paper's results.
//!
//! These drive the full stack — DES engine, CFS scheduler, virtio rings,
//! vhost worker, exit machinery, ES2 policies, workload generators — and
//! check the qualitative claims of each table/figure: who wins, what gets
//! eliminated, where the orderings fall. Absolute rates are checked only
//! within wide calibration bands (this is a simulator, not the authors'
//! testbed).

use es2_core::{EventPathConfig, HybridParams};
use es2_hypervisor::ExitReason;
use es2_sim::SimDuration;
use es2_testbed::{experiments, Params, Topology, WorkloadSpec};
use es2_workloads::NetperfSpec;

fn fast() -> Params {
    let mut p = Params::fast_test();
    p.warmup = SimDuration::from_millis(100);
    p.measure = SimDuration::from_millis(400);
    p
}

const SEED: u64 = 20170814;

// ---------------------------------------------------------------------
// Table I
// ---------------------------------------------------------------------

#[test]
fn table1_pi_eliminates_interrupt_exits_but_not_io_exits() {
    let runs = experiments::table1(fast(), SEED);
    let (base, pi) = (&runs[0], &runs[1]);

    // Baseline: all three I/O event-path exit classes present.
    assert!(
        base.rate(ExitReason::ExternalInterrupt) > 1_000.0,
        "{base:?}"
    );
    assert!(base.rate(ExitReason::ApicAccess) > 1_000.0);
    assert!(base.rate(ExitReason::IoInstruction) > 10_000.0);

    // "Interrupt delivery incurs less VM exits than interrupt completion."
    assert!(base.rate(ExitReason::ExternalInterrupt) < base.rate(ExitReason::ApicAccess));

    // PI: interrupt-related exits eliminated; I/O-request exits remain the
    // (now only) major source.
    assert_eq!(pi.rate(ExitReason::ExternalInterrupt), 0.0);
    assert_eq!(pi.rate(ExitReason::ApicAccess), 0.0);
    assert!(pi.rate(ExitReason::IoInstruction) > 10_000.0);

    // I/O requests are a major share (paper: 53.6%) of baseline exits.
    let io_share = base.rate(ExitReason::IoInstruction) / base.total_exit_rate();
    assert!(io_share > 0.35, "io share {io_share}");
}

// ---------------------------------------------------------------------
// Fig. 4 — quota selection
// ---------------------------------------------------------------------

#[test]
fn fig4_udp_polling_knee_at_the_papers_quota() {
    let p = fast();
    let baseline = experiments::run_one(
        EventPathConfig::pi(),
        Topology::micro(),
        WorkloadSpec::Netperf(NetperfSpec::udp_send(256)),
        p,
        SEED,
    );
    let q8 = experiments::fig4_point(true, 256, HybridParams::UDP_QUOTA, p, SEED);
    let q64 = experiments::fig4_point(true, 256, 64, p, SEED);

    // At the paper's quota the I/O-instruction exits all but disappear...
    assert!(
        q8.io_exit_rate() < baseline.io_exit_rate() / 4.0,
        "quota 8: {} vs stock {}",
        q8.io_exit_rate(),
        baseline.io_exit_rate()
    );
    // ...while a large quota behaves like stock notification.
    assert!(q64.io_exit_rate() > q8.io_exit_rate());
    // And polling does not cost throughput at the selected quota.
    assert!(q8.goodput_gbps >= baseline.goodput_gbps * 0.9);
}

#[test]
fn fig4_smaller_quota_means_fewer_exits_but_more_switching() {
    let p = fast();
    let q2 = experiments::fig4_point(true, 256, 2, p, SEED);
    let q8 = experiments::fig4_point(true, 256, 8, p, SEED);
    assert!(q2.io_exit_rate() <= q8.io_exit_rate() + 500.0);
    // "a value too low may lead to frequent switches": throughput pays.
    assert!(q2.goodput_gbps < q8.goodput_gbps);
}

// ---------------------------------------------------------------------
// Fig. 5 — TIG
// ---------------------------------------------------------------------

#[test]
fn fig5_tig_improves_monotonically_for_tcp_send() {
    let runs = experiments::fig5(true, false, fast(), SEED);
    let tig: Vec<f64> = runs.iter().map(|r| r.tig_percent).collect();
    assert!(tig[0] < tig[1], "PI must beat Baseline: {tig:?}");
    assert!(tig[1] < tig[2], "PI+H must beat PI: {tig:?}");
    assert!(tig[2] > 93.0, "PI+H keeps TIG high: {tig:?}");
    assert!(tig[0] < 90.0, "Baseline pays for its exits: {tig:?}");
}

#[test]
fn fig5_udp_send_reaches_near_full_tig_under_pih() {
    let runs = experiments::fig5(true, true, fast(), SEED);
    let pih = &runs[2];
    assert!(
        pih.tig_percent > 98.0,
        "paper: 99.7% — got {}",
        pih.tig_percent
    );
    assert!(
        pih.total_exit_rate() < 10_000.0,
        "short-window residual: {}",
        pih.total_exit_rate()
    );
}

#[test]
fn fig5_receive_interrupt_exits_dominate_baseline() {
    let runs = experiments::fig5(false, false, fast(), SEED);
    let base = &runs[0];
    let int_exits = base.rate(ExitReason::ExternalInterrupt) + base.rate(ExitReason::ApicAccess);
    assert!(
        int_exits > base.rate(ExitReason::IoInstruction),
        "receive is interrupt-dominated: {base:?}"
    );
    // PI eliminates them.
    assert_eq!(runs[1].rate(ExitReason::ApicAccess), 0.0);
}

// ---------------------------------------------------------------------
// Fig. 6 / Fig. 8 — throughput orderings
// ---------------------------------------------------------------------

#[test]
fn fig6a_full_es2_roughly_doubles_send_throughput() {
    let runs = experiments::fig6(true, 1024, fast(), SEED);
    let g: Vec<f64> = runs.iter().map(|r| r.goodput_gbps).collect();
    assert!(g[3] > 1.6 * g[0], "paper: ~2x — got {g:?}");
    assert!(g[3] >= g[2], "redirection must not hurt: {g:?}");
}

#[test]
fn fig8a_memcached_full_es2_beats_baseline_strongly() {
    let runs = experiments::fig8_memcached(fast(), SEED);
    let ops: Vec<f64> = runs.iter().map(|r| r.ops_per_sec).collect();
    assert!(ops[3] > 1.4 * ops[0], "paper: ~1.8x — got {ops:?}");
}

// ---------------------------------------------------------------------
// Fig. 7 — latency
// ---------------------------------------------------------------------

#[test]
fn fig7_redirection_flattens_ping_rtt() {
    let mut p = fast();
    p.measure = SimDuration::from_secs(8);
    let runs = experiments::fig7(p, SEED);
    let base = &runs[0];
    let es2 = &runs[2];
    assert!(base.rtt_series.len() >= 5);
    assert!(
        es2.mean_rtt_ms() < base.mean_rtt_ms() / 2.0,
        "base {} ms vs es2 {} ms",
        base.mean_rtt_ms(),
        es2.mean_rtt_ms()
    );
    assert!(base.max_rtt_ms() > 5.0, "baseline shows scheduling peaks");
}

// ---------------------------------------------------------------------
// Fig. 9 — connection time knee
// ---------------------------------------------------------------------

#[test]
fn fig9_es2_sustains_higher_connection_rates() {
    let mut p = fast();
    p.measure = SimDuration::from_millis(800);
    let sweep = experiments::fig9(&[2200.0], p, SEED);
    let (_, runs) = &sweep[0];
    let base = &runs[0];
    let es2 = &runs[3];
    assert!(
        es2.mean_conn_time_ms < base.mean_conn_time_ms,
        "at 2.2k req/s the baseline is past its knee: base {} vs es2 {}",
        base.mean_conn_time_ms,
        es2.mean_conn_time_ms
    );
}

// ---------------------------------------------------------------------
// Ablations and invariants
// ---------------------------------------------------------------------

#[test]
fn redirection_only_touches_device_vectors() {
    // Full ES2 with ping: every redirected interrupt must be a device
    // vector; timer deliveries never move (the run would crash the guest
    // otherwise — here: accounting mismatch).
    let mut p = fast();
    p.measure = SimDuration::from_secs(4);
    let r = experiments::run_one(
        EventPathConfig::pi_h_r(4),
        Topology::multiplexed(),
        WorkloadSpec::Ping,
        p,
        SEED,
    );
    // Timer interrupts run constantly; if they were routed through the
    // engine they would show up as thousands of redirections.
    assert!(
        r.redirections + r.offline_predictions <= r.rtt_series.len() as u64 + 8,
        "only ping echoes may be redirected: {r:?}"
    );
}

#[test]
fn runs_are_deterministic_per_seed_across_configs() {
    for cfg in EventPathConfig::all_four(4) {
        let spec = WorkloadSpec::Netperf(NetperfSpec::tcp_send(1024));
        let a = experiments::run_one(cfg, Topology::micro(), spec, fast(), 99);
        let b = experiments::run_one(cfg, Topology::micro(), spec, fast(), 99);
        assert_eq!(a.goodput_gbps, b.goodput_gbps, "{}", cfg.label());
        assert_eq!(a.exits.windowed_total(), b.exits.windowed_total());
        assert_eq!(a.kicks_total, b.kicks_total);
    }
}

#[test]
fn different_seeds_change_details_but_not_orderings() {
    let spec = WorkloadSpec::Netperf(NetperfSpec::tcp_send(1024));
    for seed in [1u64, 2, 3] {
        let base = experiments::run_one(
            EventPathConfig::baseline(),
            Topology::micro(),
            spec,
            fast(),
            seed,
        );
        let es2 = experiments::run_one(
            EventPathConfig::pi_h_r(4),
            Topology::micro(),
            spec,
            fast(),
            seed,
        );
        assert!(
            es2.total_exit_rate() < base.total_exit_rate() / 2.0,
            "seed {seed}: {} vs {}",
            es2.total_exit_rate(),
            base.total_exit_rate()
        );
        assert!(es2.tig_percent > base.tig_percent, "seed {seed}");
    }
}

#[test]
fn offline_head_prediction_beats_tail_prediction() {
    use es2_core::{OfflinePolicy, TargetPolicy};
    let mut p = fast();
    p.measure = SimDuration::from_secs(8);
    let mut head = p;
    head.redirect_policies = Some((TargetPolicy::LeastLoadedSticky, OfflinePolicy::Head));
    let mut tail = p;
    tail.redirect_policies = Some((TargetPolicy::LeastLoadedSticky, OfflinePolicy::Tail));
    let rh = experiments::run_one(
        EventPathConfig::pi_h_r(4),
        Topology::multiplexed(),
        WorkloadSpec::Ping,
        head,
        SEED,
    );
    let rt = experiments::run_one(
        EventPathConfig::pi_h_r(4),
        Topology::multiplexed(),
        WorkloadSpec::Ping,
        tail,
        SEED,
    );
    // Head = "offline longest ⇒ runs soonest" should not lose to the
    // pessimal tail pick (allow equality: with few offline events both
    // may see only online hits).
    assert!(
        rh.mean_rtt_ms() <= rt.mean_rtt_ms() + 0.5,
        "head {} vs tail {}",
        rh.mean_rtt_ms(),
        rt.mean_rtt_ms()
    );
}

#[test]
fn udp_receive_overload_drops_at_the_host_backlog() {
    let r = experiments::run_one(
        EventPathConfig::baseline(),
        Topology::micro(),
        WorkloadSpec::Netperf(NetperfSpec::udp_receive(1024)),
        fast(),
        SEED,
    );
    assert!(r.backlog_drops > 0, "the source must overwhelm the path");
    assert!(r.goodput_gbps > 0.5, "but plenty still gets through");
}
