//! Interrupt-controller models for the ES2 reproduction.
//!
//! The virtual I/O event path of the paper hinges on *where interrupt state
//! lives* and *which operations on it are privileged*:
//!
//! * [`lapic::EmulatedLapic`] — the per-vCPU software-emulated Local-APIC of
//!   stock KVM (§II-A/B): IRR/ISR registers, priority arbitration, and an
//!   EOI that the hypervisor must emulate (an `APIC Access` VM exit).
//! * [`pi::PiDescriptor`] + [`pi::VApicPage`] — the hardware Posted-Interrupt
//!   machinery (§III): interrupts are *posted* into the PI descriptor's PIR,
//!   a notification IPI makes the CPU synchronize PIR into the virtual IRR of
//!   the vAPIC page, and delivery/EOI proceed without VM exits.
//! * [`msi::MsiMessage`] — Message-Signaled-Interrupt routing, the form in
//!   which KVM's `kvm_set_msi_irq` sees a virtual device interrupt and the
//!   point where ES2 intercepts and redirects (§V-C).
//! * [`vectors`] — Linux's interrupt-vector allocation map, which ES2 uses
//!   to distinguish redirectable device vectors from per-vCPU vectors such
//!   as the timer.
//! * [`regs::IrrIsr256`] — the underlying 256-bit pending/in-service
//!   register file shared by both APIC models.
//! * [`corr::VectorCorrMap`] — observational correlation-ID sidecar that
//!   pairs pending vectors with flight-recorder spans.

pub mod corr;
pub mod lapic;
pub mod msi;
pub mod pi;
pub mod regs;
pub mod vectors;

pub use corr::VectorCorrMap;
pub use lapic::EmulatedLapic;
pub use msi::{DeliveryMode, DestMode, MsiMessage};
pub use pi::{PiDescriptor, VApicPage};
pub use regs::IrrIsr256;
pub use vectors::{Vector, VectorClass};
