//! Posted-Interrupt machinery (§III, Fig. 2).
//!
//! The five steps of PI processing map onto this module as follows:
//!
//! 1. the hypervisor *posts* the interrupt in the target vCPU's
//!    [`PiDescriptor`] ([`PiDescriptor::post`] sets the PIR bit and
//!    test-and-sets the ON — "outstanding notification" — bit),
//! 2. if ON was newly set and the vCPU is running in guest mode, it sends
//!    the special notification IPI (the caller's job; the descriptor reports
//!    whether one is needed),
//! 3. the notification IPI makes the *hardware* synchronize PIR into the
//!    vAPIC page's virtual IRR ([`VApicPage::sync_from`]),
//! 4. the vAPIC page delivers the highest pending vector to the running
//!    vCPU without a VM exit ([`VApicPage::ack`]),
//! 5. the guest's EOI write updates the virtual registers, again without a
//!    VM exit ([`VApicPage::eoi`]).
//!
//! When the target vCPU is *not* in guest mode, no notification is sent;
//! pending PIR bits are synchronized at the next VM entry — which is exactly
//! the vCPU-scheduling latency that ES2's intelligent interrupt redirection
//! attacks (§III-B).

use crate::regs::IrrIsr256;
use crate::vectors::Vector;

/// The 64-byte posted-interrupt descriptor (PIR + control bits).
#[derive(Clone, Debug, Default)]
pub struct PiDescriptor {
    pir: IrrIsr256,
    /// Outstanding-notification bit: a notification IPI is in flight or the
    /// PIR has bits the CPU has not yet synchronized.
    on: bool,
    /// Suppress-notification bit (SN): set by the hypervisor while the vCPU
    /// is not in guest mode so that posting does not fire useless IPIs.
    sn: bool,
    posted_total: u64,
    notifications_total: u64,
}

/// What the poster must do after posting an interrupt.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PostOutcome {
    /// ON was newly set and SN is clear: send the notification IPI to the
    /// core running the vCPU.
    SendNotification,
    /// A notification is already outstanding, or SN suppresses it: nothing
    /// to send; the pending bit will be picked up by the in-flight
    /// notification or at the next VM entry.
    NoNotification,
}

impl PiDescriptor {
    /// A cleared descriptor (SN set: vCPU starts outside guest mode).
    pub fn new() -> Self {
        PiDescriptor {
            sn: true,
            ..Default::default()
        }
    }

    /// Post `vector` (step 1 of Fig. 2). Returns whether the poster must
    /// send a notification IPI.
    pub fn post(&mut self, vector: Vector) -> PostOutcome {
        self.pir.set(vector);
        self.posted_total += 1;
        if self.on || self.sn {
            PostOutcome::NoNotification
        } else {
            self.on = true;
            self.notifications_total += 1;
            PostOutcome::SendNotification
        }
    }

    /// The hypervisor sets SN when the vCPU leaves guest mode (vmexit or
    /// deschedule) and clears it right before VM entry.
    pub fn set_suppress(&mut self, sn: bool) {
        self.sn = sn;
    }

    /// Suppress-notification bit state.
    pub fn suppressed(&self) -> bool {
        self.sn
    }

    /// True if any interrupt is posted but not yet synchronized.
    pub fn has_pending(&self) -> bool {
        !self.pir.is_empty()
    }

    /// Number of posted-but-unsynchronized vectors.
    pub fn pending_count(&self) -> u32 {
        self.pir.count()
    }

    /// Withdraw a posted-but-unsynchronized vector (ES2's re-redirection:
    /// the interrupt moves to a vCPU that came online sooner). Returns
    /// `false` if the vector was already synchronized/delivered — the
    /// caller must not double-deliver.
    pub fn rescind(&mut self, vector: Vector) -> bool {
        self.pir.clear(vector)
    }

    /// Hardware PIR→vIRR synchronization (steps 3 / VM-entry sync): drains
    /// the PIR into the vAPIC page and clears ON. Returns how many vectors
    /// moved.
    pub fn sync_into(&mut self, vapic: &mut VApicPage) -> u32 {
        self.on = false;
        self.pir.drain_into(&mut vapic.virr)
    }

    /// Drain every posted-but-unsynchronized vector out of the PIR,
    /// clearing ON. Used by the PI→emulated degradation path: when
    /// posted-interrupt hardware becomes unavailable mid-run, pending PIR
    /// state must migrate into the emulated LAPIC's IRR so nothing is
    /// lost. Ascending vector order.
    pub fn take_pending(&mut self) -> Vec<Vector> {
        let vs: Vec<Vector> = self.pir.iter_set().collect();
        self.pir.clear_all();
        self.on = false;
        vs
    }

    /// Lifetime count of posted interrupts.
    pub fn posted_total(&self) -> u64 {
        self.posted_total
    }

    /// Lifetime count of notification IPIs requested.
    pub fn notifications_total(&self) -> u64 {
        self.notifications_total
    }
}

/// The hardware virtual-APIC page: virtual IRR/ISR with exit-less EOI.
#[derive(Clone, Debug, Default)]
pub struct VApicPage {
    virr: IrrIsr256,
    visr: IrrIsr256,
    delivered_total: u64,
    eoi_total: u64,
}

impl VApicPage {
    /// A cleared vAPIC page.
    pub fn new() -> Self {
        Self::default()
    }

    /// Synchronize from a descriptor (convenience wrapper; see
    /// [`PiDescriptor::sync_into`]).
    pub fn sync_from(&mut self, desc: &mut PiDescriptor) -> u32 {
        desc.sync_into(self)
    }

    /// Virtual-interrupt delivery (step 4): deliver the highest pending
    /// vector without a VM exit. Same arbitration rule as the physical
    /// APIC.
    pub fn ack(&mut self) -> Option<Vector> {
        let v = self.virr.highest()?;
        let in_service_class = self.visr.highest().map_or(0, |x| x & 0xf0);
        if (v & 0xf0) <= in_service_class {
            return None;
        }
        self.virr.clear(v);
        self.visr.set(v);
        self.delivered_total += 1;
        Some(v)
    }

    /// Exit-less EOI (step 5). Returns the retired vector and whether more
    /// interrupts are immediately deliverable.
    pub fn eoi(&mut self) -> (Option<Vector>, bool) {
        let retired = self.visr.highest();
        if let Some(v) = retired {
            self.visr.clear(v);
            self.eoi_total += 1;
        }
        (retired, self.virr.highest().is_some())
    }

    /// True if a vector is pending in the virtual IRR.
    pub fn has_pending(&self) -> bool {
        !self.virr.is_empty()
    }

    /// Number of pending vectors.
    pub fn pending_count(&self) -> u32 {
        self.virr.count()
    }

    /// Drain pending-but-undelivered vectors from the virtual IRR
    /// (PI→emulated degradation). In-service vectors are *not* touched:
    /// a handler that entered service exit-lessly retires through the
    /// vAPIC ISR even after the fallback, which is what prevents its
    /// re-delivery. Ascending vector order.
    pub fn take_pending(&mut self) -> Vec<Vector> {
        let vs: Vec<Vector> = self.virr.iter_set().collect();
        self.virr.clear_all();
        vs
    }

    /// True if a handler is in service.
    pub fn in_service(&self) -> bool {
        !self.visr.is_empty()
    }

    /// Lifetime exit-less deliveries.
    pub fn delivered_total(&self) -> u64 {
        self.delivered_total
    }

    /// Lifetime exit-less EOIs.
    pub fn eoi_total(&self) -> u64 {
        self.eoi_total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn post_to_running_vcpu_requests_notification_once() {
        let mut d = PiDescriptor::new();
        d.set_suppress(false); // vCPU in guest mode
        assert_eq!(d.post(0x41), PostOutcome::SendNotification);
        // Second post while notification outstanding: coalesced.
        assert_eq!(d.post(0x42), PostOutcome::NoNotification);
        assert_eq!(d.pending_count(), 2);
        assert_eq!(d.notifications_total(), 1);
    }

    #[test]
    fn post_to_descheduled_vcpu_is_suppressed() {
        let mut d = PiDescriptor::new(); // SN set by default
        assert_eq!(d.post(0x41), PostOutcome::NoNotification);
        assert!(d.has_pending());
        assert_eq!(d.notifications_total(), 0);
    }

    #[test]
    fn sync_moves_pir_to_virr_and_clears_on() {
        let mut d = PiDescriptor::new();
        d.set_suppress(false);
        d.post(0x41);
        d.post(0x91);
        let mut v = VApicPage::new();
        assert_eq!(v.sync_from(&mut d), 2);
        assert!(!d.has_pending());
        assert_eq!(v.pending_count(), 2);
        // After sync, a new post requests a fresh notification.
        assert_eq!(d.post(0x43), PostOutcome::SendNotification);
    }

    #[test]
    fn exitless_delivery_and_eoi() {
        let mut d = PiDescriptor::new();
        d.set_suppress(false);
        d.post(0x41);
        let mut v = VApicPage::new();
        v.sync_from(&mut d);
        assert_eq!(v.ack(), Some(0x41));
        assert!(v.in_service());
        let (retired, more) = v.eoi();
        assert_eq!(retired, Some(0x41));
        assert!(!more);
        assert_eq!(v.delivered_total(), 1);
        assert_eq!(v.eoi_total(), 1);
    }

    #[test]
    fn priority_arbitration_matches_physical_apic() {
        let mut v = VApicPage::new();
        let mut d = PiDescriptor::new();
        d.post(0x45);
        d.post(0x95);
        v.sync_from(&mut d);
        assert_eq!(v.ack(), Some(0x95));
        assert_eq!(v.ack(), None, "same/lower class masked");
        let (_, more) = v.eoi();
        assert!(more);
        assert_eq!(v.ack(), Some(0x45));
    }

    #[test]
    fn duplicate_posts_coalesce_in_pir() {
        let mut d = PiDescriptor::new();
        d.post(0x41);
        d.post(0x41);
        assert_eq!(d.pending_count(), 1);
        assert_eq!(d.posted_total(), 2);
    }

    proptest! {
        /// No interrupt is ever lost across arbitrary interleavings of
        /// post / suppress-toggle / sync: everything posted is eventually
        /// deliverable from the vAPIC page.
        #[test]
        fn prop_no_lost_interrupts(
            ops in proptest::collection::vec((0x31u8..0xeb, 0u8..3), 1..100)
        ) {
            let mut d = PiDescriptor::new();
            let mut v = VApicPage::new();
            let mut posted = std::collections::BTreeSet::new();
            let mut handled = std::collections::BTreeSet::new();
            for (vec, op) in ops {
                match op {
                    0 => {
                        d.post(vec);
                        posted.insert(vec);
                    }
                    1 => {
                        d.set_suppress(!d.suppressed());
                    }
                    _ => {
                        v.sync_from(&mut d);
                        while let Some(x) = v.ack() {
                            handled.insert(x);
                            v.eoi();
                        }
                    }
                }
            }
            // Final drain.
            v.sync_from(&mut d);
            while let Some(x) = v.ack() {
                handled.insert(x);
                v.eoi();
            }
            prop_assert_eq!(handled, posted);
            prop_assert!(!d.has_pending());
            prop_assert!(!v.has_pending());
        }
    }
}
