//! 256-bit interrupt register file (IRR/ISR/PIR layout).
//!
//! The Local-APIC's Interrupt Request Register, In-Service Register and the
//! posted-interrupt descriptor's PIR are all 256-bit bitmaps indexed by
//! vector number, stored as four 64-bit words exactly as in hardware.

/// A 256-bit, vector-indexed bitmap.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IrrIsr256 {
    words: [u64; 4],
}

impl IrrIsr256 {
    /// All-clear register.
    pub const fn new() -> Self {
        IrrIsr256 { words: [0; 4] }
    }

    /// Set the bit for `vector`. Returns `true` if it was newly set.
    #[inline]
    pub fn set(&mut self, vector: u8) -> bool {
        let (w, b) = (vector as usize / 64, vector as usize % 64);
        let mask = 1u64 << b;
        let was = self.words[w] & mask != 0;
        self.words[w] |= mask;
        !was
    }

    /// Clear the bit for `vector`. Returns `true` if it was set.
    #[inline]
    pub fn clear(&mut self, vector: u8) -> bool {
        let (w, b) = (vector as usize / 64, vector as usize % 64);
        let mask = 1u64 << b;
        let was = self.words[w] & mask != 0;
        self.words[w] &= !mask;
        was
    }

    /// Test the bit for `vector`.
    #[inline]
    pub fn get(&self, vector: u8) -> bool {
        let (w, b) = (vector as usize / 64, vector as usize % 64);
        self.words[w] & (1u64 << b) != 0
    }

    /// The highest-numbered set vector, if any.
    ///
    /// APIC arbitration services the highest vector first (higher vector =
    /// higher priority class).
    #[inline]
    pub fn highest(&self) -> Option<u8> {
        for w in (0..4).rev() {
            if self.words[w] != 0 {
                let b = 63 - self.words[w].leading_zeros() as usize;
                return Some((w * 64 + b) as u8);
            }
        }
        None
    }

    /// True if no bit is set.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Number of set bits.
    #[inline]
    pub fn count(&self) -> u32 {
        self.words.iter().map(|w| w.count_ones()).sum()
    }

    /// OR another register into this one, clearing the source — the
    /// hardware PIR→vIRR synchronization step of posted-interrupt
    /// processing (atomically drains PIR into the virtual IRR).
    #[inline]
    pub fn drain_into(&mut self, dst: &mut IrrIsr256) -> u32 {
        let mut moved = 0;
        for w in 0..4 {
            moved += self.words[w].count_ones();
            dst.words[w] |= self.words[w];
            self.words[w] = 0;
        }
        moved
    }

    /// Clear everything.
    pub fn clear_all(&mut self) {
        self.words = [0; 4];
    }

    /// Iterate set vectors in ascending order.
    pub fn iter_set(&self) -> impl Iterator<Item = u8> + '_ {
        (0u16..256).filter(|&v| self.get(v as u8)).map(|v| v as u8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn set_get_clear() {
        let mut r = IrrIsr256::new();
        assert!(r.set(0x41));
        assert!(!r.set(0x41), "second set reports already-set");
        assert!(r.get(0x41));
        assert!(r.clear(0x41));
        assert!(!r.clear(0x41), "second clear reports already-clear");
        assert!(!r.get(0x41));
    }

    #[test]
    fn highest_prefers_high_vectors() {
        let mut r = IrrIsr256::new();
        assert_eq!(r.highest(), None);
        r.set(0x21);
        r.set(0xef);
        r.set(0x80);
        assert_eq!(r.highest(), Some(0xef));
        r.clear(0xef);
        assert_eq!(r.highest(), Some(0x80));
    }

    #[test]
    fn boundary_vectors() {
        let mut r = IrrIsr256::new();
        r.set(0);
        r.set(63);
        r.set(64);
        r.set(255);
        assert_eq!(r.count(), 4);
        assert_eq!(r.highest(), Some(255));
        assert!(r.get(63) && r.get(64));
    }

    #[test]
    fn drain_moves_and_clears() {
        let mut pir = IrrIsr256::new();
        let mut virr = IrrIsr256::new();
        pir.set(0x30);
        pir.set(0xa0);
        virr.set(0x30); // overlap: OR semantics
        let moved = pir.drain_into(&mut virr);
        assert_eq!(moved, 2);
        assert!(pir.is_empty());
        assert!(virr.get(0x30) && virr.get(0xa0));
        assert_eq!(virr.count(), 2);
    }

    #[test]
    fn iter_set_ascending() {
        let mut r = IrrIsr256::new();
        for v in [5u8, 200, 64, 63] {
            r.set(v);
        }
        let got: Vec<u8> = r.iter_set().collect();
        assert_eq!(got, vec![5, 63, 64, 200]);
    }

    proptest! {
        /// count/highest/is_empty agree with a model HashSet.
        #[test]
        fn prop_matches_set_model(ops in proptest::collection::vec((any::<u8>(), any::<bool>()), 0..200)) {
            let mut r = IrrIsr256::new();
            let mut model = std::collections::BTreeSet::new();
            for (v, set) in ops {
                if set {
                    r.set(v);
                    model.insert(v);
                } else {
                    r.clear(v);
                    model.remove(&v);
                }
            }
            prop_assert_eq!(r.count() as usize, model.len());
            prop_assert_eq!(r.highest(), model.iter().next_back().copied());
            prop_assert_eq!(r.is_empty(), model.is_empty());
            let got: Vec<u8> = r.iter_set().collect();
            let want: Vec<u8> = model.into_iter().collect();
            prop_assert_eq!(got, want);
        }
    }
}
