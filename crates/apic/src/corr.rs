//! Correlation-ID sidecar for in-flight interrupt vectors.
//!
//! The flight recorder (`es2_metrics::span`) follows each virtual
//! interrupt from MSI raise to EOI by a correlation ID. Between raise and
//! injection the interrupt lives as a pending bit in the target vCPU's
//! IRR/PIR — state too compact to carry an ID — so this map rides
//! alongside the interrupt controller and pairs each pending vector with
//! the span that raised it.
//!
//! The map is strictly observational: the delivery path never reads it,
//! so populating it (tracing on) cannot perturb simulation results. With
//! tracing off it stays empty and every operation is a scan of an empty
//! vector.

use crate::vectors::Vector;

/// Vector → correlation-ID map for one vCPU. A correlation ID of 0 means
/// "none"; at most one ID is held per vector, matching the IRR's
/// coalescing of repeated raises.
#[derive(Clone, Debug, Default)]
pub struct VectorCorrMap {
    entries: Vec<(Vector, u64)>,
}

impl VectorCorrMap {
    /// An empty map.
    pub fn new() -> Self {
        VectorCorrMap::default()
    }

    /// Associate `corr` with `vector`. Returns the previously held ID
    /// (0 if none); an existing ID is *kept* — the first raise owns the
    /// span, later raises coalesce exactly as they do in the IRR.
    pub fn set(&mut self, vector: Vector, corr: u64) -> u64 {
        if let Some(&(_, existing)) = self.entries.iter().find(|&&(v, _)| v == vector) {
            return existing;
        }
        self.entries.push((vector, corr));
        0
    }

    /// Remove and return the ID for `vector` (0 if none) — called at
    /// injection, when the pending bit turns into a handler activation.
    pub fn take(&mut self, vector: Vector) -> u64 {
        if let Some(i) = self.entries.iter().position(|&(v, _)| v == vector) {
            self.entries.swap_remove(i).1
        } else {
            0
        }
    }

    /// The ID for `vector` without removing it (0 if none).
    pub fn peek(&self, vector: Vector) -> u64 {
        self.entries
            .iter()
            .find(|&&(v, _)| v == vector)
            .map_or(0, |&(_, c)| c)
    }

    /// Whether no vector currently carries an ID.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_take_roundtrip() {
        let mut m = VectorCorrMap::new();
        assert_eq!(m.set(0x42, 7), 0);
        assert_eq!(m.peek(0x42), 7);
        assert_eq!(m.take(0x42), 7);
        assert_eq!(m.take(0x42), 0);
        assert!(m.is_empty());
    }

    #[test]
    fn second_set_coalesces_and_keeps_first() {
        let mut m = VectorCorrMap::new();
        assert_eq!(m.set(0x41, 1), 0);
        assert_eq!(m.set(0x41, 2), 1, "existing span is reported back");
        assert_eq!(m.take(0x41), 1, "first raise owns the span");
    }

    #[test]
    fn vectors_are_independent() {
        let mut m = VectorCorrMap::new();
        m.set(0x41, 1);
        m.set(0x42, 2);
        assert_eq!(m.take(0x42), 2);
        assert_eq!(m.peek(0x41), 1);
    }
}
