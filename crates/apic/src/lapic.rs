//! The software-emulated per-vCPU Local-APIC of stock KVM.
//!
//! §II-A: *"a Local-APIC has a series of registers to maintain the interrupt
//! state, such as Interrupt Request Register (IRR) and End Of Interrupt
//! (EOI) register. The IRR is responsible for recording pending interrupts.
//! When the Local-APIC delivers a pending interrupt to the CPU core, the
//! corresponding bit in the IRR is cleared. [...] Once the handler finishes,
//! it writes the EOI register [...] This action automatically triggers the
//! Local-APIC to deliver the next pending interrupt in the IRR."*
//!
//! This model is the *baseline* interrupt path: because it is software
//! emulated, delivering to a running vCPU requires a kick IPI (an
//! `External Interrupt` VM exit) followed by event injection at VM entry,
//! and every guest EOI write is an `APIC Access` VM exit. Those exits are
//! charged by the hypervisor crate, not here — this type models only the
//! architectural register state.

use crate::regs::IrrIsr256;
use crate::vectors::Vector;

/// Architectural state of one emulated Local-APIC.
#[derive(Clone, Debug, Default)]
pub struct EmulatedLapic {
    irr: IrrIsr256,
    isr: IrrIsr256,
    /// Task Priority Register (class 0–15 in bits 7:4). Guests in this
    /// reproduction leave it at 0 (Linux does not use TPR-based masking on
    /// x86-64), but arbitration honors it.
    tpr: u8,
    delivered_total: u64,
    eoi_total: u64,
}

impl EmulatedLapic {
    /// A reset APIC: no pending or in-service interrupts, TPR 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record `vector` pending in the IRR. Returns `true` if newly pending
    /// (level-triggered duplicates coalesce in hardware exactly like this).
    pub fn set_irr(&mut self, vector: Vector) -> bool {
        self.irr.set(vector)
    }

    /// True if `vector` is pending.
    pub fn irr_contains(&self, vector: Vector) -> bool {
        self.irr.get(vector)
    }

    /// Withdraw a pending vector before delivery (interrupt migration).
    /// Returns `true` if it was pending.
    pub fn clear_irr(&mut self, vector: Vector) -> bool {
        self.irr.clear(vector)
    }

    /// Processor Priority Register: the class the CPU is currently working
    /// at — max of TPR and the highest in-service vector's class.
    pub fn ppr(&self) -> u8 {
        let isr_class = self.isr.highest().map_or(0, |v| v & 0xf0);
        self.tpr.max(isr_class)
    }

    /// The pending vector that would be delivered next, if it out-prioritizes
    /// the PPR (hardware's INTA arbitration rule).
    pub fn next_deliverable(&self) -> Option<Vector> {
        let v = self.irr.highest()?;
        if (v & 0xf0) > self.ppr() {
            Some(v)
        } else {
            None
        }
    }

    /// Deliver the highest-priority pending interrupt: clears its IRR bit
    /// and sets its ISR bit (interrupt acknowledge). Returns the vector, or
    /// `None` if nothing is deliverable at the current priority.
    pub fn ack(&mut self) -> Option<Vector> {
        let v = self.next_deliverable()?;
        self.irr.clear(v);
        self.isr.set(v);
        self.delivered_total += 1;
        Some(v)
    }

    /// Guest EOI write: retire the highest in-service vector. Returns the
    /// retired vector and whether another interrupt is now deliverable
    /// (which in hardware triggers the next INTA cycle immediately).
    pub fn eoi(&mut self) -> (Option<Vector>, bool) {
        let retired = self.isr.highest();
        if let Some(v) = retired {
            self.isr.clear(v);
            self.eoi_total += 1;
        }
        (retired, self.next_deliverable().is_some())
    }

    /// Set the Task Priority Register.
    pub fn set_tpr(&mut self, tpr: u8) {
        self.tpr = tpr;
    }

    /// Number of pending interrupts.
    pub fn pending_count(&self) -> u32 {
        self.irr.count()
    }

    /// True if any interrupt is in service (handler running, EOI not yet
    /// written). ELI-style physical-APIC sharing breaks exactly when a vCPU
    /// is descheduled in this state (§II-C).
    pub fn in_service(&self) -> bool {
        !self.isr.is_empty()
    }

    /// Lifetime count of delivered (acked) interrupts.
    pub fn delivered_total(&self) -> u64 {
        self.delivered_total
    }

    /// Lifetime count of EOI writes.
    pub fn eoi_total(&self) -> u64 {
        self.eoi_total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn deliver_then_eoi_round_trip() {
        let mut apic = EmulatedLapic::new();
        assert!(apic.set_irr(0x41));
        assert_eq!(apic.ack(), Some(0x41));
        assert!(apic.in_service());
        assert!(!apic.irr_contains(0x41));
        let (retired, more) = apic.eoi();
        assert_eq!(retired, Some(0x41));
        assert!(!more);
        assert!(!apic.in_service());
        assert_eq!(apic.delivered_total(), 1);
        assert_eq!(apic.eoi_total(), 1);
    }

    #[test]
    fn duplicate_pending_coalesces() {
        let mut apic = EmulatedLapic::new();
        assert!(apic.set_irr(0x41));
        assert!(!apic.set_irr(0x41));
        assert_eq!(apic.pending_count(), 1);
    }

    #[test]
    fn higher_vector_delivered_first() {
        let mut apic = EmulatedLapic::new();
        apic.set_irr(0x41);
        apic.set_irr(0x91);
        assert_eq!(apic.ack(), Some(0x91));
        // 0x41's class (0x40) does not exceed PPR class (0x90) — masked
        // until EOI.
        assert_eq!(apic.ack(), None);
        let (_, more) = apic.eoi();
        assert!(more, "EOI unmasks the lower-priority pending interrupt");
        assert_eq!(apic.ack(), Some(0x41));
    }

    #[test]
    fn same_class_interrupt_masked_until_eoi() {
        let mut apic = EmulatedLapic::new();
        apic.set_irr(0x45);
        assert_eq!(apic.ack(), Some(0x45));
        apic.set_irr(0x44); // same 0x40 class
        assert_eq!(apic.ack(), None, "same class cannot nest");
        apic.eoi();
        assert_eq!(apic.ack(), Some(0x44));
    }

    #[test]
    fn tpr_masks_low_classes() {
        let mut apic = EmulatedLapic::new();
        apic.set_tpr(0x50);
        apic.set_irr(0x41);
        assert_eq!(apic.ack(), None);
        apic.set_irr(0x61);
        assert_eq!(apic.ack(), Some(0x61));
    }

    #[test]
    fn eoi_with_nothing_in_service_is_spurious() {
        let mut apic = EmulatedLapic::new();
        let (retired, more) = apic.eoi();
        assert_eq!(retired, None);
        assert!(!more);
        assert_eq!(apic.eoi_total(), 0);
    }

    #[test]
    fn nested_higher_priority_interrupt() {
        let mut apic = EmulatedLapic::new();
        apic.set_irr(0x41);
        assert_eq!(apic.ack(), Some(0x41));
        // A higher class arrives while 0x41 is in service: it nests.
        apic.set_irr(0x91);
        assert_eq!(apic.ack(), Some(0x91));
        // EOI retires the *highest* in-service vector first (0x91).
        let (retired, _) = apic.eoi();
        assert_eq!(retired, Some(0x91));
        let (retired, _) = apic.eoi();
        assert_eq!(retired, Some(0x41));
    }

    proptest! {
        /// Every delivered interrupt is eventually retired by exactly one
        /// EOI, and the APIC never loses or duplicates interrupts (model:
        /// multiset of vectors, deduped while pending).
        #[test]
        fn prop_conservation(vectors in proptest::collection::vec(0x31u8..0xeb, 1..60)) {
            let mut apic = EmulatedLapic::new();
            let mut injected = std::collections::BTreeSet::new();
            for &v in &vectors {
                if apic.set_irr(v) {
                    injected.insert(v);
                }
            }
            // Drain: ack everything, EOIing as we go.
            let mut handled = Vec::new();
            while let Some(v) = apic.ack() {
                handled.push(v);
                apic.eoi();
            }
            handled.sort_unstable();
            let want: Vec<u8> = injected.into_iter().collect();
            prop_assert_eq!(handled, want);
            prop_assert!(!apic.in_service());
            prop_assert_eq!(apic.pending_count(), 0);
        }
    }
}
