//! Message-Signaled Interrupts (MSI/MSI-X).
//!
//! §V-C: *"Guest devices in KVM are implemented as standard PCI devices with
//! the Message Signaled Interrupt (MSI) architecture or its extension MSI-X.
//! The destination vCPU ID of a virtual interrupt is specified in the
//! MSI/MSI-X address, determined by the guest's interrupt affinity setting.
//! ES2 does not reprogram the interrupt configuration at the sources [...]
//! Instead, ES2 intercepts MSI/MSI-X type virtual interrupts in a key
//! function called `kvm_set_msi_irq`, and modifies the destination vCPU to
//! the selected target."*
//!
//! The address/data encoding below follows the Intel SDM layout so the
//! router sees exactly the fields real KVM parses.

use crate::vectors::Vector;

/// MSI delivery mode (address/data bits 10:8).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DeliveryMode {
    /// Deliver to the CPU(s) named by the destination field.
    Fixed,
    /// Deliver to the lowest-priority CPU among the destination set —
    /// Linux's default for `apic_flat`/`apic_default` with ≤ 8 CPUs (§V-C),
    /// which is what makes redirection architecturally valid.
    LowestPriority,
}

/// MSI destination mode (address bit 2).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DestMode {
    /// Destination field is a physical APIC ID.
    Physical,
    /// Destination field is a logical mask.
    Logical,
}

/// A decoded MSI/MSI-X message as seen by `kvm_set_msi_irq`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct MsiMessage {
    /// Destination APIC ID (interpreted per `dest_mode`). For the guest's
    /// virtio queues this encodes the interrupt-affinity vCPU.
    pub dest_id: u8,
    /// Physical vs logical addressing.
    pub dest_mode: DestMode,
    /// Fixed vs lowest-priority arbitration.
    pub delivery_mode: DeliveryMode,
    /// The interrupt vector the guest programmed for this queue.
    pub vector: Vector,
}

impl MsiMessage {
    /// MSI address base (upper bits of the 32-bit address dword).
    pub const ADDRESS_BASE: u32 = 0xfee0_0000;

    /// A fixed-mode, physically addressed message — the common shape for a
    /// virtio queue interrupt bound to one vCPU.
    pub fn fixed(dest_id: u8, vector: Vector) -> Self {
        MsiMessage {
            dest_id,
            dest_mode: DestMode::Physical,
            delivery_mode: DeliveryMode::Fixed,
            vector,
        }
    }

    /// A lowest-priority, logically addressed message — what Linux programs
    /// with the `apic_flat` driver (§V-C).
    pub fn lowest_priority(dest_mask: u8, vector: Vector) -> Self {
        MsiMessage {
            dest_id: dest_mask,
            dest_mode: DestMode::Logical,
            delivery_mode: DeliveryMode::LowestPriority,
            vector,
        }
    }

    /// Encode into the architectural (address, data) dword pair.
    pub fn encode(&self) -> (u32, u16) {
        let mut addr = Self::ADDRESS_BASE | ((self.dest_id as u32) << 12);
        if self.dest_mode == DestMode::Logical {
            addr |= 1 << 2;
        }
        if self.delivery_mode == DeliveryMode::LowestPriority {
            addr |= 1 << 3; // redirection hint accompanies lowest-priority
        }
        let mut data = self.vector as u16;
        if self.delivery_mode == DeliveryMode::LowestPriority {
            data |= 0b001 << 8;
        }
        (addr, data)
    }

    /// Decode from the architectural (address, data) pair.
    pub fn decode(addr: u32, data: u16) -> Self {
        let dest_id = ((addr >> 12) & 0xff) as u8;
        let dest_mode = if addr & (1 << 2) != 0 {
            DestMode::Logical
        } else {
            DestMode::Physical
        };
        let delivery_mode = if (data >> 8) & 0b111 == 0b001 {
            DeliveryMode::LowestPriority
        } else {
            DeliveryMode::Fixed
        };
        MsiMessage {
            dest_id,
            dest_mode,
            delivery_mode,
            vector: (data & 0xff) as u8,
        }
    }

    /// Return a copy with the destination replaced — the redirection write
    /// ES2 performs inside `kvm_set_msi_irq`.
    pub fn with_dest(&self, dest_id: u8) -> Self {
        MsiMessage { dest_id, ..*self }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn fixed_message_shape() {
        let m = MsiMessage::fixed(2, 0x41);
        assert_eq!(m.dest_id, 2);
        assert_eq!(m.delivery_mode, DeliveryMode::Fixed);
        assert_eq!(m.dest_mode, DestMode::Physical);
    }

    #[test]
    fn encode_matches_sdm_layout() {
        let (addr, data) = MsiMessage::fixed(3, 0x55).encode();
        assert_eq!(addr & 0xfff0_0000, MsiMessage::ADDRESS_BASE);
        assert_eq!((addr >> 12) & 0xff, 3);
        assert_eq!(addr & (1 << 2), 0, "physical mode");
        assert_eq!(data & 0xff, 0x55);
        assert_eq!((data >> 8) & 0b111, 0, "fixed mode");
    }

    #[test]
    fn lowest_priority_sets_mode_bits() {
        let (addr, data) = MsiMessage::lowest_priority(0b1111, 0x61).encode();
        assert_ne!(addr & (1 << 2), 0, "logical mode");
        assert_ne!(addr & (1 << 3), 0, "redirection hint");
        assert_eq!((data >> 8) & 0b111, 0b001);
    }

    #[test]
    fn redirection_rewrites_only_destination() {
        let m = MsiMessage::lowest_priority(0b0001, 0x41);
        let r = m.with_dest(0b0100);
        assert_eq!(r.dest_id, 0b0100);
        assert_eq!(r.vector, m.vector);
        assert_eq!(r.delivery_mode, m.delivery_mode);
    }

    proptest! {
        /// encode/decode round-trips every field.
        #[test]
        fn prop_encode_decode_roundtrip(
            dest in any::<u8>(),
            vector in any::<u8>(),
            logical in any::<bool>(),
            lowpri in any::<bool>(),
        ) {
            let m = MsiMessage {
                dest_id: dest,
                dest_mode: if logical { DestMode::Logical } else { DestMode::Physical },
                delivery_mode: if lowpri { DeliveryMode::LowestPriority } else { DeliveryMode::Fixed },
                vector,
            };
            let (addr, data) = m.encode();
            prop_assert_eq!(MsiMessage::decode(addr, data), m);
        }
    }
}
