//! Linux x86 interrupt-vector allocation map.
//!
//! §V-C of the paper: *"Linux adopts a strict interrupt vector allocation
//! strategy. By taking advantage of the vector range distribution, ES2 can
//! distinguish device interrupts from the others and perform the correct
//! redirection."* Redirecting a per-vCPU vector (e.g. the local timer) to a
//! different vCPU would crash the guest, so the redirection engine consults
//! [`VectorClass`] before touching an interrupt.
//!
//! The constants mirror `arch/x86/include/asm/irq_vectors.h` of the 4.x
//! kernels the paper used.

/// An x86 interrupt vector number.
pub type Vector = u8;

/// First vector usable by external (device) interrupts; 0x00–0x1f are
/// exceptions.
pub const FIRST_EXTERNAL_VECTOR: Vector = 0x20;
/// IRQ0 (the PIT / legacy timer) lands here under the identity mapping.
pub const ISA_IRQ_VECTOR_BASE: Vector = 0x30;
/// First vector handed out by the dynamic allocator for MSI/MSI-X devices.
pub const FIRST_DEVICE_VECTOR: Vector = 0x31;
/// Local APIC timer.
pub const LOCAL_TIMER_VECTOR: Vector = 0xec;
/// First of the system-reserved high vectors (reschedule/IPIs/…).
pub const FIRST_SYSTEM_VECTOR: Vector = 0xec;
/// Reschedule IPI.
pub const RESCHEDULE_VECTOR: Vector = 0xfd;
/// Function-call IPI.
pub const CALL_FUNCTION_VECTOR: Vector = 0xfb;
/// Spurious interrupt vector.
pub const SPURIOUS_APIC_VECTOR: Vector = 0xff;
/// The posted-interrupt notification vector the host programs (KVM's
/// `POSTED_INTR_VECTOR`, 0xf2 on the kernels in question).
pub const POSTED_INTR_NOTIFICATION_VECTOR: Vector = 0xf2;

/// Classification of a vector per Linux's allocation map.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum VectorClass {
    /// 0x00–0x1f: CPU exceptions; never delivered as external interrupts.
    Exception,
    /// 0x20–0x30: legacy/ISA range (includes the legacy timer IRQ0).
    Legacy,
    /// 0x31–0xeb: dynamically allocated device vectors (MSI/MSI-X). These
    /// are the only vectors ES2 is allowed to redirect.
    Device,
    /// 0xec–0xff: system vectors — local timer, IPIs, spurious. Generated
    /// for a *specific* vCPU; redirecting them is forbidden.
    System,
}

/// Classify a vector.
#[inline]
pub fn classify(v: Vector) -> VectorClass {
    if v < FIRST_EXTERNAL_VECTOR {
        VectorClass::Exception
    } else if v <= ISA_IRQ_VECTOR_BASE {
        VectorClass::Legacy
    } else if v < FIRST_SYSTEM_VECTOR {
        VectorClass::Device
    } else {
        VectorClass::System
    }
}

/// True if ES2 may redirect this vector to a different vCPU (§V-C).
#[inline]
pub fn is_redirectable_device_vector(v: Vector) -> bool {
    classify(v) == VectorClass::Device
}

/// A Linux-style per-VM dynamic vector allocator for MSI/MSI-X devices.
///
/// Hands out device vectors spread across the device range the way
/// `vector_allocation_domain` does, so tests exercising multiple queues get
/// realistic, distinct vectors.
#[derive(Clone, Debug)]
pub struct VectorAllocator {
    next: Vector,
    allocated: Vec<Vector>,
}

impl Default for VectorAllocator {
    fn default() -> Self {
        Self::new()
    }
}

impl VectorAllocator {
    /// A fresh allocator starting at the bottom of the device range.
    pub fn new() -> Self {
        VectorAllocator {
            next: FIRST_DEVICE_VECTOR,
            allocated: Vec::new(),
        }
    }

    /// Allocate the next free device vector, or `None` if exhausted.
    pub fn alloc(&mut self) -> Option<Vector> {
        // Linux allocates vectors stride-16 first to spread priority
        // classes; we keep the simple ascending policy but skip system
        // vectors — distribution details don't affect redirection logic.
        while self.next < FIRST_SYSTEM_VECTOR {
            let v = self.next;
            self.next += 1;
            if !self.allocated.contains(&v) {
                self.allocated.push(v);
                return Some(v);
            }
        }
        None
    }

    /// All vectors handed out so far.
    pub fn allocated(&self) -> &[Vector] {
        &self.allocated
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn well_known_vectors_classify_correctly() {
        assert_eq!(classify(0x0e), VectorClass::Exception); // page fault
        assert_eq!(classify(0x20), VectorClass::Legacy);
        assert_eq!(classify(0x31), VectorClass::Device);
        assert_eq!(classify(0xa5), VectorClass::Device);
        assert_eq!(classify(LOCAL_TIMER_VECTOR), VectorClass::System);
        assert_eq!(classify(RESCHEDULE_VECTOR), VectorClass::System);
        assert_eq!(classify(SPURIOUS_APIC_VECTOR), VectorClass::System);
        assert_eq!(
            classify(POSTED_INTR_NOTIFICATION_VECTOR),
            VectorClass::System
        );
    }

    #[test]
    fn timer_is_not_redirectable() {
        assert!(!is_redirectable_device_vector(LOCAL_TIMER_VECTOR));
        assert!(!is_redirectable_device_vector(RESCHEDULE_VECTOR));
        assert!(is_redirectable_device_vector(0x41));
    }

    #[test]
    fn allocator_returns_distinct_device_vectors() {
        let mut a = VectorAllocator::new();
        let mut seen = std::collections::BTreeSet::new();
        while let Some(v) = a.alloc() {
            assert!(is_redirectable_device_vector(v), "vector {v:#x}");
            assert!(seen.insert(v), "duplicate vector {v:#x}");
        }
        assert_eq!(
            seen.len(),
            (FIRST_SYSTEM_VECTOR - FIRST_DEVICE_VECTOR) as usize
        );
    }

    proptest! {
        /// Every vector falls in exactly one class and the class boundaries
        /// are exhaustive.
        #[test]
        fn prop_classification_total(v in any::<u8>()) {
            let c = classify(v);
            let expected = match v {
                0x00..=0x1f => VectorClass::Exception,
                0x20..=0x30 => VectorClass::Legacy,
                0x31..=0xeb => VectorClass::Device,
                _ => VectorClass::System,
            };
            prop_assert_eq!(c, expected);
        }
    }
}
