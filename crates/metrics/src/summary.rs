//! Streaming summary statistics (Welford's online algorithm).

/// Streaming mean / variance / extrema accumulator.
#[derive(Clone, Copy, Debug, Default)]
pub struct Summary {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// An empty accumulator.
    pub fn new() -> Self {
        Summary {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Add a sample.
    #[inline]
    pub fn add(&mut self, x: f64) {
        self.n += 1;
        let d = x - self.mean;
        self.mean += d / self.n as f64;
        self.m2 += d * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Arithmetic mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 if fewer than 2 samples).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest sample (0 if empty).
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest sample (0 if empty).
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Merge two accumulators (parallel Welford / Chan et al.).
    pub fn merge(&mut self, other: &Summary) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n = self.n + other.n;
        let d = other.mean - self.mean;
        let mean = self.mean + d * other.n as f64 / n as f64;
        let m2 = self.m2 + other.m2 + d * d * self.n as f64 * other.n as f64 / n as f64;
        self.n = n;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_summary_is_benign() {
        let s = Summary::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
    }

    #[test]
    fn known_values() {
        let mut s = Summary::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.add(x);
        }
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert!((s.stddev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn single_sample_has_zero_variance() {
        let mut s = Summary::new();
        s.add(3.5);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.mean(), 3.5);
    }

    proptest! {
        /// Merging two halves equals accumulating the whole.
        #[test]
        fn prop_merge_equals_sequential(
            xs in proptest::collection::vec(-1e6f64..1e6, 1..50),
            ys in proptest::collection::vec(-1e6f64..1e6, 1..50),
        ) {
            let mut a = Summary::new();
            let mut b = Summary::new();
            let mut whole = Summary::new();
            for &x in &xs { a.add(x); whole.add(x); }
            for &y in &ys { b.add(y); whole.add(y); }
            a.merge(&b);
            prop_assert_eq!(a.count(), whole.count());
            prop_assert!((a.mean() - whole.mean()).abs() < 1e-6);
            prop_assert!((a.variance() - whole.variance()).abs() < 1e-3);
            prop_assert_eq!(a.min(), whole.min());
            prop_assert_eq!(a.max(), whole.max());
        }

        /// Mean lies between min and max.
        #[test]
        fn prop_mean_bounded(xs in proptest::collection::vec(-1e9f64..1e9, 1..100)) {
            let mut s = Summary::new();
            for &x in &xs { s.add(x); }
            prop_assert!(s.mean() >= s.min() - 1e-6);
            prop_assert!(s.mean() <= s.max() + 1e-6);
        }
    }
}
