//! Cluster-wide windowed telemetry: fixed-width sim-time windows of
//! per-VM / per-(vm,queue) / per-vhost-worker gauges and rates, an SLO
//! engine with multi-window burn-rate alerts, and a causal annotation
//! stream that names the fault or migration preceding each breach.
//!
//! Determinism contract (same as [`crate::span`]): the recorder consumes
//! only sim-time nanoseconds — never the wall clock, never an RNG — and
//! is strictly observational, so telemetry-enabled runs are byte-identical
//! to disabled runs and the report is a pure function of the run spec.
//! Windows are assigned *at record time* (`window = now_ns / width_ns`);
//! no window-boundary events are ever scheduled, so the event stream of
//! the simulation is untouched.
//!
//! Lane merging: [`TelemetryReport::absorb`] concatenates per-VM rows in
//! lane order (contiguous VM blocks) over the *union* of window indices,
//! zero-filling rows for windows a lane never touched, and re-sorts the
//! annotation stream by `(time, vm, kind, arg)`. Because every gauge is
//! derived from per-VM events that do not depend on the lane partition,
//! the merged report — and the JSON rendered from it — is byte-identical
//! across `ES2_LANES` counts, not just serial-vs-parallel.

use crate::span::SpanReport;

/// Number of fixed log-2 rx-latency buckets per window (upper edges
/// 2, 4, 8, 16, 32, 64, 128, 256 µs, then +inf).
pub const RX_BUCKETS: usize = 9;

/// Upper edges of the rx-latency buckets, in microseconds (the last
/// bucket is unbounded; its "edge" here is only a label).
pub const RX_BUCKET_EDGES_US: [u64; RX_BUCKETS] = [2, 4, 8, 16, 32, 64, 128, 256, u64::MAX];

/// The bucket index a latency (in nanoseconds) falls into.
#[inline]
pub fn rx_bucket(lat_ns: u64) -> usize {
    for (i, &edge_us) in RX_BUCKET_EDGES_US[..RX_BUCKETS - 1].iter().enumerate() {
        if lat_ns <= edge_us * 1_000 {
            return i;
        }
    }
    RX_BUCKETS - 1
}

/// Nearest-rank `q`-quantile (in µs) from a window's bucket counts.
/// Falls back to `max_ns` when the rank lands in the unbounded bucket;
/// returns 0.0 for an empty window.
pub fn quantile_from_buckets(buckets: &[u64; RX_BUCKETS], count: u64, max_ns: u64, q: f64) -> f64 {
    if count == 0 {
        return 0.0;
    }
    let rank = ((q.clamp(0.0, 1.0) * count as f64).ceil() as u64).clamp(1, count);
    let mut seen = 0u64;
    for (i, &c) in buckets.iter().enumerate() {
        seen += c;
        if seen >= rank {
            if i == RX_BUCKETS - 1 {
                return max_ns as f64 / 1e3;
            }
            return RX_BUCKET_EDGES_US[i] as f64;
        }
    }
    max_ns as f64 / 1e3
}

/// Static geometry of one recorder: window width plus the shape of the
/// per-window row vectors. Lane merges require everything but `num_vms`
/// to match.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TelemetryGeometry {
    /// Window width in sim-time nanoseconds.
    pub width_ns: u64,
    /// VMs covered by this recorder (a lane's block, or the whole host).
    pub num_vms: usize,
    /// Vhost workers per VM (worker rows per VM per window).
    pub workers_per_vm: usize,
    /// TX/RX queue pairs per VM (per-queue rx counters per VM row).
    pub queues_per_vm: usize,
    /// Exit-reason kinds (length of each row's `exits` vector).
    pub exit_kinds: usize,
}

/// One VM's gauges for one window. Everything is a plain count or a
/// nanosecond sum; rates and percentages are derived at render time.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct VmWin {
    /// Sim-time nanoseconds this VM's vCPUs spent in guest mode inside
    /// the window (TIG % = `guest_ns / (vcpus * width)`).
    pub guest_ns: u64,
    /// VM exits by exit-reason kind.
    pub exits: Vec<u64>,
    /// MSIs injected exit-lessly (posted interrupts).
    pub msi_posted: u64,
    /// MSIs injected via the emulated (exit-taking) path.
    pub msi_emulated: u64,
    /// MSIs whose target was chosen by ES2 redirection.
    pub msi_redirected: u64,
    /// Bytes completed into the guest rx ring.
    pub rx_bytes: u64,
    /// Packets completed into the guest rx ring.
    pub rx_pkts: u64,
    /// Bytes put on the wire by vhost tx service.
    pub tx_bytes: u64,
    /// Packets put on the wire by vhost tx service.
    pub tx_pkts: u64,
    /// Rx packets by ingress queue pair (RSS spread), length
    /// `queues_per_vm`.
    pub rx_pkts_per_queue: Vec<u64>,
    /// Rx latency samples seen in the window.
    pub rx_lat_count: u64,
    /// Sum of rx latencies (ns) for the mean.
    pub rx_lat_sum_ns: u64,
    /// Largest rx latency (ns) in the window.
    pub rx_lat_max_ns: u64,
    /// Log-2 rx-latency bucket counts (see [`RX_BUCKET_EDGES_US`]) for
    /// windowed quantiles.
    pub rx_lat_buckets: [u64; RX_BUCKETS],
    /// Kicks deferred by GCRA backpressure.
    pub throttled_kicks: u64,
    /// Vhost turns cut short by the service budget.
    pub budget_deferrals: u64,
    /// Queues quarantined in this window.
    pub quarantines: u64,
    /// Guest queue resets completed in this window.
    pub resets: u64,
}

impl VmWin {
    fn blank(exit_kinds: usize, queues: usize) -> VmWin {
        VmWin {
            exits: vec![0; exit_kinds],
            rx_pkts_per_queue: vec![0; queues],
            ..VmWin::default()
        }
    }

    /// Total exits across all kinds.
    pub fn exits_total(&self) -> u64 {
        self.exits.iter().sum()
    }
}

/// One vhost worker's gauges for one window.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WorkerWin {
    /// Sim-time nanoseconds the worker spent on-core inside the window.
    pub on_core_ns: u64,
    /// Deepest pending-work backlog observed in the window.
    pub pending_hwm: u64,
    /// Handler turns begun in the window.
    pub turns: u64,
}

/// One telemetry window: gauges for every VM and worker, dense so lane
/// merges stay positional.
#[derive(Clone, Debug)]
pub struct Window {
    /// Window index (`start = idx * width_ns`).
    pub idx: u64,
    /// Per-VM rows, length `num_vms`.
    pub vms: Vec<VmWin>,
    /// Per-worker rows, length `num_vms * workers_per_vm`, worker-major
    /// within each VM (`vm * workers_per_vm + w`).
    pub workers: Vec<WorkerWin>,
}

/// One discrete event joined onto the window stream (fault injected,
/// migration phase, quarantine, watchdog action, …) — the causal side of
/// the pipeline. `kind` is a static label; `arg` is one free payload
/// value whose meaning depends on the kind.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Annotation {
    /// Sim-time nanoseconds of the event.
    pub at_ns: u64,
    /// VM the event names (or the VM it most affects).
    pub vm: u32,
    /// Static label ("pi-degrade", "quarantine", "migrate-start", …).
    pub kind: &'static str,
    /// Free payload (vector, queue index, blackout ns, …).
    pub arg: u64,
}

impl Annotation {
    fn sort_key(&self) -> (u64, u32, &'static str, u64) {
        (self.at_ns, self.vm, self.kind, self.arg)
    }
}

/// The windowed telemetry recorder. One per machine (or per lane); all
/// hooks take raw sim-time nanoseconds and update the window the instant
/// falls into. Intervals (guest residency, worker on-core time) are
/// sliced across every window they overlap.
#[derive(Clone, Debug)]
pub struct TelemetryRecorder {
    geom: TelemetryGeometry,
    windows: Vec<Window>,
    annotations: Vec<Annotation>,
    ann_capacity: usize,
    ann_dropped: u64,
}

impl TelemetryRecorder {
    /// A recorder for the given geometry with room for `ann_capacity`
    /// annotations (drops past capacity are counted, not silent).
    pub fn new(geom: TelemetryGeometry, ann_capacity: usize) -> Self {
        assert!(geom.width_ns > 0, "telemetry window width must be nonzero");
        TelemetryRecorder {
            geom,
            windows: Vec::new(),
            annotations: Vec::new(),
            ann_capacity,
            ann_dropped: 0,
        }
    }

    /// The recorder's geometry.
    pub fn geometry(&self) -> TelemetryGeometry {
        self.geom
    }

    fn blank_window(geom: &TelemetryGeometry, idx: u64) -> Window {
        Window {
            idx,
            vms: (0..geom.num_vms)
                .map(|_| VmWin::blank(geom.exit_kinds, geom.queues_per_vm))
                .collect(),
            workers: vec![WorkerWin::default(); geom.num_vms * geom.workers_per_vm],
        }
    }

    /// Index of the window holding `at_ns`, creating it (and keeping the
    /// list sorted) if needed. Appends are O(1); the rare out-of-order
    /// touch (interval backfill) is a binary-search insert.
    fn win_pos(&mut self, k: u64) -> usize {
        match self.windows.last() {
            Some(last) if last.idx == k => return self.windows.len() - 1,
            Some(last) if last.idx < k => {
                let w = Self::blank_window(&self.geom, k);
                self.windows.push(w);
                return self.windows.len() - 1;
            }
            None => {
                let w = Self::blank_window(&self.geom, k);
                self.windows.push(w);
                return 0;
            }
            _ => {}
        }
        match self.windows.binary_search_by_key(&k, |w| w.idx) {
            Ok(i) => i,
            Err(i) => {
                let w = Self::blank_window(&self.geom, k);
                self.windows.insert(i, w);
                i
            }
        }
    }

    fn vm_win(&mut self, vm: u32, at_ns: u64) -> &mut VmWin {
        let k = at_ns / self.geom.width_ns;
        let pos = self.win_pos(k);
        &mut self.windows[pos].vms[vm as usize]
    }

    /// Distribute the interval `[from_ns, to_ns)` across every window it
    /// overlaps, calling `add(window, overlap_ns)` per window.
    fn slice_interval<F: FnMut(&mut Window, u64)>(&mut self, from_ns: u64, to_ns: u64, mut add: F) {
        if to_ns <= from_ns {
            return;
        }
        let width = self.geom.width_ns;
        let mut k = from_ns / width;
        let last_k = (to_ns - 1) / width;
        while k <= last_k {
            let lo = from_ns.max(k * width);
            let hi = to_ns.min((k + 1) * width);
            let pos = self.win_pos(k);
            add(&mut self.windows[pos], hi - lo);
            k += 1;
        }
    }

    // ------------------------------------------------------------------
    // Gauge hooks (all sim-time ns, all strictly observational)
    // ------------------------------------------------------------------

    /// One VM exit of kind `kind` at `at_ns`.
    pub fn record_exit(&mut self, vm: u32, kind: usize, at_ns: u64) {
        self.vm_win(vm, at_ns).exits[kind] += 1;
    }

    /// Guest-mode residency `[from_ns, to_ns)` for one of `vm`'s vCPUs,
    /// sliced across window boundaries.
    pub fn record_guest_slice(&mut self, vm: u32, from_ns: u64, to_ns: u64) {
        self.slice_interval(from_ns, to_ns, |w, ns| {
            w.vms[vm as usize].guest_ns += ns;
        });
    }

    /// One MSI injection: `posted` = exit-less posted path, otherwise
    /// the emulated (exit-taking) path.
    pub fn record_msi(&mut self, vm: u32, at_ns: u64, posted: bool) {
        let row = self.vm_win(vm, at_ns);
        if posted {
            row.msi_posted += 1;
        } else {
            row.msi_emulated += 1;
        }
    }

    /// One MSI whose target was chosen by ES2 redirection (counted
    /// separately from the injection path — a redirected MSI still
    /// lands as posted or emulated).
    pub fn record_msi_redirected(&mut self, vm: u32, at_ns: u64) {
        self.vm_win(vm, at_ns).msi_redirected += 1;
    }

    /// Rx completion into the guest ring: `bytes` on ingress `queue`.
    pub fn record_rx(&mut self, vm: u32, at_ns: u64, queue: usize, bytes: u64) {
        let row = self.vm_win(vm, at_ns);
        row.rx_bytes += bytes;
        row.rx_pkts += 1;
        if let Some(q) = row.rx_pkts_per_queue.get_mut(queue) {
            *q += 1;
        }
    }

    /// Tx completion onto the wire.
    pub fn record_tx(&mut self, vm: u32, at_ns: u64, bytes: u64) {
        let row = self.vm_win(vm, at_ns);
        row.tx_bytes += bytes;
        row.tx_pkts += 1;
    }

    /// One end-to-end rx latency sample (ns).
    pub fn record_rx_latency(&mut self, vm: u32, at_ns: u64, lat_ns: u64) {
        let b = rx_bucket(lat_ns);
        let row = self.vm_win(vm, at_ns);
        row.rx_lat_count += 1;
        row.rx_lat_sum_ns += lat_ns;
        row.rx_lat_max_ns = row.rx_lat_max_ns.max(lat_ns);
        row.rx_lat_buckets[b] += 1;
    }

    /// One kick deferred by GCRA backpressure.
    pub fn record_throttled_kick(&mut self, vm: u32, at_ns: u64) {
        self.vm_win(vm, at_ns).throttled_kicks += 1;
    }

    /// One vhost turn cut short by the service budget.
    pub fn record_budget_deferral(&mut self, vm: u32, at_ns: u64) {
        self.vm_win(vm, at_ns).budget_deferrals += 1;
    }

    /// One queue quarantined.
    pub fn record_quarantine(&mut self, vm: u32, at_ns: u64) {
        self.vm_win(vm, at_ns).quarantines += 1;
    }

    /// One guest queue reset completed.
    pub fn record_reset(&mut self, vm: u32, at_ns: u64) {
        self.vm_win(vm, at_ns).resets += 1;
    }

    /// Worker on-core residency `[from_ns, to_ns)`, sliced across
    /// window boundaries.
    pub fn record_worker_slice(&mut self, vm: u32, worker: usize, from_ns: u64, to_ns: u64) {
        let wpv = self.geom.workers_per_vm;
        let slot = vm as usize * wpv + worker.min(wpv.saturating_sub(1));
        self.slice_interval(from_ns, to_ns, |w, ns| {
            w.workers[slot].on_core_ns += ns;
        });
    }

    /// Sample the worker's pending-work depth (kept as a per-window
    /// high-water mark).
    pub fn record_worker_pending(&mut self, vm: u32, worker: usize, at_ns: u64, depth: u64) {
        let wpv = self.geom.workers_per_vm;
        let slot = vm as usize * wpv + worker.min(wpv.saturating_sub(1));
        let k = at_ns / self.geom.width_ns;
        let pos = self.win_pos(k);
        let row = &mut self.windows[pos].workers[slot];
        row.pending_hwm = row.pending_hwm.max(depth);
    }

    /// One vhost handler turn begun.
    pub fn record_worker_turn(&mut self, vm: u32, worker: usize, at_ns: u64) {
        let wpv = self.geom.workers_per_vm;
        let slot = vm as usize * wpv + worker.min(wpv.saturating_sub(1));
        let k = at_ns / self.geom.width_ns;
        let pos = self.win_pos(k);
        self.windows[pos].workers[slot].turns += 1;
    }

    /// Join a discrete event onto the stream (bounded; drops counted).
    pub fn annotate(&mut self, at_ns: u64, vm: u32, kind: &'static str, arg: u64) {
        if self.annotations.len() < self.ann_capacity {
            self.annotations.push(Annotation {
                at_ns,
                vm,
                kind,
                arg,
            });
        } else {
            self.ann_dropped += 1;
        }
    }

    /// Finish recording and produce the immutable report. Annotations
    /// are sorted by `(time, vm, kind, arg)` so serial and lane-merged
    /// runs render identically.
    pub fn finish(self) -> TelemetryReport {
        let mut annotations = self.annotations;
        annotations.sort_by_key(|a| a.sort_key());
        TelemetryReport {
            geom: self.geom,
            windows: self.windows,
            annotations,
            ann_dropped: self.ann_dropped,
        }
    }
}

/// Everything one run's telemetry recorder measured.
#[derive(Clone, Debug)]
pub struct TelemetryReport {
    /// Recorder geometry (after lane merges, `num_vms` is the total).
    pub geom: TelemetryGeometry,
    /// Occupied windows in ascending index order (untouched windows are
    /// absent; treat them as all-zero).
    pub windows: Vec<Window>,
    /// The causal annotation stream, sorted by `(time, vm, kind, arg)`.
    pub annotations: Vec<Annotation>,
    /// Annotations dropped past capacity.
    pub ann_dropped: u64,
}

impl TelemetryReport {
    /// Merge another lane's report after this one (contiguous VM
    /// blocks, lane order): per-VM and per-worker rows concatenate
    /// positionally over the union of window indices (zero-filled where
    /// a lane never touched a window), annotations re-sort with
    /// `vm_offset` applied.
    pub fn absorb(&mut self, other: TelemetryReport, vm_offset: u32) {
        assert_eq!(self.geom.width_ns, other.geom.width_ns, "window width");
        assert_eq!(
            self.geom.workers_per_vm, other.geom.workers_per_vm,
            "workers per vm"
        );
        assert_eq!(
            self.geom.queues_per_vm, other.geom.queues_per_vm,
            "queues per vm"
        );
        assert_eq!(self.geom.exit_kinds, other.geom.exit_kinds, "exit kinds");

        let a_geom = self.geom;
        let b_geom = other.geom;
        let mut merged = Vec::with_capacity(self.windows.len().max(other.windows.len()));
        let mut a = std::mem::take(&mut self.windows).into_iter().peekable();
        let mut b = other.windows.into_iter().peekable();
        loop {
            let take = match (a.peek(), b.peek()) {
                (None, None) => break,
                (Some(_), None) => 0,
                (None, Some(_)) => 1,
                (Some(x), Some(y)) => match x.idx.cmp(&y.idx) {
                    std::cmp::Ordering::Less => 0,
                    std::cmp::Ordering::Greater => 1,
                    std::cmp::Ordering::Equal => 2,
                },
            };
            let (idx, aw, bw) = match take {
                0 => {
                    let w = a.next().expect("peeked");
                    (w.idx, Some(w), None)
                }
                1 => {
                    let w = b.next().expect("peeked");
                    (w.idx, None, Some(w))
                }
                _ => {
                    let wa = a.next().expect("peeked");
                    let wb = b.next().expect("peeked");
                    (wa.idx, Some(wa), Some(wb))
                }
            };
            let wa = aw.unwrap_or_else(|| TelemetryRecorder::blank_window(&a_geom, idx));
            let wb = bw.unwrap_or_else(|| TelemetryRecorder::blank_window(&b_geom, idx));
            let mut vms = wa.vms;
            vms.extend(wb.vms);
            let mut workers = wa.workers;
            workers.extend(wb.workers);
            merged.push(Window { idx, vms, workers });
        }
        self.windows = merged;
        self.geom.num_vms += b_geom.num_vms;
        self.annotations.extend(other.annotations.into_iter().map(|mut an| {
            an.vm += vm_offset;
            an
        }));
        self.annotations.sort_by_key(|an| an.sort_key());
        self.ann_dropped += other.ann_dropped;
    }

    /// Merge another host's report over the **same** global VM slot
    /// table (the cluster topology: every host carries every slot, a VM
    /// is active on exactly one host at a time). Cells sum (maxima take
    /// the max) over the union of window indices; annotations merge
    /// without any VM offset. Contrast [`absorb`](Self::absorb), which
    /// concatenates disjoint VM blocks.
    pub fn overlay(&mut self, other: TelemetryReport) {
        assert_eq!(self.geom, other.geom, "overlay requires equal geometry");
        let geom = self.geom;
        let mut merged = Vec::with_capacity(self.windows.len().max(other.windows.len()));
        let mut a = std::mem::take(&mut self.windows).into_iter().peekable();
        let mut b = other.windows.into_iter().peekable();
        loop {
            let take = match (a.peek(), b.peek()) {
                (None, None) => break,
                (Some(_), None) => 0,
                (None, Some(_)) => 1,
                (Some(x), Some(y)) => match x.idx.cmp(&y.idx) {
                    std::cmp::Ordering::Less => 0,
                    std::cmp::Ordering::Greater => 1,
                    std::cmp::Ordering::Equal => 2,
                },
            };
            match take {
                0 => merged.push(a.next().expect("peeked")),
                1 => merged.push(b.next().expect("peeked")),
                _ => {
                    let mut wa = a.next().expect("peeked");
                    let wb = b.next().expect("peeked");
                    for (va, vb) in wa.vms.iter_mut().zip(wb.vms) {
                        va.guest_ns += vb.guest_ns;
                        for (x, y) in va.exits.iter_mut().zip(vb.exits) {
                            *x += y;
                        }
                        va.msi_posted += vb.msi_posted;
                        va.msi_emulated += vb.msi_emulated;
                        va.msi_redirected += vb.msi_redirected;
                        va.rx_bytes += vb.rx_bytes;
                        va.rx_pkts += vb.rx_pkts;
                        va.tx_bytes += vb.tx_bytes;
                        va.tx_pkts += vb.tx_pkts;
                        for (x, y) in va.rx_pkts_per_queue.iter_mut().zip(vb.rx_pkts_per_queue) {
                            *x += y;
                        }
                        va.rx_lat_count += vb.rx_lat_count;
                        va.rx_lat_sum_ns += vb.rx_lat_sum_ns;
                        va.rx_lat_max_ns = va.rx_lat_max_ns.max(vb.rx_lat_max_ns);
                        for (x, y) in va.rx_lat_buckets.iter_mut().zip(vb.rx_lat_buckets) {
                            *x += y;
                        }
                        va.throttled_kicks += vb.throttled_kicks;
                        va.budget_deferrals += vb.budget_deferrals;
                        va.quarantines += vb.quarantines;
                        va.resets += vb.resets;
                    }
                    for (x, y) in wa.workers.iter_mut().zip(wb.workers) {
                        x.on_core_ns += y.on_core_ns;
                        x.pending_hwm = x.pending_hwm.max(y.pending_hwm);
                        x.turns += y.turns;
                    }
                    merged.push(wa);
                }
            }
        }
        self.windows = merged;
        self.geom = geom;
        self.annotations.extend(other.annotations);
        self.annotations.sort_by_key(|an| an.sort_key());
        self.ann_dropped += other.ann_dropped;
    }

    /// The window with index `idx`, if it was ever touched.
    pub fn window_at(&self, idx: u64) -> Option<&Window> {
        self.windows
            .binary_search_by_key(&idx, |w| w.idx)
            .ok()
            .map(|i| &self.windows[i])
    }

    /// First and last occupied window indices (None if no windows).
    pub fn index_span(&self) -> Option<(u64, u64)> {
        match (self.windows.first(), self.windows.last()) {
            (Some(f), Some(l)) => Some((f.idx, l.idx)),
            _ => None,
        }
    }

    // ------------------------------------------------------------------
    // Fleet aggregates (per window)
    // ------------------------------------------------------------------

    /// Fleet TIG % for one window: total guest time over total
    /// `num_vms * width` (vCPU count folds out when every VM has the
    /// same vCPU count; for mixed fleets this is a per-VM-slot average).
    pub fn fleet_tig_pct(&self, w: &Window) -> f64 {
        let guest: u64 = w.vms.iter().map(|v| v.guest_ns).sum();
        100.0 * guest as f64 / (self.geom.num_vms as f64 * self.geom.width_ns as f64)
    }

    /// Fleet exits/sec for one window.
    pub fn fleet_exits_per_sec(&self, w: &Window) -> f64 {
        let exits: u64 = w.vms.iter().map(|v| v.exits_total()).sum();
        exits as f64 / (self.geom.width_ns as f64 / 1e9)
    }

    /// Fleet rx p-quantile (µs) for one window, from summed buckets.
    pub fn fleet_rx_quantile_us(&self, w: &Window, q: f64) -> f64 {
        let mut buckets = [0u64; RX_BUCKETS];
        let mut count = 0u64;
        let mut max_ns = 0u64;
        for v in &w.vms {
            for (b, c) in buckets.iter_mut().zip(v.rx_lat_buckets.iter()) {
                *b += c;
            }
            count += v.rx_lat_count;
            max_ns = max_ns.max(v.rx_lat_max_ns);
        }
        quantile_from_buckets(&buckets, count, max_ns, q)
    }

    /// Fleet rx+tx goodput (bytes) for one window.
    pub fn fleet_goodput_bytes(&self, w: &Window) -> u64 {
        w.vms.iter().map(|v| v.rx_bytes + v.tx_bytes).sum()
    }

    /// Deepest vhost backlog across all workers in one window.
    pub fn fleet_pending_hwm(&self, w: &Window) -> u64 {
        w.workers.iter().map(|r| r.pending_hwm).max().unwrap_or(0)
    }

    /// Mean vhost worker occupancy % across all workers in one window.
    pub fn fleet_worker_occupancy_pct(&self, w: &Window) -> f64 {
        if w.workers.is_empty() {
            return 0.0;
        }
        let on: u64 = w.workers.iter().map(|r| r.on_core_ns).sum();
        100.0 * on as f64 / (w.workers.len() as f64 * self.geom.width_ns as f64)
    }

    // ------------------------------------------------------------------
    // SLO engine
    // ------------------------------------------------------------------

    /// Rolling values of `spec` over every position in the report's
    /// index span (missing windows count as zero). Returns the absolute
    /// index of the first rolling span and one value per position, or
    /// `None` when the report has no windows.
    pub fn slo_values(&self, spec: &SloSpec) -> Option<(u64, Vec<f64>)> {
        let (lo, hi) = self.index_span()?;
        let n = spec.windows.max(1) as u64;
        let total = hi - lo + 1;
        if total < n {
            return Some((lo, Vec::new()));
        }
        let width_s = self.geom.width_ns as f64 / 1e9;
        let span_positions = (total - n + 1) as usize;
        let mut out = Vec::with_capacity(span_positions);
        for p in 0..span_positions {
            let start = lo + p as u64;
            let v = match spec.metric {
                SloMetric::RxP99Us => {
                    let mut buckets = [0u64; RX_BUCKETS];
                    let mut count = 0u64;
                    let mut max_ns = 0u64;
                    for k in start..start + n {
                        if let Some(w) = self.window_at(k) {
                            for vm in self.scope_rows(w, spec) {
                                for (b, c) in buckets.iter_mut().zip(vm.rx_lat_buckets.iter()) {
                                    *b += c;
                                }
                                count += vm.rx_lat_count;
                                max_ns = max_ns.max(vm.rx_lat_max_ns);
                            }
                        }
                    }
                    quantile_from_buckets(&buckets, count, max_ns, 0.99)
                }
                SloMetric::TigPct => {
                    let mut guest = 0u64;
                    for k in start..start + n {
                        if let Some(w) = self.window_at(k) {
                            guest += self
                                .scope_rows(w, spec)
                                .map(|vm| vm.guest_ns)
                                .sum::<u64>();
                        }
                    }
                    let slots = match spec.vm {
                        Some(_) => 1.0,
                        None => self.geom.num_vms as f64,
                    };
                    100.0 * guest as f64 / (slots * n as f64 * self.geom.width_ns as f64)
                }
                SloMetric::ExitsPerSec => {
                    let mut exits = 0u64;
                    for k in start..start + n {
                        if let Some(w) = self.window_at(k) {
                            exits += self
                                .scope_rows(w, spec)
                                .map(|vm| vm.exits_total())
                                .sum::<u64>();
                        }
                    }
                    exits as f64 / (n as f64 * width_s)
                }
                SloMetric::WorkerPendingHwm => {
                    let mut hwm = 0u64;
                    for k in start..start + n {
                        if let Some(w) = self.window_at(k) {
                            let it: Box<dyn Iterator<Item = &WorkerWin>> = match spec.vm {
                                Some(vm) => {
                                    let wpv = self.geom.workers_per_vm;
                                    let lo = vm as usize * wpv;
                                    Box::new(w.workers[lo..lo + wpv].iter())
                                }
                                None => Box::new(w.workers.iter()),
                            };
                            hwm = hwm.max(it.map(|r| r.pending_hwm).max().unwrap_or(0));
                        }
                    }
                    hwm as f64
                }
            };
            out.push(v);
        }
        Some((lo, out))
    }

    fn scope_rows<'a>(
        &self,
        w: &'a Window,
        spec: &SloSpec,
    ) -> Box<dyn Iterator<Item = &'a VmWin> + 'a> {
        match spec.vm {
            Some(vm) => Box::new(w.vms.get(vm as usize).into_iter()),
            None => Box::new(w.vms.iter()),
        }
    }

    /// Evaluate `specs`, returning every breach (a maximal run of
    /// violating rolling spans) with its worst value and — when an
    /// annotation precedes the breach within `horizon_ns` — the latest
    /// such annotation as the attributed cause.
    pub fn evaluate_slos(&self, specs: &[SloSpec], horizon_ns: u64) -> Vec<SloBreach> {
        let mut out = Vec::new();
        for spec in specs {
            let Some((lo, values)) = self.slo_values(spec) else {
                continue;
            };
            let n = spec.windows.max(1) as u64;
            let mut run: Option<(usize, usize, f64)> = None;
            for (p, &v) in values.iter().enumerate() {
                let bad = if spec.above_is_bad {
                    v > spec.threshold
                } else {
                    v < spec.threshold
                };
                if bad {
                    run = Some(match run {
                        None => (p, p, v),
                        Some((s, _, worst)) => {
                            let w = if spec.above_is_bad {
                                worst.max(v)
                            } else {
                                worst.min(v)
                            };
                            (s, p, w)
                        }
                    });
                } else if let Some((s, e, worst)) = run.take() {
                    out.push(self.make_breach(spec, lo, n, s, e, worst, horizon_ns));
                }
            }
            if let Some((s, e, worst)) = run {
                out.push(self.make_breach(spec, lo, n, s, e, worst, horizon_ns));
            }
        }
        out
    }

    #[allow(clippy::too_many_arguments)]
    fn make_breach(
        &self,
        spec: &SloSpec,
        lo: u64,
        n: u64,
        s: usize,
        e: usize,
        worst: f64,
        horizon_ns: u64,
    ) -> SloBreach {
        let start_ns = (lo + s as u64) * self.geom.width_ns;
        let end_ns = (lo + e as u64 + n) * self.geom.width_ns;
        SloBreach {
            slo: spec.name,
            start_ns,
            end_ns,
            worst,
            cause: self.attribute(start_ns, horizon_ns).copied(),
        }
    }

    /// The latest annotation at or before `at_ns` and within
    /// `horizon_ns` of it — the causal join used for breach attribution.
    pub fn attribute(&self, at_ns: u64, horizon_ns: u64) -> Option<&Annotation> {
        self.annotations
            .iter()
            .rev()
            .find(|a| a.at_ns <= at_ns && at_ns - a.at_ns <= horizon_ns)
    }

    /// Multi-window burn-rate alerts for `spec`: positions where the
    /// violating fraction of the trailing `short` *and* trailing `long`
    /// rolling spans both reach `factor * budget` (the SRE
    /// short-window/long-window pairing: the long window confirms real
    /// budget burn, the short window makes the alert reset quickly).
    /// One alert is emitted per onset (false→true transition).
    pub fn burn_alerts(
        &self,
        spec: &SloSpec,
        short: usize,
        long: usize,
        budget: f64,
        factor: f64,
    ) -> Vec<BurnAlert> {
        let Some((lo, values)) = self.slo_values(spec) else {
            return Vec::new();
        };
        let bad: Vec<bool> = values
            .iter()
            .map(|&v| {
                if spec.above_is_bad {
                    v > spec.threshold
                } else {
                    v < spec.threshold
                }
            })
            .collect();
        let frac = |upto: usize, len: usize| -> f64 {
            let len = len.max(1);
            let from = (upto + 1).saturating_sub(len);
            let n = upto + 1 - from;
            bad[from..=upto].iter().filter(|&&b| b).count() as f64 / n as f64
        };
        let mut out = Vec::new();
        let mut firing = false;
        for p in 0..bad.len() {
            let sf = frac(p, short);
            let lf = frac(p, long);
            let fire = sf >= factor * budget && lf >= factor * budget;
            if fire && !firing {
                out.push(BurnAlert {
                    slo: spec.name,
                    at_ns: (lo + p as u64) * self.geom.width_ns,
                    short_frac: sf,
                    long_frac: lf,
                });
            }
            firing = fire;
        }
        out
    }

    // ------------------------------------------------------------------
    // Chrome-trace counter export
    // ------------------------------------------------------------------

    /// Render the window stream as Chrome-trace counter (`"ph": "C"`)
    /// events, merged with `spans`' slice/instant events when given, in
    /// the same JSON format as [`SpanReport::chrome_trace_json`] — one
    /// file, counter track alongside the span tracks. Fleet counters go
    /// on pid 0 / tid 9000; per-VM counters are emitted only for fleets
    /// of at most 8 VMs to bound the file.
    pub fn merged_chrome_trace(&self, spans: Option<&SpanReport>) -> String {
        let mut entries: Vec<String> = Vec::new();
        if let Some(rep) = spans {
            for ev in &rep.events {
                let ph = if ev.dur_ns == 0 { "i" } else { "X" };
                let mut e = format!(
                    "  {{\"name\": \"{}\", \"ph\": \"{}\", \"ts\": {}.{:03}, ",
                    ev.name,
                    ph,
                    ev.at_ns / 1_000,
                    ev.at_ns % 1_000,
                );
                if ev.dur_ns > 0 {
                    e.push_str(&format!(
                        "\"dur\": {}.{:03}, ",
                        ev.dur_ns / 1_000,
                        ev.dur_ns % 1_000
                    ));
                }
                if ph == "i" {
                    e.push_str("\"s\": \"t\", ");
                }
                e.push_str(&format!(
                    "\"pid\": {}, \"tid\": {}, \"args\": {{\"corr\": {}, \"arg\": {}}}}}",
                    ev.vm, ev.track, ev.corr, ev.arg,
                ));
                entries.push(e);
            }
        }
        let counter = |entries: &mut Vec<String>, name: &str, ts_ns: u64, pid: u32, v: f64| {
            entries.push(format!(
                "  {{\"name\": \"{}\", \"ph\": \"C\", \"ts\": {}.{:03}, \"pid\": {}, \"tid\": 9000, \"args\": {{\"value\": {:.3}}}}}",
                name,
                ts_ns / 1_000,
                ts_ns % 1_000,
                pid,
                v,
            ));
        };
        let per_vm = self.geom.num_vms <= 8;
        for w in &self.windows {
            let ts = w.idx * self.geom.width_ns;
            counter(&mut entries, "fleet-tig-pct", ts, 0, self.fleet_tig_pct(w));
            counter(
                &mut entries,
                "fleet-exits-per-sec",
                ts,
                0,
                self.fleet_exits_per_sec(w),
            );
            counter(
                &mut entries,
                "fleet-rx-p99-us",
                ts,
                0,
                self.fleet_rx_quantile_us(w, 0.99),
            );
            counter(
                &mut entries,
                "fleet-pending-hwm",
                ts,
                0,
                self.fleet_pending_hwm(w) as f64,
            );
            if per_vm {
                for (vm, row) in w.vms.iter().enumerate() {
                    let tig =
                        100.0 * row.guest_ns as f64 / self.geom.width_ns as f64;
                    counter(&mut entries, "vm-tig-pct", ts, vm as u32, tig);
                }
            }
        }
        // Annotations ride along as instant events on the counter track.
        for a in &self.annotations {
            entries.push(format!(
                "  {{\"name\": \"{}\", \"ph\": \"i\", \"ts\": {}.{:03}, \"s\": \"t\", \"pid\": {}, \"tid\": 9001, \"args\": {{\"arg\": {}}}}}",
                a.kind,
                a.at_ns / 1_000,
                a.at_ns % 1_000,
                a.vm,
                a.arg,
            ));
        }
        let mut out = String::new();
        out.push_str("{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n");
        for (i, e) in entries.iter().enumerate() {
            out.push_str(e);
            out.push_str(if i + 1 < entries.len() { ",\n" } else { "\n" });
        }
        out.push_str("]}\n");
        out
    }
}

/// The windowed metric an SLO constrains.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SloMetric {
    /// Nearest-rank p99 of rx latency (µs) over the rolling span.
    RxP99Us,
    /// Time-in-guest percentage over the rolling span.
    TigPct,
    /// VM exits per second over the rolling span.
    ExitsPerSec,
    /// Deepest vhost pending backlog over the rolling span.
    WorkerPendingHwm,
}

/// One declarative objective: "`metric` stays on the good side of
/// `threshold` over any `windows`-window rolling span", fleet-wide or
/// scoped to one VM.
#[derive(Clone, Copy, Debug)]
pub struct SloSpec {
    /// Stable name used in reports and JSON.
    pub name: &'static str,
    /// The constrained metric.
    pub metric: SloMetric,
    /// `None` = fleet scope, `Some(vm)` = that VM only.
    pub vm: Option<u32>,
    /// The objective bound.
    pub threshold: f64,
    /// `true` when exceeding the threshold is the violation (latency,
    /// exits, backlog); `false` when falling below it is (TIG %).
    pub above_is_bad: bool,
    /// Rolling span length in windows ("over any N windows").
    pub windows: u32,
}

/// One maximal run of violating rolling spans, with its attributed
/// cause when an annotation precedes it within the horizon.
#[derive(Clone, Copy, Debug)]
pub struct SloBreach {
    /// Name of the violated SLO.
    pub slo: &'static str,
    /// Sim-time start (ns) of the first violating span.
    pub start_ns: u64,
    /// Sim-time end (ns) of the last violating span (exclusive).
    pub end_ns: u64,
    /// Worst metric value observed during the breach.
    pub worst: f64,
    /// Latest preceding annotation within the horizon, if any.
    pub cause: Option<Annotation>,
}

/// One multi-window burn-rate alert onset.
#[derive(Clone, Copy, Debug)]
pub struct BurnAlert {
    /// Name of the burning SLO.
    pub slo: &'static str,
    /// Sim-time (ns) of the alert onset.
    pub at_ns: u64,
    /// Violating fraction of the trailing short window.
    pub short_frac: f64,
    /// Violating fraction of the trailing long window.
    pub long_frac: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geom(vms: usize) -> TelemetryGeometry {
        TelemetryGeometry {
            width_ns: 1_000_000,
            num_vms: vms,
            workers_per_vm: 2,
            queues_per_vm: 2,
            exit_kinds: 3,
        }
    }

    #[test]
    fn window_assignment_is_half_open() {
        let mut r = TelemetryRecorder::new(geom(1), 16);
        r.record_exit(0, 0, 999_999);
        r.record_exit(0, 0, 1_000_000);
        let rep = r.finish();
        assert_eq!(rep.windows.len(), 2);
        assert_eq!(rep.windows[0].idx, 0);
        assert_eq!(rep.windows[1].idx, 1);
        assert_eq!(rep.windows[0].vms[0].exits[0], 1);
        assert_eq!(rep.windows[1].vms[0].exits[0], 1);
    }

    #[test]
    fn interval_slicing_spans_windows() {
        let mut r = TelemetryRecorder::new(geom(1), 16);
        // [0.5ms, 2.25ms): 0.5ms in w0, 1ms in w1, 0.25ms in w2.
        r.record_guest_slice(0, 500_000, 2_250_000);
        let rep = r.finish();
        assert_eq!(rep.windows.len(), 3);
        assert_eq!(rep.windows[0].vms[0].guest_ns, 500_000);
        assert_eq!(rep.windows[1].vms[0].guest_ns, 1_000_000);
        assert_eq!(rep.windows[2].vms[0].guest_ns, 250_000);
        // Backfill after a later touch must land in the right window.
        let mut r = TelemetryRecorder::new(geom(1), 16);
        r.record_exit(0, 1, 5_100_000);
        r.record_guest_slice(0, 4_900_000, 5_100_000);
        let rep = r.finish();
        assert_eq!(rep.windows[0].idx, 4);
        assert_eq!(rep.windows[0].vms[0].guest_ns, 100_000);
        assert_eq!(rep.windows[1].vms[0].guest_ns, 100_000);
    }

    #[test]
    fn rx_buckets_and_quantiles() {
        assert_eq!(rx_bucket(0), 0);
        assert_eq!(rx_bucket(2_000), 0);
        assert_eq!(rx_bucket(2_001), 1);
        assert_eq!(rx_bucket(256_000), 7);
        assert_eq!(rx_bucket(1_000_000), RX_BUCKETS - 1);
        let mut r = TelemetryRecorder::new(geom(1), 16);
        for _ in 0..99 {
            r.record_rx_latency(0, 10, 10_000); // bucket ≤16µs
        }
        r.record_rx_latency(0, 10, 700_000); // overflow bucket
        let rep = r.finish();
        let w = &rep.windows[0];
        assert_eq!(w.vms[0].rx_lat_count, 100);
        assert_eq!(rep.fleet_rx_quantile_us(w, 0.5), 16.0);
        assert_eq!(rep.fleet_rx_quantile_us(w, 0.99), 16.0);
        assert_eq!(rep.fleet_rx_quantile_us(w, 1.0), 700.0);
    }

    #[test]
    fn absorb_concatenates_rows_and_zero_fills() {
        let mut a = TelemetryRecorder::new(geom(1), 16);
        a.record_exit(0, 0, 100);
        a.annotate(100, 0, "quarantine", 1);
        let mut b = TelemetryRecorder::new(geom(1), 16);
        b.record_exit(0, 1, 1_500_000); // window 1 only
        b.annotate(50, 0, "pi-degrade", 2);
        let mut rep = a.finish();
        rep.absorb(b.finish(), 1);
        assert_eq!(rep.geom.num_vms, 2);
        assert_eq!(rep.windows.len(), 2);
        // Window 0: lane A's VM has the exit, lane B's row is zero.
        assert_eq!(rep.windows[0].vms[0].exits[0], 1);
        assert_eq!(rep.windows[0].vms[1].exits_total(), 0);
        // Window 1: lane A's row is zero-filled, lane B's has the exit.
        assert_eq!(rep.windows[1].vms[0].exits_total(), 0);
        assert_eq!(rep.windows[1].vms[1].exits[1], 1);
        assert_eq!(rep.windows[1].workers.len(), 4);
        // Annotations re-sorted by time with the offset applied.
        assert_eq!(rep.annotations[0].kind, "pi-degrade");
        assert_eq!(rep.annotations[0].vm, 1);
        assert_eq!(rep.annotations[1].kind, "quarantine");
    }

    #[test]
    fn overlay_sums_cells_over_same_slots() {
        // Two "hosts" carrying the same 2-VM slot table: VM 0 active on
        // host A until 1 ms, then on host B (the migration picture).
        let mut a = TelemetryRecorder::new(geom(2), 16);
        a.record_guest_slice(0, 0, 800_000);
        a.record_exit(0, 0, 100);
        a.record_worker_pending(0, 1, 100, 5);
        a.annotate(900_000, 0, "migrate-start", 0);
        let mut b = TelemetryRecorder::new(geom(2), 16);
        b.record_guest_slice(0, 1_200_000, 1_700_000);
        b.record_exit(0, 0, 1_300_000);
        b.record_worker_pending(0, 1, 1_300_000, 3);
        b.annotate(1_200_000, 0, "migrate-arrive", 0);
        let mut rep = a.finish();
        rep.overlay(b.finish());
        assert_eq!(rep.geom.num_vms, 2);
        assert_eq!(rep.windows.len(), 2);
        assert_eq!(rep.windows[0].vms[0].guest_ns, 800_000);
        assert_eq!(rep.windows[1].vms[0].guest_ns, 500_000);
        assert_eq!(rep.windows[0].vms[0].exits[0], 1);
        assert_eq!(rep.windows[1].vms[0].exits[0], 1);
        assert_eq!(rep.windows[0].workers[1].pending_hwm, 5);
        assert_eq!(rep.windows[1].workers[1].pending_hwm, 3);
        assert_eq!(rep.annotations[0].kind, "migrate-start");
        assert_eq!(rep.annotations[1].kind, "migrate-arrive");
    }

    #[test]
    fn slo_breach_detection_and_attribution() {
        let mut r = TelemetryRecorder::new(geom(1), 16);
        // 10 windows of good latency, then 3 of bad, then good again.
        for k in 0..20u64 {
            let at = k * 1_000_000 + 10;
            let lat = if (10..13).contains(&k) { 150_000 } else { 10_000 };
            for _ in 0..50 {
                r.record_rx_latency(0, at, lat);
            }
        }
        r.annotate(9_500_000, 0, "host-degraded", 7);
        let rep = r.finish();
        let spec = SloSpec {
            name: "rx-p99",
            metric: SloMetric::RxP99Us,
            vm: None,
            threshold: 60.0,
            above_is_bad: true,
            windows: 1,
        };
        let breaches = rep.evaluate_slos(&[spec], 2_000_000);
        assert_eq!(breaches.len(), 1);
        let b = &breaches[0];
        assert_eq!(b.start_ns, 10_000_000);
        assert_eq!(b.end_ns, 13_000_000);
        assert_eq!(b.worst, 256.0);
        let cause = b.cause.expect("attributed");
        assert_eq!(cause.kind, "host-degraded");
        assert_eq!(cause.arg, 7);
        // Outside the horizon, no attribution.
        let far = rep.evaluate_slos(&[spec], 100_000);
        assert!(far[0].cause.is_none());
    }

    #[test]
    fn rolling_spans_combine_windows() {
        let mut r = TelemetryRecorder::new(geom(1), 16);
        // One bad window among 5 good ones; p99 over a 3-window span
        // only trips where the bad window dominates the rank.
        for k in 0..6u64 {
            let at = k * 1_000_000 + 1;
            let (lat, n) = if k == 3 { (200_000, 100) } else { (4_000, 1) };
            for _ in 0..n {
                r.record_rx_latency(0, at, lat);
            }
        }
        let rep = r.finish();
        let spec = SloSpec {
            name: "rx-p99-3w",
            metric: SloMetric::RxP99Us,
            vm: None,
            threshold: 60.0,
            above_is_bad: true,
            windows: 3,
        };
        let (lo, vals) = rep.slo_values(&spec).expect("windows exist");
        assert_eq!(lo, 0);
        assert_eq!(vals.len(), 4);
        assert!(vals[0] < 60.0, "span 0-2 is clean: {vals:?}");
        assert!(vals[1] > 60.0 && vals[2] > 60.0 && vals[3] > 60.0);
    }

    #[test]
    fn tig_slo_below_is_bad() {
        let mut r = TelemetryRecorder::new(geom(1), 16);
        r.record_guest_slice(0, 0, 900_000); // w0: 90 %
        r.record_guest_slice(0, 1_000_000, 1_100_000); // w1: 10 %
        r.record_guest_slice(0, 2_000_000, 2_950_000); // w2: 95 %
        let rep = r.finish();
        let spec = SloSpec {
            name: "tig",
            metric: SloMetric::TigPct,
            vm: Some(0),
            threshold: 50.0,
            above_is_bad: false,
            windows: 1,
        };
        let breaches = rep.evaluate_slos(&[spec], 0);
        assert_eq!(breaches.len(), 1);
        assert_eq!(breaches[0].start_ns, 1_000_000);
        assert!((breaches[0].worst - 10.0).abs() < 1e-9);
    }

    #[test]
    fn burn_alert_fires_once_per_onset() {
        let mut r = TelemetryRecorder::new(geom(1), 16);
        for k in 0..30u64 {
            let at = k * 1_000_000 + 1;
            let lat = if (5..15).contains(&k) { 150_000 } else { 4_000 };
            r.record_rx_latency(0, at, lat);
        }
        let rep = r.finish();
        let spec = SloSpec {
            name: "rx-p99",
            metric: SloMetric::RxP99Us,
            vm: None,
            threshold: 60.0,
            above_is_bad: true,
            windows: 1,
        };
        let alerts = rep.burn_alerts(&spec, 3, 10, 0.01, 10.0);
        assert_eq!(alerts.len(), 1, "{alerts:?}");
        assert!(alerts[0].short_frac >= 0.1 && alerts[0].long_frac >= 0.1);
        // A clean run never alerts.
        let mut clean = TelemetryRecorder::new(geom(1), 16);
        for k in 0..30u64 {
            clean.record_rx_latency(0, k * 1_000_000 + 1, 4_000);
        }
        assert!(clean.finish().burn_alerts(&spec, 3, 10, 0.01, 10.0).is_empty());
    }

    #[test]
    fn annotation_capacity_counts_drops() {
        let mut r = TelemetryRecorder::new(geom(1), 2);
        for i in 0..5 {
            r.annotate(i, 0, "quarantine", i);
        }
        let rep = r.finish();
        assert_eq!(rep.annotations.len(), 2);
        assert_eq!(rep.ann_dropped, 3);
    }

    #[test]
    fn chrome_counter_export_shape() {
        let mut r = TelemetryRecorder::new(geom(1), 16);
        r.record_guest_slice(0, 0, 500_000);
        r.record_rx_latency(0, 100, 10_000);
        r.annotate(200_000, 0, "migrate-start", 3);
        let rep = r.finish();
        let json = rep.merged_chrome_trace(None);
        assert!(json.contains("\"ph\": \"C\""), "{json}");
        assert!(json.contains("fleet-tig-pct"), "{json}");
        assert!(json.contains("vm-tig-pct"), "{json}");
        assert!(json.contains("\"name\": \"migrate-start\""), "{json}");
        assert!(json.ends_with("]}\n"), "{json}");
    }

    #[test]
    fn worker_rows_track_occupancy_and_backlog() {
        let mut r = TelemetryRecorder::new(geom(2), 16);
        r.record_worker_slice(1, 1, 900_000, 1_200_000);
        r.record_worker_pending(1, 1, 950_000, 3);
        r.record_worker_pending(1, 1, 960_000, 1);
        r.record_worker_turn(1, 1, 950_000);
        let rep = r.finish();
        let slot = 2 + 1; // vm 1 * workers_per_vm 2 + worker 1
        assert_eq!(rep.windows[0].workers[slot].on_core_ns, 100_000);
        assert_eq!(rep.windows[1].workers[slot].on_core_ns, 200_000);
        assert_eq!(rep.windows[0].workers[slot].pending_hwm, 3);
        assert_eq!(rep.windows[0].workers[slot].turns, 1);
        assert_eq!(rep.fleet_pending_hwm(&rep.windows[0]), 3);
        assert!(rep.fleet_worker_occupancy_pct(&rep.windows[0]) > 0.0);
    }
}
