//! Process-global per-event-kind dispatch profile.
//!
//! The testbed's event loop (behind its `ev-profile` cargo feature) calls
//! [`record`] once per dispatched event with the event's kind index and
//! the wall-clock nanoseconds its handler took. Counters are relaxed
//! atomics so worker threads of a parallel sweep aggregate into one
//! process-wide profile without synchronizing the hot path.
//!
//! Profiling is observational only: it reads the monotonic clock and
//! bumps counters, so enabling the feature cannot change simulation
//! results — the contract `verify.sh` holds the default build to.
//! When the feature is off nothing in the simulator calls this module
//! and the cost is exactly zero.

use std::sync::atomic::{AtomicU64, Ordering};

/// Upper bound on distinct event kinds (the testbed currently has ~20;
/// headroom avoids a cross-crate const dependency).
pub const MAX_KINDS: usize = 32;

static COUNTS: [AtomicU64; MAX_KINDS] = [const { AtomicU64::new(0) }; MAX_KINDS];
static NANOS: [AtomicU64; MAX_KINDS] = [const { AtomicU64::new(0) }; MAX_KINDS];
static OVERFLOW: AtomicU64 = AtomicU64::new(0);

/// Record one dispatched event of kind `idx` whose handler ran `nanos`.
/// Kinds past [`MAX_KINDS`] cannot be attributed but are counted, so a
/// grown event enum shows up in the table instead of vanishing.
#[inline]
pub fn record(idx: usize, nanos: u64) {
    if idx < MAX_KINDS {
        COUNTS[idx].fetch_add(1, Ordering::Relaxed);
        NANOS[idx].fetch_add(nanos, Ordering::Relaxed);
    } else {
        OVERFLOW.fetch_add(1, Ordering::Relaxed);
    }
}

/// `(count, total_nanos)` per kind index, for the first `names.len()`
/// kinds.
pub fn snapshot(kinds: usize) -> Vec<(u64, u64)> {
    (0..kinds.min(MAX_KINDS))
        .map(|i| {
            (
                COUNTS[i].load(Ordering::Relaxed),
                NANOS[i].load(Ordering::Relaxed),
            )
        })
        .collect()
}

/// Events recorded with a kind index ≥ [`MAX_KINDS`] (unattributable).
pub fn overflow_count() -> u64 {
    OVERFLOW.load(Ordering::Relaxed)
}

/// Zero all counters (e.g. between a warmup sweep and a measured one).
pub fn reset() {
    for i in 0..MAX_KINDS {
        COUNTS[i].store(0, Ordering::Relaxed);
        NANOS[i].store(0, Ordering::Relaxed);
    }
    OVERFLOW.store(0, Ordering::Relaxed);
}

/// Render the profile as a table, hottest kind first. `names[i]` labels
/// kind index `i`; kinds with zero dispatches are omitted.
pub fn render(names: &[&str]) -> String {
    let snap = snapshot(names.len());
    let total_ns: u64 = snap.iter().map(|&(_, ns)| ns).sum();
    let mut rows: Vec<(usize, u64, u64)> = snap
        .iter()
        .enumerate()
        .filter(|&(_, &(c, _))| c > 0)
        .map(|(i, &(c, ns))| (i, c, ns))
        .collect();
    rows.sort_by(|a, b| b.2.cmp(&a.2).then(a.0.cmp(&b.0)));

    let mut t = crate::Table::new(
        format!(
            "Event dispatch profile ({} events, {:.1} ms in handlers)",
            rows.iter().map(|r| r.1).sum::<u64>(),
            total_ns as f64 / 1e6
        ),
        &["kind", "count", "total ms", "ns/event", "% time"],
    );
    for (i, count, ns) in rows {
        t.row(&[
            names[i].to_string(),
            count.to_string(),
            format!("{:.2}", ns as f64 / 1e6),
            format!("{:.0}", ns as f64 / count as f64),
            format!("{:.1}", 100.0 * ns as f64 / total_ns.max(1) as f64),
        ]);
    }
    let overflow = overflow_count();
    let mut out = t.render();
    if overflow > 0 {
        out.push_str(&format!(
            "WARNING: {overflow} events had kind >= MAX_KINDS ({MAX_KINDS}) and were not attributed\n"
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    // The counters are process-global and other tests in this crate may
    // run concurrently, so assert on deltas of the overflow counter and
    // on kind indices no other test uses.
    #[test]
    fn out_of_range_kinds_are_counted_not_dropped() {
        let before = overflow_count();
        record(MAX_KINDS, 10);
        record(MAX_KINDS + 7, 10);
        assert_eq!(overflow_count() - before, 2);

        record(MAX_KINDS - 1, 10);
        assert_eq!(overflow_count() - before, 2, "in-range records don't overflow");

        let names: Vec<&str> = (0..MAX_KINDS).map(|_| "k").collect();
        let rendered = render(&names);
        assert!(
            rendered.contains("kind >= MAX_KINDS"),
            "overflow missing from table: {rendered}"
        );
    }
}
