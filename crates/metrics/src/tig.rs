//! Time-in-guest (TIG) accounting.
//!
//! The paper (§VI-C): *"The key to virtualization performance is that a CPU
//! core spends more time in guest mode running the guest code, not in the
//! host handling VM exits. Accordingly, we use the time in guest (TIG)
//! percentage as a measurement indicator. It is calculated by summing up the
//! time of each VM entry and exit, and then dividing the result by the total
//! elapsed time."*
//!
//! [`TigAccount`] integrates guest-mode intervals for a vCPU against a
//! measurement window; the testbed calls [`TigAccount::enter_guest`] /
//! [`TigAccount::leave_guest`] on VM entries/exits and on context switches.

use es2_sim::{SimDuration, SimTime};

/// Per-vCPU guest-mode time integrator.
#[derive(Clone, Debug)]
pub struct TigAccount {
    in_guest_since: Option<SimTime>,
    guest_time: SimDuration,
    window_open: Option<SimTime>,
    window_guest: SimDuration,
    window_len: SimDuration,
}

impl Default for TigAccount {
    fn default() -> Self {
        Self::new()
    }
}

impl TigAccount {
    /// A fresh account outside guest mode with no open window.
    pub fn new() -> Self {
        TigAccount {
            in_guest_since: None,
            guest_time: SimDuration::ZERO,
            window_open: None,
            window_guest: SimDuration::ZERO,
            window_len: SimDuration::ZERO,
        }
    }

    /// Open the measurement window at `now` (after warm-up).
    pub fn open_window(&mut self, now: SimTime) {
        self.window_open = Some(now);
        self.window_guest = SimDuration::ZERO;
        // If currently in guest mode, only the part after `now` counts.
        if let Some(since) = self.in_guest_since {
            if since < now {
                self.in_guest_since = Some(now);
            }
        }
    }

    /// Close the measurement window at `now`.
    pub fn close_window(&mut self, now: SimTime) {
        if self.in_guest_since.is_some() {
            // Flush the open interval up to `now`, then re-open it so
            // lifetime accounting stays correct.
            self.leave_guest(now);
            self.enter_guest(now);
        }
        if let Some(open) = self.window_open.take() {
            self.window_len = now.since(open);
        }
    }

    /// VM entry: the vCPU starts running guest code at `now`.
    ///
    /// Idempotent: entering while already in guest mode is a no-op (can
    /// happen when a context switch and an entry coincide).
    pub fn enter_guest(&mut self, now: SimTime) {
        if self.in_guest_since.is_none() {
            self.in_guest_since = Some(now);
        }
    }

    /// VM exit (or the vCPU thread is descheduled) at `now`.
    pub fn leave_guest(&mut self, now: SimTime) {
        if let Some(since) = self.in_guest_since.take() {
            let span = now.saturating_since(since);
            self.guest_time += span;
            if self.window_open.is_some() {
                self.window_guest += span;
            }
        }
    }

    /// Lifetime guest-mode time.
    pub fn guest_time(&self) -> SimDuration {
        self.guest_time
    }

    /// Guest-mode time within the (closed) window.
    pub fn windowed_guest_time(&self) -> SimDuration {
        self.window_guest
    }

    /// TIG percentage within the (closed) window, in `[0, 100]`.
    pub fn tig_percent(&self) -> f64 {
        if self.window_len.is_zero() {
            0.0
        } else {
            100.0 * self.window_guest.as_secs_f64() / self.window_len.as_secs_f64()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(us: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_micros(us)
    }

    #[test]
    fn full_guest_time_is_100_percent() {
        let mut a = TigAccount::new();
        a.open_window(t(0));
        a.enter_guest(t(0));
        a.leave_guest(t(1000));
        a.close_window(t(1000));
        assert!((a.tig_percent() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn alternating_guest_host() {
        let mut a = TigAccount::new();
        a.open_window(t(0));
        // 3 x (70us guest + 30us host)
        for i in 0..3 {
            a.enter_guest(t(i * 100));
            a.leave_guest(t(i * 100 + 70));
        }
        a.close_window(t(300));
        assert!((a.tig_percent() - 70.0).abs() < 1e-9);
        assert_eq!(a.windowed_guest_time(), SimDuration::from_micros(210));
    }

    #[test]
    fn warmup_is_excluded() {
        let mut a = TigAccount::new();
        a.enter_guest(t(0));
        a.leave_guest(t(100)); // before window
        a.open_window(t(100));
        a.enter_guest(t(100));
        a.leave_guest(t(150));
        a.close_window(t(200));
        assert!((a.tig_percent() - 50.0).abs() < 1e-9);
        assert_eq!(a.guest_time(), SimDuration::from_micros(150));
    }

    #[test]
    fn window_opening_mid_guest_interval_truncates() {
        let mut a = TigAccount::new();
        a.enter_guest(t(0));
        a.open_window(t(50));
        a.leave_guest(t(100));
        a.close_window(t(150));
        // Only 50us of the guest interval falls inside the window.
        assert!((a.tig_percent() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn close_window_flushes_open_interval() {
        let mut a = TigAccount::new();
        a.open_window(t(0));
        a.enter_guest(t(0));
        a.close_window(t(80));
        assert!((a.tig_percent() - 100.0).abs() < 1e-9);
        // Still in guest mode afterwards for lifetime purposes.
        a.leave_guest(t(100));
        assert_eq!(a.guest_time(), SimDuration::from_micros(100));
    }

    #[test]
    fn double_enter_is_idempotent() {
        let mut a = TigAccount::new();
        a.open_window(t(0));
        a.enter_guest(t(0));
        a.enter_guest(t(10)); // ignored
        a.leave_guest(t(20));
        a.close_window(t(20));
        assert!((a.tig_percent() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn leave_without_enter_is_noop() {
        let mut a = TigAccount::new();
        a.open_window(t(0));
        a.leave_guest(t(10));
        a.close_window(t(10));
        assert_eq!(a.tig_percent(), 0.0);
    }
}
