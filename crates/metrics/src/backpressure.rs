//! Per-VM overload-control ledger.
//!
//! The hostile-guest hardening layer throttles two things per VM: guest
//! kicks (a token-bucket rate limit on I/O-instruction exits reaching the
//! vhost worker) and vhost service (a per-window request budget in the
//! hybrid poll loop). Work that is shed or deferred by either mechanism is
//! counted here so experiments can show *where* an overloaded VM's
//! excess load went — it must land on the misbehaving VM itself, never on
//! its neighbors.

/// Counters for one VM's backpressure interactions (all zero when the
/// throttles are disabled or never triggered).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BackpressureStats {
    /// Guest kicks deferred by the token-bucket throttle (delivered late,
    /// coalesced with the rescheduled wake).
    pub throttled_kicks: u64,
    /// Poll-loop turns ended early because the VM's service budget ran
    /// out (the deferred queue work waited for the next window).
    pub budget_deferrals: u64,
    /// Spurious kicks observed while the handler was already polling
    /// (kick storms; ignored, but they are what charges the throttle).
    pub spurious_kicks: u64,
    /// Spurious EOI writes (EOI storms) absorbed by the interrupt path.
    pub spurious_eois: u64,
    /// Ring-validation violations that quarantined one of this VM's
    /// queues.
    pub quarantines: u64,
    /// Queue resets the guest performed to leave quarantine.
    pub resets: u64,
    /// Exposed-but-unprocessed buffers discarded at quarantine time.
    pub quarantine_dropped: u64,
}

impl BackpressureStats {
    /// Sum of every shed/deferred/absorbed event (a quick "was this VM
    /// throttled at all" test).
    pub fn total(&self) -> u64 {
        self.throttled_kicks
            + self.budget_deferrals
            + self.spurious_kicks
            + self.spurious_eois
            + self.quarantines
            + self.resets
            + self.quarantine_dropped
    }

    /// Merge another ledger into this one (per-VM → per-run aggregation).
    pub fn merge(&mut self, other: &BackpressureStats) {
        self.throttled_kicks += other.throttled_kicks;
        self.budget_deferrals += other.budget_deferrals;
        self.spurious_kicks += other.spurious_kicks;
        self.spurious_eois += other.spurious_eois;
        self.quarantines += other.quarantines;
        self.resets += other.resets;
        self.quarantine_dropped += other.quarantine_dropped;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_all_zero() {
        let s = BackpressureStats::default();
        assert_eq!(s.total(), 0);
        assert_eq!(s, BackpressureStats::default());
    }

    #[test]
    fn total_and_merge_cover_every_field() {
        let a = BackpressureStats {
            throttled_kicks: 1,
            budget_deferrals: 2,
            spurious_kicks: 3,
            spurious_eois: 4,
            quarantines: 5,
            resets: 6,
            quarantine_dropped: 7,
        };
        assert_eq!(a.total(), 28);
        let mut b = a;
        b.merge(&a);
        assert_eq!(b.total(), 56);
        assert_eq!(b.throttled_kicks, 2);
        assert_eq!(b.quarantine_dropped, 14);
    }
}
