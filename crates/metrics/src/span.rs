//! Event-path flight recorder: per-interrupt causal spans with
//! stage-level latency attribution.
//!
//! ES2's whole argument (§III–§VI) is a *decomposition* of virtual I/O
//! event latency: notification cost, backend service time,
//! vCPU-scheduling delay, injection/EOI cost. This module is the
//! recording substrate for that decomposition. The testbed threads a
//! correlation ID through every guest→host request (kick → pickup →
//! vhost service) and every host→guest interrupt (MSI raise →
//! redirection → delivery → handler → EOI) and reports each stage's
//! duration here.
//!
//! Determinism contract: the recorder consumes only *sim-time*
//! nanoseconds — never the wall clock, never an RNG — so its output is a
//! pure function of the run spec and is bitwise identical at any
//! `ES2_THREADS`. It is also strictly observational: nothing in here
//! feeds back into the simulation, which is what lets `verify.sh` demand
//! that traced and untraced runs produce byte-identical figures.

use crate::Histogram;

/// One attributable stage of the event path. The first four cover the
/// guest→host request direction, the rest the host→guest interrupt
/// direction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Stage {
    /// Cost of the I/O-instruction VM exit a guest kick takes
    /// (notification mode only — polling mode has no kick at all).
    KickExit,
    /// Kick signal → vhost handler turn begins (exit-driven wakeup).
    ExitNotify,
    /// Quota-requeue → handler turn begins (the hybrid scheme's polled
    /// pickup; replaces [`Stage::ExitNotify`] while polling persists).
    PolledPickup,
    /// One vhost handler turn, dispatch to completion (backend service).
    VhostService,
    /// Portion of [`Stage::Delivery`] the interrupt spent waiting because
    /// its target vCPU was off-core — the component §IV's intelligent
    /// redirection exists to remove.
    SchedDelay,
    /// MSI raise → guest handler entry, total.
    Delivery,
    /// [`Stage::Delivery`] minus [`Stage::SchedDelay`]: IPI/injection
    /// mechanics (kick-IPI + delivery exit when emulated, posted-sync
    /// when exit-less).
    Injection,
    /// Guest interrupt handler, entry to EOI (NAPI repolls included).
    Handler,
    /// EOI cost: an APIC-access exit when emulated, zero when the vAPIC
    /// completes it in guest mode.
    Eoi,
}

impl Stage {
    /// Number of stages.
    pub const COUNT: usize = 9;

    /// Every stage, in path order.
    pub const ALL: [Stage; Stage::COUNT] = [
        Stage::KickExit,
        Stage::ExitNotify,
        Stage::PolledPickup,
        Stage::VhostService,
        Stage::SchedDelay,
        Stage::Delivery,
        Stage::Injection,
        Stage::Handler,
        Stage::Eoi,
    ];

    /// Histogram index.
    #[inline]
    pub fn idx(self) -> usize {
        self as usize
    }

    /// Stable snake-free label used in reports and JSON keys.
    pub fn name(self) -> &'static str {
        match self {
            Stage::KickExit => "kick-exit",
            Stage::ExitNotify => "exit-notify",
            Stage::PolledPickup => "polled-pickup",
            Stage::VhostService => "vhost-service",
            Stage::SchedDelay => "sched-delay",
            Stage::Delivery => "delivery",
            Stage::Injection => "injection",
            Stage::Handler => "guest-handler",
            Stage::Eoi => "eoi",
        }
    }

    /// Which direction of the event path the stage belongs to.
    pub fn direction(self) -> &'static str {
        match self {
            Stage::KickExit | Stage::ExitNotify | Stage::PolledPickup | Stage::VhostService => {
                "guest-to-host"
            }
            _ => "host-to-guest",
        }
    }
}

/// Span-level annotations: everything interesting that happened to spans
/// beyond their stage durations. All counters are lifetime (not gated on
/// the measurement window) — they are an audit trail, not a rate.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SpanNotes {
    /// Interrupt spans opened (one per non-coalesced MSI raise).
    pub irqs_opened: u64,
    /// Interrupt spans that reached EOI.
    pub irqs_closed: u64,
    /// Raises whose target was chosen by ES2 redirection (≠ affinity).
    pub redirected: u64,
    /// Raises that found their target vCPU off-core and had to wait.
    pub parked: u64,
    /// Parked interrupts migrated to a sibling that came online sooner.
    pub migrated: u64,
    /// MSI raises coalesced into an already-pending span (same vector,
    /// same vCPU — the IRR absorbs them).
    pub coalesced_irqs: u64,
    /// Of the coalesced raises, how many were watchdog re-raises.
    pub watchdog_reraises: u64,
    /// Posted→emulated degradations observed while spans were in flight.
    pub degradations: u64,
    /// Request spans opened (one per non-coalesced kick signal).
    pub reqs_opened: u64,
    /// Request spans picked up by a vhost handler turn.
    pub reqs_closed: u64,
    /// Kick signals coalesced into an already-queued handler.
    pub coalesced_kicks: u64,
    /// Kick signals that were fault-delayed before reaching the worker.
    pub delayed_kicks: u64,
    /// Kick signals issued by the liveness watchdog (lost-kick recovery).
    pub watchdog_rekicks: u64,
    /// Interrupt spans still in flight when the run ended.
    pub unclosed_irqs: u64,
    /// Request spans still in flight when the run ended.
    pub unclosed_reqs: u64,
}

impl SpanNotes {
    /// Accumulate another annotation set (lane merging).
    pub fn merge(&mut self, o: &SpanNotes) {
        self.irqs_opened += o.irqs_opened;
        self.irqs_closed += o.irqs_closed;
        self.redirected += o.redirected;
        self.parked += o.parked;
        self.migrated += o.migrated;
        self.coalesced_irqs += o.coalesced_irqs;
        self.watchdog_reraises += o.watchdog_reraises;
        self.degradations += o.degradations;
        self.reqs_opened += o.reqs_opened;
        self.reqs_closed += o.reqs_closed;
        self.coalesced_kicks += o.coalesced_kicks;
        self.delayed_kicks += o.delayed_kicks;
        self.watchdog_rekicks += o.watchdog_rekicks;
        self.unclosed_irqs += o.unclosed_irqs;
        self.unclosed_reqs += o.unclosed_reqs;
    }
}

/// One bounded-log entry for the Chrome-trace export. `dur_ns == 0`
/// renders as an instant event, anything else as a complete slice.
#[derive(Clone, Copy, Debug)]
pub struct SpanEvent {
    /// Sim-time nanoseconds of the event start.
    pub at_ns: u64,
    /// VM the event belongs to (Chrome `pid`).
    pub vm: u32,
    /// Track within the VM — vCPU index or vhost handler (Chrome `tid`).
    pub track: u32,
    /// Correlation ID (0 = none).
    pub corr: u64,
    /// Static label.
    pub name: &'static str,
    /// Slice duration (0 = instant).
    pub dur_ns: u64,
    /// One free payload value, surfaced in `args` (meaning depends on
    /// `name`; e.g. how long a parked target had already been off-core).
    pub arg: u64,
}

/// Per-VM stage histograms. A wrapper struct keeps the array's meaning
/// explicit and gives the per-stage accessor a home.
#[derive(Clone, Debug)]
pub struct StageHists {
    hists: [Histogram; Stage::COUNT],
}

impl Default for StageHists {
    fn default() -> Self {
        StageHists {
            hists: std::array::from_fn(|_| Histogram::new()),
        }
    }
}

impl StageHists {
    /// The histogram for one stage.
    pub fn stage(&self, s: Stage) -> &Histogram {
        &self.hists[s.idx()]
    }

    fn stage_mut(&mut self, s: Stage) -> &mut Histogram {
        &mut self.hists[s.idx()]
    }
}

/// The flight recorder: allocates correlation IDs, accumulates
/// per-(vm, stage) duration histograms, span annotations, and a bounded
/// event log. One recorder per testbed `Machine`; dropped wholesale when
/// tracing is off, so the disabled cost is a single `Option` check.
#[derive(Clone, Debug)]
pub struct SpanRecorder {
    next_corr: u64,
    vms: Vec<StageHists>,
    notes: SpanNotes,
    events: Vec<SpanEvent>,
    event_capacity: usize,
    events_dropped: u64,
}

impl SpanRecorder {
    /// A recorder for `num_vms` VMs with room for `event_capacity`
    /// Chrome-trace events (0 disables the event log entirely).
    pub fn new(num_vms: usize, event_capacity: usize) -> Self {
        SpanRecorder {
            next_corr: 0,
            vms: (0..num_vms).map(|_| StageHists::default()).collect(),
            notes: SpanNotes::default(),
            events: Vec::new(),
            event_capacity,
            events_dropped: 0,
        }
    }

    /// Allocate the next correlation ID (monotonic from 1; 0 means
    /// "none" everywhere corr IDs are threaded).
    pub fn alloc_corr(&mut self) -> u64 {
        self.next_corr += 1;
        self.next_corr
    }

    /// Record one stage duration sample for a VM.
    pub fn record(&mut self, vm: u32, stage: Stage, ns: u64) {
        self.vms[vm as usize].stage_mut(stage).record(ns);
    }

    /// Mutable access to the annotation counters.
    pub fn notes_mut(&mut self) -> &mut SpanNotes {
        &mut self.notes
    }

    /// Append one event to the bounded log; counts drops past capacity
    /// instead of silently truncating.
    pub fn event(&mut self, ev: SpanEvent) {
        if self.events.len() < self.event_capacity {
            self.events.push(ev);
        } else {
            self.events_dropped += 1;
        }
    }

    /// Finish recording and produce the immutable report.
    pub fn into_report(self) -> SpanReport {
        SpanReport {
            vms: self.vms,
            notes: self.notes,
            events: self.events,
            events_dropped: self.events_dropped,
        }
    }
}

/// Everything one run's flight recorder measured.
#[derive(Clone, Debug)]
pub struct SpanReport {
    /// Per-VM stage histograms (durations in sim-time nanoseconds,
    /// samples gated on the measurement window).
    pub vms: Vec<StageHists>,
    /// Span annotations (lifetime counters).
    pub notes: SpanNotes,
    /// Bounded event log for the Chrome-trace export.
    pub events: Vec<SpanEvent>,
    /// Events dropped once the log filled.
    pub events_dropped: u64,
}

impl SpanReport {
    /// Stage histogram of one VM.
    pub fn stage(&self, vm: usize, s: Stage) -> &Histogram {
        self.vms[vm].stage(s)
    }

    /// One stage merged across every VM.
    pub fn merged_stage(&self, s: Stage) -> Histogram {
        let mut h = Histogram::new();
        for vm in &self.vms {
            h.merge(vm.stage(s));
        }
        h
    }

    /// Merge another report's recorder state after this one's — the
    /// deterministic per-lane tracer-ring merge for sharded runs. The
    /// other report's VMs are appended in lane order (reconstructing
    /// global VM indexing for contiguous lane blocks) with `vm_offset`
    /// added to its event log's VM ids; note counters sum; event logs
    /// concatenate in lane order (each lane's log is itself in sim-time
    /// order, and the merge happens at the window boundary — after both
    /// lanes finished — so the result is a pure function of the
    /// simulation, never of thread timing).
    pub fn absorb(&mut self, other: SpanReport, vm_offset: u32) {
        self.vms.extend(other.vms);
        self.notes.merge(&other.notes);
        self.events.extend(other.events.into_iter().map(|mut e| {
            e.vm += vm_offset;
            e
        }));
        self.events_dropped += other.events_dropped;
    }

    /// Render the bounded event log in the Chrome tracing (`chrome://
    /// tracing`, Perfetto) JSON array format. Timestamps are sim-time
    /// microseconds; `pid` is the VM, `tid` the track within it.
    pub fn chrome_trace_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n");
        for (i, ev) in self.events.iter().enumerate() {
            let ph = if ev.dur_ns == 0 { "i" } else { "X" };
            out.push_str(&format!(
                "  {{\"name\": \"{}\", \"ph\": \"{}\", \"ts\": {}.{:03}, ",
                ev.name,
                ph,
                ev.at_ns / 1_000,
                ev.at_ns % 1_000,
            ));
            if ev.dur_ns > 0 {
                out.push_str(&format!(
                    "\"dur\": {}.{:03}, ",
                    ev.dur_ns / 1_000,
                    ev.dur_ns % 1_000
                ));
            }
            if ph == "i" {
                out.push_str("\"s\": \"t\", ");
            }
            out.push_str(&format!(
                "\"pid\": {}, \"tid\": {}, \"args\": {{\"corr\": {}, \"arg\": {}}}}}{}\n",
                ev.vm,
                ev.track,
                ev.corr,
                ev.arg,
                if i + 1 < self.events.len() { "," } else { "" }
            ));
        }
        out.push_str("]}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corr_ids_are_monotonic_from_one() {
        let mut r = SpanRecorder::new(1, 0);
        assert_eq!(r.alloc_corr(), 1);
        assert_eq!(r.alloc_corr(), 2);
        assert_eq!(r.alloc_corr(), 3);
    }

    #[test]
    fn stages_record_into_per_vm_histograms() {
        let mut r = SpanRecorder::new(2, 0);
        r.record(0, Stage::Delivery, 1_000);
        r.record(0, Stage::Delivery, 3_000);
        r.record(1, Stage::Delivery, 9_000);
        r.record(1, Stage::Eoi, 0);
        let rep = r.into_report();
        assert_eq!(rep.stage(0, Stage::Delivery).count(), 2);
        assert_eq!(rep.stage(1, Stage::Delivery).count(), 1);
        assert_eq!(rep.stage(1, Stage::Eoi).count(), 1);
        assert_eq!(rep.stage(1, Stage::Eoi).max(), 0);
        let merged = rep.merged_stage(Stage::Delivery);
        assert_eq!(merged.count(), 3);
        assert!(merged.max() >= 9_000);
    }

    #[test]
    fn event_log_is_bounded_and_counts_drops() {
        let mut r = SpanRecorder::new(1, 2);
        for i in 0..5 {
            r.event(SpanEvent {
                at_ns: i * 100,
                vm: 0,
                track: 0,
                corr: i,
                name: "irq",
                dur_ns: 10,
                arg: 0,
            });
        }
        let rep = r.into_report();
        assert_eq!(rep.events.len(), 2);
        assert_eq!(rep.events_dropped, 3);
        // The log keeps the oldest events (a bounded prefix window).
        assert_eq!(rep.events[0].at_ns, 0);
        assert_eq!(rep.events[1].at_ns, 100);
    }

    #[test]
    fn chrome_json_has_slices_and_instants() {
        let mut r = SpanRecorder::new(1, 8);
        r.event(SpanEvent {
            at_ns: 1_234,
            vm: 0,
            track: 1,
            corr: 7,
            name: "irq-rx",
            dur_ns: 2_500,
            arg: 0,
        });
        r.event(SpanEvent {
            at_ns: 4_000,
            vm: 0,
            track: 1,
            corr: 7,
            name: "wd-reraise",
            dur_ns: 0,
            arg: 42,
        });
        let json = r.into_report().chrome_trace_json();
        assert!(json.contains("\"name\": \"irq-rx\""), "{json}");
        assert!(json.contains("\"ph\": \"X\""), "{json}");
        assert!(json.contains("\"dur\": 2.500"), "{json}");
        assert!(json.contains("\"ph\": \"i\""), "{json}");
        assert!(json.contains("\"ts\": 1.234"), "{json}");
        assert!(json.contains("\"arg\": 42"), "{json}");
        assert!(json.ends_with("]}\n"), "{json}");
    }

    #[test]
    fn stage_names_and_directions_are_stable() {
        assert_eq!(Stage::ALL.len(), Stage::COUNT);
        for (i, s) in Stage::ALL.iter().enumerate() {
            assert_eq!(s.idx(), i);
        }
        assert_eq!(Stage::SchedDelay.name(), "sched-delay");
        assert_eq!(Stage::KickExit.direction(), "guest-to-host");
        assert_eq!(Stage::Eoi.direction(), "host-to-guest");
    }
}
