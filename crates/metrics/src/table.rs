//! Plain-text table rendering for the repro binaries.
//!
//! The repro harness prints the same rows the paper reports; this renderer
//! keeps that output aligned and diff-friendly.

use std::fmt::Write as _;

/// A simple column-aligned text table.
#[derive(Clone, Debug, Default)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with a title and column headers.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Table {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row; must have the same arity as the header.
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row arity must match header"
        );
        self.rows.push(cells.to_vec());
        self
    }

    /// Convenience: append a row of displayable cells.
    pub fn row_display<D: std::fmt::Display>(&mut self, cells: &[D]) -> &mut Self {
        let cells: Vec<String> = cells.iter().map(|c| c.to_string()).collect();
        self.row(&cells)
    }

    /// Number of data rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Render the table to a string.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        if !self.title.is_empty() {
            let _ = writeln!(out, "== {} ==", self.title);
        }
        let render_row = |out: &mut String, cells: &[String]| {
            for (i, cell) in cells.iter().enumerate() {
                let sep = if i + 1 == ncols { "\n" } else { "  " };
                let _ = write!(out, "{:<width$}{}", cell, sep, width = widths[i]);
            }
        };
        render_row(&mut out, &self.header);
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            render_row(&mut out, row);
        }
        out
    }
}

/// Format a float with engineering-style precision for rates ("129.8k").
pub fn fmt_rate(v: f64) -> String {
    if v >= 1e6 {
        format!("{:.2}M", v / 1e6)
    } else if v >= 1e3 {
        format!("{:.1}k", v / 1e3)
    } else {
        format!("{v:.1}")
    }
}

/// Format a fraction of 1 as a percentage string.
pub fn fmt_pct(v: f64) -> String {
    format!("{v:.1}%")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.row(&["a".into(), "1".into()]);
        t.row(&["long-name".into(), "22".into()]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        let lines: Vec<&str> = s.lines().collect();
        // header + separator + 2 rows
        assert_eq!(lines.len(), 5);
        // "value" column starts at the same offset in each data line.
        let off = lines[1].find("value").unwrap();
        assert_eq!(&lines[3][off..off + 1], "1");
        assert_eq!(&lines[4][off..off + 2], "22");
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn rejects_wrong_arity() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(&["only-one".into()]);
    }

    #[test]
    fn row_display_accepts_numbers() {
        let mut t = Table::new("", &["a", "b"]);
        t.row_display(&[1.5, 2.25]);
        assert_eq!(t.num_rows(), 1);
        assert!(t.render().contains("2.25"));
    }

    #[test]
    fn rate_formatting() {
        assert_eq!(fmt_rate(130_840.0), "130.8k");
        assert_eq!(fmt_rate(2_500_000.0), "2.50M");
        assert_eq!(fmt_rate(42.0), "42.0");
        assert_eq!(fmt_pct(53.6), "53.6%");
    }
}
