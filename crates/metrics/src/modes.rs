//! Per-VM interrupt delivery-mode accounting.
//!
//! The graceful-degradation story needs an audit trail: when
//! posted-interrupt hardware becomes unavailable for a VM mid-run, its
//! deliveries must *measurably* move from the posted path to the emulated
//! kick-IPI/EOI path — and only for that VM. [`ModeAccounting`] counts
//! deliveries per VM per path so the chaos suite (and operators) can
//! assert exactly that, rather than inferring it from aggregate exit
//! rates.

/// Delivery counts for one VM.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct VmModeCounts {
    /// Deliveries that took the posted-interrupt path (notify or posted).
    pub posted: u64,
    /// Deliveries that took the emulated-LAPIC path (kick or pending-entry).
    pub emulated: u64,
    /// Times a vCPU of this VM degraded posted→emulated.
    pub degradations: u64,
}

/// Per-VM delivery-mode ledger.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ModeAccounting {
    per_vm: Vec<VmModeCounts>,
}

impl ModeAccounting {
    /// A ledger for `num_vms` VMs.
    pub fn new(num_vms: usize) -> Self {
        ModeAccounting {
            per_vm: vec![VmModeCounts::default(); num_vms],
        }
    }

    fn slot(&mut self, vm: usize) -> &mut VmModeCounts {
        if vm >= self.per_vm.len() {
            self.per_vm.resize(vm + 1, VmModeCounts::default());
        }
        &mut self.per_vm[vm]
    }

    /// Record a posted-path delivery for `vm`.
    pub fn note_posted(&mut self, vm: usize) {
        self.slot(vm).posted += 1;
    }

    /// Record an emulated-path delivery for `vm`.
    pub fn note_emulated(&mut self, vm: usize) {
        self.slot(vm).emulated += 1;
    }

    /// Record one vCPU of `vm` degrading posted→emulated.
    pub fn note_degradation(&mut self, vm: usize) {
        self.slot(vm).degradations += 1;
    }

    /// Counts for `vm` (zeros if never seen).
    pub fn vm(&self, vm: usize) -> VmModeCounts {
        self.per_vm.get(vm).copied().unwrap_or_default()
    }

    /// Number of VMs tracked.
    pub fn num_vms(&self) -> usize {
        self.per_vm.len()
    }

    /// Sum over all VMs.
    pub fn totals(&self) -> VmModeCounts {
        let mut t = VmModeCounts::default();
        for c in &self.per_vm {
            t.posted += c.posted;
            t.emulated += c.emulated;
            t.degradations += c.degradations;
        }
        t
    }

    /// Append another ledger's VMs after this one's (lane merging: lane
    /// `k`'s VM 0 becomes global VM `base_k`, so concatenating ledgers
    /// in lane order reconstructs the global per-VM indexing).
    pub fn append(&mut self, other: &ModeAccounting) {
        self.per_vm.extend_from_slice(&other.per_vm);
    }

    /// Remove and return `vm`'s row, leaving zeros behind (live migration:
    /// the ledger travels with the VM; the vacated slot starts fresh).
    pub fn take_vm(&mut self, vm: usize) -> VmModeCounts {
        std::mem::take(self.slot(vm))
    }

    /// Fold `counts` into `vm`'s row (live migration: the arriving VM's
    /// ledger lands on top of whatever the target slot accumulated).
    pub fn merge_vm(&mut self, vm: usize, counts: VmModeCounts) {
        let s = self.slot(vm);
        s.posted += counts.posted;
        s.emulated += counts.emulated;
        s.degradations += counts.degradations;
    }

    /// VMs with at least one emulated-path delivery.
    pub fn vms_with_emulated_deliveries(&self) -> Vec<usize> {
        self.per_vm
            .iter()
            .enumerate()
            .filter(|(_, c)| c.emulated > 0)
            .map(|(vm, _)| vm)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_are_per_vm() {
        let mut m = ModeAccounting::new(3);
        m.note_posted(0);
        m.note_posted(0);
        m.note_emulated(1);
        m.note_degradation(1);
        assert_eq!(m.vm(0).posted, 2);
        assert_eq!(m.vm(0).emulated, 0);
        assert_eq!(m.vm(1).emulated, 1);
        assert_eq!(m.vm(1).degradations, 1);
        assert_eq!(m.vm(2), VmModeCounts::default());
        assert_eq!(m.vms_with_emulated_deliveries(), vec![1]);
    }

    #[test]
    fn totals_sum_all_vms() {
        let mut m = ModeAccounting::new(2);
        m.note_posted(0);
        m.note_emulated(0);
        m.note_emulated(1);
        let t = m.totals();
        assert_eq!((t.posted, t.emulated, t.degradations), (1, 2, 0));
    }

    #[test]
    fn out_of_range_vm_grows_the_ledger() {
        let mut m = ModeAccounting::new(1);
        m.note_emulated(5);
        assert_eq!(m.num_vms(), 6);
        assert_eq!(m.vm(5).emulated, 1);
        assert_eq!(m.vm(9), VmModeCounts::default(), "reads never grow");
    }
}
