//! Sampled `(time, value)` series.
//!
//! Used for traces like Fig. 7 (ping RTT over a run) where the *series
//! shape* — not just a summary — is the result.

use es2_sim::SimTime;

/// An append-only series of `(time, value)` samples.
#[derive(Clone, Debug, Default)]
pub struct TimeSeries {
    points: Vec<(SimTime, f64)>,
}

impl TimeSeries {
    /// An empty series.
    pub fn new() -> Self {
        TimeSeries { points: Vec::new() }
    }

    /// Append a sample. Samples must arrive in non-decreasing time order
    /// (debug-asserted).
    pub fn push(&mut self, at: SimTime, value: f64) {
        debug_assert!(
            self.points.last().is_none_or(|&(t, _)| at >= t),
            "time series samples must be ordered"
        );
        self.points.push((at, value));
    }

    /// All samples in order.
    pub fn points(&self) -> &[(SimTime, f64)] {
        &self.points
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True if no samples.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Largest value (None if empty).
    pub fn max(&self) -> Option<f64> {
        self.points
            .iter()
            .map(|&(_, v)| v)
            .fold(None, |acc, v| Some(acc.map_or(v, |a: f64| a.max(v))))
    }

    /// Arithmetic mean of values (None if empty).
    pub fn mean(&self) -> Option<f64> {
        if self.points.is_empty() {
            None
        } else {
            Some(self.points.iter().map(|&(_, v)| v).sum::<f64>() / self.points.len() as f64)
        }
    }

    /// Fraction of samples with value at most `bound`.
    pub fn fraction_at_most(&self, bound: f64) -> f64 {
        if self.points.is_empty() {
            return 0.0;
        }
        self.points.iter().filter(|&&(_, v)| v <= bound).count() as f64 / self.points.len() as f64
    }

    /// Downsample to at most `n` points by keeping the max of each chunk
    /// (preserves peaks, which is what latency traces care about).
    pub fn downsample_max(&self, n: usize) -> TimeSeries {
        if n == 0 || self.points.len() <= n {
            return self.clone();
        }
        let chunk = self.points.len().div_ceil(n);
        let mut out = TimeSeries::new();
        for c in self.points.chunks(chunk) {
            let &(t_last, _) = c.last().expect("nonempty chunk");
            let vmax = c.iter().map(|&(_, v)| v).fold(f64::NEG_INFINITY, f64::max);
            out.push(t_last, vmax);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use es2_sim::SimDuration;

    fn t(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    #[test]
    fn push_and_read_back() {
        let mut s = TimeSeries::new();
        s.push(t(1), 1.0);
        s.push(t(2), 3.0);
        assert_eq!(s.len(), 2);
        assert_eq!(s.points()[1], (t(2), 3.0));
    }

    #[test]
    fn stats() {
        let mut s = TimeSeries::new();
        for (i, v) in [1.0, 5.0, 3.0].into_iter().enumerate() {
            s.push(t(i as u64), v);
        }
        assert_eq!(s.max(), Some(5.0));
        assert_eq!(s.mean(), Some(3.0));
        assert!((s.fraction_at_most(3.0) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_stats() {
        let s = TimeSeries::new();
        assert!(s.is_empty());
        assert_eq!(s.max(), None);
        assert_eq!(s.mean(), None);
        assert_eq!(s.fraction_at_most(1.0), 0.0);
    }

    #[test]
    fn downsample_preserves_peaks() {
        let mut s = TimeSeries::new();
        for i in 0..100 {
            s.push(t(i), if i == 57 { 99.0 } else { 1.0 });
        }
        let d = s.downsample_max(10);
        assert_eq!(d.len(), 10);
        assert_eq!(d.max(), Some(99.0));
    }

    #[test]
    fn downsample_noop_when_small() {
        let mut s = TimeSeries::new();
        s.push(t(0), 1.0);
        let d = s.downsample_max(10);
        assert_eq!(d.len(), 1);
    }
}
