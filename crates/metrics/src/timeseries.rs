//! Sampled `(time, value)` series.
//!
//! Used for traces like Fig. 7 (ping RTT over a run) where the *series
//! shape* — not just a summary — is the result.

use es2_sim::SimTime;

/// An append-only series of `(time, value)` samples.
#[derive(Clone, Debug, Default)]
pub struct TimeSeries {
    points: Vec<(SimTime, f64)>,
}

impl TimeSeries {
    /// An empty series.
    pub fn new() -> Self {
        TimeSeries { points: Vec::new() }
    }

    /// Append a sample. Samples must arrive in non-decreasing time order
    /// (debug-asserted).
    pub fn push(&mut self, at: SimTime, value: f64) {
        debug_assert!(
            self.points.last().is_none_or(|&(t, _)| at >= t),
            "time series samples must be ordered"
        );
        self.points.push((at, value));
    }

    /// All samples in order.
    pub fn points(&self) -> &[(SimTime, f64)] {
        &self.points
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True if no samples.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Largest value (None if empty).
    pub fn max(&self) -> Option<f64> {
        self.points
            .iter()
            .map(|&(_, v)| v)
            .fold(None, |acc, v| Some(acc.map_or(v, |a: f64| a.max(v))))
    }

    /// Arithmetic mean of values (None if empty).
    pub fn mean(&self) -> Option<f64> {
        if self.points.is_empty() {
            None
        } else {
            Some(self.points.iter().map(|&(_, v)| v).sum::<f64>() / self.points.len() as f64)
        }
    }

    /// Fraction of samples with value at most `bound`.
    pub fn fraction_at_most(&self, bound: f64) -> f64 {
        if self.points.is_empty() {
            return 0.0;
        }
        self.points.iter().filter(|&&(_, v)| v <= bound).count() as f64 / self.points.len() as f64
    }

    /// Reduce the series over fixed-width windows anchored at
    /// `SimTime::ZERO`: every sample with `t` in
    /// `[k*width, (k+1)*width)` lands in window `k`, so a sample sitting
    /// exactly on a boundary opens the *next* window. `f` folds each
    /// non-empty window's values; empty windows are skipped (the output
    /// is one point per occupied window, stamped at the window start).
    pub fn window_reduce<F>(&self, width: es2_sim::SimDuration, mut f: F) -> TimeSeries
    where
        F: FnMut(&[f64]) -> f64,
    {
        let width_ns = width.as_nanos().max(1);
        let mut out = TimeSeries::new();
        let mut vals: Vec<f64> = Vec::new();
        let mut cur: Option<u64> = None;
        for &(at, v) in &self.points {
            let k = at.as_nanos() / width_ns;
            if cur != Some(k) {
                if let Some(prev) = cur.take() {
                    out.push(window_start(prev, width_ns), f(&vals));
                    vals.clear();
                }
                cur = Some(k);
            }
            vals.push(v);
        }
        if let Some(prev) = cur {
            out.push(window_start(prev, width_ns), f(&vals));
        }
        out
    }

    /// `window_reduce` with the per-window reduction fixed to the
    /// nearest-rank `q`-quantile (`q` in `[0, 1]`; `q = 0.99` gives the
    /// windowed p99 a latency SLO wants).
    pub fn window_quantile(&self, width: es2_sim::SimDuration, q: f64) -> TimeSeries {
        self.window_reduce(width, |vals| quantile(vals, q))
    }

    /// `window_reduce` with the per-window reduction fixed to max.
    pub fn window_max(&self, width: es2_sim::SimDuration) -> TimeSeries {
        self.window_reduce(width, |vals| {
            vals.iter().copied().fold(f64::NEG_INFINITY, f64::max)
        })
    }

    /// Downsample to at most `n` points by keeping the max of each chunk
    /// (preserves peaks, which is what latency traces care about).
    pub fn downsample_max(&self, n: usize) -> TimeSeries {
        if n == 0 || self.points.len() <= n {
            return self.clone();
        }
        let chunk = self.points.len().div_ceil(n);
        let mut out = TimeSeries::new();
        for c in self.points.chunks(chunk) {
            let &(t_last, _) = c.last().expect("nonempty chunk");
            let vmax = c.iter().map(|&(_, v)| v).fold(f64::NEG_INFINITY, f64::max);
            out.push(t_last, vmax);
        }
        out
    }
}

/// Start instant of window `k` under `width_ns`-wide windows.
fn window_start(k: u64, width_ns: u64) -> SimTime {
    SimTime::from_nanos(k * width_ns)
}

/// Nearest-rank quantile of `vals` (`q` clamped to `[0, 1]`; NaN-free
/// input assumed, as all series here are sim-derived). Empty input
/// yields 0.0 so callers need no special case.
pub fn quantile(vals: &[f64], q: f64) -> f64 {
    if vals.is_empty() {
        return 0.0;
    }
    let mut sorted: Vec<f64> = vals.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("sim values are not NaN"));
    let q = q.clamp(0.0, 1.0);
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

#[cfg(test)]
mod tests {
    use super::*;
    use es2_sim::SimDuration;

    fn t(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    #[test]
    fn push_and_read_back() {
        let mut s = TimeSeries::new();
        s.push(t(1), 1.0);
        s.push(t(2), 3.0);
        assert_eq!(s.len(), 2);
        assert_eq!(s.points()[1], (t(2), 3.0));
    }

    #[test]
    fn stats() {
        let mut s = TimeSeries::new();
        for (i, v) in [1.0, 5.0, 3.0].into_iter().enumerate() {
            s.push(t(i as u64), v);
        }
        assert_eq!(s.max(), Some(5.0));
        assert_eq!(s.mean(), Some(3.0));
        assert!((s.fraction_at_most(3.0) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_stats() {
        let s = TimeSeries::new();
        assert!(s.is_empty());
        assert_eq!(s.max(), None);
        assert_eq!(s.mean(), None);
        assert_eq!(s.fraction_at_most(1.0), 0.0);
    }

    #[test]
    fn downsample_preserves_peaks() {
        let mut s = TimeSeries::new();
        for i in 0..100 {
            s.push(t(i), if i == 57 { 99.0 } else { 1.0 });
        }
        let d = s.downsample_max(10);
        assert_eq!(d.len(), 10);
        assert_eq!(d.max(), Some(99.0));
    }

    #[test]
    fn downsample_noop_when_small() {
        let mut s = TimeSeries::new();
        s.push(t(0), 1.0);
        let d = s.downsample_max(10);
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn window_reduce_empty_series() {
        let s = TimeSeries::new();
        let r = s.window_reduce(SimDuration::from_millis(1), |v| v.len() as f64);
        assert!(r.is_empty());
    }

    #[test]
    fn window_reduce_single_sample() {
        let mut s = TimeSeries::new();
        s.push(t(3), 7.0);
        let r = s.window_reduce(SimDuration::from_millis(2), |v| v.iter().sum());
        assert_eq!(r.points(), &[(t(2), 7.0)]);
    }

    #[test]
    fn window_boundary_sample_opens_next_window() {
        // Samples at 0.5 ms and 0.9 ms share window 0; the sample at
        // exactly 1.0 ms sits on the boundary and must open window 1
        // (half-open [k, k+1) windows).
        let mut s = TimeSeries::new();
        s.push(SimTime::from_nanos(500_000), 1.0);
        s.push(SimTime::from_nanos(900_000), 2.0);
        s.push(t(1), 4.0);
        let r = s.window_reduce(SimDuration::from_millis(1), |v| v.iter().sum());
        assert_eq!(r.points(), &[(t(0), 3.0), (t(1), 4.0)]);
    }

    #[test]
    fn window_reduce_skips_empty_windows() {
        let mut s = TimeSeries::new();
        s.push(t(0), 1.0);
        s.push(t(5), 2.0);
        let r = s.window_reduce(SimDuration::from_millis(1), |v| v.iter().sum());
        assert_eq!(r.points(), &[(t(0), 1.0), (t(5), 2.0)]);
    }

    #[test]
    fn window_quantile_and_max() {
        let mut s = TimeSeries::new();
        for i in 0..100 {
            // All in one 1 ms window: values 1..=100.
            s.push(SimTime::from_nanos(i * 1_000), (i + 1) as f64);
        }
        let p99 = s.window_quantile(SimDuration::from_millis(1), 0.99);
        assert_eq!(p99.points(), &[(t(0), 99.0)]);
        let mx = s.window_max(SimDuration::from_millis(1));
        assert_eq!(mx.points(), &[(t(0), 100.0)]);
    }

    #[test]
    fn quantile_nearest_rank_edges() {
        assert_eq!(quantile(&[], 0.5), 0.0);
        assert_eq!(quantile(&[42.0], 0.0), 42.0);
        assert_eq!(quantile(&[42.0], 1.0), 42.0);
        let v = [3.0, 1.0, 2.0, 4.0];
        assert_eq!(quantile(&v, 0.5), 2.0);
        assert_eq!(quantile(&v, 0.75), 3.0);
        assert_eq!(quantile(&v, 1.0), 4.0);
    }
}
