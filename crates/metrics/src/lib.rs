//! Measurement infrastructure for ES2 experiments.
//!
//! This crate reproduces the *measurement methodology* of the paper's
//! evaluation (§VI):
//!
//! * [`counter`] — event counters and per-second rates (the `perf-kvm`
//!   style exit statistics of Table I / Fig. 5),
//! * [`tig`] — time-in-guest accounting ("calculated by summing up the time
//!   of each VM entry and exit, and then dividing the result by the total
//!   elapsed time"),
//! * [`histogram`] — log-linear latency histograms (ping RTT, connection
//!   times),
//! * [`summary`] — streaming mean/variance/min/max (Welford),
//! * [`timeseries`] — sampled `(time, value)` series (Fig. 7's RTT trace),
//! * [`span`] — the event-path flight recorder: per-interrupt causal
//!   spans with stage-level latency attribution (`repro --trace`),
//! * [`telemetry`] — the windowed telemetry pipeline: fixed-width
//!   sim-time windows of per-VM/per-queue/per-worker gauges, the SLO
//!   burn-rate engine and the causal annotation stream (`repro
//!   --telemetry`),
//! * [`table`] — plain-text table rendering for the repro binaries,
//! * [`backpressure`] — the per-VM overload-control ledger (shed kicks,
//!   deferred poll budget, quarantines) for the hostile-guest experiments.

pub mod backpressure;
pub mod counter;
pub mod ev_profile;
pub mod histogram;
pub mod modes;
pub mod span;
pub mod summary;
pub mod table;
pub mod telemetry;
pub mod tig;
pub mod timeseries;

pub use backpressure::BackpressureStats;
pub use counter::{Counter, RateWindow};
pub use histogram::Histogram;
pub use modes::{ModeAccounting, VmModeCounts};
pub use span::{SpanNotes, SpanRecorder, SpanReport, Stage};
pub use summary::Summary;
pub use table::Table;
pub use telemetry::{
    Annotation, BurnAlert, SloBreach, SloMetric, SloSpec, TelemetryGeometry, TelemetryRecorder,
    TelemetryReport,
};
pub use tig::TigAccount;
pub use timeseries::TimeSeries;
