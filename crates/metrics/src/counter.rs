//! Event counters and rate windows.

use es2_sim::{SimDuration, SimTime};

/// A monotone event counter.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// A zeroed counter.
    pub const fn new() -> Self {
        Counter(0)
    }

    /// Add one.
    #[inline]
    pub fn incr(&mut self) {
        self.0 += 1;
    }

    /// Add `n`.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Current count.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0
    }

    /// Count divided by an elapsed span, in events per second.
    pub fn rate_per_sec(&self, elapsed: SimDuration) -> f64 {
        if elapsed.is_zero() {
            0.0
        } else {
            self.0 as f64 / elapsed.as_secs_f64()
        }
    }

    /// Reset to zero, returning the old value.
    pub fn take(&mut self) -> u64 {
        std::mem::take(&mut self.0)
    }
}

/// A counter observed over an explicit measurement window.
///
/// Experiments typically run a warm-up phase before opening the window so
/// that steady-state rates are reported, mirroring how `perf-kvm stat`
/// sessions are started after the benchmark ramps up.
#[derive(Clone, Debug)]
pub struct RateWindow {
    count: u64,
    window_open: Option<SimTime>,
    window_len: SimDuration,
    counted_in_window: u64,
}

impl Default for RateWindow {
    fn default() -> Self {
        Self::new()
    }
}

impl RateWindow {
    /// A window that has not been opened yet; events before `open` are
    /// counted in the lifetime total but not the window.
    pub fn new() -> Self {
        RateWindow {
            count: 0,
            window_open: None,
            window_len: SimDuration::ZERO,
            counted_in_window: 0,
        }
    }

    /// Begin the measurement window at `now`.
    pub fn open(&mut self, now: SimTime) {
        self.window_open = Some(now);
        self.counted_in_window = 0;
    }

    /// Close the window at `now`; subsequent events are excluded.
    pub fn close(&mut self, now: SimTime) {
        if let Some(open) = self.window_open.take() {
            self.window_len = now.since(open);
        }
    }

    /// Record one event at any time.
    #[inline]
    pub fn incr(&mut self) {
        self.count += 1;
        if self.window_open.is_some() {
            self.counted_in_window += 1;
        }
    }

    /// Lifetime count.
    pub fn total(&self) -> u64 {
        self.count
    }

    /// Count within the (closed) window.
    pub fn windowed(&self) -> u64 {
        self.counted_in_window
    }

    /// Events per second within the (closed) window.
    pub fn rate_per_sec(&self) -> f64 {
        if self.window_len.is_zero() {
            0.0
        } else {
            self.counted_in_window as f64 / self.window_len.as_secs_f64()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    #[test]
    fn counter_basics() {
        let mut c = Counter::new();
        c.incr();
        c.add(4);
        assert_eq!(c.get(), 5);
        assert_eq!(c.take(), 5);
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn counter_rate() {
        let mut c = Counter::new();
        c.add(500);
        assert!((c.rate_per_sec(SimDuration::from_millis(500)) - 1000.0).abs() < 1e-9);
        assert_eq!(c.rate_per_sec(SimDuration::ZERO), 0.0);
    }

    #[test]
    fn window_excludes_warmup_and_cooldown() {
        let mut w = RateWindow::new();
        w.incr(); // warm-up, excluded
        w.open(t(100));
        for _ in 0..50 {
            w.incr();
        }
        w.close(t(600)); // 0.5 s window
        w.incr(); // after close, excluded
        assert_eq!(w.total(), 52);
        assert_eq!(w.windowed(), 50);
        assert!((w.rate_per_sec() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn unopened_window_reports_zero_rate() {
        let mut w = RateWindow::new();
        w.incr();
        assert_eq!(w.rate_per_sec(), 0.0);
        assert_eq!(w.windowed(), 0);
    }

    #[test]
    fn reopening_window_resets_window_count() {
        let mut w = RateWindow::new();
        w.open(t(0));
        w.incr();
        w.close(t(100));
        w.open(t(200));
        w.incr();
        w.incr();
        w.close(t(300));
        assert_eq!(w.windowed(), 2);
        assert_eq!(w.total(), 3);
    }
}
