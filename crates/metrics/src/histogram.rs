//! Log-linear histograms for latency distributions.
//!
//! An HDR-style histogram over `u64` values (we record nanoseconds): values
//! are bucketed into a power-of-two *major* tier subdivided into a fixed
//! number of linear *minor* buckets, giving a bounded relative error
//! (~1/`SUBBUCKETS`) over the full 64-bit range with a few KiB of memory.

const SUBBUCKET_BITS: u32 = 5;
const SUBBUCKETS: u64 = 1 << SUBBUCKET_BITS; // 32 per tier => <= ~3% relative error

/// A log-linear histogram of `u64` samples.
#[derive(Clone, Debug)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

#[inline]
fn bucket_index(value: u64) -> usize {
    // Values below SUBBUCKETS map linearly; above, each power-of-two tier is
    // split into SUBBUCKETS linear sub-buckets.
    if value < SUBBUCKETS {
        return value as usize;
    }
    let tier = 63 - value.leading_zeros() as u64; // floor(log2(value)), >= SUBBUCKET_BITS
    let tier_off = tier - SUBBUCKET_BITS as u64;
    let sub = (value >> tier_off) - SUBBUCKETS; // 0..SUBBUCKETS
    ((tier_off + 1) * SUBBUCKETS + sub) as usize
}

/// Upper bound (inclusive representative) of a bucket — used to report
/// percentiles.
#[inline]
fn bucket_high(index: usize) -> u64 {
    let index = index as u64;
    if index < SUBBUCKETS {
        return index;
    }
    let tier_off = index / SUBBUCKETS - 1;
    let sub = index % SUBBUCKETS;
    ((SUBBUCKETS + sub + 1) << tier_off) - 1
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        // 64-bit range: tiers 0..=58 above the linear region.
        let nbuckets = bucket_index(u64::MAX) + 1;
        Histogram {
            buckets: vec![0; nbuckets],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Record one sample.
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.buckets[bucket_index(value)] += 1;
        self.count += 1;
        self.sum += value as u128;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Smallest recorded sample (0 if empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded sample.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The value at quantile `q` in `[0, 1]`, with bucket resolution.
    ///
    /// Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_high(i).min(self.max);
            }
        }
        self.max
    }

    /// Median (bucket resolution).
    pub fn median(&self) -> u64 {
        self.quantile(0.5)
    }

    /// 99th percentile (bucket resolution).
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        if other.count > 0 {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
    }

    /// Reset all state.
    pub fn clear(&mut self) {
        self.buckets.iter_mut().for_each(|b| *b = 0);
        self.count = 0;
        self.sum = 0;
        self.min = u64::MAX;
        self.max = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_histogram_is_benign() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.quantile(0.5), 0);
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = Histogram::new();
        for v in 0..32 {
            h.record(v);
        }
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 31);
        assert_eq!(h.quantile(1.0), 31);
        assert_eq!(h.quantile(0.0), 0);
    }

    #[test]
    fn mean_is_exact() {
        let mut h = Histogram::new();
        h.record(100);
        h.record(300);
        assert!((h.mean() - 200.0).abs() < 1e-9);
    }

    #[test]
    fn quantiles_are_ordered() {
        let mut h = Histogram::new();
        for i in 1..=1000u64 {
            h.record(i * 1000);
        }
        let p50 = h.quantile(0.5);
        let p90 = h.quantile(0.9);
        let p99 = h.quantile(0.99);
        assert!(p50 <= p90 && p90 <= p99);
        // Within bucket resolution (~3%) of the true quantile.
        assert!((p50 as f64 - 500_000.0).abs() / 500_000.0 < 0.05, "{p50}");
        assert!((p99 as f64 - 990_000.0).abs() / 990_000.0 < 0.05, "{p99}");
    }

    #[test]
    fn empty_quantiles_are_zero_at_every_q() {
        let h = Histogram::new();
        for q in [0.0, 0.25, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile(q), 0, "q={q}");
        }
        assert_eq!(h.median(), 0);
        assert_eq!(h.p99(), 0);
    }

    #[test]
    fn single_sample_is_every_quantile() {
        // The representative is capped at the recorded max, so even a
        // value deep in a wide bucket comes back exactly.
        for v in [0u64, 1, 31, 32, 1_234_567] {
            let mut h = Histogram::new();
            h.record(v);
            for q in [0.0, 0.5, 0.99, 1.0] {
                assert_eq!(h.quantile(q), v, "v={v} q={q}");
            }
            assert_eq!(h.min(), v);
            assert_eq!(h.max(), v);
        }
    }

    #[test]
    fn linear_to_log_boundary_values_are_exact() {
        // 0..32 map linearly; 32..64 sit in the first power-of-two tier
        // with one value per sub-bucket — all exact. The first lossy
        // bucket starts at 64.
        for v in [31u64, 32, 33, 63] {
            let mut h = Histogram::new();
            h.record(v);
            assert_eq!(h.quantile(1.0), v, "v={v}");
        }
        // 64 and 65 share a bucket whose representative is 65: quantiles
        // overestimate within the documented ~3% bucket resolution while
        // min() stays exact.
        let mut h = Histogram::new();
        h.record(64);
        h.record(65);
        assert_eq!(h.quantile(0.0), 65);
        assert_eq!(h.quantile(1.0), 65);
        assert_eq!(h.min(), 64);
    }

    #[test]
    fn quantile_rank_edges_pick_first_and_last_sample() {
        let mut h = Histogram::new();
        h.record(1);
        h.record(10);
        h.record(20);
        // q=0 clamps to rank 1 (the smallest sample's bucket); q=1 must
        // reach the largest.
        assert_eq!(h.quantile(0.0), 1);
        assert_eq!(h.quantile(1.0), 20);
        // Out-of-range q is clamped, not an error.
        assert_eq!(h.quantile(-1.0), 1);
        assert_eq!(h.quantile(2.0), 20);
    }

    #[test]
    fn merge_combines_counts_and_extrema() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(10);
        b.record(1_000_000);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.min(), 10);
        assert_eq!(a.max(), 1_000_000);
    }

    #[test]
    fn clear_resets() {
        let mut h = Histogram::new();
        h.record(5);
        h.clear();
        assert_eq!(h.count(), 0);
        assert_eq!(h.max(), 0);
    }

    #[test]
    fn bucket_index_is_monotone_at_boundaries() {
        let mut prev = 0;
        for exp in 0..63 {
            for delta in [0u64, 1] {
                let v = (1u64 << exp) + delta;
                let idx = bucket_index(v);
                assert!(idx >= prev, "v={v} idx={idx} prev={prev}");
                prev = idx;
            }
        }
    }

    proptest! {
        /// Every value's bucket upper bound is >= the value's bucket lower
        /// neighbour and the relative error of the representative is bounded.
        #[test]
        fn prop_bucket_relative_error(v in 1u64..u64::MAX / 2) {
            let idx = bucket_index(v);
            let hi = bucket_high(idx);
            prop_assert!(hi >= v, "hi={hi} v={v}");
            // hi overestimates by at most one sub-bucket width ~ v/32 + 1.
            prop_assert!(hi - v <= v / 16 + 1, "hi={hi} v={v}");
        }

        /// bucket_index is monotone.
        #[test]
        fn prop_bucket_index_monotone(a in any::<u64>(), b in any::<u64>()) {
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            prop_assert!(bucket_index(lo) <= bucket_index(hi));
        }

        /// max/min/count survive arbitrary sequences.
        #[test]
        fn prop_extrema(values in proptest::collection::vec(any::<u64>(), 1..100)) {
            let mut h = Histogram::new();
            for &v in &values {
                h.record(v);
            }
            prop_assert_eq!(h.count(), values.len() as u64);
            prop_assert_eq!(h.min(), *values.iter().min().unwrap());
            prop_assert_eq!(h.max(), *values.iter().max().unwrap());
        }
    }
}
