//! The split virtqueue with full notification-suppression semantics.
//!
//! We do not model guest physical memory — descriptors carry an opaque
//! payload `T` (the testbed stores packet handles). What *is* modeled
//! bit-faithfully is the notification contract of the virtio 1.0 split
//! ring, because the paper's hybrid I/O handling is built directly on it:
//!
//! * the driver→device direction (`avail` ring) with the
//!   `VRING_USED_F_NO_NOTIFY` flag and the `avail_event` index deciding
//!   whether an exposed buffer requires a **kick** (= an I/O-instruction VM
//!   exit),
//! * the device→driver direction (`used` ring) with the
//!   `VRING_AVAIL_F_NO_INTERRUPT` flag and the `used_event` index deciding
//!   whether a consumed buffer requires a **virtual interrupt**,
//! * the `vring_need_event` wrap-around window comparison from the spec.

use std::collections::VecDeque;

use crate::vhost::QueueId;

/// Configuration of one virtqueue.
#[derive(Clone, Copy, Debug)]
pub struct VirtqueueConfig {
    /// Ring size (number of descriptors). vhost-net defaults to 256.
    pub size: u16,
    /// Whether `VIRTIO_F_EVENT_IDX` was negotiated (modern Linux: yes).
    pub event_idx: bool,
}

impl Default for VirtqueueConfig {
    fn default() -> Self {
        VirtqueueConfig {
            size: 256,
            event_idx: true,
        }
    }
}

/// A guest-trust-boundary violation caught by device-side ring
/// validation — the typed replacement for what would be a panic (or
/// silent memory corruption) in a backend that trusted guest indices.
///
/// Every variant carries the offending values so quarantine events can be
/// attributed in traces and reports.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RingError {
    /// The guest published a descriptor index `>=` the ring size.
    DescOutOfRange { index: u16, size: u16 },
    /// The guest's published avail idx ran ahead of the entries it
    /// actually added (`claimed` vs the device cursor, with at most
    /// `window` legitimately outstanding).
    AvailIdxJump { claimed: u16, cursor: u16, window: u16 },
    /// The guest's published avail idx moved backwards past entries the
    /// device already consumed.
    AvailIdxRegress { claimed: u16, cursor: u16 },
    /// A descriptor chain links back to its own head.
    DescChainLoop { head: u16 },
    /// A descriptor chain longer than the ring itself.
    ChainTooLong { len: u16, max: u16 },
    /// The guest claims more unreclaimed used entries than the ring holds.
    UsedOverflow { claimed: u16, size: u16 },
}

impl std::fmt::Display for RingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            RingError::DescOutOfRange { index, size } => {
                write!(f, "descriptor index {index} out of range (ring size {size})")
            }
            RingError::AvailIdxJump {
                claimed,
                cursor,
                window,
            } => write!(
                f,
                "avail idx jumped to {claimed} (device cursor {cursor}, {window} outstanding)"
            ),
            RingError::AvailIdxRegress { claimed, cursor } => {
                write!(f, "avail idx regressed to {claimed} (device cursor {cursor})")
            }
            RingError::DescChainLoop { head } => {
                write!(f, "descriptor chain loops back to head {head}")
            }
            RingError::ChainTooLong { len, max } => {
                write!(f, "descriptor chain of length {len} exceeds ring size {max}")
            }
            RingError::UsedOverflow { claimed, size } => {
                write!(f, "guest claims {claimed} outstanding used entries (ring size {size})")
            }
        }
    }
}

/// Ring state the guest *claims* to have published, recorded by the
/// `guest_publish_*` entry points and checked against the device's
/// trusted view by [`Virtqueue::device_validate`]. A claim that turns out
/// geometrically valid simply clears; an invalid one is the trust-boundary
/// violation the backend must quarantine on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum GuestClaim {
    DescIndex(u16),
    AvailIdx(u16),
    Chain { head: u16, len: u16, next_is_head: bool },
    UsedOutstanding(u16),
}

/// Whether the driver must notify (kick) the device after exposing a buffer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KickDecision {
    /// Device requested a notification: the guest executes the kick I/O
    /// instruction (a VM exit in notification mode).
    Kick,
    /// Notifications are suppressed: expose the buffer silently.
    NoKick,
}

/// `vring_need_event()` from the virtio spec: `true` iff `event_idx` lies in
/// the half-open wrap-around window `[old, new)`.
#[inline]
fn need_event(event_idx: u16, new_idx: u16, old_idx: u16) -> bool {
    new_idx.wrapping_sub(event_idx).wrapping_sub(1) < new_idx.wrapping_sub(old_idx)
}

/// A split virtqueue carrying payloads of type `T`.
#[derive(Clone, Debug)]
pub struct Virtqueue<T> {
    cfg: VirtqueueConfig,
    /// Host-wide identity of this queue, if attached (multi-queue
    /// devices label each ring so validation/quarantine/reset events
    /// name the exact queue).
    id: Option<QueueId>,
    /// Buffers exposed by the driver, not yet consumed by the device.
    avail: VecDeque<T>,
    /// Buffers completed by the device, not yet reclaimed by the driver.
    used: VecDeque<T>,
    /// Free descriptors (ring capacity not currently in flight).
    num_free: u16,

    // --- indices (free-running, wrap at 2^16 like the real ring) ---
    avail_idx: u16,
    used_idx: u16,
    /// Device's consumption cursor into the avail ring.
    last_avail_idx: u16,
    /// Driver's consumption cursor into the used ring.
    last_used_idx: u16,

    // --- notification suppression state ---
    /// `VRING_USED_F_NO_NOTIFY`: device tells driver "do not kick".
    used_flags_no_notify: bool,
    /// `VRING_AVAIL_F_NO_INTERRUPT`: driver tells device "do not interrupt".
    avail_flags_no_interrupt: bool,
    /// Device-written: kick me when `avail_idx` passes this (EVENT_IDX).
    avail_event: u16,
    /// Driver-written: interrupt me when `used_idx` passes this (EVENT_IDX).
    used_event: u16,

    // --- statistics ---
    kicks: u64,
    suppressed_kicks: u64,
    interrupts: u64,
    suppressed_interrupts: u64,
    // --- conservation counters (liveness checking) ---
    added: u64,
    popped: u64,
    completed: u64,
    reclaimed: u64,

    // --- guest trust boundary ---
    /// Pending guest-published ring state awaiting device validation.
    claim: Option<GuestClaim>,
    /// Queue is quarantined: the backend refuses service until the guest
    /// resets it (virtio's `DEVICE_NEEDS_RESET` analog).
    broken: bool,
    /// Surfaced to the guest: the device requires a reset.
    needs_reset: bool,
    /// Avail entries discarded when the queue was quarantined.
    quarantine_dropped: u64,
    /// Lifetime quarantine count (survives resets).
    quarantines: u64,
    /// Lifetime reset count.
    resets: u64,
}

impl<T> Virtqueue<T> {
    /// A new, empty virtqueue; notifications and interrupts start enabled.
    pub fn new(cfg: VirtqueueConfig) -> Self {
        assert!(cfg.size > 0 && cfg.size.is_power_of_two(), "ring size");
        Virtqueue {
            cfg,
            id: None,
            avail: VecDeque::with_capacity(cfg.size as usize),
            used: VecDeque::with_capacity(cfg.size as usize),
            num_free: cfg.size,
            avail_idx: 0,
            used_idx: 0,
            last_avail_idx: 0,
            last_used_idx: 0,
            used_flags_no_notify: false,
            avail_flags_no_interrupt: false,
            avail_event: 0,
            used_event: 0,
            kicks: 0,
            suppressed_kicks: 0,
            interrupts: 0,
            suppressed_interrupts: 0,
            added: 0,
            popped: 0,
            completed: 0,
            reclaimed: 0,
            claim: None,
            broken: false,
            needs_reset: false,
            quarantine_dropped: 0,
            quarantines: 0,
            resets: 0,
        }
    }

    /// A new, empty virtqueue carrying the host-wide identity `id`.
    pub fn with_id(cfg: VirtqueueConfig, id: QueueId) -> Self {
        let mut q = Self::new(cfg);
        q.id = Some(id);
        q
    }

    /// Ring configuration.
    pub fn config(&self) -> VirtqueueConfig {
        self.cfg
    }

    /// The host-wide identity of this queue, if attached.
    pub fn id(&self) -> Option<QueueId> {
        self.id
    }

    // ------------------------------------------------------------------
    // Driver (guest front-end) side
    // ------------------------------------------------------------------

    /// Free descriptors available to the driver.
    pub fn num_free(&self) -> u16 {
        self.num_free
    }

    /// True if the driver cannot expose another buffer until it reclaims
    /// used entries.
    pub fn is_full(&self) -> bool {
        self.num_free == 0
    }

    /// Expose one buffer to the device. Returns whether the driver must
    /// kick, per the current suppression state.
    ///
    /// Returns `Err(payload)` if the ring is full.
    pub fn driver_add(&mut self, payload: T) -> Result<KickDecision, T> {
        // A quarantined queue accepts nothing: the guest sees a stopped
        // queue (as if full) until it performs the reset the device
        // requested.
        if self.broken || self.num_free == 0 {
            return Err(payload);
        }
        self.num_free -= 1;
        self.added += 1;
        let old = self.avail_idx;
        self.avail_idx = self.avail_idx.wrapping_add(1);
        self.avail.push_back(payload);

        // With EVENT_IDX, a device that disabled notifications re-parks
        // `avail_event` on every processing pass (vhost_disable_notify), so
        // the index can never be crossed while suppression is intended; we
        // model that re-parking with the sticky flag. Without it, ~2^15
        // silent adds would wrap the free-running index past the parked
        // event and produce a phantom kick.
        let kick = if self.used_flags_no_notify {
            false
        } else if self.cfg.event_idx {
            need_event(self.avail_event, self.avail_idx, old)
        } else {
            true
        };
        if kick {
            self.kicks += 1;
            Ok(KickDecision::Kick)
        } else {
            self.suppressed_kicks += 1;
            Ok(KickDecision::NoKick)
        }
    }

    /// Reclaim one completed buffer from the used ring (frees a
    /// descriptor).
    pub fn driver_take_used(&mut self) -> Option<T> {
        let p = self.used.pop_front()?;
        self.last_used_idx = self.last_used_idx.wrapping_add(1);
        self.num_free += 1;
        self.reclaimed += 1;
        Some(p)
    }

    /// Completed buffers the driver has not reclaimed yet.
    pub fn used_pending(&self) -> usize {
        self.used.len()
    }

    /// Peek the oldest unreclaimed completion without consuming it.
    pub fn peek_used(&self) -> Option<&T> {
        self.used.front()
    }

    /// True while the driver has interrupts suppressed (NAPI poll mode).
    pub fn interrupts_disabled(&self) -> bool {
        self.avail_flags_no_interrupt
    }

    /// Driver disables device→driver interrupts (NAPI entering poll mode).
    pub fn driver_disable_interrupts(&mut self) {
        if self.cfg.event_idx {
            // Push used_event far behind so need_event stays false for
            // ~2^15 completions — how virtio_net's
            // `virtqueue_disable_cb` works.
            self.used_event = self.used_idx.wrapping_sub(0x8000);
        }
        self.avail_flags_no_interrupt = true;
    }

    /// Driver re-enables interrupts (NAPI complete). Returns `true` if the
    /// used ring already holds entries — the race the driver must re-check
    /// (it would otherwise miss an interrupt).
    pub fn driver_enable_interrupts(&mut self) -> bool {
        self.avail_flags_no_interrupt = false;
        if self.cfg.event_idx {
            self.used_event = self.last_used_idx;
        }
        !self.used.is_empty()
    }

    // ------------------------------------------------------------------
    // Device (host back-end) side
    // ------------------------------------------------------------------

    /// Buffers exposed and not yet consumed.
    pub fn avail_pending(&self) -> usize {
        self.avail.len()
    }

    /// True if no exposed buffers are waiting.
    pub fn is_avail_empty(&self) -> bool {
        self.avail.is_empty()
    }

    /// Consume one exposed buffer.
    pub fn device_pop(&mut self) -> Option<T> {
        if self.broken {
            return None;
        }
        let p = self.avail.pop_front()?;
        self.last_avail_idx = self.last_avail_idx.wrapping_add(1);
        self.popped += 1;
        Some(p)
    }

    /// Return one completed buffer to the driver. Returns `true` if the
    /// device must raise a virtual interrupt, per the suppression state.
    /// A quarantined queue silently swallows the completion (no interrupt,
    /// no used entry) — the backend stopped serving this queue.
    pub fn device_push_used(&mut self, payload: T) -> bool {
        if self.broken {
            drop(payload);
            return false;
        }
        let old = self.used_idx;
        self.used_idx = self.used_idx.wrapping_add(1);
        self.completed += 1;
        self.used.push_back(payload);

        // Symmetric to the kick side: a driver that disabled interrupts
        // (NAPI poll mode, suppressed TX completions) keeps `used_event`
        // parked; the sticky flag models the re-parking and prevents
        // free-running-index wrap-around from firing phantom interrupts.
        let interrupt = if self.avail_flags_no_interrupt {
            false
        } else if self.cfg.event_idx {
            need_event(self.used_event, self.used_idx, old)
        } else {
            true
        };
        if interrupt {
            self.interrupts += 1;
        } else {
            self.suppressed_interrupts += 1;
        }
        interrupt
    }

    /// Device suppresses driver kicks (entered busy processing or — for
    /// ES2 — the permanent polling mode).
    pub fn device_disable_notify(&mut self) {
        self.used_flags_no_notify = true;
        if self.cfg.event_idx {
            // Park avail_event far behind (vhost_disable_notify).
            self.avail_event = self.avail_idx.wrapping_sub(0x8000);
        }
    }

    /// Device re-enables driver kicks (about to sleep / ES2 returning to
    /// notification mode). Returns `true` if buffers raced in and the
    /// device must process them before sleeping (`vhost_enable_notify`'s
    /// re-check).
    pub fn device_enable_notify(&mut self) -> bool {
        self.used_flags_no_notify = false;
        if self.cfg.event_idx {
            self.avail_event = self.last_avail_idx;
        }
        !self.avail.is_empty()
    }

    /// Whether driver kicks are currently suppressed.
    pub fn notify_disabled(&self) -> bool {
        self.used_flags_no_notify
    }

    // ------------------------------------------------------------------
    // Guest trust boundary: publish / validate / quarantine / reset
    //
    // The guest_publish_* entry points record ring state the guest
    // *claims*; `device_validate` checks the claim against the device's
    // trusted view using the same wrapping-u16 geometry as the real ring.
    // The backend calls it before touching the avail ring, and on error
    // quarantines the queue instead of panicking.
    // ------------------------------------------------------------------

    /// Guest publishes a descriptor index (head of the next chain).
    /// Recorded, not trusted: `device_validate` checks it is in range.
    pub fn guest_publish_desc_index(&mut self, index: u16) {
        self.claim = Some(GuestClaim::DescIndex(index));
    }

    /// Guest publishes a (possibly bogus) avail idx. A claim equal to the
    /// device's view of the free-running publish cursor is valid — even
    /// across the `u16` wrap — anything outside the outstanding window is
    /// a jump or regression.
    pub fn guest_publish_avail_idx(&mut self, claimed: u16) {
        self.claim = Some(GuestClaim::AvailIdx(claimed));
    }

    /// Guest publishes a descriptor chain of `len` descriptors starting at
    /// `head`; `next_is_head` marks a chain whose next pointer links back
    /// to its own head (the classic loop attack).
    pub fn guest_publish_chain(&mut self, head: u16, len: u16, next_is_head: bool) {
        self.claim = Some(GuestClaim::Chain {
            head,
            len,
            next_is_head,
        });
    }

    /// Guest claims `claimed` used entries are outstanding (unreclaimed).
    pub fn guest_claim_used_outstanding(&mut self, claimed: u16) {
        self.claim = Some(GuestClaim::UsedOutstanding(claimed));
    }

    /// True while a guest claim awaits device validation.
    pub fn has_pending_claim(&self) -> bool {
        self.claim.is_some()
    }

    /// Device-side validation of any pending guest claim, called by the
    /// backend before it processes the avail ring. Geometrically valid
    /// claims clear silently; invalid ones return the typed violation
    /// (and clear — the caller decides to quarantine).
    pub fn device_validate(&mut self) -> Result<(), RingError> {
        let Some(claim) = self.claim.take() else {
            return Ok(());
        };
        let size = self.cfg.size;
        match claim {
            GuestClaim::DescIndex(index) => {
                if index < size {
                    Ok(())
                } else {
                    Err(RingError::DescOutOfRange { index, size })
                }
            }
            GuestClaim::AvailIdx(claimed) => {
                // The device's cursor and the true publish index are both
                // free-running u16s; the legitimate window for a published
                // idx is [cursor, cursor + outstanding] (wrapping).
                let cursor = self.last_avail_idx;
                let window = self.avail.len() as u16;
                let advanced = claimed.wrapping_sub(cursor);
                if advanced <= window {
                    Ok(())
                } else if advanced >= 0x8000 {
                    Err(RingError::AvailIdxRegress { claimed, cursor })
                } else {
                    Err(RingError::AvailIdxJump {
                        claimed,
                        cursor,
                        window,
                    })
                }
            }
            GuestClaim::Chain {
                head,
                len,
                next_is_head,
            } => {
                if next_is_head {
                    Err(RingError::DescChainLoop { head })
                } else if len > size {
                    Err(RingError::ChainTooLong { len, max: size })
                } else {
                    Ok(())
                }
            }
            GuestClaim::UsedOutstanding(claimed) => {
                if claimed <= size {
                    Ok(())
                } else {
                    Err(RingError::UsedOverflow { claimed, size })
                }
            }
        }
    }

    /// Quarantine the queue: drain the avail ring, mark it broken, and
    /// surface the `DEVICE_NEEDS_RESET` analog to the guest. Returns how
    /// many exposed-but-unprocessed buffers were discarded.
    pub fn quarantine(&mut self) -> usize {
        let drained = self.avail.len();
        self.avail.clear();
        self.quarantine_dropped += drained as u64;
        self.claim = None;
        self.broken = true;
        self.needs_reset = true;
        self.quarantines += 1;
        drained
    }

    /// Whether the queue is quarantined (backend refuses service).
    pub fn is_broken(&self) -> bool {
        self.broken
    }

    /// Whether the device has requested a reset from the guest.
    pub fn needs_reset(&self) -> bool {
        self.needs_reset
    }

    /// Guest performs the requested reset: rings are emptied, indices,
    /// suppression state and conservation counters return to their
    /// post-construction values, and service resumes. Lifetime
    /// kick/interrupt statistics and quarantine counters survive. Returns
    /// `false` (and does nothing) if no reset was requested.
    pub fn guest_reset(&mut self) -> bool {
        if !self.needs_reset {
            return false;
        }
        self.avail.clear();
        self.used.clear();
        self.num_free = self.cfg.size;
        self.avail_idx = 0;
        self.used_idx = 0;
        self.last_avail_idx = 0;
        self.last_used_idx = 0;
        self.used_flags_no_notify = false;
        self.avail_flags_no_interrupt = false;
        self.avail_event = 0;
        self.used_event = 0;
        self.added = 0;
        self.popped = 0;
        self.completed = 0;
        self.reclaimed = 0;
        self.claim = None;
        self.broken = false;
        self.needs_reset = false;
        self.resets += 1;
        true
    }

    /// The device's trusted view of the free-running avail publish cursor.
    /// Exposed so a simulated hostile guest can craft claims relative to
    /// it (a jump past the window, a regression behind it); the device
    /// never trusts anything derived from this value coming back.
    pub fn device_avail_cursor(&self) -> u16 {
        self.last_avail_idx
    }

    /// Lifetime quarantine count.
    pub fn quarantine_count(&self) -> u64 {
        self.quarantines
    }

    /// Lifetime guest-reset count.
    pub fn reset_count(&self) -> u64 {
        self.resets
    }

    /// Avail entries discarded across all quarantines.
    pub fn quarantine_dropped_total(&self) -> u64 {
        self.quarantine_dropped
    }

    // ------------------------------------------------------------------
    // Statistics
    // ------------------------------------------------------------------

    /// Kicks the driver was told to perform.
    pub fn kick_count(&self) -> u64 {
        self.kicks
    }

    /// Buffer exposures that needed no kick.
    pub fn suppressed_kick_count(&self) -> u64 {
        self.suppressed_kicks
    }

    /// Interrupts the device was told to raise.
    pub fn interrupt_count(&self) -> u64 {
        self.interrupts
    }

    /// Completions that needed no interrupt.
    pub fn suppressed_interrupt_count(&self) -> u64 {
        self.suppressed_interrupts
    }

    // ------------------------------------------------------------------
    // Conservation counters — the liveness checker's raw material.
    //
    // Descriptor flow is a pipeline:
    //   added ──pop──▶ device processing ──push_used──▶ reclaimed
    // so at any instant:
    //   added == popped + avail_pending
    //   completed == reclaimed + used_pending
    //   popped - completed == descriptors inside the device
    // A faulted run that stops making progress shows up as a violation of
    // "popped - completed" being attributable to in-flight work.
    // ------------------------------------------------------------------

    /// Buffers the driver ever exposed (successful `driver_add` calls).
    pub fn added_total(&self) -> u64 {
        self.added
    }

    /// Buffers the device ever consumed.
    pub fn popped_total(&self) -> u64 {
        self.popped
    }

    /// Buffers the device ever completed back to the driver.
    pub fn completed_total(&self) -> u64 {
        self.completed
    }

    /// Completions the driver ever reclaimed.
    pub fn reclaimed_total(&self) -> u64 {
        self.reclaimed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn vq(event_idx: bool) -> Virtqueue<u32> {
        Virtqueue::new(VirtqueueConfig { size: 8, event_idx })
    }

    #[test]
    fn first_add_kicks() {
        let mut q = vq(true);
        assert_eq!(q.driver_add(1).unwrap(), KickDecision::Kick);
    }

    #[test]
    fn adds_while_device_busy_do_not_kick() {
        let mut q = vq(true);
        q.driver_add(1).unwrap(); // kick
                                  // Device starts processing; with EVENT_IDX it has not re-armed
                                  // avail_event, so subsequent adds are silent.
        q.device_pop().unwrap();
        assert_eq!(q.driver_add(2).unwrap(), KickDecision::NoKick);
        assert_eq!(q.driver_add(3).unwrap(), KickDecision::NoKick);
        assert_eq!(q.kick_count(), 1);
        assert_eq!(q.suppressed_kick_count(), 2);
    }

    #[test]
    fn enable_notify_rearms_kick() {
        let mut q = vq(true);
        q.driver_add(1).unwrap();
        q.device_pop().unwrap();
        let raced = q.device_enable_notify();
        assert!(!raced, "queue drained, no race");
        assert_eq!(q.driver_add(2).unwrap(), KickDecision::Kick);
    }

    #[test]
    fn enable_notify_detects_race() {
        let mut q = vq(true);
        q.driver_add(1).unwrap();
        q.device_pop().unwrap();
        q.driver_add(2).unwrap(); // lands while device about to sleep
        assert!(q.device_enable_notify(), "must re-check and find buffer");
    }

    #[test]
    fn disable_notify_silences_driver_event_idx() {
        let mut q = vq(true);
        q.device_disable_notify();
        for i in 0..5 {
            assert_eq!(q.driver_add(i).unwrap(), KickDecision::NoKick, "i={i}");
        }
        assert_eq!(q.kick_count(), 0);
    }

    #[test]
    fn disable_notify_silences_driver_flag_mode() {
        let mut q = vq(false);
        q.device_disable_notify();
        assert_eq!(q.driver_add(1).unwrap(), KickDecision::NoKick);
        q.device_enable_notify();
        assert_eq!(q.driver_add(2).unwrap(), KickDecision::Kick);
    }

    #[test]
    fn ring_capacity_enforced() {
        let mut q = vq(true);
        for i in 0..8 {
            q.driver_add(i).unwrap();
        }
        assert!(q.is_full());
        assert!(q.driver_add(99).is_err());
        // Descriptors free only when the driver reclaims used entries.
        let p = q.device_pop().unwrap();
        q.device_push_used(p);
        assert!(q.is_full(), "still full until driver reclaims");
        assert_eq!(q.driver_take_used(), Some(0));
        assert_eq!(q.num_free(), 1);
        q.driver_add(99).unwrap();
    }

    #[test]
    fn first_completion_interrupts_then_coalesces() {
        let mut q = vq(true);
        for i in 0..4 {
            q.driver_add(i).unwrap();
        }
        // Driver armed used_event at 0 (default): first completion
        // interrupts, later ones coalesce until driver re-arms.
        let p = q.device_pop().unwrap();
        assert!(q.device_push_used(p), "first completion interrupts");
        let p = q.device_pop().unwrap();
        assert!(!q.device_push_used(p), "second coalesces");
        assert_eq!(q.interrupt_count(), 1);
        assert_eq!(q.suppressed_interrupt_count(), 1);
    }

    #[test]
    fn napi_cycle_suppresses_then_rearms() {
        let mut q = vq(true);
        for i in 0..6 {
            q.driver_add(i).unwrap();
        }
        let p = q.device_pop().unwrap();
        assert!(q.device_push_used(p), "interrupt fires");
        // Guest NAPI: disable, poll, re-enable.
        q.driver_disable_interrupts();
        let p = q.device_pop().unwrap();
        assert!(!q.device_push_used(p), "suppressed during poll");
        while q.driver_take_used().is_some() {}
        let race = q.driver_enable_interrupts();
        assert!(!race);
        let p = q.device_pop().unwrap();
        assert!(q.device_push_used(p), "re-armed after NAPI complete");
    }

    #[test]
    fn driver_enable_interrupts_detects_race() {
        let mut q = vq(true);
        q.driver_add(1).unwrap();
        q.driver_disable_interrupts();
        let p = q.device_pop().unwrap();
        q.device_push_used(p);
        assert!(q.driver_enable_interrupts(), "pending used entry");
    }

    #[test]
    fn no_phantom_kick_after_index_wraparound() {
        // Regression: with notifications parked, >2^15 silent adds used to
        // wrap the free-running avail index past the parked avail_event and
        // produce a phantom kick.
        let mut q: Virtqueue<u32> = Virtqueue::new(VirtqueueConfig {
            size: 8,
            event_idx: true,
        });
        q.device_disable_notify();
        for i in 0..70_000u32 {
            q.driver_add(i).unwrap();
            let p = q.device_pop().unwrap();
            q.device_push_used(p);
            q.driver_take_used();
        }
        assert_eq!(q.kick_count(), 0, "parked queue must never kick");
    }

    #[test]
    fn no_phantom_interrupt_after_index_wraparound() {
        let mut q: Virtqueue<u32> = Virtqueue::new(VirtqueueConfig {
            size: 8,
            event_idx: true,
        });
        q.driver_disable_interrupts();
        for i in 0..70_000u32 {
            q.driver_add(i).unwrap();
            let p = q.device_pop().unwrap();
            q.device_push_used(p);
            q.driver_take_used();
        }
        assert_eq!(
            q.interrupt_count(),
            0,
            "suppressed queue must never interrupt"
        );
    }

    #[test]
    fn conservation_counters_track_pipeline_stages() {
        let mut q = vq(true);
        for i in 0..5 {
            q.driver_add(i).unwrap();
        }
        assert_eq!(q.added_total(), 5);
        assert_eq!(q.added_total(), q.popped_total() + q.avail_pending() as u64);
        let p = q.device_pop().unwrap();
        let p2 = q.device_pop().unwrap();
        assert_eq!(q.popped_total(), 2);
        q.device_push_used(p);
        q.device_push_used(p2);
        assert_eq!(q.completed_total(), 2);
        q.driver_take_used().unwrap();
        assert_eq!(q.reclaimed_total(), 1);
        assert_eq!(
            q.completed_total(),
            q.reclaimed_total() + q.used_pending() as u64
        );
        // A full add fails and must not count.
        let mut full = vq(true);
        for i in 0..8 {
            full.driver_add(i).unwrap();
        }
        assert!(full.driver_add(99).is_err());
        assert_eq!(full.added_total(), 8);
    }

    #[test]
    fn need_event_window_semantics() {
        // event at old: fires.
        assert!(need_event(10, 11, 10));
        // event before old: does not fire.
        assert!(!need_event(9, 11, 10));
        // event at new: does not fire (not yet reached).
        assert!(!need_event(11, 11, 10));
        // wrap-around.
        assert!(need_event(u16::MAX, 0, u16::MAX));
        assert!(need_event(u16::MAX - 1, 2, u16::MAX - 1));
    }

    #[test]
    fn fifo_payload_order_preserved() {
        let mut q = vq(true);
        for i in 0..5 {
            q.driver_add(i).unwrap();
        }
        for want in 0..5 {
            let p = q.device_pop().unwrap();
            assert_eq!(p, want);
            q.device_push_used(p);
        }
        for want in 0..5 {
            assert_eq!(q.driver_take_used(), Some(want));
        }
    }

    // ------------------------------------------------------------------
    // Guest trust boundary
    // ------------------------------------------------------------------

    #[test]
    fn valid_claims_clear_silently() {
        let mut q = vq(true);
        q.driver_add(1).unwrap();
        q.driver_add(2).unwrap();
        q.guest_publish_desc_index(7);
        assert_eq!(q.device_validate(), Ok(()));
        // Claimed idx anywhere in [cursor, cursor + outstanding] is fine.
        for claimed in 0..=2u16 {
            q.guest_publish_avail_idx(claimed);
            assert_eq!(q.device_validate(), Ok(()), "claimed={claimed}");
        }
        assert!(!q.has_pending_claim());
        assert!(!q.is_broken());
    }

    #[test]
    fn validate_without_claim_is_ok() {
        let mut q = vq(true);
        assert_eq!(q.device_validate(), Ok(()));
    }

    #[test]
    fn desc_index_out_of_range_is_caught() {
        let mut q = vq(true);
        q.guest_publish_desc_index(8); // size is 8, valid range 0..=7
        assert_eq!(
            q.device_validate(),
            Err(RingError::DescOutOfRange { index: 8, size: 8 })
        );
        // The claim is consumed either way.
        assert_eq!(q.device_validate(), Ok(()));
    }

    #[test]
    fn avail_idx_jump_and_regress_are_caught() {
        let mut q = vq(true);
        q.driver_add(1).unwrap();
        q.device_pop().unwrap(); // cursor = 1, nothing outstanding
        q.guest_publish_avail_idx(5);
        assert_eq!(
            q.device_validate(),
            Err(RingError::AvailIdxJump {
                claimed: 5,
                cursor: 1,
                window: 0
            })
        );
        q.guest_publish_avail_idx(0);
        assert_eq!(
            q.device_validate(),
            Err(RingError::AvailIdxRegress {
                claimed: 0,
                cursor: 1
            })
        );
    }

    #[test]
    fn avail_idx_wrap_at_u16_max_is_valid() {
        // Drive the free-running cursor to u16::MAX, then publish across
        // the wrap: the legitimate claim is 0 (= MAX + 1), and validation
        // must accept it while still rejecting a real jump.
        let mut q = vq(true);
        for i in 0..u16::MAX as u32 {
            q.driver_add(i).unwrap();
            let p = q.device_pop().unwrap();
            q.device_push_used(p);
            q.driver_take_used();
        }
        q.driver_add(0xFFFF).unwrap(); // avail_idx wraps MAX -> 0
        q.guest_publish_avail_idx(0);
        assert_eq!(q.device_validate(), Ok(()), "wrapped idx is legitimate");
        q.guest_publish_avail_idx(1);
        assert_eq!(
            q.device_validate(),
            Err(RingError::AvailIdxJump {
                claimed: 1,
                cursor: u16::MAX,
                window: 1
            }),
            "one past the wrapped window is a jump"
        );
    }

    #[test]
    fn chain_length_at_limit_passes_one_past_fails() {
        let mut q = vq(true); // size 8
        q.guest_publish_chain(0, 8, false);
        assert_eq!(q.device_validate(), Ok(()), "chain exactly at ring size");
        q.guest_publish_chain(0, 9, false);
        assert_eq!(
            q.device_validate(),
            Err(RingError::ChainTooLong { len: 9, max: 8 })
        );
    }

    #[test]
    fn self_referencing_descriptor_is_caught() {
        let mut q = vq(true);
        q.guest_publish_chain(3, 1, true);
        assert_eq!(
            q.device_validate(),
            Err(RingError::DescChainLoop { head: 3 })
        );
    }

    #[test]
    fn used_overflow_is_caught() {
        let mut q = vq(true);
        q.guest_claim_used_outstanding(8);
        assert_eq!(q.device_validate(), Ok(()), "at ring size is legal");
        q.guest_claim_used_outstanding(9);
        assert_eq!(
            q.device_validate(),
            Err(RingError::UsedOverflow { claimed: 9, size: 8 })
        );
    }

    #[test]
    fn quarantine_then_reset_lifecycle() {
        let mut q = vq(true);
        for i in 0..4 {
            q.driver_add(i).unwrap();
        }
        let p = q.device_pop().unwrap();
        q.device_push_used(p);

        let dropped = q.quarantine();
        assert_eq!(dropped, 3, "pending avail entries drained");
        assert!(q.is_broken());
        assert!(q.needs_reset());
        assert_eq!(q.quarantine_count(), 1);
        assert_eq!(q.quarantine_dropped_total(), 3);

        // Broken queue refuses service on every path.
        assert!(q.driver_add(99).is_err(), "quarantined queue accepts nothing");
        assert_eq!(q.device_pop(), None);
        assert!(!q.device_push_used(77), "completion swallowed, no interrupt");

        // Guest performs the requested reset.
        assert!(q.guest_reset());
        assert!(!q.is_broken());
        assert!(!q.needs_reset());
        assert_eq!(q.reset_count(), 1);
        assert_eq!(q.num_free(), 8);
        assert_eq!(q.avail_pending(), 0);
        assert_eq!(q.used_pending(), 0);
        // Conservation counters restart so liveness equations hold.
        assert_eq!(q.added_total(), 0);
        assert_eq!(q.popped_total(), 0);
        assert_eq!(q.completed_total(), 0);
        assert_eq!(q.reclaimed_total(), 0);
        // Lifetime quarantine ledger survives the reset.
        assert_eq!(q.quarantine_count(), 1);
        assert_eq!(q.quarantine_dropped_total(), 3);

        // Full service resumes: first add kicks like a fresh queue.
        assert_eq!(q.driver_add(1).unwrap(), KickDecision::Kick);
        let p = q.device_pop().unwrap();
        assert!(q.device_push_used(p));
        assert_eq!(q.driver_take_used(), Some(1));
    }

    #[test]
    fn queue_identity_survives_quarantine_and_reset() {
        let id = QueueId { vm: 9, vq: 3 };
        let mut q: Virtqueue<u32> = Virtqueue::with_id(
            VirtqueueConfig {
                size: 8,
                event_idx: true,
            },
            id,
        );
        assert_eq!(q.id(), Some(id));
        q.quarantine();
        assert_eq!(q.id(), Some(id), "identity is not ring state");
        assert!(q.guest_reset());
        assert_eq!(q.id(), Some(id), "identity survives the reset");
        let anon = vq(true);
        assert_eq!(anon.id(), None);
    }

    #[test]
    fn reset_without_request_is_refused() {
        let mut q = vq(true);
        q.driver_add(1).unwrap();
        assert!(!q.guest_reset(), "no reset requested");
        assert_eq!(q.avail_pending(), 1, "state untouched");
        assert_eq!(q.reset_count(), 0);
    }

    proptest! {
        /// Conservation: every payload added is eventually either pending,
        /// used, or reclaimed — never dropped or duplicated; free count
        /// mirrors in-flight count.
        #[test]
        fn prop_descriptor_conservation(ops in proptest::collection::vec(0u8..4, 1..300)) {
            let mut q: Virtqueue<u64> = Virtqueue::new(VirtqueueConfig { size: 16, event_idx: true });
            let mut next_payload = 0u64;
            let mut added = 0u64;
            let mut reclaimed = 0u64;
            for op in ops {
                match op {
                    0 => {
                        if q.driver_add(next_payload).is_ok() {
                            next_payload += 1;
                            added += 1;
                        }
                    }
                    1 => {
                        if let Some(p) = q.device_pop() {
                            q.device_push_used(p);
                        }
                    }
                    2 => {
                        if q.driver_take_used().is_some() {
                            reclaimed += 1;
                        }
                    }
                    _ => {
                        // Random suppression toggles must not affect data flow.
                        if next_payload % 2 == 0 {
                            q.device_disable_notify();
                        } else {
                            q.device_enable_notify();
                        }
                    }
                }
                let in_flight = added - reclaimed;
                prop_assert_eq!(16 - q.num_free() as u64, in_flight);
                prop_assert_eq!(
                    q.avail_pending() as u64 + q.used_pending() as u64
                        + (in_flight - q.avail_pending() as u64 - q.used_pending() as u64),
                    in_flight
                );
            }
        }

        /// With EVENT_IDX and an attentive device (re-arming after each
        /// drain), every batch of adds produces exactly one kick.
        #[test]
        fn prop_one_kick_per_batch(batches in proptest::collection::vec(1usize..8, 1..20)) {
            let mut q: Virtqueue<u64> = Virtqueue::new(VirtqueueConfig { size: 256, event_idx: true });
            let mut payload = 0;
            for (i, &n) in batches.iter().enumerate() {
                let kicks_before = q.kick_count();
                for _ in 0..n {
                    q.driver_add(payload).unwrap();
                    payload += 1;
                }
                prop_assert_eq!(q.kick_count(), kicks_before + 1, "batch {} size {}", i, n);
                // Device drains and re-arms.
                while let Some(p) = q.device_pop() {
                    q.device_push_used(p);
                }
                while q.driver_take_used().is_some() {}
                prop_assert!(!q.device_enable_notify());
            }
        }
    }
}
