//! The vhost I/O worker thread model.
//!
//! In-kernel vhost (vhost-net) runs one kernel thread per device. Each
//! virtqueue has a *handler* (`handle_tx` / `handle_rx`); guest kicks (or,
//! under ES2, the polling scheduler) put handlers on the worker's FIFO
//! *work list*, and the worker thread pops and runs them. When the list is
//! empty the worker sleeps — that is the moment notification mode re-arms
//! guest kicks.
//!
//! This module models only the work-list structure; what a handler *does*
//! per invocation (and the ES2 quota logic) lives in `es2-core`.

use std::collections::VecDeque;

/// Index of a handler registered on a worker.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct HandlerId(pub u32);

impl HandlerId {
    /// Arena index.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

/// A vhost worker's pending-work state.
#[derive(Clone, Debug, Default)]
pub struct VhostWorker {
    work: VecDeque<HandlerId>,
    queued: Vec<bool>,
    /// Per-handler quarantine bits: a quarantined handler's kicks are
    /// refused (counted, not panicked on) until `release` — the worker-side
    /// half of queue quarantine.
    quarantined: Vec<bool>,
    wakeups: u64,
    dispatches: u64,
    /// Deepest the work list has ever been — the backlog high-water
    /// mark. Purely a ledger: nothing in the dispatch logic reads it.
    pending_hwm: usize,
    /// Kicks naming a handler id that was never registered — a
    /// guest-controlled value the worker must survive, not index with.
    rejected_kicks: u64,
    /// Kicks refused because the target handler was quarantined.
    quarantined_kicks: u64,
    /// Flight-recorder correlation ID riding with each handler's pending
    /// kick (0 = none). Observational only: the work-list logic never
    /// reads it, and it stays zero unless span tracing is on.
    kick_corr: Vec<u64>,
}

impl VhostWorker {
    /// A worker with no registered handlers.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a handler; returns its id.
    pub fn register_handler(&mut self) -> HandlerId {
        let id = HandlerId(self.queued.len() as u32);
        self.queued.push(false);
        self.quarantined.push(false);
        self.kick_corr.push(0);
        id
    }

    /// Number of registered handlers.
    pub fn num_handlers(&self) -> usize {
        self.queued.len()
    }

    /// Queue `h` for execution (a guest kick or an ES2 requeue).
    ///
    /// Returns `true` iff the item was newly queued on an idle worker —
    /// i.e. the worker thread was sleeping and must be woken up.
    /// Duplicate queueing coalesces with no wake-up, like
    /// `vhost_work_queue`'s test-and-set of `VHOST_WORK_QUEUED`: whoever
    /// set the bit first already arranged for the worker to run, so a
    /// second queue of the same handler must never report a wake-up,
    /// whatever the list looked like at the time.
    ///
    /// The handler id is guest-influenced (it arrives with a kick), so an
    /// unregistered id is refused and counted — never indexed with.
    /// A quarantined handler's kicks are likewise refused: its queue is
    /// broken and the worker stopped serving it.
    pub fn queue_work(&mut self, h: HandlerId) -> bool {
        let Some(queued) = self.queued.get_mut(h.idx()) else {
            self.rejected_kicks += 1;
            return false;
        };
        if self.quarantined[h.idx()] {
            self.quarantined_kicks += 1;
            return false;
        }
        if *queued {
            return false;
        }
        let was_idle = self.work.is_empty();
        *queued = true;
        self.work.push_back(h);
        self.pending_hwm = self.pending_hwm.max(self.work.len());
        if was_idle {
            self.wakeups += 1;
        }
        was_idle
    }

    /// Pop the next handler to run, or `None` (worker sleeps).
    pub fn next_work(&mut self) -> Option<HandlerId> {
        let h = self.work.pop_front()?;
        self.queued[h.idx()] = false;
        self.dispatches += 1;
        Some(h)
    }

    /// True if any handler is queued.
    pub fn has_work(&self) -> bool {
        !self.work.is_empty()
    }

    /// Number of queued handlers.
    pub fn pending(&self) -> usize {
        self.work.len()
    }

    /// True if `h` is currently queued (false for unregistered ids).
    pub fn is_queued(&self, h: HandlerId) -> bool {
        self.queued.get(h.idx()).copied().unwrap_or(false)
    }

    // ------------------------------------------------------------------
    // Quarantine ledger
    // ------------------------------------------------------------------

    /// Quarantine `h`: drop any queued invocation, refuse further kicks
    /// until [`release`](Self::release). Returns `true` if an invocation
    /// was pending (and was discarded). Unregistered ids are a no-op.
    pub fn quarantine(&mut self, h: HandlerId) -> bool {
        let Some(q) = self.quarantined.get_mut(h.idx()) else {
            return false;
        };
        *q = true;
        self.kick_corr[h.idx()] = 0;
        let was_pending = self.queued[h.idx()];
        if was_pending {
            self.queued[h.idx()] = false;
            self.work.retain(|&w| w != h);
        }
        was_pending
    }

    /// Lift the quarantine on `h` (the guest performed its queue reset).
    /// Kicks are accepted again; the handler is *not* requeued — the next
    /// real kick does that.
    pub fn release(&mut self, h: HandlerId) {
        if let Some(q) = self.quarantined.get_mut(h.idx()) {
            *q = false;
        }
    }

    /// True if `h` is quarantined.
    pub fn is_quarantined(&self, h: HandlerId) -> bool {
        self.quarantined.get(h.idx()).copied().unwrap_or(false)
    }

    /// Kicks refused because they named an unregistered handler.
    pub fn rejected_kick_count(&self) -> u64 {
        self.rejected_kicks
    }

    /// Kicks refused because the target handler was quarantined.
    pub fn quarantined_kick_count(&self) -> u64 {
        self.quarantined_kicks
    }

    /// Times the worker transitioned idle→busy.
    pub fn wakeup_count(&self) -> u64 {
        self.wakeups
    }

    /// Handler invocations dispatched.
    pub fn dispatch_count(&self) -> u64 {
        self.dispatches
    }

    /// Deepest the work list has ever been (backlog high-water mark).
    pub fn pending_high_water(&self) -> usize {
        self.pending_hwm
    }

    /// Attach a flight-recorder correlation ID to `h`'s pending kick.
    /// Returns `true` if stored; `false` if a kick already owns the slot
    /// (the signals coalesced — first kick keeps the span) or the id is
    /// unregistered.
    pub fn note_kick_corr(&mut self, h: HandlerId, corr: u64) -> bool {
        match self.kick_corr.get_mut(h.idx()) {
            Some(slot) if *slot == 0 => {
                *slot = corr;
                true
            }
            _ => false,
        }
    }

    /// The correlation ID currently riding with `h`'s pending kick
    /// (0 if none), without consuming it.
    pub fn kick_corr(&self, h: HandlerId) -> u64 {
        self.kick_corr.get(h.idx()).copied().unwrap_or(0)
    }

    /// Remove and return the correlation ID riding with `h`'s pending
    /// kick (0 if none) — called when a handler turn begins.
    pub fn take_kick_corr(&mut self, h: HandlerId) -> u64 {
        self.kick_corr
            .get_mut(h.idx())
            .map(std::mem::take)
            .unwrap_or(0)
    }
}

/// Identity of one virtqueue in the host-wide queue namespace: VM slot
/// plus virtqueue index within the VM (`vq = 2*pair` for TX, `2*pair+1`
/// for RX, matching the virtio-net queue layout). Threaded through ring
/// validation, quarantine and reset so every trust-boundary event names
/// the exact queue, not just the VM.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct QueueId {
    /// Owning VM slot.
    pub vm: u32,
    /// Virtqueue index within the VM.
    pub vq: u16,
}

impl QueueId {
    /// The queue pair this virtqueue belongs to.
    #[inline]
    pub fn pair(self) -> u16 {
        self.vq / 2
    }

    /// True for the TX half of the pair.
    #[inline]
    pub fn is_tx(self) -> bool {
        self.vq % 2 == 0
    }
}

/// How queue pairs are assigned to the vhost workers of one device.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum ShardPolicy {
    /// Every pair on worker 0 — the legacy single-thread mux. With one
    /// worker this is byte-identical to the pre-multi-queue model.
    #[default]
    Mux,
    /// Pair spread by a deterministic hash of `(vm, pair)`.
    Hash,
    /// Pair follows its owning vCPU (`owner % workers`), so a vCPU's TX
    /// and RX service lands on a stable worker — the per-vCPU affine
    /// sharding of multiqueue vhost-net.
    Affine,
    /// Each pair owns a worker outright (`worker == pair`) and the
    /// dispatch hop is skipped entirely: the NVMe I/O-queues-passthrough
    /// shape, where a queue maps straight to its backend poller.
    Passthrough,
}

impl ShardPolicy {
    /// The worker index serving `pair` of `vm` under this policy.
    /// `workers` must be >= 1; results are always in `0..workers`.
    pub fn worker_for(self, vm: u32, pair: u32, owner_vcpu: u32, workers: u32) -> u32 {
        let w = workers.max(1);
        match self {
            ShardPolicy::Mux => 0,
            ShardPolicy::Hash => {
                let x = (((vm as u64) << 32) | pair as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                ((x >> 33) % w as u64) as u32
            }
            ShardPolicy::Affine => owner_vcpu % w,
            ShardPolicy::Passthrough => pair % w,
        }
    }

    /// Short human label for reports.
    pub fn label(self) -> &'static str {
        match self {
            ShardPolicy::Mux => "mux",
            ShardPolicy::Hash => "hash",
            ShardPolicy::Affine => "affine",
            ShardPolicy::Passthrough => "passthrough",
        }
    }
}

/// One device's vhost backend: `N` workers sharing a handler arena, with
/// a sharding policy that pins each handler to exactly one worker.
///
/// Every handler is registered on every worker so [`HandlerId`] arena
/// indices stay valid wherever a (guest-influenced) id shows up, but a
/// handler is only ever *queued* on its assigned worker — the FIFO
/// invariants of [`VhostWorker`] hold per worker, and cross-worker state
/// never mixes. With one worker and [`ShardPolicy::Mux`] the pool is
/// operationally identical to a bare [`VhostWorker`].
///
/// The pool keeps a cached `pending_total` so host-wide pending-work
/// checks are O(1) instead of a sum over workers; the counter is
/// maintained across queue/dispatch/quarantine transitions and audited
/// by the contract tests below.
#[derive(Clone, Debug)]
pub struct VhostPool {
    workers: Vec<VhostWorker>,
    /// Handler idx -> assigned worker idx.
    assign: Vec<u32>,
    policy: ShardPolicy,
    /// Cached sum of `workers[w].pending()` (O(1) pool pending).
    pending_total: usize,
}

impl VhostPool {
    /// A pool of `workers` empty workers under `policy`.
    pub fn new(workers: usize, policy: ShardPolicy) -> Self {
        let n = workers.max(1);
        VhostPool {
            workers: (0..n).map(|_| VhostWorker::new()).collect(),
            assign: Vec::new(),
            policy,
            pending_total: 0,
        }
    }

    /// Register one TX/RX queue pair owned by `owner_vcpu`, returning
    /// `(tx, rx)` handler ids. Both halves land on the same worker.
    pub fn register_pair(&mut self, vm: u32, pair: u32, owner_vcpu: u32) -> (HandlerId, HandlerId) {
        let w = self
            .policy
            .worker_for(vm, pair, owner_vcpu, self.workers.len() as u32);
        let mut tx = HandlerId(0);
        let mut rx = HandlerId(0);
        for worker in &mut self.workers {
            tx = worker.register_handler();
            rx = worker.register_handler();
        }
        self.assign.push(w);
        self.assign.push(w);
        (tx, rx)
    }

    /// Number of workers.
    pub fn num_workers(&self) -> usize {
        self.workers.len()
    }

    /// The sharding policy.
    pub fn policy(&self) -> ShardPolicy {
        self.policy
    }

    /// True when queues own their workers and the dispatch hop is
    /// elided (see [`ShardPolicy::Passthrough`]).
    pub fn is_passthrough(&self) -> bool {
        self.policy == ShardPolicy::Passthrough
    }

    /// The worker assigned to `h` (worker 0 for unregistered ids, whose
    /// kicks that worker refuses and counts).
    pub fn worker_of(&self, h: HandlerId) -> usize {
        self.assign.get(h.idx()).copied().unwrap_or(0) as usize
    }

    /// Read-only view of worker `w`'s ledger.
    pub fn worker(&self, w: usize) -> &VhostWorker {
        &self.workers[w]
    }

    /// Queue `h` on its assigned worker. Returns the worker index and
    /// whether that worker was idle (its thread must be woken).
    pub fn queue_work(&mut self, h: HandlerId) -> (usize, bool) {
        let w = self.worker_of(h);
        let before = self.workers[w].is_queued(h);
        let was_idle = self.workers[w].queue_work(h);
        if !before && self.workers[w].is_queued(h) {
            self.pending_total += 1;
        }
        (w, was_idle)
    }

    /// Pop worker `w`'s next handler, or `None` (that thread sleeps).
    pub fn next_work(&mut self, w: usize) -> Option<HandlerId> {
        let h = self.workers[w].next_work();
        if h.is_some() {
            self.pending_total -= 1;
        }
        h
    }

    /// True if worker `w` has queued handlers.
    pub fn has_work_on(&self, w: usize) -> bool {
        self.workers[w].has_work()
    }

    /// True if any worker has queued handlers — O(1) via the cached
    /// counter.
    pub fn has_work(&self) -> bool {
        self.pending_total > 0
    }

    /// Total queued handlers across all workers, O(1).
    pub fn pending_total(&self) -> usize {
        self.pending_total
    }

    /// Queued handlers on worker `w`.
    pub fn pending_on(&self, w: usize) -> usize {
        self.workers[w].pending()
    }

    /// Worker `w`'s backlog high-water mark.
    pub fn pending_hwm_on(&self, w: usize) -> usize {
        self.workers[w].pending_high_water()
    }

    /// True if `h` is queued (on its assigned worker).
    pub fn is_queued(&self, h: HandlerId) -> bool {
        self.workers[self.worker_of(h)].is_queued(h)
    }

    /// Quarantine `h` on its worker; see [`VhostWorker::quarantine`].
    pub fn quarantine(&mut self, h: HandlerId) -> bool {
        let w = self.worker_of(h);
        let was_pending = self.workers[w].quarantine(h);
        if was_pending {
            self.pending_total -= 1;
        }
        was_pending
    }

    /// Lift the quarantine on `h`; see [`VhostWorker::release`].
    pub fn release(&mut self, h: HandlerId) {
        let w = self.worker_of(h);
        self.workers[w].release(h);
    }

    /// True if `h` is quarantined.
    pub fn is_quarantined(&self, h: HandlerId) -> bool {
        self.workers[self.worker_of(h)].is_quarantined(h)
    }

    /// Kicks refused across all workers for naming unregistered ids.
    pub fn rejected_kick_count(&self) -> u64 {
        self.workers.iter().map(|w| w.rejected_kick_count()).sum()
    }

    /// Kicks refused across all workers for naming quarantined handlers.
    pub fn quarantined_kick_count(&self) -> u64 {
        self.workers.iter().map(|w| w.quarantined_kick_count()).sum()
    }

    /// Idle→busy transitions across all workers.
    pub fn wakeup_count(&self) -> u64 {
        self.workers.iter().map(|w| w.wakeup_count()).sum()
    }

    /// Handler invocations dispatched across all workers.
    pub fn dispatch_count(&self) -> u64 {
        self.workers.iter().map(|w| w.dispatch_count()).sum()
    }

    /// Attach a flight-recorder correlation id to `h`'s pending kick on
    /// its assigned worker; see [`VhostWorker::note_kick_corr`].
    pub fn note_kick_corr(&mut self, h: HandlerId, corr: u64) -> bool {
        let w = self.worker_of(h);
        self.workers[w].note_kick_corr(h, corr)
    }

    /// The correlation id riding with `h`'s pending kick (0 if none).
    pub fn kick_corr(&self, h: HandlerId) -> u64 {
        self.workers[self.worker_of(h)].kick_corr(h)
    }

    /// Remove and return the correlation id riding with `h`'s pending
    /// kick (0 if none).
    pub fn take_kick_corr(&mut self, h: HandlerId) -> u64 {
        let w = self.worker_of(h);
        self.workers[w].take_kick_corr(h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queue_reports_idle_transition() {
        let mut w = VhostWorker::new();
        let a = w.register_handler();
        let b = w.register_handler();
        assert!(w.queue_work(a), "idle worker must be woken");
        assert!(!w.queue_work(b), "already busy");
    }

    // The four-cell wake-up contract: a wake-up is reported exactly when
    // a *new* item lands on an *idle* worker. These pin the
    // `vhost_work_queue` semantics the testbed's wake logic relies on.

    #[test]
    fn contract_idle_plus_new_wakes() {
        let mut w = VhostWorker::new();
        let a = w.register_handler();
        assert!(w.queue_work(a));
        assert_eq!(w.wakeup_count(), 1);
    }

    #[test]
    fn contract_idle_plus_duplicate_does_not_wake() {
        // Normally `queued[h]` implies the list is non-empty, but a
        // stalled worker (fault injection) can observe the queued flag
        // with the list already drained mid-dispatch; force that state
        // directly. The duplicate must coalesce silently: whoever set
        // the flag already owns the wake-up.
        let mut w = VhostWorker::new();
        let a = w.register_handler();
        w.queued[a.idx()] = true;
        assert!(!w.queue_work(a), "duplicate must never report a wake-up");
        assert_eq!(w.wakeup_count(), 0);
        assert_eq!(w.pending(), 0, "no list entry added");
    }

    #[test]
    fn contract_busy_plus_new_does_not_wake() {
        let mut w = VhostWorker::new();
        let a = w.register_handler();
        let b = w.register_handler();
        assert!(w.queue_work(a));
        assert!(!w.queue_work(b), "worker already awake");
        assert_eq!(w.wakeup_count(), 1);
        assert_eq!(w.pending(), 2);
    }

    #[test]
    fn contract_busy_plus_duplicate_does_not_wake() {
        let mut w = VhostWorker::new();
        let a = w.register_handler();
        assert!(w.queue_work(a));
        assert!(!w.queue_work(a));
        assert_eq!(w.wakeup_count(), 1);
        assert_eq!(w.pending(), 1);
    }

    #[test]
    fn duplicate_queueing_coalesces() {
        let mut w = VhostWorker::new();
        let a = w.register_handler();
        w.queue_work(a);
        w.queue_work(a);
        assert_eq!(w.pending(), 1);
        assert_eq!(w.next_work(), Some(a));
        assert_eq!(w.next_work(), None);
    }

    #[test]
    fn fifo_dispatch_order() {
        let mut w = VhostWorker::new();
        let a = w.register_handler();
        let b = w.register_handler();
        let c = w.register_handler();
        w.queue_work(b);
        w.queue_work(a);
        w.queue_work(c);
        assert_eq!(w.next_work(), Some(b));
        assert_eq!(w.next_work(), Some(a));
        assert_eq!(w.next_work(), Some(c));
    }

    #[test]
    fn requeue_after_pop_is_allowed() {
        // The ES2 polling handler requeues itself when its quota expires.
        let mut w = VhostWorker::new();
        let a = w.register_handler();
        w.queue_work(a);
        assert_eq!(w.next_work(), Some(a));
        assert!(!w.is_queued(a));
        w.queue_work(a);
        assert!(w.is_queued(a));
        assert_eq!(w.next_work(), Some(a));
    }

    #[test]
    fn kick_corr_rides_with_the_pending_kick() {
        let mut w = VhostWorker::new();
        let a = w.register_handler();
        let b = w.register_handler();
        assert!(w.note_kick_corr(a, 5), "empty slot stores");
        assert!(!w.note_kick_corr(a, 6), "coalesced kick keeps first span");
        assert_eq!(w.take_kick_corr(a), 5);
        assert_eq!(w.take_kick_corr(a), 0, "taken once");
        assert_eq!(w.take_kick_corr(b), 0, "independent slots");
    }

    #[test]
    fn unregistered_handler_kick_is_refused_not_indexed() {
        let mut w = VhostWorker::new();
        let a = w.register_handler();
        w.queue_work(a);
        // A kick naming a handler that was never registered is hostile
        // input: it must be counted and dropped, never panic.
        assert!(!w.queue_work(HandlerId(7)));
        assert_eq!(w.rejected_kick_count(), 1);
        assert!(!w.is_queued(HandlerId(7)));
        assert!(!w.is_quarantined(HandlerId(7)));
        assert!(!w.note_kick_corr(HandlerId(7), 9));
        assert_eq!(w.kick_corr(HandlerId(7)), 0);
        assert_eq!(w.take_kick_corr(HandlerId(7)), 0);
        assert_eq!(w.pending(), 1, "valid work untouched");
    }

    #[test]
    fn quarantine_drops_pending_work_and_refuses_kicks() {
        let mut w = VhostWorker::new();
        let a = w.register_handler();
        let b = w.register_handler();
        w.queue_work(a);
        w.queue_work(b);
        assert!(w.quarantine(a), "pending invocation discarded");
        assert!(w.is_quarantined(a));
        assert!(!w.is_queued(a));
        assert_eq!(w.pending(), 1);
        assert!(!w.queue_work(a), "quarantined kicks refused");
        assert_eq!(w.quarantined_kick_count(), 1);
        // The neighbor keeps full service.
        assert_eq!(w.next_work(), Some(b));
        assert_eq!(w.next_work(), None);
    }

    #[test]
    fn release_restores_service_without_requeueing() {
        let mut w = VhostWorker::new();
        let a = w.register_handler();
        w.queue_work(a);
        w.quarantine(a);
        w.release(a);
        assert!(!w.is_quarantined(a));
        assert!(!w.has_work(), "release does not requeue by itself");
        assert!(w.queue_work(a), "next real kick wakes the worker again");
        assert_eq!(w.next_work(), Some(a));
    }

    #[test]
    fn quarantine_clears_riding_kick_corr() {
        let mut w = VhostWorker::new();
        let a = w.register_handler();
        w.queue_work(a);
        w.note_kick_corr(a, 42);
        w.quarantine(a);
        w.release(a);
        assert_eq!(w.take_kick_corr(a), 0, "stale span must not resurface");
    }

    #[test]
    fn counters() {
        let mut w = VhostWorker::new();
        let a = w.register_handler();
        let b = w.register_handler();
        w.queue_work(a); // wakeup 1
        w.queue_work(b);
        w.next_work();
        w.next_work();
        w.queue_work(a); // wakeup 2
        w.next_work();
        assert_eq!(w.wakeup_count(), 2);
        assert_eq!(w.dispatch_count(), 3);
        assert!(!w.has_work());
    }

    // ------------------------------------------------------------------
    // Pool / sharding contracts
    // ------------------------------------------------------------------

    #[test]
    fn policy_worker_for_is_in_range_and_stable() {
        for &policy in &[
            ShardPolicy::Mux,
            ShardPolicy::Hash,
            ShardPolicy::Affine,
            ShardPolicy::Passthrough,
        ] {
            for vm in 0..8 {
                for pair in 0..8 {
                    for workers in 1..8 {
                        let w = policy.worker_for(vm, pair, pair % 2, workers);
                        assert!(w < workers, "{policy:?} out of range");
                        let again = policy.worker_for(vm, pair, pair % 2, workers);
                        assert_eq!(w, again, "{policy:?} must be deterministic");
                    }
                }
            }
        }
        // Mux is always worker 0; passthrough pins pair == worker.
        assert_eq!(ShardPolicy::Mux.worker_for(3, 5, 1, 4), 0);
        assert_eq!(ShardPolicy::Passthrough.worker_for(3, 2, 0, 4), 2);
        assert_eq!(ShardPolicy::Affine.worker_for(3, 5, 1, 4), 1);
    }

    #[test]
    fn pool_single_worker_mux_matches_bare_worker() {
        let mut pool = VhostPool::new(1, ShardPolicy::Mux);
        let mut bare = VhostWorker::new();
        let (ptx, prx) = pool.register_pair(0, 0, 0);
        let btx = bare.register_handler();
        let brx = bare.register_handler();
        assert_eq!((ptx, prx), (btx, brx), "handler ids line up");
        assert_eq!(pool.queue_work(ptx), (0, bare.queue_work(btx)));
        assert_eq!(pool.queue_work(prx), (0, bare.queue_work(brx)));
        assert_eq!(pool.next_work(0), bare.next_work());
        assert_eq!(pool.next_work(0), bare.next_work());
        assert_eq!(pool.next_work(0), bare.next_work());
        assert_eq!(pool.pending_total(), 0);
    }

    /// Satellite contract: queue_work -> next_work round-trips preserve
    /// FIFO order per worker even while other handlers on the same and
    /// other workers are quarantined and released in between.
    #[test]
    fn pool_fifo_per_worker_under_interleaved_quarantine_release() {
        // Passthrough with 4 pairs / 4 workers: pair k owns worker k.
        let mut pool = VhostPool::new(4, ShardPolicy::Passthrough);
        let pairs: Vec<(HandlerId, HandlerId)> =
            (0..4).map(|p| pool.register_pair(0, p, p % 2)).collect();
        for (p, &(tx, rx)) in pairs.iter().enumerate() {
            assert_eq!(pool.worker_of(tx), p);
            assert_eq!(pool.worker_of(rx), p);
        }

        // Queue rx then tx on worker 1; quarantine worker 2's tx in
        // between; FIFO on worker 1 must be unaffected.
        let (tx1, rx1) = pairs[1];
        let (tx2, _rx2) = pairs[2];
        pool.queue_work(rx1);
        pool.queue_work(tx2);
        assert!(pool.quarantine(tx2), "pending invocation dropped");
        pool.queue_work(tx1);
        assert_eq!(pool.pending_total(), 2);
        assert_eq!(pool.next_work(1), Some(rx1), "FIFO: rx queued first");
        pool.queue_work(rx1); // requeue mid-drain
        assert_eq!(pool.next_work(1), Some(tx1));
        assert_eq!(pool.next_work(1), Some(rx1));
        assert_eq!(pool.next_work(1), None);

        // Quarantined handler refuses kicks until release; release does
        // not requeue on its own.
        assert_eq!(pool.queue_work(tx2), (2, false));
        assert_eq!(pool.worker(2).quarantined_kick_count(), 1);
        pool.release(tx2);
        assert!(!pool.has_work_on(2));
        assert_eq!(pool.queue_work(tx2), (2, true), "post-release kick wakes");
        assert_eq!(pool.next_work(2), Some(tx2));
        assert_eq!(pool.pending_total(), 0);
    }

    /// Satellite contract: the cached pool pending counter stays equal
    /// to the per-worker sum across every transition that can change it.
    #[test]
    fn pool_pending_total_is_exact_across_transitions() {
        let mut pool = VhostPool::new(2, ShardPolicy::Hash);
        let mut hs = Vec::new();
        for p in 0..4 {
            let (tx, rx) = pool.register_pair(7, p, p % 2);
            hs.push(tx);
            hs.push(rx);
        }
        let audit = |pool: &VhostPool| {
            let sum: usize = (0..pool.num_workers()).map(|w| pool.pending_on(w)).sum();
            assert_eq!(pool.pending_total(), sum, "cached counter drifted");
        };
        for &h in &hs {
            pool.queue_work(h);
            pool.queue_work(h); // duplicate coalesces, no double count
            audit(&pool);
        }
        pool.quarantine(hs[3]);
        audit(&pool);
        pool.quarantine(hs[3]); // already quarantined, idempotent
        audit(&pool);
        pool.release(hs[3]);
        audit(&pool);
        pool.queue_work(HandlerId(99)); // rejected, not counted
        audit(&pool);
        for w in 0..pool.num_workers() {
            while pool.next_work(w).is_some() {
                audit(&pool);
            }
        }
        assert!(!pool.has_work());
        assert_eq!(pool.pending_total(), 0);
    }

    #[test]
    fn pending_high_water_tracks_deepest_backlog() {
        let mut w = VhostWorker::new();
        let a = w.register_handler();
        let b = w.register_handler();
        let c = w.register_handler();
        assert_eq!(w.pending_high_water(), 0);
        w.queue_work(a);
        w.queue_work(b);
        assert_eq!(w.pending_high_water(), 2);
        w.next_work();
        w.next_work();
        assert_eq!(w.pending_high_water(), 2, "draining never lowers it");
        w.queue_work(c);
        assert_eq!(w.pending_high_water(), 2, "shallower refill keeps the mark");
        w.queue_work(a);
        w.queue_work(b);
        assert_eq!(w.pending_high_water(), 3, "deeper backlog raises it");
    }

    #[test]
    fn queue_id_halves() {
        let tx = QueueId { vm: 3, vq: 4 };
        let rx = QueueId { vm: 3, vq: 5 };
        assert_eq!(tx.pair(), 2);
        assert_eq!(rx.pair(), 2);
        assert!(tx.is_tx());
        assert!(!rx.is_tx());
    }
}
