//! The vhost I/O worker thread model.
//!
//! In-kernel vhost (vhost-net) runs one kernel thread per device. Each
//! virtqueue has a *handler* (`handle_tx` / `handle_rx`); guest kicks (or,
//! under ES2, the polling scheduler) put handlers on the worker's FIFO
//! *work list*, and the worker thread pops and runs them. When the list is
//! empty the worker sleeps — that is the moment notification mode re-arms
//! guest kicks.
//!
//! This module models only the work-list structure; what a handler *does*
//! per invocation (and the ES2 quota logic) lives in `es2-core`.

use std::collections::VecDeque;

/// Index of a handler registered on a worker.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct HandlerId(pub u32);

impl HandlerId {
    /// Arena index.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

/// A vhost worker's pending-work state.
#[derive(Clone, Debug, Default)]
pub struct VhostWorker {
    work: VecDeque<HandlerId>,
    queued: Vec<bool>,
    /// Per-handler quarantine bits: a quarantined handler's kicks are
    /// refused (counted, not panicked on) until `release` — the worker-side
    /// half of queue quarantine.
    quarantined: Vec<bool>,
    wakeups: u64,
    dispatches: u64,
    /// Kicks naming a handler id that was never registered — a
    /// guest-controlled value the worker must survive, not index with.
    rejected_kicks: u64,
    /// Kicks refused because the target handler was quarantined.
    quarantined_kicks: u64,
    /// Flight-recorder correlation ID riding with each handler's pending
    /// kick (0 = none). Observational only: the work-list logic never
    /// reads it, and it stays zero unless span tracing is on.
    kick_corr: Vec<u64>,
}

impl VhostWorker {
    /// A worker with no registered handlers.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a handler; returns its id.
    pub fn register_handler(&mut self) -> HandlerId {
        let id = HandlerId(self.queued.len() as u32);
        self.queued.push(false);
        self.quarantined.push(false);
        self.kick_corr.push(0);
        id
    }

    /// Number of registered handlers.
    pub fn num_handlers(&self) -> usize {
        self.queued.len()
    }

    /// Queue `h` for execution (a guest kick or an ES2 requeue).
    ///
    /// Returns `true` iff the item was newly queued on an idle worker —
    /// i.e. the worker thread was sleeping and must be woken up.
    /// Duplicate queueing coalesces with no wake-up, like
    /// `vhost_work_queue`'s test-and-set of `VHOST_WORK_QUEUED`: whoever
    /// set the bit first already arranged for the worker to run, so a
    /// second queue of the same handler must never report a wake-up,
    /// whatever the list looked like at the time.
    ///
    /// The handler id is guest-influenced (it arrives with a kick), so an
    /// unregistered id is refused and counted — never indexed with.
    /// A quarantined handler's kicks are likewise refused: its queue is
    /// broken and the worker stopped serving it.
    pub fn queue_work(&mut self, h: HandlerId) -> bool {
        let Some(queued) = self.queued.get_mut(h.idx()) else {
            self.rejected_kicks += 1;
            return false;
        };
        if self.quarantined[h.idx()] {
            self.quarantined_kicks += 1;
            return false;
        }
        if *queued {
            return false;
        }
        let was_idle = self.work.is_empty();
        *queued = true;
        self.work.push_back(h);
        if was_idle {
            self.wakeups += 1;
        }
        was_idle
    }

    /// Pop the next handler to run, or `None` (worker sleeps).
    pub fn next_work(&mut self) -> Option<HandlerId> {
        let h = self.work.pop_front()?;
        self.queued[h.idx()] = false;
        self.dispatches += 1;
        Some(h)
    }

    /// True if any handler is queued.
    pub fn has_work(&self) -> bool {
        !self.work.is_empty()
    }

    /// Number of queued handlers.
    pub fn pending(&self) -> usize {
        self.work.len()
    }

    /// True if `h` is currently queued (false for unregistered ids).
    pub fn is_queued(&self, h: HandlerId) -> bool {
        self.queued.get(h.idx()).copied().unwrap_or(false)
    }

    // ------------------------------------------------------------------
    // Quarantine ledger
    // ------------------------------------------------------------------

    /// Quarantine `h`: drop any queued invocation, refuse further kicks
    /// until [`release`](Self::release). Returns `true` if an invocation
    /// was pending (and was discarded). Unregistered ids are a no-op.
    pub fn quarantine(&mut self, h: HandlerId) -> bool {
        let Some(q) = self.quarantined.get_mut(h.idx()) else {
            return false;
        };
        *q = true;
        self.kick_corr[h.idx()] = 0;
        let was_pending = self.queued[h.idx()];
        if was_pending {
            self.queued[h.idx()] = false;
            self.work.retain(|&w| w != h);
        }
        was_pending
    }

    /// Lift the quarantine on `h` (the guest performed its queue reset).
    /// Kicks are accepted again; the handler is *not* requeued — the next
    /// real kick does that.
    pub fn release(&mut self, h: HandlerId) {
        if let Some(q) = self.quarantined.get_mut(h.idx()) {
            *q = false;
        }
    }

    /// True if `h` is quarantined.
    pub fn is_quarantined(&self, h: HandlerId) -> bool {
        self.quarantined.get(h.idx()).copied().unwrap_or(false)
    }

    /// Kicks refused because they named an unregistered handler.
    pub fn rejected_kick_count(&self) -> u64 {
        self.rejected_kicks
    }

    /// Kicks refused because the target handler was quarantined.
    pub fn quarantined_kick_count(&self) -> u64 {
        self.quarantined_kicks
    }

    /// Times the worker transitioned idle→busy.
    pub fn wakeup_count(&self) -> u64 {
        self.wakeups
    }

    /// Handler invocations dispatched.
    pub fn dispatch_count(&self) -> u64 {
        self.dispatches
    }

    /// Attach a flight-recorder correlation ID to `h`'s pending kick.
    /// Returns `true` if stored; `false` if a kick already owns the slot
    /// (the signals coalesced — first kick keeps the span) or the id is
    /// unregistered.
    pub fn note_kick_corr(&mut self, h: HandlerId, corr: u64) -> bool {
        match self.kick_corr.get_mut(h.idx()) {
            Some(slot) if *slot == 0 => {
                *slot = corr;
                true
            }
            _ => false,
        }
    }

    /// The correlation ID currently riding with `h`'s pending kick
    /// (0 if none), without consuming it.
    pub fn kick_corr(&self, h: HandlerId) -> u64 {
        self.kick_corr.get(h.idx()).copied().unwrap_or(0)
    }

    /// Remove and return the correlation ID riding with `h`'s pending
    /// kick (0 if none) — called when a handler turn begins.
    pub fn take_kick_corr(&mut self, h: HandlerId) -> u64 {
        self.kick_corr
            .get_mut(h.idx())
            .map(std::mem::take)
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queue_reports_idle_transition() {
        let mut w = VhostWorker::new();
        let a = w.register_handler();
        let b = w.register_handler();
        assert!(w.queue_work(a), "idle worker must be woken");
        assert!(!w.queue_work(b), "already busy");
    }

    // The four-cell wake-up contract: a wake-up is reported exactly when
    // a *new* item lands on an *idle* worker. These pin the
    // `vhost_work_queue` semantics the testbed's wake logic relies on.

    #[test]
    fn contract_idle_plus_new_wakes() {
        let mut w = VhostWorker::new();
        let a = w.register_handler();
        assert!(w.queue_work(a));
        assert_eq!(w.wakeup_count(), 1);
    }

    #[test]
    fn contract_idle_plus_duplicate_does_not_wake() {
        // Normally `queued[h]` implies the list is non-empty, but a
        // stalled worker (fault injection) can observe the queued flag
        // with the list already drained mid-dispatch; force that state
        // directly. The duplicate must coalesce silently: whoever set
        // the flag already owns the wake-up.
        let mut w = VhostWorker::new();
        let a = w.register_handler();
        w.queued[a.idx()] = true;
        assert!(!w.queue_work(a), "duplicate must never report a wake-up");
        assert_eq!(w.wakeup_count(), 0);
        assert_eq!(w.pending(), 0, "no list entry added");
    }

    #[test]
    fn contract_busy_plus_new_does_not_wake() {
        let mut w = VhostWorker::new();
        let a = w.register_handler();
        let b = w.register_handler();
        assert!(w.queue_work(a));
        assert!(!w.queue_work(b), "worker already awake");
        assert_eq!(w.wakeup_count(), 1);
        assert_eq!(w.pending(), 2);
    }

    #[test]
    fn contract_busy_plus_duplicate_does_not_wake() {
        let mut w = VhostWorker::new();
        let a = w.register_handler();
        assert!(w.queue_work(a));
        assert!(!w.queue_work(a));
        assert_eq!(w.wakeup_count(), 1);
        assert_eq!(w.pending(), 1);
    }

    #[test]
    fn duplicate_queueing_coalesces() {
        let mut w = VhostWorker::new();
        let a = w.register_handler();
        w.queue_work(a);
        w.queue_work(a);
        assert_eq!(w.pending(), 1);
        assert_eq!(w.next_work(), Some(a));
        assert_eq!(w.next_work(), None);
    }

    #[test]
    fn fifo_dispatch_order() {
        let mut w = VhostWorker::new();
        let a = w.register_handler();
        let b = w.register_handler();
        let c = w.register_handler();
        w.queue_work(b);
        w.queue_work(a);
        w.queue_work(c);
        assert_eq!(w.next_work(), Some(b));
        assert_eq!(w.next_work(), Some(a));
        assert_eq!(w.next_work(), Some(c));
    }

    #[test]
    fn requeue_after_pop_is_allowed() {
        // The ES2 polling handler requeues itself when its quota expires.
        let mut w = VhostWorker::new();
        let a = w.register_handler();
        w.queue_work(a);
        assert_eq!(w.next_work(), Some(a));
        assert!(!w.is_queued(a));
        w.queue_work(a);
        assert!(w.is_queued(a));
        assert_eq!(w.next_work(), Some(a));
    }

    #[test]
    fn kick_corr_rides_with_the_pending_kick() {
        let mut w = VhostWorker::new();
        let a = w.register_handler();
        let b = w.register_handler();
        assert!(w.note_kick_corr(a, 5), "empty slot stores");
        assert!(!w.note_kick_corr(a, 6), "coalesced kick keeps first span");
        assert_eq!(w.take_kick_corr(a), 5);
        assert_eq!(w.take_kick_corr(a), 0, "taken once");
        assert_eq!(w.take_kick_corr(b), 0, "independent slots");
    }

    #[test]
    fn unregistered_handler_kick_is_refused_not_indexed() {
        let mut w = VhostWorker::new();
        let a = w.register_handler();
        w.queue_work(a);
        // A kick naming a handler that was never registered is hostile
        // input: it must be counted and dropped, never panic.
        assert!(!w.queue_work(HandlerId(7)));
        assert_eq!(w.rejected_kick_count(), 1);
        assert!(!w.is_queued(HandlerId(7)));
        assert!(!w.is_quarantined(HandlerId(7)));
        assert!(!w.note_kick_corr(HandlerId(7), 9));
        assert_eq!(w.kick_corr(HandlerId(7)), 0);
        assert_eq!(w.take_kick_corr(HandlerId(7)), 0);
        assert_eq!(w.pending(), 1, "valid work untouched");
    }

    #[test]
    fn quarantine_drops_pending_work_and_refuses_kicks() {
        let mut w = VhostWorker::new();
        let a = w.register_handler();
        let b = w.register_handler();
        w.queue_work(a);
        w.queue_work(b);
        assert!(w.quarantine(a), "pending invocation discarded");
        assert!(w.is_quarantined(a));
        assert!(!w.is_queued(a));
        assert_eq!(w.pending(), 1);
        assert!(!w.queue_work(a), "quarantined kicks refused");
        assert_eq!(w.quarantined_kick_count(), 1);
        // The neighbor keeps full service.
        assert_eq!(w.next_work(), Some(b));
        assert_eq!(w.next_work(), None);
    }

    #[test]
    fn release_restores_service_without_requeueing() {
        let mut w = VhostWorker::new();
        let a = w.register_handler();
        w.queue_work(a);
        w.quarantine(a);
        w.release(a);
        assert!(!w.is_quarantined(a));
        assert!(!w.has_work(), "release does not requeue by itself");
        assert!(w.queue_work(a), "next real kick wakes the worker again");
        assert_eq!(w.next_work(), Some(a));
    }

    #[test]
    fn quarantine_clears_riding_kick_corr() {
        let mut w = VhostWorker::new();
        let a = w.register_handler();
        w.queue_work(a);
        w.note_kick_corr(a, 42);
        w.quarantine(a);
        w.release(a);
        assert_eq!(w.take_kick_corr(a), 0, "stale span must not resurface");
    }

    #[test]
    fn counters() {
        let mut w = VhostWorker::new();
        let a = w.register_handler();
        let b = w.register_handler();
        w.queue_work(a); // wakeup 1
        w.queue_work(b);
        w.next_work();
        w.next_work();
        w.queue_work(a); // wakeup 2
        w.next_work();
        assert_eq!(w.wakeup_count(), 2);
        assert_eq!(w.dispatch_count(), 3);
        assert!(!w.has_work());
    }
}
