//! Paravirtual I/O substrate: virtio split rings and the vhost worker.
//!
//! §IV-B of the paper: *"In paravirtual I/O, the virtual device is divided
//! into a front-end driver in the guest and a back-end device in the host.
//! The front-end and back-end communicate with each other through a shared
//! memory buffer, consisting of several virtual queues, each of which
//! corresponds to a handler in the host. These handlers are usually in sleep
//! state, and an I/O thread is responsible for scheduling them."*
//!
//! and §V-A: *"The virtio standard provides `flags` and `avail_event` fields
//! for the back-end device to temporarily suppress notifications from the
//! guest when the host is servicing a particular virtqueue. By manipulating
//! these fields, ES2 can permanently disable the notification mechanism in
//! the polling mode and thus avoid the VM exits triggered by I/O requests."*
//!
//! [`queue::Virtqueue`] implements the split-ring notification contract —
//! `VRING_USED_F_NO_NOTIFY`, `VRING_AVAIL_F_NO_INTERRUPT` and the
//! `EVENT_IDX` (`avail_event`/`used_event`) protocol — precisely, because
//! two load-bearing behaviours of the evaluation fall out of it:
//!
//! 1. *kick batching*: the back-end suppresses notifications while it is
//!    actively draining a queue, so the guest's kick (I/O-instruction VM
//!    exit) rate equals the back-end's sleep/wake frequency, not the packet
//!    rate;
//! 2. *interrupt moderation*: the guest (NAPI) suppresses interrupts while
//!    polling, so virtual interrupt rates are far below packet rates
//!    (§VI-C observes ~15k interrupts/s for a full-rate TCP stream).
//!
//! [`vhost::VhostWorker`] models the in-kernel vhost I/O thread: a work
//! list of per-virtqueue handlers, woken by guest kicks, executed in FIFO
//! order — the structure ES2's Algorithm 1 schedules its polling handlers
//! on.

pub mod queue;
pub mod vhost;

pub use queue::{KickDecision, RingError, Virtqueue, VirtqueueConfig};
pub use vhost::{HandlerId, QueueId, ShardPolicy, VhostPool, VhostWorker};
