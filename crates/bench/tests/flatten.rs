//! The flattened global job list must be a pure reordering of work, not
//! a change to it: running every figure's specs through one flattened
//! grid yields bitwise the results of the old per-figure sweeps, at any
//! thread count.

use es2_bench::perf::global_job_list;
use es2_sim::SimDuration;
use es2_testbed::experiments::run_specs;
use es2_testbed::{Params, RunResult};

fn tiny_params() -> Params {
    let mut p = Params::default();
    p.warmup = SimDuration::from_millis(20);
    p.measure = SimDuration::from_millis(60);
    p
}

/// Render results to their full Debug form — every field participates,
/// so equality here is bitwise equality of the result structs.
fn fingerprints(results: &[RunResult]) -> Vec<String> {
    results.iter().map(|r| format!("{r:?}")).collect()
}

#[test]
fn flattened_grid_matches_per_figure_sweeps_at_any_thread_count() {
    let params = tiny_params();
    let figures = global_job_list(params, es2_bench::SEED, &[256], &[1000.0, 2200.0]);
    assert!(
        figures.iter().map(|(_, s)| s.len()).sum::<usize>() >= 15,
        "grid too small to exercise work stealing"
    );

    // Reference: the old shape — each figure swept on its own, serial.
    es2_sim::exec::set_threads(Some(1));
    let mut per_figure: Vec<String> = Vec::new();
    for (_, specs) in &figures {
        per_figure.extend(fingerprints(&run_specs(specs)));
    }

    let flat: Vec<_> = figures
        .iter()
        .flat_map(|(_, specs)| specs.iter().copied())
        .collect();

    // Flattened, still serial: ordering bookkeeping only.
    let flat_serial = fingerprints(&run_specs(&flat));
    assert_eq!(per_figure, flat_serial, "flattening changed serial results");

    // Flattened at the default thread count: the work-stealing executor
    // must reassemble identical results in input order.
    es2_sim::exec::set_threads(None);
    let flat_parallel = fingerprints(&run_specs(&flat));
    es2_sim::exec::set_threads(Some(1));
    assert_eq!(
        per_figure, flat_parallel,
        "flattened parallel sweep diverged from per-figure serial sweeps"
    );
}
