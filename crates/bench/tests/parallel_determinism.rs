//! The parallel sweep executor's whole contract: output is bitwise
//! identical to the serial sweep at any thread count. Rendered tables
//! are compared byte-for-byte at 1, 2, and 8 workers.

use es2_sim::SimDuration;
use es2_testbed::Params;

fn tiny_params() -> Params {
    // Window lengths only affect run duration; byte-equality across
    // thread counts must hold for any fixed params.
    Params {
        warmup: SimDuration::from_millis(20),
        measure: SimDuration::from_millis(100),
        ..Params::default()
    }
}

#[test]
fn rendered_tables_identical_at_1_2_and_8_threads() {
    let params = tiny_params();
    let rates = [1000.0, 2000.0];

    let render = |threads: usize| {
        es2_sim::exec::set_threads(Some(threads));
        let fig4 = es2_bench::render_fig4(params, es2_bench::SEED);
        let fig9 = es2_bench::render_fig9(params, es2_bench::SEED, &rates);
        es2_sim::exec::set_threads(None);
        (fig4, fig9)
    };

    let (fig4_serial, fig9_serial) = render(1);
    for threads in [2usize, 8] {
        let (fig4, fig9) = render(threads);
        assert_eq!(
            fig4, fig4_serial,
            "fig4 table diverged at {threads} threads"
        );
        assert_eq!(
            fig9, fig9_serial,
            "fig9 table diverged at {threads} threads"
        );
    }

    // Same contract with the runs lane-sharded (fig9's multiplexed
    // topology splits into 4 per-VM lanes): thread count must still not
    // change a byte. Note the lane count itself is a model parameter —
    // sharded tables are only compared with equally-sharded ones. Kept
    // in this test fn because the overrides are process-global.
    es2_sim::exec::set_lanes(Some(4));
    let (_, fig9_lane_serial) = render(1);
    for threads in [2usize, 8] {
        let (_, fig9) = render(threads);
        assert_eq!(
            fig9, fig9_lane_serial,
            "lane-sharded fig9 table diverged at {threads} threads"
        );
    }
    es2_sim::exec::set_lanes(None);
}
